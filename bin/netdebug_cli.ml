(* netdebug — command-line front end.

   Subcommands:
     list                    the program library
     show PROGRAM            P4-flavoured source of a program
     export PROGRAM          re-loadable .p4 source (round-trips exactly)
     compile PROGRAM         toolchain report (stages, resources, quirks)
     verify PROGRAM          formal verification battery on the spec
     validate PROGRAM        NetDebug functional validation on the device
     localize PROGRAM        inject a fault and localize it
     journey PROGRAM         stage-by-stage trace of one packet
     trace PROGRAM           run validation traffic, export per-packet spans
     metrics PROGRAM         run validation traffic, print Prometheus metrics
     testgen PROGRAM         path-covering test vectors from symbolic execution,
                             optionally checked against the deployed device
     soak PROGRAM            heavy background traffic + concurrent validation,
                             exit-code gated on the rolling health verdict
     serve PROGRAM           soak while serving /metrics and /health over HTTP
     monitor PROGRAM         periodic status snapshots judged by health rules
     net                     deploy a whole topology and validate it end to end
     usecases                run the seven use-cases and summarize
*)

module Ast = P4ir.Ast
module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile
module Config = Target.Config
module Device = Target.Device
module Fault = Target.Fault
module Harness = Netdebug.Harness
module Usecases = Netdebug.Usecases
module Localize = Netdebug.Localize
module Fleet = Net.Fleet
open Cmdliner

let find_bundle name =
  if Filename.check_suffix name ".p4" then
    match P4front.Front.parse_file name with
    | Ok b -> Ok b
    | Error e -> Error (Format.asprintf "%s: %a" name P4front.Front.pp_error e)
  else
    match Programs.find name with
    | Some b -> Ok b
    | None ->
        Error
          (Printf.sprintf "unknown program %s (try a .p4 file, or one of: %s)" name
             (String.concat ", "
                (List.map (fun b -> b.Programs.program.Ast.p_name) Programs.all)))

let program_arg =
  let doc =
    "Name of a program from the library (see $(b,netdebug list)) or a path to a \
     $(b,.p4) source file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

(* Shared cmdliner terms. Quirk selection, the fuzz-vector count and the
   fuzz PRNG seed appear on several subcommands — defined once here. *)
module Common_args = struct
  let quirk_names = List.map (fun q -> (Quirks.name q, q)) Quirks.all

  let quirks =
    let doc =
      Printf.sprintf
        "Toolchain quirk to emulate (repeatable). One of: %s. Default: the shipped \
         toolchain (%s). Use $(b,--faithful) for a fixed compiler."
        (String.concat ", " (List.map fst quirk_names))
        (String.concat ", " (List.map Quirks.name Quirks.default))
    in
    Arg.(value & opt_all (enum quirk_names) [] & info [ "quirk" ] ~docv:"QUIRK" ~doc)

  let faithful =
    let doc = "Compile with a faithful (fixed) toolchain: no quirks." in
    Arg.(value & flag & info [ "faithful" ] ~doc)

  let effective_quirks quirks faithful =
    if faithful then Quirks.none else if quirks = [] then Quirks.default else quirks

  let fuzz =
    Arg.(value & opt int 32 & info [ "fuzz" ] ~docv:"N" ~doc:"Extra fuzz vectors.")

  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"PRNG seed for the fuzz vectors (default: the built-in seed, 77).")

  let jobs =
    let env = Cmd.Env.info "NETDEBUG_JOBS" ~doc:"Default for $(b,--jobs)." in
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~env
          ~doc:
            "Worker domains for the parallel execution engine. Validation sweeps \
             shard their vectors over $(docv) device replicas; fuzz campaigns run \
             their shards on $(docv) domains. Reports are identical for every \
             value — parallelism never changes results, only wall-clock time.")

  (* whole-set quirk selection: none | default | all | name,name,... *)
  let quirk_set =
    let parse = function
      | "none" -> Ok Quirks.none
      | "default" -> Ok Quirks.default
      | "all" -> Ok Quirks.all
      | s ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | n :: rest -> (
                match List.assoc_opt (String.trim n) quirk_names with
                | Some q -> go (q :: acc) rest
                | None ->
                    Error
                      (`Msg
                        (Printf.sprintf "unknown quirk %S (try: none, default, all, %s)" n
                           (String.concat ", " (List.map fst quirk_names)))))
          in
          go [] (String.split_on_char ',' s)
    in
    Arg.conv (parse, Quirks.pp)
end

let target_arg =
  let doc = "Target platform: sume or small." in
  Arg.(
    value
    & opt (enum [ ("sume", Config.netfpga_sume); ("small", Config.small_target) ])
        Config.netfpga_sume
    & info [ "target" ] ~docv:"TARGET" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 1

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    let t = Stats.Texttable.create [ "program"; "description" ] in
    List.iter
      (fun b ->
        Stats.Texttable.add_row t
          [ b.Programs.program.Ast.p_name; b.Programs.description ])
      Programs.all;
    print_string (Stats.Texttable.render t)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the data-plane program library")
    Term.(const run $ const ())

(* ---------------- show ---------------- *)

let show_cmd =
  let run name =
    let b = or_die (find_bundle name) in
    Format.printf "%s@." (P4ir.Pp.program_to_string b.Programs.program);
    if b.Programs.entries <> [] then begin
      Format.printf "@.// control-plane entries@.";
      List.iter
        (fun (table, e) -> Format.printf "// %s: %a@." table P4ir.Entry.pp e)
        b.Programs.entries
    end
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a program in P4-flavoured syntax")
    Term.(const run $ program_arg)

(* ---------------- export ---------------- *)

let export_cmd =
  let run name =
    let b = or_die (find_bundle name) in
    print_string (P4front.Print.bundle_to_source b)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Print a program (and its entries) as .p4 source that $(b,netdebug) can \
          load back")
    Term.(const run $ program_arg)

(* ---------------- compile ---------------- *)

let compile_cmd =
  let run name quirks faithful config =
    let b = or_die (find_bundle name) in
    let quirks = Common_args.effective_quirks quirks faithful in
    match Compile.compile ~quirks ~config b.Programs.program with
    | Ok report -> Format.printf "%a@." Compile.pp_report report
    | Error errs ->
        List.iter (fun e -> Format.eprintf "error: %a@." Compile.pp_error e) errs;
        exit 1
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a program and report stages/resources")
    Term.(
      const run $ program_arg $ Common_args.quirks $ Common_args.faithful $ target_arg)

(* ---------------- verify ---------------- *)

let verify_cmd =
  let run name =
    let b = or_die (find_bundle name) in
    let rt = Runtime.create () in
    or_die (Runtime.install_all b.Programs.program rt b.Programs.entries);
    let findings = Symexec.Check.run_all b.Programs.program rt in
    List.iter (fun f -> Format.printf "%a@." Symexec.Check.pp_finding f) findings;
    let violated =
      List.filter (fun f -> f.Symexec.Check.f_verdict = Symexec.Check.Violated) findings
    in
    Format.printf "@.%d properties, %d violated@." (List.length findings)
      (List.length violated);
    if violated <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the software formal-verification battery on the specification")
    Term.(const run $ program_arg)

(* span tree printer shared by journey/trace: indent children under their
   parent; orphans (parent evicted from the ring) print as roots *)
let print_span_tree ppf spans =
  let module Span = Telemetry.Span in
  let present = Hashtbl.create 16 in
  List.iter (fun sp -> Hashtbl.replace present sp.Span.sp_id ()) spans;
  let rec pp indent sp =
    Format.fprintf ppf "%s%-20s %10.1f .. %-10.1f%s%s%s@." indent sp.Span.sp_name
      sp.Span.sp_start_ns sp.Span.sp_end_ns
      (match sp.Span.sp_note with Some n -> " (" ^ n ^ ")" | None -> "")
      (if sp.Span.sp_drop then " [drop]" else "")
      (if sp.Span.sp_fault then " [fault]" else "");
    List.iter
      (fun c -> if c.Span.sp_parent = sp.Span.sp_id && c.Span.sp_id <> sp.Span.sp_id then
          pp (indent ^ "  ") c)
      spans
  in
  List.iter
    (fun sp ->
      if sp.Span.sp_parent < 0 || not (Hashtbl.mem present sp.Span.sp_parent) then
        pp "  " sp)
    spans

(* ---------------- validate ---------------- *)

let validate_cmd =
  let run name quirks faithful fuzz fuzz_seed jobs pcap_out telemetry_dir =
    let b = or_die (find_bundle name) in
    let quirks = Common_args.effective_quirks quirks faithful in
    Format.printf "toolchain quirks: %a@." Quirks.pp quirks;
    (* a real clock, so table/<name>/update_ns telemetry carries actual
       control-plane update latencies in the exported artifacts *)
    let update_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9) in
    let h = Harness.deploy ~quirks ~update_clock b in
    (match Harness.self_check h with
    | Ok facts -> List.iter (fun f -> Format.printf "[ok] %s@." f) facts
    | Error e -> or_die (Error e));
    let report = Usecases.Functional.run ~fuzz ?fuzz_seed ~jobs h in
    Format.printf "@.%a@." Usecases.Functional.pp report;
    (match pcap_out with
    | Some path ->
        let records =
          List.map
            (fun m ->
              {
                Packet.Pcap.ts_ns = 0.0;
                data = Bitutil.Bitstring.to_string m.Usecases.Functional.mm_packet;
              })
            report.Usecases.Functional.fr_mismatches
        in
        Packet.Pcap.write_file path records;
        Format.printf "wrote %d diverging packet(s) to %s@." (List.length records) path
    | None -> ());
    Format.printf "%s@." (Harness.trace_health h);
    (match telemetry_dir with
    | Some dir ->
        List.iter
          (fun p -> Format.printf "wrote %s@." p)
          (Harness.export_artifacts h ~dir)
    | None -> ());
    if not (Usecases.Functional.passed report) then exit 1
  in
  let pcap_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pcap" ] ~docv:"FILE"
          ~doc:"Write the packets that exposed divergences to a pcap capture.")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"DIR"
          ~doc:
            "Export telemetry artifacts (trace.json, spans.jsonl, metrics.prom) into \
             this directory after the run.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Deploy on the simulated device and validate against the specification")
    Term.(
      const run $ program_arg $ Common_args.quirks $ Common_args.faithful
      $ Common_args.fuzz $ Common_args.seed $ Common_args.jobs $ pcap_arg
      $ telemetry_arg)

(* ---------------- localize ---------------- *)

let localize_cmd =
  let run name stage =
    let b = or_die (find_bundle name) in
    let h = Harness.deploy ~quirks:Quirks.none b in
    (match stage with
    | Some stage -> Device.inject_fault h.Harness.device ~stage Fault.Drop_at_stage
    | None -> ());
    let probe =
      match b.Programs.entries with
      | _ :: _ -> Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ())
      | [] -> Packet.serialize (Packet.udp_ipv4 ())
    in
    let verdict, evidence = Localize.locate h ~probe in
    Format.printf "verdict: %s@." (Localize.verdict_to_string verdict);
    List.iter
      (fun (stage, delta) -> Format.printf "  %-16s %Ld@." stage delta)
      evidence.Localize.e_deltas;
    Format.printf "  %-16s %d@." "check point" evidence.Localize.e_emitted;
    Format.printf "  %-16s %d@." "on the wire" evidence.Localize.e_external;
    if evidence.Localize.e_span_trail <> [] then begin
      Format.printf "@.span trail (every probe spanned during the burst):@.";
      List.iter
        (fun (stage, n) -> Format.printf "  %-16s %d span(s)@." stage n)
        evidence.Localize.e_span_trail
    end
  in
  let stage_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"STAGE"
          ~doc:"Inject a drop fault into this stage first (e.g. ma:ipv4_lpm).")
  in
  Cmd.v (Cmd.info "localize" ~doc:"Probe the pipeline and localize packet loss")
    Term.(const run $ program_arg $ stage_arg)

(* ---------------- journey ---------------- *)

let journey_cmd =
  let run name hex =
    let b = or_die (find_bundle name) in
    (* one packet: span it unconditionally *)
    let h = Harness.deploy ~quirks:Quirks.none ~span_sampling:1 b in
    let bits =
      match hex with
      | Some hx -> (
          try Bitutil.Bitstring.of_hex hx
          with Invalid_argument e -> or_die (Error e))
      | None -> Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ())
    in
    let id, disposition =
      Target.Device.inject h.Harness.device ~source:Target.Device.Generator bits
    in
    (match disposition with
    | Target.Device.Emitted out ->
        Format.printf "disposition: emitted on port %d at t=%.1fns@." out.Target.Device.o_port
          out.Target.Device.o_out_time_ns
    | Target.Device.Dropped_pipeline r -> Format.printf "disposition: dropped (%s)@." r
    | Target.Device.Dropped_queue -> Format.printf "disposition: queue drop@."
    | Target.Device.Lost_in_stage s -> Format.printf "disposition: lost in %s@." s);
    Format.printf "@.per-stage journey (internal trace):@.";
    List.iter
      (fun e -> Format.printf "  %a@." Trace.pp_event e)
      (Trace.events_for_packet (Target.Device.trace h.Harness.device) id);
    Format.printf "@.span tree (virtual time, ns):@.";
    print_span_tree Format.std_formatter
      (Telemetry.Span.spans_for_packet (Target.Device.spans h.Harness.device) id);
    Format.printf "@.%s@." (Harness.trace_health h)
  in
  let hex_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "packet" ] ~docv:"HEX"
          ~doc:"Packet bytes as hex (default: a routable UDP/IPv4 probe).")
  in
  Cmd.v
    (Cmd.info "journey"
       ~doc:"Inject one packet and print its stage-by-stage journey from the taps")
    Term.(const run $ program_arg $ hex_arg)

(* ---------------- trace ---------------- *)

let format_names =
  [ ("chrome", `Chrome); ("jsonl", `Jsonl); ("text", `Text) ]

let trace_cmd =
  let run name quirks faithful format sampling fuzz fuzz_seed out =
    let b = or_die (find_bundle name) in
    let quirks = Common_args.effective_quirks quirks faithful in
    let h = Harness.deploy ~quirks ~span_sampling:sampling b in
    (* the same traffic a validate run drives: self-check probes plus the
       functional battery, so every sampled packet shows up as a span tree *)
    (match Harness.self_check h with
    | Ok _ -> ()
    | Error e -> or_die (Error e));
    ignore (Usecases.Functional.run ~fuzz ?fuzz_seed h);
    let spans = Device.spans h.Harness.device in
    let rendered =
      match format with
      | `Chrome -> Telemetry.Export.chrome_trace spans
      | `Jsonl -> Telemetry.Export.jsonl spans
      | `Text -> Telemetry.Export.text spans
    in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc rendered;
        close_out oc;
        Format.eprintf "wrote %s@." path
    | None -> print_string rendered);
    Format.eprintf "%s@." (Harness.trace_health h)
  in
  let format_arg =
    Arg.(
      value
      & opt (enum format_names) `Chrome
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Span export format: $(b,chrome) (trace_event JSON, loadable in Perfetto \
             / chrome://tracing), $(b,jsonl) or $(b,text).")
  in
  let sampling_arg =
    Arg.(
      value & opt int 1
      & info [ "sampling" ] ~docv:"N"
          ~doc:"Span 1-in-$(docv) packets (default 1: every packet).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to this file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run validation traffic on the simulated device and export per-packet spans")
    Term.(
      const run $ program_arg $ Common_args.quirks $ Common_args.faithful $ format_arg
      $ sampling_arg $ Common_args.fuzz $ Common_args.seed $ out_arg)

(* ---------------- metrics ---------------- *)

let metrics_cmd =
  let run name quirks faithful fuzz fuzz_seed out =
    let b = or_die (find_bundle name) in
    let quirks = Common_args.effective_quirks quirks faithful in
    let h = Harness.deploy ~quirks b in
    (match Harness.self_check h with
    | Ok _ -> ()
    | Error e -> or_die (Error e));
    ignore (Usecases.Functional.run ~fuzz ?fuzz_seed h);
    let rendered = Telemetry.Export.prometheus (Device.metrics h.Harness.device) in
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc rendered;
        close_out oc;
        Format.eprintf "wrote %s@." path
    | None -> print_string rendered
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to this file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run validation traffic and print the device metrics registry in Prometheus \
          text exposition")
    Term.(
      const run $ program_arg $ Common_args.quirks $ Common_args.faithful
      $ Common_args.fuzz $ Common_args.seed $ out_arg)

(* ---------------- fuzz ---------------- *)

(* a corpus directory: every *.bin file is one raw packet, in filename
   order (testgen --emit-corpus writes 000.bin, 001.bin, ...) *)
let read_corpus_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    or_die (Error (Printf.sprintf "%s: not a directory" dir));
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".bin")
    |> List.sort compare
  in
  if files = [] then or_die (Error (Printf.sprintf "%s: no .bin files" dir));
  List.map
    (fun f ->
      let ic = open_in_bin (Filename.concat dir f) in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Bitutil.Bitstring.of_string s)
    files

let fuzz_cmd =
  let run name quirk_set quirks faithful budget seed jobs blind deterministic
      seed_corpus report_out pcap_out =
    let b = or_die (find_bundle name) in
    let quirks =
      match quirk_set with
      | Some q -> q
      | None -> Common_args.effective_quirks quirks faithful
    in
    let seed_corpus = Option.map read_corpus_dir seed_corpus in
    let report =
      if blind then Fuzz.Campaign.run_blind ~quirks ~jobs ~budget ~seed b
      else Fuzz.Campaign.run ~quirks ?seed_corpus ~jobs ~deterministic ~budget ~seed b
    in
    let text = Fuzz.Campaign.render report in
    print_string text;
    (* stdout only, never the --report file: report files must stay
       byte-comparable across hosts and jobs values *)
    print_endline (Fuzz.Campaign.render_throughput report);
    (match report_out with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Format.eprintf "wrote %s@." path
    | None -> ());
    match pcap_out with
    | Some path ->
        let records =
          List.map
            (fun d ->
              {
                Packet.Pcap.ts_ns = 0.0;
                data = Bitutil.Bitstring.to_string d.Fuzz.Campaign.dv_repro;
              })
            report.Fuzz.Campaign.rp_divergences
        in
        Packet.Pcap.write_file path records;
        Format.eprintf "wrote %d minimized repro(s) to %s@." (List.length records) path
    | None -> ()
  in
  let budget_arg =
    Arg.(
      value & opt int 10000
      & info [ "budget" ] ~docv:"N" ~doc:"Differential-oracle executions to spend.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign PRNG seed.")
  in
  let quirk_set_arg =
    Arg.(
      value
      & opt (some Common_args.quirk_set) None
      & info [ "quirks" ] ~docv:"SPEC"
          ~doc:
            "Quirk set to compile with: $(b,none), $(b,default), $(b,all) or a \
             comma-separated list of quirk names. Overrides $(b,--quirk)/$(b,--faithful).")
  in
  let blind_arg =
    Arg.(
      value & flag
      & info [ "blind" ]
          ~doc:
            "Disable coverage guidance and drive the oracle with the blind \
             $(b,Vectors.fuzz) traffic (the baseline the guided campaign is compared \
             against).")
  in
  let deterministic_arg =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Run the barrier scheduling engine: the report is a pure function of \
             (program, quirks, seed, budget) and renders byte-identically for every \
             $(b,--jobs) value — what CI's golden-report comparison pins. Without \
             this flag the campaign uses the barrier-free async engine, which \
             scales with $(b,--jobs) while preserving the verdict set.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Also write the text report to this file.")
  in
  let pcap_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pcap" ] ~docv:"FILE"
          ~doc:"Write the minimized reproducers to a pcap capture.")
  in
  let seed_corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed-corpus" ] ~docv:"DIR"
          ~doc:
            "Seed the corpus from the $(b,.bin) packets in $(docv) (as written by \
             $(b,netdebug testgen --emit-corpus)) instead of the three built-in \
             templates — a coverage-complete start for the campaign.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run a coverage-guided differential fuzzing campaign: spec interpreter vs \
          the quirked compiled device, with minimized, quirk-attributed \
          reproducers. Async sharded scheduling by default; \
          $(b,--deterministic) pins the byte-reproducible barrier engine")
    Term.(
      const run $ program_arg $ quirk_set_arg $ Common_args.quirks $ Common_args.faithful
      $ budget_arg $ seed_arg $ Common_args.jobs $ blind_arg $ deterministic_arg
      $ seed_corpus_arg $ report_arg $ pcap_arg)

(* ---------------- testgen ---------------- *)

let testgen_cmd =
  let run name quirk_set quirks faithful seed max_paths jobs emit_corpus check report_out
      =
    let b = or_die (find_bundle name) in
    let quirks =
      match quirk_set with
      | Some q -> q
      | None -> Common_args.effective_quirks quirks faithful
    in
    let rt = Usecases.Functional.oracle_runtime b in
    let report =
      Symexec.Testgen.generate ?seed ?max_paths ~jobs
        ~ingress_port:Netdebug.Harness.generator_port b.Programs.program rt
    in
    let text = Symexec.Testgen.render report in
    print_string text;
    (match report_out with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Format.eprintf "wrote %s@." path
    | None -> ());
    (match emit_corpus with
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i pkt ->
            let path = Filename.concat dir (Printf.sprintf "%03d.bin" i) in
            let oc = open_out_bin path in
            output_string oc (Bitutil.Bitstring.to_string pkt);
            close_out oc)
          (Symexec.Testgen.packets report);
        Format.eprintf "wrote %d vector(s) to %s@."
          (List.length report.Symexec.Testgen.tg_vectors)
          dir
    | None -> ());
    if check then begin
      let h = Harness.deploy ~quirks b in
      let pr = Usecases.Functional.check_paths ?seed ?max_paths ~jobs h in
      Format.printf "%a@." Usecases.Functional.pp_paths pr;
      if not (Usecases.Functional.paths_agree pr) then exit 1
    end
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Per-path solver search seed.")
  in
  let max_paths_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-paths" ] ~docv:"N" ~doc:"Stop exploration after $(docv) paths.")
  in
  let quirk_set_arg =
    Arg.(
      value
      & opt (some Common_args.quirk_set) None
      & info [ "quirks" ] ~docv:"SPEC"
          ~doc:
            "Quirk set the $(b,--check) deployment compiles with: $(b,none), \
             $(b,default), $(b,all) or a comma-separated list. Overrides \
             $(b,--quirk)/$(b,--faithful).")
  in
  let emit_corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-corpus" ] ~docv:"DIR"
          ~doc:
            "Write the covering packets to $(docv)/000.bin, 001.bin, ... — a \
             ready-made seed corpus for $(b,netdebug fuzz --seed-corpus).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also deploy the program (under $(b,--quirks)) and drive every vector \
             through the device, comparing against the symbolic expectation. Exits \
             non-zero if any path diverges, naming the first diverging path.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Also write the text report to this file.")
  in
  Cmd.v
    (Cmd.info "testgen"
       ~doc:
         "Generate one covering packet per control-flow path of a program via \
          symbolic execution, with the expected observation per packet; optionally \
          check the deployed device against the oracle path by path")
    Term.(
      const run $ program_arg $ quirk_set_arg $ Common_args.quirks $ Common_args.faithful
      $ seed_arg $ max_paths_arg $ Common_args.jobs $ emit_corpus_arg $ check_arg
      $ report_arg)

(* ---------------- soak ---------------- *)

let soak_budget_arg =
  Arg.(
    value & opt int 100_000
    & info [ "budget" ] ~docv:"N" ~doc:"Background packets to inject.")

let soak_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Soak PRNG seed.")

let soak_rate_arg =
  Arg.(
    value & opt float 2.0
    & info [ "rate" ] ~docv:"MPPS"
        ~doc:"Offered background rate in millions of packets per virtual second.")

let soak_window_arg =
  Arg.(
    value & opt float 100_000.
    & info [ "window" ] ~docv:"NS"
        ~doc:"Sampling / health-evaluation window in virtual nanoseconds.")

let soak_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Write the observability artifacts (soak.jsonl, health.json, metrics.prom) \
           into this directory.")

let soak_cmd =
  let run name quirks faithful budget seed rate window validations min_rate fault out =
    let b = or_die (find_bundle name) in
    let quirks = Common_args.effective_quirks quirks faithful in
    let h = Harness.deploy ~quirks b in
    (match fault with
    | Some stage -> Device.inject_fault h.Harness.device ~stage Fault.Drop_at_stage
    | None -> ());
    let cfg =
      {
        Obs.Soak.default_cfg with
        sk_budget = budget;
        sk_seed = seed;
        sk_rate_mpps = rate;
        sk_window_ns = window;
        sk_validations_per_window = validations;
        sk_min_rate_mpps = min_rate;
      }
    in
    let r = Obs.Soak.run ~cfg h in
    print_string (Obs.Soak.render r);
    (match out with
    | Some dir ->
        List.iter
          (fun p -> Format.eprintf "wrote %s@." p)
          (Obs.Soak.write_artifacts r ~dir)
    | None -> ());
    if not (Obs.Soak.exit_ok r) then exit 1
  in
  let validations_arg =
    Arg.(
      value & opt int 1
      & info [ "validations" ] ~docv:"N"
          ~doc:"Generator/checker validation vectors per window.")
  in
  let min_rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "min-rate" ] ~docv:"MPPS"
          ~doc:
            "Acceptance floor on the sustained virtual packet rate; falling below it \
             fails the run.")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"STAGE"
          ~doc:
            "Inject a drop fault into this stage first (e.g. ma:ipv4_lpm) — the health \
             verdict must catch it and gate the exit code.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Sustained multi-flow background traffic (DNS/HTTP-like mixes) at millions of \
          packets per virtual second with concurrent generator/checker validation; the \
          exit code is gated on the rolling health verdict and the sustained rate")
    Term.(
      const run $ program_arg $ Common_args.quirks $ Common_args.faithful
      $ soak_budget_arg $ soak_seed_arg $ soak_rate_arg $ soak_window_arg
      $ validations_arg $ min_rate_arg $ fault_arg $ soak_out_arg)

(* ---------------- serve ---------------- *)

let serve_cmd =
  let run name quirks faithful port budget seed rate window out =
    let b = or_die (find_bundle name) in
    let quirks = Common_args.effective_quirks quirks faithful in
    let h = Harness.deploy ~quirks b in
    let registry = Device.metrics h.Harness.device in
    let cfg =
      {
        Obs.Soak.default_cfg with
        sk_budget = (if budget = 0 then max_int else budget);
        sk_seed = seed;
        sk_rate_mpps = rate;
        sk_window_ns = window;
      }
    in
    let health = Obs.Health.create (Obs.Soak.default_rules cfg) in
    let srv =
      Obs.Http.create ~port
        [
          ( "/metrics",
            Obs.Http.route ~content_type:"text/plain; version=0.0.4" (fun () ->
                Telemetry.Export.prometheus registry) );
          ( "/health",
            Obs.Http.route ~content_type:"application/json" (fun () ->
                Obs.Health.to_json health) );
        ]
    in
    Format.printf "serving http://127.0.0.1:%d/metrics and /health while soaking %s@."
      (Obs.Http.port srv)
      (if budget = 0 then "(unbounded; interrupt to stop)"
       else Printf.sprintf "(%d packets)" budget);
    Format.print_flush ();
    (* stream JSONL to a file when asked, discard otherwise: an unbounded
       serve loop must not buffer its time series in memory *)
    let jsonl_chan =
      match out with
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          Some (open_out (Filename.concat dir "soak.jsonl"))
      | None -> None
    in
    let sink =
      match jsonl_chan with Some oc -> output_string oc | None -> fun _ -> ()
    in
    let r =
      Obs.Soak.run ~cfg ~health ~sink
        ~on_window:(fun _ -> ignore (Obs.Http.poll srv))
        h
    in
    (* answer stragglers before closing *)
    ignore (Obs.Http.poll srv);
    Obs.Http.close srv;
    (match jsonl_chan with Some oc -> close_out oc | None -> ());
    print_string (Obs.Soak.render r);
    Format.printf "served %d HTTP request(s)@." (Obs.Http.served srv);
    (match out with
    | Some dir ->
        let write name contents =
          let path = Filename.concat dir name in
          let oc = open_out path in
          output_string oc contents;
          close_out oc;
          Format.eprintf "wrote %s@." path
        in
        write "health.json" r.Obs.Soak.so_health_json;
        write "metrics.prom" r.Obs.Soak.so_prometheus
    | None -> ());
    if not (Obs.Soak.exit_ok r) then exit 1
  in
  let port_arg =
    Arg.(
      value & opt int 9464
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:"TCP port for the HTTP endpoint (0 picks an ephemeral port).")
  in
  let budget_arg =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"N"
          ~doc:"Background packets to inject; 0 (default) runs until interrupted.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the soak workload while serving live Prometheus text exposition on \
          /metrics and the rolling health verdict on /health over HTTP")
    Term.(
      const run $ program_arg $ Common_args.quirks $ Common_args.faithful $ port_arg
      $ budget_arg $ soak_seed_arg $ soak_rate_arg $ soak_window_arg $ soak_out_arg)

(* ---------------- monitor ---------------- *)

let monitor_cmd =
  let run name quirks faithful samples period load =
    let b = or_die (find_bundle name) in
    let quirks = Common_args.effective_quirks quirks faithful in
    let h = Harness.deploy ~quirks b in
    let background =
      match b.Programs.entries with
      | _ :: _ -> Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:256 ())
      | [] -> Packet.serialize (Packet.udp_ipv4 ~payload_bytes:256 ())
    in
    let r = Obs.Monitor.run ~samples ~period_packets:period ~load h ~background in
    print_string (Obs.Monitor.render r);
    if not (Obs.Monitor.healthy r) then exit 1
  in
  let samples_arg =
    Arg.(
      value & opt int 10
      & info [ "samples" ] ~docv:"N" ~doc:"Status snapshots to take.")
  in
  let period_arg =
    Arg.(
      value & opt int 50
      & info [ "period" ] ~docv:"PACKETS" ~doc:"Background packets between snapshots.")
  in
  let load_arg =
    Arg.(
      value & opt float 0.5
      & info [ "load" ] ~docv:"FRACTION"
          ~doc:"Background traffic pacing as a fraction of line rate.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Periodic device status snapshots under paced live traffic, judged by the \
          health evaluator (use-case 6)")
    Term.(
      const run $ program_arg $ Common_args.quirks $ Common_args.faithful $ samples_arg
      $ period_arg $ load_arg)

(* ---------------- usecases ---------------- *)

let usecases_cmd =
  let run () =
    Format.printf "running the seven use-cases (this takes a moment)...@.@.";
    (* 1. functional *)
    let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
    let f = Usecases.Functional.run ~fuzz:16 h in
    Format.printf "1. functional:    %s@."
      (if Usecases.Functional.passed f then "PASS" else "FAIL");
    (* 2. performance *)
    let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:1000 ()) in
    let pts = Usecases.Performance.sweep ~loads:[ 0.5; 1.0 ] ~packets_per_point:1000 h ~probe in
    (match pts with
    | [ half; full ] ->
        Format.printf "2. performance:   %.1f / %.1f Gb/s at 50%% / 100%% load@."
          half.Usecases.Performance.pt_achieved_gbps
          full.Usecases.Performance.pt_achieved_gbps
    | _ -> ());
    (* 3. compiler check *)
    let dets = Usecases.Compiler_check.battery () in
    let caught =
      List.length
        (List.filter
           (fun d ->
             d.Usecases.Compiler_check.dq_quirk <> None
             && d.Usecases.Compiler_check.dq_detected)
           dets)
    in
    Format.printf "3. compiler:      %d/%d seeded quirks detected@." caught
      (List.length dets - 1);
    (* 4. architecture *)
    let arch = Usecases.Architecture_check.probe () in
    Format.printf "4. architecture:  %d limits discovered@." (List.length arch);
    (* 5. resources *)
    let rows = Usecases.Resources.inventory () in
    Format.printf "5. resources:     %d programs inventoried@." (List.length rows);
    (* 6. status, judged by the health evaluator *)
    let mon = Obs.Monitor.run ~samples:3 h ~background:probe in
    Format.printf "6. status:        %d snapshots, %a@."
      (List.length mon.Obs.Monitor.mo_snapshots)
      Obs.Health.pp mon.Obs.Monitor.mo_health;
    (* 7. comparison *)
    let c =
      Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
        Programs.basic_router Programs.router_split
    in
    Format.printf "7. comparison:    %s@."
      (if Usecases.Comparison.equivalent c then "EQUIVALENT" else "DIVERGENT")
  in
  Cmd.v (Cmd.info "usecases" ~doc:"Exercise all seven use-cases briefly")
    Term.(const run $ const ())

(* ---------------- net ---------------- *)

let net_cmd =
  let parse_topo spec =
    let dims s =
      match String.split_on_char 'x' s with
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b -> Some (a, b)
          | _ -> None)
      | _ -> None
    in
    if Filename.check_suffix spec ".json" then Net.Topology.of_file spec
    else
      try
        match String.split_on_char ':' spec with
        | [ "fat-tree"; k ] -> (
            match int_of_string_opt k with
            | Some k -> Ok (Net.Topology.fat_tree k)
            | None -> Error (Printf.sprintf "bad fat-tree arity %S" k))
        | [ "leaf-spine"; d ] -> (
            match dims d with
            | Some (spines, leaves) -> Ok (Net.Topology.leaf_spine ~spines ~leaves ())
            | None -> Error (Printf.sprintf "bad leaf-spine dims %S (want SxL)" d))
        | [ "single"; n ] -> (
            match int_of_string_opt n with
            | Some hosts -> Ok (Net.Topology.single ~hosts ())
            | None -> Error (Printf.sprintf "bad host count %S" n))
        | _ ->
            Error
              (Printf.sprintf
                 "unknown topology %S (want fat-tree:K, leaf-spine:SxL, single:N or a \
                  .json file)"
                 spec)
      with Invalid_argument msg -> Error msg
  in
  let run topo_spec scenario jobs fault telemetry_dir report_file export_topo =
    let topo = or_die (parse_topo topo_spec) in
    Format.printf "%s@." (Net.Topology.summary topo);
    let t0 = Unix.gettimeofday () in
    let fab = Net.Fabric.create topo in
    Format.printf "deployed %d devices in %.2f s@."
      (Array.length topo.Net.Topology.nodes)
      (Unix.gettimeofday () -. t0);
    (match fault with
    | None -> ()
    | Some spec ->
        let device, stage =
          match String.index_opt spec ':' with
          | Some i ->
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
          | None -> (spec, "ma:ipv4_lpm")
        in
        Net.Fabric.inject_fault fab ~device ~stage Fault.Drop_at_stage;
        Format.printf "injected drop fault: device %s, stage %s@." device stage);
    let r = Fleet.run ~jobs scenario fab in
    print_string (Fleet.render r);
    (match export_topo with
    | Some file ->
        Net.Topology.to_file topo file;
        Format.printf "wrote %s@." file
    | None -> ());
    (match report_file with
    | Some file ->
        let oc = open_out file in
        output_string oc (Fleet.render_outcomes r);
        close_out oc;
        Format.printf "wrote %s@." file
    | None -> ());
    (match telemetry_dir with
    | Some dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path = Filename.concat dir "metrics.prom" in
        let oc = open_out path in
        output_string oc (Telemetry.Export.prometheus r.Fleet.r_registry);
        close_out oc;
        Format.printf "wrote %s@." path
    | None -> ());
    match Fleet.failures r with
    | [] -> ()
    | first :: _ ->
        (* turn the first failing pair into a device-level localization *)
        let host name =
          match
            Array.to_list topo.Net.Topology.hosts
            |> List.find_opt (fun (h : Net.Topology.host) -> h.Net.Topology.h_name = name)
          with
          | Some h -> h
          | None -> or_die (Error ("unknown host " ^ name))
        in
        Format.printf "@.localizing first failure (%s -> %s):@." first.Fleet.o_src
          first.Fleet.o_dst;
        let verdict, ev =
          Net.Localize.locate fab ~src:(host first.Fleet.o_src)
            ~dst:(host first.Fleet.o_dst)
        in
        Format.printf "verdict: %s@." (Net.Localize.verdict_to_string verdict);
        Format.printf "path evidence (%d probes, %d delivered, %d devices examined):@."
          ev.Net.Localize.n_count ev.Net.Localize.n_delivered
          ev.Net.Localize.n_bisect_probes;
        List.iter
          (fun (dev, delta) ->
            Format.printf "  %-12s rx %Ld, %d span(s)@." dev delta
              (List.assoc dev ev.Net.Localize.n_span_counts))
          ev.Net.Localize.n_rx_deltas;
        exit 1
  in
  let topo_arg =
    Arg.(
      value & opt string "fat-tree:4"
      & info [ "topo" ] ~docv:"SPEC"
          ~doc:
            "Topology to build: $(b,fat-tree:K) (canonical k-ary fat-tree), \
             $(b,leaf-spine:SxL) (S spines, L leaves), $(b,single:N) (one switch, N \
             hosts) or a topology $(b,.json) file.")
  in
  let scenario_arg =
    Arg.(
      value
      & opt (enum [ ("reachability", Fleet.Reachability); ("waypoint", Fleet.Waypoint) ])
          Fleet.Reachability
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "What the edge generator/checker pairs assert: $(b,reachability) (every \
             probe arrives, TTL and MAC rewritten correctly) or $(b,waypoint) \
             (additionally, the device trail equals the computed path).")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"DEV[:STAGE]"
          ~doc:
            "Inject a drop fault into this device before the run (stage defaults to \
             $(b,ma:ipv4_lpm)); the run then demonstrates device-level localization.")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"DIR"
          ~doc:
            "Export the merged fleet registry (per-device prefixed) as \
             $(i,DIR)/metrics.prom.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the per-pair outcome table to $(docv) — deterministic for a given \
             topology and scenario, byte-identical for every $(b,--jobs) value.")
  in
  let export_topo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "export-topo" ] ~docv:"FILE"
          ~doc:"Write the topology as JSON (reloadable via $(b,--topo) $(docv)).")
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:"Build a topology, deploy the router fleet and validate it end to end")
    Term.(
      const run $ topo_arg $ scenario_arg $ Common_args.jobs $ fault_arg $ telemetry_arg
      $ report_arg $ export_topo_arg)

let () =
  let doc = "programmable validation and real-time debugging of data planes" in
  let info = Cmd.info "netdebug" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; export_cmd; compile_cmd; verify_cmd; validate_cmd;
            localize_cmd; journey_cmd; trace_cmd; metrics_cmd; testgen_cmd; fuzz_cmd;
            soak_cmd; serve_cmd; monitor_cmd; net_cmd; usecases_cmd ]))
