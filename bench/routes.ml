(* Synthetic full-BGP-feed route tables: a deterministic, BGP-like prefix
   length distribution at up to ~1M prefixes, shared by the microbenches
   (B5/B5b/B5c), the churn experiment and the classifier tests. All
   randomness flows through Bitutil.Prng, so every consumer reproduces the
   exact same table from a seed. *)

module Ast = P4ir.Ast
module Dsl = P4ir.Dsl
module Entry = P4ir.Entry
module Value = P4ir.Value
module Programs = P4ir.Programs
module Prng = Bitutil.Prng

let table_name = "ipv4_lpm"

let table_size = 2_097_152

(* basic_router with a full-feed-sized LPM table: same parser, actions and
   ingress, so every existing harness (device, checker, oracle) runs it
   unchanged. *)
let program =
  let base = Programs.basic_router.Programs.program in
  {
    base with
    Ast.p_name = "bgp_router";
    p_tables =
      [
        Dsl.table ~size:table_size table_name
          [ (Dsl.fld "ipv4" "dst", Ast.Lpm) ]
          [ "set_nexthop"; "drop_packet" ]
          ~default:"drop_packet" ();
      ];
  }

let bundle =
  {
    Programs.program;
    entries = [];
    description = "IPv4 LPM router with a full-BGP-feed-sized route table";
  }

(* Prefix-length mix modelled on public BGP feed histograms: /24 dominates,
   /16../23 carry most of the rest, a thin head of short prefixes and a
   thin tail of host routes. Weights are per mille. *)
let length_weights =
  [|
    (8, 5); (10, 5); (12, 10); (14, 15); (16, 60); (17, 30); (18, 45);
    (19, 60); (20, 70); (21, 65); (22, 120); (23, 90); (24, 390);
    (26, 5); (28, 5); (30, 5); (32, 20);
  |]

let total_weight = Array.fold_left (fun a (_, w) -> a + w) 0 length_weights

let draw_length g =
  let r = Prng.int g total_weight in
  let rec go i acc =
    let len, w = length_weights.(i) in
    if r < acc + w then len else go (i + 1) (acc + w)
  in
  go 0 0

let mask_int len = if len = 0 then 0 else ((1 lsl len) - 1) lsl (32 - len)

(* [n] distinct (addr, len) pairs; addr is the 32-bit prefix, host bits
   zero. Collisions redraw both coordinates, so saturating a short length
   never loops. *)
let prefixes ~seed ~n =
  let g = Prng.create seed in
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n (0, 0) in
  let filled = ref 0 in
  while !filled < n do
    let len = draw_length g in
    let addr = Int64.to_int (Prng.bits g ~width:32) land mask_int len in
    if not (Hashtbl.mem seen (addr, len)) then begin
      Hashtbl.replace seen (addr, len) ();
      out.(!filled) <- (addr, len);
      incr filled
    end
  done;
  out

(* Forwarding data derived from the prefix, so a packet's egress port and
   rewritten MAC identify which route won — that is what the churn
   scenario's ground-truth comparison checks. *)
let entry ~addr ~len =
  Entry.make
    ~keys:[ Entry.lpm (Value.make ~width:32 (Int64.of_int addr)) len ]
    ~action:"set_nexthop"
    ~args:
      [
        Value.of_int ~width:9 (1 + ((addr lxor len) land 0xff));
        Value.make ~width:48 (Int64.of_int ((addr lsl 8) lor len));
      ]
    ()

let entries ~seed ~n =
  Array.to_list (Array.map (fun (addr, len) -> (table_name, entry ~addr ~len)) (prefixes ~seed ~n))

(* Lookup destinations: [hit_ratio] per mille land inside an installed
   prefix (random host bits below its length), the rest are uniform — a
   realistic mix of covered and default-route traffic. *)
let lookup_addrs ~seed ~hit_ratio (prefixes : (int * int) array) ~n =
  let g = Prng.create (seed lxor 0x5eed) in
  Array.init n (fun _ ->
      if Array.length prefixes > 0 && Prng.int g 1000 < hit_ratio then begin
        let addr, len = prefixes.(Prng.int g (Array.length prefixes)) in
        addr lor (Int64.to_int (Prng.bits g ~width:32) land lnot (mask_int len) land 0xffffffff)
      end
      else Int64.to_int (Prng.bits g ~width:32))

let key_of_addr addr = [ Value.make ~width:32 (Int64.of_int addr) ]
