(* Bechamel microbenchmarks: one Test.make per cost table in
   EXPERIMENTS.md (B1-B10). Measures the per-operation cost of every hot
   path in the simulator and toolchain. *)

open Bechamel
open Toolkit

module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Interp = P4ir.Interp
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile
module Device = Target.Device
module Entry = P4ir.Entry
module Value = P4ir.Value

let routed_probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ())

(* Rows measuring a specific engine pin it explicitly so the suite stays
   meaningful whatever NETDEBUG_ENGINE says: B1/B2 and their instrumented
   variants are the tree-walking baselines, B14/B14c the staged engine. *)
let make_device ?engine () =
  let report = Compile.compile_exn ~quirks:Quirks.none Programs.basic_router.Programs.program in
  let d = Device.create ?engine report.Compile.pipeline in
  (match
     Runtime.install_all Programs.basic_router.Programs.program (Device.runtime d)
       Programs.basic_router.Programs.entries
   with
  | Ok () -> ()
  | Error e -> failwith e);
  d

let b1_device_forward =
  let d = make_device ~engine:`Tree () in
  Test.make ~name:"B1 device: forward one packet"
    (Staged.stage (fun () ->
         ignore (Device.inject d ~source:(Device.External 0) routed_probe)))

let b2_interp_forward =
  let rt = Runtime.create () in
  let () =
    match
      Runtime.install_all Programs.basic_router.Programs.program rt
        Programs.basic_router.Programs.entries
    with
    | Ok () -> ()
    | Error e -> failwith e
  in
  Test.make ~name:"B2 interpreter: forward one packet"
    (Staged.stage (fun () ->
         ignore
           (Interp.process ~engine:`Tree Programs.basic_router.Programs.program rt
              ~ingress_port:0 routed_probe)))

let b3_generator =
  let h = Netdebug.Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let ctl = h.Netdebug.Harness.controller in
  let ok = function Ok v -> v | Error e -> failwith e in
  let () = ok (Netdebug.Controller.configure_checker ctl []) in
  let stream =
    Netdebug.Controller.stream
      ~mutations:[ Netdebug.Wire.Sweep_field ("ipv4", "dst", 0x0A000001L, 1L) ]
      routed_probe
  in
  Test.make ~name:"B3 generator: render+inject one mutated packet"
    (Staged.stage (fun () ->
         ok (Netdebug.Controller.configure_generator ctl [ stream ]);
         ok (Netdebug.Controller.start_generator ctl)))

let b4_checker_rule =
  let program = Programs.basic_router.Programs.program in
  let env = P4ir.Env.create program in
  let ctx = P4ir.Exec.make_ctx ~env ~runtime:(Runtime.create ()) () in
  let hooks =
    { P4ir.Parse.on_reject = `Continue; verify_checksum = false; max_steps = 64 }
  in
  let () = ignore (P4ir.Parse.run ~hooks ctx routed_probe) in
  let rule = P4ir.Dsl.(fld "ipv4" "ttl" ==: const ~width:8 64) in
  Test.make ~name:"B4 checker: evaluate one rule"
    (Staged.stage (fun () -> ignore (P4ir.Exec.eval ctx rule)))

(* B5/B5b/B5c: first-match lookup cost as the route table scales. B5 keeps
   its historical row name — the committed JSON baseline and the CI gate
   compare by exact name — but now routes through [Runtime.lookup], i.e.
   the bucketed classifier, on a BGP-like 1024-prefix table; B5s keeps the
   legacy linear scan measurable on the same table for context. B5b/B5c
   scale to 65k and 1M prefixes via [Test.make_with_resource] so the
   multi-second full-feed install runs inside the benchmark, not at module
   init. Keys are prebuilt and cycled through a preallocated ref so the
   measured loop allocates nothing. *)
let b5_table n =
  let rt = Runtime.create () in
  let prefixes = Routes.prefixes ~seed:7 ~n in
  Array.iter
    (fun (addr, len) ->
      Runtime.add_exn Routes.program rt ~table:Routes.table_name (Routes.entry ~addr ~len))
    prefixes;
  let addrs = Routes.lookup_addrs ~seed:7 ~hit_ratio:900 prefixes ~n:4096 in
  let keys = Array.map Routes.key_of_addr addrs in
  (* one touch so classifier construction is not billed to the first run *)
  ignore (Runtime.lookup rt ~table:Routes.table_name ~degrade_ternary_to_exact:false keys.(0));
  (rt, keys, ref 0)

let b5_step (rt, keys, i) =
  let k = keys.(!i) in
  i := (!i + 1) land (Array.length keys - 1);
  ignore (Runtime.lookup rt ~table:Routes.table_name ~degrade_ternary_to_exact:false k)

let b5_lpm_lookup =
  let res = b5_table 1024 in
  Test.make ~name:"B5 lpm: select over 1024 entries"
    (Staged.stage (fun () -> b5_step res))

let b5s_lpm_scan =
  let _, keys, i = b5_table 1024 in
  let entries =
    Array.to_list
      (Array.map (fun (addr, len) -> Routes.entry ~addr ~len) (Routes.prefixes ~seed:7 ~n:1024))
  in
  Test.make ~name:"B5s lpm: legacy linear scan over 1024 entries"
    (Staged.stage (fun () ->
         let k = keys.(!i) in
         i := (!i + 1) land (Array.length keys - 1);
         ignore (Entry.select entries k)))

let b5b_lpm_65k =
  Test.make_with_resource ~name:"B5b lpm: 65,536-prefix table, one lookup" Test.uniq
    ~allocate:(fun () -> b5_table 65_536)
    ~free:(fun _ -> ())
    (Staged.stage b5_step)

let b5c_lpm_1m =
  Test.make_with_resource ~name:"B5c lpm: 1,048,576-prefix table, one lookup" Test.uniq
    ~allocate:(fun () -> b5_table 1_048_576)
    ~free:(fun _ -> ())
    (Staged.stage b5_step)

let b6_symexec =
  let rt = Runtime.create () in
  let () =
    match
      Runtime.install_all Programs.basic_router.Programs.program rt
        Programs.basic_router.Programs.entries
    with
    | Ok () -> ()
    | Error e -> failwith e
  in
  Test.make ~name:"B6 symexec: explore basic_router"
    (Staged.stage (fun () ->
         ignore (Symexec.Sexec.explore Programs.basic_router.Programs.program rt)))

let b7_compile =
  Test.make ~name:"B7 sdnet: compile basic_router"
    (Staged.stage (fun () ->
         ignore (Compile.compile_exn Programs.basic_router.Programs.program)))

let b8_checksum =
  let payload = String.make 1500 'x' in
  Test.make ~name:"B8 checksum: 1500B internet checksum"
    (Staged.stage (fun () -> ignore (Bitutil.Checksum.checksum payload)))

let b9_kv_get =
  let report = Compile.compile_exn ~quirks:Quirks.none Programs.kv_cache.Programs.program in
  let d = Device.create report.Compile.pipeline in
  let kv_get =
    let w = Bitutil.Bitstring.Writer.create () in
    Bitutil.Bitstring.Writer.push_bits w
      (Packet.Eth.to_bits (Packet.Eth.make ~ethertype:0x1235L ()));
    Bitutil.Bitstring.Writer.push_int64 w ~width:8 1L;
    Bitutil.Bitstring.Writer.push_int64 w ~width:16 7L;
    Bitutil.Bitstring.Writer.push_int64 w ~width:32 0L;
    Bitutil.Bitstring.Writer.push_int64 w ~width:8 0L;
    Bitutil.Bitstring.Writer.contents w
  in
  Test.make ~name:"B9 kv_cache device: one GET"
    (Staged.stage (fun () -> ignore (Device.inject d ~source:(Device.External 0) kv_get)))

let b10_wire_roundtrip =
  let msg =
    Netdebug.Wire.Configure_checker
      [
        {
          Netdebug.Wire.r_name = "r";
          r_filter = Some P4ir.Dsl.(fld "ipv4" "ttl" ==: const ~width:8 63);
          r_expect = P4ir.Dsl.(P4ir.Ast.Std P4ir.Ast.Egress_spec ==: const ~width:9 1);
        };
      ]
  in
  Test.make ~name:"B10 wire: encode+decode a checker config"
    (Staged.stage (fun () ->
         match Netdebug.Wire.decode_host (Netdebug.Wire.encode_host msg) with
         | Ok _ -> ()
         | Error e -> failwith e))

(* B11/B11b: B1 with the span store fully on / at the default 1-in-64
   sampling. The CI overhead gate compares B11 against B1 by exact row
   name (never by prefix — "B11..." starts with "B1"). *)
let b11_device_forward_spans =
  let d = make_device ~engine:`Tree () in
  let () = Device.set_span_sampling d 1 in
  Test.make ~name:"B11 device: forward one packet, spans 1/1"
    (Staged.stage (fun () ->
         ignore (Device.inject d ~source:(Device.External 0) routed_probe)))

let b11b_device_forward_spans_sampled =
  let d = make_device ~engine:`Tree () in
  let () = Device.set_span_sampling d 64 in
  Test.make ~name:"B11b device: forward one packet, spans 1/64"
    (Staged.stage (fun () ->
         ignore (Device.inject d ~source:(Device.External 0) routed_probe)))

(* B1c/B2c: the two fuzzing coverage hooks. B1c forwards with the
   device-side coverage taps installed; B2c adds spec-side edge recording
   to the interpreter run. Both feed the overhead gate against their
   uninstrumented baselines. *)
let b1c_device_forward_coverage =
  let d = make_device ~engine:`Tree () in
  let cov = Fuzz.Coverage.create () in
  let () = Fuzz.Coverage.attach_device cov d in
  Test.make ~name:"B1c device: forward one packet, coverage taps"
    (Staged.stage (fun () ->
         ignore (Device.inject d ~source:(Device.External 0) routed_probe)))

let b2c_interp_forward_coverage =
  let rt = Runtime.create () in
  let () =
    match
      Runtime.install_all Programs.basic_router.Programs.program rt
        Programs.basic_router.Programs.entries
    with
    | Ok () -> ()
    | Error e -> failwith e
  in
  let cov = Fuzz.Coverage.create () in
  Test.make ~name:"B2c interpreter: forward one packet, coverage map"
    (Staged.stage (fun () ->
         Fuzz.Coverage.record_spec cov
           (Interp.process ~engine:`Tree Programs.basic_router.Programs.program rt
              ~ingress_port:0 routed_probe)))

(* B14/B14c: B1/B1c on the staged execution engine — the program compiled
   to closures at deploy time. The gates below assert both that coverage
   taps stay cheap on the staged path (B14c/B14) and that staging actually
   pays for itself (B14 against the B2 tree interpreter). *)
let b14_device_forward_staged =
  let d = make_device ~engine:`Staged () in
  Test.make ~name:"B14 device: forward one packet, staged engine"
    (Staged.stage (fun () ->
         ignore (Device.inject d ~source:(Device.External 0) routed_probe)))

let b14c_device_forward_staged_coverage =
  let d = make_device ~engine:`Staged () in
  let cov = Fuzz.Coverage.create () in
  let () = Fuzz.Coverage.attach_device cov d in
  Test.make ~name:"B14c device: forward one packet, staged + coverage taps"
    (Staged.stage (fun () ->
         ignore (Device.inject d ~source:(Device.External 0) routed_probe)))

(* B15: B1 with the snapshot streamer's boundary check riding the packet
   path. Off-boundary, [Sampler.tick] is a single float compare; at a
   5 µs virtual window a full registry sample lands every ~10 packets,
   so the row prices the *amortized* cost of continuous streaming, not
   just the fast path. Lines go to a discarding sink (serve's default
   for unbounded runs). Gated at B15/B1 <= 1.10x in [overhead_pairs]. *)
let b15_device_forward_streamed =
  let d = make_device ~engine:`Tree () in
  let s =
    Obs.Sampler.create ~interval_ns:5_000.
      ~sink:(fun _ -> ())
      (Device.metrics d) ~start_ns:(Device.now_ns d)
  in
  Test.make ~name:"B15 device: forward one packet, snapshot streamer"
    (Staged.stage (fun () ->
         ignore (Device.inject d ~source:(Device.External 0) routed_probe);
         ignore (Obs.Sampler.tick s ~now_ns:(Device.now_ns d))))

(* B16: one host-to-host forward through the co-simulated network fabric —
   the B14 staged device forward with the fabric's event heap, probe
   bookkeeping, trail and delivery accounting wrapped around it. Topology:
   a single switch with two hosts, so each operation is exactly one staged
   device traversal plus pure fabric overhead. Gated at B16/B14 <= 1.15x
   in [overhead_pairs]: the fabric must stay a thin scheduler around the
   device, not a second data plane. *)
let b16_fabric_forward =
  let topo = Net.Topology.single ~hosts:2 () in
  let fab = Net.Fabric.create topo in
  let src = topo.Net.Topology.hosts.(0) in
  let dst = topo.Net.Topology.hosts.(1) in
  let bits = Net.Fleet.probe_bits ~payload_bytes:26 src dst in
  Test.make ~name:"B16 fabric: forward one packet, co-simulated fabric"
    (Staged.stage (fun () ->
         Net.Fabric.clear_probes fab;
         let id = Net.Fabric.send fab ~src bits in
         Net.Fabric.run fab;
         ignore (Net.Fabric.fate fab id)))

(* B17: the full test-oracle pipeline on basic_router — path exploration,
   adversarial witness hardening, per-path solving and expectation
   derivation for all 8 paths. The absolute gate keeps path-covering
   generation cheap enough to run per commit (the CI testgen smoke) and
   at every deploy. *)
let b17_testgen =
  let rt = Runtime.create () in
  let () =
    match
      Runtime.install_all Programs.basic_router.Programs.program rt
        Programs.basic_router.Programs.entries
    with
    | Ok () -> ()
    | Error e -> failwith e
  in
  Test.make ~name:"B17 testgen: path-covering vectors for basic_router"
    (Staged.stage (fun () ->
         ignore
           (Symexec.Testgen.generate ~ingress_port:Netdebug.Harness.generator_port
              Programs.basic_router.Programs.program rt)))

(* B12: one full differential-oracle execution — interpreter, device via
   the generator/checker loop, coverage on both sides, verdict compare. *)
let b12_fuzz_oracle =
  let o = Fuzz.Oracle.create Programs.basic_router in
  Test.make ~name:"B12 fuzz: one differential-oracle execution"
    (Staged.stage (fun () -> ignore (Fuzz.Oracle.execute o routed_probe)))

(* B12b: amortized cost of one oracle execution inside a batch of 64 —
   the batched hot path (direct injection, staged raw render, one quiesce
   per batch) that the fuzz campaign's shard windows ride. Gc-counted
   like B6a so the allocation profile is a pinned regression signal; the
   absolute gate enforces the <= 15 µs/exec acceptance floor. *)
let b12b_rows () =
  let o = Fuzz.Oracle.create Programs.basic_router in
  let batch = Array.make 64 routed_probe in
  ignore (Fuzz.Oracle.exec_batch o batch);
  (* warm: staged render compile, coverage tables *)
  let reps = 40 in
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Fuzz.Oracle.exec_batch o batch)
  done;
  let n = float_of_int (reps * Array.length batch) in
  [
    ( "netdebug/B12b fuzz: amortized batched-oracle execution (batch 64)",
      Some ((Unix.gettimeofday () -. t0) *. 1e9 /. n),
      Some ((Gc.minor_words () -. w0) /. n) );
  ]

(* B13: wall-clock of one guided fuzz campaign. Not a bechamel test: a
   campaign is a multi-millisecond operation and the interesting numbers
   are wall-clock scaling and throughput, so it is timed directly with
   Unix.gettimeofday — Sys.time would report CPU time summed across
   domains and hide the speedup entirely.

   Two engines are exercised: the deterministic barrier engine only for
   its byte-identity contract (jobs=4 report == jobs=1 report), and the
   async sharded engine for the wall-clock rows CI's scaling gate reads.
   Async rows are best-of-3 (minima only ever remove scheduler noise)
   and carry the Gc-counted per-campaign allocation, so
   minor_words_per_op is a real regression signal rather than null. *)
let b13_budget = 10_000

let b13_rows () =
  let seed = 1 in
  let campaign ~deterministic ~jobs =
    Fuzz.Campaign.run ~jobs ~deterministic ~budget:b13_budget ~seed
      Programs.basic_router
  in
  let d1 = campaign ~deterministic:true ~jobs:1 in
  let d4 = campaign ~deterministic:true ~jobs:4 in
  if not (String.equal (Fuzz.Campaign.render d1) (Fuzz.Campaign.render d4)) then begin
    Format.eprintf "FAIL: B13 deterministic jobs=4 report differs from jobs=1@.";
    exit 1
  end;
  let measure jobs =
    let best_t = ref infinity and best_w = ref 0.0 and best_e = ref 1 in
    for _ = 1 to 3 do
      let w0 = Gc.minor_words () in
      let r = campaign ~deterministic:false ~jobs in
      let w = Gc.minor_words () -. w0 in
      if r.Fuzz.Campaign.rp_wall_s < !best_t then begin
        best_t := r.Fuzz.Campaign.rp_wall_s;
        best_w := w;
        best_e := max 1 r.Fuzz.Campaign.rp_total_executions
      end
    done;
    (!best_t, !best_w, !best_e)
  in
  let t1, w1, e1 = measure 1 in
  let t4, w4, e4 = measure 4 in
  Format.printf
    "B13 async campaign (%d execs): jobs=1 %.0f ms (%.0f execs/s), jobs=4 %.0f ms \
     (%.0f execs/s); deterministic reports identical@."
    b13_budget (t1 *. 1e3)
    (float_of_int e1 /. t1)
    (t4 *. 1e3)
    (float_of_int e4 /. t4);
  [
    ( Printf.sprintf "netdebug/B13 fuzz campaign (%d execs) wall-clock, jobs=1, async"
        b13_budget,
      Some (t1 *. 1e9),
      Some w1 );
    ( Printf.sprintf "netdebug/B13 fuzz campaign (%d execs) wall-clock, jobs=4, async"
        b13_budget,
      Some (t4 *. 1e9),
      Some w4 );
    ( "netdebug/B13a fuzz campaign amortized per exec, jobs=1, async",
      Some (t1 *. 1e9 /. float_of_int e1),
      Some (w1 /. float_of_int e1) );
    ( "netdebug/B13a fuzz campaign amortized per exec, jobs=4, async",
      Some (t4 *. 1e9 /. float_of_int e4),
      Some (w4 /. float_of_int e4) );
  ]

(* B6a: exact minor-heap allocation of one symbolic exploration, measured
   with the Gc counters — bechamel's stabilized OLS reports ~0 words for
   this op (see the committed baselines), so the allocation regression
   gate needs its own row. Allocation per explore is deterministic;
   averaging over the loop removes only the Gc.minor_words call itself.
   The absolute gate pins the hashconsed-term/in-place-fork profile
   (~5.5k words, down from 7.3k before interning) with headroom. *)
let b6a_rows () =
  let rt = Runtime.create () in
  let () =
    match
      Runtime.install_all Programs.basic_router.Programs.program rt
        Programs.basic_router.Programs.entries
    with
    | Ok () -> ()
    | Error e -> failwith e
  in
  let explore () =
    ignore (Symexec.Sexec.explore Programs.basic_router.Programs.program rt)
  in
  explore ();
  (* warm: interner tables, solver side tables *)
  let n = 200 in
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    explore ()
  done;
  let words = (Gc.minor_words () -. w0) /. float_of_int n in
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n in
  [ ("netdebug/B6a symexec: explore minor words (Gc-counted)", Some ns, Some words) ]

let tests =
  Test.make_grouped ~name:"netdebug"
    [
      b1_device_forward; b2_interp_forward; b3_generator; b4_checker_rule;
      b6_symexec; b7_compile; b8_checksum; b9_kv_get; b10_wire_roundtrip;
      b11_device_forward_spans; b11b_device_forward_spans_sampled;
      b1c_device_forward_coverage; b2c_interp_forward_coverage; b12_fuzz_oracle;
      b14_device_forward_staged; b14c_device_forward_staged_coverage;
      b15_device_forward_streamed; b16_fabric_forward; b17_testgen;
    ]

(* The match-structure rows are grouped apart because they need a different
   measurement config: they pin 100MB+ of route table in the major heap,
   and bechamel's GC stabilization compacts the heap between samples, so
   every sample restarts cache- and TLB-cold and the cold-start cost lands
   in the per-run OLS slope — an 8 µs phantom on a ~400 ns lookup. These
   rows allocate nothing per operation (the absolute gate enforces it), so
   stabilization buys them nothing: they are measured unstabilized. *)
let match_tests =
  Test.make_grouped ~name:"netdebug"
    [ b5_lpm_lookup; b5s_lpm_scan; b5b_lpm_65k; b5c_lpm_1m ]

(* per-operation estimate of one measure for one test, if the OLS converged *)
let estimate merged label name =
  match Hashtbl.find_opt merged label with
  | None -> None
  | Some per_test -> (
      match Hashtbl.find_opt per_test name with
      | None -> None
      | Some ols -> (
          match Analyze.OLS.estimates ols with Some [ v ] -> Some v | Some _ | None -> None))

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char b '\\'; Buffer.add_char b c
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json file rows =
  let oc = open_out file in
  let num = function None -> "null" | Some v -> Printf.sprintf "%.2f" v in
  output_string oc "[\n";
  List.iteri
    (fun i (name, ns, allocs) ->
      Printf.fprintf oc "  {\"name\": \"%s\", \"ns_per_op\": %s, \"minor_words_per_op\": %s}%s\n"
        (json_escape name) (num ns) (num allocs)
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "]\n";
  close_out oc;
  Format.printf "microbench results written to %s@." file

(* Instrumentation-overhead regression gate: every hook that rides the
   packet hot path — full span sampling (B11), the fuzzer's device-side
   coverage taps (B1c) and spec-side coverage map (B2c) — must stay
   within [max_ratio] of its uninstrumented baseline. Exact-name lookup
   (never by prefix — "B11..." starts with "B1"). *)
let overhead_pairs =
  [
    ( "netdebug/B11 device: forward one packet, spans 1/1",
      "netdebug/B1 device: forward one packet",
      None,
      "B11/B1" );
    ( "netdebug/B1c device: forward one packet, coverage taps",
      "netdebug/B1 device: forward one packet",
      None,
      "B1c/B1" );
    ( "netdebug/B2c interpreter: forward one packet, coverage map",
      "netdebug/B2 interpreter: forward one packet",
      None,
      "B2c/B2" );
    ( "netdebug/B15 device: forward one packet, snapshot streamer",
      "netdebug/B1 device: forward one packet",
      None,
      "B15/B1" );
    (* the network fabric's per-hop cost over the bare staged device it
       schedules (B16 wraps exactly one B14-style forward) *)
    ( "netdebug/B16 fabric: forward one packet, co-simulated fabric",
      "netdebug/B14 device: forward one packet, staged engine",
      Some 1.15,
      "B16/B14" );
  ]

(* Speedup assertions: the staged engine must actually be faster, not just
   not-slower. A staged device forward (B14) has to come in at or below
   half the tree interpreter's per-packet cost (B2) — in practice it is
   far below, but 0.5 keeps the gate robust to noisy CI hosts. *)
let speedup_pairs =
  [
    ( "netdebug/B14 device: forward one packet, staged engine",
      "netdebug/B2 interpreter: forward one packet",
      0.5,
      "B14/B2" );
    (* the coverage-tap cost is absolute (outcome materialization + edge
       hashing) while the staged baseline is several times smaller than
       B1, so a B14c/B14 *ratio* gate swings wildly with host noise.
       Gate the instrumented staged path against the tree interpreter
       instead: staged-with-taps must still clearly beat bare tree. *)
    ( "netdebug/B14c device: forward one packet, staged + coverage taps",
      "netdebug/B2 interpreter: forward one packet",
      0.9,
      "B14c/B2" );
  ]

(* Absolute floors for the match structures (ISSUE: production-scale
   tables). B5's 4283 ns ceiling is 0.25x the last committed linear-scan
   baseline (17133 ns in BENCH_micro.json) — the classifier must be at
   least 4x faster on the same 1024-prefix workload. B5c pins the
   full-feed promise: under a million installed prefixes a lookup stays
   below a microsecond and allocates nothing on the hot path. *)
let absolute_gates =
  [
    ("netdebug/B5 lpm: select over 1024 entries", 4283.0, None, "B5 <= 0.25x scan baseline");
    ( "netdebug/B5c lpm: 1,048,576-prefix table, one lookup",
      1000.0,
      Some 0.5,
      "B5c 1M-prefix lookup" );
    (* symexec allocation pin (ISSUE 9): interned terms + in-place forks
       put one explore at ~5.5k minor words; 6500 is headroom, a revert
       to the pre-interning profile (7.3k) trips it. The ns ceiling is
       deliberately loose — the words number is the regression signal. *)
    ( "netdebug/B6a symexec: explore minor words (Gc-counted)",
      150_000.0,
      Some 6_500.0,
      "B6a explore allocation" );
    (* the full oracle pipeline must stay cheap enough to run per commit:
       8 paths well under 20 ms keeps `testgen --check` a sub-second CI
       smoke even with the device sweep on top *)
    ( "netdebug/B17 testgen: path-covering vectors for basic_router",
      20_000_000.0,
      None,
      "B17 full testgen" );
    (* batched-oracle amortized floor (ISSUE 10): one differential
       execution inside a batch of 64 stays under 15 µs — about a third
       of the per-exec management-protocol path (B12), and the budget the
       async campaign's line-rate throughput is built on. Measured at
       ~6 µs / ~700 minor words after the staged raw render; the words
       ceiling pins that allocation profile with headroom. *)
    ( "netdebug/B12b fuzz: amortized batched-oracle execution (batch 64)",
      15_000.0,
      Some 1_000.0,
      "B12b batched oracle exec" );
  ]

(* Evaluate every gate pair; returns false on any violation. [quiet]
   suppresses the per-pair report (used for the provisional first pass —
   see [run]: a tripped gate triggers one re-measurement and a second
   evaluation on per-benchmark minima, since on a noisy 1-core host a
   single OLS estimate can swing tens of percent in either direction and
   min-of-two only ever removes noise, never a real regression). *)
let check_overhead_gate ?(max_ratio = 1.10) ?(quiet = false) ?(scaling = false) rows =
  let find name = List.find_opt (fun (n, _, _) -> String.equal n name) rows in
  let failed = ref false in
  List.iter
    (fun (instrumented, baseline, limit, label) ->
      let limit = Option.value limit ~default:max_ratio in
      match (find instrumented, find baseline) with
      | Some (_, Some cost, _), Some (_, Some base, _) when base > 0.0 ->
          let ratio = cost /. base in
          if not quiet then
            Format.printf "overhead gate: %s = %.3f (limit %.2f)@." label ratio limit;
          if ratio > limit then begin
            if not quiet then
              Format.eprintf "FAIL: %s costs %.1f%% over baseline (limit %.0f%%)@." label
                ((ratio -. 1.0) *. 100.0)
                ((limit -. 1.0) *. 100.0);
            failed := true
          end
      | _ ->
          if not quiet then
            Format.eprintf "FAIL: overhead gate needs %s and %s estimates in the results@."
              instrumented baseline;
          failed := true)
    overhead_pairs;
  List.iter
    (fun (fast, slow, limit, label) ->
      match (find fast, find slow) with
      | Some (_, Some cost, _), Some (_, Some base, _) when base > 0.0 ->
          let ratio = cost /. base in
          if not quiet then
            Format.printf "speedup gate: %s = %.3f (limit %.2f)@." label ratio limit;
          if ratio > limit then begin
            if not quiet then
              Format.eprintf "FAIL: %s = %.3f exceeds %.2f (staged engine not fast enough)@."
                label ratio limit;
            failed := true
          end
      | _ ->
          if not quiet then
            Format.eprintf "FAIL: speedup gate needs %s and %s estimates in the results@."
              fast slow;
          failed := true)
    speedup_pairs;
  List.iter
    (fun (name, ns_limit, words_limit, label) ->
      match find name with
      | Some (_, Some ns, words) ->
          if not quiet then
            Format.printf "absolute gate: %s = %.1f ns (limit %.0f)@." label ns ns_limit;
          if ns > ns_limit then begin
            if not quiet then
              Format.eprintf "FAIL: %s costs %.1f ns (limit %.0f ns)@." label ns ns_limit;
            failed := true
          end;
          (match (words_limit, words) with
          | Some wl, Some w ->
              if not quiet then
                Format.printf "absolute gate: %s = %.2f minor words/op (limit %.2f)@." label w
                  wl;
              if w > wl then begin
                if not quiet then
                  Format.eprintf "FAIL: %s allocates %.2f minor words/op (limit %.2f)@." label
                    w wl;
                failed := true
              end
          | Some _, None ->
              if not quiet then
                Format.eprintf "FAIL: absolute gate %s needs a minor-words estimate@." label;
              failed := true
          | None, _ -> ())
      | _ ->
          if not quiet then
            Format.eprintf "FAIL: absolute gate needs a %s estimate in the results@." name;
          failed := true)
    absolute_gates;
  (* B13 async scaling gates (evaluated only on the final row set, which
     includes the campaign wall-clock rows). On a host with >= 4 cores,
     async jobs=4 must cut wall-clock to <= 0.6x of jobs=1 — failing
     that means the sharded engine stopped scaling. On narrower hosts
     (the 1-core dev container) a parallel speedup is physically
     impossible — four domains time-slice one core and synchronize every
     minor GC — so the gate degrades to an anti-scaling guard: measured
     ~1.5x there, 1.9 is headroom, and the pre-async barrier engine's
     >2.1x would trip it. The throughput floor (>= 100k execs/s, i.e.
     <= 10 µs amortized) applies to the best configuration the host can
     actually scale to: jobs=4 with >= 4 cores, jobs=1 otherwise. *)
  if scaling then begin
    let cores = Domain.recommended_domain_count () in
    let wall jobs =
      Printf.sprintf "netdebug/B13 fuzz campaign (%d execs) wall-clock, jobs=%d, async"
        b13_budget jobs
    in
    (match (find (wall 1), find (wall 4)) with
    | Some (_, Some t1, _), Some (_, Some t4, _) when t1 > 0.0 ->
        let ratio = t4 /. t1 in
        let limit = if cores >= 4 then 0.6 else 1.9 in
        if not quiet then
          Format.printf "scaling gate: B13 async jobs=4/jobs=1 = %.3f (limit %.2f, %d core(s))@."
            ratio limit cores;
        if ratio > limit then begin
          if not quiet then
            Format.eprintf "FAIL: B13 async jobs=4 wall-clock is %.2fx jobs=1 (limit %.2fx)@."
              ratio limit;
          failed := true
        end
    | _ ->
        if not quiet then
          Format.eprintf "FAIL: scaling gate needs both B13 async wall-clock rows@.";
        failed := true);
    let floor_jobs = if cores >= 4 then 4 else 1 in
    let floor_row =
      Printf.sprintf "netdebug/B13a fuzz campaign amortized per exec, jobs=%d, async"
        floor_jobs
    in
    match find floor_row with
    | Some (_, Some ns, _) ->
        if not quiet then
          Format.printf "scaling gate: async jobs=%d = %.0f ns/exec (floor 10000, >= 100k execs/s)@."
            floor_jobs ns;
        if ns > 10_000.0 then begin
          if not quiet then
            Format.eprintf "FAIL: async jobs=%d runs at %.0f ns/exec — under 100k execs/s@."
              floor_jobs ns;
          failed := true
        end
    | _ ->
        if not quiet then
          Format.eprintf "FAIL: scaling gate needs the %s row@." floor_row;
        failed := true
  end;
  not !failed

let measure_group cfg tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let names =
    match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
    | Some per_test -> Hashtbl.fold (fun name _ acc -> name :: acc) per_test [] |> List.sort String.compare
    | None -> []
  in
  List.map
    (fun name ->
      ( name,
        estimate merged (Measure.label Instance.monotonic_clock) name,
        estimate merged (Measure.label Instance.minor_allocated) name ))
    names

let measure_once () =
  let stab = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let nostab = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (measure_group stab tests @ measure_group nostab match_tests)

let opt_min a b =
  match (a, b) with
  | Some x, Some y -> Some (Float.min x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let run ?json ?(check_overhead = false) () =
  Format.printf "@.==== Microbenchmarks (Bechamel) ====@.@.";
  let bench_rows = measure_once () @ b6a_rows () @ b12b_rows () in
  let bench_rows =
    if check_overhead && not (check_overhead_gate ~quiet:true bench_rows) then begin
      Format.printf
        "overhead gate tripped on first pass; re-measuring and gating on per-benchmark minima@.";
      let again = measure_once () in
      List.map
        (fun (name, ns, allocs) ->
          match List.find_opt (fun (n, _, _) -> String.equal n name) again with
          | Some (_, ns', allocs') -> (name, opt_min ns ns', opt_min allocs allocs')
          | None -> (name, ns, allocs))
        bench_rows
    end
    else bench_rows
  in
  let rows = bench_rows @ b13_rows () in
  let table = Stats.Texttable.create [ "benchmark"; "ns/op"; "minor w/op" ] in
  List.iter
    (fun (name, ns, allocs) ->
      let cell = function Some v -> Printf.sprintf "%.1f" v | None -> "n/a" in
      Stats.Texttable.add_row table [ name; cell ns; cell allocs ])
    rows;
  Format.printf "%s@." (Stats.Texttable.render table);
  (match json with None -> () | Some file -> write_json file rows);
  if check_overhead && not (check_overhead_gate ~scaling:true rows) then exit 1
