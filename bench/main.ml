(* Benchmark/experiment driver.

     dune exec bench/main.exe                        — everything
     dune exec bench/main.exe -- figure2             — one experiment
     dune exec bench/main.exe -- --list              — list experiment names
     dune exec bench/main.exe -- --no-micro          — experiments only
     dune exec bench/main.exe -- micro --json FILE   — also write microbench
                                                       results as JSON
     dune exec bench/main.exe -- micro --check-overhead
                                                     — fail if full span
                                                       sampling (B11) costs
                                                       >10% over B1
*)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse json wanted no_micro list gate = function
    | [] -> (json, List.rev wanted, no_micro, list, gate)
    | "--json" :: file :: rest -> parse (Some file) wanted no_micro list gate rest
    | [ "--json" ] ->
        prerr_endline "--json needs a file argument";
        exit 2
    | "--list" :: rest -> parse json wanted no_micro true gate rest
    | "--no-micro" :: rest -> parse json wanted true list gate rest
    | "--check-overhead" :: rest -> parse json wanted no_micro list true rest
    | a :: rest -> parse json (a :: wanted) no_micro list gate rest
  in
  let json, wanted, no_micro, list, check_overhead = parse None [] false false false args in
  if list then begin
    List.iter (fun (name, _) -> print_endline name) Experiments.all;
    print_endline "micro"
  end
  else begin
    let run_micro = (not no_micro) && (wanted = [] || List.mem "micro" wanted) in
    let selected =
      if wanted = [] then Experiments.all
      else List.filter (fun (name, _) -> List.mem name wanted) Experiments.all
    in
    Format.printf "NetDebug experiment reproduction (simulated NetFPGA-SUME / SDNet)@.";
    List.iter (fun (_, f) -> f ()) selected;
    if run_micro then Microbench.run ?json ~check_overhead ();
    Format.printf "@.done.@."
  end
