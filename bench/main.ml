(* Benchmark/experiment driver.

     dune exec bench/main.exe                        — everything
     dune exec bench/main.exe -- figure2             — one experiment
     dune exec bench/main.exe -- --list              — list experiment names
     dune exec bench/main.exe -- --no-micro          — experiments only
     dune exec bench/main.exe -- micro --json FILE   — also write microbench
                                                       results as JSON
*)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse json wanted no_micro list = function
    | [] -> (json, List.rev wanted, no_micro, list)
    | "--json" :: file :: rest -> parse (Some file) wanted no_micro list rest
    | [ "--json" ] ->
        prerr_endline "--json needs a file argument";
        exit 2
    | "--list" :: rest -> parse json wanted no_micro true rest
    | "--no-micro" :: rest -> parse json wanted true list rest
    | a :: rest -> parse json (a :: wanted) no_micro list rest
  in
  let json, wanted, no_micro, list = parse None [] false false args in
  if list then begin
    List.iter (fun (name, _) -> print_endline name) Experiments.all;
    print_endline "micro"
  end
  else begin
    let run_micro = (not no_micro) && (wanted = [] || List.mem "micro" wanted) in
    let selected =
      if wanted = [] then Experiments.all
      else List.filter (fun (name, _) -> List.mem name wanted) Experiments.all
    in
    Format.printf "NetDebug experiment reproduction (simulated NetFPGA-SUME / SDNet)@.";
    List.iter (fun (_, f) -> f ()) selected;
    if run_micro then Microbench.run ?json ();
    Format.printf "@.done.@."
  end
