(* Reproduction of every evaluation artefact in the paper.

   E1  Figure 1   architecture self-check
   E2  Figure 2   use-case capability matrix (NetDebug vs formal
                  verification vs external tester), scored empirically
   E3  Section 4  the SDNet 'reject' case study
   E4-E10         quantitative tables substantiating each use-case claim

   Each experiment prints a table (or verdict lines); EXPERIMENTS.md
   records the paper-vs-measured comparison. *)

module Ast = P4ir.Ast
module Value = P4ir.Value
module Interp = P4ir.Interp
module Runtime = P4ir.Runtime
module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile
module Config = Target.Config
module Device = Target.Device
module Fault = Target.Fault
module Check = Symexec.Check
module Tester = Osnt.Tester
module Harness = Netdebug.Harness
module Controller = Netdebug.Controller
module Usecases = Netdebug.Usecases
module Localize = Netdebug.Localize
module Vectors = Netdebug.Vectors
module Wire = Netdebug.Wire
module Texttable = Stats.Texttable

let ok = function Ok v -> v | Error e -> failwith e

let section title =
  Format.printf "@.==== %s ====@.@." title

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — architecture                                         *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "E1 / Figure 1: NetDebug architecture self-check";
  let h = Harness.deploy Programs.basic_router in
  Format.printf
    "host tool <-(management channel)-> [generator -> data plane under test -> checker]@.@.";
  (match Harness.self_check h with
  | Ok facts -> List.iter (fun f -> Format.printf "  [ok] %s@." f) facts
  | Error e -> Format.printf "  [FAIL] %s@." e);
  Format.printf "  [ok] management channel carried %d bytes of configuration/reads@."
    (Controller.mgmt_bytes h.Harness.controller)

(* ------------------------------------------------------------------ *)
(* E2: Figure 2 — use-case capability matrix                           *)
(* ------------------------------------------------------------------ *)

type support = Full | Partial | None_

let support_of_tasks results =
  let total = List.length results and passed = List.length (List.filter Fun.id results) in
  if passed = total && total > 0 then Full else if passed > 0 then Partial else None_

let support_str = function Full -> "full" | Partial -> "partial" | None_ -> "no"

(* --- shared probes --- *)

let garbage_probe =
  Packet.serialize
    (Packet.make
       [ Packet.Eth (Packet.Eth.make ~ethertype:0xBEEFL ()) ]
       ~payload:(Packet.payload_of_string "junk") ())

let routed_probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ())

let arp_probe = Packet.serialize (Packet.arp_request ())

(* --- NetDebug task implementations --- *)

let nd_detects_program_bug () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.buggy_router in
  not
    (Usecases.Functional.passed
       (Usecases.Functional.run ~oracle:Programs.basic_router ~fuzz:4 h))

let nd_detects_reject_quirk () =
  let h = Harness.deploy ~quirks:Quirks.default Programs.parser_guard in
  not (Usecases.Functional.passed (Usecases.Functional.run ~fuzz:4 h))

let nd_validates_cpu_punt () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.parser_guard in
  let ctl = h.Harness.controller in
  ok (Controller.clear_test_state ctl);
  ok (Controller.configure_checker ctl [ Controller.expect_port 63 ]);
  ok (Controller.configure_generator ctl [ Controller.stream arp_probe ]);
  ok (Controller.start_generator ctl);
  let s = ok (Controller.read_checker ctl) in
  List.exists (fun r -> r.Wire.rs_passed = 1) s.Wire.cs_rules

let nd_full_rate () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:1400 ()) in
  match Usecases.Performance.sweep ~loads:[ 1.0 ] ~packets_per_point:1500 h ~probe with
  | [ p ] ->
      p.Usecases.Performance.pt_achieved_gbps
      >= 0.9 *. Config.line_rate_gbps (Device.config h.Harness.device)
  | _ -> false

let nd_zero_load_latency () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ()) in
  match Usecases.Performance.sweep ~loads:[ 0.1 ] ~packets_per_point:200 h ~probe with
  | [ p ] -> p.Usecases.Performance.pt_lat_p50_ns > 0.0
  | _ -> false

let nd_compiler_tasks () =
  let detections = Usecases.Compiler_check.battery () in
  let quirk_results =
    List.filter_map
      (fun d ->
        match d.Usecases.Compiler_check.dq_quirk with
        | Some _ -> Some d.Usecases.Compiler_check.dq_detected
        | None -> None)
      detections
  in
  (* plus: attribute a divergence to a place inside the pipeline *)
  let localizes =
    let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
    Device.inject_fault h.Harness.device ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
    match fst (Localize.locate h ~probe:routed_probe) with
    | Localize.Lost_in "ma:ipv4_lpm" -> true
    | _ -> false
  in
  quirk_results @ [ localizes ]

let nd_architecture_tasks () =
  let probes = Usecases.Architecture_check.probe () in
  List.map
    (fun r ->
      r.Usecases.Architecture_check.ar_discovered
      = r.Usecases.Architecture_check.ar_documented)
    probes
  @ [ nd_full_rate () (* discovering the datapath rate is a limit probe too *) ]

let nd_resources () = Usecases.Resources.inventory () <> []

let nd_status () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  List.length (Usecases.Status.monitor ~samples:3 h ~background:routed_probe) = 3

let nd_compare_specs () =
  not
    (Usecases.Comparison.equivalent
       (Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
          Programs.basic_router Programs.buggy_router))

let nd_compare_punt_paths () =
  (* the shipped and fixed toolchains punt ARP identically, but differ on
     rejected traffic; the check point sees both sides even when the
     divergent packets leave on port 0 vs nowhere *)
  let r =
    Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.default
      ~probes:[ garbage_probe; arp_probe ] Programs.parser_guard Programs.parser_guard
  in
  (* the ARP punt (port 63) must compare equal, and the garbage probe must
     diverge: both judgments need check-point visibility *)
  List.length r.Usecases.Comparison.cr_divergences = 1

(* --- formal-verification task implementations --- *)

let fv_detects_program_bug () =
  let rt = Runtime.create () in
  ok (Runtime.install_all Programs.buggy_router.Programs.program rt
        Programs.buggy_router.Programs.entries);
  (Check.ttl_decremented Programs.buggy_router.Programs.program rt).Check.f_verdict
  = Check.Violated

let fv_compare_specs () =
  (* verify the same property on both specifications and diff the verdicts *)
  let verdict (b : Programs.bundle) =
    let rt = Runtime.create () in
    ok (Runtime.install_all b.Programs.program rt b.Programs.entries);
    (Check.ttl_decremented b.Programs.program rt).Check.f_verdict
  in
  verdict Programs.basic_router <> verdict Programs.buggy_router

(* everything that needs the hardware is out of scope for a spec-level
   tool: those tasks are [false] by construction *)
let fv_hardware_task () = false

(* --- external-tester task implementations --- *)

let build_device ?(quirks = Quirks.none) (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks b.Programs.program in
  let d = Device.create report.Compile.pipeline in
  ok (Runtime.install_all b.Programs.program (Device.runtime d) b.Programs.entries);
  d

(* expected external view per the spec: Some (port, bits) if the packet
   should appear on a physical port, None otherwise *)
let external_expectation (b : Programs.bundle) device probe =
  match
    Interp.forward b.Programs.program (Device.runtime device) ~ingress_port:0 probe
  with
  | Some (port, bits) when port >= 0 && port < (Device.config device).Config.ports ->
      Some (port, bits)
  | Some _ | None -> None

let osnt_sees_divergence ?(quirks = Quirks.default) (b : Programs.bundle) probes =
  let d = build_device ~quirks b in
  let t = Tester.attach d in
  List.exists
    (fun probe ->
      let expect = external_expectation b d probe in
      let got = Tester.send_and_observe t ~port:0 probe in
      match (expect, got) with
      | None, [] -> false
      | Some (port, bits), [ (gp, gb) ] ->
          not (gp = port && Bitutil.Bitstring.equal bits gb)
      | (Some _ | None), _ -> true)
    probes

let osnt_detects_program_bug () =
  (* external comparison against the intended behaviour *)
  let d = build_device Programs.buggy_router in
  let t = Tester.attach d in
  let intended = build_device Programs.basic_router in
  let expect = external_expectation Programs.basic_router intended routed_probe in
  match (expect, Tester.send_and_observe t ~port:0 routed_probe) with
  | Some (port, bits), [ (gp, gb) ] -> not (gp = port && Bitutil.Bitstring.equal bits gb)
  | (Some _ | None), _ -> true

let osnt_quirk_vectors (q : Quirks.quirk) =
  match q with
  | Quirks.Reject_unimplemented -> (Programs.parser_guard, [ garbage_probe ])
  | Quirks.Ternary_as_exact ->
      (Programs.acl_firewall,
       [ Packet.serialize (Packet.udp_ipv4 ~src:0x0A000001L ~dst:0x0A000002L ()) ])
  | Quirks.Shift_width_truncated _ ->
      (* reuse the shift-sensitive program through its own vectors *)
      (Programs.basic_router, [])
  | Quirks.Egress_drop_ignored -> (Programs.basic_router, [])
  | Quirks.Select_cases_truncated _ ->
      (Programs.mpls_tunnel, [ Packet.serialize (Packet.udp_ipv4 ~dst:0x0A020001L ()) ])
  | Quirks.Checksum_not_handled ->
      (Programs.basic_router,
       [
         Packet.serialize
           (Packet.map_ipv4
              (fun ip -> { ip with Packet.Ipv4.checksum = 0xBADL })
              (Packet.udp_ipv4 ~dst:0x0A000001L ()));
       ])

let osnt_compiler_tasks () =
  let detect q =
    match q with
    | Quirks.Shift_width_truncated _ | Quirks.Egress_drop_ignored ->
        (* visible externally too, via the same synthesized programs the
           NetDebug battery uses; approximate with a direct check *)
        true
    | _ ->
        let bundle, probes = osnt_quirk_vectors q in
        osnt_sees_divergence ~quirks:[ q ] bundle probes
  in
  List.map detect Quirks.all @ [ false (* cannot localize inside the pipeline *) ]

let osnt_interface_rate () =
  let d = build_device Programs.basic_router in
  let t = Tester.attach d in
  let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:1400 ()) in
  let perf = Tester.load_test t ~port:0 ~packets:500 ~offered_gbps:100.0 probe in
  (* it measures *a* rate — the interface's, not the datapath's *)
  perf.Tester.p_achieved_gbps >= 0.9 *. Tester.port_rate_gbps t
  && perf.Tester.p_achieved_gbps < 0.5 *. Config.line_rate_gbps (Device.config d)

let osnt_zero_load_latency () =
  let d = build_device Programs.basic_router in
  let t = Tester.attach d in
  let perf = Tester.load_test t ~port:0 ~packets:100 ~offered_gbps:1.0 routed_probe in
  perf.Tester.p_lat_p50_ns > 0.0

let osnt_compare_specs () =
  (* diff two devices from outside *)
  let da = build_device Programs.basic_router and db = build_device Programs.buggy_router in
  let ta = Tester.attach da and tb = Tester.attach db in
  Tester.send_and_observe ta ~port:0 routed_probe
  <> Tester.send_and_observe tb ~port:0 routed_probe

let osnt_compare_punt_paths () = false (* port 63 is invisible from outside *)

let figure2 () =
  section "E2 / Figure 2: use-case capability matrix (empirically scored)";
  Format.printf "scoring each cell by concrete tasks; see bench/experiments.ml@.@.";
  let rows =
    [
      ( "Functional testing",
        [ nd_detects_program_bug (); nd_detects_reject_quirk (); nd_validates_cpu_punt () ],
        [ fv_detects_program_bug (); fv_hardware_task (); fv_hardware_task () ],
        [ osnt_detects_program_bug ();
          osnt_sees_divergence Programs.parser_guard [ garbage_probe ];
          false (* punt path invisible *) ] );
      ( "Performance testing",
        [ nd_full_rate (); nd_zero_load_latency () ],
        [ fv_hardware_task (); fv_hardware_task () ],
        [ false (* interface-clamped *); osnt_zero_load_latency () ] );
      ( "Compiler check",
        nd_compiler_tasks (),
        List.map (fun _ -> false) Quirks.all @ [ false ],
        osnt_compiler_tasks () );
      ( "Architecture check",
        nd_architecture_tasks (),
        [ false; false; false; false; false ],
        [ false; false; false; false; osnt_interface_rate () ] );
      ("Resources quantification", [ nd_resources () ], [ false ], [ false ]);
      ("Status monitoring", [ nd_status () ], [ false ], [ false ]);
      ( "Comparison",
        [ nd_compare_specs (); nd_compare_punt_paths () ],
        [ fv_compare_specs (); fv_hardware_task () ],
        [ osnt_compare_specs (); osnt_compare_punt_paths () ] );
    ]
  in
  let t =
    Texttable.create
      [ "use-case"; "NetDebug"; "sw formal verification"; "external tester" ]
  in
  List.iter
    (fun (name, nd, fv, os) ->
      Texttable.add_row t
        [
          name;
          support_str (support_of_tasks nd);
          support_str (support_of_tasks fv);
          support_str (support_of_tasks os);
        ])
    rows;
  Format.printf "%s@." (Texttable.render t);
  Format.printf
    "paper's Figure 2: NetDebug full on all seven; formal verification: functional \
     (spec-level) and comparison only; external testers: partial on functional / \
     performance / compiler / architecture / comparison, nothing on resources / \
     status.@."

(* ------------------------------------------------------------------ *)
(* E3: Section 4 case study                                            *)
(* ------------------------------------------------------------------ *)

let case_study () =
  section "E3 / Section 4: the SDNet 'reject' bug";
  let bundle = Programs.parser_guard in
  let rt = Runtime.create () in
  ok (Runtime.install_all bundle.Programs.program rt bundle.Programs.entries);
  let fv = Check.rejected_are_dropped bundle.Programs.program rt in
  Format.printf "formal verification (spec): %a@." Check.pp_finding fv;
  let run quirks =
    let h = Harness.deploy ~quirks bundle in
    let ctl = h.Harness.controller in
    ok (Controller.configure_checker ctl
          [ Controller.expect ~name:"rejected-never-forwarded" (Ast.Const Value.fls) ]);
    ok (Controller.configure_generator ctl [ Controller.stream ~count:8 garbage_probe ]);
    ok (Controller.start_generator ctl);
    (ok (Controller.read_checker ctl)).Wire.cs_total_seen
  in
  let t = Texttable.create [ "toolchain"; "rejected packets reaching the output"; "verdict" ] in
  let shipped = run Quirks.default and fixed = run Quirks.none in
  Texttable.add_row t
    [ "shipped (reject unimplemented)"; Printf.sprintf "%d / 8" shipped;
      (if shipped > 0 then "BUG DETECTED by NetDebug" else "clean") ];
  Texttable.add_row t
    [ "fixed"; Printf.sprintf "%d / 8" fixed; (if fixed = 0 then "clean" else "bug") ];
  Format.printf "%s@." (Texttable.render t);
  Format.printf
    "shape vs paper: identical — verification passes on the spec while the \
     hardware forwards every rejected packet to the next hop; NetDebug detects it \
     immediately.@."

(* ------------------------------------------------------------------ *)
(* E4: performance                                                     *)
(* ------------------------------------------------------------------ *)

let performance () =
  section "E4: performance testing (offered-load sweep, 1454B packets)";
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:1400 ()) in
  let points = Usecases.Performance.sweep ~packets_per_point:2000 h ~probe in
  let t =
    Texttable.create
      [ "offered Gb/s"; "achieved Gb/s"; "Mpps"; "p50 ns"; "p99 ns"; "delivered" ]
  in
  List.iter
    (fun p ->
      Texttable.add_row t
        [
          Printf.sprintf "%.1f" p.Usecases.Performance.pt_offered_gbps;
          Printf.sprintf "%.2f" p.Usecases.Performance.pt_achieved_gbps;
          Printf.sprintf "%.3f" p.Usecases.Performance.pt_achieved_mpps;
          Printf.sprintf "%.0f" p.Usecases.Performance.pt_lat_p50_ns;
          Printf.sprintf "%.0f" p.Usecases.Performance.pt_lat_p99_ns;
          Printf.sprintf "%d/%d" p.Usecases.Performance.pt_received
            p.Usecases.Performance.pt_sent;
        ])
    points;
  Format.printf "%s@." (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* E5: compiler check                                                  *)
(* ------------------------------------------------------------------ *)

let compiler_check () =
  section "E5: compiler check (seeded quirk battery)";
  let t = Texttable.create [ "quirk"; "probe program"; "detected"; "evidence" ] in
  List.iter
    (fun d ->
      Texttable.add_row t
        [
          (match d.Usecases.Compiler_check.dq_quirk with
          | None -> "(control: faithful compiler)"
          | Some q -> Quirks.name q);
          d.Usecases.Compiler_check.dq_program;
          (if d.Usecases.Compiler_check.dq_detected then "yes" else "no");
          d.Usecases.Compiler_check.dq_evidence;
        ])
    (Usecases.Compiler_check.battery ());
  Format.printf "%s@." (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* E6: architecture check                                              *)
(* ------------------------------------------------------------------ *)

let architecture_check () =
  section "E6: architecture check (limit discovery)";
  let t = Texttable.create [ "limit"; "discovered"; "documented" ] in
  List.iter
    (fun r ->
      Texttable.add_row t
        [
          r.Usecases.Architecture_check.ar_limit;
          string_of_int r.Usecases.Architecture_check.ar_discovered;
          string_of_int r.Usecases.Architecture_check.ar_documented;
        ])
    (Usecases.Architecture_check.probe ());
  Format.printf "%s@." (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* E7: resources quantification                                        *)
(* ------------------------------------------------------------------ *)

let resources () =
  section "E7: resources quantification (per-program inventory)";
  let t =
    Texttable.create
      [ "program"; "stages"; "cycles"; "LUT"; "FF"; "BRAM"; "TCAM bits"; "max util %" ]
  in
  List.iter
    (fun r ->
      Texttable.add_row t
        [
          r.Usecases.Resources.rr_program;
          string_of_int r.Usecases.Resources.rr_stages;
          string_of_int r.Usecases.Resources.rr_latency_cycles;
          string_of_int r.Usecases.Resources.rr_luts;
          string_of_int r.Usecases.Resources.rr_ffs;
          string_of_int r.Usecases.Resources.rr_brams;
          string_of_int r.Usecases.Resources.rr_tcam_bits;
          Printf.sprintf "%.1f" r.Usecases.Resources.rr_max_util_pct;
        ])
    (Usecases.Resources.inventory ());
  Format.printf "%s@." (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* E8: status monitoring                                               *)
(* ------------------------------------------------------------------ *)

let status () =
  section "E8: status monitoring (periodic snapshots under live traffic)";
  let render load =
    let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
    let samples =
      Usecases.Status.monitor ~period_packets:100 ~samples:8 ~load h
        ~background:routed_probe
    in
    let t =
      Texttable.create
        [ "t (ns)"; "in"; "out"; "queue drops"; "pipeline drops"; "queue depth" ]
    in
    List.iter
      (fun s ->
        Texttable.add_row t
          [
            Printf.sprintf "%.0f" s.Wire.ss_time_ns;
            Int64.to_string s.Wire.ss_packets_in;
            Int64.to_string s.Wire.ss_packets_out;
            Int64.to_string s.Wire.ss_queue_drops;
            Int64.to_string s.Wire.ss_pipeline_drops;
            string_of_int s.Wire.ss_queue_depth;
          ])
      samples;
    Format.printf "live traffic at %.0f%% of line rate:@.%s@." (100.0 *. load)
      (Texttable.render t)
  in
  render 0.5;
  render 1.5

(* ------------------------------------------------------------------ *)
(* E9: comparison                                                      *)
(* ------------------------------------------------------------------ *)

let comparison () =
  section "E9: comparison of alternative specifications";
  let t = Texttable.create [ "pair"; "probes"; "divergences"; "verdict" ] in
  let row name r =
    Texttable.add_row t
      [
        name;
        string_of_int r.Usecases.Comparison.cr_compared;
        string_of_int (List.length r.Usecases.Comparison.cr_divergences);
        (if Usecases.Comparison.equivalent r then "equivalent" else "DIVERGENT");
      ]
  in
  row "basic_router vs router_split"
    (Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
       Programs.basic_router Programs.router_split);
  row "basic_router vs buggy_router"
    (Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
       Programs.basic_router Programs.buggy_router);
  row "parser_guard: fixed vs shipped toolchain"
    (Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.default
       Programs.parser_guard Programs.parser_guard);
  Format.printf "%s@." (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* E10: fault localization                                             *)
(* ------------------------------------------------------------------ *)

let localization () =
  section "E10: fault localization accuracy";
  let scenarios =
    [
      ("none", `None);
      ("parser", `Stage "parser");
      ("ma:ipv4_lpm", `Stage "ma:ipv4_lpm");
      ("egress", `Stage "egress");
      ("deparser", `Stage "deparser");
      ("output interface 1", `Port 1);
    ]
  in
  let t =
    Texttable.create [ "injected fault"; "NetDebug verdict"; "correct"; "external tester" ]
  in
  let correct = ref 0 in
  List.iter
    (fun (name, kind) ->
      let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
      (match kind with
      | `None -> ()
      | `Stage s -> Device.inject_fault h.Harness.device ~stage:s Fault.Drop_at_stage
      | `Port p -> Device.set_port_broken h.Harness.device p true);
      let verdict, _ = Localize.locate h ~probe:routed_probe in
      let is_correct =
        match (kind, verdict) with
        | `None, Localize.Healthy -> true
        | `Stage s, Localize.Lost_in s' -> String.equal s s'
        | `Port p, Localize.Lost_after_check_point p' -> p = p'
        | (`None | `Stage _ | `Port _), _ -> false
      in
      if is_correct then incr correct;
      let tester_view =
        let tester = Osnt.Tester.attach h.Harness.device in
        match Tester.send_and_observe tester ~port:0 routed_probe with
        | [] -> "silence (no diagnosis)"
        | _ -> "packets flow"
      in
      Texttable.add_row t
        [ name; Localize.verdict_to_string verdict; (if is_correct then "yes" else "NO");
          tester_view ])
    scenarios;
  Format.printf "%s@." (Texttable.render t);
  Format.printf "localization accuracy: %d/%d@." !correct (List.length scenarios)

(* ------------------------------------------------------------------ *)
(* Ablations of DESIGN.md's design decisions                           *)
(* ------------------------------------------------------------------ *)

(* A1: localization burst length vs an intermittent fault. A fault that
   eats every 4th packet is invisible to short bursts: the burst must be
   at least the fault period. *)
let ablation_localization () =
  section "A1 (ablation): localization burst length vs an intermittent fault";
  let t = Texttable.create [ "probes in burst"; "verdict"; "fault found?" ] in
  List.iter
    (fun count ->
      let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
      Device.inject_fault h.Harness.device ~stage:"ma:ipv4_lpm" (Fault.Intermittent_drop 4);
      let verdict, _ = Localize.locate ~count h ~probe:routed_probe in
      let found =
        match verdict with Localize.Lost_in "ma:ipv4_lpm" -> "yes" | _ -> "NO"
      in
      Texttable.add_row t
        [ string_of_int count; Localize.verdict_to_string verdict; found ])
    [ 1; 2; 3; 4; 8; 16; 64 ];
  Format.printf "%s@." (Texttable.render t);
  Format.printf
    "an every-4th-packet fault needs a burst of >= 4 probes; single-probe \
     debugging (ping-style) misses it entirely.@."

(* A2: solver candidate mining on/off. Witness generation depends on
   mining constants out of the path conditions; pure random search almost
   never hits 16- and 32-bit exact constraints. *)
let ablation_solver () =
  section "A2 (ablation): solver candidate mining vs random search";
  let t =
    Texttable.create
      [ "program"; "paths"; "infeasible (proved)"; "witnesses (mined)";
        "witnesses (random, same budget)" ]
  in
  List.iter
    (fun (b : Programs.bundle) ->
      let rt = Runtime.create () in
      ok (Runtime.install_all b.Programs.program rt b.Programs.entries);
      let run = Symexec.Sexec.explore b.Programs.program rt in
      let count use_mining wanted =
        List.length
          (List.filter
             (fun p ->
               match
                 Symexec.Solver.solve ~use_mining ~max_tries:20000
                   p.Symexec.Sexec.p_conds
               with
               | Symexec.Solver.Sat _ -> wanted = `Sat
               | Symexec.Solver.Unsat -> wanted = `Unsat
               | Symexec.Solver.Unknown -> false)
             run.Symexec.Sexec.paths)
      in
      Texttable.add_row t
        [
          b.Programs.program.Ast.p_name;
          string_of_int (List.length run.Symexec.Sexec.paths);
          string_of_int (count true `Unsat);
          string_of_int (count true `Sat);
          string_of_int (count false `Sat);
        ])
    [ Programs.basic_router; Programs.parser_guard; Programs.acl_firewall;
      Programs.mpls_tunnel; Programs.vlan_router ];
  Format.printf "%s@." (Texttable.render t)

(* A3: test-vector source. Are symbolic path witnesses actually needed, or
   would fuzz alone catch the compiler quirks? *)
let ablation_vectors () =
  section "A3 (ablation): path-coverage vectors vs fuzz-only detection";
  let t =
    Texttable.create [ "quirk"; "path vectors (w/ extras)"; "fuzz only (32 pkts)" ]
  in
  List.iter
    (fun q ->
      let bundle = Usecases.Compiler_check.sensitive_program q in
      let h = Harness.deploy ~quirks:[ q ] bundle in
      let with_paths =
        let r = Usecases.Functional.run ~fuzz:0 h in
        let extra =
          if q = Quirks.Checksum_not_handled then
            let corrupted =
              Packet.serialize
                (Packet.map_ipv4
                   (fun ip -> { ip with Packet.Ipv4.checksum = 0xBADL })
                   (Packet.udp_ipv4 ~dst:0x0A000001L ()))
            in
            Usecases.Functional.run ~vectors:[ corrupted ] ~fuzz:0 h
          else { Usecases.Functional.fr_tested = 0; fr_mismatches = [] }
        in
        r.Usecases.Functional.fr_mismatches <> []
        || extra.Usecases.Functional.fr_mismatches <> []
      in
      let fuzz_only =
        let r = Usecases.Functional.run ~vectors:[] ~fuzz:32 h in
        r.Usecases.Functional.fr_mismatches <> []
      in
      Texttable.add_row t
        [
          Quirks.name q;
          (if with_paths then "detected" else "MISSED");
          (if fuzz_only then "detected" else "MISSED");
        ])
    Quirks.all;
  Format.printf "%s@." (Texttable.render t);
  Format.printf
    "the two sources are complementary: fuzz misses quirks gated on exact \
     constants (table entries, select cases), while path witnesses may pick \
     degenerate field values (zeros) that mask value-dependent divergences \
     such as the narrow shifter. The production battery runs both.@."

(* E-PAR: scaling of the parallel validation engine. Two workloads — the
   E-FZ guided campaign (budget 2000) and a 10k-vector functional sweep —
   at jobs in {1,2,4,8}, with the determinism contract checked at every
   point: the campaign report must render byte-identically and the sweep
   must test/flag the same vectors regardless of jobs. Wall-clock is
   measured with Unix.gettimeofday (Sys.time sums CPU time across domains
   and would hide any speedup). *)
let epar () =
  section "E-PAR: multicore parallel validation engine scaling";
  Format.printf
    "host has %d recognized core(s); speedups above 1 core appear only on \
     multicore runners (CI uses 4)@.@."
    (Domain.recommended_domain_count ());
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let budget = 2000 and sweep = 10_000 in
  let t =
    Texttable.create
      [ "jobs"; "fuzz 2000 (s)"; "speedup"; "sweep 10k vecs (s)"; "speedup" ]
  in
  let base_fuzz = ref 0.0 and base_sweep = ref 0.0 in
  let fuzz_renders = ref [] and sweep_results = ref [] in
  List.iter
    (fun jobs ->
      let rf, tf =
        time (fun () -> Fuzz.Campaign.run ~jobs ~budget ~seed:1 Programs.basic_router)
      in
      let h = Harness.deploy Programs.basic_router in
      let rs, ts = time (fun () -> Usecases.Functional.run ~fuzz:sweep ~jobs h) in
      if jobs = 1 then begin
        base_fuzz := tf;
        base_sweep := ts
      end;
      fuzz_renders := Fuzz.Campaign.render rf :: !fuzz_renders;
      sweep_results :=
        (rs.Usecases.Functional.fr_tested, List.length rs.Usecases.Functional.fr_mismatches)
        :: !sweep_results;
      Texttable.add_row t
        [
          string_of_int jobs;
          Printf.sprintf "%.3f" tf;
          Printf.sprintf "%.2fx" (!base_fuzz /. tf);
          Printf.sprintf "%.3f" ts;
          Printf.sprintf "%.2fx" (!base_sweep /. ts);
        ])
    [ 1; 2; 4; 8 ];
  Format.printf "%s@." (Texttable.render t);
  let identical l = List.for_all (fun x -> x = List.hd l) l in
  Format.printf "  [%s] campaign report byte-identical across jobs {1,2,4,8}@."
    (if identical !fuzz_renders then "ok" else "FAIL");
  Format.printf "  [%s] functional sweep (tested, mismatches) invariant across jobs@."
    (if identical !sweep_results then "ok" else "FAIL");
  if not (identical !fuzz_renders && identical !sweep_results) then exit 1

(* E-CHURN: production-scale route churn. A full-feed-sized LPM table
   (200k prefixes, BGP-like length mix) deployed on the device, then
   sustained control-plane churn — one insert plus one remove per step,
   120k updates total — while the generator keeps live traffic flowing and
   the checker validates it. Three invariants are asserted:

   - zero verdict drift: at every checkpoint, [Runtime.lookup] (the
     incremental classifier) is compared against [Entry.select] over an
     independently maintained mirror of the live entry set — the ground
     truth the classifier must stay bit-identical to;
   - no structural rebuilds: [Runtime.classifier_rebuilds] must not move
     during churn — updates patch the match structure in place;
   - live validation stays green: every packet the checker observes has
     been through set_nexthop (TTL decremented), and none of the rule
     evaluations fail while the table is being rewritten under traffic.

   The run also exercises the table telemetry: the per-table entries gauge
   must read exactly the live count and the update_ns histogram must have
   seen every one of the 320k timed mutations (wall-clock fed via
   [update_clock]). *)
let echurn () =
  section "E-CHURN: route churn at full-feed scale under live traffic";
  let module Entry = P4ir.Entry in
  let module Prng = Bitutil.Prng in
  let n0 = 200_000 and steps = 60_000 and check_every = 2_000 in
  let pool = Routes.prefixes ~seed:11 ~n:(n0 + steps) in
  let update_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  (* the full-feed table models DRAM-backed match memory, not on-chip
     BRAM: lift the stock SUME per-table entry ceiling to fit it *)
  let config =
    { Config.netfpga_sume with Config.max_table_entries = Routes.table_size; Config.brams = 16_384 }
  in
  let h = Harness.deploy ~quirks:Quirks.none ~config ~update_clock Routes.bundle in
  let ctl = h.Harness.controller in
  let rt = Device.runtime h.Harness.device in
  let entry_of i =
    let addr, len = pool.(i) in
    Routes.entry ~addr ~len
  in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n0 - 1 do
    Runtime.add_exn Routes.program rt ~table:Routes.table_name (entry_of i)
  done;
  let install_s = Unix.gettimeofday () -. t0 in
  (* mirror bookkeeping: fresh inserts consume pool indices in order, so
     the live set in ascending pool order is exactly install order *)
  let total = n0 + steps in
  let alive = Array.make total false in
  Array.fill alive 0 n0 true;
  let live_idx = Array.init total (fun i -> i) in
  let nlive = ref n0 in
  let g = Prng.create 99 in
  let mirror () =
    let acc = ref [] in
    for i = total - 1 downto 0 do
      if alive.(i) then acc := entry_of i :: !acc
    done;
    !acc
  in
  let sample_addr () =
    if Prng.int g 10 < 8 && !nlive > 0 then begin
      let a, l = pool.(live_idx.(Prng.int g !nlive)) in
      a lor (Int64.to_int (Prng.bits g ~width:32) land lnot (Routes.mask_int l) land 0xffffffff)
    end
    else Int64.to_int (Prng.bits g ~width:32)
  in
  (* build the classifier before taking the rebuild baseline *)
  ignore
    (Runtime.lookup rt ~table:Routes.table_name ~degrade_ternary_to_exact:false
       (Routes.key_of_addr (sample_addr ())));
  let rebuilds0 = Runtime.classifier_rebuilds rt in
  let drift = ref 0 and checked = ref 0 in
  let seen = ref 0 and passed = ref 0 and failed = ref 0 in
  let checkpoint () =
    let mir = mirror () in
    let addrs = Array.init 8 (fun _ -> sample_addr ()) in
    Array.iter
      (fun addr ->
        let key = Routes.key_of_addr addr in
        incr checked;
        let got = Runtime.lookup rt ~table:Routes.table_name ~degrade_ternary_to_exact:false key in
        let want = Entry.select mir key in
        if got <> want then incr drift)
      addrs;
    ok (Controller.clear_test_state ctl);
    ok
      (Controller.configure_checker ctl
         [ Controller.expect ~name:"forwarded-ttl-decremented"
             P4ir.Dsl.(fld "ipv4" "ttl" ==: const ~width:8 63) ]);
    ok
      (Controller.configure_generator ctl
         (Array.to_list
            (Array.map
               (fun addr ->
                 Controller.stream ~count:4
                   (Packet.serialize (Packet.udp_ipv4 ~dst:(Int64.of_int addr) ())))
               addrs)));
    ok (Controller.start_generator ctl);
    let s = ok (Controller.read_checker ctl) in
    seen := !seen + s.Wire.cs_total_seen;
    List.iter
      (fun r ->
        passed := !passed + r.Wire.rs_passed;
        failed := !failed + r.Wire.rs_failed)
      s.Wire.cs_rules
  in
  let t1 = Unix.gettimeofday () in
  for t = 0 to steps - 1 do
    let pi = n0 + t in
    Runtime.add_exn Routes.program rt ~table:Routes.table_name (entry_of pi);
    alive.(pi) <- true;
    live_idx.(!nlive) <- pi;
    incr nlive;
    let j = Prng.int g !nlive in
    let vi = live_idx.(j) in
    ok (Runtime.remove Routes.program rt ~table:Routes.table_name (entry_of vi));
    alive.(vi) <- false;
    live_idx.(j) <- live_idx.(!nlive - 1);
    decr nlive;
    if (t + 1) mod check_every = 0 then checkpoint ()
  done;
  let churn_s = Unix.gettimeofday () -. t1 in
  let rebuild_delta = Runtime.classifier_rebuilds rt - rebuilds0 in
  let entries_gauge = ref nan and upd_h = ref None in
  List.iter
    (fun (name, _, v) ->
      match v with
      | Telemetry.Registry.Gauge gv when name = "table/" ^ Routes.table_name ^ "/entries" ->
          entries_gauge := gv
      | Telemetry.Registry.Histogram hh when name = "table/" ^ Routes.table_name ^ "/update_ns"
        ->
          upd_h := Some hh
      | _ -> ())
    (Telemetry.Registry.snapshot (Device.metrics h.Harness.device));
  let updates = 2 * steps in
  let t = Texttable.create [ "metric"; "value" ] in
  Texttable.add_row t [ "initial prefixes"; string_of_int n0 ];
  Texttable.add_row t [ "install time"; Printf.sprintf "%.2f s" install_s ];
  Texttable.add_row t
    [ "churn updates"; Printf.sprintf "%d (%d ins + %d del)" updates steps steps ];
  Texttable.add_row t
    [ "churn rate"; Printf.sprintf "%.0f updates/s" (float updates /. churn_s) ];
  Texttable.add_row t
    [ "ground-truth probes"; Printf.sprintf "%d (drift %d)" !checked !drift ];
  Texttable.add_row t
    [ "live traffic"; Printf.sprintf "%d seen, %d rule evals, %d failed" !seen !passed !failed ];
  Texttable.add_row t [ "classifier rebuilds during churn"; string_of_int rebuild_delta ];
  Texttable.add_row t
    [ "entries gauge"; Printf.sprintf "%.0f (expect %d)" !entries_gauge !nlive ];
  (match !upd_h with
  | Some hh ->
      Texttable.add_row t
        [ "update_ns histogram";
          Printf.sprintf "n=%d mean=%.0f p99=%.0f max=%.0f" (Stats.Histogram.count hh)
            (Stats.Histogram.mean hh)
            (Stats.Histogram.percentile hh 99.0)
            (Stats.Histogram.max_value hh) ]
  | None -> Texttable.add_row t [ "update_ns histogram"; "MISSING" ]);
  Format.printf "%s@." (Texttable.render t);
  let fail = ref false in
  let check cond msg =
    Format.printf "  [%s] %s@." (if cond then "ok" else "FAIL") msg;
    if not cond then fail := true
  in
  check (!drift = 0) "zero verdict drift: classifier == Entry.select over the live mirror";
  check (!seen > 0 && !failed = 0 && !passed > 0)
    "checker validated live traffic throughout the churn, no rule failures";
  check (rebuild_delta = 0) "no structural rebuilds: every update patched the table in place";
  check
    (Runtime.entry_count rt Routes.table_name = !nlive
    && int_of_float !entries_gauge = !nlive)
    "entries gauge tracks the live table size";
  check
    (match !upd_h with Some hh -> Stats.Histogram.count hh = n0 + updates | None -> false)
    "update_ns histogram saw every timed mutation";
  if !fail then exit 1

let all =
  [
    ("figure1", figure1);
    ("figure2", figure2);
    ("case_study", case_study);
    ("performance", performance);
    ("compiler_check", compiler_check);
    ("architecture_check", architecture_check);
    ("resources", resources);
    ("status", status);
    ("comparison", comparison);
    ("localization", localization);
    ("ablation_localization", ablation_localization);
    ("ablation_solver", ablation_solver);
    ("ablation_vectors", ablation_vectors);
    ("epar", epar);
    ("churn", echurn);
  ]
