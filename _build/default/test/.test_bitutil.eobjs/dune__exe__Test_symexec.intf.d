test/test_symexec.mli:
