test/test_stateful.ml: Alcotest Array Bitutil Fmt Int64 List Netdebug P4front P4ir Packet Sdnet Stats Symexec Target
