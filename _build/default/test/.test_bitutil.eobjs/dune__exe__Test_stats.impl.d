test/test_stats.ml: Alcotest List QCheck QCheck_alcotest Stats String
