test/test_symexec.ml: Alcotest Bitutil List P4ir QCheck QCheck_alcotest String Symexec
