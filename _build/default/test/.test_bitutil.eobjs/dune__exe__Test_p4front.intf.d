test/test_p4front.mli:
