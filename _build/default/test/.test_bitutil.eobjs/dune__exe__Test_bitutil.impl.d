test/test_bitutil.ml: Alcotest Bitutil Char Int64 List QCheck QCheck_alcotest String
