test/test_netdebug.ml: Alcotest Bitutil Buffer Int64 List Netdebug P4ir Packet QCheck QCheck_alcotest Result Sdnet String Symexec Target
