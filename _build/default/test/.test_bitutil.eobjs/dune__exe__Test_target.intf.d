test/test_target.mli:
