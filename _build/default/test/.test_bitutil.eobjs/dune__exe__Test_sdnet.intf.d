test/test_sdnet.mli:
