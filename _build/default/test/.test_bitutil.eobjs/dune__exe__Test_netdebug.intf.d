test/test_netdebug.mli:
