test/test_p4ir.ml: Alcotest Format Int64 List P4ir QCheck QCheck_alcotest String
