test/test_p4ir.mli:
