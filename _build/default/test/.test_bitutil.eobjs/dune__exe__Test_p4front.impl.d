test/test_p4front.ml: Alcotest Bitutil Gen List Netdebug P4front P4ir Packet QCheck QCheck_alcotest Sdnet Test
