test/test_trace.ml: Alcotest Format List String Trace
