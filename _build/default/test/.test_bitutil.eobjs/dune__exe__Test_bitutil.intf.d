test/test_bitutil.mli:
