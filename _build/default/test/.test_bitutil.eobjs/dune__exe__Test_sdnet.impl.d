test/test_sdnet.ml: Alcotest Bitutil Format List P4ir Packet Printf Sdnet String Target
