test/test_osnt.mli:
