test/test_trace.mli:
