test/test_target.ml: Alcotest Bitutil Fmt Int64 List P4ir Packet QCheck QCheck_alcotest Sdnet Stats Target Trace
