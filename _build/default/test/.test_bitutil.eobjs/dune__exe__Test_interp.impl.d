test/test_interp.ml: Alcotest Bitutil Int64 List P4ir Packet Printf QCheck QCheck_alcotest String
