test/test_integration.ml: Alcotest List Netdebug P4front P4ir Packet Printf Sdnet String Symexec Target
