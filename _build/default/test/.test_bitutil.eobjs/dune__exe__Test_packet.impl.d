test/test_packet.ml: Alcotest Bitutil Int64 List Packet QCheck QCheck_alcotest String
