test/test_osnt.ml: Alcotest List Osnt P4ir Packet Sdnet Target
