test/test_stateful.mli:
