(* Tests for the external-tester baseline, including the visibility
   asymmetries that drive Figure 2. *)

module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Device = Target.Device
module Fault = Target.Fault
module Config = Target.Config
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile
module Tester = Osnt.Tester
module P = Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?(quirks = Quirks.none) (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks b.Programs.program in
  let d = Device.create report.Sdnet.Compile.pipeline in
  (match Runtime.install_all b.Programs.program (Device.runtime d) b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  d

let test_send_and_observe () =
  let d = build Programs.basic_router in
  let t = Tester.attach d in
  match Tester.send_and_observe t ~port:0 (P.serialize (P.udp_ipv4 ~dst:0x0A000005L ())) with
  | [ (port, _) ] -> check_int "routed externally" 1 port
  | outs -> Alcotest.failf "expected one packet, saw %d" (List.length outs)

let test_rejects_bad_port () =
  let d = build Programs.basic_router in
  let t = Tester.attach d in
  try
    ignore (Tester.send_and_observe t ~port:9 (P.serialize (P.udp_ipv4 ())));
    Alcotest.fail "accepted non-physical port"
  with Invalid_argument _ -> ()

let test_functional_cases () =
  let d = build Programs.basic_router in
  let t = Tester.attach d in
  let routed = P.udp_ipv4 ~dst:0x0A010005L () in
  let expected_bits =
    (* the tester's expectation comes from running the spec offline *)
    match
      P4ir.Interp.forward Programs.basic_router.Programs.program (Device.runtime d)
        ~ingress_port:0 (P.serialize routed)
    with
    | Some (_, bits) -> bits
    | None -> Alcotest.fail "spec forwards this"
  in
  let cases =
    [
      {
        Tester.c_name = "routed to 10.1/16";
        c_port = 0;
        c_packet = P.serialize routed;
        c_expect = Some (2, expected_bits);
      };
      {
        Tester.c_name = "miss dropped";
        c_port = 0;
        c_packet = P.serialize (P.udp_ipv4 ~dst:0x08080808L ());
        c_expect = None;
      };
    ]
  in
  List.iter
    (fun r -> check_bool r.Tester.r_name true r.Tester.r_pass)
    (Tester.run_cases t cases)

let test_cannot_distinguish_drop_reasons () =
  (* a parser reject, an ACL drop and an injected hardware fault all look
     identical from outside: silence *)
  let silent_outcomes =
    [
      (build Programs.basic_router, P.serialize (P.arp_request ()));
      (build Programs.basic_router, P.serialize (P.udp_ipv4 ~dst:0x08080808L ()));
      (let d = build Programs.basic_router in
       Device.inject_fault d ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
       (d, P.serialize (P.udp_ipv4 ~dst:0x0A000005L ())));
    ]
  in
  let observations =
    List.map
      (fun (d, pkt) ->
        let t = Tester.attach d in
        Tester.send_and_observe t ~port:0 pkt)
      silent_outcomes
  in
  List.iter (fun outs -> check_int "silence" 0 (List.length outs)) observations

let test_blind_to_nonphysical_ports () =
  (* parser_guard punts ARP to CPU port 63: NetDebug's check point sees it
     (proved in test_target), the external tester sees nothing *)
  let d = build Programs.parser_guard in
  let t = Tester.attach d in
  let outs = Tester.send_and_observe t ~port:0 (P.serialize (P.arp_request ())) in
  check_int "invisible punt" 0 (List.length outs)

let test_load_clamped_to_interface_rate () =
  let d = build Programs.basic_router in
  let t = Tester.attach d in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:1000 ()) in
  let perf = Tester.load_test t ~port:0 ~packets:500 ~offered_gbps:40.0 probe in
  (* SUME model: 4 ports sharing 51.2G -> 12.8G per interface *)
  Alcotest.(check (float 0.01))
    "clamped" (Tester.port_rate_gbps t) perf.Tester.p_offered_gbps;
  check_bool "achieves interface rate" true
    (perf.Tester.p_achieved_gbps >= 0.9 *. perf.Tester.p_offered_gbps)

let test_load_test_receives () =
  let d = build Programs.basic_router in
  let t = Tester.attach d in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ()) in
  let perf = Tester.load_test t ~port:0 ~packets:200 ~offered_gbps:1.0 probe in
  check_int "nothing lost at 1G" 200 perf.Tester.p_received;
  check_bool "latency measured" true (perf.Tester.p_lat_p50_ns > 0.0)

let () =
  Alcotest.run "osnt"
    [
      ( "tester",
        [
          Alcotest.test_case "send and observe" `Quick test_send_and_observe;
          Alcotest.test_case "rejects bad port" `Quick test_rejects_bad_port;
          Alcotest.test_case "functional cases" `Quick test_functional_cases;
          Alcotest.test_case "cannot distinguish drops" `Quick
            test_cannot_distinguish_drop_reasons;
          Alcotest.test_case "blind to non-physical ports" `Quick
            test_blind_to_nonphysical_ports;
          Alcotest.test_case "load clamped to interface" `Quick
            test_load_clamped_to_interface_rate;
          Alcotest.test_case "load test receives" `Quick test_load_test_receives;
        ] );
    ]
