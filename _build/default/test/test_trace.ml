(* Tests for the bounded event trace. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_record_and_read () =
  let t = Trace.create () in
  Trace.record t ~time_ns:1.0 ~component:"parser" "hello";
  Trace.record t ~time_ns:2.0 ~component:"ma:lpm" "world";
  check_int "count" 2 (Trace.count t);
  match Trace.events t with
  | [ a; b ] ->
      Alcotest.(check string) "order" "parser" a.Trace.component;
      Alcotest.(check string) "order" "ma:lpm" b.Trace.component
  | _ -> Alcotest.fail "expected two events"

let test_packet_correlation () =
  let t = Trace.create () in
  Trace.record t ~packet_id:7 ~time_ns:1.0 ~component:"parser" "a";
  Trace.record t ~packet_id:8 ~time_ns:2.0 ~component:"parser" "b";
  Trace.record t ~packet_id:7 ~time_ns:3.0 ~component:"deparser" "c";
  let evs = Trace.events_for_packet t 7 in
  check_int "two events for pkt 7" 2 (List.length evs);
  check_bool "ordered" true
    (match evs with [ a; b ] -> a.Trace.time_ns < b.Trace.time_ns | _ -> false)

let test_by_component () =
  let t = Trace.create () in
  for i = 1 to 5 do
    Trace.record t ~time_ns:(float_of_int i) ~component:"x" "e"
  done;
  Trace.record t ~time_ns:9.0 ~component:"y" "e";
  check_int "component filter" 5 (List.length (Trace.by_component t "x"))

let test_ring_eviction () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.record t ~time_ns:(float_of_int i) ~component:"c" (string_of_int i)
  done;
  check_int "capped" 8 (Trace.count t);
  check_int "dropped" 12 (Trace.dropped t);
  (match Trace.events t with
  | first :: _ -> Alcotest.(check string) "oldest survivor" "13" first.Trace.message
  | [] -> Alcotest.fail "empty");
  Trace.clear t;
  check_int "cleared" 0 (Trace.count t)

let test_severity_rendering () =
  Alcotest.(check string) "error" "ERROR" (Trace.severity_to_string Trace.Error);
  let t = Trace.create () in
  Trace.record t ~severity:Trace.Warn ~time_ns:1.5 ~component:"q" "overflow";
  match Trace.events t with
  | [ e ] ->
      let s = Format.asprintf "%a" Trace.pp_event e in
      check_bool "has WARN" true
        (String.length s > 0 &&
         let rec contains i =
           i + 4 <= String.length s && (String.sub s i 4 = "WARN" || contains (i + 1))
         in
         contains 0)
  | _ -> Alcotest.fail "expected one event"

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "record and read" `Quick test_record_and_read;
          Alcotest.test_case "packet correlation" `Quick test_packet_correlation;
          Alcotest.test_case "by component" `Quick test_by_component;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "severity rendering" `Quick test_severity_rendering;
        ] );
    ]
