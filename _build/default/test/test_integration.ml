(* Cross-cutting integration scenarios: the full workflow (verify on the
   spec, deploy, validate against the device, localize), a program x quirk
   sensitivity matrix, and a whole-library verification regression. *)

module Ast = P4ir.Ast
module Runtime = P4ir.Runtime
module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Device = Target.Device
module Fault = Target.Fault
module Check = Symexec.Check
module Harness = Netdebug.Harness
module Usecases = Netdebug.Usecases
module Localize = Netdebug.Localize
module P = Packet

let check_bool = Alcotest.(check bool)

let deploy_rt (b : Programs.bundle) =
  let rt = Runtime.create () in
  (match Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  rt

(* ---------------- program x quirk sensitivity matrix ----------------

   Functional validation of program P compiled with quirk Q must flag a
   divergence exactly when Q perturbs behaviour P actually exercises. *)

let sensitivity_cases =
  [
    (* program, quirk, should functional testing detect it? *)
    (Programs.parser_guard, Quirks.Reject_unimplemented, true);
    (Programs.l2_switch, Quirks.Reject_unimplemented, false)
    (* l2_switch's parser never rejects: the quirk is invisible *);
    (Programs.acl_firewall, Quirks.Ternary_as_exact, true);
    (Programs.basic_router, Quirks.Ternary_as_exact, false)
    (* no ternary keys anywhere *);
    (Programs.l2_switch, Quirks.Checksum_not_handled, false)
    (* no IPv4 handling at all *);
    (Programs.basic_router, Quirks.Egress_drop_ignored, false)
    (* drops only in ingress *);
    (Programs.mpls_tunnel, Quirks.Select_cases_truncated 1, true);
    (Programs.basic_router, Quirks.Select_cases_truncated 1, false)
    (* both selects have exactly one case *);
  ]

let test_quirk_sensitivity_matrix () =
  List.iter
    (fun ((b : Programs.bundle), quirk, expected) ->
      let h = Harness.deploy ~quirks:[ quirk ] b in
      let r = Usecases.Functional.run ~fuzz:16 h in
      let detected = not (Usecases.Functional.passed r) in
      check_bool
        (Printf.sprintf "%s under %s" b.Programs.program.Ast.p_name (Quirks.name quirk))
        expected detected)
    sensitivity_cases

(* ---------------- the full developer workflow ---------------- *)

let test_full_workflow_on_textual_program () =
  (* 1. the developer writes P4 (the file shipped in examples/) *)
  let bundle =
    match P4front.Front.parse_file "router.p4" with
    | Ok b -> b
    | Error e -> Alcotest.failf "parse: %a" P4front.Front.pp_error e
  in
  (* 2. formal verification on the spec: all green *)
  let rt = deploy_rt bundle in
  let findings = Check.run_all bundle.Programs.program rt in
  check_bool "spec verifies" true
    (List.for_all (fun f -> f.Check.f_verdict <> Check.Violated) findings);
  (* 3. deploy on the shipped (buggy) toolchain. For this router most
     rejected traffic dies in ingress anyway (no observable change), but a
     corrupted-checksum packet to a routed prefix must be dropped per the
     spec — under the reject quirk it sails through. NetDebug flags it. *)
  let h = Harness.deploy ~quirks:Quirks.default bundle in
  let corrupted =
    P.serialize
      (P.map_ipv4
         (fun ip -> { ip with P.Ipv4.checksum = 0xBADL })
         (P.udp_ipv4 ~dst:0x0A000005L ()))
  in
  let r = Usecases.Functional.run ~vectors:[ corrupted ] ~fuzz:8 h in
  check_bool "device diverges under the shipped toolchain" true
    (not (Usecases.Functional.passed r));
  (* 4. fixed toolchain: clean, same vectors *)
  let h = Harness.deploy ~quirks:Quirks.none bundle in
  let r = Usecases.Functional.run ~vectors:[ corrupted ] ~fuzz:8 h in
  check_bool "device clean under the fixed toolchain" true
    (Usecases.Functional.passed r);
  (* 5. a hardware fault appears in the field: localize it *)
  Device.inject_fault h.Harness.device ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
  match fst (Localize.locate h ~probe:(P.serialize (P.udp_ipv4 ~dst:0x0A000005L ()))) with
  | Localize.Lost_in "ma:ipv4_lpm" -> ()
  | v -> Alcotest.failf "localization said: %s" (Localize.verdict_to_string v)

(* ---------------- library-wide verification regression ----------------

   For every program in the library, run the full property battery and
   compare against the expected verdict set. Violations must be exactly
   the by-design ones. *)

let expected_violations = function
  | "buggy_router" -> [ "forwarded IPv4 packets have ttl_out = ttl_in - 1" ]
  | "parser_guard" ->
      (* ARP punts are forwarded without an IPv4 header (by design), and
         drop_packet is declared on the LPM table but unused: the default
         route forwards everything *)
      [ "no forward without valid ipv4"; "table ipv4_lpm: action drop_packet reachable" ]
  | "mpls_tunnel" ->
      (* MPLS transit swaps decrement the LABEL ttl, not the inner IPv4
         ttl: the generic router property legitimately does not apply *)
      [ "forwarded IPv4 packets have ttl_out = ttl_in - 1" ]
  | "router_split" ->
      (* with the standard entries every LPM hit resolves to an installed
         next-hop, so the nexthop table's default can never fire: a true
         dead-action finding *)
      [ "table nexthop: action drop_packet reachable" ]
  | _ -> []

let test_library_verification_regression () =
  List.iter
    (fun (b : Programs.bundle) ->
      let rt = deploy_rt b in
      let findings = Check.run_all b.Programs.program rt in
      let violated =
        List.filter_map
          (fun f ->
            if f.Check.f_verdict = Check.Violated then Some f.Check.f_property else None)
          findings
        |> List.sort String.compare
      in
      let expected =
        List.sort String.compare (expected_violations b.Programs.program.Ast.p_name)
      in
      Alcotest.(check (list string))
        (b.Programs.program.Ast.p_name ^ " violations")
        expected violated)
    Programs.all

(* ---------------- every clean program passes on a faithful device ------ *)

let test_library_functional_regression () =
  List.iter
    (fun (b : Programs.bundle) ->
      let h = Harness.deploy ~quirks:Quirks.none b in
      (* stateful programs get the threaded-register oracle *)
      let stateful = b.Programs.program.Ast.p_registers <> [] in
      let r = Usecases.Functional.run ~fuzz:8 ~stateful h in
      check_bool
        (b.Programs.program.Ast.p_name ^ " matches its own spec on faithful hardware")
        true (Usecases.Functional.passed r))
    Programs.all

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "quirk sensitivity matrix" `Slow test_quirk_sensitivity_matrix;
          Alcotest.test_case "full workflow (textual program)" `Quick
            test_full_workflow_on_textual_program;
          Alcotest.test_case "library verification regression" `Slow
            test_library_verification_regression;
          Alcotest.test_case "library functional regression" `Slow
            test_library_functional_regression;
        ] );
    ]
