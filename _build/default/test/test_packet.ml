(* Tests for protocol codecs and the packet assembler. *)

module Bitstring = Bitutil.Bitstring
module P = Packet
module Eth = Packet.Eth
module Vlan = Packet.Vlan
module Ipv4 = Packet.Ipv4
module Ipv6 = Packet.Ipv6
module Udp = Packet.Udp
module Tcp = Packet.Tcp
module Icmp = Packet.Icmp
module Arp = Packet.Arp
module Mpls = Packet.Mpls
module Addr = Packet.Addr
module Proto = Packet.Proto

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---------------- Addr ---------------- *)

let test_mac_roundtrip () =
  let m = 0x0200DEADBEEFL in
  check_str "format" "02:00:de:ad:be:ef" (Addr.mac_to_string m);
  check_i64 "parse" m (Addr.mac_of_string "02:00:de:ad:be:ef")

let test_ipv4_roundtrip () =
  let a = Addr.ipv4_of_string "192.168.1.42" in
  check_str "format" "192.168.1.42" (Addr.ipv4_to_string a);
  check_i64 "value" 0xC0A8012AL a

let test_ipv4_prefix () =
  let addr, len = Addr.ipv4_prefix "10.0.0.0/8" in
  check_i64 "addr" 0x0A000000L addr;
  check_int "len" 8 len;
  let _, len32 = Addr.ipv4_prefix "1.2.3.4" in
  check_int "bare addr is /32" 32 len32

let test_addr_rejects () =
  List.iter
    (fun s ->
      try
        ignore (Addr.ipv4_of_string s);
        Alcotest.failf "accepted %s" s
      with Invalid_argument _ -> ())
    [ "1.2.3"; "256.1.1.1"; "a.b.c.d"; "1.2.3.4.5" ]

let test_ipv6_format () =
  check_str "full form" "2001:0db8:0000:0000:0000:0000:0000:0001"
    (Addr.ipv6_to_string (0x20010db800000000L, 1L))

(* ---------------- header codecs ---------------- *)

let roundtrip_header name size encode_bits decode equal h =
  let bits = encode_bits h in
  check_int (name ^ " size") size (Bitstring.length bits);
  let r = Bitstring.Reader.create bits in
  let h' = decode r in
  check_bool (name ^ " roundtrip") true (equal h h')

let test_eth_roundtrip () =
  roundtrip_header "eth" Eth.size_bits Eth.to_bits Eth.decode Eth.equal
    (Eth.make ~dst:0x112233445566L ~src:0xAABBCCDDEEFFL ~ethertype:0x86DDL ())

let test_vlan_roundtrip () =
  roundtrip_header "vlan" Vlan.size_bits Vlan.to_bits Vlan.decode Vlan.equal
    (Vlan.make ~pcp:5L ~dei:1L ~vid:100L ())

let test_ipv4_codec_roundtrip () =
  roundtrip_header "ipv4" Ipv4.size_bits Ipv4.to_bits Ipv4.decode Ipv4.equal
    (Ipv4.make ~ttl:17L ~src:0x0A000001L ~dst:0x0A000002L ~payload_len:100 ())

let test_ipv6_codec_roundtrip () =
  roundtrip_header "ipv6" Ipv6.size_bits Ipv6.to_bits Ipv6.decode Ipv6.equal
    (Ipv6.make ~src:(1L, 2L) ~dst:(3L, 4L) ~payload_len:64 ())

let test_udp_roundtrip () =
  roundtrip_header "udp" Udp.size_bits Udp.to_bits Udp.decode Udp.equal
    (Udp.make ~src_port:53L ~dst_port:5353L ~payload_len:11 ())

let test_tcp_roundtrip () =
  roundtrip_header "tcp" Tcp.size_bits Tcp.to_bits Tcp.decode Tcp.equal
    (Tcp.make ~src_port:80L ~dst_port:43210L ~seq:0xDEADBEEFL ~flags:Tcp.flag_ack ())

let test_icmp_roundtrip () =
  roundtrip_header "icmp" Icmp.size_bits Icmp.to_bits Icmp.decode Icmp.equal
    (Icmp.echo_request ~ident:42L ~seq:7L ())

let test_arp_roundtrip () =
  roundtrip_header "arp" Arp.size_bits Arp.to_bits Arp.decode Arp.equal
    (Arp.request ~sha:0x020000000001L ~spa:0x0A000001L ~tpa:0x0A000002L)

let test_mpls_roundtrip () =
  roundtrip_header "mpls" Mpls.size_bits Mpls.to_bits Mpls.decode Mpls.equal
    (Mpls.make ~label:0xFFFFFL ~tc:3L ~bos:1L ~ttl:255L ())

let test_ipv4_checksum () =
  let h = Ipv4.make ~src:0x0A000001L ~dst:0x0A000002L ~payload_len:8 () in
  check_bool "make produces valid checksum" true (Ipv4.checksum_ok h);
  let bad = { h with Ipv4.ttl = 63L } in
  check_bool "stale checksum detected" false (Ipv4.checksum_ok bad);
  check_bool "with_checksum repairs" true (Ipv4.checksum_ok (Ipv4.with_checksum bad))

(* ---------------- packet assembly and parsing ---------------- *)

let test_udp_packet_shape () =
  let p = P.udp_ipv4 ~payload_bytes:10 () in
  (* 14 eth + 20 ip + 8 udp + 10 payload *)
  check_int "wire length" 52 (P.byte_length p);
  match P.find_ipv4 p with
  | None -> Alcotest.fail "no ipv4"
  | Some ip ->
      check_i64 "total_len covers ip+udp+payload" 38L ip.Ipv4.total_len;
      check_bool "checksum valid" true (Ipv4.checksum_ok ip)

let test_parse_roundtrip_udp () =
  let p = P.udp_ipv4 ~src:0xC0A80001L ~dst_port:9999L () in
  let p' = P.parse (P.serialize p) in
  check_bool "same bits" true (P.equal p p');
  check_int "three headers" 3 (List.length p'.P.headers);
  match P.find_udp p' with
  | Some u -> check_i64 "udp port survived" 9999L u.Udp.dst_port
  | None -> Alcotest.fail "udp missing after parse"

let test_parse_roundtrip_tcp () =
  let p = P.tcp_ipv4 ~dst_port:443L () in
  let p' = P.parse (P.serialize p) in
  match P.find_tcp p' with
  | Some t -> check_i64 "tcp port" 443L t.Tcp.dst_port
  | None -> Alcotest.fail "tcp missing"

let test_parse_arp () =
  let p = P.arp_request ~spa:0x0A000001L ~tpa:0x0A0000FEL () in
  let p' = P.parse (P.serialize p) in
  check_int "eth+arp" 2 (List.length p'.P.headers);
  check_bool "arp decoded" true
    (List.exists (function P.Arp _ -> true | _ -> false) p'.P.headers)

let test_parse_vlan_stack () =
  let p =
    P.fixup
      (P.make
         [
           P.Eth (Eth.make ());
           P.Vlan (Vlan.make ~vid:100L ());
           P.Ipv4 (Ipv4.make ~payload_len:0 ());
           P.Udp (Udp.make ~payload_len:0 ());
         ]
         ())
  in
  let p' = P.parse (P.serialize p) in
  check_int "eth+vlan+ipv4+udp" 4 (List.length p'.P.headers);
  match P.find_vlan p' with
  | Some v -> check_i64 "vid" 100L v.Vlan.vid
  | None -> Alcotest.fail "vlan missing"

let test_parse_mpls () =
  let p =
    P.fixup
      (P.make
         [
           P.Eth (Eth.make ());
           P.Mpls (Mpls.make ~label:100L ~bos:1L ());
           P.Ipv4 (Ipv4.make ~payload_len:0 ());
         ]
         ())
  in
  let p' = P.parse (P.serialize p) in
  check_int "eth+mpls+ipv4" 3 (List.length p'.P.headers)

let test_parse_unknown_ethertype () =
  let p = P.make [ P.Eth (Eth.make ~ethertype:0xBEEFL ()) ] ~payload:(P.payload_of_string "xyz") () in
  let p' = P.parse (P.serialize p) in
  check_int "only eth" 1 (List.length p'.P.headers);
  check_int "payload preserved" 24 (Bitstring.length p'.P.payload)

let test_parse_truncated () =
  (* an eth header claiming ipv4 but with only 4 payload bytes *)
  let bits =
    Bitstring.append (Eth.to_bits (Eth.make ())) (Bitstring.of_hex "01020304")
  in
  let p = P.parse bits in
  check_int "eth only" 1 (List.length p.P.headers);
  check_int "tail is payload" 32 (Bitstring.length p.P.payload)

let test_parse_garbage () =
  let p = P.parse (Bitstring.of_hex "0102") in
  check_int "no headers" 0 (List.length p.P.headers)

let test_fixup_chains_protocols () =
  (* deliberately wrong discriminators; fixup must repair them *)
  let p =
    P.make
      [
        P.Eth (Eth.make ~ethertype:0x9999L ());
        P.Ipv4 (Ipv4.make ~protocol:99L ~payload_len:0 ());
        P.Udp (Udp.make ~payload_len:0 ());
      ]
      ()
  in
  let p = P.fixup p in
  (match P.find_eth p with
  | Some e -> check_i64 "ethertype fixed" Proto.ethertype_ipv4 e.Eth.ethertype
  | None -> Alcotest.fail "no eth");
  match P.find_ipv4 p with
  | Some ip ->
      check_i64 "protocol fixed" Proto.ipproto_udp ip.Ipv4.protocol;
      check_bool "checksum recomputed" true (Ipv4.checksum_ok ip)
  | None -> Alcotest.fail "no ipv4"

let test_map_ipv4 () =
  let p = P.udp_ipv4 () in
  let p' = P.map_ipv4 (fun ip -> { ip with Ipv4.ttl = 1L }) p in
  match P.find_ipv4 p' with
  | Some ip -> check_i64 "ttl rewritten" 1L ip.Ipv4.ttl
  | None -> Alcotest.fail "no ipv4"

(* ---------------- pcap ---------------- *)

let test_pcap_roundtrip () =
  let records =
    [
      { P.Pcap.ts_ns = 1_500_000.0; data = Bitstring.to_string (P.serialize (P.udp_ipv4 ())) };
      { P.Pcap.ts_ns = 2e9; data = Bitstring.to_string (P.serialize (P.arp_request ())) };
    ]
  in
  match P.Pcap.decode (P.Pcap.encode records) with
  | Ok decoded ->
      check_int "two records" 2 (List.length decoded);
      List.iter2
        (fun a b ->
          check_bool "data preserved" true (String.equal a.P.Pcap.data b.P.Pcap.data);
          (* timestamps survive at microsecond resolution *)
          check_bool "timestamp close" true
            (abs_float (a.P.Pcap.ts_ns -. b.P.Pcap.ts_ns) < 1000.0))
        records decoded
  | Error e -> Alcotest.fail e

let test_pcap_header_shape () =
  let s = P.Pcap.encode [] in
  check_int "global header is 24 bytes" 24 (String.length s);
  (* little-endian magic *)
  check_bool "magic" true
    (s.[0] = '\xd4' && s.[1] = '\xc3' && s.[2] = '\xb2' && s.[3] = '\xa1')

let test_pcap_rejects_garbage () =
  (match P.Pcap.decode "nonsense" with Error _ -> () | Ok _ -> Alcotest.fail "bad magic ok?");
  let valid = P.Pcap.encode [ { P.Pcap.ts_ns = 0.0; data = "abcdef" } ] in
  match P.Pcap.decode (String.sub valid 0 (String.length valid - 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated record accepted"

(* property: build -> serialize -> parse -> serialize is a fixpoint *)
let prop_parse_serialize_fixpoint =
  QCheck.Test.make ~count:300 ~name:"parse/serialize fixpoint on random UDP packets"
    QCheck.(quad small_nat small_nat (int_bound 200) (int_bound 0xffff))
    (fun (s1, s2, paylen, port) ->
      let p =
        P.udp_ipv4
          ~src:(Int64.of_int (0x0A000000 + s1))
          ~dst:(Int64.of_int (0x0A010000 + s2))
          ~dst_port:(Int64.of_int port) ~payload_bytes:paylen ()
      in
      let bits = P.serialize p in
      let bits' = P.serialize (P.parse bits) in
      Bitstring.equal bits bits')

let () =
  Alcotest.run "packet"
    [
      ( "addr",
        [
          Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "ipv4 prefix" `Quick test_ipv4_prefix;
          Alcotest.test_case "rejects malformed" `Quick test_addr_rejects;
          Alcotest.test_case "ipv6 format" `Quick test_ipv6_format;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "eth" `Quick test_eth_roundtrip;
          Alcotest.test_case "vlan" `Quick test_vlan_roundtrip;
          Alcotest.test_case "ipv4" `Quick test_ipv4_codec_roundtrip;
          Alcotest.test_case "ipv6" `Quick test_ipv6_codec_roundtrip;
          Alcotest.test_case "udp" `Quick test_udp_roundtrip;
          Alcotest.test_case "tcp" `Quick test_tcp_roundtrip;
          Alcotest.test_case "icmp" `Quick test_icmp_roundtrip;
          Alcotest.test_case "arp" `Quick test_arp_roundtrip;
          Alcotest.test_case "mpls" `Quick test_mpls_roundtrip;
          Alcotest.test_case "ipv4 checksum" `Quick test_ipv4_checksum;
        ] );
      ( "packets",
        [
          Alcotest.test_case "udp shape" `Quick test_udp_packet_shape;
          Alcotest.test_case "parse roundtrip udp" `Quick test_parse_roundtrip_udp;
          Alcotest.test_case "parse roundtrip tcp" `Quick test_parse_roundtrip_tcp;
          Alcotest.test_case "parse arp" `Quick test_parse_arp;
          Alcotest.test_case "parse vlan stack" `Quick test_parse_vlan_stack;
          Alcotest.test_case "parse mpls" `Quick test_parse_mpls;
          Alcotest.test_case "unknown ethertype" `Quick test_parse_unknown_ethertype;
          Alcotest.test_case "truncated" `Quick test_parse_truncated;
          Alcotest.test_case "garbage" `Quick test_parse_garbage;
          Alcotest.test_case "fixup chains protocols" `Quick test_fixup_chains_protocols;
          Alcotest.test_case "map_ipv4" `Quick test_map_ipv4;
          Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "pcap header shape" `Quick test_pcap_header_shape;
          Alcotest.test_case "pcap rejects garbage" `Quick test_pcap_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_parse_serialize_fixpoint;
        ] );
    ]
