(* Tests for IR values, table entries, runtime state and the typechecker. *)

module Value = P4ir.Value
module Entry = P4ir.Entry
module Runtime = P4ir.Runtime
module Ast = P4ir.Ast
module Typecheck = P4ir.Typecheck
module Programs = P4ir.Programs
module Dsl = P4ir.Dsl

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let v w x = Value.of_int ~width:w x

(* ---------------- Value ---------------- *)

let test_value_truncation () =
  check_i64 "masked to width" 0x5L (Value.to_int64 (Value.make ~width:4 0xF5L));
  check_i64 "width 64 untouched" (-1L) (Value.to_int64 (Value.make ~width:64 (-1L)))

let test_value_modular_arithmetic () =
  check_i64 "8-bit wraparound" 0L (Value.to_int64 (Value.add (v 8 255) (v 8 1)));
  check_i64 "8-bit underflow" 255L (Value.to_int64 (Value.sub (v 8 0) (v 8 1)));
  (* 0xAB * 0x44 = 0x2D6C; low byte 0x6C *)
  check_i64 "mul wraps" 0x6CL (Value.to_int64 (Value.mul (v 8 0xAB) (v 8 0x44)))

let test_value_unsigned_compare () =
  let big = Value.make ~width:64 (-1L) (* 2^64-1 *) in
  check_bool "unsigned" true (Value.to_bool (Value.gt big (v 64 5)));
  check_bool "lt" true (Value.to_bool (Value.lt (v 16 3) (v 16 4)))

let test_value_shift () =
  check_i64 "shl" 0xF0L (Value.to_int64 (Value.shift_left (v 8 0xF) 4));
  check_i64 "shl drops" 0xE0L (Value.to_int64 (Value.shift_left (v 8 0xFE) 4));
  check_i64 "shr logical" 0x0FL (Value.to_int64 (Value.shift_right (v 8 0xF0) 4));
  check_i64 "shift >= 64 gives 0" 0L (Value.to_int64 (Value.shift_left (v 8 1) 64))

let test_value_slice_concat () =
  let x = v 16 0xABCD in
  check_i64 "slice high nibble" 0xAL (Value.to_int64 (Value.slice x ~msb:15 ~lsb:12));
  check_i64 "slice low byte" 0xCDL (Value.to_int64 (Value.slice x ~msb:7 ~lsb:0));
  let c = Value.concat (v 8 0xAB) (v 8 0xCD) in
  check_int "concat width" 16 (Value.width c);
  check_i64 "concat value" 0xABCDL (Value.to_int64 c);
  try
    ignore (Value.concat (v 40 0) (v 32 0));
    Alcotest.fail "concat > 64 accepted"
  with Invalid_argument _ -> ()

let test_value_prefix_match () =
  let addr = v 32 0x0A010203 in
  check_bool "matches /8" true (Value.matches_prefix addr ~value:0x0A000000L ~prefix_len:8);
  check_bool "matches /16" true (Value.matches_prefix addr ~value:0x0A010000L ~prefix_len:16);
  check_bool "no match /16" false (Value.matches_prefix addr ~value:0x0A020000L ~prefix_len:16);
  check_bool "/0 matches all" true (Value.matches_prefix addr ~value:0L ~prefix_len:0)

let prop_value_add_associative =
  QCheck.Test.make ~count:300 ~name:"modular add associates"
    QCheck.(quad (int_range 1 64) int64 int64 int64)
    (fun (w, a, b, c) ->
      let va = Value.make ~width:w a and vb = Value.make ~width:w b and vc = Value.make ~width:w c in
      Value.equal (Value.add (Value.add va vb) vc) (Value.add va (Value.add vb vc)))

let prop_slice_concat_inverse =
  QCheck.Test.make ~count:300 ~name:"concat then slice recovers operands"
    QCheck.(triple (int_range 1 32) (int_range 1 32) (pair int64 int64))
    (fun (w1, w2, (a, b)) ->
      let va = Value.make ~width:w1 a and vb = Value.make ~width:w2 b in
      let c = Value.concat va vb in
      Value.equal (Value.slice c ~msb:(w1 + w2 - 1) ~lsb:w2) va
      && Value.equal (Value.slice c ~msb:(w2 - 1) ~lsb:0) vb)

(* ---------------- Entry selection ---------------- *)

let sel ?degrade entries keys = Entry.select ?degrade_ternary_to_exact:degrade entries keys

let test_exact_match () =
  let e = Entry.make ~keys:[ Entry.exact (v 16 80) ] ~action:"a" () in
  check_bool "hit" true (sel [ e ] [ v 16 80 ] <> None);
  check_bool "miss" true (sel [ e ] [ v 16 81 ] = None)

let test_lpm_longest_wins () =
  let short = Entry.make ~keys:[ Entry.lpm (v 32 0x0A000000) 8 ] ~action:"short" () in
  let long = Entry.make ~keys:[ Entry.lpm (v 32 0x0A010000) 16 ] ~action:"long" () in
  (match sel [ short; long ] [ v 32 0x0A010203 ] with
  | Some e -> Alcotest.(check string) "longest prefix" "long" e.Entry.action
  | None -> Alcotest.fail "no match");
  match sel [ short; long ] [ v 32 0x0A020304 ] with
  | Some e -> Alcotest.(check string) "fallback to /8" "short" e.Entry.action
  | None -> Alcotest.fail "no match"

let test_lpm_order_independence () =
  let short = Entry.make ~keys:[ Entry.lpm (v 32 0x0A000000) 8 ] ~action:"short" () in
  let long = Entry.make ~keys:[ Entry.lpm (v 32 0x0A010000) 16 ] ~action:"long" () in
  match sel [ long; short ] [ v 32 0x0A010203 ] with
  | Some e -> Alcotest.(check string) "install order irrelevant" "long" e.Entry.action
  | None -> Alcotest.fail "no match"

let test_ternary_priority () =
  let low =
    Entry.make ~priority:1
      ~keys:[ Entry.ternary (v 16 0) (v 16 0) ]
      ~action:"any" ()
  in
  let high =
    Entry.make ~priority:10
      ~keys:[ Entry.ternary (v 16 23) (Value.ones 16) ]
      ~action:"telnet" ()
  in
  (match sel [ low; high ] [ v 16 23 ] with
  | Some e -> Alcotest.(check string) "priority wins" "telnet" e.Entry.action
  | None -> Alcotest.fail "no match");
  match sel [ low; high ] [ v 16 80 ] with
  | Some e -> Alcotest.(check string) "fallthrough" "any" e.Entry.action
  | None -> Alcotest.fail "no match"

let test_ternary_mask_semantics () =
  (* match on high byte only *)
  let e =
    Entry.make ~keys:[ Entry.ternary (v 16 0x1200) (v 16 0xFF00) ] ~action:"a" ()
  in
  check_bool "masked hit" true (sel [ e ] [ v 16 0x12FF ] <> None);
  check_bool "masked miss" true (sel [ e ] [ v 16 0x1300 ] = None)

let test_ternary_degraded_to_exact () =
  let e =
    Entry.make ~keys:[ Entry.ternary (v 16 0x1200) (v 16 0xFF00) ] ~action:"a" ()
  in
  (* quirk mode: mask ignored, value compared exactly *)
  check_bool "degraded hit only on exact value" true
    (sel ~degrade:true [ e ] [ v 16 0x1200 ] <> None);
  check_bool "degraded misses masked match" true
    (sel ~degrade:true [ e ] [ v 16 0x12FF ] = None)

let test_multi_key_entry () =
  let e =
    Entry.make
      ~keys:[ Entry.exact (v 12 10); Entry.lpm (v 32 0x0A000000) 8 ]
      ~action:"a" ()
  in
  check_bool "both match" true (sel [ e ] [ v 12 10; v 32 0x0A000001 ] <> None);
  check_bool "first key mismatch" true (sel [ e ] [ v 12 11; v 32 0x0A000001 ] = None);
  check_bool "arity mismatch" true (sel [ e ] [ v 12 10 ] = None)

let prop_lpm_longest_invariant =
  QCheck.Test.make ~count:300 ~name:"selected LPM entry has maximal prefix among matches"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 10) (pair int (int_bound 32))) int)
    (fun (prefixes, key) ->
      let key = Value.make ~width:32 (Int64.of_int key) in
      let entries =
        List.map
          (fun (addr, len) ->
            Entry.make
              ~keys:[ Entry.lpm (Value.make ~width:32 (Int64.of_int addr)) len ]
              ~action:(string_of_int len) ())
          prefixes
      in
      match sel entries [ key ] with
      | None -> List.for_all (fun e -> not (Entry.matches e [ key ])) entries
      | Some best ->
          List.for_all
            (fun e ->
              (not (Entry.matches e [ key ])) || Entry.specificity e <= Entry.specificity best)
            entries)

(* ---------------- Runtime validation ---------------- *)

let program = Programs.basic_router.Programs.program

let test_runtime_install_valid () =
  let rt = Runtime.create () in
  match Runtime.install_all program rt Programs.basic_router.Programs.entries with
  | Ok () -> check_int "entries installed" 3 (Runtime.entry_count rt "ipv4_lpm")
  | Error e -> Alcotest.fail e

let expect_error what = function
  | Ok () -> Alcotest.failf "accepted %s" what
  | Error _ -> ()

let test_runtime_rejects_unknown_table () =
  let rt = Runtime.create () in
  expect_error "unknown table"
    (Runtime.add program rt ~table:"nope"
       (Entry.make ~keys:[ Entry.exact (v 32 0) ] ~action:"set_nexthop" ()))

let test_runtime_rejects_bad_action () =
  let rt = Runtime.create () in
  expect_error "action not permitted"
    (Runtime.add program rt ~table:"ipv4_lpm"
       (Entry.make ~keys:[ Entry.lpm (v 32 0) 8 ] ~action:"mystery" ()))

let test_runtime_rejects_kind_mismatch () =
  let rt = Runtime.create () in
  expect_error "exact key on lpm table"
    (Runtime.add program rt ~table:"ipv4_lpm"
       (Entry.make ~keys:[ Entry.exact (v 32 0) ] ~action:"set_nexthop"
          ~args:[ v 9 1; Value.make ~width:48 1L ] ()))

let test_runtime_rejects_arg_mismatch () =
  let rt = Runtime.create () in
  expect_error "missing args"
    (Runtime.add program rt ~table:"ipv4_lpm"
       (Entry.make ~keys:[ Entry.lpm (v 32 0) 8 ] ~action:"set_nexthop" ~args:[ v 9 1 ] ()));
  expect_error "wrong arg width"
    (Runtime.add program rt ~table:"ipv4_lpm"
       (Entry.make ~keys:[ Entry.lpm (v 32 0) 8 ] ~action:"set_nexthop"
          ~args:[ v 8 1; Value.make ~width:48 1L ] ()))

let test_runtime_capacity () =
  let tiny =
    {
      program with
      Ast.p_tables =
        [
          Dsl.table ~size:2 "ipv4_lpm"
            [ (Dsl.fld "ipv4" "dst", Ast.Lpm) ]
            [ "set_nexthop"; "drop_packet" ]
            ~default:"drop_packet" ();
        ];
    }
  in
  let rt = Runtime.create () in
  let entry i =
    Entry.make
      ~keys:[ Entry.lpm (v 32 (i lsl 8)) 24 ]
      ~action:"drop_packet" ()
  in
  (match Runtime.add tiny rt ~table:"ipv4_lpm" (entry 1) with Ok () -> () | Error e -> Alcotest.fail e);
  (match Runtime.add tiny rt ~table:"ipv4_lpm" (entry 2) with Ok () -> () | Error e -> Alcotest.fail e);
  expect_error "over capacity" (Runtime.add tiny rt ~table:"ipv4_lpm" (entry 3))

let test_runtime_clear () =
  let rt = Runtime.create () in
  (match Runtime.install_all program rt Programs.basic_router.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Runtime.clear_table rt "ipv4_lpm";
  check_int "cleared" 0 (Runtime.entry_count rt "ipv4_lpm")

(* ---------------- Typecheck ---------------- *)

let test_all_programs_typecheck () =
  List.iter
    (fun (b : Programs.bundle) ->
      match Typecheck.check b.Programs.program with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s: %s" b.Programs.program.Ast.p_name
            (String.concat "; "
               (List.map (Format.asprintf "%a" Typecheck.pp_error) errs)))
    Programs.all

let base = Programs.reflector.Programs.program

let expect_tc_error what p =
  match Typecheck.check p with
  | Ok () -> Alcotest.failf "typechecker accepted %s" what
  | Error _ -> ()

let test_tc_undeclared_field () =
  expect_tc_error "undeclared field"
    { base with Ast.p_ingress = [ Dsl.set_field "eth" "bogus" (Dsl.const ~width:8 0) ] }

let test_tc_undeclared_header () =
  expect_tc_error "undeclared header"
    { base with Ast.p_ingress = [ Ast.SetValid "nothere" ] }

let test_tc_width_mismatch () =
  expect_tc_error "assign width mismatch"
    { base with Ast.p_ingress = [ Dsl.set_field "eth" "dst" (Dsl.const ~width:16 0) ] }

let test_tc_comparison_mismatch () =
  expect_tc_error "comparison width mismatch"
    {
      base with
      Ast.p_ingress =
        [ Dsl.when_ Dsl.(fld "eth" "dst" ==: const ~width:16 0) [ Ast.Nop ] ];
    }

let test_tc_if_non_bool () =
  expect_tc_error "non-boolean condition"
    { base with Ast.p_ingress = [ Ast.If (Dsl.fld "eth" "ethertype", [], []) ] }

let test_tc_bad_slice () =
  expect_tc_error "slice out of range"
    {
      base with
      Ast.p_ingress =
        [ Dsl.set_field "eth" "dst" (Ast.Slice (Dsl.fld "eth" "dst", 50, 3)) ];
    }

let test_tc_undeclared_table () =
  expect_tc_error "apply unknown table" { base with Ast.p_ingress = [ Ast.Apply "ghost" ] }

let test_tc_undeclared_counter () =
  expect_tc_error "unknown counter" { base with Ast.p_ingress = [ Ast.Count "ghost" ] }

let test_tc_duplicate_header () =
  expect_tc_error "duplicate header"
    { base with Ast.p_headers = [ Programs.eth_h; Programs.eth_h ] }

let test_tc_bad_transition () =
  expect_tc_error "transition to unknown state"
    {
      base with
      Ast.p_parser = [ Dsl.state "start" ~extracts:[ "eth" ] (Dsl.goto "missing") ];
    }

let test_tc_select_width_mismatch () =
  expect_tc_error "select case width"
    {
      base with
      Ast.p_parser =
        [
          Dsl.state "start" ~extracts:[ "eth" ]
            (Dsl.select
               [ Dsl.fld "eth" "ethertype" ]
               [ Dsl.case (v 8 4) Ast.To_accept ]
               ~default:Ast.To_reject);
        ];
    }

let test_tc_multiple_lpm_keys () =
  expect_tc_error "two lpm keys"
    {
      base with
      Ast.p_headers = [ Programs.eth_h ];
      p_actions = [ Dsl.action "noop" [] [] ];
      p_tables =
        [
          Dsl.table "t"
            [ (Dsl.fld "eth" "dst", Ast.Lpm); (Dsl.fld "eth" "src", Ast.Lpm) ]
            [ "noop" ] ~default:"noop" ();
        ];
    }

let test_tc_param_scope () =
  expect_tc_error "param outside action"
    { base with Ast.p_ingress = [ Dsl.set_field "eth" "dst" (Dsl.param "ghost") ] }

let () =
  Alcotest.run "p4ir"
    [
      ( "value",
        [
          Alcotest.test_case "truncation" `Quick test_value_truncation;
          Alcotest.test_case "modular arithmetic" `Quick test_value_modular_arithmetic;
          Alcotest.test_case "unsigned compare" `Quick test_value_unsigned_compare;
          Alcotest.test_case "shift" `Quick test_value_shift;
          Alcotest.test_case "slice/concat" `Quick test_value_slice_concat;
          Alcotest.test_case "prefix match" `Quick test_value_prefix_match;
          QCheck_alcotest.to_alcotest prop_value_add_associative;
          QCheck_alcotest.to_alcotest prop_slice_concat_inverse;
        ] );
      ( "entry",
        [
          Alcotest.test_case "exact" `Quick test_exact_match;
          Alcotest.test_case "lpm longest wins" `Quick test_lpm_longest_wins;
          Alcotest.test_case "lpm order independence" `Quick test_lpm_order_independence;
          Alcotest.test_case "ternary priority" `Quick test_ternary_priority;
          Alcotest.test_case "ternary mask semantics" `Quick test_ternary_mask_semantics;
          Alcotest.test_case "ternary degraded (quirk)" `Quick test_ternary_degraded_to_exact;
          Alcotest.test_case "multi-key" `Quick test_multi_key_entry;
          QCheck_alcotest.to_alcotest prop_lpm_longest_invariant;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "install valid" `Quick test_runtime_install_valid;
          Alcotest.test_case "rejects unknown table" `Quick test_runtime_rejects_unknown_table;
          Alcotest.test_case "rejects bad action" `Quick test_runtime_rejects_bad_action;
          Alcotest.test_case "rejects kind mismatch" `Quick test_runtime_rejects_kind_mismatch;
          Alcotest.test_case "rejects arg mismatch" `Quick test_runtime_rejects_arg_mismatch;
          Alcotest.test_case "capacity enforced" `Quick test_runtime_capacity;
          Alcotest.test_case "clear" `Quick test_runtime_clear;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "all programs typecheck" `Quick test_all_programs_typecheck;
          Alcotest.test_case "undeclared field" `Quick test_tc_undeclared_field;
          Alcotest.test_case "undeclared header" `Quick test_tc_undeclared_header;
          Alcotest.test_case "width mismatch" `Quick test_tc_width_mismatch;
          Alcotest.test_case "comparison mismatch" `Quick test_tc_comparison_mismatch;
          Alcotest.test_case "if non-bool" `Quick test_tc_if_non_bool;
          Alcotest.test_case "bad slice" `Quick test_tc_bad_slice;
          Alcotest.test_case "undeclared table" `Quick test_tc_undeclared_table;
          Alcotest.test_case "undeclared counter" `Quick test_tc_undeclared_counter;
          Alcotest.test_case "duplicate header" `Quick test_tc_duplicate_header;
          Alcotest.test_case "bad transition" `Quick test_tc_bad_transition;
          Alcotest.test_case "select width mismatch" `Quick test_tc_select_width_mismatch;
          Alcotest.test_case "multiple lpm keys" `Quick test_tc_multiple_lpm_keys;
          Alcotest.test_case "param scope" `Quick test_tc_param_scope;
        ] );
    ]
