(* Behavioural tests of the reference interpreter over the program library. *)

module Bitstring = Bitutil.Bitstring
module Ast = P4ir.Ast
module Value = P4ir.Value
module Entry = P4ir.Entry
module Runtime = P4ir.Runtime
module Interp = P4ir.Interp
module Programs = P4ir.Programs
module Dsl = P4ir.Dsl
module P = Packet
module Ipv4 = Packet.Ipv4
module Eth = Packet.Eth
module Udp = Packet.Udp
module Tcp = Packet.Tcp
module Mpls = Packet.Mpls

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let deploy (b : Programs.bundle) =
  let rt = Runtime.create () in
  (match Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (b.Programs.program, rt)

let run ?(port = 0) (program, rt) pkt =
  Interp.process program rt ~ingress_port:port (P.serialize pkt)

let expect_forward what obs =
  match obs.Interp.result with
  | Interp.Forwarded (port, bits) -> (port, P.parse bits)
  | Interp.Dropped r -> Alcotest.failf "%s: unexpectedly dropped (%s)" what r

let expect_drop what reason obs =
  match obs.Interp.result with
  | Interp.Dropped r -> Alcotest.(check string) (what ^ " reason") reason r
  | Interp.Forwarded (port, _) -> Alcotest.failf "%s: unexpectedly forwarded to %d" what port

(* ---------------- basic_router ---------------- *)

let test_router_forwards_and_rewrites () =
  let dut = deploy Programs.basic_router in
  let pkt = P.udp_ipv4 ~dst:0x0A000005L ~ttl:64L () in
  let obs = run dut pkt in
  let port, out = expect_forward "10.0.0.5" obs in
  check_int "egress port" 1 port;
  (match P.find_ipv4 out with
  | Some ip ->
      check_i64 "ttl decremented" 63L ip.Ipv4.ttl;
      check_bool "checksum updated" true (Ipv4.checksum_ok ip)
  | None -> Alcotest.fail "no ipv4 in output");
  match P.find_eth out with
  | Some e -> check_i64 "dmac rewritten" 0x0A0000000001L e.Eth.dst
  | None -> Alcotest.fail "no eth in output"

let test_router_longest_prefix () =
  let dut = deploy Programs.basic_router in
  let port_of dst =
    fst (expect_forward "lpm" (run dut (P.udp_ipv4 ~dst ())))
  in
  check_int "10.1/16 wins over 10/8" 2 (port_of 0x0A010203L);
  check_int "10/8 catches rest" 1 (port_of 0x0A020304L);
  check_int "192.168/16" 3 (port_of 0xC0A80001L)

let test_router_table_miss_drops () =
  let dut = deploy Programs.basic_router in
  let obs = run dut (P.udp_ipv4 ~dst:0x08080808L ()) in
  expect_drop "8.8.8.8" "ingress" obs;
  check_bool "miss counted" true (List.mem_assoc "ipv4_miss" obs.Interp.counters)

let test_router_rejects_non_ipv4 () =
  let dut = deploy Programs.basic_router in
  let arp = P.arp_request () in
  expect_drop "arp" "parser:Reject" (run dut arp)

let test_router_rejects_bad_version () =
  let dut = deploy Programs.basic_router in
  let pkt = P.map_ipv4 (fun ip -> Ipv4.with_checksum { ip with Ipv4.version = 6L }) (P.udp_ipv4 ()) in
  expect_drop "version 6" "parser:Reject" (run dut pkt)

let test_router_rejects_bad_checksum () =
  let dut = deploy Programs.basic_router in
  let pkt = P.map_ipv4 (fun ip -> { ip with Ipv4.checksum = 0xBADL }) (P.udp_ipv4 ()) in
  expect_drop "corrupted checksum" "parser:ChecksumError" (run dut pkt)

let test_router_drops_expiring_ttl () =
  let dut = deploy Programs.basic_router in
  expect_drop "ttl 1" "ingress" (run dut (P.udp_ipv4 ~ttl:1L ()));
  expect_drop "ttl 0" "ingress" (run dut (P.udp_ipv4 ~ttl:0L ()))

let test_router_rejects_truncated_ipv4 () =
  let dut = deploy Programs.basic_router in
  let bits =
    Bitstring.append
      (Eth.to_bits (Eth.make ~ethertype:Packet.Proto.ethertype_ipv4 ()))
      (Bitstring.of_hex "45000014")
  in
  let program, rt = dut in
  let obs = Interp.process program rt ~ingress_port:0 bits in
  expect_drop "truncated" "parser:PacketTooShort" obs

let test_router_counters () =
  let dut = deploy Programs.basic_router in
  let obs = run dut (P.udp_ipv4 ~dst:0x0A000005L ()) in
  check_bool "routed counter" true (List.mem_assoc "ipv4_routed" obs.Interp.counters);
  check_int "no failed asserts" 0 (List.length obs.Interp.failed_asserts)

let test_router_tables_trace () =
  let dut = deploy Programs.basic_router in
  let obs = run dut (P.udp_ipv4 ~dst:0x0A000005L ()) in
  match obs.Interp.tables with
  | [ ("ipv4_lpm", true, "set_nexthop") ] -> ()
  | other ->
      Alcotest.failf "unexpected table trace: %s"
        (String.concat "," (List.map (fun (t, h, a) ->
             Printf.sprintf "%s/%b/%s" t h a) other))

(* ---------------- router_split equivalence ---------------- *)

let test_split_router_equivalent () =
  let a = deploy Programs.basic_router in
  let b = deploy Programs.router_split in
  let dsts = [ 0x0A000005L; 0x0A010203L; 0xC0A80001L; 0x08080808L; 0x0A020304L ] in
  List.iter
    (fun dst ->
      let pkt = P.udp_ipv4 ~dst () in
      let ra = (run a pkt).Interp.result and rb = (run b pkt).Interp.result in
      match (ra, rb) with
      | Interp.Forwarded (pa, ba), Interp.Forwarded (pb, bb) ->
          check_int "same port" pa pb;
          check_bool "same bits" true (Bitstring.equal ba bb)
      | Interp.Dropped _, Interp.Dropped _ -> ()
      | _ -> Alcotest.failf "divergence on %Lx" dst)
    dsts

let prop_split_router_equivalent =
  QCheck.Test.make ~count:200 ~name:"basic_router == router_split on random packets"
    QCheck.(triple (int_bound 0xFFFFFF) (int_range 2 255) (int_bound 1000))
    (fun (dst_low, ttl, paylen) ->
      let dst = Int64.of_int (0x0A000000 lor dst_low) in
      let pkt = P.udp_ipv4 ~dst ~ttl:(Int64.of_int ttl) ~payload_bytes:paylen () in
      let a = deploy Programs.basic_router and b = deploy Programs.router_split in
      match ((run a pkt).Interp.result, (run b pkt).Interp.result) with
      | Interp.Forwarded (pa, ba), Interp.Forwarded (pb, bb) ->
          pa = pb && Bitstring.equal ba bb
      | Interp.Dropped _, Interp.Dropped _ -> true
      | _ -> false)

(* ---------------- buggy_router ---------------- *)

let test_buggy_router_skips_ttl_decrement () =
  let dut = deploy Programs.buggy_router in
  let _, out = expect_forward "buggy" (run dut (P.udp_ipv4 ~ttl:64L ())) in
  match P.find_ipv4 out with
  | Some ip -> check_i64 "ttl NOT decremented (the seeded bug)" 64L ip.Ipv4.ttl
  | None -> Alcotest.fail "no ipv4"

(* ---------------- parser_guard ---------------- *)

let test_parser_guard_default_route () =
  let dut = deploy Programs.parser_guard in
  let port, _ = expect_forward "unknown dst" (run dut (P.udp_ipv4 ~dst:0x08080808L ())) in
  check_int "default route to next hop" 1 port;
  let port2, _ = expect_forward "10/8" (run dut (P.udp_ipv4 ~dst:0x0A000001L ())) in
  check_int "specific route" 2 port2

let test_parser_guard_punts_arp () =
  let dut = deploy Programs.parser_guard in
  let port, _ = expect_forward "arp" (run dut (P.arp_request ())) in
  check_int "cpu port" 63 port

let test_parser_guard_rejects_unknown_ethertype () =
  let dut = deploy Programs.parser_guard in
  let pkt = P.make [ P.Eth (Eth.make ~ethertype:0xBEEFL ()) ] ~payload:(P.payload_of_string "zz") () in
  expect_drop "0xBEEF" "parser:Reject" (run dut pkt)

(* ---------------- l2_switch ---------------- *)

let test_l2_forwarding () =
  let dut = deploy Programs.l2_switch in
  let pkt = P.udp_ipv4 ~eth_dst:0x020000000002L () in
  let port, _ = expect_forward "known dst" (run dut pkt) in
  check_int "station 2" 2 port

let test_l2_unknown_dst_drops () =
  let dut = deploy Programs.l2_switch in
  let obs = run dut (P.udp_ipv4 ~eth_dst:0x02FFFFFFFFFFL ()) in
  expect_drop "unknown dst" "ingress" obs;
  check_bool "miss counted" true (List.mem_assoc "l2_miss" obs.Interp.counters)

let test_l2_smac_tracking () =
  let dut = deploy Programs.l2_switch in
  let known = run dut (P.udp_ipv4 ~eth_src:0x020000000001L ~eth_dst:0x020000000002L ()) in
  check_bool "known src" true (List.mem_assoc "known_src" known.Interp.counters);
  let unknown = run dut (P.udp_ipv4 ~eth_src:0x02AAAAAAAAAAL ~eth_dst:0x020000000002L ()) in
  check_bool "unknown src" true (List.mem_assoc "unknown_src" unknown.Interp.counters)

(* ---------------- acl_firewall ---------------- *)

let test_acl_denies_telnet () =
  let dut = deploy Programs.acl_firewall in
  let pkt = P.tcp_ipv4 ~src:0x0A000001L ~dst:0x0A010001L ~dst_port:23L () in
  let obs = run dut pkt in
  expect_drop "telnet" "ingress" obs;
  check_bool "deny counted" true (List.mem_assoc "acl_deny" obs.Interp.counters)

let test_acl_permits_web_to_dmz () =
  let dut = deploy Programs.acl_firewall in
  let pkt = P.tcp_ipv4 ~src:0xC0A80001L ~dst:0x0A010005L ~dst_port:80L () in
  let port, _ = expect_forward "web to dmz" (run dut pkt) in
  check_int "routed to dmz" 2 port

let test_acl_permits_internal_udp () =
  let dut = deploy Programs.acl_firewall in
  let pkt = P.udp_ipv4 ~src:0x0A000001L ~dst:0x0A000002L ~dst_port:4321L () in
  let port, _ = expect_forward "internal udp" (run dut pkt) in
  check_int "internal route" 1 port

let test_acl_default_deny () =
  let dut = deploy Programs.acl_firewall in
  (* web to a non-DMZ destination matches no permit rule *)
  let pkt = P.tcp_ipv4 ~src:0xC0A80001L ~dst:0x0A000005L ~dst_port:80L () in
  expect_drop "default deny" "ingress" (run dut pkt)

let test_acl_priority_order () =
  (* telnet into the DMZ: both the deny-telnet (prio 100) and permit-web
     rules exist; port 23 matches only deny. Port 80 matches permit. *)
  let dut = deploy Programs.acl_firewall in
  let telnet = P.tcp_ipv4 ~src:0xC0A80001L ~dst:0x0A010005L ~dst_port:23L () in
  expect_drop "telnet denied by priority" "ingress" (run dut telnet)

(* ---------------- mpls_tunnel ---------------- *)

let test_mpls_push_swap_pop_chain () =
  let dut = deploy Programs.mpls_tunnel in
  (* ingress edge: plain IPv4 toward 10.2/16 gets label 100 *)
  let pkt = P.udp_ipv4 ~dst:0x0A020005L () in
  let port, out1 = expect_forward "push" (run dut pkt) in
  check_int "push port" 1 port;
  (match out1.P.headers with
  | P.Eth e :: P.Mpls m :: P.Ipv4 _ :: _ ->
      check_i64 "pushed label" 100L m.Mpls.label;
      check_i64 "ethertype mpls" 0x8847L e.Eth.ethertype
  | _ -> Alcotest.fail "push output shape");
  (* transit: label 100 -> 200 *)
  let port, out2 = expect_forward "swap" (run dut out1) in
  check_int "swap port" 2 port;
  (match out2.P.headers with
  | P.Eth _ :: P.Mpls m :: _ ->
      check_i64 "swapped label" 200L m.Mpls.label;
      check_i64 "mpls ttl decremented" 63L m.Mpls.ttl
  | _ -> Alcotest.fail "swap output shape");
  (* egress edge: label 200 popped *)
  let port, out3 = expect_forward "pop" (run dut out2) in
  check_int "pop port" 3 port;
  match out3.P.headers with
  | P.Eth e :: P.Ipv4 ip :: _ ->
      check_i64 "ethertype back to ipv4" 0x0800L e.Eth.ethertype;
      check_i64 "inner ttl decremented once at pop" 63L ip.Ipv4.ttl
  | _ -> Alcotest.fail "pop output shape"

let test_mpls_unknown_label_drops () =
  let dut = deploy Programs.mpls_tunnel in
  let pkt =
    P.fixup
      (P.make
         [
           P.Eth (Eth.make ());
           P.Mpls (Mpls.make ~label:999L ~bos:1L ());
           P.Ipv4 (Ipv4.make ~payload_len:0 ());
         ]
         ())
  in
  expect_drop "unknown label" "ingress" (run dut pkt)

let test_mpls_deep_stack_rejected () =
  let dut = deploy Programs.mpls_tunnel in
  let pkt =
    P.fixup
      (P.make
         [
           P.Eth (Eth.make ());
           P.Mpls (Mpls.make ~label:100L ~bos:0L ());
           P.Mpls (Mpls.make ~label:200L ~bos:1L ());
           P.Ipv4 (Ipv4.make ~payload_len:0 ());
         ]
         ())
  in
  expect_drop "stack depth 2" "parser:Reject" (run dut pkt)

(* ---------------- vlan_router ---------------- *)

let test_vlan_routing_by_vid () =
  let dut = deploy Programs.vlan_router in
  let mk vid =
    P.fixup
      (P.make
         [
           P.Eth (Eth.make ());
           P.Vlan (Packet.Vlan.make ~vid ());
           P.Ipv4 (Ipv4.make ~dst:0x0A000099L ~payload_len:0 ());
         ]
         ())
  in
  let p10, _ = expect_forward "vid 10" (run dut (mk 10L)) in
  let p20, _ = expect_forward "vid 20" (run dut (mk 20L)) in
  check_int "vid 10 -> port 1" 1 p10;
  check_int "vid 20 -> port 2" 2 p20;
  (* untagged falls to plain lpm *)
  let p, _ = expect_forward "untagged" (run dut (P.udp_ipv4 ~dst:0x0A000099L ())) in
  check_int "untagged -> port 3" 3 p

let test_vlan_unknown_vid_drops () =
  let dut = deploy Programs.vlan_router in
  let pkt =
    P.fixup
      (P.make
         [
           P.Eth (Eth.make ());
           P.Vlan (Packet.Vlan.make ~vid:99L ());
           P.Ipv4 (Ipv4.make ~dst:0x0A000099L ~payload_len:0 ());
         ]
         ())
  in
  expect_drop "vid 99" "ingress" (run dut pkt)

(* ---------------- ipv6_router ---------------- *)

let v6_packet ?(hop = 64L) ~dst_hi () =
  P.fixup
    (P.make
       [
         P.Eth (Eth.make ~ethertype:0x86DDL ());
         P.Ipv6 (Packet.Ipv6.make ~hop_limit:hop ~dst:(dst_hi, 1L) ~payload_len:0 ());
       ]
       ())

let test_ipv6_routing () =
  let dut = deploy Programs.ipv6_router in
  let port_of dst_hi = fst (expect_forward "v6" (run dut (v6_packet ~dst_hi ()))) in
  check_int "2001:db8::/32" 1 (port_of 0x20010DB8_AAAA_0000L);
  check_int "2001:db8:1::/48 wins" 2 (port_of 0x20010DB8_0001_BBBBL);
  check_int "fc00::/7 (ULA)" 3 (port_of 0xFD00_0000_0000_0000L);
  expect_drop "unrouted" "ingress" (run dut (v6_packet ~dst_hi:0x2600_0000_0000_0000L ()))

let test_ipv6_hop_limit () =
  let dut = deploy Programs.ipv6_router in
  let _, out = expect_forward "hop" (run dut (v6_packet ~dst_hi:0x20010DB8_0000_0000L ())) in
  (match
     List.find_opt (function P.Ipv6 _ -> true | _ -> false) out.P.headers
   with
  | Some (P.Ipv6 h) -> check_i64 "hop limit decremented" 63L h.Packet.Ipv6.hop_limit
  | _ -> Alcotest.fail "no ipv6 header");
  expect_drop "hop 1" "ingress" (run dut (v6_packet ~hop:1L ~dst_hi:0x20010DB8_0000_0000L ()))

let test_ipv6_rejects_v4 () =
  let dut = deploy Programs.ipv6_router in
  expect_drop "v4 frame" "parser:Reject" (run dut (P.udp_ipv4 ()))

(* ---------------- calc ---------------- *)

let calc_packet ~op ~a ~b =
  let w = Bitstring.Writer.create () in
  Bitstring.Writer.push_bits w
    (Eth.to_bits (Eth.make ~dst:0x020000000002L ~src:0x020000000001L ~ethertype:0x1234L ()));
  Bitstring.Writer.push_int64 w ~width:8 op;
  Bitstring.Writer.push_int64 w ~width:32 a;
  Bitstring.Writer.push_int64 w ~width:32 b;
  Bitstring.Writer.push_int64 w ~width:32 0L;
  Bitstring.Writer.contents w

let run_calc ~op ~a ~b =
  let program, rt = deploy Programs.calc in
  match
    (Interp.process program rt ~ingress_port:2 (calc_packet ~op ~a ~b)).Interp.result
  with
  | Interp.Forwarded (port, bits) ->
      check_int "reflected to ingress port" 2 port;
      (* result field sits after 112 bits of eth + 8 + 32 + 32 *)
      Bitstring.extract bits ~off:(112 + 72) ~width:32
  | Interp.Dropped r -> Alcotest.failf "calc dropped: %s" r

let test_calc_operations () =
  check_i64 "add" 30L (run_calc ~op:1L ~a:10L ~b:20L);
  check_i64 "sub" 5L (run_calc ~op:2L ~a:25L ~b:20L);
  check_i64 "and" 0x10L (run_calc ~op:3L ~a:0x30L ~b:0x11L);
  check_i64 "or" 0x31L (run_calc ~op:4L ~a:0x30L ~b:0x11L);
  check_i64 "xor" 0x21L (run_calc ~op:5L ~a:0x30L ~b:0x11L);
  check_i64 "unknown op gives 0" 0L (run_calc ~op:77L ~a:1L ~b:2L);
  check_i64 "add wraps at 32 bits" 0L (run_calc ~op:1L ~a:0xFFFFFFFFL ~b:1L)

let test_calc_swaps_macs () =
  let program, rt = deploy Programs.calc in
  match
    (Interp.process program rt ~ingress_port:0 (calc_packet ~op:1L ~a:1L ~b:2L)).Interp.result
  with
  | Interp.Forwarded (_, bits) ->
      check_i64 "dst is old src" 0x020000000001L (Bitstring.extract bits ~off:0 ~width:48);
      check_i64 "src is old dst" 0x020000000002L (Bitstring.extract bits ~off:48 ~width:48)
  | Interp.Dropped r -> Alcotest.failf "dropped: %s" r

(* ---------------- misc semantics ---------------- *)

let test_parser_loop_protection () =
  let program =
    {
      Programs.reflector.Programs.program with
      Ast.p_name = "looper";
      p_parser = [ Dsl.state "start" (Dsl.goto "start") ];
    }
  in
  let rt = Runtime.create () in
  let obs = Interp.process program rt ~ingress_port:0 (P.serialize (P.udp_ipv4 ())) in
  expect_drop "infinite parser" "parser:PacketTooShort" obs

let test_failed_assert_reported () =
  let program =
    {
      Programs.reflector.Programs.program with
      Ast.p_name = "asserter";
      p_ingress =
        [
          Dsl.assert_ Dsl.(fld "eth" "ethertype" ==: const ~width:16 0x9999) "never holds";
          Dsl.set_std Ast.Egress_spec (Dsl.std Ast.Ingress_port);
        ];
    }
  in
  let rt = Runtime.create () in
  let obs = Interp.process program rt ~ingress_port:0 (P.serialize (P.udp_ipv4 ())) in
  Alcotest.(check (list string)) "assert failure surfaced" [ "never holds" ]
    obs.Interp.failed_asserts

let test_default_egress_is_port_zero () =
  let program =
    { Programs.reflector.Programs.program with Ast.p_name = "silent"; p_ingress = [] }
  in
  let rt = Runtime.create () in
  match (Interp.process program rt ~ingress_port:3 (P.serialize (P.udp_ipv4 ()))).Interp.result with
  | Interp.Forwarded (0, _) -> ()
  | Interp.Forwarded (p, _) -> Alcotest.failf "went to %d" p
  | Interp.Dropped r -> Alcotest.failf "dropped: %s" r

let () =
  Alcotest.run "interp"
    [
      ( "basic_router",
        [
          Alcotest.test_case "forwards and rewrites" `Quick test_router_forwards_and_rewrites;
          Alcotest.test_case "longest prefix" `Quick test_router_longest_prefix;
          Alcotest.test_case "table miss drops" `Quick test_router_table_miss_drops;
          Alcotest.test_case "rejects non-ipv4" `Quick test_router_rejects_non_ipv4;
          Alcotest.test_case "rejects bad version" `Quick test_router_rejects_bad_version;
          Alcotest.test_case "rejects bad checksum" `Quick test_router_rejects_bad_checksum;
          Alcotest.test_case "drops expiring ttl" `Quick test_router_drops_expiring_ttl;
          Alcotest.test_case "rejects truncated ipv4" `Quick test_router_rejects_truncated_ipv4;
          Alcotest.test_case "counters" `Quick test_router_counters;
          Alcotest.test_case "table trace" `Quick test_router_tables_trace;
        ] );
      ( "router_split",
        [
          Alcotest.test_case "equivalent on samples" `Quick test_split_router_equivalent;
          QCheck_alcotest.to_alcotest prop_split_router_equivalent;
        ] );
      ( "buggy_router",
        [ Alcotest.test_case "ttl bug present" `Quick test_buggy_router_skips_ttl_decrement ] );
      ( "parser_guard",
        [
          Alcotest.test_case "default route" `Quick test_parser_guard_default_route;
          Alcotest.test_case "punts arp" `Quick test_parser_guard_punts_arp;
          Alcotest.test_case "rejects unknown ethertype" `Quick
            test_parser_guard_rejects_unknown_ethertype;
        ] );
      ( "l2_switch",
        [
          Alcotest.test_case "forwarding" `Quick test_l2_forwarding;
          Alcotest.test_case "unknown dst drops" `Quick test_l2_unknown_dst_drops;
          Alcotest.test_case "smac tracking" `Quick test_l2_smac_tracking;
        ] );
      ( "acl_firewall",
        [
          Alcotest.test_case "denies telnet" `Quick test_acl_denies_telnet;
          Alcotest.test_case "permits web to dmz" `Quick test_acl_permits_web_to_dmz;
          Alcotest.test_case "permits internal udp" `Quick test_acl_permits_internal_udp;
          Alcotest.test_case "default deny" `Quick test_acl_default_deny;
          Alcotest.test_case "priority order" `Quick test_acl_priority_order;
        ] );
      ( "mpls_tunnel",
        [
          Alcotest.test_case "push/swap/pop chain" `Quick test_mpls_push_swap_pop_chain;
          Alcotest.test_case "unknown label drops" `Quick test_mpls_unknown_label_drops;
          Alcotest.test_case "deep stack rejected" `Quick test_mpls_deep_stack_rejected;
        ] );
      ( "vlan_router",
        [
          Alcotest.test_case "routing by vid" `Quick test_vlan_routing_by_vid;
          Alcotest.test_case "unknown vid drops" `Quick test_vlan_unknown_vid_drops;
        ] );
      ( "ipv6_router",
        [
          Alcotest.test_case "routing by hi bits" `Quick test_ipv6_routing;
          Alcotest.test_case "hop limit" `Quick test_ipv6_hop_limit;
          Alcotest.test_case "rejects v4" `Quick test_ipv6_rejects_v4;
        ] );
      ( "calc",
        [
          Alcotest.test_case "operations" `Quick test_calc_operations;
          Alcotest.test_case "mac swap" `Quick test_calc_swaps_macs;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "parser loop protection" `Quick test_parser_loop_protection;
          Alcotest.test_case "failed assert reported" `Quick test_failed_assert_reported;
          Alcotest.test_case "default egress port" `Quick test_default_egress_is_port_zero;
        ] );
    ]
