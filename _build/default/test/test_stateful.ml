(* Tests for stateful registers: the Regstate store, the rate_limiter and
   kv_cache programs on both executors, and persistence semantics. *)

module Ast = P4ir.Ast
module Value = P4ir.Value
module Regstate = P4ir.Regstate
module Interp = P4ir.Interp
module Runtime = P4ir.Runtime
module Programs = P4ir.Programs
module Device = Target.Device
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile
module Bitstring = Bitutil.Bitstring
module P = Packet

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* ---------------- Regstate ---------------- *)

let reg_program =
  {
    Programs.reflector.Programs.program with
    Ast.p_name = "regtest";
    p_registers = [ { Ast.r_name = "r"; r_width = 16; r_size = 4 } ];
  }

let test_regstate_read_write () =
  let rs = Regstate.create reg_program in
  check_i64 "initially zero" 0L (Value.to_int64 (Regstate.read rs "r" 2));
  Regstate.write rs "r" 2 (Value.of_int ~width:16 0xABCD);
  check_i64 "written" 0xABCDL (Value.to_int64 (Regstate.read rs "r" 2));
  check_i64 "others untouched" 0L (Value.to_int64 (Regstate.read rs "r" 1))

let test_regstate_bounds () =
  let rs = Regstate.create reg_program in
  (* out-of-range: read zero, write ignored — no exception *)
  check_i64 "oob read" 0L (Value.to_int64 (Regstate.read rs "r" 99));
  Regstate.write rs "r" 99 (Value.of_int ~width:16 1);
  check_i64 "oob write ignored" 0L (Value.to_int64 (Regstate.read rs "r" 99))

let test_regstate_width_truncation () =
  let rs = Regstate.create reg_program in
  Regstate.write rs "r" 0 (Value.make ~width:32 0xFFFF_FFFFL);
  check_i64 "truncated to 16 bits" 0xFFFFL (Value.to_int64 (Regstate.read rs "r" 0))

let test_regstate_undeclared () =
  let rs = Regstate.create reg_program in
  try
    ignore (Regstate.read rs "ghost" 0);
    Alcotest.fail "accepted undeclared register"
  with Invalid_argument _ -> ()

let test_regstate_reset () =
  let rs = Regstate.create reg_program in
  Regstate.write rs "r" 1 (Value.of_int ~width:16 7);
  Regstate.reset rs;
  check_i64 "reset" 0L (Value.to_int64 (Regstate.read rs "r" 1))

(* ---------------- rate_limiter ---------------- *)

let deploy_device ?(quirks = Quirks.none) (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks b.Programs.program in
  let d = Device.create report.Compile.pipeline in
  (match Runtime.install_all b.Programs.program (Device.runtime d) b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  d

let routed = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ())

let test_rate_limiter_budget () =
  (* port 0 has a budget of 3 packets *)
  let d = deploy_device Programs.rate_limiter in
  let outcomes =
    List.init 6 (fun _ ->
        match snd (Device.inject d ~source:(Device.External 0) routed) with
        | Device.Emitted _ -> `Fwd
        | Device.Dropped_pipeline _ -> `Drop
        | _ -> `Other)
  in
  Alcotest.(check (list (of_pp Fmt.nop)))
    "first 3 pass, rest drop"
    [ `Fwd; `Fwd; `Fwd; `Drop; `Drop; `Drop ]
    outcomes

let test_rate_limiter_per_port_isolation () =
  let d = deploy_device Programs.rate_limiter in
  (* exhaust port 0's budget *)
  for _ = 1 to 5 do
    ignore (Device.inject d ~source:(Device.External 0) routed)
  done;
  (* port 1 has the default (unlimited) policy *)
  match snd (Device.inject d ~source:(Device.External 1) routed) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "port 1 should be unaffected"

let test_rate_limiter_register_visible () =
  let d = deploy_device Programs.rate_limiter in
  for _ = 1 to 2 do
    ignore (Device.inject d ~source:(Device.External 0) routed)
  done;
  let counts = Regstate.dump (Device.registers d) "port_counts" in
  check_i64 "register holds the count" 2L (Value.to_int64 counts.(0))

let test_rate_limiter_interp_stateless_vs_stateful () =
  let b = Programs.rate_limiter in
  let rt = Runtime.create () in
  (match Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* stateless spec: every call starts at count 0, so nothing is limited *)
  for _ = 1 to 5 do
    match (Interp.process b.Programs.program rt ~ingress_port:0 routed).Interp.result with
    | Interp.Forwarded _ -> ()
    | Interp.Dropped r -> Alcotest.failf "stateless run dropped: %s" r
  done;
  (* threaded registers reproduce the device behaviour *)
  let regs = Regstate.create b.Programs.program in
  let outcomes =
    List.init 5 (fun _ ->
        match
          (Interp.process ~regs b.Programs.program rt ~ingress_port:0 routed).Interp.result
        with
        | Interp.Forwarded _ -> `Fwd
        | Interp.Dropped _ -> `Drop)
  in
  Alcotest.(check (list (of_pp Fmt.nop)))
    "stateful spec limits after 3"
    [ `Fwd; `Fwd; `Fwd; `Drop; `Drop ]
    outcomes

(* ---------------- kv_cache ---------------- *)

let kv_packet ~op ~key ~value =
  let w = Bitstring.Writer.create () in
  Bitstring.Writer.push_bits w
    (P.Eth.to_bits
       (P.Eth.make ~dst:0x020000000002L ~src:0x020000000001L ~ethertype:0x1235L ()));
  Bitstring.Writer.push_int64 w ~width:8 op;
  Bitstring.Writer.push_int64 w ~width:16 key;
  Bitstring.Writer.push_int64 w ~width:32 value;
  Bitstring.Writer.push_int64 w ~width:8 0L;
  Bitstring.Writer.contents w

(* kvh sits after 112 bits of eth: op@112, key@120, value@136, status@168 *)
let kv_value bits = Bitstring.extract bits ~off:136 ~width:32
let kv_status bits = Bitstring.extract bits ~off:168 ~width:8

let send d ~port pkt =
  match snd (Device.inject d ~source:(Device.External port) pkt) with
  | Device.Emitted out -> out
  | _ -> Alcotest.fail "kv packet dropped"

let test_kv_get_miss_then_put_then_hit () =
  let d = deploy_device Programs.kv_cache in
  (* GET before PUT: miss *)
  let out = send d ~port:2 (kv_packet ~op:1L ~key:42L ~value:0L) in
  check_i64 "miss status" 0L (kv_status out.Device.o_bits);
  check_int "reflected to requester" 2 out.Device.o_port;
  (* PUT *)
  let out = send d ~port:2 (kv_packet ~op:2L ~key:42L ~value:0xCAFEL) in
  check_i64 "put acked" 1L (kv_status out.Device.o_bits);
  (* GET after PUT: hit with the stored value *)
  let out = send d ~port:3 (kv_packet ~op:1L ~key:42L ~value:0L) in
  check_i64 "hit status" 1L (kv_status out.Device.o_bits);
  check_i64 "cached value" 0xCAFEL (kv_value out.Device.o_bits)

let test_kv_key_isolation () =
  let d = deploy_device Programs.kv_cache in
  ignore (send d ~port:0 (kv_packet ~op:2L ~key:1L ~value:111L));
  ignore (send d ~port:0 (kv_packet ~op:2L ~key:2L ~value:222L));
  let out = send d ~port:0 (kv_packet ~op:1L ~key:1L ~value:0L) in
  check_i64 "key 1 kept its value" 111L (kv_value out.Device.o_bits)

let test_kv_index_aliasing () =
  (* the cache indexes by the low 8 key bits: keys 5 and 261 collide, the
     later PUT wins — documented cache behaviour *)
  let d = deploy_device Programs.kv_cache in
  ignore (send d ~port:0 (kv_packet ~op:2L ~key:5L ~value:555L));
  ignore (send d ~port:0 (kv_packet ~op:2L ~key:261L ~value:999L));
  let out = send d ~port:0 (kv_packet ~op:1L ~key:5L ~value:0L) in
  check_i64 "collision overwrote" 999L (kv_value out.Device.o_bits)

let test_kv_unknown_op () =
  let d = deploy_device Programs.kv_cache in
  let out = send d ~port:0 (kv_packet ~op:9L ~key:1L ~value:0L) in
  check_i64 "error status" 0xFFL (kv_status out.Device.o_bits)

let test_kv_counters () =
  let d = deploy_device Programs.kv_cache in
  ignore (send d ~port:0 (kv_packet ~op:1L ~key:9L ~value:0L));
  ignore (send d ~port:0 (kv_packet ~op:2L ~key:9L ~value:1L));
  ignore (send d ~port:0 (kv_packet ~op:1L ~key:9L ~value:0L));
  let c = Device.counters d in
  check_i64 "one miss" 1L (Stats.Counter.Set.get c "prog/cache_miss");
  check_i64 "one put" 1L (Stats.Counter.Set.get c "prog/cache_put");
  check_i64 "one hit" 1L (Stats.Counter.Set.get c "prog/cache_hit")

(* ---------------- heavy_hitter (textual-only program) ---------------- *)

let load_heavy_hitter () =
  match P4front.Front.parse_file "heavy_hitter.p4" with
  | Ok b -> b
  | Error e -> Alcotest.failf "heavy_hitter.p4: %a" P4front.Front.pp_error e

let dscp_of bits =
  (* eth(112) + version(4) + ihl(4) -> dscp at offset 120, width 6 *)
  Bitstring.extract bits ~off:120 ~width:6

let test_heavy_hitter_marks_after_threshold () =
  let d = deploy_device (load_heavy_hitter ()) in
  (* default threshold is 5: packets 6+ from the same source get EF *)
  let dscps =
    List.init 8 (fun _ ->
        match snd (Device.inject d ~source:(Device.External 0) routed) with
        | Device.Emitted out -> Int64.to_int (dscp_of out.Device.o_bits)
        | _ -> Alcotest.fail "dropped")
  in
  Alcotest.(check (list int)) "EF after 5 packets" [ 0; 0; 0; 0; 0; 46; 46; 46 ] dscps

let test_heavy_hitter_per_port_policy () =
  (* port 2 has a stricter budget (2) via the policy table *)
  let d = deploy_device (load_heavy_hitter ()) in
  let dscps =
    List.init 4 (fun _ ->
        match snd (Device.inject d ~source:(Device.External 2) routed) with
        | Device.Emitted out -> Int64.to_int (dscp_of out.Device.o_bits)
        | _ -> Alcotest.fail "dropped")
  in
  Alcotest.(check (list int)) "EF after 2 packets on port 2" [ 0; 0; 46; 46 ] dscps

let test_heavy_hitter_source_isolation () =
  let d = deploy_device (load_heavy_hitter ()) in
  let send src =
    match
      snd
        (Device.inject d ~source:(Device.External 0)
           (P.serialize (P.udp_ipv4 ~src ~dst:0x0A000005L ())))
    with
    | Device.Emitted out -> Int64.to_int (dscp_of out.Device.o_bits)
    | _ -> Alcotest.fail "dropped"
  in
  (* exhaust bucket of source ...01 *)
  for _ = 1 to 6 do
    ignore (send 0x0A000001L)
  done;
  Alcotest.(check int) "hot source marked" 46 (send 0x0A000001L);
  Alcotest.(check int) "cold source (different bucket) unmarked" 0 (send 0x0A000002L)

let test_heavy_hitter_marked_checksum_valid () =
  (* rewriting dscp must be followed by a checksum update *)
  let d = deploy_device (load_heavy_hitter ()) in
  let last = ref None in
  for _ = 1 to 7 do
    match snd (Device.inject d ~source:(Device.External 0) routed) with
    | Device.Emitted out -> last := Some out.Device.o_bits
    | _ -> Alcotest.fail "dropped"
  done;
  match !last with
  | Some bits -> (
      match P.find_ipv4 (P.parse bits) with
      | Some ip ->
          Alcotest.(check int64) "marked" 46L ip.P.Ipv4.dscp;
          check_bool "checksum updated after marking" true (P.Ipv4.checksum_ok ip)
      | None -> Alcotest.fail "no ipv4")
  | None -> Alcotest.fail "no output"

let test_heavy_hitter_stateful_validation () =
  let h = Netdebug.Harness.deploy ~quirks:Quirks.none (load_heavy_hitter ()) in
  let r = Netdebug.Usecases.Functional.run ~fuzz:8 ~stateful:true h in
  check_bool "heavy hitter matches its spec" true (Netdebug.Usecases.Functional.passed r)

(* ---------------- cross-cutting ---------------- *)

let test_stateful_functional_validation () =
  (* the stateful oracle predicts register-dependent behaviour packet by
     packet: rate_limiter and kv_cache pass full functional validation on a
     faithful device *)
  List.iter
    (fun b ->
      let h = Netdebug.Harness.deploy ~quirks:Quirks.none b in
      let r = Netdebug.Usecases.Functional.run ~fuzz:8 ~stateful:true h in
      check_bool "stateful validation passes" true
        (Netdebug.Usecases.Functional.passed r))
    [ Programs.rate_limiter; Programs.kv_cache ]

let test_stateful_validation_catches_divergence () =
  (* same, but with a lookup-memory fault on the policy table: the device
     falls back to the unlimited default while the oracle limits port 0 *)
  let h = Netdebug.Harness.deploy ~quirks:Quirks.none Programs.rate_limiter in
  Target.Device.inject_fault h.Netdebug.Harness.device ~stage:"ma:port_policy"
    Target.Fault.Stuck_miss;
  (* drive enough traffic through port 0's budget to expose the miss; the
     oracle drops packet 4+ while the faulty device forwards them *)
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ()) in
  let vectors = List.init 8 (fun _ -> probe) in
  (* the oracle uses the generator port's budget (5): craft vectors beyond it *)
  let r = Netdebug.Usecases.Functional.run ~vectors ~fuzz:0 ~stateful:true h in
  check_bool "divergence detected" true
    (not (Netdebug.Usecases.Functional.passed r))

let test_symexec_havocs_registers () =
  (* single-packet verification must not crash on stateful programs; a GET
     can end hit or miss depending on havocked state *)
  let b = Programs.kv_cache in
  let rt = Runtime.create () in
  let run = Symexec.Sexec.explore b.Programs.program rt in
  check_bool "paths explored" true (List.length run.Symexec.Sexec.paths >= 3)

let test_stateful_programs_compile () =
  List.iter
    (fun (b : Programs.bundle) ->
      match Compile.compile b.Programs.program with
      | Ok report ->
          (* registers consume BRAM *)
          check_bool
            (b.Programs.program.Ast.p_name ^ " brams")
            true
            (report.Compile.pipeline.Target.Pipeline.resources.Target.Resource.brams > 20)
      | Error _ -> Alcotest.fail "stateful program failed to compile")
    [ Programs.rate_limiter; Programs.kv_cache ]

let test_typecheck_register_errors () =
  let expect_err what p =
    match P4ir.Typecheck.check p with
    | Ok () -> Alcotest.failf "accepted %s" what
    | Error _ -> ()
  in
  expect_err "undeclared register"
    {
      reg_program with
      Ast.p_ingress = [ Ast.RegWrite ("ghost", Ast.Const (Value.of_int ~width:8 0), Ast.Const (Value.of_int ~width:16 0)) ];
    };
  expect_err "width mismatch"
    {
      reg_program with
      Ast.p_ingress =
        [ Ast.RegWrite ("r", Ast.Const (Value.of_int ~width:8 0), Ast.Const (Value.of_int ~width:8 0)) ];
    };
  expect_err "read into wrong width"
    {
      reg_program with
      Ast.p_ingress =
        [ Ast.RegRead (Ast.LField ("eth", "ethertype"), "r", Ast.Const (Value.of_int ~width:8 0)) ];
      p_registers = [ { Ast.r_name = "r"; r_width = 32; r_size = 4 } ];
    }

let () =
  Alcotest.run "stateful"
    [
      ( "regstate",
        [
          Alcotest.test_case "read/write" `Quick test_regstate_read_write;
          Alcotest.test_case "bounds" `Quick test_regstate_bounds;
          Alcotest.test_case "width truncation" `Quick test_regstate_width_truncation;
          Alcotest.test_case "undeclared" `Quick test_regstate_undeclared;
          Alcotest.test_case "reset" `Quick test_regstate_reset;
        ] );
      ( "rate_limiter",
        [
          Alcotest.test_case "budget enforced" `Quick test_rate_limiter_budget;
          Alcotest.test_case "per-port isolation" `Quick test_rate_limiter_per_port_isolation;
          Alcotest.test_case "register visible" `Quick test_rate_limiter_register_visible;
          Alcotest.test_case "interp stateless vs stateful" `Quick
            test_rate_limiter_interp_stateless_vs_stateful;
        ] );
      ( "kv_cache",
        [
          Alcotest.test_case "miss/put/hit" `Quick test_kv_get_miss_then_put_then_hit;
          Alcotest.test_case "key isolation" `Quick test_kv_key_isolation;
          Alcotest.test_case "index aliasing" `Quick test_kv_index_aliasing;
          Alcotest.test_case "unknown op" `Quick test_kv_unknown_op;
          Alcotest.test_case "counters" `Quick test_kv_counters;
        ] );
      ( "heavy_hitter",
        [
          Alcotest.test_case "marks after threshold" `Quick
            test_heavy_hitter_marks_after_threshold;
          Alcotest.test_case "per-port policy" `Quick test_heavy_hitter_per_port_policy;
          Alcotest.test_case "source isolation" `Quick test_heavy_hitter_source_isolation;
          Alcotest.test_case "checksum after marking" `Quick
            test_heavy_hitter_marked_checksum_valid;
          Alcotest.test_case "stateful validation" `Quick
            test_heavy_hitter_stateful_validation;
        ] );
      ( "cross",
        [
          Alcotest.test_case "stateful functional validation" `Quick
            test_stateful_functional_validation;
          Alcotest.test_case "stateful validation catches divergence" `Quick
            test_stateful_validation_catches_divergence;
          Alcotest.test_case "symexec havocs registers" `Quick test_symexec_havocs_registers;
          Alcotest.test_case "stateful programs compile" `Quick test_stateful_programs_compile;
          Alcotest.test_case "typecheck register errors" `Quick test_typecheck_register_errors;
        ] );
    ]
