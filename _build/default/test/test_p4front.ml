(* Tests for the textual P4 frontend: lexer, parser, elaboration (width
   inference), and semantic equivalence of parsed programs with their
   OCaml-defined library twins. *)

module Ast = P4ir.Ast
module Value = P4ir.Value
module Entry = P4ir.Entry
module Runtime = P4ir.Runtime
module Interp = P4ir.Interp
module Programs = P4ir.Programs
module Lexer = P4front.Lexer
module Syntax = P4front.Syntax
module Front = P4front.Front
module Bitstring = Bitutil.Bitstring
module P = Packet

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* ---------------- lexer ---------------- *)

let toks src = List.map (fun t -> t.Lexer.tok) (Lexer.tokenize src)

let test_lex_basic () =
  Alcotest.(check bool) "shape" true
    (toks "table x { }"
    = [ Lexer.IDENT "table"; Lexer.IDENT "x"; Lexer.LBRACE; Lexer.RBRACE; Lexer.EOF ])

let test_lex_numbers () =
  (match toks "123 0x1F 0b101" with
  | [ Lexer.INT (123L, None); Lexer.INT (0x1FL, None); Lexer.INT (5L, None); Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "plain numbers");
  match toks "16w0x800 9w1" with
  | [ Lexer.INT (0x800L, Some 16); Lexer.INT (1L, Some 9); Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "width-prefixed"

let test_lex_ipv4_literal () =
  match toks "10.1.0.0" with
  | [ Lexer.INT (0x0A010000L, Some 32); Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "dotted quad"

let test_lex_operators () =
  Alcotest.(check bool) "mask vs and vs amp" true
    (toks "a &&& b && c & d"
    = [ Lexer.IDENT "a"; Lexer.MASK; Lexer.IDENT "b"; Lexer.AND; Lexer.IDENT "c";
        Lexer.AMP; Lexer.IDENT "d"; Lexer.EOF ]);
  Alcotest.(check bool) "arrows and compares" true
    (toks "-> >= <= << >>"
    = [ Lexer.ARROW; Lexer.GE; Lexer.LE; Lexer.SHL; Lexer.SHR; Lexer.EOF ])

let test_lex_comments () =
  Alcotest.(check bool) "comments stripped" true
    (toks "a // line\n /* block\n comment */ b" = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ])

let test_lex_errors () =
  (try
     ignore (Lexer.tokenize "@");
     Alcotest.fail "accepted @"
   with Lexer.Lex_error _ -> ());
  try
    ignore (Lexer.tokenize "/* unterminated");
    Alcotest.fail "accepted dangling comment"
  with Lexer.Lex_error _ -> ()

(* ---------------- parsing + elaboration ---------------- *)

let load_file path =
  match Front.parse_file path with
  | Ok b -> b
  | Error e -> Alcotest.failf "%s: %a" path Front.pp_error e

let router_path = "router.p4"
let kv_path = "kv_cache.p4"

(* dune copies the canonical examples/programs/*.p4 next to the test
   binary (see test/dune) *)

let test_router_parses () =
  let b = load_file router_path in
  check_int "3 entries" 3 (List.length b.Programs.entries);
  let p = b.Programs.program in
  check_int "2 headers" 2 (List.length p.Ast.p_headers);
  check_int "2 states" 2 (List.length p.Ast.p_parser);
  check_int "1 table" 1 (List.length p.Ast.p_tables);
  check_bool "verify checksum" true p.Ast.p_verify_ipv4_checksum

let deploy (b : Programs.bundle) =
  let rt = Runtime.create () in
  (match Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (b.Programs.program, rt)

let test_parsed_router_equals_library_router () =
  let parsed = deploy (load_file router_path) in
  let native = deploy Programs.basic_router in
  let vectors =
    [
      P.serialize (P.udp_ipv4 ~dst:0x0A000005L ());
      P.serialize (P.udp_ipv4 ~dst:0x0A010203L ());
      P.serialize (P.udp_ipv4 ~dst:0xC0A80001L ());
      P.serialize (P.udp_ipv4 ~dst:0x08080808L ());
      P.serialize (P.udp_ipv4 ~dst:0x0A000005L ~ttl:1L ());
      P.serialize (P.arp_request ());
      P.serialize
        (P.map_ipv4 (fun ip -> { ip with P.Ipv4.checksum = 1L }) (P.udp_ipv4 ()));
    ]
  in
  List.iter
    (fun bits ->
      let r1 =
        (Interp.process (fst parsed) (snd parsed) ~ingress_port:0 bits).Interp.result
      in
      let r2 =
        (Interp.process (fst native) (snd native) ~ingress_port:0 bits).Interp.result
      in
      match (r1, r2) with
      | Interp.Forwarded (p1, b1), Interp.Forwarded (p2, b2) ->
          check_int "same port" p2 p1;
          check_bool "same bits" true (Bitstring.equal b1 b2)
      | Interp.Dropped _, Interp.Dropped _ -> ()
      | _ -> Alcotest.fail "parsed and native routers diverge")
    vectors

let test_parsed_kv_cache_works () =
  let program, rt = deploy (load_file kv_path) in
  let regs = P4ir.Regstate.create program in
  let kv ~op ~key ~value =
    let w = Bitstring.Writer.create () in
    Bitstring.Writer.push_bits w (P.Eth.to_bits (P.Eth.make ~ethertype:0x1235L ()));
    Bitstring.Writer.push_int64 w ~width:8 op;
    Bitstring.Writer.push_int64 w ~width:16 key;
    Bitstring.Writer.push_int64 w ~width:32 value;
    Bitstring.Writer.push_int64 w ~width:8 0L;
    Bitstring.Writer.contents w
  in
  let run pkt =
    match (Interp.process ~regs program rt ~ingress_port:1 pkt).Interp.result with
    | Interp.Forwarded (_, bits) -> bits
    | Interp.Dropped r -> Alcotest.failf "dropped: %s" r
  in
  let status bits = Bitstring.extract bits ~off:168 ~width:8 in
  let value bits = Bitstring.extract bits ~off:136 ~width:32 in
  check_i64 "miss" 0L (status (run (kv ~op:1L ~key:7L ~value:0L)));
  check_i64 "put ack" 1L (status (run (kv ~op:2L ~key:7L ~value:0xFEEDL)));
  let got = run (kv ~op:1L ~key:7L ~value:0L) in
  check_i64 "hit" 1L (status got);
  check_i64 "value" 0xFEEDL (value got)

let test_parsed_program_deploys_on_device () =
  let b = load_file router_path in
  let h = Netdebug.Harness.deploy ~quirks:Sdnet.Quirks.none b in
  let r = Netdebug.Usecases.Functional.run ~fuzz:8 h in
  check_bool "functional validation passes" true (Netdebug.Usecases.Functional.passed r)

(* ---------------- targeted syntax/elaboration cases ---------------- *)

let parse_ok src =
  match Front.parse_string ~name:"t" src with
  | Ok b -> b
  | Error e -> Alcotest.failf "parse failed: %a" Front.pp_error e

let parse_err what src =
  match Front.parse_string ~name:"t" src with
  | Ok _ -> Alcotest.failf "accepted %s" what
  | Error _ -> ()

let mini_prelude =
  {|
header eth { bit<48> dst; bit<48> src; bit<16> ethertype; }
parser { state start { extract(eth); transition accept; } }
deparser { emit(eth); }
|}

let test_width_inference_from_field () =
  (* bare literal adopts the field's width on both sides *)
  let b =
    parse_ok
      (mini_prelude
      ^ {| control ingress { if (eth.ethertype == 0x800) { eth.dst = 1; } } |})
  in
  match b.Programs.program.Ast.p_ingress with
  | [ Ast.If (Ast.Bin (Ast.Eq, _, Ast.Const c), [ Ast.Assign (_, Ast.Const d) ], []) ] ->
      check_int "cmp literal width" 16 (Value.width c);
      check_int "assign literal width" 48 (Value.width d)
  | _ -> Alcotest.fail "unexpected shape"

let test_width_inference_failure () =
  parse_err "uninferable literal"
    (mini_prelude ^ {| control ingress { if (1 == 1) { } } |})

let test_unknown_identifier () =
  parse_err "unknown field" (mini_prelude ^ {| control ingress { eth.bogus = 48w1; } |});
  parse_err "unknown header" (mini_prelude ^ {| control ingress { ip.dst = 48w1; } |})

let test_operator_precedence () =
  let b =
    parse_ok
      (mini_prelude
      ^ {| control ingress { if (eth.ethertype == 1 || eth.ethertype == 2 && eth.dst == 48w0) { } } |})
  in
  match b.Programs.program.Ast.p_ingress with
  (* || binds looser than && *)
  | [ Ast.If (Ast.Bin (Ast.LOr, _, Ast.Bin (Ast.LAnd, _, _)), [], []) ] -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_slice_and_concat () =
  let b =
    parse_ok
      (mini_prelude
      ^ {| control ingress { eth.ethertype = eth.dst[15:0]; eth.dst = eth.src[15:0] ++ eth.dst[31:0]; } |})
  in
  match b.Programs.program.Ast.p_ingress with
  | [ Ast.Assign (_, Ast.Slice (_, 15, 0)); Ast.Assign (_, Ast.Concat (_, _)) ] -> ()
  | _ -> Alcotest.fail "slice/concat shape"

let test_table_arity_checked () =
  parse_err "default arg arity"
    (mini_prelude
    ^ {|
action fwd(bit<9> p) { standard_metadata.egress_spec = p; }
table t { key = { eth.dst : exact; } actions = { fwd; } default_action = fwd(); }
control ingress { apply(t); }
|})

let test_entries_forms () =
  let b =
    parse_ok
      {|
header eth { bit<48> dst; bit<48> src; bit<16> ethertype; }
parser { state start { extract(eth); transition accept; } }
action allow() { }
action deny() { mark_to_drop(); }
table acl {
  key = { eth.src : ternary; eth.ethertype : ternary; }
  actions = { allow; deny; }
  default_action = deny();
}
control ingress { apply(acl); }
deparser { emit(eth); }
entries {
  acl {
    priority 10: 48w0 &&& 48w0, 0x800 -> allow();
    priority 99: 48w1, 0x806 &&& 16w0xFFFF -> deny();
  }
}
|}
  in
  match b.Programs.entries with
  | [ (_, e1); (_, e2) ] ->
      check_int "priority 1" 10 e1.Entry.priority;
      check_int "priority 2" 99 e2.Entry.priority;
      (match e2.Entry.keys with
      | [ Entry.Ternary_v (v, m); _ ] ->
          check_i64 "bare ternary value exact-matched" 1L (Value.to_int64 v);
          check_i64 "full mask" 0xFFFFFFFFFFFFL (Value.to_int64 m)
      | _ -> Alcotest.fail "key shapes")
  | _ -> Alcotest.fail "two entries expected"

let test_parse_error_positions () =
  match Front.parse_string ~name:"t" "header eth { bit<48> dst }" with
  | Error e -> check_bool "line recorded" true (e.Front.line >= 1)
  | Ok _ -> Alcotest.fail "accepted missing semicolon"

let test_else_if_chain () =
  let b =
    parse_ok
      (mini_prelude
      ^ {| control ingress {
             if (eth.ethertype == 1) { eth.dst = 48w1; }
             else if (eth.ethertype == 2) { eth.dst = 48w2; }
             else { eth.dst = 48w3; }
           } |})
  in
  match b.Programs.program.Ast.p_ingress with
  | [ Ast.If (_, _, [ Ast.If (_, _, [ Ast.Assign _ ]) ]) ] -> ()
  | _ -> Alcotest.fail "else-if chain shape"

let test_select_wildcard_and_mask () =
  let b =
    parse_ok
      {|
header eth { bit<48> dst; bit<48> src; bit<16> ethertype; }
parser {
  state start {
    extract(eth);
    transition select (eth.ethertype, eth.dst) {
      (0x800, _): a;
      (0x86DD &&& 16w0xFFFF, 48w5): reject;
      default: accept;
    }
  }
  state a { transition accept; }
}
deparser { emit(eth); }
|}
  in
  match (List.hd b.Programs.program.Ast.p_parser).Ast.ps_transition with
  | Ast.Select ([ _; _ ], [ c1; c2 ], Ast.To_accept) ->
      (match c1.Ast.sc_keysets with
      | [ (_, None); (wild, Some m) ] ->
          check_bool "wildcard mask is zero" true (Value.is_zero m && Value.is_zero wild)
      | _ -> Alcotest.fail "case 1 keysets");
      (match c2.Ast.sc_keysets with
      | [ (_, Some m); (v, None) ] ->
          Alcotest.(check int64) "mask" 0xFFFFL (Value.to_int64 m);
          Alcotest.(check int64) "exact" 5L (Value.to_int64 v)
      | _ -> Alcotest.fail "case 2 keysets")
  | _ -> Alcotest.fail "select shape"

let test_method_call_forms () =
  let b =
    parse_ok
      {|
header eth { bit<48> dst; bit<48> src; bit<16> ethertype; }
counter seen;
action noop() { }
table t { key = { eth.dst : exact; } actions = { noop; } default_action = noop(); }
parser { state start { extract(eth); transition accept; } }
control ingress {
  t.apply();
  seen.count();
  eth.setInvalid();
  eth.setValid();
}
deparser { emit(eth); }
|}
  in
  match b.Programs.program.Ast.p_ingress with
  | [ Ast.Apply "t"; Ast.Count "seen"; Ast.SetInvalid "eth"; Ast.SetValid "eth" ] -> ()
  | _ -> Alcotest.fail "method-call statements"

let test_syntax_errors_have_positions () =
  List.iter
    (fun (what, src) ->
      match Front.parse_string ~name:"t" src with
      | Ok _ -> Alcotest.failf "accepted %s" what
      | Error _ -> ())
    [
      ("missing transition", "header e { bit<8> f; } parser { state start { extract(e); } }");
      ("unknown method", mini_prelude ^ "control ingress { eth.frobnicate(); }");
      ("unterminated block", mini_prelude ^ "control ingress { ");
      ("bad match kind", mini_prelude ^ "action n() {} table t { key = { eth.dst : fuzzy; } actions = { n; } default_action = n(); }");
      ("entries before table", "entries { ghost { -> n(); } }");
    ]

(* random well-typed boolean expressions survive print -> parse -> elab *)
let prop_expr_roundtrip =
  let open QCheck in
  let field_w = [ (48, "dst"); (48, "src"); (16, "ethertype") ] in
  let rec gen_val w depth st =
    if depth = 0 then
      if Gen.bool st then Ast.Const (Value.make ~width:w (Gen.int64 st))
      else
        let candidates = List.filter (fun (fw, _) -> fw = w) field_w in
        (match candidates with
        | [] -> Ast.Const (Value.make ~width:w (Gen.int64 st))
        | cs ->
            let _, f = List.nth cs (Gen.int_bound (List.length cs - 1) st) in
            Ast.Field ("eth", f))
    else
      match Gen.int_bound 5 st with
      | 0 -> Ast.Bin (Ast.Add, gen_val w (depth - 1) st, gen_val w (depth - 1) st)
      | 1 -> Ast.Bin (Ast.BAnd, gen_val w (depth - 1) st, gen_val w (depth - 1) st)
      | 2 -> Ast.Bin (Ast.BXor, gen_val w (depth - 1) st, gen_val w (depth - 1) st)
      | 3 -> Ast.Un (Ast.BNot, gen_val w (depth - 1) st)
      | 4 -> Ast.Bin (Ast.Sub, gen_val w (depth - 1) st, gen_val w (depth - 1) st)
      | _ -> gen_val w 0 st
  in
  let rec gen_bool depth st =
    if depth = 0 then Ast.Valid "eth"
    else
      match Gen.int_bound 4 st with
      | 0 ->
          let w = if Gen.bool st then 48 else 16 in
          Ast.Bin (Ast.Eq, gen_val w (depth - 1) st, gen_val w (depth - 1) st)
      | 1 ->
          let w = if Gen.bool st then 48 else 16 in
          Ast.Bin (Ast.Lt, gen_val w (depth - 1) st, gen_val w (depth - 1) st)
      | 2 -> Ast.Bin (Ast.LAnd, gen_bool (depth - 1) st, gen_bool (depth - 1) st)
      | 3 -> Ast.Bin (Ast.LOr, gen_bool (depth - 1) st, gen_bool (depth - 1) st)
      | _ -> Ast.Un (Ast.LNot, gen_bool (depth - 1) st)
  in
  Test.make ~count:200 ~name:"random boolean exprs round-trip through source"
    (make (gen_bool 3))
    (fun expr ->
      let program =
        {
          Programs.reflector.Programs.program with
          Ast.p_name = "t";
          p_ingress = [ Ast.If (expr, [], []) ];
        }
      in
      match P4ir.Typecheck.check program with
      | Error _ -> true (* e.g. slice bounds; not generated here *)
      | Ok () -> (
          let src = P4front.Print.program_to_source program in
          match Front.parse_string ~name:"t" src with
          | Ok b -> b.Programs.program = program
          | Error _ -> false))

let test_print_parse_roundtrip_whole_library () =
  (* printing any library program and re-parsing it reproduces the exact
     same IR and entries, structurally *)
  List.iter
    (fun (b : Programs.bundle) ->
      let src = P4front.Print.bundle_to_source b in
      match Front.parse_string ~name:b.Programs.program.Ast.p_name src with
      | Error e ->
          Alcotest.failf "%s: reparse failed: %a" b.Programs.program.Ast.p_name
            Front.pp_error e
      | Ok b' ->
          check_bool
            (b.Programs.program.Ast.p_name ^ " program round-trips")
            true
            (b'.Programs.program = b.Programs.program);
          check_bool
            (b.Programs.program.Ast.p_name ^ " entries round-trip")
            true
            (b'.Programs.entries = b.Programs.entries))
    Programs.all

let test_typecheck_runs_in_elab () =
  (* references an undeclared counter: surfaces as Elab_error *)
  parse_err "undeclared counter"
    (mini_prelude ^ {| control ingress { count(nope); } |})

let () =
  Alcotest.run "p4front"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "ipv4 literal" `Quick test_lex_ipv4_literal;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "programs",
        [
          Alcotest.test_case "router parses" `Quick test_router_parses;
          Alcotest.test_case "parsed == native router" `Quick
            test_parsed_router_equals_library_router;
          Alcotest.test_case "parsed kv cache works" `Quick test_parsed_kv_cache_works;
          Alcotest.test_case "parsed program deploys" `Quick
            test_parsed_program_deploys_on_device;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "width inference from field" `Quick
            test_width_inference_from_field;
          Alcotest.test_case "width inference failure" `Quick test_width_inference_failure;
          Alcotest.test_case "unknown identifier" `Quick test_unknown_identifier;
          Alcotest.test_case "operator precedence" `Quick test_operator_precedence;
          Alcotest.test_case "slice and concat" `Quick test_slice_and_concat;
          Alcotest.test_case "table arity" `Quick test_table_arity_checked;
          Alcotest.test_case "entries forms" `Quick test_entries_forms;
          Alcotest.test_case "error positions" `Quick test_parse_error_positions;
          Alcotest.test_case "typecheck in elab" `Quick test_typecheck_runs_in_elab;
          Alcotest.test_case "print/parse round-trip (whole library)" `Quick
            test_print_parse_roundtrip_whole_library;
          Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
          Alcotest.test_case "select wildcard and mask" `Quick test_select_wildcard_and_mask;
          Alcotest.test_case "method call forms" `Quick test_method_call_forms;
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors_have_positions;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
        ] );
    ]
