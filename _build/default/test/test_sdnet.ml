(* Tests for the SDNet-style compiler: structure, limits, and the quirk
   model's semantic effects on the compiled device. *)

module Ast = P4ir.Ast
module Parse = P4ir.Parse
module Exec = P4ir.Exec
module Runtime = P4ir.Runtime
module Programs = P4ir.Programs
module Dsl = P4ir.Dsl
module Value = P4ir.Value
module P = Packet
module Ipv4 = Packet.Ipv4
module Eth = Packet.Eth
module Config = Target.Config
module Device = Target.Device
module Pipeline = Target.Pipeline
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- structure ---------------- *)

let test_all_programs_compile () =
  List.iter
    (fun (b : Programs.bundle) ->
      match Compile.compile b.Programs.program with
      | Ok _ -> ()
      | Error errs ->
          Alcotest.failf "%s: %s" b.Programs.program.Ast.p_name
            (String.concat "; " (List.map (Format.asprintf "%a" Compile.pp_error) errs)))
    Programs.all

let test_stage_structure () =
  let r = Compile.compile_exn Programs.basic_router.Programs.program in
  Alcotest.(check (list string))
    "stage order"
    [ "parser"; "ma:ipv4_lpm"; "egress"; "deparser" ]
    (Pipeline.stage_names r.Compile.pipeline)

let test_stage_structure_multi_table () =
  let r = Compile.compile_exn Programs.acl_firewall.Programs.program in
  Alcotest.(check (list string))
    "one MA stage per table"
    [ "parser"; "ma:acl"; "ma:ipv4_lpm"; "egress"; "deparser" ]
    (Pipeline.stage_names r.Compile.pipeline)

let test_resources_grow_with_table_size () =
  let prog size =
    let b = Programs.basic_router.Programs.program in
    {
      b with
      Ast.p_tables =
        List.map (fun (t : Ast.table) -> { t with Ast.t_size = size }) b.Ast.p_tables;
    }
  in
  let brams size =
    (Compile.compile_exn (prog size)).Compile.pipeline.Pipeline.resources.Target.Resource.brams
  in
  check_bool "8k entries need more brams than 1k" true (brams 8192 > brams 1024)

let test_ternary_uses_tcam () =
  let r = Compile.compile_exn Programs.acl_firewall.Programs.program in
  check_bool "tcam consumed" true
    (r.Compile.pipeline.Pipeline.resources.Target.Resource.tcam_bits > 0)

let test_typecheck_failure_propagates () =
  let bad =
    {
      Programs.reflector.Programs.program with
      Ast.p_ingress = [ Ast.Apply "no_such_table" ];
    }
  in
  match Compile.compile bad with
  | Ok _ -> Alcotest.fail "compiled an ill-typed program"
  | Error _ -> ()

(* ---------------- architecture limits ---------------- *)

let test_limit_table_capacity () =
  match
    Compile.compile ~config:Config.small_target Programs.basic_router.Programs.program
  with
  | Ok _ -> Alcotest.fail "1024-entry table fits a 16-entry target?"
  | Error errs ->
      check_bool "mentions size" true
        (List.exists
           (fun (e : Compile.error) ->
             e.Compile.e_where = "table ipv4_lpm")
           errs)

let test_limit_key_width () =
  match
    Compile.compile ~config:Config.small_target Programs.acl_firewall.Programs.program
  with
  | Ok _ -> Alcotest.fail "88-bit key fits a 64-bit-key target?"
  | Error errs ->
      check_bool "key width error" true
        (List.exists
           (fun (e : Compile.error) ->
             String.length e.Compile.e_msg >= 9 && String.sub e.Compile.e_msg 0 9 = "key width")
           errs)

let test_limit_parser_states () =
  let many_states =
    List.init 40 (fun i ->
        Dsl.state
          (if i = 0 then "start" else Printf.sprintf "s%d" i)
          (if i = 39 then Dsl.accept else Dsl.goto (Printf.sprintf "s%d" (i + 1))))
  in
  let prog = { Programs.reflector.Programs.program with Ast.p_parser = many_states } in
  match Compile.compile prog with
  | Ok _ -> Alcotest.fail "40 states fit a 32-state target?"
  | Error errs ->
      check_bool "parser error" true
        (List.exists (fun (e : Compile.error) -> e.Compile.e_where = "parser") errs)

let test_limit_table_count () =
  let mk_table i =
    Dsl.table
      (Printf.sprintf "t%d" i)
      [ (Dsl.fld "eth" "dst", Ast.Exact) ]
      [ "noop" ] ~default:"noop" ()
  in
  let prog =
    {
      Programs.reflector.Programs.program with
      Ast.p_actions = [ Dsl.action "noop" [] [] ];
      p_tables = List.init 20 mk_table;
      p_ingress = List.init 20 (fun i -> Ast.Apply (Printf.sprintf "t%d" i));
    }
  in
  match Compile.compile prog with
  | Ok _ -> Alcotest.fail "20 tables fit a 16-table target?"
  | Error errs ->
      check_bool "table count error" true
        (List.exists (fun (e : Compile.error) -> e.Compile.e_where = "pipeline") errs)

(* ---------------- quirk semantics on the device ---------------- *)

let deploy ?(quirks = Quirks.none) (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks b.Programs.program in
  let d = Device.create report.Compile.pipeline in
  (match Runtime.install_all b.Programs.program (Device.runtime d) b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  d

let test_default_quirks_include_reject_bug () =
  check_bool "shipped toolchain has the bug" true
    (Quirks.has_reject_unimplemented Quirks.default)

let test_reject_quirk_forwards_rejected_packets () =
  (* the paper's case study: with the quirk, a packet the parser rejects is
     "sent out to the next hop" instead of dropped *)
  let bad_ethertype =
    P.serialize
      (P.make [ P.Eth (Eth.make ~ethertype:0xBEEFL ()) ]
         ~payload:(P.payload_of_string "boo") ())
  in
  let faithful = deploy Programs.parser_guard in
  (match snd (Device.inject faithful ~source:(Device.External 0) bad_ethertype) with
  | Device.Dropped_pipeline "parser:Reject" -> ()
  | _ -> Alcotest.fail "faithful compiler must drop");
  let buggy = deploy ~quirks:Quirks.default Programs.parser_guard in
  match snd (Device.inject buggy ~source:(Device.External 0) bad_ethertype) with
  | Device.Emitted out ->
      check_int "sent to the next hop (port 0 default)" 0 out.Device.o_port
  | _ -> Alcotest.fail "quirky compiler must forward"

let test_ternary_quirk_changes_acl () =
  (* ACL entry: permit UDP inside 10/8 (masked). Degraded to exact, the
     masked source no longer matches a real address *)
  let pkt = P.serialize (P.udp_ipv4 ~src:0x0A000001L ~dst:0x0A000002L ()) in
  let faithful = deploy Programs.acl_firewall in
  (match snd (Device.inject faithful ~source:(Device.External 0) pkt) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "faithful: permitted");
  let buggy = deploy ~quirks:[ Quirks.Ternary_as_exact ] Programs.acl_firewall in
  match snd (Device.inject buggy ~source:(Device.External 0) pkt) with
  | Device.Dropped_pipeline "ingress" -> ()
  | _ -> Alcotest.fail "degraded ternary should miss and deny"

let test_egress_drop_quirk () =
  let program =
    {
      Programs.reflector.Programs.program with
      Ast.p_name = "egress_dropper";
      p_egress = [ Ast.MarkToDrop ];
    }
  in
  let bundle = { Programs.reflector with Programs.program } in
  let pkt = P.serialize (P.udp_ipv4 ()) in
  let faithful = deploy bundle in
  (match snd (Device.inject faithful ~source:(Device.External 0) pkt) with
  | Device.Dropped_pipeline "egress" -> ()
  | _ -> Alcotest.fail "faithful: egress drop works");
  let buggy = deploy ~quirks:[ Quirks.Egress_drop_ignored ] bundle in
  match snd (Device.inject buggy ~source:(Device.External 0) pkt) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "quirk: egress drop ignored"

let test_checksum_quirk () =
  let corrupted =
    P.serialize
      (P.map_ipv4 (fun ip -> { ip with Ipv4.checksum = 0xBADL }) (P.udp_ipv4 ~dst:0x0A000001L ()))
  in
  let faithful = deploy Programs.basic_router in
  (match snd (Device.inject faithful ~source:(Device.External 0) corrupted) with
  | Device.Dropped_pipeline "parser:ChecksumError" -> ()
  | _ -> Alcotest.fail "faithful: checksum verified");
  let buggy = deploy ~quirks:[ Quirks.Checksum_not_handled ] Programs.basic_router in
  match snd (Device.inject buggy ~source:(Device.External 0) corrupted) with
  | Device.Emitted out ->
      (* and the TTL-decrement update is also skipped: checksum now stale *)
      (match P.find_ipv4 (P.parse out.Device.o_bits) with
      | Some ip -> check_bool "stale checksum leaves device" false (Ipv4.checksum_ok ip)
      | None -> Alcotest.fail "no ipv4")
  | _ -> Alcotest.fail "quirk: checksum ignored, packet forwarded"

let test_select_truncation_quirk () =
  (* mpls_tunnel's start state has two select cases: [mpls; ipv4]. With
     truncation to 1 case, plain IPv4 falls through to the default
     (reject) even though the program says parse it *)
  let pkt = P.serialize (P.udp_ipv4 ~dst:0x0A020001L ()) in
  let faithful = deploy Programs.mpls_tunnel in
  (match snd (Device.inject faithful ~source:(Device.External 0) pkt) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "faithful: ipv4 parsed and tunneled");
  let buggy = deploy ~quirks:[ Quirks.Select_cases_truncated 1 ] Programs.mpls_tunnel in
  match snd (Device.inject buggy ~source:(Device.External 0) pkt) with
  | Device.Dropped_pipeline "parser:Reject" -> ()
  | _ -> Alcotest.fail "truncated select should reject ipv4"

let test_shift_truncation_quirk () =
  (* dst << 48 on a 48-bit field: spec shifts everything out (0); a 5-bit
     barrel shifter computes dst << (48 mod 32 = 16) *)
  let program =
    {
      Programs.reflector.Programs.program with
      Ast.p_name = "shifter";
      p_ingress =
        [
          Dsl.set_field "eth" "dst"
            (Ast.Bin (Ast.Shl, Dsl.fld "eth" "dst", Dsl.const ~width:8 48));
          Dsl.set_std Ast.Egress_spec (Dsl.const ~width:9 0);
        ];
    }
  in
  let bundle = { Programs.reflector with Programs.program } in
  let pkt = P.serialize (P.udp_ipv4 ~eth_dst:0x0000DEADBEEFL ()) in
  let get_dst d =
    match snd (Device.inject d ~source:(Device.External 0) pkt) with
    | Device.Emitted out -> Bitutil.Bitstring.extract out.Device.o_bits ~off:0 ~width:48
    | _ -> Alcotest.fail "not emitted"
  in
  Alcotest.(check int64) "spec: shifted to zero" 0L (get_dst (deploy bundle));
  Alcotest.(check int64) "quirk: shifted by 16 instead" 0xDEADBEEF0000L
    (get_dst (deploy ~quirks:[ Quirks.Shift_width_truncated 5 ] bundle))

let test_quirk_names_unique () =
  let names = List.map Quirks.name Quirks.all in
  check_int "no duplicate names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let () =
  Alcotest.run "sdnet"
    [
      ( "structure",
        [
          Alcotest.test_case "all programs compile" `Quick test_all_programs_compile;
          Alcotest.test_case "stage structure" `Quick test_stage_structure;
          Alcotest.test_case "multi-table stages" `Quick test_stage_structure_multi_table;
          Alcotest.test_case "resources grow with size" `Quick
            test_resources_grow_with_table_size;
          Alcotest.test_case "ternary uses tcam" `Quick test_ternary_uses_tcam;
          Alcotest.test_case "typecheck failure propagates" `Quick
            test_typecheck_failure_propagates;
        ] );
      ( "limits",
        [
          Alcotest.test_case "table capacity" `Quick test_limit_table_capacity;
          Alcotest.test_case "key width" `Quick test_limit_key_width;
          Alcotest.test_case "parser states" `Quick test_limit_parser_states;
          Alcotest.test_case "table count" `Quick test_limit_table_count;
        ] );
      ( "quirks",
        [
          Alcotest.test_case "default includes reject bug" `Quick
            test_default_quirks_include_reject_bug;
          Alcotest.test_case "reject quirk (paper case study)" `Quick
            test_reject_quirk_forwards_rejected_packets;
          Alcotest.test_case "ternary-as-exact" `Quick test_ternary_quirk_changes_acl;
          Alcotest.test_case "egress drop ignored" `Quick test_egress_drop_quirk;
          Alcotest.test_case "checksum not handled" `Quick test_checksum_quirk;
          Alcotest.test_case "select truncation" `Quick test_select_truncation_quirk;
          Alcotest.test_case "shift truncation" `Quick test_shift_truncation_quirk;
          Alcotest.test_case "quirk names unique" `Quick test_quirk_names_unique;
        ] );
    ]
