(* Comparison use-case: differential validation of alternative
   specifications of the same forwarding function.

   basic_router and router_split implement identical routing with
   different table decompositions; buggy_router claims to but forgets the
   TTL decrement. NetDebug drives the same probes through both deployments
   and diffs every byte that comes out.

     dune exec examples/spec_comparison.exe
*)

module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Usecases = Netdebug.Usecases

let describe name_a name_b (r : Usecases.Comparison.report) =
  Format.printf "%s vs %s: %d probes, %d divergence(s) -> %s@." name_a name_b
    r.Usecases.Comparison.cr_compared
    (List.length r.Usecases.Comparison.cr_divergences)
    (if Usecases.Comparison.equivalent r then "EQUIVALENT" else "DIVERGENT");
  List.iteri
    (fun i d ->
      if i < 3 then begin
        Format.printf "  probe #%d:@." d.Usecases.Comparison.dv_index;
        Format.printf "    %-14s -> %s@." name_a d.Usecases.Comparison.dv_a;
        Format.printf "    %-14s -> %s@." name_b d.Usecases.Comparison.dv_b
      end)
    r.Usecases.Comparison.cr_divergences;
  Format.printf "@."

let () =
  Format.printf "== Comparing alternative specifications of one program ==@.@.";
  describe "basic_router" "router_split"
    (Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
       Programs.basic_router Programs.router_split);
  describe "basic_router" "buggy_router"
    (Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
       Programs.basic_router Programs.buggy_router);
  (* the same program under two toolchains: compiler regression testing *)
  describe "parser_guard(fixed)" "parser_guard(shipped)"
    (Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.default
       Programs.parser_guard Programs.parser_guard)
