(* Performance testing use-case: offered-load sweep of a DUT, measured two
   ways — by NetDebug's internal generator/checker (full datapath rate) and
   by an OSNT-style external tester (limited to the interface rate).

     dune exec examples/performance_validation.exe
*)

module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Harness = Netdebug.Harness
module Usecases = Netdebug.Usecases
module Texttable = Stats.Texttable

let () =
  let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:1400 ()) in
  Format.printf "== Performance validation of basic_router (1454-byte packets) ==@.@.";

  (* internal: NetDebug generator drives the full datapath *)
  let harness = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let points =
    Usecases.Performance.sweep ~packets_per_point:3000 harness ~probe
  in
  let t =
    Texttable.create
      [ "offered Gb/s"; "achieved Gb/s"; "Mpps"; "p50 lat ns"; "p99 lat ns"; "rx/tx" ]
  in
  List.iter
    (fun p ->
      Texttable.add_row t
        [
          Printf.sprintf "%.1f" p.Usecases.Performance.pt_offered_gbps;
          Printf.sprintf "%.2f" p.Usecases.Performance.pt_achieved_gbps;
          Printf.sprintf "%.3f" p.Usecases.Performance.pt_achieved_mpps;
          Printf.sprintf "%.0f" p.Usecases.Performance.pt_lat_p50_ns;
          Printf.sprintf "%.0f" p.Usecases.Performance.pt_lat_p99_ns;
          Printf.sprintf "%d/%d" p.Usecases.Performance.pt_received
            p.Usecases.Performance.pt_sent;
        ])
    points;
  Format.printf "NetDebug internal generator (datapath line rate %.1f Gb/s):@.%s@."
    (Target.Config.line_rate_gbps (Target.Device.config harness.Harness.device))
    (Texttable.render t);

  (* external: an OSNT tester on one 12.8G interface *)
  let report = Sdnet.Compile.compile_exn ~quirks:Quirks.none
      Programs.basic_router.Programs.program in
  let device = Target.Device.create report.Sdnet.Compile.pipeline in
  (match
     P4ir.Runtime.install_all Programs.basic_router.Programs.program
       (Target.Device.runtime device) Programs.basic_router.Programs.entries
   with
  | Ok () -> ()
  | Error e -> failwith e);
  let tester = Osnt.Tester.attach device in
  let t2 =
    Texttable.create [ "offered Gb/s"; "clamped Gb/s"; "achieved Gb/s"; "rx/tx" ]
  in
  List.iter
    (fun offered ->
      let perf = Osnt.Tester.load_test tester ~port:0 ~packets:3000 ~offered_gbps:offered probe in
      Texttable.add_row t2
        [
          Printf.sprintf "%.1f" offered;
          Printf.sprintf "%.1f" perf.Osnt.Tester.p_offered_gbps;
          Printf.sprintf "%.2f" perf.Osnt.Tester.p_achieved_gbps;
          Printf.sprintf "%d/%d" perf.Osnt.Tester.p_received perf.Osnt.Tester.p_sent;
        ])
    [ 5.0; 12.8; 25.0; 51.2 ];
  Format.printf "@.External tester (clamped to the %.1f Gb/s interface):@.%s@."
    (Osnt.Tester.port_rate_gbps tester)
    (Texttable.render t2);
  Format.printf
    "@.Note the asymmetry: the internal generator can exercise the pipeline at \
     full datapath rate; an external tester is bounded by the port it is plugged \
     into — one of Figure 2's 'partial' entries.@."
