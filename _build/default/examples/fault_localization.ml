(* Fault localization: find where inside the data plane packets die.

   Injects a hardware fault into each pipeline stage in turn (plus one
   broken output interface) and runs NetDebug's localization: probe burst,
   per-stage counter diff over the management channel, verdict. An
   external tester sees only silence in every case.

     dune exec examples/fault_localization.exe
*)

module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Device = Target.Device
module Fault = Target.Fault
module Harness = Netdebug.Harness
module Localize = Netdebug.Localize
module Texttable = Stats.Texttable

let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000005L ())

let run_scenario name configure =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  configure h;
  let verdict, evidence = Localize.locate h ~probe in
  (* what would the external tester say? *)
  let tester_view =
    let t = Osnt.Tester.attach h.Harness.device in
    match Osnt.Tester.send_and_observe t ~port:0 probe with
    | [] -> "silence"
    | outs -> Printf.sprintf "%d packet(s)" (List.length outs)
  in
  (name, Localize.verdict_to_string verdict, evidence, tester_view)

let () =
  Format.printf "== Fault localization inside the data plane ==@.@.";
  let scenarios =
    [
      run_scenario "no fault" (fun _ -> ());
      run_scenario "fault in parser" (fun h ->
          Device.inject_fault h.Harness.device ~stage:"parser" Fault.Drop_at_stage);
      run_scenario "fault in ma:ipv4_lpm" (fun h ->
          Device.inject_fault h.Harness.device ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage);
      run_scenario "fault in egress" (fun h ->
          Device.inject_fault h.Harness.device ~stage:"egress" Fault.Drop_at_stage);
      run_scenario "fault in deparser" (fun h ->
          Device.inject_fault h.Harness.device ~stage:"deparser" Fault.Drop_at_stage);
      run_scenario "lookup memory stuck (ma:ipv4_lpm)" (fun h ->
          Device.inject_fault h.Harness.device ~stage:"ma:ipv4_lpm" Fault.Stuck_miss);
      run_scenario "broken output interface 1" (fun h ->
          Device.set_port_broken h.Harness.device 1 true);
    ]
  in
  let t = Texttable.create [ "scenario"; "NetDebug verdict"; "external tester sees" ] in
  List.iter
    (fun (name, verdict, _, tester) -> Texttable.add_row t [ name; verdict; tester ])
    scenarios;
  Format.printf "%s@." (Texttable.render t);

  (* show the evidence for one interesting case *)
  (match List.nth_opt scenarios 2 with
  | Some (name, _, evidence, _) ->
      Format.printf "evidence for '%s' (per-stage counter deltas for a 16-probe burst):@."
        name;
      List.iter
        (fun (stage, delta) -> Format.printf "  %-16s %Ld@." stage delta)
        evidence.Localize.e_deltas;
      Format.printf "  %-16s %d@." "check point" evidence.Localize.e_emitted;
      Format.printf "  %-16s %d@." "on the wire" evidence.Localize.e_external
  | None -> ());
  Format.printf
    "@.Every faulty scenario looks identical from outside (silence); the internal \
     taps pinpoint the stage.@."
