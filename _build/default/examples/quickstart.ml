(* Quickstart: validate an IPv4 router end to end.

   Deploys the [basic_router] program on the simulated NetFPGA-class
   target through the SDNet-style toolchain, attaches NetDebug, runs the
   Figure-1 architecture self-check and then a functional validation of
   the whole data plane against the P4 specification.

     dune exec examples/quickstart.exe
*)

module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Harness = Netdebug.Harness
module Usecases = Netdebug.Usecases
module Controller = Netdebug.Controller

let () =
  Format.printf "== NetDebug quickstart ==@.@.";

  (* 1. deploy: compile the P4 program and wire up generator/checker *)
  let harness = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  Format.printf "deployed '%s' on %a@."
    Programs.basic_router.Programs.program.P4ir.Ast.p_name Target.Config.pp
    (Target.Device.config harness.Harness.device);
  Format.printf "%a@.@." Sdnet.Compile.pp_report harness.Harness.compile_report;

  (* 2. architecture self-check (Figure 1) *)
  (match Harness.self_check harness with
  | Ok facts ->
      Format.printf "architecture self-check:@.";
      List.iter (fun f -> Format.printf "  [ok] %s@." f) facts
  | Error e -> failwith e);

  (* 3. one manual test: inject a packet for 10.1.0.5 and require port 2
     with a decremented TTL *)
  let ctl = harness.Harness.controller in
  let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A010005L ~ttl:64L ()) in
  let rules =
    [
      Controller.expect_port 2;
      Controller.expect ~name:"ttl decremented"
        P4ir.Dsl.(fld "ipv4" "ttl" ==: const ~width:8 63);
    ]
  in
  let ok = function Ok v -> v | Error e -> failwith e in
  ok (Controller.clear_test_state ctl);
  ok (Controller.configure_checker ctl rules);
  ok (Controller.configure_generator ctl [ Controller.stream probe ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  Format.printf "@.manual probe: %d packet(s) at the check point@."
    summary.Netdebug.Wire.cs_total_seen;
  List.iter
    (fun rs ->
      Format.printf "  rule %-16s matched=%d passed=%d failed=%d@."
        rs.Netdebug.Wire.rs_name rs.Netdebug.Wire.rs_matched rs.Netdebug.Wire.rs_passed
        rs.Netdebug.Wire.rs_failed)
    summary.Netdebug.Wire.cs_rules;

  (* 4. full functional validation: path-coverage vectors + fuzz *)
  let report = Usecases.Functional.run ~fuzz:32 harness in
  Format.printf "@.%a@." Usecases.Functional.pp report;
  if Usecases.Functional.passed report then
    Format.printf "@.VERDICT: data plane matches its specification.@."
  else begin
    Format.printf "@.VERDICT: divergences found!@.";
    exit 1
  end
