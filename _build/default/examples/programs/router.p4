// An IPv4 LPM router in the P4-flavoured concrete syntax.
// Semantically equivalent to the library's basic_router bundle
// (the test suite checks that, packet for packet).

header eth {
  bit<48> dst;
  bit<48> src;
  bit<16> ethertype;
}

header ipv4 {
  bit<4>  version;
  bit<4>  ihl;
  bit<6>  dscp;
  bit<2>  ecn;
  bit<16> total_len;
  bit<16> ident;
  bit<3>  flags;
  bit<13> frag_offset;
  bit<8>  ttl;
  bit<8>  protocol;
  bit<16> checksum;
  bit<32> src;
  bit<32> dst;
}

counter ipv4_routed;
counter ipv4_miss;
counter ttl_expired;

checksum { verify_ipv4; update_ipv4; }

parser {
  state start {
    extract(eth);
    transition select (eth.ethertype) {
      0x0800: parse_ipv4;
      default: reject;
    }
  }
  state parse_ipv4 {
    extract(ipv4);
    transition select (ipv4.version) {
      4w4: accept;
      default: reject;
    }
  }
}

action set_nexthop(bit<9> out_port, bit<48> dmac) {
  assert(ipv4.ttl > 0, "ttl positive before decrement");
  standard_metadata.egress_spec = out_port;
  eth.src = eth.dst;
  eth.dst = dmac;
  ipv4.ttl = ipv4.ttl - 1;
  count(ipv4_routed);
}

action drop_packet() {
  mark_to_drop();
  count(ipv4_miss);
}

table ipv4_lpm {
  key = { ipv4.dst : lpm; }
  actions = { set_nexthop; drop_packet; }
  default_action = drop_packet();
  size = 1024;
}

control ingress {
  if (ipv4.isValid()) {
    if (ipv4.ttl <= 1) {
      mark_to_drop();
      count(ttl_expired);
    } else {
      apply(ipv4_lpm);
    }
  } else {
    mark_to_drop();
  }
}

control egress { }

deparser {
  emit(eth);
  emit(ipv4);
}

entries {
  ipv4_lpm {
    10.0.0.0/8     -> set_nexthop(9w1, 48w0x0A0000000001);
    10.1.0.0/16    -> set_nexthop(9w2, 48w0x0A0000000002);
    192.168.0.0/16 -> set_nexthop(9w3, 48w0x0A0000000003);
  }
}
