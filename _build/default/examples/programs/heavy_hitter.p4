// Heavy-hitter detection in the data plane (textual-only program).
//
// Counts packets per source bucket (low 8 bits of the IPv4 source) in a
// register array; once a bucket exceeds the policy threshold, traffic is
// marked with the EF DSCP (46) before being routed, so downstream devices
// can police it. Exercises registers, slices, a parameterized policy
// table, and checksum update after header rewriting.

header eth {
  bit<48> dst;
  bit<48> src;
  bit<16> ethertype;
}

header ipv4 {
  bit<4>  version;
  bit<4>  ihl;
  bit<6>  dscp;
  bit<2>  ecn;
  bit<16> total_len;
  bit<16> ident;
  bit<3>  flags;
  bit<13> frag_offset;
  bit<8>  ttl;
  bit<8>  protocol;
  bit<16> checksum;
  bit<32> src;
  bit<32> dst;
}

struct metadata {
  bit<32> pkt_count;
  bit<32> threshold;
}

register<bit<32>>(256) src_counts;

counter flagged;
counter routed;

checksum { verify_ipv4; update_ipv4; }

parser {
  state start {
    extract(eth);
    transition select (eth.ethertype) {
      0x800: parse_ipv4;
      default: reject;
    }
  }
  state parse_ipv4 {
    extract(ipv4);
    transition select (ipv4.version) {
      4w4: accept;
      default: reject;
    }
  }
}

action set_threshold(bit<32> packets) {
  meta.threshold = packets;
}

action set_nexthop(bit<9> out_port, bit<48> dmac) {
  standard_metadata.egress_spec = out_port;
  eth.src = eth.dst;
  eth.dst = dmac;
  ipv4.ttl = ipv4.ttl - 1;
  count(routed);
}

action drop_packet() {
  mark_to_drop();
}

table hh_policy {
  key = { standard_metadata.ingress_port : exact; }
  actions = { set_threshold; }
  default_action = set_threshold(32w5);
  size = 64;
}

table ipv4_lpm {
  key = { ipv4.dst : lpm; }
  actions = { set_nexthop; drop_packet; }
  default_action = drop_packet();
  size = 1024;
}

control ingress {
  if (ipv4.isValid()) {
    if (ipv4.ttl <= 1) {
      mark_to_drop();
    } else {
      apply(hh_policy);
      src_counts.read(meta.pkt_count, ipv4.src[7:0]);
      meta.pkt_count = meta.pkt_count + 1;
      src_counts.write(ipv4.src[7:0], meta.pkt_count);
      if (meta.pkt_count > meta.threshold) {
        ipv4.dscp = 46;            // mark as a heavy hitter (EF)
        count(flagged);
      }
      apply(ipv4_lpm);
    }
  } else {
    mark_to_drop();
  }
}

control egress { }

deparser {
  emit(eth);
  emit(ipv4);
}

entries {
  hh_policy {
    9w2 -> set_threshold(32w2);    // port 2 is on a stricter budget
  }
  ipv4_lpm {
    10.0.0.0/8 -> set_nexthop(9w1, 48w0x0A0000000001);
  }
}
