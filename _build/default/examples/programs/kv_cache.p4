// NetCache-style in-network key-value cache, textual version.
// GET (op=1) reads store[key & 0xff]; PUT (op=2) installs a value.
// Replies are reflected to the requester.

header eth {
  bit<48> dst;
  bit<48> src;
  bit<16> ethertype;
}

header kvh {
  bit<8>  op;
  bit<16> key;
  bit<32> value;
  bit<8>  status;
}

struct metadata {
  bit<1>  hit;
  bit<48> tmp_mac;
}

register<bit<32>>(256) kv_store;
register<bit<1>>(256)  kv_present;

counter cache_hit;
counter cache_miss;
counter cache_put;

parser {
  state start {
    extract(eth);
    transition select (eth.ethertype) {
      0x1235: parse_kv;
      default: reject;
    }
  }
  state parse_kv {
    extract(kvh);
    transition accept;
  }
}

control ingress {
  if (kvh.op == 1) {
    kv_present.read(meta.hit, kvh.key[7:0]);
    if (meta.hit == 1) {
      kv_store.read(kvh.value, kvh.key[7:0]);
      kvh.status = 1;
      count(cache_hit);
    } else {
      kvh.status = 0;
      count(cache_miss);
    }
  } else if (kvh.op == 2) {
    kv_store.write(kvh.key[7:0], kvh.value);
    kv_present.write(kvh.key[7:0], 1w1);
    kvh.status = 1;
    count(cache_put);
  } else {
    kvh.status = 0xFF;
  }
  meta.tmp_mac = eth.dst;
  eth.dst = eth.src;
  eth.src = meta.tmp_mac;
  standard_metadata.egress_spec = standard_metadata.ingress_port;
}

control egress { }

deparser {
  emit(eth);
  emit(kvh);
}
