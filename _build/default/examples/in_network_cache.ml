(* Validating an in-network compute service: a NetCache-style key-value
   cache running entirely in the data plane.

   This is the workload class that motivates the paper ("applications and
   services traditionally running on servers are executed on network
   devices ... how can we be sure that they behave correctly?"). The cache
   keeps its store in stateful register arrays, so validation needs a
   stateful oracle — NetDebug threads one register store through the
   reference interpreter while driving the same traffic through the device,
   then audits the device's registers over the management channel.

     dune exec examples/in_network_cache.exe
*)

module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Harness = Netdebug.Harness
module Controller = Netdebug.Controller
module Usecases = Netdebug.Usecases
module Wire = Netdebug.Wire
module Bitstring = Bitutil.Bitstring

let ok = function Ok v -> v | Error e -> failwith e

let kv_packet ~op ~key ~value =
  let w = Bitstring.Writer.create () in
  Bitstring.Writer.push_bits w
    (Packet.Eth.to_bits
       (Packet.Eth.make ~dst:0x020000000002L ~src:0x020000000001L ~ethertype:0x1235L ()));
  Bitstring.Writer.push_int64 w ~width:8 op;
  Bitstring.Writer.push_int64 w ~width:16 key;
  Bitstring.Writer.push_int64 w ~width:32 value;
  Bitstring.Writer.push_int64 w ~width:8 0L;
  Bitstring.Writer.contents w

let () =
  Format.printf "== Validating an in-network key-value cache ==@.@.";
  let harness = Harness.deploy ~quirks:Quirks.none Programs.kv_cache in
  let ctl = harness.Harness.controller in

  (* 1. drive a PUT/GET workload through the generator with a checker rule
     asserting every reply is well-formed and carries an OK status *)
  let workload =
    [
      kv_packet ~op:2L ~key:17L ~value:0xAAAAL (* PUT k=17 *);
      kv_packet ~op:2L ~key:99L ~value:0xBBBBL (* PUT k=99 *);
      kv_packet ~op:1L ~key:17L ~value:0L (* GET k=17 -> hit *);
      kv_packet ~op:1L ~key:99L ~value:0L (* GET k=99 -> hit *);
    ]
  in
  ok (Controller.clear_test_state ctl);
  ok
    (Controller.configure_checker ctl
       [
         Controller.expect ~name:"status-ok"
           P4ir.Dsl.(fld "kvh" "status" ==: const ~width:8 1);
       ]);
  List.iter
    (fun pkt ->
      ok (Controller.configure_generator ctl [ Controller.stream pkt ]);
      ok (Controller.start_generator ctl))
    workload;
  let summary = ok (Controller.read_checker ctl) in
  Format.printf "workload: %d packets through the cache@." summary.Wire.cs_total_seen;
  List.iter
    (fun rs ->
      Format.printf "  rule %-10s matched=%d passed=%d failed=%d@." rs.Wire.rs_name
        rs.Wire.rs_matched rs.Wire.rs_passed rs.Wire.rs_failed)
    summary.Wire.cs_rules;

  (* 2. audit the cache contents over the management channel *)
  let cells = ok (Controller.read_register ctl "kv_store") in
  Format.printf "@.kv_store register (non-zero cells):@.";
  List.iter (fun (idx, v) -> Format.printf "  [%3d] = 0x%Lx@." idx v) cells;
  let present = ok (Controller.read_register ctl "kv_present") in
  Format.printf "kv_present: %d key(s) installed@." (List.length present);

  (* 3. full stateful functional validation: path vectors + fuzz, with the
     oracle's registers threaded packet-by-packet *)
  let report = Usecases.Functional.run ~fuzz:24 ~stateful:true harness in
  Format.printf "@.%a@." Usecases.Functional.pp report;
  if Usecases.Functional.passed report then
    Format.printf "@.VERDICT: the in-network cache matches its specification.@."
  else begin
    Format.printf "@.VERDICT: divergences found!@.";
    exit 1
  end
