(* The paper's Section-4 case study, reproduced end to end.

   "Using NetDebug, we discovered that the reject parser state, an
   essential feature of P4 language, is not implemented by SDNet. This
   meant that any packet coming into the data plane was sent out to the
   next hop, even if it was supposed to be dropped. Our framework
   immediately detected this severe bug, that would not be noticed by
   applying software formal verification to the data plane program."

     dune exec examples/reject_bug.exe
*)

module Ast = P4ir.Ast
module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Quirks = Sdnet.Quirks
module Check = Symexec.Check
module Harness = Netdebug.Harness
module Controller = Netdebug.Controller
module Wire = Netdebug.Wire

let ok = function Ok v -> v | Error e -> failwith e

let garbage_packet =
  (* an EtherType nobody claims: the parser's select has no case for it,
     so the program says: reject *)
  Packet.serialize
    (Packet.make
       [ Packet.Eth (Packet.Eth.make ~ethertype:0xBEEFL ()) ]
       ~payload:(Packet.payload_of_string "should never leave the device")
       ())

let () =
  let bundle = Programs.parser_guard in
  let program = bundle.Programs.program in
  Format.printf "== Reproducing the SDNet 'reject' bug (paper Section 4) ==@.@.";
  Format.printf "program under test: %s — %s@.@." program.Ast.p_name
    bundle.Programs.description;

  (* Step 1: software formal verification of the P4 specification *)
  Format.printf "--- Step 1: software formal verification (p4v-style) ---@.";
  let rt = Runtime.create () in
  ok (Runtime.install_all program rt bundle.Programs.entries);
  let finding = Check.rejected_are_dropped program rt in
  Format.printf "  %a@." Check.pp_finding finding;
  let reachable = Check.reject_reachable program rt in
  Format.printf "  (%d reachable reject paths, each with a witness packet)@.@."
    (List.length reachable);

  (* Step 2: the same property, tested on the hardware with NetDebug *)
  Format.printf "--- Step 2: NetDebug against the shipped toolchain ---@.";
  Format.printf "  toolchain quirks: %a@." Quirks.pp Quirks.default;
  let harness = Harness.deploy ~quirks:Quirks.default bundle in
  let ctl = harness.Harness.controller in
  ok
    (Controller.configure_checker ctl
       [ Controller.expect ~name:"rejected-never-forwarded" (Ast.Const P4ir.Value.fls) ]);
  ok (Controller.configure_generator ctl [ Controller.stream ~count:8 garbage_packet ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  Format.printf "  injected 8 packets the parser must reject...@.";
  Format.printf "  packets observed at the check point: %d@." summary.Wire.cs_total_seen;
  (match summary.Wire.cs_captures with
  | cap :: _ ->
      Format.printf "  first offender left on port %d:@." cap.Wire.cap_port;
      Format.printf "%s@."
        (Bitutil.Hexdump.to_string (Bitutil.Bitstring.to_string cap.Wire.cap_bits))
  | [] -> ());
  if summary.Wire.cs_total_seen > 0 then
    Format.printf
      "  BUG DETECTED: 'reject' is not implemented — rejected packets are sent to \
       the next hop.@.@."
  else Format.printf "  no bug (unexpected!)@.@.";

  (* Step 3: the fixed toolchain passes the same test *)
  Format.printf "--- Step 3: same test, fixed compiler ---@.";
  let fixed = Harness.deploy ~quirks:Quirks.none bundle in
  let ctl2 = fixed.Harness.controller in
  ok
    (Controller.configure_checker ctl2
       [ Controller.expect ~name:"rejected-never-forwarded" (Ast.Const P4ir.Value.fls) ]);
  ok (Controller.configure_generator ctl2 [ Controller.stream ~count:8 garbage_packet ]);
  ok (Controller.start_generator ctl2);
  let summary2 = ok (Controller.read_checker ctl2) in
  Format.printf "  packets observed at the check point: %d — rejected packets die in \
                 the parser, as specified.@.@."
    summary2.Wire.cs_total_seen;

  Format.printf
    "Conclusion: the property 'rejected => dropped' HOLDS on the specification \
     (step 1) yet is violated by the compiled hardware (step 2). Only a tool with \
     visibility inside the device — NetDebug — can see the difference.@."
