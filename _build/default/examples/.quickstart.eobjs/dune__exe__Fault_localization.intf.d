examples/fault_localization.mli:
