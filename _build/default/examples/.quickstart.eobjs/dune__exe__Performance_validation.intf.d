examples/performance_validation.mli:
