examples/in_network_cache.mli:
