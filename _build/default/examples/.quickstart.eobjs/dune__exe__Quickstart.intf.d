examples/quickstart.mli:
