examples/quickstart.ml: Format List Netdebug P4ir Packet Sdnet Target
