examples/performance_validation.ml: Format List Netdebug Osnt P4ir Packet Printf Sdnet Stats Target
