examples/spec_comparison.mli:
