examples/reject_bug.ml: Bitutil Format List Netdebug P4ir Packet Sdnet Symexec
