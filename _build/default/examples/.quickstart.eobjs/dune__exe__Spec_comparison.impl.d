examples/spec_comparison.ml: Format List Netdebug P4ir Sdnet
