examples/reject_bug.mli:
