examples/in_network_cache.ml: Bitutil Format List Netdebug P4ir Packet Sdnet
