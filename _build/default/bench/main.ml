(* Benchmark/experiment driver.

     dune exec bench/main.exe                 — everything
     dune exec bench/main.exe -- figure2      — one experiment
     dune exec bench/main.exe -- --list       — list experiment names
     dune exec bench/main.exe -- --no-micro   — experiments only
*)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--list" args then begin
    List.iter (fun (name, _) -> print_endline name) Experiments.all;
    print_endline "micro"
  end
  else begin
    let wanted = List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args in
    let run_micro =
      (not (List.mem "--no-micro" args)) && (wanted = [] || List.mem "micro" wanted)
    in
    let selected =
      if wanted = [] then Experiments.all
      else List.filter (fun (name, _) -> List.mem name wanted) Experiments.all
    in
    Format.printf "NetDebug experiment reproduction (simulated NetFPGA-SUME / SDNet)@.";
    List.iter (fun (_, f) -> f ()) selected;
    if run_micro then Microbench.run ();
    Format.printf "@.done.@."
  end
