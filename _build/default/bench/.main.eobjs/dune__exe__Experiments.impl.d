bench/experiments.ml: Bitutil Format Fun Int64 List Netdebug Osnt P4ir Packet Printf Sdnet Stats String Symexec Target
