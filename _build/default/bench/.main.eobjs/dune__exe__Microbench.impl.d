bench/microbench.ml: Analyze Bechamel Benchmark Bitutil Format Hashtbl Instance List Measure Netdebug P4ir Packet Printf Sdnet Staged Stats String Symexec Target Test Time Toolkit
