bench/main.ml: Array Experiments Format List Microbench String Sys
