bench/main.mli:
