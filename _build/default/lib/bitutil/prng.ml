type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: the output mix applied to each advanced state. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits scaled to [0, 1) *)
  r /. 9007199254740992.0 *. x

let bits t ~width =
  assert (width >= 1 && width <= 64);
  if width = 64 then next_int64 t
  else Int64.logand (next_int64 t) (Int64.sub (Int64.shift_left 1L width) 1L)

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
