let ones_complement_sum data =
  let n = String.length data in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code data.[!i] lsl 8) lor Char.code data.[!i + 1]);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code data.[n - 1] lsl 8);
  (* fold carries *)
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  !sum

let checksum data = lnot (ones_complement_sum data) land 0xffff

let checksum_bits b = checksum (Bitstring.to_string b)

let valid data = ones_complement_sum data = 0xffff
