let printable c = if Char.code c >= 0x20 && Char.code c < 0x7f then c else '.'

let pp ppf s =
  let n = String.length s in
  let line = ref 0 in
  while !line * 16 < n do
    let off = !line * 16 in
    let len = min 16 (n - off) in
    Format.fprintf ppf "%04x  " off;
    for i = 0 to 15 do
      if i < len then Format.fprintf ppf "%02x " (Char.code s.[off + i])
      else Format.fprintf ppf "   ";
      if i = 7 then Format.fprintf ppf " "
    done;
    Format.fprintf ppf " |";
    for i = 0 to len - 1 do
      Format.fprintf ppf "%c" (printable s.[off + i])
    done;
    Format.fprintf ppf "|";
    if (!line + 1) * 16 < n then Format.fprintf ppf "@\n";
    incr line
  done

let to_string s = Format.asprintf "%a" pp s
