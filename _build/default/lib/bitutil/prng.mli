(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** Derive a statistically independent generator; also advances [t]. *)

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bits : t -> width:int -> int64
(** [bits t ~width] is uniform over [width]-bit values, [1 <= width <= 64]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
