(** Classic 16-bytes-per-line hex dump, for failure capture rendering. *)

val pp : Format.formatter -> string -> unit

val to_string : string -> string
