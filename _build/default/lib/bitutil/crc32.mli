(** CRC-32 (IEEE 802.3 polynomial), as used for Ethernet FCS. *)

val digest : string -> int32
(** CRC-32 of the whole string, standard init/xorout. *)

val digest_bits : Bitstring.t -> int32
