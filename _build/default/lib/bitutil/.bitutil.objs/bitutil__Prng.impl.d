lib/bitutil/prng.ml: Array Int64
