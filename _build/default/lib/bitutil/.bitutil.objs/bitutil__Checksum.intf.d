lib/bitutil/checksum.mli: Bitstring
