lib/bitutil/hexdump.mli: Format
