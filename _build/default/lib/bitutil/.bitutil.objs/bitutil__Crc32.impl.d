lib/bitutil/crc32.ml: Array Bitstring Char Int32 Lazy String
