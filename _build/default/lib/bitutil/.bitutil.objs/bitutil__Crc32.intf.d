lib/bitutil/crc32.mli: Bitstring
