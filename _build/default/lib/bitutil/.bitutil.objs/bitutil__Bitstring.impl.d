lib/bitutil/bitstring.ml: Array Buffer Bytes Char Format Int64 List Printf Prng Stdlib String
