lib/bitutil/checksum.ml: Bitstring Char String
