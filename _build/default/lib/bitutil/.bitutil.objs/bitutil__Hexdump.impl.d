lib/bitutil/hexdump.ml: Char Format String
