lib/bitutil/bitstring.mli: Format Prng
