lib/bitutil/prng.mli:
