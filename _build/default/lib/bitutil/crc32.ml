let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         c :=
           if Int32.logand !c 1l <> 0l then
             Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let digest s =
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl) in
      c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let digest_bits b = digest (Bitstring.to_string b)
