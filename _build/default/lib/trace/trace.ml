type severity = Debug | Info | Warn | Error

type event = {
  time_ns : float;
  component : string;
  severity : severity;
  message : string;
  packet_id : int option;
}

type t = {
  capacity : int;
  buf : event option array;
  mutable next : int;  (* next write slot *)
  mutable total : int; (* events ever recorded *)
}

let create ?(capacity = 65536) () =
  { capacity; buf = Array.make capacity None; next = 0; total = 0 }

let record t ?packet_id ?(severity = Info) ~time_ns ~component message =
  t.buf.(t.next) <- Some { time_ns; component; severity; message; packet_id };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let events t =
  let n = min t.total t.capacity in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let events_for_packet t id =
  List.filter (fun e -> e.packet_id = Some id) (events t)

let by_component t c = List.filter (fun e -> String.equal e.component c) (events t)

let count t = min t.total t.capacity

let dropped t = max 0 (t.total - t.capacity)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let severity_to_string = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

let pp_event ppf e =
  let pid = match e.packet_id with None -> "" | Some i -> Printf.sprintf " pkt=%d" i in
  Format.fprintf ppf "[%10.1fns] %-5s %-24s%s %s" e.time_ns
    (severity_to_string e.severity)
    e.component pid e.message

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event ppf (events t)
