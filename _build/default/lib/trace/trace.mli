(** Bounded in-simulator event trace.

    Every component of the device model (parser engine, match-action stages,
    queues, NetDebug generator/checker) logs events here, tagged with the
    component name and the virtual timestamp. NetDebug's fault localization
    reads per-packet event sequences back from the trace. *)

type severity = Debug | Info | Warn | Error

type event = {
  time_ns : float;  (** virtual time of the event *)
  component : string;  (** e.g. "stage[2]:ipv4_lpm" *)
  severity : severity;
  message : string;
  packet_id : int option;  (** correlates events of one packet's traversal *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer; oldest events are dropped past [capacity] (default 65536). *)

val record :
  t -> ?packet_id:int -> ?severity:severity -> time_ns:float -> component:string -> string -> unit

val events : t -> event list
(** Oldest first. *)

val events_for_packet : t -> int -> event list

val by_component : t -> string -> event list

val count : t -> int

val dropped : t -> int
(** Number of events evicted due to the capacity bound. *)

val clear : t -> unit

val severity_to_string : severity -> string

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
