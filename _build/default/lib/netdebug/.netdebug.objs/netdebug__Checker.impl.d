lib/netdebug/checker.ml: Bitutil List P4ir Stats Target Wire
