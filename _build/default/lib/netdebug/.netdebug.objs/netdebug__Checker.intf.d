lib/netdebug/checker.mli: P4ir Stats Target Wire
