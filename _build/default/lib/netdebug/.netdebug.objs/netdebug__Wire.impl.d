lib/netdebug/wire.ml: Bitutil Buffer Char Int64 List P4ir Printf String
