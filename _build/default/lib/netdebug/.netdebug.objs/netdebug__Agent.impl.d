lib/netdebug/agent.ml: Array Channel Checker Generator List P4ir Stats String Target Wire
