lib/netdebug/localize.mli: Bitutil Harness
