lib/netdebug/controller.mli: Bitutil Channel P4ir Wire
