lib/netdebug/harness.mli: Agent Bitutil Controller P4ir Sdnet Target
