lib/netdebug/channel.mli:
