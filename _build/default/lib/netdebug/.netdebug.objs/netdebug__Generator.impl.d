lib/netdebug/generator.ml: Bitutil Int64 List P4ir String Target Wire
