lib/netdebug/channel.ml: Queue String
