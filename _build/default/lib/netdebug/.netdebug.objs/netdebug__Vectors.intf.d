lib/netdebug/vectors.mli: Bitutil P4ir
