lib/netdebug/usecases.mli: Bitutil Format Harness P4ir Sdnet Target Wire
