lib/netdebug/harness.ml: Agent Bitutil Channel Controller List P4ir Packet Printf Result Sdnet Stats Target Wire
