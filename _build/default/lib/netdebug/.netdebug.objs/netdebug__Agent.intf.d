lib/netdebug/agent.mli: Channel Checker Generator P4ir Target
