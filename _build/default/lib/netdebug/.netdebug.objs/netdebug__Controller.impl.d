lib/netdebug/controller.ml: Channel P4ir Printf Wire
