lib/netdebug/wire.mli: Bitutil Buffer P4ir
