lib/netdebug/vectors.ml: Bitutil Hashtbl Int64 List Packet Symexec
