lib/netdebug/localize.ml: Controller Harness Int64 List P4ir Printf Target Wire
