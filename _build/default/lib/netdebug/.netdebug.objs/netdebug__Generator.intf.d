lib/netdebug/generator.mli: P4ir Target Wire
