lib/netdebug/usecases.ml: Bitutil Controller Format Harness List P4ir Packet Printf Sdnet String Target Vectors Wire
