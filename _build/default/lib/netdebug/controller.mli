(** The host-side software tool of Figure 1.

    Talks to the in-device agent exclusively through the serialized
    management protocol. The [pump] callback runs the device side between
    request and reply (the simulator is single-threaded); in a real
    deployment it would be the PCIe/JTAG transport doing the work. *)

type t

val create : pump:(unit -> unit) -> Channel.endpoint -> t

val rpc : t -> Wire.host_msg -> (Wire.dev_msg, string) result

(* Typed conveniences over rpc; each fails on protocol errors. *)

val configure_generator : t -> Wire.stream list -> (unit, string) result
val configure_checker : t -> Wire.rule list -> (unit, string) result
val start_generator : t -> (unit, string) result
val read_checker : t -> (Wire.checker_summary, string) result
val read_status : t -> (Wire.status_summary, string) result
val read_stage_counters : t -> ((string * int64) list, string) result

(** [read_register t name] returns the non-zero cells of a device register
    array as (index, value) pairs. *)
val read_register : t -> string -> ((int * int64) list, string) result

val clear_test_state : t -> (unit, string) result

val stream :
  ?count:int ->
  ?interval_ns:float ->
  ?mutations:Wire.mutation list ->
  Bitutil.Bitstring.t ->
  Wire.stream
(** Stream constructor: defaults to one packet, 1000 ns spacing. *)

val expect_port : ?name:string -> ?filter:P4ir.Ast.expr -> int -> Wire.rule
(** Rule asserting the observed egress port. *)

val expect : ?filter:P4ir.Ast.expr -> name:string -> P4ir.Ast.expr -> Wire.rule

val mgmt_bytes : t -> int
(** Bytes this controller has pushed down the management channel. *)
