(** The device-side endpoint of the management channel: owns the generator
    and checker inside the target and executes the host tool's commands. *)

type t

val create :
  program:P4ir.Ast.program -> device:Target.Device.t -> Channel.endpoint -> t

val generator : t -> Generator.t
val checker : t -> Checker.t

val process : t -> unit
(** Drain and execute every pending host message, sending replies. *)
