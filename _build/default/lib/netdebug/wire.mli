(** Serialization of the management protocol.

    Everything the host tool exchanges with the in-device test
    infrastructure crosses the {!Channel} as bytes in this format — the
    configs are genuinely marshalled and unmarshalled, round-trip tested,
    so the "software tool on a host computer" of Figure 1 is a real
    protocol boundary, not a function call. *)

type mutation =
  | Set_field of string * string * int64  (** header, field, value *)
  | Sweep_field of string * string * int64 * int64  (** start, step (per packet) *)
  | Random_field of string * string * int  (** PRNG seed *)

type stream = {
  s_template : Bitutil.Bitstring.t;
  s_count : int;
  s_interval_ns : float;
  s_mutations : mutation list;
}

(** A checker rule: for output packets satisfying [r_filter] (all packets
    when [None]), the expression [r_expect] must evaluate true. Both are P4
    expressions over the test program's headers; the observed output port
    is exposed as [standard_metadata.egress_spec]. *)
type rule = {
  r_name : string;
  r_filter : P4ir.Ast.expr option;
  r_expect : P4ir.Ast.expr;
}

type rule_stats = { rs_name : string; rs_matched : int; rs_passed : int; rs_failed : int }

type capture = {
  cap_rule : string;
  cap_port : int;
  cap_time_ns : float;
  cap_bits : Bitutil.Bitstring.t;
}

type checker_summary = {
  cs_total_seen : int;
  cs_rules : rule_stats list;
  cs_captures : capture list;  (** bounded ring of failing packets *)
  cs_pps : float;  (** packets/s observed at the check point *)
  cs_gbps : float;
  cs_lat_mean_ns : float;
  cs_lat_p50_ns : float;
  cs_lat_p99_ns : float;
}

type status_summary = {
  ss_time_ns : float;
  ss_packets_in : int64;
  ss_packets_out : int64;
  ss_queue_drops : int64;
  ss_pipeline_drops : int64;
  ss_queue_depth : int;
}

type host_msg =
  | Configure_generator of stream list
  | Configure_checker of rule list
  | Start_generator
  | Read_checker
  | Read_status
  | Read_stage_counters
  | Read_register of string
      (** dump a register array's non-zero cells (status monitoring of
          stateful programs) *)
  | Clear_test_state

type dev_msg =
  | Ack
  | Error_msg of string
  | Checker_report of checker_summary
  | Status_report of status_summary
  | Stage_counters of (string * int64) list
  | Register_dump of (int * int64) list  (** sparse: non-zero cells only *)

val encode_host : host_msg -> string
val decode_host : string -> (host_msg, string) result
val encode_dev : dev_msg -> string
val decode_dev : string -> (dev_msg, string) result

(* Exposed for tests *)
val encode_expr : Buffer.t -> P4ir.Ast.expr -> unit
val decode_expr : string -> int ref -> P4ir.Ast.expr
