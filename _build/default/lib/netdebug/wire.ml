module Ast = P4ir.Ast
module Value = P4ir.Value
module Bitstring = Bitutil.Bitstring

type mutation =
  | Set_field of string * string * int64
  | Sweep_field of string * string * int64 * int64
  | Random_field of string * string * int

type stream = {
  s_template : Bitstring.t;
  s_count : int;
  s_interval_ns : float;
  s_mutations : mutation list;
}

type rule = { r_name : string; r_filter : Ast.expr option; r_expect : Ast.expr }

type rule_stats = { rs_name : string; rs_matched : int; rs_passed : int; rs_failed : int }

type capture = {
  cap_rule : string;
  cap_port : int;
  cap_time_ns : float;
  cap_bits : Bitstring.t;
}

type checker_summary = {
  cs_total_seen : int;
  cs_rules : rule_stats list;
  cs_captures : capture list;
  cs_pps : float;
  cs_gbps : float;
  cs_lat_mean_ns : float;
  cs_lat_p50_ns : float;
  cs_lat_p99_ns : float;
}

type status_summary = {
  ss_time_ns : float;
  ss_packets_in : int64;
  ss_packets_out : int64;
  ss_queue_drops : int64;
  ss_pipeline_drops : int64;
  ss_queue_depth : int;
}

type host_msg =
  | Configure_generator of stream list
  | Configure_checker of rule list
  | Start_generator
  | Read_checker
  | Read_status
  | Read_stage_counters
  | Read_register of string
  | Clear_test_state

type dev_msg =
  | Ack
  | Error_msg of string
  | Checker_report of checker_summary
  | Status_report of status_summary
  | Stage_counters of (string * int64) list
  | Register_dump of (int * int64) list  (* sparse: non-zero cells only *)

exception Decode_error of string

(* ---------------- primitive codecs ---------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u64 b (v : int64) =
  for i = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let put_f64 b v = put_u64 b (Int64.bits_of_float v)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bits b bits =
  put_u32 b (Bitstring.length bits);
  Buffer.add_string b (Bitstring.to_string bits)

let need s pos n =
  if !pos + n > String.length s then raise (Decode_error "truncated message")

let get_u8 s pos =
  need s pos 1;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_u32 s pos =
  let a = get_u8 s pos in
  let b = get_u8 s pos in
  let c = get_u8 s pos in
  let d = get_u8 s pos in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let get_u64 s pos =
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 s pos))
  done;
  !v

let get_f64 s pos = Int64.float_of_bits (get_u64 s pos)

let get_string s pos =
  let n = get_u32 s pos in
  need s pos n;
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let get_bits s pos =
  let nbits = get_u32 s pos in
  let nbytes = (nbits + 7) / 8 in
  need s pos nbytes;
  let raw = String.sub s !pos nbytes in
  pos := !pos + nbytes;
  Bitstring.sub (Bitstring.of_string raw) ~off:0 ~len:nbits

let put_list b put items =
  put_u32 b (List.length items);
  List.iter (put b) items

let get_list s pos get =
  let n = get_u32 s pos in
  List.init n (fun _ -> get s pos)

(* ---------------- value / expr codecs ---------------- *)

let put_value b v =
  put_u8 b (Value.width v);
  put_u64 b (Value.to_int64 v)

let get_value s pos =
  let w = get_u8 s pos in
  let v = get_u64 s pos in
  Value.make ~width:w v

let binop_tag (op : Ast.binop) =
  match op with
  | Ast.Add -> 0
  | Ast.Sub -> 1
  | Ast.Mul -> 2
  | Ast.BAnd -> 3
  | Ast.BOr -> 4
  | Ast.BXor -> 5
  | Ast.Shl -> 6
  | Ast.Shr -> 7
  | Ast.Eq -> 8
  | Ast.Neq -> 9
  | Ast.Lt -> 10
  | Ast.Le -> 11
  | Ast.Gt -> 12
  | Ast.Ge -> 13
  | Ast.LAnd -> 14
  | Ast.LOr -> 15

let binop_of_tag = function
  | 0 -> Ast.Add
  | 1 -> Ast.Sub
  | 2 -> Ast.Mul
  | 3 -> Ast.BAnd
  | 4 -> Ast.BOr
  | 5 -> Ast.BXor
  | 6 -> Ast.Shl
  | 7 -> Ast.Shr
  | 8 -> Ast.Eq
  | 9 -> Ast.Neq
  | 10 -> Ast.Lt
  | 11 -> Ast.Le
  | 12 -> Ast.Gt
  | 13 -> Ast.Ge
  | 14 -> Ast.LAnd
  | 15 -> Ast.LOr
  | t -> raise (Decode_error (Printf.sprintf "bad binop tag %d" t))

let std_tag = function
  | Ast.Ingress_port -> 0
  | Ast.Egress_spec -> 1
  | Ast.Packet_length -> 2
  | Ast.Parser_error -> 3

let std_of_tag = function
  | 0 -> Ast.Ingress_port
  | 1 -> Ast.Egress_spec
  | 2 -> Ast.Packet_length
  | 3 -> Ast.Parser_error
  | t -> raise (Decode_error (Printf.sprintf "bad std tag %d" t))

let rec encode_expr b (e : Ast.expr) =
  match e with
  | Ast.Const v ->
      put_u8 b 0;
      put_value b v
  | Ast.Field (h, f) ->
      put_u8 b 1;
      put_string b h;
      put_string b f
  | Ast.Meta m ->
      put_u8 b 2;
      put_string b m
  | Ast.Std sf ->
      put_u8 b 3;
      put_u8 b (std_tag sf)
  | Ast.Param p ->
      put_u8 b 4;
      put_string b p
  | Ast.Bin (op, x, y) ->
      put_u8 b 5;
      put_u8 b (binop_tag op);
      encode_expr b x;
      encode_expr b y
  | Ast.Un (Ast.BNot, x) ->
      put_u8 b 6;
      encode_expr b x
  | Ast.Un (Ast.LNot, x) ->
      put_u8 b 7;
      encode_expr b x
  | Ast.Slice (x, msb, lsb) ->
      put_u8 b 8;
      put_u8 b msb;
      put_u8 b lsb;
      encode_expr b x
  | Ast.Concat (x, y) ->
      put_u8 b 9;
      encode_expr b x;
      encode_expr b y
  | Ast.Valid h ->
      put_u8 b 10;
      put_string b h

let rec decode_expr s pos : Ast.expr =
  match get_u8 s pos with
  | 0 -> Ast.Const (get_value s pos)
  | 1 ->
      let h = get_string s pos in
      let f = get_string s pos in
      Ast.Field (h, f)
  | 2 -> Ast.Meta (get_string s pos)
  | 3 -> Ast.Std (std_of_tag (get_u8 s pos))
  | 4 -> Ast.Param (get_string s pos)
  | 5 ->
      let op = binop_of_tag (get_u8 s pos) in
      let x = decode_expr s pos in
      let y = decode_expr s pos in
      Ast.Bin (op, x, y)
  | 6 -> Ast.Un (Ast.BNot, decode_expr s pos)
  | 7 -> Ast.Un (Ast.LNot, decode_expr s pos)
  | 8 ->
      let msb = get_u8 s pos in
      let lsb = get_u8 s pos in
      Ast.Slice (decode_expr s pos, msb, lsb)
  | 9 ->
      let x = decode_expr s pos in
      let y = decode_expr s pos in
      Ast.Concat (x, y)
  | 10 -> Ast.Valid (get_string s pos)
  | t -> raise (Decode_error (Printf.sprintf "bad expr tag %d" t))

(* ---------------- message bodies ---------------- *)

let put_mutation b = function
  | Set_field (h, f, v) ->
      put_u8 b 0;
      put_string b h;
      put_string b f;
      put_u64 b v
  | Sweep_field (h, f, start, step) ->
      put_u8 b 1;
      put_string b h;
      put_string b f;
      put_u64 b start;
      put_u64 b step
  | Random_field (h, f, seed) ->
      put_u8 b 2;
      put_string b h;
      put_string b f;
      put_u32 b seed

let get_mutation s pos =
  match get_u8 s pos with
  | 0 ->
      let h = get_string s pos in
      let f = get_string s pos in
      Set_field (h, f, get_u64 s pos)
  | 1 ->
      let h = get_string s pos in
      let f = get_string s pos in
      let start = get_u64 s pos in
      let step = get_u64 s pos in
      Sweep_field (h, f, start, step)
  | 2 ->
      let h = get_string s pos in
      let f = get_string s pos in
      Random_field (h, f, get_u32 s pos)
  | t -> raise (Decode_error (Printf.sprintf "bad mutation tag %d" t))

let put_stream b st =
  put_bits b st.s_template;
  put_u32 b st.s_count;
  put_f64 b st.s_interval_ns;
  put_list b put_mutation st.s_mutations

let get_stream s pos =
  let s_template = get_bits s pos in
  let s_count = get_u32 s pos in
  let s_interval_ns = get_f64 s pos in
  let s_mutations = get_list s pos get_mutation in
  { s_template; s_count; s_interval_ns; s_mutations }

let put_rule b r =
  put_string b r.r_name;
  (match r.r_filter with
  | None -> put_u8 b 0
  | Some e ->
      put_u8 b 1;
      encode_expr b e);
  encode_expr b r.r_expect

let get_rule s pos =
  let r_name = get_string s pos in
  let r_filter = match get_u8 s pos with 0 -> None | _ -> Some (decode_expr s pos) in
  let r_expect = decode_expr s pos in
  { r_name; r_filter; r_expect }

let put_rule_stats b rs =
  put_string b rs.rs_name;
  put_u32 b rs.rs_matched;
  put_u32 b rs.rs_passed;
  put_u32 b rs.rs_failed

let get_rule_stats s pos =
  let rs_name = get_string s pos in
  let rs_matched = get_u32 s pos in
  let rs_passed = get_u32 s pos in
  let rs_failed = get_u32 s pos in
  { rs_name; rs_matched; rs_passed; rs_failed }

let put_capture b c =
  put_string b c.cap_rule;
  put_u32 b c.cap_port;
  put_f64 b c.cap_time_ns;
  put_bits b c.cap_bits

let get_capture s pos =
  let cap_rule = get_string s pos in
  let cap_port = get_u32 s pos in
  let cap_time_ns = get_f64 s pos in
  let cap_bits = get_bits s pos in
  { cap_rule; cap_port; cap_time_ns; cap_bits }

(* ---------------- top-level messages ---------------- *)

let encode_host msg =
  let b = Buffer.create 64 in
  (match msg with
  | Configure_generator streams ->
      put_u8 b 0;
      put_list b put_stream streams
  | Configure_checker rules ->
      put_u8 b 1;
      put_list b put_rule rules
  | Start_generator -> put_u8 b 2
  | Read_checker -> put_u8 b 3
  | Read_status -> put_u8 b 4
  | Read_stage_counters -> put_u8 b 5
  | Read_register name ->
      put_u8 b 7;
      put_string b name
  | Clear_test_state -> put_u8 b 6);
  Buffer.contents b

let decode_host s =
  try
    let pos = ref 0 in
    let msg =
      match get_u8 s pos with
      | 0 -> Configure_generator (get_list s pos get_stream)
      | 1 -> Configure_checker (get_list s pos get_rule)
      | 2 -> Start_generator
      | 3 -> Read_checker
      | 4 -> Read_status
      | 5 -> Read_stage_counters
      | 6 -> Clear_test_state
      | 7 -> Read_register (get_string s pos)
      | t -> raise (Decode_error (Printf.sprintf "bad host tag %d" t))
    in
    if !pos <> String.length s then raise (Decode_error "trailing bytes");
    Ok msg
  with Decode_error e -> Error e

let encode_dev msg =
  let b = Buffer.create 64 in
  (match msg with
  | Ack -> put_u8 b 0
  | Error_msg e ->
      put_u8 b 1;
      put_string b e
  | Checker_report cs ->
      put_u8 b 2;
      put_u32 b cs.cs_total_seen;
      put_list b put_rule_stats cs.cs_rules;
      put_list b put_capture cs.cs_captures;
      put_f64 b cs.cs_pps;
      put_f64 b cs.cs_gbps;
      put_f64 b cs.cs_lat_mean_ns;
      put_f64 b cs.cs_lat_p50_ns;
      put_f64 b cs.cs_lat_p99_ns
  | Status_report ss ->
      put_u8 b 3;
      put_f64 b ss.ss_time_ns;
      put_u64 b ss.ss_packets_in;
      put_u64 b ss.ss_packets_out;
      put_u64 b ss.ss_queue_drops;
      put_u64 b ss.ss_pipeline_drops;
      put_u32 b ss.ss_queue_depth
  | Stage_counters cs ->
      put_u8 b 4;
      put_list b
        (fun b (name, v) ->
          put_string b name;
          put_u64 b v)
        cs
  | Register_dump cells ->
      put_u8 b 5;
      put_list b
        (fun b (idx, v) ->
          put_u32 b idx;
          put_u64 b v)
        cells);
  Buffer.contents b

let decode_dev s =
  try
    let pos = ref 0 in
    let msg =
      match get_u8 s pos with
      | 0 -> Ack
      | 1 -> Error_msg (get_string s pos)
      | 2 ->
          let cs_total_seen = get_u32 s pos in
          let cs_rules = get_list s pos get_rule_stats in
          let cs_captures = get_list s pos get_capture in
          let cs_pps = get_f64 s pos in
          let cs_gbps = get_f64 s pos in
          let cs_lat_mean_ns = get_f64 s pos in
          let cs_lat_p50_ns = get_f64 s pos in
          let cs_lat_p99_ns = get_f64 s pos in
          Checker_report
            { cs_total_seen; cs_rules; cs_captures; cs_pps; cs_gbps; cs_lat_mean_ns;
              cs_lat_p50_ns; cs_lat_p99_ns }
      | 3 ->
          let ss_time_ns = get_f64 s pos in
          let ss_packets_in = get_u64 s pos in
          let ss_packets_out = get_u64 s pos in
          let ss_queue_drops = get_u64 s pos in
          let ss_pipeline_drops = get_u64 s pos in
          let ss_queue_depth = get_u32 s pos in
          Status_report
            { ss_time_ns; ss_packets_in; ss_packets_out; ss_queue_drops;
              ss_pipeline_drops; ss_queue_depth }
      | 4 ->
          Stage_counters
            (get_list s pos (fun s pos ->
                 let name = get_string s pos in
                 let v = get_u64 s pos in
                 (name, v)))
      | 5 ->
          Register_dump
            (get_list s pos (fun s pos ->
                 let idx = get_u32 s pos in
                 let v = get_u64 s pos in
                 (idx, v)))
      | t -> raise (Decode_error (Printf.sprintf "bad dev tag %d" t))
    in
    if !pos <> String.length s then raise (Decode_error "trailing bytes");
    Ok msg
  with Decode_error e -> Error e
