type endpoint = {
  inbox : string Queue.t;
  peer_inbox : string Queue.t;
  mutable sent_bytes : int;
}

type t = endpoint * endpoint

let create () =
  let a_box = Queue.create () and b_box = Queue.create () in
  let a = { inbox = a_box; peer_inbox = b_box; sent_bytes = 0 } in
  let b = { inbox = b_box; peer_inbox = a_box; sent_bytes = 0 } in
  (a, b)

let send ep msg =
  ep.sent_bytes <- ep.sent_bytes + String.length msg;
  Queue.push msg ep.peer_inbox

let recv ep = if Queue.is_empty ep.inbox then None else Some (Queue.pop ep.inbox)

let pending ep = Queue.length ep.inbox

let bytes_sent ep = ep.sent_bytes
