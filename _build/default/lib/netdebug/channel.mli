(** The dedicated management interface between the host-side software tool
    and the in-device test infrastructure (the vertical link of Figure 1).

    A channel is a pair of byte-message queues. The controller and the
    device agent each hold one endpoint; everything that crosses is a
    serialized {!Wire} message, so the host tool could in principle run on
    a different machine. *)

type t

type endpoint

val create : unit -> endpoint * endpoint
(** (host side, device side). *)

val send : endpoint -> string -> unit

val recv : endpoint -> string option
(** Next pending message for this endpoint, FIFO. *)

val pending : endpoint -> int

val bytes_sent : endpoint -> int
(** Total payload bytes this endpoint has transmitted (management-channel
    load accounting). *)
