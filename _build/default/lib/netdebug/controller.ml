module Ast = P4ir.Ast

type t = { endpoint : Channel.endpoint; pump : unit -> unit }

let create ~pump endpoint = { endpoint; pump }

let rpc t msg =
  Channel.send t.endpoint (Wire.encode_host msg);
  t.pump ();
  match Channel.recv t.endpoint with
  | None -> Error "no reply from device agent"
  | Some raw -> (
      match Wire.decode_dev raw with
      | Ok (Wire.Error_msg e) -> Error ("device: " ^ e)
      | Ok m -> Ok m
      | Error e -> Error ("decode: " ^ e))

let expect_ack = function
  | Ok Wire.Ack -> Ok ()
  | Ok _ -> Error "unexpected reply (wanted Ack)"
  | Error _ as e -> e

let configure_generator t streams = expect_ack (rpc t (Wire.Configure_generator streams))

let configure_checker t rules = expect_ack (rpc t (Wire.Configure_checker rules))

let start_generator t = expect_ack (rpc t Wire.Start_generator)

let read_checker t =
  match rpc t Wire.Read_checker with
  | Ok (Wire.Checker_report cs) -> Ok cs
  | Ok _ -> Error "unexpected reply (wanted Checker_report)"
  | Error e -> Error e

let read_status t =
  match rpc t Wire.Read_status with
  | Ok (Wire.Status_report ss) -> Ok ss
  | Ok _ -> Error "unexpected reply (wanted Status_report)"
  | Error e -> Error e

let read_stage_counters t =
  match rpc t Wire.Read_stage_counters with
  | Ok (Wire.Stage_counters cs) -> Ok cs
  | Ok _ -> Error "unexpected reply (wanted Stage_counters)"
  | Error e -> Error e

let read_register t name =
  match rpc t (Wire.Read_register name) with
  | Ok (Wire.Register_dump cells) -> Ok cells
  | Ok _ -> Error "unexpected reply (wanted Register_dump)"
  | Error e -> Error e

let clear_test_state t = expect_ack (rpc t Wire.Clear_test_state)

let stream ?(count = 1) ?(interval_ns = 1000.0) ?(mutations = []) template =
  {
    Wire.s_template = template;
    s_count = count;
    s_interval_ns = interval_ns;
    s_mutations = mutations;
  }

let expect ?filter ~name e = { Wire.r_name = name; r_filter = filter; r_expect = e }

let expect_port ?name ?filter port =
  let name = match name with Some n -> n | None -> Printf.sprintf "egress=%d" port in
  expect ?filter ~name
    (Ast.Bin (Ast.Eq, Ast.Std Ast.Egress_spec, Ast.Const (P4ir.Value.of_int ~width:9 port)))

let mgmt_bytes t = Channel.bytes_sent t.endpoint
