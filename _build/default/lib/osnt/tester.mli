(** An OSNT-style external network tester.

    Attaches to the device's {e external ports only} — the defining
    limitation the paper's Figure 2 assigns to this class of tool. It can
    send on a port, capture what comes out of the ports, timestamp for
    latency, and rate-limit itself to the interface speed. It cannot:
    inject past the input interfaces, observe the check point, read stage
    counters or device status, or see packets addressed to broken or
    non-physical ports. Nothing in this module touches those APIs. *)

type t

val attach : Target.Device.t -> t

val port_rate_gbps : t -> float
(** The per-interface line rate that bounds everything this tester can
    offer (10 Gb/s on the SUME model). *)

val send_and_observe :
  t -> port:int -> Bitutil.Bitstring.t -> (int * Bitutil.Bitstring.t) list
(** Transmit one packet into [port]; return every packet subsequently
    observed on any external port (port, bits).
    @raise Invalid_argument for a non-physical port. *)

(** A functional test case from the external point of view. *)
type case = {
  c_name : string;
  c_port : int;
  c_packet : Bitutil.Bitstring.t;
  c_expect : (int * Bitutil.Bitstring.t) option;
      (** expected (port, bits); [None] = expect nothing to come out.
          Note the tester cannot distinguish "dropped in the parser" from
          "dropped in ingress" from "swallowed by a fault" — it only sees
          silence. *)
}

type case_result = { r_name : string; r_pass : bool; r_got : string }

val run_cases : t -> case list -> case_result list

type perf = {
  p_sent : int;
  p_received : int;
  p_offered_gbps : float;  (** after interface-rate clamping *)
  p_achieved_gbps : float;
  p_achieved_mpps : float;
  p_lat_p50_ns : float;
  p_lat_p99_ns : float;
}

val load_test :
  t -> port:int -> ?packets:int -> offered_gbps:float -> Bitutil.Bitstring.t -> perf
(** Offered load is clamped to {!port_rate_gbps}: an external tester
    cannot out-run the interface it is plugged into. *)
