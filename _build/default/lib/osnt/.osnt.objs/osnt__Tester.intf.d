lib/osnt/tester.mli: Bitutil Target
