lib/osnt/tester.ml: Bitutil List Printf Stats String Target
