module Device = Target.Device
module Config = Target.Config
module Bitstring = Bitutil.Bitstring

type t = { device : Device.t }

let attach device = { device }

let port_rate_gbps t = Config.port_rate_gbps (Device.config t.device)

let check_port t port =
  let ports = (Device.config t.device).Config.ports in
  if port < 0 || port >= ports then
    invalid_arg (Printf.sprintf "Osnt: no such interface %d (device has %d)" port ports)

let send_and_observe t ~port bits =
  check_port t port;
  (* discard anything already sitting in the capture buffers *)
  ignore (Device.outputs t.device);
  ignore (Device.inject t.device ~source:(Device.External port) bits);
  List.map (fun o -> (o.Device.o_port, o.Device.o_bits)) (Device.outputs t.device)

type case = {
  c_name : string;
  c_port : int;
  c_packet : Bitstring.t;
  c_expect : (int * Bitstring.t) option;
}

type case_result = { r_name : string; r_pass : bool; r_got : string }

let describe = function
  | [] -> "nothing observed"
  | outs ->
      String.concat "; "
        (List.map
           (fun (p, b) -> Printf.sprintf "port %d (%d bytes)" p (Bitstring.byte_length b))
           outs)

let run_cases t cases =
  List.map
    (fun case ->
      let got = send_and_observe t ~port:case.c_port case.c_packet in
      let pass =
        match (case.c_expect, got) with
        | None, [] -> true
        | Some (port, bits), [ (gp, gb) ] -> gp = port && Bitstring.equal bits gb
        | Some _, _ | None, _ -> false
      in
      { r_name = case.c_name; r_pass = pass; r_got = describe got })
    cases

type perf = {
  p_sent : int;
  p_received : int;
  p_offered_gbps : float;
  p_achieved_gbps : float;
  p_achieved_mpps : float;
  p_lat_p50_ns : float;
  p_lat_p99_ns : float;
}

let load_test t ~port ?(packets = 2000) ~offered_gbps bits =
  check_port t port;
  ignore (Device.outputs t.device);
  let offered = min offered_gbps (port_rate_gbps t) in
  let pkt_bits = float_of_int (Bitstring.byte_length bits * 8) in
  let interval_ns = pkt_bits /. offered in
  let base = Device.now_ns t.device in
  for i = 0 to packets - 1 do
    ignore
      (Device.inject t.device ~source:(Device.External port)
         ~at_ns:(base +. (float_of_int i *. interval_ns))
         bits)
  done;
  let outs = Device.outputs t.device in
  let lat = Stats.Histogram.create () in
  let rate = Stats.Rate.create () in
  List.iter
    (fun o ->
      (* the tester timestamps on the wire: TX queueing included *)
      Stats.Histogram.add lat (o.Device.o_wire_time_ns -. o.Device.o_in_time_ns);
      Stats.Rate.record rate ~now_ns:o.Device.o_wire_time_ns
        ~bytes:(Bitstring.byte_length o.Device.o_bits))
    outs;
  {
    p_sent = packets;
    p_received = List.length outs;
    p_offered_gbps = offered;
    p_achieved_gbps = Stats.Rate.gbps rate;
    p_achieved_mpps = Stats.Rate.packets_per_sec rate /. 1e6;
    p_lat_p50_ns = Stats.Histogram.percentile lat 50.0;
    p_lat_p99_ns = Stats.Histogram.percentile lat 99.0;
  }
