lib/stats/texttable.ml: Array Buffer Format List String
