lib/stats/histogram.ml: Array Format
