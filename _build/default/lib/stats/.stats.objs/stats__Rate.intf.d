lib/stats/rate.mli: Format
