lib/stats/rate.ml: Format
