lib/stats/counter.ml: Format Hashtbl Int64 List String
