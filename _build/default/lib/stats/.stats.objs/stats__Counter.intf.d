lib/stats/counter.mli: Format
