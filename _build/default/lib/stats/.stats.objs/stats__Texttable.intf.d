lib/stats/texttable.mli: Format
