(** Named monotonically increasing 64-bit counters, the basic telemetry
    primitive of the device model and the NetDebug checker. *)

type t

val create : string -> t
val name : t -> string
val incr : t -> unit
val add : t -> int64 -> unit
val get : t -> int64
val reset : t -> unit
val pp : Format.formatter -> t -> unit

module Set : sig
  (** A registry of counters addressed by name, e.g. the counter block of a
      pipeline stage. Reads of unknown counters return zero rather than
      failing, matching hardware counter-register semantics. *)

  type counter = t
  type t

  val create : unit -> t
  val find : t -> string -> counter
  (** Find or create. *)

  val get : t -> string -> int64
  val incr : t -> string -> unit
  val add : t -> string -> int64 -> unit
  val reset_all : t -> unit
  val to_alist : t -> (string * int64) list
  (** Sorted by name. *)

  val pp : Format.formatter -> t -> unit
end
