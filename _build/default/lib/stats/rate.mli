(** Rate computation over simulated-time observation windows.

    The device simulator advances a virtual clock in nanoseconds; a rate
    meter accumulates packet and byte counts against that clock and reports
    packets/s and bits/s. *)

type t

val create : unit -> t

val record : t -> now_ns:float -> bytes:int -> unit
(** Record one packet of [bytes] observed at virtual time [now_ns]. *)

val packets : t -> int

val bytes : t -> int

val duration_ns : t -> float
(** Time between first and last observation; 0 with <2 observations. *)

val packets_per_sec : t -> float

val bits_per_sec : t -> float

val gbps : t -> float

val clear : t -> unit

val pp : Format.formatter -> t -> unit
