type t = { name : string; mutable value : int64 }

let create name = { name; value = 0L }

let name t = t.name

let incr t = t.value <- Int64.add t.value 1L

let add t n = t.value <- Int64.add t.value n

let get t = t.value

let reset t = t.value <- 0L

let pp ppf t = Format.fprintf ppf "%s=%Ld" t.name t.value

module Set = struct
  type counter = t

  type nonrec t = (string, counter) Hashtbl.t

  let create () = Hashtbl.create 16

  let find set n =
    match Hashtbl.find_opt set n with
    | Some c -> c
    | None ->
        let c = { name = n; value = 0L } in
        Hashtbl.add set n c;
        c

  let get set n = match Hashtbl.find_opt set n with Some c -> c.value | None -> 0L

  let incr set n =
    let c = find set n in
    c.value <- Int64.add c.value 1L

  let add set n v =
    let c = find set n in
    c.value <- Int64.add c.value v

  let reset_all set = Hashtbl.iter (fun _ c -> c.value <- 0L) set

  let to_alist set =
    Hashtbl.fold (fun n c acc -> (n, c.value) :: acc) set []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf set =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
      (fun ppf (n, v) -> Format.fprintf ppf "%-32s %Ld" n v)
      ppf (to_alist set)
end
