(** Minimal aligned text-table renderer for experiment output.

    Every reproduced paper table/figure is printed through this module so
    the bench output is uniform and diff-friendly. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    are truncated. *)

val add_separator : t -> unit

val render : t -> string

val pp : Format.formatter -> t -> unit
