type t = {
  mutable packets : int;
  mutable bytes : int;
  mutable first_bytes : int;
  mutable first_ns : float;
  mutable last_ns : float;
}

let create () = { packets = 0; bytes = 0; first_bytes = 0; first_ns = nan; last_ns = nan }

let record t ~now_ns ~bytes =
  if t.packets = 0 then begin
    t.first_ns <- now_ns;
    t.first_bytes <- bytes
  end;
  t.last_ns <- now_ns;
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + bytes

let packets t = t.packets

let bytes t = t.bytes

let duration_ns t = if t.packets < 2 then 0. else t.last_ns -. t.first_ns

let packets_per_sec t =
  let d = duration_ns t in
  if d <= 0. then 0. else float_of_int (t.packets - 1) /. d *. 1e9

(* The first observation opens the measurement window, so its bytes are not
   part of what flowed *during* the window — mirroring how hardware rate
   registers count over (n-1) inter-arrival gaps. *)
let bits_per_sec t =
  let d = duration_ns t in
  if d <= 0. then 0. else float_of_int ((t.bytes - t.first_bytes) * 8) /. d *. 1e9

let gbps t = bits_per_sec t /. 1e9

let clear t =
  t.packets <- 0;
  t.bytes <- 0;
  t.first_bytes <- 0;
  t.first_ns <- nan;
  t.last_ns <- nan

let pp ppf t =
  Format.fprintf ppf "%d pkts, %.2f Mpps, %.2f Gb/s" t.packets
    (packets_per_sec t /. 1e6)
    (gbps t)
