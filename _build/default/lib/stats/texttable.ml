type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list }

let create headers = { headers; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let normalize ncols cells =
  let rec take n = function
    | _ when n = 0 -> []
    | [] -> List.init n (fun _ -> "")
    | c :: rest -> c :: take (n - 1) rest
  in
  take ncols cells

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev t.rows in
  let all_cells =
    t.headers
    :: List.filter_map (function Cells c -> Some (normalize ncols c) | Separator -> None) rows
  in
  let widths = Array.make ncols 0 in
  List.iter
    (fun cells ->
      List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells)
    all_cells;
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf (if i = 0 then "| " else " | ");
        Buffer.add_string buf (pad c widths.(i)))
      (normalize ncols cells);
    Buffer.add_string buf " |\n"
  in
  let emit_sep () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+" else "+");
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  emit_sep ();
  emit_cells t.headers;
  emit_sep ();
  List.iter (function Cells c -> emit_cells c | Separator -> emit_sep ()) rows;
  emit_sep ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
