type result = Forwarded of int * Bitutil.Bitstring.t | Dropped of string

type observation = {
  result : result;
  parser : Parse.outcome;
  tables : (string * bool * string) list;
  counters : (string * int) list;
  failed_asserts : string list;
}

let process ?regs program runtime ~ingress_port bits =
  let env = Env.create program in
  let counters = Hashtbl.create 4 in
  let tables = ref [] in
  let failed_asserts = ref [] in
  let on_count c =
    Hashtbl.replace counters c (1 + Option.value ~default:0 (Hashtbl.find_opt counters c))
  in
  let on_assert ok msg = if not ok then failed_asserts := msg :: !failed_asserts in
  let on_table ~table ~hit ~action = tables := (table, hit, action) :: !tables in
  let ctx = Exec.make_ctx ~on_count ~on_assert ~on_table ?regs ~env ~runtime () in
  Env.set_std env Ast.Ingress_port (Value.of_int ~width:9 ingress_port);
  let finish result =
    {
      result;
      parser =
        {
          Parse.accepted = true;
          error = Value.to_int (Env.get_std env Ast.Parser_error);
          states_visited = [];
        };
      tables = List.rev !tables;
      counters = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters [];
      failed_asserts = List.rev !failed_asserts;
    }
  in
  let parser_outcome = Parse.run ctx bits in
  if not parser_outcome.Parse.accepted then
    { (finish (Dropped ("parser:" ^ Stdmeta.error_name parser_outcome.Parse.error))) with
      parser = parser_outcome }
  else begin
    Exec.set_phase ctx Exec.Ingress;
    Exec.run_stmts ctx program.Ast.p_ingress;
    if Env.dropped env then { (finish (Dropped "ingress")) with parser = parser_outcome }
    else begin
      Exec.set_phase ctx Exec.Egress;
      Exec.run_stmts ctx program.Ast.p_egress;
      if Env.dropped env then { (finish (Dropped "egress")) with parser = parser_outcome }
      else begin
        let port = Value.to_int (Env.get_std env Ast.Egress_spec) in
        let out = Deparse.run env in
        { (finish (Forwarded (port, out))) with parser = parser_outcome }
      end
    end
  end

let forward ?regs program runtime ~ingress_port bits =
  match (process ?regs program runtime ~ingress_port bits).result with
  | Forwarded (port, out) -> Some (port, out)
  | Dropped _ -> None
