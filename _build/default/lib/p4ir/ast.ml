(** Abstract syntax of the P4-16-style intermediate representation.

    This module only defines types; semantics live in {!Interp} (the
    language-spec reference) and in the target pipeline produced by the
    SDNet-style compiler. The subset is modelled on P4-16's core: fixed-size
    headers, a parser as a finite state machine with [accept]/[reject]
    terminals and [select] transitions, match-action tables with
    exact/LPM/ternary keys, and ingress/egress controls followed by a
    deparser that emits valid headers in order. *)

type width = int

type field_decl = { f_name : string; f_width : width }

type header_decl = { h_name : string; h_fields : field_decl list }

(** Standard metadata, the architecture-supplied per-packet state
    (a small subset of v1model's [standard_metadata_t]). *)
type std_field =
  | Ingress_port  (** 9 bits *)
  | Egress_spec  (** 9 bits; the drop port is {!Stdmeta.drop_port} *)
  | Packet_length  (** 32 bits, bytes *)
  | Parser_error  (** 4 bits, see {!Stdmeta.error_none} etc. *)

type binop =
  | Add
  | Sub
  | Mul
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | LAnd
  | LOr

type unop = BNot | LNot

type expr =
  | Const of Value.t
  | Field of string * string  (** header.field; reading an invalid header gives 0 *)
  | Meta of string  (** user metadata field *)
  | Std of std_field
  | Param of string  (** action parameter, bound at entry-install time *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Slice of expr * int * int  (** msb, lsb *)
  | Concat of expr * expr
  | Valid of string  (** header validity as a 1-bit value *)

type lvalue = LField of string * string | LMeta of string | LStd of std_field

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | Apply of string  (** apply a table *)
  | SetValid of string
  | SetInvalid of string
  | MarkToDrop  (** set egress_spec to the drop port *)
  | Count of string  (** increment a declared counter *)
  | Assert of expr * string  (** verification annotation; no runtime effect *)
  | RegRead of lvalue * string * expr  (** lvalue := register\[index\] *)
  | RegWrite of string * expr * expr  (** register\[index\] := value *)
  | Nop

type action = {
  a_name : string;
  a_params : field_decl list;  (** runtime arguments supplied by table entries *)
  a_body : stmt list;
}

type match_kind = Exact | Lpm | Ternary

type table = {
  t_name : string;
  t_keys : (expr * match_kind) list;
  t_actions : string list;  (** permitted action names *)
  t_default_action : string;
  t_default_args : Value.t list;
  t_size : int;  (** capacity requested from the target *)
}

(** Parser transition targets. *)
type ptarget = To_state of string | To_accept | To_reject

(** One [select] case: a (value, optional mask) per key expression. *)
type select_case = { sc_keysets : (Value.t * Value.t option) list; sc_target : ptarget }

type transition =
  | Direct of ptarget
  | Select of expr list * select_case list * ptarget  (** keys, cases, default *)

type parser_state = {
  ps_name : string;
  ps_extracts : string list;  (** headers extracted, in order *)
  ps_transition : transition;
}

(** A stateful register array (v1model [register<bit<W>>(size)]). State
    persists across packets in whichever executor owns it; out-of-range
    indices read zero and ignore writes (hardware address-decoder
    behaviour). *)
type register_decl = { r_name : string; r_width : width; r_size : int }

type program = {
  p_name : string;
  p_headers : header_decl list;
  p_metadata : field_decl list;
  p_parser : parser_state list;  (** head of the list is the start state *)
  p_actions : action list;
  p_tables : table list;
  p_ingress : stmt list;
  p_egress : stmt list;
  p_deparser : string list;  (** headers emitted (when valid), in order *)
  p_counters : string list;
  p_registers : register_decl list;
  p_verify_ipv4_checksum : bool;
      (** when true and a header named "ipv4" is extracted, the architecture
          verifies its checksum during parsing and rejects on mismatch *)
  p_update_ipv4_checksum : bool;
      (** when true and a header named "ipv4" is valid at deparse time, the
          architecture recomputes its checksum field before emission *)
}

let find_header p name = List.find_opt (fun h -> String.equal h.h_name name) p.p_headers

let find_field hd name = List.find_opt (fun f -> String.equal f.f_name name) hd.h_fields

let find_action p name = List.find_opt (fun a -> String.equal a.a_name name) p.p_actions

let find_table p name = List.find_opt (fun t -> String.equal t.t_name name) p.p_tables

let find_state p name = List.find_opt (fun s -> String.equal s.ps_name name) p.p_parser

let find_meta p name = List.find_opt (fun f -> String.equal f.f_name name) p.p_metadata

let find_register p name = List.find_opt (fun r -> String.equal r.r_name name) p.p_registers

let header_width hd = List.fold_left (fun acc f -> acc + f.f_width) 0 hd.h_fields

let std_width = function
  | Ingress_port -> 9
  | Egress_spec -> 9
  | Packet_length -> 32
  | Parser_error -> 4

let std_name = function
  | Ingress_port -> "ingress_port"
  | Egress_spec -> "egress_spec"
  | Packet_length -> "packet_length"
  | Parser_error -> "parser_error"
