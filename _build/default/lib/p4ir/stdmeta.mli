(** Architecture constants for standard metadata. *)

val drop_port : int
(** Egress-spec value that means "drop" (511, the all-ones 9-bit port). *)

val error_none : int

(** [error_reject]: the parser took an explicit [reject] transition. *)
val error_reject : int

(** [error_underrun]: the packet was too short for an [extract]. *)
val error_underrun : int

(** [error_checksum]: architecture-level IPv4 checksum verification failed. *)
val error_checksum : int

val error_name : int -> string
