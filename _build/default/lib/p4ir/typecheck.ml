type error = { loc : string; msg : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.loc e.msg

let ( let* ) = Result.bind

let rec expr_width program ~params (e : Ast.expr) : (int, string) result =
  let open Ast in
  match e with
  | Const v -> Ok (Value.width v)
  | Field (h, f) -> (
      match find_header program h with
      | None -> Error (Printf.sprintf "undeclared header %s" h)
      | Some hd -> (
          match find_field hd f with
          | None -> Error (Printf.sprintf "undeclared field %s.%s" h f)
          | Some fd -> Ok fd.f_width))
  | Meta m -> (
      match find_meta program m with
      | None -> Error (Printf.sprintf "undeclared metadata %s" m)
      | Some fd -> Ok fd.f_width)
  | Std sf -> Ok (std_width sf)
  | Param p -> (
      match List.find_opt (fun (fd : field_decl) -> String.equal fd.f_name p) params with
      | None -> Error (Printf.sprintf "unbound action parameter %s" p)
      | Some fd -> Ok fd.f_width)
  | Valid h ->
      if find_header program h = None then Error (Printf.sprintf "undeclared header %s" h)
      else Ok 1
  | Un (BNot, e1) -> expr_width program ~params e1
  | Un (LNot, e1) ->
      let* w = expr_width program ~params e1 in
      if w <> 1 then Error "logical not over non-boolean" else Ok 1
  | Slice (e1, msb, lsb) ->
      let* w = expr_width program ~params e1 in
      if lsb < 0 || msb < lsb || msb >= w then
        Error (Printf.sprintf "slice [%d:%d] out of range for width %d" msb lsb w)
      else Ok (msb - lsb + 1)
  | Concat (e1, e2) ->
      let* w1 = expr_width program ~params e1 in
      let* w2 = expr_width program ~params e2 in
      if w1 + w2 > 64 then Error "concat wider than 64 bits" else Ok (w1 + w2)
  | Bin ((Shl | Shr), e1, e2) ->
      let* w1 = expr_width program ~params e1 in
      let* _ = expr_width program ~params e2 in
      Ok w1
  | Bin ((LAnd | LOr), e1, e2) ->
      let* w1 = expr_width program ~params e1 in
      let* w2 = expr_width program ~params e2 in
      if w1 <> 1 || w2 <> 1 then Error "logical operator over non-boolean" else Ok 1
  | Bin ((Eq | Neq | Lt | Le | Gt | Ge), e1, e2) ->
      let* w1 = expr_width program ~params e1 in
      let* w2 = expr_width program ~params e2 in
      if w1 <> w2 then Error (Printf.sprintf "comparison width mismatch (%d vs %d)" w1 w2)
      else Ok 1
  | Bin ((Add | Sub | Mul | BAnd | BOr | BXor), e1, e2) ->
      let* w1 = expr_width program ~params e1 in
      let* w2 = expr_width program ~params e2 in
      if w1 <> w2 then Error (Printf.sprintf "operand width mismatch (%d vs %d)" w1 w2)
      else Ok w1

let check program =
  let open Ast in
  let errors = ref [] in
  let err loc fmt = Printf.ksprintf (fun msg -> errors := { loc; msg } :: !errors) fmt in
  let check_unique loc names what =
    let sorted = List.sort String.compare names in
    let rec dups = function
      | a :: (b :: _ as rest) ->
          if String.equal a b then err loc "duplicate %s %s" what a;
          dups rest
      | [ _ ] | [] -> ()
    in
    dups sorted
  in
  let expr loc ~params e =
    match expr_width program ~params e with
    | Ok w -> Some w
    | Error msg ->
        err loc "%s" msg;
        None
  in
  let expect_bool loc ~params e what =
    match expr loc ~params e with
    | Some 1 | None -> ()
    | Some w -> err loc "%s must be boolean (width 1), got width %d" what w
  in

  (* headers and metadata *)
  check_unique "headers" (List.map (fun h -> h.h_name) program.p_headers) "header";
  List.iter
    (fun hd ->
      check_unique ("header " ^ hd.h_name) (List.map (fun f -> f.f_name) hd.h_fields) "field";
      List.iter
        (fun fd ->
          if fd.f_width < 1 || fd.f_width > 64 then
            err ("header " ^ hd.h_name) "field %s has width %d (must be 1..64)" fd.f_name
              fd.f_width)
        hd.h_fields)
    program.p_headers;
  check_unique "metadata" (List.map (fun f -> f.f_name) program.p_metadata) "metadata field";
  List.iter
    (fun fd ->
      if fd.f_width < 1 || fd.f_width > 64 then
        err "metadata" "field %s has width %d (must be 1..64)" fd.f_name fd.f_width)
    program.p_metadata;
  check_unique "counters" program.p_counters "counter";
  check_unique "registers" (List.map (fun (r : register_decl) -> r.r_name) program.p_registers)
    "register";
  List.iter
    (fun (r : register_decl) ->
      if r.r_width < 1 || r.r_width > 64 then
        err "registers" "register %s has width %d (must be 1..64)" r.r_name r.r_width;
      if r.r_size < 1 then err "registers" "register %s has size %d" r.r_name r.r_size)
    program.p_registers;

  (* parser *)
  check_unique "parser" (List.map (fun s -> s.ps_name) program.p_parser) "state";
  if program.p_parser = [] then err "parser" "no states (need at least a start state)";
  List.iter
    (fun state ->
      let loc = "parser state " ^ state.ps_name in
      List.iter
        (fun h -> if find_header program h = None then err loc "extracts undeclared header %s" h)
        state.ps_extracts;
      let check_target = function
        | To_state s ->
            if find_state program s = None then err loc "transition to undeclared state %s" s
        | To_accept | To_reject -> ()
      in
      match state.ps_transition with
      | Direct t -> check_target t
      | Select (keys, cases, default) ->
          check_target default;
          let widths = List.map (fun k -> expr loc ~params:[] k) keys in
          List.iter
            (fun case ->
              check_target case.sc_target;
              if List.length case.sc_keysets <> List.length keys then
                err loc "select case keyset arity mismatch"
              else
                List.iter2
                  (fun (v, mask) w ->
                    match w with
                    | Some w ->
                        if Value.width v <> w then
                          err loc "select case value width %d, key width %d" (Value.width v) w;
                        (match mask with
                        | Some m when Value.width m <> w ->
                            err loc "select case mask width %d, key width %d" (Value.width m) w
                        | Some _ | None -> ())
                    | None -> ())
                  case.sc_keysets widths)
            cases)
    program.p_parser;

  (* statements; [params] gives action-parameter scope *)
  let rec check_stmt loc ~params (s : stmt) =
    match s with
    | Nop -> ()
    | Assign (lv, e) -> (
        let lw =
          match lv with
          | LField (h, f) -> expr loc ~params (Field (h, f))
          | LMeta m -> expr loc ~params (Meta m)
          | LStd sf -> Some (std_width sf)
        in
        let rw = expr loc ~params e in
        match (lw, rw) with
        | Some lw, Some rw when lw <> rw ->
            err loc "assignment width mismatch (%d := %d)" lw rw
        | (Some _ | None), (Some _ | None) -> ())
    | If (cond, then_, else_) ->
        expect_bool loc ~params cond "if condition";
        List.iter (check_stmt loc ~params) then_;
        List.iter (check_stmt loc ~params) else_
    | Apply t -> if find_table program t = None then err loc "applies undeclared table %s" t
    | SetValid h | SetInvalid h ->
        if find_header program h = None then err loc "references undeclared header %s" h
    | MarkToDrop -> ()
    | Count c ->
        if not (List.mem c program.p_counters) then err loc "undeclared counter %s" c
    | Assert (cond, _) -> expect_bool loc ~params cond "assert condition"
    | RegRead (lv, reg, idx) -> (
        ignore (expr loc ~params idx);
        match find_register program reg with
        | None -> err loc "undeclared register %s" reg
        | Some r -> (
            let lw =
              match lv with
              | LField (h, f) -> expr loc ~params (Field (h, f))
              | LMeta m -> expr loc ~params (Meta m)
              | LStd sf -> Some (std_width sf)
            in
            match lw with
            | Some lw when lw <> r.r_width ->
                err loc "register %s read width mismatch (%d := %d)" reg lw r.r_width
            | Some _ | None -> ()))
    | RegWrite (reg, idx, value) -> (
        ignore (expr loc ~params idx);
        match find_register program reg with
        | None -> err loc "undeclared register %s" reg
        | Some r -> (
            match expr loc ~params value with
            | Some w when w <> r.r_width ->
                err loc "register %s write width mismatch (%d := %d)" reg r.r_width w
            | Some _ | None -> ()))
  in

  (* actions *)
  check_unique "actions" (List.map (fun a -> a.a_name) program.p_actions) "action";
  List.iter
    (fun action ->
      let loc = "action " ^ action.a_name in
      check_unique loc (List.map (fun p -> p.f_name) action.a_params) "parameter";
      List.iter
        (fun p ->
          if p.f_width < 1 || p.f_width > 64 then
            err loc "parameter %s has width %d (must be 1..64)" p.f_name p.f_width)
        action.a_params;
      List.iter (check_stmt loc ~params:action.a_params) action.a_body)
    program.p_actions;

  (* tables *)
  check_unique "tables" (List.map (fun t -> t.t_name) program.p_tables) "table";
  List.iter
    (fun tbl ->
      let loc = "table " ^ tbl.t_name in
      if tbl.t_size < 1 then err loc "size must be positive";
      List.iter (fun (k, _) -> ignore (expr loc ~params:[] k)) tbl.t_keys;
      let lpm_keys =
        List.filter (fun (_, kind) -> kind = Lpm) tbl.t_keys
      in
      if List.length lpm_keys > 1 then err loc "at most one LPM key is allowed";
      List.iter
        (fun a -> if find_action program a = None then err loc "undeclared action %s" a)
        tbl.t_actions;
      (match find_action program tbl.t_default_action with
      | None -> err loc "undeclared default action %s" tbl.t_default_action
      | Some act ->
          if List.length tbl.t_default_args <> List.length act.a_params then
            err loc "default action argument arity mismatch"
          else
            List.iter2
              (fun arg (p : field_decl) ->
                if Value.width arg <> p.f_width then
                  err loc "default action argument width mismatch for %s" p.f_name)
              tbl.t_default_args act.a_params))
    program.p_tables;

  (* controls and deparser *)
  List.iter (check_stmt "ingress" ~params:[]) program.p_ingress;
  List.iter (check_stmt "egress" ~params:[]) program.p_egress;
  List.iter
    (fun h -> if find_header program h = None then err "deparser" "emits undeclared header %s" h)
    program.p_deparser;

  match List.rev !errors with [] -> Ok () | errs -> Error errs

let check_exn program =
  match check program with
  | Ok () -> ()
  | Error errs ->
      let msg =
        String.concat "; " (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)
      in
      invalid_arg ("Typecheck: " ^ msg)
