lib/p4ir/deparse.ml: Ast Bitutil Env List Option Printf Value
