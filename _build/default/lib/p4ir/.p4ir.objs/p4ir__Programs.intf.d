lib/p4ir/programs.mli: Ast Entry
