lib/p4ir/parse.ml: Ast Bitutil Env Exec List Printf Stdmeta Value
