lib/p4ir/pp.ml: Ast Format List String Value
