lib/p4ir/regstate.ml: Array Ast Hashtbl List Printf Value
