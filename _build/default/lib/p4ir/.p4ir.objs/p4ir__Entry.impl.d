lib/p4ir/entry.ml: Format Int64 List Value
