lib/p4ir/typecheck.ml: Ast Format List Printf Result String Value
