lib/p4ir/exec.mli: Ast Env Regstate Runtime Value
