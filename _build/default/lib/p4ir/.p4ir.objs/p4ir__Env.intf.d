lib/p4ir/env.mli: Ast Bitutil Value
