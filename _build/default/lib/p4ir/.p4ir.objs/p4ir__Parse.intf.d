lib/p4ir/parse.mli: Bitutil Exec
