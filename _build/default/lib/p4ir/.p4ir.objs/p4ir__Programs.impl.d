lib/p4ir/programs.ml: Ast Dsl Entry Int64 List String Value
