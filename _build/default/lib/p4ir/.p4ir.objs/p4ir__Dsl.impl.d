lib/p4ir/dsl.ml: Ast Value
