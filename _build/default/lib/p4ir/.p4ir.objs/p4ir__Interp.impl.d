lib/p4ir/interp.ml: Ast Bitutil Deparse Env Exec Hashtbl List Option Parse Stdmeta Value
