lib/p4ir/entry.mli: Format Value
