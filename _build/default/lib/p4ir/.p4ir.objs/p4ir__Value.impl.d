lib/p4ir/value.ml: Format Int64
