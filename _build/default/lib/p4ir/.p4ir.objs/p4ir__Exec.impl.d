lib/p4ir/exec.ml: Ast Entry Env Fun List Printf Regstate Runtime Stdmeta Value
