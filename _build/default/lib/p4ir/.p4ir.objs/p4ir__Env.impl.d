lib/p4ir/env.ml: Ast Bitutil Fun Hashtbl List Printf Stdmeta Value
