lib/p4ir/typecheck.mli: Ast Format
