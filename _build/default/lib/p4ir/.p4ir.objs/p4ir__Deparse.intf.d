lib/p4ir/deparse.mli: Bitutil Env
