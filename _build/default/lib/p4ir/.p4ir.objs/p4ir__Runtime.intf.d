lib/p4ir/runtime.mli: Ast Entry
