lib/p4ir/runtime.ml: Ast Entry Hashtbl List Printf String Value
