lib/p4ir/interp.mli: Ast Bitutil Parse Regstate Runtime
