lib/p4ir/stdmeta.ml: Printf
