lib/p4ir/regstate.mli: Ast Value
