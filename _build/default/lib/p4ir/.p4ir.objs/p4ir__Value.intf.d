lib/p4ir/value.mli: Format
