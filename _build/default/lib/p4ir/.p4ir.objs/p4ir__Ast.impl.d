lib/p4ir/ast.ml: List String Value
