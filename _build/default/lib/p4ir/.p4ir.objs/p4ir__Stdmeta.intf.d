lib/p4ir/stdmeta.mli:
