lib/p4ir/pp.mli: Ast Format
