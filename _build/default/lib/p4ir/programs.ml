open Dsl

type bundle = {
  program : Ast.program;
  entries : (string * Entry.t) list;
  description : string;
}

(* ------------------------------------------------------------------ *)
(* Shared header declarations (layouts match the packet library)       *)
(* ------------------------------------------------------------------ *)

let eth_h = header "eth" [ bit 48 "dst"; bit 48 "src"; bit 16 "ethertype" ]

let vlan_h = header "vlan" [ bit 3 "pcp"; bit 1 "dei"; bit 12 "vid"; bit 16 "ethertype" ]

let ipv4_h =
  header "ipv4"
    [
      bit 4 "version"; bit 4 "ihl"; bit 6 "dscp"; bit 2 "ecn"; bit 16 "total_len";
      bit 16 "ident"; bit 3 "flags"; bit 13 "frag_offset"; bit 8 "ttl"; bit 8 "protocol";
      bit 16 "checksum"; bit 32 "src"; bit 32 "dst";
    ]

let tcp_h =
  header "tcp"
    [
      bit 16 "src_port"; bit 16 "dst_port"; bit 32 "seq"; bit 32 "ack";
      bit 4 "data_offset"; bit 4 "reserved"; bit 8 "flags"; bit 16 "window";
      bit 16 "checksum"; bit 16 "urgent";
    ]

let udp_h =
  header "udp" [ bit 16 "src_port"; bit 16 "dst_port"; bit 16 "length"; bit 16 "checksum" ]

let mpls_h = header "mpls" [ bit 20 "label"; bit 3 "tc"; bit 1 "bos"; bit 8 "ttl" ]

let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let ethertype_vlan = 0x8100
let ethertype_mpls = 0x8847
let ethertype_calc = 0x1234

let et v = vint ~width:16 v

let mac v = Value.make ~width:48 v

let ip a b c d =
  Value.make ~width:32
    (Int64.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d))

let port p = vint ~width:9 p

(* ------------------------------------------------------------------ *)
(* basic_router                                                        *)
(* ------------------------------------------------------------------ *)

let router_actions ~decrement_ttl =
  [
    action "set_nexthop"
      [ bit 9 "out_port"; bit 48 "dmac" ]
      ([
         assert_ (fld "ipv4" "ttl" >: const ~width:8 0) "ttl positive before decrement";
         set_std Ast.Egress_spec (param "out_port");
         set_field "eth" "src" (fld "eth" "dst");
         set_field "eth" "dst" (param "dmac");
       ]
      @ (if decrement_ttl then
           [ set_field "ipv4" "ttl" (fld "ipv4" "ttl" -: const ~width:8 1) ]
         else [])
      @ [ count "ipv4_routed" ]);
    action "drop_packet" [] [ drop; count "ipv4_miss" ];
  ]

let router_parser =
  [
    state "start" ~extracts:[ "eth" ]
      (select
         [ fld "eth" "ethertype" ]
         [ case (et ethertype_ipv4) (Ast.To_state "parse_ipv4") ]
         ~default:Ast.To_reject);
    state "parse_ipv4" ~extracts:[ "ipv4" ]
      (select
         [ fld "ipv4" "version" ]
         [ case (vint ~width:4 4) Ast.To_accept ]
         ~default:Ast.To_reject);
  ]

let router_ingress =
  [
    if_ (valid "ipv4")
      [
        if_
          (fld "ipv4" "ttl" <=: const ~width:8 1)
          [ drop; count "ttl_expired" ]
          [ apply "ipv4_lpm" ];
      ]
      [ drop ];
  ]

let router_entries =
  [
    ( "ipv4_lpm",
      Entry.make
        ~keys:[ Entry.lpm (ip 10 0 0 0) 8 ]
        ~action:"set_nexthop"
        ~args:[ port 1; mac 0x0A0000000001L ]
        () );
    ( "ipv4_lpm",
      Entry.make
        ~keys:[ Entry.lpm (ip 10 1 0 0) 16 ]
        ~action:"set_nexthop"
        ~args:[ port 2; mac 0x0A0000000002L ]
        () );
    ( "ipv4_lpm",
      Entry.make
        ~keys:[ Entry.lpm (ip 192 168 0 0) 16 ]
        ~action:"set_nexthop"
        ~args:[ port 3; mac 0x0A0000000003L ]
        () );
  ]

let basic_router =
  {
    program =
      {
        Ast.p_name = "basic_router";
        p_headers = [ eth_h; ipv4_h ];
        p_metadata = [];
        p_parser = router_parser;
        p_actions = router_actions ~decrement_ttl:true;
        p_tables =
          [
            table "ipv4_lpm"
              [ (fld "ipv4" "dst", Ast.Lpm) ]
              [ "set_nexthop"; "drop_packet" ]
              ~default:"drop_packet" ();
          ];
        p_ingress = router_ingress;
        p_egress = [];
        p_deparser = [ "eth"; "ipv4" ];
        p_counters = [ "ipv4_routed"; "ipv4_miss"; "ttl_expired" ];
        p_registers = [];
        p_verify_ipv4_checksum = true;
        p_update_ipv4_checksum = true;
      };
    entries = router_entries;
    description = "IPv4 LPM router (reject non-IPv4, verify checksum, decrement TTL)";
  }

let buggy_router =
  {
    program =
      {
        basic_router.program with
        Ast.p_name = "buggy_router";
        p_actions = router_actions ~decrement_ttl:false;
      };
    entries = router_entries;
    description = "basic_router with a seeded functional bug: TTL never decremented";
  }

(* ------------------------------------------------------------------ *)
(* router_split: same function, alternative two-table specification    *)
(* ------------------------------------------------------------------ *)

let router_split =
  let program =
    {
      Ast.p_name = "router_split";
      p_headers = [ eth_h; ipv4_h ];
      p_metadata = [ bit 16 "nh_id" ];
      p_parser = router_parser;
      p_actions =
        [
          action "set_nh" [ bit 16 "id" ] [ set_meta "nh_id" (param "id") ];
          action "set_port"
            [ bit 9 "out_port"; bit 48 "dmac" ]
            [
              set_std Ast.Egress_spec (param "out_port");
              set_field "eth" "src" (fld "eth" "dst");
              set_field "eth" "dst" (param "dmac");
              set_field "ipv4" "ttl" (fld "ipv4" "ttl" -: const ~width:8 1);
              count "ipv4_routed";
            ];
          action "drop_packet" [] [ drop; count "ipv4_miss" ];
        ];
      p_tables =
        [
          table "ipv4_lpm"
            [ (fld "ipv4" "dst", Ast.Lpm) ]
            [ "set_nh"; "drop_packet" ]
            ~default:"drop_packet" ();
          table "nexthop"
            [ (meta "nh_id", Ast.Exact) ]
            [ "set_port"; "drop_packet" ]
            ~default:"drop_packet" ();
        ];
      p_ingress =
        [
          if_ (valid "ipv4")
            [
              if_
                (fld "ipv4" "ttl" <=: const ~width:8 1)
                [ drop; count "ttl_expired" ]
                [
                  apply "ipv4_lpm";
                  if_
                    (meta "nh_id" <>: const ~width:16 0)
                    [ apply "nexthop" ] [ drop ];
                ];
            ]
            [ drop ];
        ];
      p_egress = [];
      p_deparser = [ "eth"; "ipv4" ];
      p_counters = [ "ipv4_routed"; "ipv4_miss"; "ttl_expired" ];
        p_registers = [];
      p_verify_ipv4_checksum = true;
      p_update_ipv4_checksum = true;
    }
  in
  let entries =
    [
      ("ipv4_lpm",
       Entry.make ~keys:[ Entry.lpm (ip 10 0 0 0) 8 ] ~action:"set_nh"
         ~args:[ vint ~width:16 1 ] ());
      ("ipv4_lpm",
       Entry.make ~keys:[ Entry.lpm (ip 10 1 0 0) 16 ] ~action:"set_nh"
         ~args:[ vint ~width:16 2 ] ());
      ("ipv4_lpm",
       Entry.make ~keys:[ Entry.lpm (ip 192 168 0 0) 16 ] ~action:"set_nh"
         ~args:[ vint ~width:16 3 ] ());
      ("nexthop",
       Entry.make ~keys:[ Entry.exact (vint ~width:16 1) ] ~action:"set_port"
         ~args:[ port 1; mac 0x0A0000000001L ] ());
      ("nexthop",
       Entry.make ~keys:[ Entry.exact (vint ~width:16 2) ] ~action:"set_port"
         ~args:[ port 2; mac 0x0A0000000002L ] ());
      ("nexthop",
       Entry.make ~keys:[ Entry.exact (vint ~width:16 3) ] ~action:"set_port"
         ~args:[ port 3; mac 0x0A0000000003L ] ());
    ]
  in
  { program; entries;
    description = "basic_router's function specified as LPM->nexthop-id->port" }

(* ------------------------------------------------------------------ *)
(* parser_guard: the Section-4 case-study program                      *)
(* ------------------------------------------------------------------ *)

let parser_guard =
  let cpu_port = 63 in
  let program =
    {
      Ast.p_name = "parser_guard";
      p_headers = [ eth_h; ipv4_h ];
      p_metadata = [];
      p_parser =
        [
          state "start" ~extracts:[ "eth" ]
            (select
               [ fld "eth" "ethertype" ]
               [
                 case (et ethertype_ipv4) (Ast.To_state "parse_ipv4");
                 case (et ethertype_arp) Ast.To_accept;
               ]
               ~default:Ast.To_reject);
          state "parse_ipv4" ~extracts:[ "ipv4" ]
            (select
               [ fld "ipv4" "version" ]
               [ case (vint ~width:4 4) Ast.To_accept ]
               ~default:Ast.To_reject);
        ];
      p_actions =
        [
          action "set_nexthop"
            [ bit 9 "out_port"; bit 48 "dmac" ]
            [
              set_std Ast.Egress_spec (param "out_port");
              set_field "eth" "src" (fld "eth" "dst");
              set_field "eth" "dst" (param "dmac");
              set_field "ipv4" "ttl" (fld "ipv4" "ttl" -: const ~width:8 1);
              count "ipv4_routed";
            ];
          action "drop_packet" [] [ drop ];
        ];
      p_tables =
        [
          (* a default route exists: misses go to the next hop on port 1 *)
          table "ipv4_lpm"
            [ (fld "ipv4" "dst", Ast.Lpm) ]
            [ "set_nexthop"; "drop_packet" ]
            ~default:"set_nexthop"
            ~default_args:[ port 1; mac 0x0A00000000FFL ]
            ();
        ];
      p_ingress =
        [
          if_ (valid "ipv4")
            [ apply "ipv4_lpm" ]
            [
              when_
                (fld "eth" "ethertype" ==: const ~width:16 ethertype_arp)
                [ egress_port cpu_port; count "arp_punt" ];
              (* anything else was rejected by the parser: unreachable in
                 the spec semantics, reachable under the SDNet quirk *)
            ];
        ];
      p_egress = [];
      p_deparser = [ "eth"; "ipv4" ];
      p_counters = [ "ipv4_routed"; "arp_punt" ];
        p_registers = [];
      p_verify_ipv4_checksum = true;
      p_update_ipv4_checksum = true;
    }
  in
  let entries =
    [
      ("ipv4_lpm",
       Entry.make ~keys:[ Entry.lpm (ip 10 0 0 0) 8 ] ~action:"set_nexthop"
         ~args:[ port 2; mac 0x0A0000000002L ] ());
    ]
  in
  { program; entries;
    description =
      "case-study program: parser rejects unknown EtherTypes / bad IPv4 version; \
       default route forwards the rest" }

(* ------------------------------------------------------------------ *)
(* l2_switch                                                           *)
(* ------------------------------------------------------------------ *)

let l2_switch =
  let program =
    {
      Ast.p_name = "l2_switch";
      p_headers = [ eth_h ];
      p_metadata = [];
      p_parser = [ state "start" ~extracts:[ "eth" ] accept ];
      p_actions =
        [
          action "src_known" [] [ count "known_src" ];
          action "src_unknown" [] [ count "unknown_src" ];
          action "forward" [ bit 9 "out_port" ]
            [ set_std Ast.Egress_spec (param "out_port"); count "l2_fwd" ];
          action "bcast_drop" [] [ drop; count "l2_miss" ];
        ];
      p_tables =
        [
          table "smac" [ (fld "eth" "src", Ast.Exact) ] [ "src_known"; "src_unknown" ]
            ~default:"src_unknown" ();
          table "dmac" [ (fld "eth" "dst", Ast.Exact) ] [ "forward"; "bcast_drop" ]
            ~default:"bcast_drop" ();
        ];
      p_ingress = [ apply "smac"; apply "dmac" ];
      p_egress = [];
      p_deparser = [ "eth" ];
      p_counters = [ "known_src"; "unknown_src"; "l2_fwd"; "l2_miss" ];
        p_registers = [];
      p_verify_ipv4_checksum = false;
      p_update_ipv4_checksum = false;
    }
  in
  let station m p =
    [
      ("smac", Entry.make ~keys:[ Entry.exact (mac m) ] ~action:"src_known" ());
      ("dmac",
       Entry.make ~keys:[ Entry.exact (mac m) ] ~action:"forward" ~args:[ port p ] ());
    ]
  in
  {
    program;
    entries =
      station 0x020000000001L 1 @ station 0x020000000002L 2 @ station 0x020000000003L 3;
    description = "MAC learning switch skeleton (known-SMAC check, DMAC forwarding)";
  }

(* ------------------------------------------------------------------ *)
(* acl_firewall                                                        *)
(* ------------------------------------------------------------------ *)

let acl_firewall =
  let program =
    {
      Ast.p_name = "acl_firewall";
      p_headers = [ eth_h; ipv4_h; tcp_h; udp_h ];
      p_metadata = [ bit 16 "l4_sport"; bit 16 "l4_dport"; bit 1 "allow" ];
      p_parser =
        [
          state "start" ~extracts:[ "eth" ]
            (select
               [ fld "eth" "ethertype" ]
               [ case (et ethertype_ipv4) (Ast.To_state "parse_ipv4") ]
               ~default:Ast.To_reject);
          state "parse_ipv4" ~extracts:[ "ipv4" ]
            (select
               [ fld "ipv4" "protocol" ]
               [
                 case (vint ~width:8 6) (Ast.To_state "parse_tcp");
                 case (vint ~width:8 17) (Ast.To_state "parse_udp");
               ]
               ~default:Ast.To_accept);
          state "parse_tcp" ~extracts:[ "tcp" ] accept;
          state "parse_udp" ~extracts:[ "udp" ] accept;
        ];
      p_actions =
        [
          action "permit" [] [ set_meta "allow" (const ~width:1 1); count "acl_permit" ];
          action "deny" [] [ set_meta "allow" (const ~width:1 0); count "acl_deny" ];
          action "set_nexthop"
            [ bit 9 "out_port"; bit 48 "dmac" ]
            [
              set_std Ast.Egress_spec (param "out_port");
              set_field "eth" "src" (fld "eth" "dst");
              set_field "eth" "dst" (param "dmac");
              set_field "ipv4" "ttl" (fld "ipv4" "ttl" -: const ~width:8 1);
            ];
          action "drop_packet" [] [ drop ];
        ];
      p_tables =
        [
          table "acl"
            [
              (fld "ipv4" "src", Ast.Ternary);
              (fld "ipv4" "dst", Ast.Ternary);
              (fld "ipv4" "protocol", Ast.Ternary);
              (meta "l4_dport", Ast.Ternary);
            ]
            [ "permit"; "deny" ] ~default:"deny" ();
          table "ipv4_lpm"
            [ (fld "ipv4" "dst", Ast.Lpm) ]
            [ "set_nexthop"; "drop_packet" ]
            ~default:"drop_packet" ();
        ];
      p_ingress =
        [
          if_ (valid "tcp")
            [
              set_meta "l4_sport" (fld "tcp" "src_port");
              set_meta "l4_dport" (fld "tcp" "dst_port");
            ]
            [
              when_ (valid "udp")
                [
                  set_meta "l4_sport" (fld "udp" "src_port");
                  set_meta "l4_dport" (fld "udp" "dst_port");
                ];
            ];
          if_ (valid "ipv4")
            [
              apply "acl";
              if_ (meta "allow" ==: const ~width:1 1)
                [
                  if_
                    (fld "ipv4" "ttl" <=: const ~width:8 1)
                    [ drop; count "ttl_expired" ]
                    [ apply "ipv4_lpm" ];
                ]
                [ drop ];
            ]
            [ drop ];
        ];
      p_egress = [];
      p_deparser = [ "eth"; "ipv4"; "tcp"; "udp" ];
      p_counters = [ "acl_permit"; "acl_deny"; "ttl_expired" ];
        p_registers = [];
      p_verify_ipv4_checksum = true;
      p_update_ipv4_checksum = true;
    }
  in
  let any32 = (Value.zero 32, Value.zero 32) in
  let any8 = (Value.zero 8, Value.zero 8) in
  let any16 = (Value.zero 16, Value.zero 16) in
  let tern (v, m) = Entry.ternary v m in
  let exact_port p = Entry.ternary (vint ~width:16 p) (Value.ones 16) in
  let net a b c d len =
    let m =
      Value.make ~width:32
        (if len = 0 then 0L
         else Int64.logand (Int64.shift_left (-1L) (32 - len)) 0xFFFFFFFFL)
    in
    Entry.ternary (ip a b c d) m
  in
  let entries =
    [
      (* deny telnet anywhere, highest priority *)
      ("acl",
       Entry.make ~priority:100
         ~keys:[ tern any32; tern any32; tern any8; exact_port 23 ]
         ~action:"deny" ());
      (* permit web traffic into the DMZ *)
      ("acl",
       Entry.make ~priority:50
         ~keys:[ tern any32; net 10 1 0 0 16; tern any8; exact_port 80 ]
         ~action:"permit" ());
      (* permit all UDP inside 10/8 *)
      ("acl",
       Entry.make ~priority:10
         ~keys:
           [ net 10 0 0 0 8; net 10 0 0 0 8;
             Entry.ternary (vint ~width:8 17) (Value.ones 8); tern any16 ]
         ~action:"permit" ());
      ("ipv4_lpm",
       Entry.make ~keys:[ Entry.lpm (ip 10 0 0 0) 8 ] ~action:"set_nexthop"
         ~args:[ port 1; mac 0x0A0000000001L ] ());
      ("ipv4_lpm",
       Entry.make ~keys:[ Entry.lpm (ip 10 1 0 0) 16 ] ~action:"set_nexthop"
         ~args:[ port 2; mac 0x0A0000000002L ] ());
    ]
  in
  { program; entries;
    description = "ternary ACL (src/dst/proto/l4 port) in front of LPM forwarding" }

(* ------------------------------------------------------------------ *)
(* mpls_tunnel                                                         *)
(* ------------------------------------------------------------------ *)

let mpls_tunnel =
  let program =
    {
      Ast.p_name = "mpls_tunnel";
      p_headers = [ eth_h; mpls_h; ipv4_h ];
      p_metadata = [];
      p_parser =
        [
          state "start" ~extracts:[ "eth" ]
            (select
               [ fld "eth" "ethertype" ]
               [
                 case (et ethertype_mpls) (Ast.To_state "parse_mpls");
                 case (et ethertype_ipv4) (Ast.To_state "parse_ipv4");
               ]
               ~default:Ast.To_reject);
          state "parse_mpls" ~extracts:[ "mpls" ]
            (select
               [ fld "mpls" "bos" ]
               [ case (vint ~width:1 1) (Ast.To_state "parse_ipv4") ]
               ~default:Ast.To_reject);
          state "parse_ipv4" ~extracts:[ "ipv4" ] accept;
        ];
      p_actions =
        [
          action "mpls_swap"
            [ bit 20 "new_label"; bit 9 "out_port" ]
            [
              set_field "mpls" "label" (param "new_label");
              set_field "mpls" "ttl" (fld "mpls" "ttl" -: const ~width:8 1);
              set_std Ast.Egress_spec (param "out_port");
              count "mpls_swap";
            ];
          action "mpls_pop"
            [ bit 9 "out_port"; bit 48 "dmac" ]
            [
              SetInvalid "mpls";
              set_field "eth" "ethertype" (Ast.Const (et ethertype_ipv4));
              set_field "eth" "dst" (param "dmac");
              set_field "ipv4" "ttl" (fld "ipv4" "ttl" -: const ~width:8 1);
              set_std Ast.Egress_spec (param "out_port");
              count "mpls_pop";
            ];
          action "mpls_push"
            [ bit 20 "new_label"; bit 9 "out_port"; bit 48 "dmac" ]
            [
              SetValid "mpls";
              set_field "mpls" "label" (param "new_label");
              set_field "mpls" "tc" (const ~width:3 0);
              set_field "mpls" "bos" (const ~width:1 1);
              set_field "mpls" "ttl" (const ~width:8 64);
              set_field "eth" "ethertype" (Ast.Const (et ethertype_mpls));
              set_field "eth" "dst" (param "dmac");
              set_std Ast.Egress_spec (param "out_port");
              count "mpls_push";
            ];
          action "drop_packet" [] [ drop; count "mpls_miss" ];
        ];
      p_tables =
        [
          table "mpls_fib"
            [ (fld "mpls" "label", Ast.Exact) ]
            [ "mpls_swap"; "mpls_pop"; "drop_packet" ]
            ~default:"drop_packet" ();
          table "ipv4_to_tunnel"
            [ (fld "ipv4" "dst", Ast.Lpm) ]
            [ "mpls_push"; "drop_packet" ]
            ~default:"drop_packet" ();
        ];
      p_ingress =
        [ if_ (valid "mpls") [ apply "mpls_fib" ] [ apply "ipv4_to_tunnel" ] ];
      p_egress = [];
      p_deparser = [ "eth"; "mpls"; "ipv4" ];
      p_counters = [ "mpls_swap"; "mpls_pop"; "mpls_push"; "mpls_miss" ];
        p_registers = [];
      p_verify_ipv4_checksum = false;
      p_update_ipv4_checksum = true;
    }
  in
  let label v = vint ~width:20 v in
  let entries =
    [
      ("ipv4_to_tunnel",
       Entry.make ~keys:[ Entry.lpm (ip 10 2 0 0) 16 ] ~action:"mpls_push"
         ~args:[ label 100; port 1; mac 0x0A0000000001L ] ());
      ("mpls_fib",
       Entry.make ~keys:[ Entry.exact (label 100) ] ~action:"mpls_swap"
         ~args:[ label 200; port 2 ] ());
      ("mpls_fib",
       Entry.make ~keys:[ Entry.exact (label 200) ] ~action:"mpls_pop"
         ~args:[ port 3; mac 0x0A0000000003L ] ());
    ]
  in
  { program; entries;
    description = "MPLS edge/transit: push at ingress, swap mid-path, pop at egress" }

(* ------------------------------------------------------------------ *)
(* vlan_router                                                         *)
(* ------------------------------------------------------------------ *)

let vlan_router =
  let program =
    {
      Ast.p_name = "vlan_router";
      p_headers = [ eth_h; vlan_h; ipv4_h ];
      p_metadata = [];
      p_parser =
        [
          state "start" ~extracts:[ "eth" ]
            (select
               [ fld "eth" "ethertype" ]
               [
                 case (et ethertype_vlan) (Ast.To_state "parse_vlan");
                 case (et ethertype_ipv4) (Ast.To_state "parse_ipv4");
               ]
               ~default:Ast.To_reject);
          state "parse_vlan" ~extracts:[ "vlan" ]
            (select
               [ fld "vlan" "ethertype" ]
               [ case (et ethertype_ipv4) (Ast.To_state "parse_ipv4") ]
               ~default:Ast.To_reject);
          state "parse_ipv4" ~extracts:[ "ipv4" ] accept;
        ];
      p_actions =
        [
          action "route"
            [ bit 9 "out_port"; bit 48 "dmac" ]
            [
              set_std Ast.Egress_spec (param "out_port");
              set_field "eth" "src" (fld "eth" "dst");
              set_field "eth" "dst" (param "dmac");
              set_field "ipv4" "ttl" (fld "ipv4" "ttl" -: const ~width:8 1);
              count "routed";
            ];
          action "drop_packet" [] [ drop; count "route_miss" ];
        ];
      p_tables =
        [
          table "vlan_route"
            [ (fld "vlan" "vid", Ast.Exact); (fld "ipv4" "dst", Ast.Lpm) ]
            [ "route"; "drop_packet" ] ~default:"drop_packet" ();
          table "ipv4_lpm"
            [ (fld "ipv4" "dst", Ast.Lpm) ]
            [ "route"; "drop_packet" ] ~default:"drop_packet" ();
        ];
      p_ingress =
        [
          if_ (valid "ipv4")
            [
              if_
                (fld "ipv4" "ttl" <=: const ~width:8 1)
                [ drop ]
                [ if_ (valid "vlan") [ apply "vlan_route" ] [ apply "ipv4_lpm" ] ];
            ]
            [ drop ];
        ];
      p_egress = [];
      p_deparser = [ "eth"; "vlan"; "ipv4" ];
      p_counters = [ "routed"; "route_miss" ];
        p_registers = [];
      p_verify_ipv4_checksum = true;
      p_update_ipv4_checksum = true;
    }
  in
  let vid v = vint ~width:12 v in
  let entries =
    [
      ("vlan_route",
       Entry.make
         ~keys:[ Entry.exact (vid 10); Entry.lpm (ip 10 0 0 0) 8 ]
         ~action:"route" ~args:[ port 1; mac 0x0A0000000001L ] ());
      ("vlan_route",
       Entry.make
         ~keys:[ Entry.exact (vid 20); Entry.lpm (ip 10 0 0 0) 8 ]
         ~action:"route" ~args:[ port 2; mac 0x0A0000000002L ] ());
      ("ipv4_lpm",
       Entry.make ~keys:[ Entry.lpm (ip 10 0 0 0) 8 ] ~action:"route"
         ~args:[ port 3; mac 0x0A0000000003L ] ());
    ]
  in
  { program; entries; description = "802.1Q-aware router: (vid, dst) routing" }

(* ------------------------------------------------------------------ *)
(* calc: in-network compute                                            *)
(* ------------------------------------------------------------------ *)

let calc =
  let calc_h = header "calcq" [ bit 8 "op"; bit 32 "a"; bit 32 "b"; bit 32 "result" ] in
  let res e = set_field "calcq" "result" e in
  let opcode n = fld "calcq" "op" ==: const ~width:8 n in
  let a = fld "calcq" "a" and b = fld "calcq" "b" in
  let program =
    {
      Ast.p_name = "calc";
      p_headers = [ eth_h; calc_h ];
      p_metadata = [ bit 48 "tmp_mac" ];
      p_parser =
        [
          state "start" ~extracts:[ "eth" ]
            (select
               [ fld "eth" "ethertype" ]
               [ case (et ethertype_calc) (Ast.To_state "parse_calc") ]
               ~default:Ast.To_reject);
          state "parse_calc" ~extracts:[ "calcq" ] accept;
        ];
      p_actions = [];
      p_tables = [];
      p_ingress =
        [
          if_ (opcode 1) [ res (a +: b) ]
            [
              if_ (opcode 2) [ res (a -: b) ]
                [
                  if_ (opcode 3) [ res (band a b) ]
                    [
                      if_ (opcode 4) [ res (bor a b) ]
                        [ if_ (opcode 5) [ res (bxor a b) ] [ res (const ~width:32 0) ] ];
                    ];
                ];
            ];
          (* reflect to sender *)
          set_meta "tmp_mac" (fld "eth" "dst");
          set_field "eth" "dst" (fld "eth" "src");
          set_field "eth" "src" (meta "tmp_mac");
          set_std Ast.Egress_spec (std Ast.Ingress_port);
          count "calc_ops";
        ];
      p_egress = [];
      p_deparser = [ "eth"; "calcq" ];
      p_counters = [ "calc_ops" ];
        p_registers = [];
      p_verify_ipv4_checksum = false;
      p_update_ipv4_checksum = false;
    }
  in
  { program; entries = [];
    description = "in-network compute: opcode/operand header evaluated and reflected" }

(* ------------------------------------------------------------------ *)
(* reflector                                                           *)
(* ------------------------------------------------------------------ *)

let reflector =
  {
    program =
      {
        Ast.p_name = "reflector";
        p_headers = [ eth_h ];
        p_metadata = [];
        p_parser = [ state "start" ~extracts:[ "eth" ] accept ];
        p_actions = [];
        p_tables = [];
        p_ingress = [ set_std Ast.Egress_spec (std Ast.Ingress_port) ];
        p_egress = [];
        p_deparser = [ "eth" ];
        p_counters = [];
        p_registers = [];
        p_verify_ipv4_checksum = false;
        p_update_ipv4_checksum = false;
      };
    entries = [];
    description = "accept everything, send back out the ingress port";
  }

(* ------------------------------------------------------------------ *)
(* ipv6_router                                                         *)
(* ------------------------------------------------------------------ *)

let ipv6_h =
  header "ipv6"
    [
      bit 4 "version"; bit 8 "traffic_class"; bit 20 "flow_label"; bit 16 "payload_len";
      bit 8 "next_header"; bit 8 "hop_limit"; bit 64 "src_hi"; bit 64 "src_lo";
      bit 64 "dst_hi"; bit 64 "dst_lo";
    ]

let ipv6_router =
  let program =
    {
      Ast.p_name = "ipv6_router";
      p_headers = [ eth_h; ipv6_h ];
      p_metadata = [];
      p_parser =
        [
          state "start" ~extracts:[ "eth" ]
            (select
               [ fld "eth" "ethertype" ]
               [ case (et 0x86DD) (Ast.To_state "parse_ipv6") ]
               ~default:Ast.To_reject);
          state "parse_ipv6" ~extracts:[ "ipv6" ]
            (select
               [ fld "ipv6" "version" ]
               [ case (vint ~width:4 6) Ast.To_accept ]
               ~default:Ast.To_reject);
        ];
      p_actions =
        [
          action "set_nexthop"
            [ bit 9 "out_port"; bit 48 "dmac" ]
            [
              set_std Ast.Egress_spec (param "out_port");
              set_field "eth" "src" (fld "eth" "dst");
              set_field "eth" "dst" (param "dmac");
              set_field "ipv6" "hop_limit" (fld "ipv6" "hop_limit" -: const ~width:8 1);
              count "ipv6_routed";
            ];
          action "drop_packet" [] [ drop; count "ipv6_miss" ];
        ];
      p_tables =
        [
          (* 128-bit addresses are modelled as hi/lo 64-bit halves; routing
             prefixes up to /64 live entirely in the hi half *)
          table "ipv6_lpm"
            [ (fld "ipv6" "dst_hi", Ast.Lpm) ]
            [ "set_nexthop"; "drop_packet" ]
            ~default:"drop_packet" ();
        ];
      p_ingress =
        [
          if_ (valid "ipv6")
            [
              if_
                (fld "ipv6" "hop_limit" <=: const ~width:8 1)
                [ drop; count "hop_expired" ]
                [ apply "ipv6_lpm" ];
            ]
            [ drop ];
        ];
      p_egress = [];
      p_deparser = [ "eth"; "ipv6" ];
      p_counters = [ "ipv6_routed"; "ipv6_miss"; "hop_expired" ];
      p_registers = [];
      p_verify_ipv4_checksum = false (* IPv6 has no header checksum *);
      p_update_ipv4_checksum = false;
    }
  in
  let v6 v = Value.make ~width:64 v in
  let entries =
    [
      ("ipv6_lpm",
       Entry.make
         ~keys:[ Entry.lpm (v6 0x20010DB8_00000000L) 32 ]
         ~action:"set_nexthop"
         ~args:[ port 1; mac 0x0A0000000001L ] ());
      ("ipv6_lpm",
       Entry.make
         ~keys:[ Entry.lpm (v6 0x20010DB8_0001_0000L) 48 ]
         ~action:"set_nexthop"
         ~args:[ port 2; mac 0x0A0000000002L ] ());
      ("ipv6_lpm",
       Entry.make
         ~keys:[ Entry.lpm (v6 0xFC00_0000_0000_0000L) 7 ]
         ~action:"set_nexthop"
         ~args:[ port 3; mac 0x0A0000000003L ] ());
    ]
  in
  { program; entries;
    description = "IPv6 router: LPM over the high 64 address bits, hop-limit handling" }

(* ------------------------------------------------------------------ *)
(* rate_limiter: stateful per-port packet budget                       *)
(* ------------------------------------------------------------------ *)

let rate_limiter =
  let program =
    {
      Ast.p_name = "rate_limiter";
      p_headers = [ eth_h; ipv4_h ];
      p_metadata = [ bit 32 "cnt"; bit 32 "limit" ];
      p_parser = router_parser;
      p_actions =
        [
          action "set_limit" [ bit 32 "allowed" ] [ set_meta "limit" (param "allowed") ];
          action "set_nexthop"
            [ bit 9 "out_port"; bit 48 "dmac" ]
            [
              set_std Ast.Egress_spec (param "out_port");
              set_field "eth" "src" (fld "eth" "dst");
              set_field "eth" "dst" (param "dmac");
              set_field "ipv4" "ttl" (fld "ipv4" "ttl" -: const ~width:8 1);
            ];
          action "drop_packet" [] [ drop ];
        ];
      p_tables =
        [
          table "port_policy"
            [ (std Ast.Ingress_port, Ast.Exact) ]
            [ "set_limit" ]
            ~default:"set_limit"
            ~default_args:[ Value.make ~width:32 0xFFFFFFFFL ]
            ();
          table "ipv4_lpm"
            [ (fld "ipv4" "dst", Ast.Lpm) ]
            [ "set_nexthop"; "drop_packet" ]
            ~default:"drop_packet" ();
        ];
      p_ingress =
        [
          if_ (valid "ipv4")
            [
              if_
                (fld "ipv4" "ttl" <=: const ~width:8 1)
                [ drop ]
                [
                  apply "port_policy";
                  Ast.RegRead (Ast.LMeta "cnt", "port_counts", std Ast.Ingress_port);
                  if_
                    (meta "cnt" >=: meta "limit")
                    [ drop; count "rate_limited" ]
                    [
                      Ast.RegWrite
                        ("port_counts", std Ast.Ingress_port,
                         meta "cnt" +: const ~width:32 1);
                      apply "ipv4_lpm";
                    ];
                ];
            ]
            [ drop ];
        ];
      p_egress = [];
      p_deparser = [ "eth"; "ipv4" ];
      p_counters = [ "rate_limited" ];
      p_registers = [ { Ast.r_name = "port_counts"; r_width = 32; r_size = 512 } ];
      p_verify_ipv4_checksum = true;
      p_update_ipv4_checksum = true;
    }
  in
  let entries =
    router_entries
    @ [
        ("port_policy",
         Entry.make ~keys:[ Entry.exact (port 0) ] ~action:"set_limit"
           ~args:[ vint ~width:32 3 ] ());
        ("port_policy",
         Entry.make ~keys:[ Entry.exact (port 510) ] ~action:"set_limit"
           ~args:[ vint ~width:32 5 ] ());
      ]
  in
  { program; entries;
    description =
      "stateful per-port packet budget in a register array; over-budget ports drop" }

(* ------------------------------------------------------------------ *)
(* kv_cache: NetCache-style in-network key-value cache                 *)
(* ------------------------------------------------------------------ *)

let kv_cache =
  let kv_h = header "kvh" [ bit 8 "op"; bit 16 "key"; bit 32 "value"; bit 8 "status" ] in
  let idx = Ast.Slice (fld "kvh" "key", 7, 0) in
  let program =
    {
      Ast.p_name = "kv_cache";
      p_headers = [ eth_h; kv_h ];
      p_metadata = [ bit 1 "hit"; bit 48 "tmp_mac" ];
      p_parser =
        [
          state "start" ~extracts:[ "eth" ]
            (select
               [ fld "eth" "ethertype" ]
               [ case (et 0x1235) (Ast.To_state "parse_kv") ]
               ~default:Ast.To_reject);
          state "parse_kv" ~extracts:[ "kvh" ] accept;
        ];
      p_actions = [];
      p_tables = [];
      p_ingress =
        [
          if_
            (fld "kvh" "op" ==: const ~width:8 1)
            (* GET *)
            [
              Ast.RegRead (Ast.LMeta "hit", "kv_present", idx);
              if_
                (meta "hit" ==: const ~width:1 1)
                [
                  Ast.RegRead (Ast.LField ("kvh", "value"), "kv_store", idx);
                  set_field "kvh" "status" (const ~width:8 1);
                  count "cache_hit";
                ]
                [ set_field "kvh" "status" (const ~width:8 0); count "cache_miss" ];
            ]
            [
              if_
                (fld "kvh" "op" ==: const ~width:8 2)
                (* PUT *)
                [
                  Ast.RegWrite ("kv_store", idx, fld "kvh" "value");
                  Ast.RegWrite ("kv_present", idx, const ~width:1 1);
                  set_field "kvh" "status" (const ~width:8 1);
                  count "cache_put";
                ]
                [ set_field "kvh" "status" (const ~width:8 0xFF) ];
            ];
          (* reflect to the requester *)
          set_meta "tmp_mac" (fld "eth" "dst");
          set_field "eth" "dst" (fld "eth" "src");
          set_field "eth" "src" (meta "tmp_mac");
          set_std Ast.Egress_spec (std Ast.Ingress_port);
        ];
      p_egress = [];
      p_deparser = [ "eth"; "kvh" ];
      p_counters = [ "cache_hit"; "cache_miss"; "cache_put" ];
      p_registers =
        [
          { Ast.r_name = "kv_store"; r_width = 32; r_size = 256 };
          { Ast.r_name = "kv_present"; r_width = 1; r_size = 256 };
        ];
      p_verify_ipv4_checksum = false;
      p_update_ipv4_checksum = false;
    }
  in
  { program; entries = [];
    description =
      "NetCache-style in-network key-value cache: GET/PUT over register arrays, \
       replies reflected to the requester" }

let all =
  [
    basic_router; router_split; buggy_router; parser_guard; l2_switch; acl_firewall;
    mpls_tunnel; vlan_router; ipv6_router; calc; reflector; rate_limiter; kv_cache;
  ]

let find name =
  List.find_opt (fun b -> String.equal b.program.Ast.p_name name) all
