type mkey =
  | Exact_v of Value.t
  | Lpm_v of Value.t * int
  | Ternary_v of Value.t * Value.t

type t = { priority : int; keys : mkey list; action : string; args : Value.t list }

let make ?(priority = 0) ~keys ~action ?(args = []) () = { priority; keys; action; args }

let exact v = Exact_v v

let lpm v len = Lpm_v (v, len)

let ternary v m = Ternary_v (v, m)

let key_matches ?(degrade_ternary_to_exact = false) mk v =
  match mk with
  | Exact_v e -> Value.to_int64 e = Value.to_int64 v
  | Lpm_v (e, len) -> Value.matches_prefix v ~value:(Value.to_int64 e) ~prefix_len:len
  | Ternary_v (e, m) ->
      if degrade_ternary_to_exact then Value.to_int64 e = Value.to_int64 v
      else Value.matches_mask v ~value:(Value.to_int64 e) ~mask:(Value.to_int64 m)

let matches ?degrade_ternary_to_exact t vs =
  List.length t.keys = List.length vs
  && List.for_all2 (fun mk v -> key_matches ?degrade_ternary_to_exact mk v) t.keys vs

let popcount v =
  let rec go acc v = if v = 0L then acc else go (acc + 1) Int64.(logand v (sub v 1L)) in
  go 0 v

let specificity t =
  List.fold_left
    (fun acc mk ->
      acc
      +
      match mk with
      | Exact_v v -> Value.width v
      | Lpm_v (_, len) -> len
      | Ternary_v (_, m) -> popcount (Value.to_int64 m))
    0 t.keys

let select ?degrade_ternary_to_exact entries vs =
  let best = ref None in
  List.iter
    (fun e ->
      if matches ?degrade_ternary_to_exact e vs then
        match !best with
        | None -> best := Some e
        | Some b ->
            if
              e.priority > b.priority
              || (e.priority = b.priority && specificity e > specificity b)
            then best := Some e)
    entries;
  !best

let pp_mkey ppf = function
  | Exact_v v -> Format.fprintf ppf "=%a" Value.pp v
  | Lpm_v (v, len) -> Format.fprintf ppf "%a/%d" Value.pp v len
  | Ternary_v (v, m) -> Format.fprintf ppf "%a&&&%a" Value.pp v Value.pp m

let pp ppf t =
  Format.fprintf ppf "@[prio=%d [%a] -> %s(%a)@]" t.priority
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_mkey)
    t.keys t.action
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    t.args
