type hinst = {
  decl : Ast.header_decl;
  mutable hvalid : bool;
  fields : (string, Value.t) Hashtbl.t;
}

type t = {
  prog : Ast.program;
  headers : (string, hinst) Hashtbl.t;
  meta : (string, Value.t) Hashtbl.t;
  std : (Ast.std_field, Value.t) Hashtbl.t;
  mutable params : (string * Value.t) list;
  mutable pl : Bitutil.Bitstring.t;
}

let create prog =
  let headers = Hashtbl.create 8 in
  List.iter
    (fun (hd : Ast.header_decl) ->
      Hashtbl.add headers hd.h_name { decl = hd; hvalid = false; fields = Hashtbl.create 8 })
    prog.Ast.p_headers;
  { prog; headers; meta = Hashtbl.create 8; std = Hashtbl.create 4; params = [];
    pl = Bitutil.Bitstring.empty }

let program t = t.prog

let reset t =
  Hashtbl.iter
    (fun _ hi ->
      hi.hvalid <- false;
      Hashtbl.reset hi.fields)
    t.headers;
  Hashtbl.reset t.meta;
  Hashtbl.reset t.std;
  t.params <- [];
  t.pl <- Bitutil.Bitstring.empty

let hinst t name =
  match Hashtbl.find_opt t.headers name with
  | Some hi -> hi
  | None -> invalid_arg (Printf.sprintf "Env: undeclared header %s" name)

let is_valid t name = (hinst t name).hvalid

let set_valid t name = (hinst t name).hvalid <- true

let set_invalid t name =
  let hi = hinst t name in
  hi.hvalid <- false;
  Hashtbl.reset hi.fields

let field_decl (hi : hinst) fname =
  match Ast.find_field hi.decl fname with
  | Some f -> f
  | None ->
      invalid_arg (Printf.sprintf "Env: undeclared field %s.%s" hi.decl.Ast.h_name fname)

let get_field t hname fname =
  let hi = hinst t hname in
  let fd = field_decl hi fname in
  if not hi.hvalid then Value.zero fd.Ast.f_width
  else
    match Hashtbl.find_opt hi.fields fname with
    | Some v -> v
    | None -> Value.zero fd.Ast.f_width

let set_field t hname fname v =
  let hi = hinst t hname in
  let fd = field_decl hi fname in
  if hi.hvalid then
    Hashtbl.replace hi.fields fname (Value.make ~width:fd.Ast.f_width (Value.to_int64 v))

let meta_decl t name =
  match Ast.find_meta t.prog name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Env: undeclared metadata %s" name)

let get_meta t name =
  let fd = meta_decl t name in
  match Hashtbl.find_opt t.meta name with Some v -> v | None -> Value.zero fd.Ast.f_width

let set_meta t name v =
  let fd = meta_decl t name in
  Hashtbl.replace t.meta name (Value.make ~width:fd.Ast.f_width (Value.to_int64 v))

let get_std t sf =
  match Hashtbl.find_opt t.std sf with
  | Some v -> v
  | None -> Value.zero (Ast.std_width sf)

let set_std t sf v =
  Hashtbl.replace t.std sf (Value.make ~width:(Ast.std_width sf) (Value.to_int64 v))

let dropped t = Value.to_int (get_std t Ast.Egress_spec) = Stdmeta.drop_port

let with_params t bindings f =
  let saved = t.params in
  t.params <- bindings @ saved;
  Fun.protect ~finally:(fun () -> t.params <- saved) f

let get_param t name =
  match List.assoc_opt name t.params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Env: unbound action parameter %s" name)

let payload t = t.pl

let set_payload t b = t.pl <- b

let valid_headers t =
  List.filter_map
    (fun (hd : Ast.header_decl) -> if (hinst t hd.h_name).hvalid then Some hd.h_name else None)
    t.prog.Ast.p_headers

let snapshot_fields t =
  List.concat_map
    (fun (hd : Ast.header_decl) ->
      let hi = hinst t hd.h_name in
      if not hi.hvalid then []
      else
        List.map
          (fun (f : Ast.field_decl) -> (hd.h_name, f.f_name, get_field t hd.h_name f.f_name))
          hd.h_fields)
    t.prog.Ast.p_headers
