let drop_port = 511

let error_none = 0
let error_reject = 1
let error_underrun = 2
let error_checksum = 3

let error_name = function
  | 0 -> "NoError"
  | 1 -> "Reject"
  | 2 -> "PacketTooShort"
  | 3 -> "ChecksumError"
  | n -> Printf.sprintf "Error(%d)" n
