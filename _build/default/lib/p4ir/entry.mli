(** Table entries: the control-plane-installed rules matched by tables. *)

type mkey =
  | Exact_v of Value.t
  | Lpm_v of Value.t * int  (** value, prefix length *)
  | Ternary_v of Value.t * Value.t  (** value, mask *)

type t = {
  priority : int;  (** higher wins among ternary matches *)
  keys : mkey list;  (** one per table key, in key order *)
  action : string;
  args : Value.t list;  (** bound to the action's parameters *)
}

val make : ?priority:int -> keys:mkey list -> action:string -> ?args:Value.t list -> unit -> t

val exact : Value.t -> mkey
val lpm : Value.t -> int -> mkey
val ternary : Value.t -> Value.t -> mkey

val key_matches : ?degrade_ternary_to_exact:bool -> mkey -> Value.t -> bool
(** [degrade_ternary_to_exact] models a compiler quirk: ternary keys are
    matched as exact on the value, ignoring the mask. Default false. *)

val matches : ?degrade_ternary_to_exact:bool -> t -> Value.t list -> bool

val specificity : t -> int
(** Tie-break score: exact = key width, LPM = prefix length, ternary =
    mask popcount; summed over keys. Longest-prefix-wins falls out of it. *)

val select :
  ?degrade_ternary_to_exact:bool -> t list -> Value.t list -> t option
(** Best-matching entry: maximum (priority, specificity), earlier install
    order breaking remaining ties. The list is in install order. *)

val pp_mkey : Format.formatter -> mkey -> unit
val pp : Format.formatter -> t -> unit
