(** Concise constructors for building IR programs in OCaml.

    Used by {!Programs} and by tests; keeps program definitions close to
    P4 source in shape. *)

open Ast

let bit width name : field_decl = { f_name = name; f_width = width }

let header name fields : header_decl = { h_name = name; h_fields = fields }

(* expressions *)

let vint ~width v = Value.of_int ~width v

let const ~width v : expr = Const (Value.of_int ~width v)

let const64 ~width v : expr = Const (Value.make ~width v)

let fld h f : expr = Field (h, f)

let meta m : expr = Meta m

let std sf : expr = Std sf

let param p : expr = Param p

let valid h : expr = Valid h

let ( ==: ) a b : expr = Bin (Eq, a, b)
let ( <>: ) a b : expr = Bin (Neq, a, b)
let ( <: ) a b : expr = Bin (Lt, a, b)
let ( <=: ) a b : expr = Bin (Le, a, b)
let ( >: ) a b : expr = Bin (Gt, a, b)
let ( >=: ) a b : expr = Bin (Ge, a, b)
let ( +: ) a b : expr = Bin (Add, a, b)
let ( -: ) a b : expr = Bin (Sub, a, b)
let ( &&: ) a b : expr = Bin (LAnd, a, b)
let ( ||: ) a b : expr = Bin (LOr, a, b)
let band a b : expr = Bin (BAnd, a, b)
let bor a b : expr = Bin (BOr, a, b)
let bxor a b : expr = Bin (BXor, a, b)
let lnot e : expr = Un (LNot, e)

(* statements *)

let set_field h f e : stmt = Assign (LField (h, f), e)

let set_meta m e : stmt = Assign (LMeta m, e)

let set_std sf e : stmt = Assign (LStd sf, e)

let set_egress e : stmt = Assign (LStd Egress_spec, e)

let egress_port port : stmt = Assign (LStd Egress_spec, const ~width:9 port)

let if_ cond then_ else_ : stmt = If (cond, then_, else_)

let when_ cond then_ : stmt = If (cond, then_, [])

let apply t : stmt = Apply t

let drop : stmt = MarkToDrop

let count c : stmt = Count c

let assert_ cond msg : stmt = Assert (cond, msg)

(* actions and tables *)

let action name params body : action = { a_name = name; a_params = params; a_body = body }

let table ?(size = 1024) name keys actions ~default ?(default_args = []) () : table =
  {
    t_name = name;
    t_keys = keys;
    t_actions = actions;
    t_default_action = default;
    t_default_args = default_args;
    t_size = size;
  }

(* parser *)

let state name ?(extracts = []) transition : parser_state =
  { ps_name = name; ps_extracts = extracts; ps_transition = transition }

let goto s : transition = Direct (To_state s)

let accept : transition = Direct To_accept

let reject : transition = Direct To_reject

let select keys cases ~default : transition = Select (keys, cases, default)

let case ?mask v target : select_case =
  { sc_keysets = [ (v, mask) ]; sc_target = target }

let case_n keysets target : select_case = { sc_keysets = keysets; sc_target = target }
