(** Per-packet runtime state: header instances, user metadata, standard
    metadata and (during action execution) action parameters.

    Both the reference interpreter and the compiled device pipeline operate
    on this state. Reading a field of an invalid header yields zero — the
    P4 spec leaves it undefined; we pick the common hardware behaviour and
    rely on it consistently in both executors. *)

type t

val create : Ast.program -> t

val program : t -> Ast.program

val reset : t -> unit
(** Invalidate all headers, zero all metadata, clear the payload. *)

(* Headers *)

val is_valid : t -> string -> bool
val set_valid : t -> string -> unit
val set_invalid : t -> string -> unit

val get_field : t -> string -> string -> Value.t
(** @raise Invalid_argument for undeclared header or field. *)

val set_field : t -> string -> string -> Value.t -> unit
(** Truncates/pads the value to the declared field width. Setting a field
    of an invalid header is a no-op (matching hardware write-enable
    gating). *)

(* User metadata *)

val get_meta : t -> string -> Value.t
val set_meta : t -> string -> Value.t -> unit

(* Standard metadata *)

val get_std : t -> Ast.std_field -> Value.t
val set_std : t -> Ast.std_field -> Value.t -> unit

val dropped : t -> bool
(** egress_spec = drop port. *)

(* Action parameters (dynamically scoped during action execution) *)

val with_params : t -> (string * Value.t) list -> (unit -> 'a) -> 'a
val get_param : t -> string -> Value.t

(* Unparsed payload carried through the pipeline *)

val payload : t -> Bitutil.Bitstring.t
val set_payload : t -> Bitutil.Bitstring.t -> unit

val valid_headers : t -> string list
(** Declaration order. *)

val snapshot_fields : t -> (string * string * Value.t) list
(** All (header, field, value) triples of valid headers, for diffing in
    comparison tests. *)
