(** Evaluation of IR expressions and execution of IR statements against an
    {!Env}.

    Shared by the reference interpreter (spec semantics, {!spec_hooks}) and
    the compiled device pipeline, which passes hooks describing the
    compiler's deviations from the spec (the SDNet quirk model). Keeping a
    single executor parameterized by hooks guarantees that any observable
    difference between interpreter and device is due to the hooks — the
    property NetDebug detects. *)

type phase = Ingress | Egress

type hooks = {
  shift_amount : int -> int;
      (** transformation of shift amounts; identity in the spec, masking in
          targets with narrow shifters *)
  drop_effective : phase -> bool;
      (** whether [MarkToDrop] works in the given phase; always true in the
          spec *)
  degrade_ternary_to_exact : bool;  (** ternary keys matched as exact *)
  table_always_miss : string -> bool;
      (** lookup-memory fault: the named table misses on every key; always
          false in the spec *)
}

val spec_hooks : hooks

type ctx

val make_ctx :
  ?hooks:hooks ->
  ?on_count:(string -> unit) ->
  ?on_assert:(bool -> string -> unit) ->
  ?on_table:(table:string -> hit:bool -> action:string -> unit) ->
  ?regs:Regstate.t ->
  env:Env.t ->
  runtime:Runtime.t ->
  unit ->
  ctx
(** [regs] defaults to a fresh zeroed store for the env's program; pass a
    long-lived one to model persistent hardware state. *)

val env : ctx -> Env.t

val set_phase : ctx -> phase -> unit

val eval : ctx -> Ast.expr -> Value.t
(** @raise Invalid_argument on ill-typed expressions the typechecker would
    reject (undeclared names, width mismatches in concat, …). *)

val run_stmts : ctx -> Ast.stmt list -> unit

val run_action : ctx -> string -> Value.t list -> unit
(** Execute a declared action with the given arguments. *)

val apply_table : ctx -> string -> unit
(** Evaluate the table's keys, select the best entry from the runtime state
    (or the default action on miss) and execute it. *)
