type t = { width : int; v : int64 }

let mask_of width =
  if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L

let make ~width v =
  if width < 1 || width > 64 then invalid_arg "Value.make: width";
  { width; v = Int64.logand v (mask_of width) }

let of_int ~width i = make ~width (Int64.of_int i)

let zero w = make ~width:w 0L

let ones w = make ~width:w (-1L)

let width t = t.width

let to_int64 t = t.v

let to_int t =
  if Int64.compare t.v 0L < 0 || Int64.compare t.v (Int64.of_int max_int) > 0 then
    invalid_arg "Value.to_int: overflow";
  Int64.to_int t.v

let is_zero t = t.v = 0L

let tru = { width = 1; v = 1L }

let fls = { width = 1; v = 0L }

let of_bool b = if b then tru else fls

let to_bool t = t.v <> 0L

let lift2 f a b = make ~width:a.width (f a.v b.v)

let add a b = lift2 Int64.add a b
let sub a b = lift2 Int64.sub a b
let mul a b = lift2 Int64.mul a b
let logand a b = lift2 Int64.logand a b
let logor a b = lift2 Int64.logor a b
let logxor a b = lift2 Int64.logxor a b

let lognot a = make ~width:a.width (Int64.lognot a.v)

let shift_left a n =
  if n >= 64 then zero a.width else make ~width:a.width (Int64.shift_left a.v n)

let shift_right a n =
  (* values are normalized (high bits zero), so logical shift is unsigned *)
  if n >= 64 then zero a.width else make ~width:a.width (Int64.shift_right_logical a.v n)

let compare_unsigned a b = Int64.unsigned_compare a.v b.v

let eq a b = of_bool (a.v = b.v)
let neq a b = of_bool (a.v <> b.v)
let lt a b = of_bool (compare_unsigned a b < 0)
let le a b = of_bool (compare_unsigned a b <= 0)
let gt a b = of_bool (compare_unsigned a b > 0)
let ge a b = of_bool (compare_unsigned a b >= 0)

let slice t ~msb ~lsb =
  if lsb < 0 || msb < lsb || msb >= t.width then invalid_arg "Value.slice";
  make ~width:(msb - lsb + 1) (Int64.shift_right_logical t.v lsb)

let concat a b =
  if a.width + b.width > 64 then invalid_arg "Value.concat: width";
  { width = a.width + b.width; v = Int64.logor (Int64.shift_left a.v b.width) b.v }

let matches_mask t ~value ~mask =
  Int64.logand t.v mask = Int64.logand value mask

let matches_prefix t ~value ~prefix_len =
  if prefix_len = 0 then true
  else begin
    let shift = t.width - prefix_len in
    if shift < 0 then invalid_arg "Value.matches_prefix";
    Int64.shift_right_logical t.v shift
    = Int64.shift_right_logical (Int64.logand value (mask_of t.width)) shift
  end

let equal a b = a.width = b.width && a.v = b.v

let pp ppf t = Format.fprintf ppf "%dw0x%Lx" t.width t.v
