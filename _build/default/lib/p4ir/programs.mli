(** Library of example data-plane programs.

    Each bundle pairs an IR program with a workable set of control-plane
    entries, so tests, examples and experiments can deploy a program in one
    call. All programs typecheck ({!Typecheck.check}); the test suite
    enforces this. *)

type bundle = {
  program : Ast.program;
  entries : (string * Entry.t) list;  (** (table, entry) install list *)
  description : string;
}

(* Shared header declarations (field layout matches the [packet] library). *)
val eth_h : Ast.header_decl
val vlan_h : Ast.header_decl
val ipv4_h : Ast.header_decl
val tcp_h : Ast.header_decl
val udp_h : Ast.header_decl
val mpls_h : Ast.header_decl

val basic_router : bundle
(** IPv4 LPM router; rejects non-IPv4 at the parser, verifies the IPv4
    checksum, drops TTL=0, decrements TTL on forward. *)

val router_split : bundle
(** Same forwarding function as {!basic_router}, specified with two tables
    (LPM -> next-hop id, next-hop id -> port/MAC). The "alternative
    specification" for the comparison use-case. *)

val buggy_router : bundle
(** {!basic_router} with a seeded functional bug: TTL is not decremented.
    Used by the functional-testing use-case. *)

val parser_guard : bundle
(** The Section-4 case-study program: the parser rejects unknown
    EtherTypes and non-version-4 IPv4; a default route forwards everything
    else to the next hop. Under the SDNet [reject] quirk, packets that
    should die in the parser are forwarded — the paper's headline bug. *)

val l2_switch : bundle
(** MAC learning switch skeleton: source-MAC hit check + destination-MAC
    exact forwarding, unknown destinations dropped and counted. *)

val acl_firewall : bundle
(** Eth/IPv4/TCP|UDP parser, ternary ACL (src, dst, proto, l4 dst port)
    then LPM forwarding. *)

val mpls_tunnel : bundle
(** MPLS label edge/transit: push on IPv4 ingress, swap mid-path, pop at
    egress. Exercises setValid/setInvalid and deparser ordering. *)

val vlan_router : bundle
(** 802.1Q-aware router: VLAN-tagged IPv4 routed per (vid, dst). *)

val ipv6_router : bundle
(** IPv6 LPM router. 128-bit addresses live in 64-bit hi/lo field pairs
    (the IR's width limit); prefixes up to /64 match on the high half. *)

val calc : bundle
(** In-network compute example: a custom header with opcode/operands is
    evaluated in the pipeline and reflected to the sender — the
    "in-network computing" workload class that motivates the paper. *)

val reflector : bundle
(** Minimal program: accept everything, send back out the ingress port. *)

val rate_limiter : bundle
(** Stateful per-port packet budget held in a register array: each port may
    send [limit] packets (from the [port_policy] table); the rest drop.
    Exercises RegRead/RegWrite with persistent device state. *)

val kv_cache : bundle
(** NetCache-style in-network key-value cache: a custom GET/PUT header
    served from register arrays, replies reflected to the requester — the
    in-network-computing workload class that motivates the paper. *)

val all : bundle list
(** Every bundle above, in a stable order. *)

val find : string -> bundle option
(** Look up by program name. *)
