(** Execution of the parser state machine over raw packet bits.

    Used by the interpreter with {!spec_hooks} (reject means drop, as the
    P4-16 specification requires) and by the compiled device with hooks
    derived from the SDNet quirk model — in particular
    [on_reject = `Continue], reproducing the real SDNet bug the paper
    discovered: packets that reach [reject] proceed through the pipeline
    instead of being dropped. *)

type hooks = {
  on_reject : [ `Drop | `Continue ];
  verify_checksum : bool;
      (** gate for the architecture-level IPv4 checksum verification
          requested by [p_verify_ipv4_checksum] *)
  max_steps : int;  (** parser state-visit budget (loop protection) *)
}

val spec_hooks : hooks

type outcome = {
  accepted : bool;  (** false means the packet is dropped at the parser *)
  error : int;  (** a {!Stdmeta} error code; [error_none] when clean *)
  states_visited : string list;  (** in visit order, for tracing *)
}

val run : ?hooks:hooks -> Exec.ctx -> Bitutil.Bitstring.t -> outcome
(** Parse the bits into the context's environment: extracted headers become
    valid with their field values set, [Parser_error] and [Packet_length]
    standard metadata are set, and the unconsumed remainder becomes the
    payload. *)
