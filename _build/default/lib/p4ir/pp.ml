open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | LAnd -> "&&"
  | LOr -> "||"

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Field (h, f) -> Format.fprintf ppf "hdr.%s.%s" h f
  | Meta m -> Format.fprintf ppf "meta.%s" m
  | Std sf -> Format.fprintf ppf "standard_metadata.%s" (std_name sf)
  | Param p -> Format.pp_print_string ppf p
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Un (BNot, e) -> Format.fprintf ppf "~%a" pp_expr e
  | Un (LNot, e) -> Format.fprintf ppf "!%a" pp_expr e
  | Slice (e, msb, lsb) -> Format.fprintf ppf "%a[%d:%d]" pp_expr e msb lsb
  | Concat (a, b) -> Format.fprintf ppf "(%a ++ %a)" pp_expr a pp_expr b
  | Valid h -> Format.fprintf ppf "hdr.%s.isValid()" h

let pp_lvalue ppf = function
  | LField (h, f) -> Format.fprintf ppf "hdr.%s.%s" h f
  | LMeta m -> Format.fprintf ppf "meta.%s" m
  | LStd sf -> Format.fprintf ppf "standard_metadata.%s" (std_name sf)

let rec pp_stmt ppf = function
  | Nop -> Format.fprintf ppf "nop;"
  | Assign (lv, e) -> Format.fprintf ppf "%a = %a;" pp_lvalue lv pp_expr e
  | If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_stmts t
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
        pp_stmts t pp_stmts e
  | Apply t -> Format.fprintf ppf "%s.apply();" t
  | SetValid h -> Format.fprintf ppf "hdr.%s.setValid();" h
  | SetInvalid h -> Format.fprintf ppf "hdr.%s.setInvalid();" h
  | MarkToDrop -> Format.fprintf ppf "mark_to_drop(standard_metadata);"
  | Count c -> Format.fprintf ppf "%s.count();" c
  | Assert (e, msg) -> Format.fprintf ppf "@assert(%a) // %s" pp_expr e msg
  | RegRead (lv, reg, idx) ->
      Format.fprintf ppf "%s.read(%a, (bit<32>)%a);" reg pp_lvalue lv pp_expr idx
  | RegWrite (reg, idx, v) ->
      Format.fprintf ppf "%s.write((bit<32>)%a, %a);" reg pp_expr idx pp_expr v

and pp_stmts ppf stmts =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,") pp_stmt ppf stmts

let pp_action ppf a =
  let pp_param ppf (p : field_decl) = Format.fprintf ppf "bit<%d> %s" p.f_width p.f_name in
  Format.fprintf ppf "@[<v 2>action %s(%a) {@,%a@]@,}" a.a_name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_param)
    a.a_params pp_stmts a.a_body

let match_kind_str = function Exact -> "exact" | Lpm -> "lpm" | Ternary -> "ternary"

let pp_table ppf t =
  Format.fprintf ppf "@[<v 2>table %s {@," t.t_name;
  Format.fprintf ppf "@[<v 2>key = {@,%a@]@,}@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
       (fun ppf (e, k) -> Format.fprintf ppf "%a : %s;" pp_expr e (match_kind_str k)))
    t.t_keys;
  Format.fprintf ppf "actions = { %s };@," (String.concat "; " t.t_actions);
  Format.fprintf ppf "default_action = %s;@," t.t_default_action;
  Format.fprintf ppf "size = %d;@]@,}" t.t_size

let pp_target ppf = function
  | To_state s -> Format.pp_print_string ppf s
  | To_accept -> Format.pp_print_string ppf "accept"
  | To_reject -> Format.pp_print_string ppf "reject"

let pp_parser_state ppf s =
  Format.fprintf ppf "@[<v 2>state %s {@," s.ps_name;
  List.iter (fun h -> Format.fprintf ppf "packet.extract(hdr.%s);@," h) s.ps_extracts;
  (match s.ps_transition with
  | Direct t -> Format.fprintf ppf "transition %a;" pp_target t
  | Select (keys, cases, default) ->
      Format.fprintf ppf "@[<v 2>transition select(%a) {@,"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_expr)
        keys;
      List.iter
        (fun c ->
          let pp_keyset ppf (v, m) =
            match m with
            | None -> Value.pp ppf v
            | Some m -> Format.fprintf ppf "%a &&& %a" Value.pp v Value.pp m
          in
          Format.fprintf ppf "(%a): %a;@,"
            (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_keyset)
            c.sc_keysets pp_target c.sc_target)
        cases;
      Format.fprintf ppf "default: %a;@]@,}" pp_target default);
  Format.fprintf ppf "@]@,}"

let pp_program ppf p =
  Format.fprintf ppf "@[<v>// program %s@," p.p_name;
  List.iter
    (fun hd ->
      Format.fprintf ppf "@[<v 2>header %s {@,%a@]@,}@," hd.h_name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
           (fun ppf (f : field_decl) -> Format.fprintf ppf "bit<%d> %s;" f.f_width f.f_name))
        hd.h_fields)
    p.p_headers;
  if p.p_metadata <> [] then
    Format.fprintf ppf "@[<v 2>struct metadata {@,%a@]@,}@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
         (fun ppf (f : field_decl) -> Format.fprintf ppf "bit<%d> %s;" f.f_width f.f_name))
      p.p_metadata;
  List.iter
    (fun (r : register_decl) ->
      Format.fprintf ppf "register<bit<%d>>(%d) %s;@," r.r_width r.r_size r.r_name)
    p.p_registers;
  Format.fprintf ppf "@[<v 2>parser MyParser {@,%a@]@,}@,"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,") pp_parser_state)
    p.p_parser;
  List.iter (fun a -> Format.fprintf ppf "%a@," pp_action a) p.p_actions;
  List.iter (fun t -> Format.fprintf ppf "%a@," pp_table t) p.p_tables;
  Format.fprintf ppf "@[<v 2>control MyIngress {@,%a@]@,}@," pp_stmts p.p_ingress;
  Format.fprintf ppf "@[<v 2>control MyEgress {@,%a@]@,}@," pp_stmts p.p_egress;
  Format.fprintf ppf "@[<v 2>control MyDeparser {@,";
  List.iter (fun h -> Format.fprintf ppf "packet.emit(hdr.%s);@," h) p.p_deparser;
  Format.fprintf ppf "@]}@]"

let program_to_string p = Format.asprintf "%a" pp_program p
