module Bitstring = Bitutil.Bitstring

type hooks = {
  on_reject : [ `Drop | `Continue ];
  verify_checksum : bool;
  max_steps : int;
}

let spec_hooks = { on_reject = `Drop; verify_checksum = true; max_steps = 64 }

type outcome = { accepted : bool; error : int; states_visited : string list }

let extract_header env reader (hd : Ast.header_decl) =
  let width = Ast.header_width hd in
  if Bitstring.Reader.remaining reader < width then false
  else begin
    Env.set_valid env hd.h_name;
    List.iter
      (fun (f : Ast.field_decl) ->
        let v = Bitstring.Reader.read reader f.f_width in
        Env.set_field env hd.h_name f.f_name (Value.make ~width:f.f_width v))
      hd.h_fields;
    true
  end

let keyset_matches key (value, mask_opt) =
  match mask_opt with
  | None -> Value.to_int64 key = Value.to_int64 value
  | Some mask ->
      Value.matches_mask key ~value:(Value.to_int64 value) ~mask:(Value.to_int64 mask)

let select_target ctx keys cases default =
  let key_values = List.map (Exec.eval ctx) keys in
  let matching (case : Ast.select_case) =
    List.length case.sc_keysets = List.length key_values
    && List.for_all2 keyset_matches key_values case.sc_keysets
  in
  match List.find_opt matching cases with
  | Some case -> case.Ast.sc_target
  | None -> default

(* Verify the IPv4 header checksum from the extracted field values. *)
let ipv4_checksum_ok env =
  if not (Env.is_valid env "ipv4") then true
  else
    match Ast.find_header (Env.program env) "ipv4" with
    | None -> true
    | Some hd ->
        let w = Bitstring.Writer.create () in
        List.iter
          (fun (f : Ast.field_decl) ->
            Bitstring.Writer.push_int64 w ~width:f.f_width
              (Value.to_int64 (Env.get_field env "ipv4" f.f_name)))
          hd.h_fields;
        Bitutil.Checksum.valid (Bitstring.to_string (Bitstring.Writer.contents w))

let run ?(hooks = spec_hooks) ctx bits =
  let env = Exec.env ctx in
  let program = Env.program env in
  Env.set_std env Ast.Packet_length
    (Value.of_int ~width:32 (Bitstring.length bits / 8));
  let reader = Bitstring.Reader.create bits in
  let visited = ref [] in
  let finish ~accepted ~error =
    Env.set_std env Ast.Parser_error (Value.of_int ~width:4 error);
    Env.set_payload env (Bitstring.Reader.rest reader);
    { accepted; error; states_visited = List.rev !visited }
  in
  let reject error =
    match hooks.on_reject with
    | `Drop -> finish ~accepted:false ~error
    | `Continue -> finish ~accepted:true ~error
  in
  let accept () =
    if
      hooks.verify_checksum && program.Ast.p_verify_ipv4_checksum
      && not (ipv4_checksum_ok env)
    then reject Stdmeta.error_checksum
    else finish ~accepted:true ~error:Stdmeta.error_none
  in
  let rec step state_name budget =
    if budget <= 0 then reject Stdmeta.error_underrun
    else
      match Ast.find_state program state_name with
      | None -> invalid_arg (Printf.sprintf "Parse: undeclared state %s" state_name)
      | Some state ->
          visited := state.ps_name :: !visited;
          let extract_ok =
            List.for_all
              (fun hname ->
                match Ast.find_header program hname with
                | None -> invalid_arg (Printf.sprintf "Parse: undeclared header %s" hname)
                | Some hd -> extract_header env reader hd)
              state.ps_extracts
          in
          if not extract_ok then reject Stdmeta.error_underrun
          else
            let target =
              match state.ps_transition with
              | Direct t -> t
              | Select (keys, cases, default) -> select_target ctx keys cases default
            in
            (match target with
            | To_accept -> accept ()
            | To_reject -> reject Stdmeta.error_reject
            | To_state s -> step s (budget - 1))
  in
  match program.Ast.p_parser with
  | [] -> accept ()
  | start :: _ -> step start.Ast.ps_name hooks.max_steps
