(** Width-tagged bit-vector values, the runtime representation of every
    P4 field and expression result.

    Values are unsigned, 1-64 bits wide, stored in an [int64] with all bits
    above [width] guaranteed zero. Arithmetic is modulo 2^width, matching
    P4's [bit<N>] semantics. *)

type t = private { width : int; v : int64 }

val make : width:int -> int64 -> t
(** Truncates the argument to [width] bits. [1 <= width <= 64]. *)

val of_int : width:int -> int -> t

val zero : int -> t
(** [zero w] is the all-zeros value of width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones value of width [w]. *)

val width : t -> int

val to_int64 : t -> int64

val to_int : t -> int
(** @raise Invalid_argument when the value exceeds [max_int]. *)

val is_zero : t -> bool

val tru : t
(** Boolean true: width-1 value 1. *)

val fls : t
(** Boolean false: width-1 value 0. *)

val of_bool : bool -> t

val to_bool : t -> bool
(** Non-zero is true (any width). *)

(* Modular arithmetic; result width is the width of the left operand. *)
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

(* Unsigned comparisons, returning booleans as width-1 values. *)
val eq : t -> t -> t
val neq : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t

val compare_unsigned : t -> t -> int

val slice : t -> msb:int -> lsb:int -> t
(** [slice v ~msb ~lsb] is bits [msb..lsb] inclusive, width [msb-lsb+1]. *)

val concat : t -> t -> t
(** Left operand becomes the high bits. Total width must be <= 64. *)

val matches_mask : t -> value:int64 -> mask:int64 -> bool
(** Ternary match: [(v land mask) = (value land mask)]. *)

val matches_prefix : t -> value:int64 -> prefix_len:int -> bool
(** LPM match on the top [prefix_len] bits. *)

val equal : t -> t -> bool
(** Width and bits both equal. *)

val pp : Format.formatter -> t -> unit
(** e.g. "16w0x800". *)
