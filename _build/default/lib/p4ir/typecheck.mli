(** Static checks over IR programs.

    Catches what the P4 front-end would reject: undeclared names, width
    mismatches, malformed parsers and tables. Programs accepted here may
    still behave differently on a target — that divergence is exactly what
    the rest of the system explores. *)

type error = { loc : string; msg : string }

val check : Ast.program -> (unit, error list) result

val check_exn : Ast.program -> unit
(** @raise Invalid_argument listing all errors. *)

val expr_width :
  Ast.program -> params:Ast.field_decl list -> Ast.expr -> (int, string) result
(** Width of a well-typed expression; [params] are the action parameters in
    scope (empty outside actions). *)

val pp_error : Format.formatter -> error -> unit
