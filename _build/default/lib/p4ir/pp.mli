(** Rendering of IR programs in a P4-16-flavoured concrete syntax, for
    reports, documentation and debugging. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_table : Format.formatter -> Ast.table -> unit
val pp_action : Format.formatter -> Ast.action -> unit
val pp_parser_state : Format.formatter -> Ast.parser_state -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
