module Ast = P4ir.Ast
module Exec = P4ir.Exec
module Parse = P4ir.Parse

type report = { pipeline : Pipeline.t; warnings : string list; quirks : Quirks.t }

type error = { e_where : string; e_msg : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.e_where e.e_msg

(* ------------------------------------------------------------------ *)
(* Synthetic but deterministic resource/latency cost model             *)
(* ------------------------------------------------------------------ *)

let fixed_overhead = Resource.make ~luts:8000 ~ffs:12000 ~brams:20 ()

let rec stmt_count (s : Ast.stmt) =
  match s with
  | Ast.If (_, a, b) -> 1 + stmts_count a + stmts_count b
  | Ast.Assign _ | Ast.Apply _ | Ast.SetValid _ | Ast.SetInvalid _ | Ast.MarkToDrop
  | Ast.Count _ | Ast.Assert _ | Ast.RegRead _ | Ast.RegWrite _ | Ast.Nop ->
      1

and stmts_count l = List.fold_left (fun acc s -> acc + stmt_count s) 0 l

let parser_stage program =
  let states = program.Ast.p_parser in
  let extracted_bits =
    List.fold_left
      (fun acc (st : Ast.parser_state) ->
        List.fold_left
          (fun acc h ->
            match Ast.find_header program h with
            | Some hd -> acc + Ast.header_width hd
            | None -> acc)
          acc st.ps_extracts)
      0 states
  in
  {
    Pipeline.s_name = "parser";
    s_kind = Pipeline.Parser_engine;
    s_latency_cycles = 2 + (2 * List.length states);
    s_resources =
      Resource.make
        ~luts:((150 * List.length states) + (4 * extracted_bits))
        ~ffs:((200 * List.length states) + (2 * extracted_bits))
        ();
  }

let key_bits program (tbl : Ast.table) =
  List.fold_left
    (fun acc (k, _) ->
      match P4ir.Typecheck.expr_width program ~params:[] k with
      | Ok w -> acc + w
      | Error _ -> acc)
    0 tbl.Ast.t_keys

let table_kind (tbl : Ast.table) =
  if List.exists (fun (_, k) -> k = Ast.Ternary) tbl.Ast.t_keys then Ast.Ternary
  else if List.exists (fun (_, k) -> k = Ast.Lpm) tbl.Ast.t_keys then Ast.Lpm
  else Ast.Exact

let action_result_bits program (tbl : Ast.table) =
  List.fold_left
    (fun acc aname ->
      match Ast.find_action program aname with
      | Some a ->
          max acc
            (List.fold_left (fun acc (p : Ast.field_decl) -> acc + p.f_width) 16 a.a_params)
      | None -> acc)
    16 tbl.Ast.t_actions

let max_action_stmts program (tbl : Ast.table) =
  List.fold_left
    (fun acc aname ->
      match Ast.find_action program aname with
      | Some a -> max acc (stmts_count a.a_body)
      | None -> acc)
    0 tbl.Ast.t_actions

let table_stage program (tbl : Ast.table) =
  let kb = key_bits program tbl in
  let ab = action_result_bits program tbl in
  let entry_bits = kb + ab in
  let brams36k bits = (bits + 36863) / 36864 in
  let kind = table_kind tbl in
  let resources =
    match kind with
    | Ast.Exact ->
        Resource.make
          ~luts:(500 + (2 * kb))
          ~ffs:(300 + kb)
          ~brams:(brams36k (tbl.t_size * entry_bits))
          ()
    | Ast.Lpm ->
        Resource.make
          ~luts:(800 + (4 * kb))
          ~ffs:(400 + (2 * kb))
          ~brams:(2 * brams36k (tbl.t_size * entry_bits))
          ()
    | Ast.Ternary ->
        Resource.make
          ~luts:(300 + kb)
          ~ffs:(200 + kb)
          ~brams:(brams36k (tbl.t_size * ab))
          ~tcam_bits:(tbl.t_size * kb)
          ()
  in
  let base_latency = match kind with Ast.Exact -> 4 | Ast.Lpm -> 6 | Ast.Ternary -> 3 in
  {
    Pipeline.s_name = "ma:" ^ tbl.t_name;
    s_kind = Pipeline.Match_action tbl.t_name;
    s_latency_cycles = base_latency + max 1 (max_action_stmts program tbl);
    s_resources = resources;
  }

(* register arrays consume block RAM plus a small access datapath *)
let register_resources (program : Ast.program) =
  Resource.sum
    (List.map
       (fun (r : Ast.register_decl) ->
         Resource.make ~luts:(120 + r.r_width) ~ffs:(60 + r.r_width)
           ~brams:((r.r_size * r.r_width / 36864) + 1)
           ())
       program.Ast.p_registers)

let egress_stage program =
  let n = stmts_count program.Ast.p_egress in
  {
    Pipeline.s_name = "egress";
    s_kind = Pipeline.Egress_engine;
    s_latency_cycles = 2 + n;
    s_resources = Resource.make ~luts:(100 + (10 * n)) ~ffs:(80 + (8 * n)) ();
  }

let deparser_stage program =
  let n = List.length program.Ast.p_deparser in
  {
    Pipeline.s_name = "deparser";
    s_kind = Pipeline.Deparser_engine;
    s_latency_cycles = 2 + n;
    s_resources = Resource.make ~luts:(50 + (120 * n)) ~ffs:(40 + (100 * n)) ();
  }

(* ------------------------------------------------------------------ *)
(* Quirk application                                                   *)
(* ------------------------------------------------------------------ *)

(* Select_cases_truncated rewrites the program the hardware actually runs;
   the other quirks become semantic hooks. *)
let transform_program quirks (program : Ast.program) =
  match Quirks.select_truncation quirks with
  | None -> program
  | Some n ->
      let truncate_state (st : Ast.parser_state) =
        match st.ps_transition with
        | Ast.Direct _ -> st
        | Ast.Select (keys, cases, default) ->
            let rec take k = function
              | [] -> []
              | _ when k = 0 -> []
              | c :: rest -> c :: take (k - 1) rest
            in
            { st with ps_transition = Ast.Select (keys, take n cases, default) }
      in
      { program with p_parser = List.map truncate_state program.p_parser }

let parse_hooks quirks (config : Config.t) =
  {
    Parse.on_reject =
      (if Quirks.has_reject_unimplemented quirks then `Continue else `Drop);
    verify_checksum = not (Quirks.has quirks Quirks.Checksum_not_handled);
    max_steps = config.Config.max_parser_states;
  }

let exec_hooks quirks =
  {
    Exec.shift_amount =
      (match Quirks.shift_truncation quirks with
      | None -> Fun.id
      | Some n -> fun a -> a land ((1 lsl n) - 1));
    drop_effective =
      (fun phase ->
        match phase with
        | Exec.Egress -> not (Quirks.has quirks Quirks.Egress_drop_ignored)
        | Exec.Ingress -> true);
    degrade_ternary_to_exact = Quirks.has quirks Quirks.Ternary_as_exact;
    table_always_miss = (fun _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile ?(quirks = Quirks.default) ?(config = Config.netfpga_sume) program =
  let errors = ref [] in
  let warnings = ref [] in
  let err where fmt =
    Printf.ksprintf (fun msg -> errors := { e_where = where; e_msg = msg } :: !errors) fmt
  in
  let warn fmt = Printf.ksprintf (fun msg -> warnings := msg :: !warnings) fmt in
  (match P4ir.Typecheck.check program with
  | Ok () -> ()
  | Error errs ->
      List.iter
        (fun (e : P4ir.Typecheck.error) -> err e.P4ir.Typecheck.loc "%s" e.P4ir.Typecheck.msg)
        errs);
  (* architecture limits *)
  let nstates = List.length program.Ast.p_parser in
  if nstates > config.Config.max_parser_states then
    err "parser" "%d states exceed the target limit of %d" nstates
      config.Config.max_parser_states;
  let ntables = List.length program.Ast.p_tables in
  if ntables > config.Config.max_tables then
    err "pipeline" "%d tables exceed the target limit of %d" ntables
      config.Config.max_tables;
  List.iter
    (fun (tbl : Ast.table) ->
      if tbl.t_size > config.Config.max_table_entries then
        err ("table " ^ tbl.t_name) "size %d exceeds the target limit of %d" tbl.t_size
          config.Config.max_table_entries;
      let kb = key_bits program tbl in
      if kb > config.Config.max_key_bits then
        err ("table " ^ tbl.t_name) "key width %d exceeds the target limit of %d" kb
          config.Config.max_key_bits;
      if tbl.t_size land (tbl.t_size - 1) <> 0 then
        warn "table %s: size %d rounded up to a power of two by the memory generator"
          tbl.t_name tbl.t_size)
    program.Ast.p_tables;
  match List.rev !errors with
  | _ :: _ as errs -> Error errs
  | [] ->
      let hw_program = transform_program quirks program in
      let stages =
        (parser_stage hw_program :: List.map (table_stage hw_program) hw_program.Ast.p_tables)
        @ [ egress_stage hw_program; deparser_stage hw_program ]
      in
      let resources =
        Resource.sum
          (fixed_overhead :: register_resources hw_program
          :: List.map (fun s -> s.Pipeline.s_resources) stages)
      in
      if not (Resource.fits resources config) then
        Error
          [
            {
              e_where = "place-and-route";
              e_msg =
                Format.asprintf "design needs %a, exceeding the %s budget" Resource.pp
                  resources config.Config.name;
            };
          ]
      else
        let pipeline =
          Pipeline.make ~program:hw_program ~config
            ~parse_hooks:(parse_hooks quirks config)
            ~exec_hooks:(exec_hooks quirks)
            ~update_ipv4_checksum:
              (hw_program.Ast.p_update_ipv4_checksum
              && not (Quirks.has quirks Quirks.Checksum_not_handled))
            ~stages ~resources
        in
        Ok { pipeline; warnings = List.rev !warnings; quirks }

let compile_exn ?quirks ?config program =
  match compile ?quirks ?config program with
  | Ok report -> report
  | Error errs ->
      let msg = String.concat "; " (List.map (Format.asprintf "%a" pp_error) errs) in
      invalid_arg ("Sdnet.Compile: " ^ msg)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a@," Pipeline.pp r.pipeline;
  Format.fprintf ppf "quirks: %a@," Quirks.pp r.quirks;
  List.iter (fun w -> Format.fprintf ppf "warning: %s@," w) r.warnings;
  let util =
    Resource.utilization r.pipeline.Pipeline.resources r.pipeline.Pipeline.config
  in
  Format.fprintf ppf "utilization:";
  List.iter (fun (n, p) -> Format.fprintf ppf " %s=%.1f%%" n p) util;
  Format.fprintf ppf "@]"
