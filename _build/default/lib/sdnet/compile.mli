(** The SDNet-style compiler: IR program -> target pipeline.

    Responsibilities mirror the real tool: front-end checks, architecture
    limit enforcement, per-stage resource estimation, latency assignment —
    and, through the quirk model, the semantic deviations a hardware
    toolchain can introduce silently. *)

type report = {
  pipeline : Pipeline.t;
  warnings : string list;
  quirks : Quirks.t;  (** quirks active in the produced pipeline *)
}

type error = { e_where : string; e_msg : string }

val compile :
  ?quirks:Quirks.t -> ?config:Config.t -> P4ir.Ast.program -> (report, error list) result
(** [quirks] defaults to {!Quirks.default} (i.e. the shipped toolchain with
    the reject bug); [config] defaults to {!Config.netfpga_sume}. Errors
    cover typechecking failures and architecture limits (too many parser
    states or tables, oversized tables, too-wide keys, resource budget
    exceeded). *)

val compile_exn : ?quirks:Quirks.t -> ?config:Config.t -> P4ir.Ast.program -> report
(** @raise Invalid_argument on compile errors. *)

val pp_error : Format.formatter -> error -> unit

val pp_report : Format.formatter -> report -> unit
(** Per-stage resources, totals and utilization: the artefact of the
    resources-quantification use-case. *)
