(** The quirk model: systematic divergences of the SDNet-style compiler
    from the P4 specification.

    Each quirk is a realistic compiler bug or undocumented limitation.
    [Reject_unimplemented] is the bug the paper actually found in Xilinx
    SDNet ("the reject parser state ... is not implemented by SDNet. This
    meant that any packet coming into the data plane was sent out to the
    next hop, even if it was supposed to be dropped") and is part of
    {!default} so the simulated toolchain reproduces it out of the box. *)

type quirk =
  | Reject_unimplemented
      (** parser [reject] compiles to [accept]: packets proceed through the
          pipeline instead of being dropped *)
  | Ternary_as_exact
      (** ternary match keys silently compiled as exact-match on the value *)
  | Shift_width_truncated of int
      (** shift amounts are truncated to [n] bits by a narrow barrel
          shifter *)
  | Egress_drop_ignored
      (** [mark_to_drop] in the egress control has no effect *)
  | Select_cases_truncated of int
      (** only the first [n] cases of each parser [select] are compiled;
          later cases fall through to the default *)
  | Checksum_not_handled
      (** architecture checksum verify/update blocks are silently skipped *)

type t = quirk list

val default : t
(** What the real toolchain shipped with: [[Reject_unimplemented]]. *)

val none : t
(** A faithful compiler (the hypothetical fixed toolchain). *)

val all : t
(** Every quirk, for the compiler-check battery. *)

val has_reject_unimplemented : t -> bool
val shift_truncation : t -> int option
val select_truncation : t -> int option
val has : t -> quirk -> bool

val name : quirk -> string
val describe : quirk -> string
val pp : Format.formatter -> t -> unit
