type quirk =
  | Reject_unimplemented
  | Ternary_as_exact
  | Shift_width_truncated of int
  | Egress_drop_ignored
  | Select_cases_truncated of int
  | Checksum_not_handled

type t = quirk list

let default = [ Reject_unimplemented ]

let none = []

let all =
  [
    Reject_unimplemented;
    Ternary_as_exact;
    Shift_width_truncated 5;
    Egress_drop_ignored;
    Select_cases_truncated 1;
    Checksum_not_handled;
  ]

let has_reject_unimplemented t = List.mem Reject_unimplemented t

let shift_truncation t =
  List.find_map (function Shift_width_truncated n -> Some n | _ -> None) t

let select_truncation t =
  List.find_map (function Select_cases_truncated n -> Some n | _ -> None) t

let has t q = List.mem q t

let name = function
  | Reject_unimplemented -> "reject-unimplemented"
  | Ternary_as_exact -> "ternary-as-exact"
  | Shift_width_truncated n -> Printf.sprintf "shift-width-%d" n
  | Egress_drop_ignored -> "egress-drop-ignored"
  | Select_cases_truncated n -> Printf.sprintf "select-cases-%d" n
  | Checksum_not_handled -> "checksum-not-handled"

let describe = function
  | Reject_unimplemented ->
      "parser 'reject' compiles to 'accept'; packets that should be dropped are forwarded"
  | Ternary_as_exact -> "ternary keys silently compiled as exact match on the value"
  | Shift_width_truncated n -> Printf.sprintf "shift amounts truncated to %d bits" n
  | Egress_drop_ignored -> "mark_to_drop has no effect in the egress control"
  | Select_cases_truncated n ->
      Printf.sprintf "only the first %d select cases per state are compiled" n
  | Checksum_not_handled -> "checksum verification and update blocks are skipped"

let pp ppf t =
  if t = [] then Format.pp_print_string ppf "(none)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf q -> Format.pp_print_string ppf (name q))
      ppf t
