lib/sdnet/compile.ml: Config Format Fun List P4ir Pipeline Printf Quirks Resource String
