lib/sdnet/compile.mli: Config Format P4ir Pipeline Quirks
