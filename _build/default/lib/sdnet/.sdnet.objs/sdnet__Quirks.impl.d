lib/sdnet/quirks.ml: Format List Printf
