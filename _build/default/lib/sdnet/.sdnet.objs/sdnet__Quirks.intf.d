lib/sdnet/quirks.mli: Format
