(** Lexer for the P4-flavoured concrete syntax. *)

type token =
  | INT of int64 * int option  (** value, optional explicit width ([16w0x800]) *)
  | IDENT of string
  | STRING of string
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COLON | COMMA | DOT | ARROW
  | ASSIGN  (** = *)
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | AMP | PIPE | CARET | TILDE | BANG
  | AND | OR  (** && || *)
  | SHL | SHR
  | CONCAT  (** ++ *)
  | MASK  (** &&& *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int  (** message, line, col *)

val tokenize : string -> located list
(** Comments: [// ...] and [/* ... */]. Integer literals: decimal, [0x...],
    [0b...], width-prefixed [8w255] / [16w0x800], and IPv4 dotted quads
    ([10.0.0.1] lexes as a 32-bit INT).
    @raise Lex_error on malformed input. *)

val token_to_string : token -> string
