module Ast = P4ir.Ast
module Value = P4ir.Value
module Entry = P4ir.Entry
open Syntax

exception Elab_error of string

let err fmt = Printf.ksprintf (fun msg -> raise (Elab_error msg)) fmt

let std_of_name = function
  | "ingress_port" -> Ast.Ingress_port
  | "egress_spec" -> Ast.Egress_spec
  | "packet_length" -> Ast.Packet_length
  | "parser_error" -> Ast.Parser_error
  | f -> err "unknown standard_metadata field %s" f

(* elaboration environment: the program skeleton (for name/width lookups)
   plus the action parameters in scope *)
type env = { skel : Ast.program; params : Ast.field_decl list }

let resolve_path env path : Ast.expr =
  match path with
  | [ single ] -> (
      match List.find_opt (fun (p : Ast.field_decl) -> String.equal p.f_name single) env.params with
      | Some _ -> Ast.Param single
      | None -> err "unknown identifier %s (not an action parameter in scope)" single)
  | [ "meta"; f ] -> Ast.Meta f
  | [ "standard_metadata"; f ] -> Ast.Std (std_of_name f)
  | [ h; f ] -> Ast.Field (h, f)
  | p -> err "cannot resolve path %s" (String.concat "." p)

let resolve_lvalue env path : Ast.lvalue =
  match resolve_path env path with
  | Ast.Field (h, f) -> Ast.LField (h, f)
  | Ast.Meta m -> Ast.LMeta m
  | Ast.Std sf -> Ast.LStd sf
  | Ast.Param p -> err "cannot assign to action parameter %s" p
  | _ -> err "bad lvalue"

let width_of env (e : Ast.expr) =
  match P4ir.Typecheck.expr_width env.skel ~params:env.params e with
  | Ok w -> w
  | Error msg -> err "%s" msg

let is_bare = function SInt (_, None) -> true | _ -> false

let rec elab env ?expected (se : sexpr) : Ast.expr =
  match se with
  | SInt (v, Some w) -> Ast.Const (Value.make ~width:w v)
  | SInt (v, None) -> (
      match expected with
      | Some w -> Ast.Const (Value.make ~width:w v)
      | None -> err "cannot infer the width of literal %Ld (write e.g. 16w%Ld)" v v)
  | SRef path -> resolve_path env path
  | SValid h -> Ast.Valid h
  | SUn (Ast.LNot, e) -> Ast.Un (Ast.LNot, elab env ~expected:1 e)
  | SUn (Ast.BNot, e) -> Ast.Un (Ast.BNot, elab env ?expected e)
  | SSlice (e, msb, lsb) ->
      if is_bare e then err "cannot slice a bare literal";
      Ast.Slice (elab env e, msb, lsb)
  | SConcat (a, b) ->
      if is_bare a || is_bare b then err "cannot infer widths in '++' over bare literals";
      Ast.Concat (elab env a, elab env b)
  | SBin (op, a, b) -> (
      match op with
      | Ast.LAnd | Ast.LOr ->
          Ast.Bin (op, elab env ~expected:1 a, elab env ~expected:1 b)
      | Ast.Shl | Ast.Shr ->
          (* shift amounts default to 8 bits *)
          Ast.Bin (op, elab env ?expected a, elab env ~expected:8 b)
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> elab2 env op a b None
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.BAnd | Ast.BOr | Ast.BXor ->
          elab2 env op a b expected)

(* infer bare-literal widths from the other operand *)
and elab2 env op a b expected =
  match (is_bare a, is_bare b) with
  | true, true -> (
      match expected with
      | Some w -> Ast.Bin (op, elab env ~expected:w a, elab env ~expected:w b)
      | None -> err "cannot infer widths of a literal-only expression")
  | true, false ->
      let b' = elab env ?expected b in
      Ast.Bin (op, elab env ~expected:(width_of env b') a, b')
  | false, true | false, false ->
      let a' = elab env ?expected a in
      Ast.Bin (op, a', elab env ~expected:(width_of env a') b)

let reg_decl env name =
  match Ast.find_register env.skel name with
  | Some r -> r
  | None -> err "unknown register %s" name

let counter_exists env name =
  if not (List.mem name env.skel.Ast.p_counters) then err "unknown counter %s" name

let rec elab_stmt env (ss : sstmt) : Ast.stmt =
  match ss with
  | SAssign (path, e) ->
      let lv = resolve_lvalue env path in
      let w =
        match lv with
        | Ast.LField (h, f) -> width_of env (Ast.Field (h, f))
        | Ast.LMeta m -> width_of env (Ast.Meta m)
        | Ast.LStd sf -> Ast.std_width sf
      in
      Ast.Assign (lv, elab env ~expected:w e)
  | SIf (cond, then_, else_) ->
      Ast.If
        (elab env ~expected:1 cond, List.map (elab_stmt env) then_,
         List.map (elab_stmt env) else_)
  | SApply t -> Ast.Apply t
  | SSetValid h -> Ast.SetValid h
  | SSetInvalid h -> Ast.SetInvalid h
  | SDrop -> Ast.MarkToDrop
  | SCount c ->
      counter_exists env c;
      Ast.Count c
  | SAssert (cond, msg) -> Ast.Assert (elab env ~expected:1 cond, msg)
  | SRegRead (reg, dest, idx) ->
      ignore (reg_decl env reg);
      Ast.RegRead (resolve_lvalue env dest, reg, elab env ~expected:32 idx)
  | SRegWrite (reg, idx, v) ->
      let r = reg_decl env reg in
      Ast.RegWrite (reg, elab env ~expected:32 idx, elab env ~expected:r.Ast.r_width v)

let elab_const env ~width se =
  match elab env ~expected:width se with
  | Ast.Const v ->
      if Value.width v <> width then err "constant width %d where %d expected" (Value.width v) width
      else v
  | _ -> err "expected a constant"

let elab_target = function
  | ST_accept -> Ast.To_accept
  | ST_reject -> Ast.To_reject
  | ST_state s -> Ast.To_state s

let elaborate (sp : sprogram) =
  (* 1. skeleton: declarations only, so expressions can resolve *)
  let skel =
    {
      Ast.p_name = sp.sp_name;
      p_headers = sp.sp_headers;
      p_metadata = sp.sp_metadata;
      p_parser = [];
      p_actions = [];
      p_tables = [];
      p_ingress = [];
      p_egress = [];
      p_deparser = sp.sp_deparser;
      p_counters = sp.sp_counters;
      p_registers = sp.sp_registers;
      p_verify_ipv4_checksum = sp.sp_verify_ipv4;
      p_update_ipv4_checksum = sp.sp_update_ipv4;
    }
  in
  let env0 = { skel; params = [] } in

  (* 2. actions *)
  let actions =
    List.map
      (fun (name, params, body) ->
        let env = { env0 with params } in
        { Ast.a_name = name; a_params = params; a_body = List.map (elab_stmt env) body })
      sp.sp_actions
  in
  let skel = { skel with Ast.p_actions = actions } in
  let env0 = { skel; params = [] } in
  let find_action name =
    match Ast.find_action skel name with
    | Some a -> a
    | None -> err "unknown action %s" name
  in

  (* 3. tables *)
  let tables =
    List.map
      (fun tb ->
        let keys = List.map (fun (e, kind) -> (elab env0 e, kind)) tb.tb_keys in
        let dname, dargs = tb.tb_default in
        let daction = find_action dname in
        if List.length dargs <> List.length daction.Ast.a_params then
          err "table %s: default action %s expects %d arguments" tb.tb_name dname
            (List.length daction.Ast.a_params);
        let default_args =
          List.map2
            (fun se (p : Ast.field_decl) -> elab_const env0 ~width:p.f_width se)
            dargs daction.Ast.a_params
        in
        {
          Ast.t_name = tb.tb_name;
          t_keys = keys;
          t_actions = tb.tb_actions;
          t_default_action = dname;
          t_default_args = default_args;
          t_size = tb.tb_size;
        })
      sp.sp_tables
  in
  let skel = { skel with Ast.p_tables = tables } in
  let env0 = { skel; params = [] } in

  (* 4. parser *)
  let states =
    List.map
      (fun st ->
        let transition =
          match st.st_transition with
          | STr_direct t -> Ast.Direct (elab_target t)
          | STr_select (keys, cases, default) ->
              let keys = List.map (elab env0) keys in
              let widths = List.map (width_of env0) keys in
              let cases =
                List.map
                  (fun (keysets, target) ->
                    if List.length keysets <> List.length widths then
                      err "state %s: select case arity mismatch" st.st_name;
                    let sc_keysets =
                      List.map2
                        (fun ks w ->
                          match ks with
                          | SK_exact se -> (elab_const env0 ~width:w se, None)
                          | SK_mask (sv, sm) ->
                              ( elab_const env0 ~width:w sv,
                                Some (elab_const env0 ~width:w sm) )
                          | SK_any -> (Value.zero w, Some (Value.zero w)))
                        keysets widths
                    in
                    { Ast.sc_keysets; sc_target = elab_target target })
                  cases
              in
              Ast.Select (keys, cases, elab_target default)
        in
        { Ast.ps_name = st.st_name; ps_extracts = st.st_extracts; ps_transition = transition })
      sp.sp_states
  in

  (* 5. controls *)
  let ingress = List.map (elab_stmt env0) sp.sp_ingress in
  let egress = List.map (elab_stmt env0) sp.sp_egress in

  let program =
    { skel with Ast.p_parser = states; p_ingress = ingress; p_egress = egress }
  in
  (match P4ir.Typecheck.check program with
  | Ok () -> ()
  | Error errs ->
      err "%s"
        (String.concat "; " (List.map (Format.asprintf "%a" P4ir.Typecheck.pp_error) errs)));

  (* 6. entries *)
  let env = { env0 with skel = program } in
  let entries =
    List.map
      (fun en ->
        let tbl =
          match Ast.find_table program en.en_table with
          | Some t -> t
          | None -> err "entries: unknown table %s" en.en_table
        in
        let action = find_action en.en_action in
        if List.length en.en_keys <> List.length tbl.Ast.t_keys then
          err "entries for %s: expected %d keys, got %d" en.en_table
            (List.length tbl.Ast.t_keys) (List.length en.en_keys);
        let keys =
          List.map2
            (fun sk (ke, kind) ->
              let w = width_of env ke in
              match (sk, (kind : Ast.match_kind)) with
              | SE_exact se, Ast.Exact -> Entry.exact (elab_const env ~width:w se)
              | SE_lpm (se, len), Ast.Lpm -> Entry.lpm (elab_const env ~width:w se) len
              | SE_ternary (sv, sm), Ast.Ternary ->
                  Entry.ternary (elab_const env ~width:w sv) (elab_const env ~width:w sm)
              | SE_exact se, Ast.Ternary ->
                  (* bare value in a ternary slot: exact-match it *)
                  Entry.ternary (elab_const env ~width:w se) (Value.ones w)
              | SE_exact se, Ast.Lpm -> Entry.lpm (elab_const env ~width:w se) w
              | (SE_lpm _ | SE_ternary _), _ ->
                  err "entries for %s: key form does not match the declared kind"
                    en.en_table)
            en.en_keys tbl.Ast.t_keys
        in
        if List.length en.en_args <> List.length action.Ast.a_params then
          err "entries for %s: action %s expects %d arguments" en.en_table en.en_action
            (List.length action.Ast.a_params);
        let args =
          List.map2
            (fun se (p : Ast.field_decl) -> elab_const env ~width:p.f_width se)
            en.en_args action.Ast.a_params
        in
        ( en.en_table,
          Entry.make ~priority:en.en_priority ~keys ~action:en.en_action ~args () ))
      sp.sp_entries
  in
  (program, entries)
