(** Render an IR program (and its control-plane entries) in the concrete
    syntax {!Syntax.parse} accepts.

    The output is fully parenthesized and every literal carries an explicit
    width, so the round trip [parse (print p) = p] holds structurally — the
    test suite enforces it for the whole program library. *)

val program_to_source :
  ?entries:(string * P4ir.Entry.t) list -> P4ir.Ast.program -> string

val bundle_to_source : P4ir.Programs.bundle -> string
