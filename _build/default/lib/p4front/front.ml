type error = { message : string; line : int; col : int }

let pp_error ppf e =
  if e.line > 0 then Format.fprintf ppf "line %d, col %d: %s" e.line e.col e.message
  else Format.fprintf ppf "%s" e.message

let parse_string ~name src =
  match Elab.elaborate (Syntax.parse ~name src) with
  | program, entries ->
      Ok
        {
          P4ir.Programs.program;
          entries;
          description = Printf.sprintf "parsed from P4 source (%s)" name;
        }
  | exception Lexer.Lex_error (message, line, col) -> Error { message; line; col }
  | exception Syntax.Parse_error (message, line, col) -> Error { message; line; col }
  | exception Elab.Elab_error message -> Error { message; line = 0; col = 0 }

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src ->
      let name = Filename.remove_extension (Filename.basename path) in
      parse_string ~name src
  | exception Sys_error e -> Error { message = e; line = 0; col = 0 }
