(** Elaboration: resolve names and infer literal widths, turning a surface
    program into a typechecked {!P4ir.Ast.program} plus its control-plane
    entries.

    Width inference: explicitly-widthed literals ([16w0x800]) are taken as
    written; bare literals adopt the width the context demands (assignment
    left-hand sides, the other operand of a binary operator, select-key
    widths, action-parameter declarations, register widths, table-key
    widths for entries). A bare literal with no constraining context is an
    error. *)

exception Elab_error of string

val elaborate : Syntax.sprogram -> P4ir.Ast.program * (string * P4ir.Entry.t) list
(** Also runs {!P4ir.Typecheck.check}; its errors are reported as
    [Elab_error]. *)
