module Ast = P4ir.Ast

type sexpr =
  | SInt of int64 * int option
  | SRef of string list
  | SBin of Ast.binop * sexpr * sexpr
  | SUn of Ast.unop * sexpr
  | SSlice of sexpr * int * int
  | SConcat of sexpr * sexpr
  | SValid of string

type sstmt =
  | SAssign of string list * sexpr
  | SIf of sexpr * sstmt list * sstmt list
  | SApply of string
  | SSetValid of string
  | SSetInvalid of string
  | SDrop
  | SCount of string
  | SAssert of sexpr * string
  | SRegRead of string * string list * sexpr
  | SRegWrite of string * sexpr * sexpr

type skeyset = SK_exact of sexpr | SK_mask of sexpr * sexpr | SK_any

type starget = ST_accept | ST_reject | ST_state of string

type sstate = { st_name : string; st_extracts : string list; st_transition : strans }

and strans =
  | STr_direct of starget
  | STr_select of sexpr list * (skeyset list * starget) list * starget

type stable = {
  tb_name : string;
  tb_keys : (sexpr * Ast.match_kind) list;
  tb_actions : string list;
  tb_default : string * sexpr list;
  tb_size : int;
}

type sentry_key = SE_exact of sexpr | SE_lpm of sexpr * int | SE_ternary of sexpr * sexpr

type sentry = {
  en_table : string;
  en_priority : int;
  en_keys : sentry_key list;
  en_action : string;
  en_args : sexpr list;
}

type sprogram = {
  sp_name : string;
  sp_headers : Ast.header_decl list;
  sp_metadata : Ast.field_decl list;
  sp_registers : Ast.register_decl list;
  sp_counters : string list;
  sp_states : sstate list;
  sp_actions : (string * Ast.field_decl list * sstmt list) list;
  sp_tables : stable list;
  sp_ingress : sstmt list;
  sp_egress : sstmt list;
  sp_deparser : string list;
  sp_verify_ipv4 : bool;
  sp_update_ipv4 : bool;
  sp_entries : sentry list;
}

exception Parse_error of string * int * int

(* ---------------- token stream ---------------- *)

type stream = { mutable toks : Lexer.located list }

let peek s = match s.toks with t :: _ -> t | [] -> assert false


let next s =
  match s.toks with
  | t :: rest ->
      if t.Lexer.tok <> Lexer.EOF then s.toks <- rest;
      t
  | [] -> assert false

let fail s fmt =
  let t = peek s in
  Printf.ksprintf
    (fun msg ->
      raise
        (Parse_error
           ( Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string t.Lexer.tok),
             t.Lexer.line, t.Lexer.col )))
    fmt

let expect s tok what =
  let t = next s in
  if t.Lexer.tok <> tok then
    raise
      (Parse_error
         ( Printf.sprintf "expected %s, found %s" what (Lexer.token_to_string t.Lexer.tok),
           t.Lexer.line, t.Lexer.col ))

let ident s =
  match (peek s).Lexer.tok with
  | Lexer.IDENT name ->
      ignore (next s);
      name
  | _ -> fail s "expected identifier"

let expect_kw s name =
  let got = ident s in
  if not (String.equal got name) then fail s "expected keyword '%s', got '%s'" name got

(* '>>' may close two nested angle brackets, as in register<bit<32>>(...) *)
let expect_close_angle s =
  match (peek s).Lexer.tok with
  | Lexer.GT -> ignore (next s)
  | Lexer.SHR -> (
      match s.toks with
      | t :: rest -> s.toks <- { t with Lexer.tok = Lexer.GT } :: rest
      | [] -> assert false)
  | _ -> fail s "expected '>'"

let int_lit s =
  match (peek s).Lexer.tok with
  | Lexer.INT (v, _) ->
      ignore (next s);
      Int64.to_int v
  | _ -> fail s "expected integer"

let accept s tok = if (peek s).Lexer.tok = tok then (ignore (next s); true) else false

(* ---------------- expressions ---------------- *)

(* path := IDENT (DOT IDENT)* ; also swallows ".isValid()" *)
let rec parse_path_or_valid s =
  let first = ident s in
  let rec go acc =
    if (peek s).Lexer.tok = Lexer.DOT then begin
      ignore (next s);
      let part = ident s in
      if String.equal part "isValid" then begin
        expect s Lexer.LPAREN "(";
        expect s Lexer.RPAREN ")";
        `Valid (String.concat "." (List.rev acc))
      end
      else go (part :: acc)
    end
    else `Path (List.rev acc)
  in
  go [ first ]

and parse_primary s =
  match (peek s).Lexer.tok with
  | Lexer.INT (v, w) ->
      ignore (next s);
      SInt (v, w)
  | Lexer.LPAREN ->
      ignore (next s);
      let e = parse_expr s in
      expect s Lexer.RPAREN ")";
      parse_postfix s e
  | Lexer.BANG ->
      ignore (next s);
      SUn (Ast.LNot, parse_primary s)
  | Lexer.TILDE ->
      ignore (next s);
      SUn (Ast.BNot, parse_primary s)
  | Lexer.IDENT _ -> (
      match parse_path_or_valid s with
      | `Valid h -> SValid h
      | `Path p -> parse_postfix s (SRef p))
  | _ -> fail s "expected expression"

and parse_postfix s e =
  if (peek s).Lexer.tok = Lexer.LBRACKET then begin
    ignore (next s);
    let msb = int_lit s in
    expect s Lexer.COLON ":";
    let lsb = int_lit s in
    expect s Lexer.RBRACKET "]";
    parse_postfix s (SSlice (e, msb, lsb))
  end
  else e

(* precedence climbing *)
and parse_binary s min_level =
  let level_of = function
    | Lexer.OR -> Some (1, Ast.LOr)
    | Lexer.AND -> Some (2, Ast.LAnd)
    | Lexer.EQ -> Some (3, Ast.Eq)
    | Lexer.NEQ -> Some (3, Ast.Neq)
    | Lexer.LT -> Some (4, Ast.Lt)
    | Lexer.LE -> Some (4, Ast.Le)
    | Lexer.GT -> Some (4, Ast.Gt)
    | Lexer.GE -> Some (4, Ast.Ge)
    | Lexer.PIPE -> Some (5, Ast.BOr)
    | Lexer.CARET -> Some (6, Ast.BXor)
    | Lexer.AMP -> Some (7, Ast.BAnd)
    | Lexer.SHL -> Some (8, Ast.Shl)
    | Lexer.SHR -> Some (8, Ast.Shr)
    | Lexer.PLUS -> Some (10, Ast.Add)
    | Lexer.MINUS -> Some (10, Ast.Sub)
    | Lexer.STAR -> Some (11, Ast.Mul)
    | _ -> None
  in
  let lhs = ref (parse_primary s) in
  let continue_ = ref true in
  while !continue_ do
    match (peek s).Lexer.tok with
    | Lexer.CONCAT when 9 >= min_level ->
        ignore (next s);
        let rhs = parse_binary s 10 in
        lhs := SConcat (!lhs, rhs)
    | tok -> (
        match level_of tok with
        | Some (level, op) when level >= min_level ->
            ignore (next s);
            let rhs = parse_binary s (level + 1) in
            lhs := SBin (op, !lhs, rhs)
        | _ -> continue_ := false)
  done;
  !lhs

and parse_expr s = parse_binary s 1

(* ---------------- statements ---------------- *)

let rec parse_stmt s : sstmt =
  match (peek s).Lexer.tok with
  | Lexer.IDENT "if" -> parse_if s
  | Lexer.IDENT "apply" ->
      ignore (next s);
      expect s Lexer.LPAREN "(";
      let t = ident s in
      expect s Lexer.RPAREN ")";
      expect s Lexer.SEMI ";";
      SApply t
  | Lexer.IDENT "mark_to_drop" ->
      ignore (next s);
      expect s Lexer.LPAREN "(";
      ignore (accept s (Lexer.IDENT "standard_metadata"));
      expect s Lexer.RPAREN ")";
      expect s Lexer.SEMI ";";
      SDrop
  | Lexer.IDENT "count" ->
      ignore (next s);
      expect s Lexer.LPAREN "(";
      let c = ident s in
      expect s Lexer.RPAREN ")";
      expect s Lexer.SEMI ";";
      SCount c
  | Lexer.IDENT "assert" ->
      ignore (next s);
      expect s Lexer.LPAREN "(";
      let cond = parse_expr s in
      let msg =
        if accept s Lexer.COMMA then
          match (next s).Lexer.tok with
          | Lexer.STRING m -> m
          | _ -> fail s "expected string message"
        else "assert"
      in
      expect s Lexer.RPAREN ")";
      expect s Lexer.SEMI ";";
      SAssert (cond, msg)
  | Lexer.IDENT _ -> parse_ident_stmt s
  | _ -> fail s "expected statement"

and parse_if s =
  expect_kw s "if";
  expect s Lexer.LPAREN "(";
  let cond = parse_expr s in
  expect s Lexer.RPAREN ")";
  let then_ = parse_block s in
  let else_ =
    if (peek s).Lexer.tok = Lexer.IDENT "else" then begin
      ignore (next s);
      if (peek s).Lexer.tok = Lexer.IDENT "if" then [ parse_if s ] else parse_block s
    end
    else []
  in
  SIf (cond, then_, else_)

and parse_block s =
  expect s Lexer.LBRACE "{";
  let rec go acc =
    if (peek s).Lexer.tok = Lexer.RBRACE then begin
      ignore (next s);
      List.rev acc
    end
    else go (parse_stmt s :: acc)
  in
  go []

(* statement starting with a (possibly dotted) identifier: assignment or a
   method call (x.apply() / x.count() / reg.read / reg.write /
   hdr.setValid / hdr.setInvalid) *)
and parse_ident_stmt s =
  let first = ident s in
  let rec parts acc =
    if (peek s).Lexer.tok = Lexer.DOT then begin
      ignore (next s);
      parts (ident s :: acc)
    end
    else List.rev acc
  in
  let path = parts [ first ] in
  match (peek s).Lexer.tok with
  | Lexer.ASSIGN ->
      ignore (next s);
      let e = parse_expr s in
      expect s Lexer.SEMI ";";
      SAssign (path, e)
  | Lexer.LPAREN -> (
      (* last component is the method *)
      match List.rev path with
      | meth :: rev_obj when rev_obj <> [] -> (
          let obj = List.rev rev_obj in
          let obj_name = String.concat "." obj in
          ignore (next s);
          match meth with
          | "apply" ->
              expect s Lexer.RPAREN ")";
              expect s Lexer.SEMI ";";
              SApply obj_name
          | "count" ->
              expect s Lexer.RPAREN ")";
              expect s Lexer.SEMI ";";
              SCount obj_name
          | "setValid" ->
              expect s Lexer.RPAREN ")";
              expect s Lexer.SEMI ";";
              SSetValid obj_name
          | "setInvalid" ->
              expect s Lexer.RPAREN ")";
              expect s Lexer.SEMI ";";
              SSetInvalid obj_name
          | "read" ->
              (* reg.read(dest, idx); *)
              let dest =
                match parse_path_or_valid s with
                | `Path p -> p
                | `Valid _ -> fail s "register read destination cannot be isValid()"
              in
              expect s Lexer.COMMA ",";
              let idx = parse_expr s in
              expect s Lexer.RPAREN ")";
              expect s Lexer.SEMI ";";
              SRegRead (obj_name, dest, idx)
          | "write" ->
              let idx = parse_expr s in
              expect s Lexer.COMMA ",";
              let v = parse_expr s in
              expect s Lexer.RPAREN ")";
              expect s Lexer.SEMI ";";
              SRegWrite (obj_name, idx, v)
          | m -> fail s "unknown method '%s'" m)
      | _ -> fail s "bare call is not a statement")
  | _ -> fail s "expected '=' or method call after identifier"

(* ---------------- declarations ---------------- *)

let parse_bit_type s =
  expect_kw s "bit";
  expect s Lexer.LT "<";
  let w = int_lit s in
  expect_close_angle s;
  w

let parse_fields s =
  expect s Lexer.LBRACE "{";
  let rec go acc =
    if (peek s).Lexer.tok = Lexer.RBRACE then begin
      ignore (next s);
      List.rev acc
    end
    else begin
      let w = parse_bit_type s in
      let name = ident s in
      expect s Lexer.SEMI ";";
      go ({ Ast.f_name = name; f_width = w } :: acc)
    end
  in
  go []

let parse_target s =
  match ident s with
  | "accept" -> ST_accept
  | "reject" -> ST_reject
  | name -> ST_state name

let parse_state s =
  expect_kw s "state";
  let name = ident s in
  expect s Lexer.LBRACE "{";
  let extracts = ref [] in
  while (peek s).Lexer.tok = Lexer.IDENT "extract" do
    ignore (next s);
    expect s Lexer.LPAREN "(";
    extracts := ident s :: !extracts;
    expect s Lexer.RPAREN ")";
    expect s Lexer.SEMI ";"
  done;
  expect_kw s "transition";
  let transition =
    if (peek s).Lexer.tok = Lexer.IDENT "select" then begin
      ignore (next s);
      expect s Lexer.LPAREN "(";
      let rec keys acc =
        let k = parse_expr s in
        if accept s Lexer.COMMA then keys (k :: acc) else List.rev (k :: acc)
      in
      let keys = keys [] in
      expect s Lexer.RPAREN ")";
      expect s Lexer.LBRACE "{";
      let default = ref ST_reject in
      let cases = ref [] in
      let parse_keyset () =
        match (peek s).Lexer.tok with
        | Lexer.IDENT "_" ->
            ignore (next s);
            SK_any
        | _ ->
            let v = parse_expr s in
            if accept s Lexer.MASK then SK_mask (v, parse_expr s) else SK_exact v
      in
      let rec go () =
        if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
        else begin
          (if (peek s).Lexer.tok = Lexer.IDENT "default" then begin
             ignore (next s);
             expect s Lexer.COLON ":";
             default := parse_target s
           end
           else begin
             let parenthesized = accept s Lexer.LPAREN in
             let rec ks acc =
               let k = parse_keyset () in
               if accept s Lexer.COMMA then ks (k :: acc) else List.rev (k :: acc)
             in
             let keysets = ks [] in
             if parenthesized then expect s Lexer.RPAREN ")";
             expect s Lexer.COLON ":";
             let target = parse_target s in
             cases := (keysets, target) :: !cases
           end);
          expect s Lexer.SEMI ";";
          go ()
        end
      in
      go ();
      STr_select (keys, List.rev !cases, !default)
    end
    else begin
      let t = parse_target s in
      STr_direct t
    end
  in
  (match transition with
  | STr_direct _ -> expect s Lexer.SEMI ";"
  | STr_select _ -> ());
  expect s Lexer.RBRACE "}";
  { st_name = name; st_extracts = List.rev !extracts; st_transition = transition }

let parse_action s =
  let name = ident s in
  expect s Lexer.LPAREN "(";
  let rec params acc =
    if (peek s).Lexer.tok = Lexer.RPAREN then begin
      ignore (next s);
      List.rev acc
    end
    else begin
      let w = parse_bit_type s in
      let pname = ident s in
      let acc = { Ast.f_name = pname; f_width = w } :: acc in
      if accept s Lexer.COMMA then params acc
      else begin
        expect s Lexer.RPAREN ")";
        List.rev acc
      end
    end
  in
  let params = params [] in
  let body = parse_block s in
  (name, params, body)

let parse_args s =
  expect s Lexer.LPAREN "(";
  if accept s Lexer.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr s in
      if accept s Lexer.COMMA then go (e :: acc)
      else begin
        expect s Lexer.RPAREN ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

let parse_table s =
  let name = ident s in
  expect s Lexer.LBRACE "{";
  let keys = ref [] and actions = ref [] and default = ref None and size = ref 1024 in
  let rec go () =
    if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
    else begin
      (match ident s with
      | "key" ->
          expect s Lexer.ASSIGN "=";
          expect s Lexer.LBRACE "{";
          let rec keys_loop () =
            if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
            else begin
              let e = parse_expr s in
              expect s Lexer.COLON ":";
              let kind =
                match ident s with
                | "exact" -> Ast.Exact
                | "lpm" -> Ast.Lpm
                | "ternary" -> Ast.Ternary
                | k -> fail s "unknown match kind '%s'" k
              in
              expect s Lexer.SEMI ";";
              keys := (e, kind) :: !keys;
              keys_loop ()
            end
          in
          keys_loop ()
      | "actions" ->
          expect s Lexer.ASSIGN "=";
          expect s Lexer.LBRACE "{";
          let rec acts () =
            if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
            else begin
              actions := ident s :: !actions;
              expect s Lexer.SEMI ";";
              acts ()
            end
          in
          acts ()
      | "default_action" ->
          expect s Lexer.ASSIGN "=";
          let a = ident s in
          let args = if (peek s).Lexer.tok = Lexer.LPAREN then parse_args s else [] in
          expect s Lexer.SEMI ";";
          default := Some (a, args)
      | "size" ->
          expect s Lexer.ASSIGN "=";
          size := int_lit s;
          expect s Lexer.SEMI ";"
      | k -> fail s "unknown table property '%s'" k);
      go ()
    end
  in
  go ();
  let default =
    match !default with Some d -> d | None -> fail s "table %s: missing default_action" name
  in
  {
    tb_name = name;
    tb_keys = List.rev !keys;
    tb_actions = List.rev !actions;
    tb_default = default;
    tb_size = !size;
  }

let parse_entry_key s =
  let v = parse_expr s in
  if accept s Lexer.SLASH then SE_lpm (v, int_lit s)
  else if accept s Lexer.MASK then SE_ternary (v, parse_expr s)
  else SE_exact v

let parse_entries s =
  expect s Lexer.LBRACE "{";
  let entries = ref [] in
  let rec tables () =
    if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
    else begin
      let table = ident s in
      expect s Lexer.LBRACE "{";
      let rec rows () =
        if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
        else begin
          let priority =
            if (peek s).Lexer.tok = Lexer.IDENT "priority" then begin
              ignore (next s);
              let p = int_lit s in
              expect s Lexer.COLON ":";
              p
            end
            else 0
          in
          let keys =
            if (peek s).Lexer.tok = Lexer.ARROW then []
            else begin
              let rec go acc =
                let k = parse_entry_key s in
                if accept s Lexer.COMMA then go (k :: acc) else List.rev (k :: acc)
              in
              go []
            end
          in
          expect s Lexer.ARROW "->";
          let action = ident s in
          let args = if (peek s).Lexer.tok = Lexer.LPAREN then parse_args s else [] in
          expect s Lexer.SEMI ";";
          entries :=
            { en_table = table; en_priority = priority; en_keys = keys;
              en_action = action; en_args = args }
            :: !entries;
          rows ()
        end
      in
      rows ();
      tables ()
    end
  in
  tables ();
  List.rev !entries

let parse ~name src =
  let s = { toks = Lexer.tokenize src } in
  let headers = ref [] and metadata = ref [] and registers = ref [] in
  let counters = ref [] and states = ref [] and actions = ref [] in
  let tables = ref [] and ingress = ref [] and egress = ref [] in
  let deparser = ref [] and verify = ref false and update = ref false in
  let entries = ref [] in
  let rec toplevel () =
    match (peek s).Lexer.tok with
    | Lexer.EOF -> ()
    | Lexer.IDENT "header" ->
        ignore (next s);
        let hname = ident s in
        let fields = parse_fields s in
        headers := { Ast.h_name = hname; h_fields = fields } :: !headers;
        toplevel ()
    | Lexer.IDENT "struct" ->
        ignore (next s);
        expect_kw s "metadata";
        metadata := !metadata @ parse_fields s;
        toplevel ()
    | Lexer.IDENT "register" ->
        ignore (next s);
        expect s Lexer.LT "<";
        let w = parse_bit_type s in
        expect_close_angle s;
        expect s Lexer.LPAREN "(";
        let size = int_lit s in
        expect s Lexer.RPAREN ")";
        let rname = ident s in
        expect s Lexer.SEMI ";";
        registers := { Ast.r_name = rname; r_width = w; r_size = size } :: !registers;
        toplevel ()
    | Lexer.IDENT "counter" ->
        ignore (next s);
        counters := ident s :: !counters;
        expect s Lexer.SEMI ";";
        toplevel ()
    | Lexer.IDENT "parser" ->
        ignore (next s);
        expect s Lexer.LBRACE "{";
        while (peek s).Lexer.tok = Lexer.IDENT "state" do
          states := parse_state s :: !states
        done;
        expect s Lexer.RBRACE "}";
        toplevel ()
    | Lexer.IDENT "action" ->
        ignore (next s);
        actions := parse_action s :: !actions;
        toplevel ()
    | Lexer.IDENT "table" ->
        ignore (next s);
        tables := parse_table s :: !tables;
        toplevel ()
    | Lexer.IDENT "control" ->
        ignore (next s);
        (match ident s with
        | "ingress" -> ingress := parse_block s
        | "egress" -> egress := parse_block s
        | c -> fail s "unknown control '%s' (want ingress/egress)" c);
        toplevel ()
    | Lexer.IDENT "deparser" ->
        ignore (next s);
        expect s Lexer.LBRACE "{";
        let rec emits () =
          if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
          else begin
            expect_kw s "emit";
            expect s Lexer.LPAREN "(";
            deparser := ident s :: !deparser;
            expect s Lexer.RPAREN ")";
            expect s Lexer.SEMI ";";
            emits ()
          end
        in
        emits ();
        toplevel ()
    | Lexer.IDENT "checksum" ->
        ignore (next s);
        expect s Lexer.LBRACE "{";
        let rec pragmas () =
          if (peek s).Lexer.tok = Lexer.RBRACE then ignore (next s)
          else begin
            (match ident s with
            | "verify_ipv4" -> verify := true
            | "update_ipv4" -> update := true
            | p -> fail s "unknown checksum pragma '%s'" p);
            expect s Lexer.SEMI ";";
            pragmas ()
          end
        in
        pragmas ();
        toplevel ()
    | Lexer.IDENT "entries" ->
        ignore (next s);
        entries := !entries @ parse_entries s;
        toplevel ()
    | _ -> fail s "expected a top-level declaration"
  in
  toplevel ();
  {
    sp_name = name;
    sp_headers = List.rev !headers;
    sp_metadata = !metadata;
    sp_registers = List.rev !registers;
    sp_counters = List.rev !counters;
    sp_states = List.rev !states;
    sp_actions = List.rev !actions;
    sp_tables = List.rev !tables;
    sp_ingress = !ingress;
    sp_egress = !egress;
    sp_deparser = List.rev !deparser;
    sp_verify_ipv4 = !verify;
    sp_update_ipv4 = !update;
    sp_entries = !entries;
  }
