(** Surface syntax tree and recursive-descent parser.

    The surface tree is untyped: integer literals may lack widths and
    dotted paths are unresolved. {!Elab} turns it into a checked
    {!P4ir.Ast.program}. *)

type sexpr =
  | SInt of int64 * int option
  | SRef of string list  (** dotted path *)
  | SBin of P4ir.Ast.binop * sexpr * sexpr
  | SUn of P4ir.Ast.unop * sexpr
  | SSlice of sexpr * int * int
  | SConcat of sexpr * sexpr
  | SValid of string

type sstmt =
  | SAssign of string list * sexpr
  | SIf of sexpr * sstmt list * sstmt list
  | SApply of string
  | SSetValid of string
  | SSetInvalid of string
  | SDrop
  | SCount of string
  | SAssert of sexpr * string
  | SRegRead of string * string list * sexpr
  | SRegWrite of string * sexpr * sexpr

type skeyset = SK_exact of sexpr | SK_mask of sexpr * sexpr | SK_any

type starget = ST_accept | ST_reject | ST_state of string

type sstate = {
  st_name : string;
  st_extracts : string list;
  st_transition : strans;
}

and strans =
  | STr_direct of starget
  | STr_select of sexpr list * (skeyset list * starget) list * starget

type stable = {
  tb_name : string;
  tb_keys : (sexpr * P4ir.Ast.match_kind) list;
  tb_actions : string list;
  tb_default : string * sexpr list;
  tb_size : int;
}

type sentry_key = SE_exact of sexpr | SE_lpm of sexpr * int | SE_ternary of sexpr * sexpr

type sentry = {
  en_table : string;
  en_priority : int;
  en_keys : sentry_key list;
  en_action : string;
  en_args : sexpr list;
}

type sprogram = {
  sp_name : string;
  sp_headers : P4ir.Ast.header_decl list;
  sp_metadata : P4ir.Ast.field_decl list;
  sp_registers : P4ir.Ast.register_decl list;
  sp_counters : string list;
  sp_states : sstate list;
  sp_actions : (string * P4ir.Ast.field_decl list * sstmt list) list;
  sp_tables : stable list;
  sp_ingress : sstmt list;
  sp_egress : sstmt list;
  sp_deparser : string list;
  sp_verify_ipv4 : bool;
  sp_update_ipv4 : bool;
  sp_entries : sentry list;
}

exception Parse_error of string * int * int  (** message, line, col *)

val parse : name:string -> string -> sprogram
(** @raise Parse_error / @raise Lexer.Lex_error on malformed input. *)
