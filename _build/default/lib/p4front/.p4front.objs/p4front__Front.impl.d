lib/p4front/front.ml: Elab Filename Format In_channel Lexer P4ir Printf Syntax
