lib/p4front/lexer.mli:
