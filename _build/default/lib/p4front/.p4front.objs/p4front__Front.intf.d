lib/p4front/front.mli: Format P4ir
