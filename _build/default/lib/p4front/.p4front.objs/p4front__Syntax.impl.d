lib/p4front/syntax.ml: Int64 Lexer List P4ir Printf String
