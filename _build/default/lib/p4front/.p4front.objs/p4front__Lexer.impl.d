lib/p4front/lexer.ml: Buffer Int64 List Option Printf String
