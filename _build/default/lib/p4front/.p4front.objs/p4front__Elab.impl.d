lib/p4front/elab.ml: Format List P4ir Printf String Syntax
