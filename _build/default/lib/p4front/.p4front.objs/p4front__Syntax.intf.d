lib/p4front/syntax.mli: P4ir
