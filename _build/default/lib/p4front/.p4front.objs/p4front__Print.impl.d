lib/p4front/print.ml: Buffer List P4ir Printf String
