lib/p4front/elab.mli: P4ir Syntax
