lib/p4front/print.mli: P4ir
