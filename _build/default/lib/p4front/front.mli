(** Front door: parse + elaborate P4-flavoured source into a deployable
    bundle. *)

type error = { message : string; line : int; col : int }
(** [line]/[col] are 0 for elaboration errors (which have no position). *)

val parse_string :
  name:string -> string -> (P4ir.Programs.bundle, error) result
(** [name] becomes the program name. The bundle's description notes the
    textual origin. *)

val parse_file : string -> (P4ir.Programs.bundle, error) result
(** Program name is the basename without extension. *)

val pp_error : Format.formatter -> error -> unit
