type token =
  | INT of int64 * int option
  | IDENT of string
  | STRING of string
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COLON | COMMA | DOT | ARROW
  | ASSIGN
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | AMP | PIPE | CARET | TILDE | BANG
  | AND | OR
  | SHL | SHR
  | CONCAT
  | MASK
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let token_to_string = function
  | INT (v, None) -> Printf.sprintf "%Ld" v
  | INT (v, Some w) -> Printf.sprintf "%dw%Ld" w v
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | LBRACE -> "{" | RBRACE -> "}" | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COLON -> ":" | COMMA -> "," | DOT -> "." | ARROW -> "->"
  | ASSIGN -> "="
  | EQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | AND -> "&&" | OR -> "||"
  | SHL -> "<<" | SHR -> ">>"
  | CONCAT -> "++"
  | MASK -> "&&&"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.src then Some cur.src.[cur.pos + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let error cur fmt =
  Printf.ksprintf (fun msg -> raise (Lex_error (msg, cur.line, cur.col))) fmt

let rec skip_trivia cur =
  match (peek cur, peek2 cur) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance cur;
      skip_trivia cur
  | Some '/', Some '/' ->
      while peek cur <> None && peek cur <> Some '\n' do
        advance cur
      done;
      skip_trivia cur
  | Some '/', Some '*' ->
      advance cur;
      advance cur;
      let rec eat () =
        match (peek cur, peek2 cur) with
        | Some '*', Some '/' ->
            advance cur;
            advance cur
        | None, _ -> error cur "unterminated comment"
        | _ ->
            advance cur;
            eat ()
      in
      eat ();
      skip_trivia cur
  | _ -> ()

let lex_number cur =
  (* raw digits first; shapes: 123, 0x.., 0b.., <w>w<lit>, a.b.c.d *)
  let start = cur.pos in
  let read_while pred =
    let b = Buffer.create 8 in
    let rec go () =
      match peek cur with
      | Some c when pred c ->
          Buffer.add_char b c;
          advance cur;
          go ()
      | _ -> Buffer.contents b
    in
    go ()
  in
  let parse_lit s =
    try Int64.of_string s with Failure _ -> error cur "bad integer literal %s" s
  in
  let first = read_while (fun c -> is_hex c || c = 'x' || c = 'b' || c = 'w') in
  (* width-prefixed: digits 'w' literal *)
  match String.index_opt first 'w' with
  | Some wi
    when wi > 0
         && String.for_all is_digit (String.sub first 0 wi)
         && wi < String.length first - 1 ->
      let width = int_of_string (String.sub first 0 wi) in
      let lit = String.sub first (wi + 1) (String.length first - wi - 1) in
      INT (parse_lit lit, Some width)
  | _ -> (
      (* dotted quad? *)
      match peek cur with
      | Some '.' when String.for_all is_digit first -> (
          (* could be a.b.c.d *)
          let save_pos = cur.pos and save_line = cur.line and save_col = cur.col in
          advance cur;
          let b = read_while is_digit in
          match peek cur with
          | Some '.' ->
              advance cur;
              let c = read_while is_digit in
              (match peek cur with
              | Some '.' ->
                  advance cur;
                  let d = read_while is_digit in
                  if b = "" || c = "" || d = "" then error cur "bad IPv4 literal";
                  let quad s =
                    let v = int_of_string s in
                    if v > 255 then error cur "IPv4 octet out of range";
                    Int64.of_int v
                  in
                  let v =
                    List.fold_left
                      (fun acc o -> Int64.logor (Int64.shift_left acc 8) (quad o))
                      0L [ first; b; c; d ]
                  in
                  INT (v, Some 32)
              | _ -> error cur "bad IPv4 literal")
          | _ ->
              (* not a quad: rewind the dot consumption *)
              cur.pos <- save_pos;
              cur.line <- save_line;
              cur.col <- save_col;
              INT (parse_lit first, None))
      | _ ->
          if String.length first = 0 then error cur "empty number at %d" start;
          INT (parse_lit first, None))

let lex_string cur =
  advance cur (* opening quote *);
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | Some '"' ->
        advance cur;
        STRING (Buffer.contents b)
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' ->
            Buffer.add_char b '\n';
            advance cur;
            go ()
        | Some c ->
            Buffer.add_char b c;
            advance cur;
            go ()
        | None -> error cur "unterminated string")
    | Some c ->
        Buffer.add_char b c;
        advance cur;
        go ()
    | None -> error cur "unterminated string"
  in
  go ()

let tokenize src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let emit tok line col = toks := { tok; line; col } :: !toks in
  let rec loop () =
    skip_trivia cur;
    let line = cur.line and col = cur.col in
    match peek cur with
    | None -> emit EOF line col
    | Some c when is_digit c ->
        emit (lex_number cur) line col;
        loop ()
    | Some c when is_ident_start c ->
        let b = Buffer.create 16 in
        while (match peek cur with Some c -> is_ident c | None -> false) do
          Buffer.add_char b (Option.get (peek cur));
          advance cur
        done;
        emit (IDENT (Buffer.contents b)) line col;
        loop ()
    | Some '"' ->
        emit (lex_string cur) line col;
        loop ()
    | Some c ->
        let two ch tok1 tok0 =
          advance cur;
          if peek cur = Some ch then begin
            advance cur;
            emit tok1 line col
          end
          else emit tok0 line col
        in
        (match c with
        | '{' -> advance cur; emit LBRACE line col
        | '}' -> advance cur; emit RBRACE line col
        | '(' -> advance cur; emit LPAREN line col
        | ')' -> advance cur; emit RPAREN line col
        | '[' -> advance cur; emit LBRACKET line col
        | ']' -> advance cur; emit RBRACKET line col
        | ';' -> advance cur; emit SEMI line col
        | ':' -> advance cur; emit COLON line col
        | ',' -> advance cur; emit COMMA line col
        | '.' -> advance cur; emit DOT line col
        | '~' -> advance cur; emit TILDE line col
        | '^' -> advance cur; emit CARET line col
        | '*' -> advance cur; emit STAR line col
        | '/' -> advance cur; emit SLASH line col
        | '=' -> two '=' EQ ASSIGN
        | '!' -> two '=' NEQ BANG
        | '<' ->
            advance cur;
            (match peek cur with
            | Some '=' -> advance cur; emit LE line col
            | Some '<' -> advance cur; emit SHL line col
            | _ -> emit LT line col)
        | '>' ->
            advance cur;
            (match peek cur with
            | Some '=' -> advance cur; emit GE line col
            | Some '>' -> advance cur; emit SHR line col
            | _ -> emit GT line col)
        | '&' ->
            advance cur;
            (match (peek cur, peek2 cur) with
            | Some '&', Some '&' ->
                advance cur;
                advance cur;
                emit MASK line col
            | Some '&', _ ->
                advance cur;
                emit AND line col
            | _ -> emit AMP line col)
        | '|' -> two '|' OR PIPE
        | '+' -> two '+' CONCAT PLUS
        | '-' ->
            advance cur;
            if peek cur = Some '>' then begin
              advance cur;
              emit ARROW line col
            end
            else emit MINUS line col
        | c -> error cur "unexpected character %c" c);
        loop ()
  in
  loop ();
  List.rev !toks
