module Value = P4ir.Value
module Ast = P4ir.Ast

type var = { v_id : int; v_name : string; v_width : int }

type t =
  | Const of Value.t
  | Var of var
  | Bin of Ast.binop * t * t
  | Un of Ast.unop * t
  | Slice of t * int * int
  | Concat of t * t

let counter = ref 0

let fresh_var ~name ~width =
  incr counter;
  Var { v_id = !counter; v_name = name; v_width = width }

let const v = Const v

let of_int ~width i = Const (Value.of_int ~width i)

let rec width = function
  | Const v -> Value.width v
  | Var v -> v.v_width
  | Bin ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.LAnd | Ast.LOr), _, _)
    ->
      1
  | Bin (_, a, _) -> width a
  | Un (Ast.LNot, _) -> 1
  | Un (Ast.BNot, a) -> width a
  | Slice (_, msb, lsb) -> msb - lsb + 1
  | Concat (a, b) -> width a + width b

let is_const = function Const v -> Some v | _ -> None

let apply_binop op (a : Value.t) (b : Value.t) =
  match (op : Ast.binop) with
  | Ast.Add -> Value.add a b
  | Ast.Sub -> Value.sub a b
  | Ast.Mul -> Value.mul a b
  | Ast.BAnd -> Value.logand a b
  | Ast.BOr -> Value.logor a b
  | Ast.BXor -> Value.logxor a b
  | Ast.Shl -> Value.shift_left a (Value.to_int b)
  | Ast.Shr -> Value.shift_right a (Value.to_int b)
  | Ast.Eq -> Value.eq a b
  | Ast.Neq -> Value.neq a b
  | Ast.Lt -> Value.lt a b
  | Ast.Le -> Value.le a b
  | Ast.Gt -> Value.gt a b
  | Ast.Ge -> Value.ge a b
  | Ast.LAnd -> Value.of_bool (Value.to_bool a && Value.to_bool b)
  | Ast.LOr -> Value.of_bool (Value.to_bool a || Value.to_bool b)

let tru = Const Value.tru

let fls = Const Value.fls

let bin op a b =
  match (is_const a, is_const b) with
  | Some va, Some vb -> Const (apply_binop op va vb)
  | ca, cb -> (
      let zero v = match v with Some x -> Value.is_zero x | None -> false in
      let all_ones v =
        match v with
        | Some x -> Value.equal x (Value.ones (Value.width x))
        | None -> false
      in
      match (op : Ast.binop) with
      | Ast.Add when zero cb -> a
      | Ast.Add when zero ca -> b
      | Ast.Sub when zero cb -> a
      | Ast.BAnd when zero ca || zero cb -> Const (Value.zero (width a))
      | Ast.BAnd when all_ones cb -> a
      | Ast.BAnd when all_ones ca -> b
      | Ast.BOr when zero cb -> a
      | Ast.BOr when zero ca -> b
      | Ast.BXor when zero cb -> a
      | Ast.BXor when zero ca -> b
      | Ast.LAnd when ca = Some Value.tru -> b
      | Ast.LAnd when cb = Some Value.tru -> a
      | Ast.LAnd when zero ca || zero cb -> fls
      | Ast.LOr when zero ca -> b
      | Ast.LOr when zero cb -> a
      | Ast.LOr when ca = Some Value.tru || cb = Some Value.tru -> tru
      | Ast.Eq when a = b -> tru
      | Ast.Neq when a = b -> fls
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.LAnd | Ast.LOr ->
          Bin (op, a, b))

let un op a =
  match (op, is_const a) with
  | Ast.BNot, Some v -> Const (Value.lognot v)
  | Ast.LNot, Some v -> Const (Value.of_bool (not (Value.to_bool v)))
  | Ast.LNot, None -> ( match a with Un (Ast.LNot, inner) -> inner | _ -> Un (op, a))
  | Ast.BNot, None -> ( match a with Un (Ast.BNot, inner) -> inner | _ -> Un (op, a))

let slice e ~msb ~lsb =
  if lsb = 0 && msb = width e - 1 then e
  else
    match is_const e with
    | Some v -> Const (Value.slice v ~msb ~lsb)
    | None -> Slice (e, msb, lsb)

let concat a b =
  match (is_const a, is_const b) with
  | Some va, Some vb -> Const (Value.concat va vb)
  | _ -> Concat (a, b)

let not_ e = un Ast.LNot e

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v.v_id) then begin
          Hashtbl.add seen v.v_id ();
          acc := v :: !acc
        end
    | Bin (_, a, b) | Concat (a, b) ->
        go a;
        go b
    | Un (_, a) | Slice (a, _, _) -> go a
  in
  go e;
  List.rev !acc

let rec eval lookup = function
  | Const v -> v
  | Var v -> lookup v.v_id
  | Bin (op, a, b) -> (
      (* short-circuit logicals to avoid evaluating irrelevant branches *)
      match op with
      | Ast.LAnd ->
          if Value.to_bool (eval lookup a) then
            Value.of_bool (Value.to_bool (eval lookup b))
          else Value.fls
      | Ast.LOr ->
          if Value.to_bool (eval lookup a) then Value.tru
          else Value.of_bool (Value.to_bool (eval lookup b))
      | _ -> apply_binop op (eval lookup a) (eval lookup b))
  | Un (Ast.BNot, a) -> Value.lognot (eval lookup a)
  | Un (Ast.LNot, a) -> Value.of_bool (not (Value.to_bool (eval lookup a)))
  | Slice (a, msb, lsb) -> Value.slice (eval lookup a) ~msb ~lsb
  | Concat (a, b) -> Value.concat (eval lookup a) (eval lookup b)

let equal = ( = )

let binop_str (op : Ast.binop) =
  match op with
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.BAnd -> "&"
  | Ast.BOr -> "|"
  | Ast.BXor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.LAnd -> "&&"
  | Ast.LOr -> "||"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var v -> Format.fprintf ppf "%s#%d" v.v_name v.v_id
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b
  | Un (Ast.BNot, a) -> Format.fprintf ppf "~%a" pp a
  | Un (Ast.LNot, a) -> Format.fprintf ppf "!%a" pp a
  | Slice (a, msb, lsb) -> Format.fprintf ppf "%a[%d:%d]" pp a msb lsb
  | Concat (a, b) -> Format.fprintf ppf "(%a ++ %a)" pp a pp b
