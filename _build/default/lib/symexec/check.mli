(** Property checks over symbolic executions — the user-facing face of the
    formal-verification baseline (in the spirit of p4v, the paper's
    reference [3]).

    Verdicts are three-valued. [Holds] from a bounded solver means "no
    counterexample found within the search budget" for properties whose
    violation search is satisfiability-based; properties that are
    structural over the explored paths (e.g. {!rejected_are_dropped}) are
    exact. Each [Violated] verdict carries a concrete witness packet that
    drives the program down the violating path — these witnesses are what
    NetDebug replays against hardware. *)

type verdict = Holds | Violated | Unknown

type finding = {
  f_property : string;
  f_verdict : verdict;
  f_detail : string;
  f_witness : (int * Bitutil.Bitstring.t) option;
      (** (ingress port, packet) reproducing the violation — or, for
          reachability-style properties, exercising the property *)
}

val assertions : ?seed:int -> P4ir.Ast.program -> P4ir.Runtime.t -> finding list
(** One finding per [Assert] message in the program. *)

val rejected_are_dropped : P4ir.Ast.program -> P4ir.Runtime.t -> finding
(** The Section-4 property: every path that reaches parser [reject] ends
    dropped. Exact over the explored specification — and constitutionally
    unable to see the SDNet bug, because the hardware never enters the
    analysis. *)

val reject_reachable : ?seed:int -> P4ir.Ast.program -> P4ir.Runtime.t -> finding list
(** One finding per satisfiable reject path, each with a witness packet.
    These are ready-made negative test vectors. *)

val forward_requires_header :
  ?seed:int -> header:string -> P4ir.Ast.program -> P4ir.Runtime.t -> finding
(** No packet is forwarded while [header] is invalid. *)

val ttl_decremented : ?seed:int -> P4ir.Ast.program -> P4ir.Runtime.t -> finding
(** Every forwarded packet with a valid "ipv4" header leaves with
    [ttl_out = ttl_in - 1]. Catches {!P4ir.Programs.buggy_router}. *)

val egress_port_bounded :
  ?seed:int ->
  ports:int ->
  ?allowed:int list ->
  P4ir.Ast.program ->
  P4ir.Runtime.t ->
  finding
(** Every path that forwards to a {e constant} port stays below [ports]
    (or in [allowed], e.g. a CPU punt port). Paths with symbolic egress
    (reflection) are skipped. *)

val no_invalid_header_reads :
  ?seed:int -> P4ir.Ast.program -> P4ir.Runtime.t -> finding
(** No reachable path reads a field of a header that was never parsed or
    was invalidated — such reads silently yield zero and almost always
    indicate a missing validity guard. *)

val action_coverage : P4ir.Ast.program -> P4ir.Runtime.t -> finding list
(** Per table: which declared actions are exercised on some explored path
    (dead actions are suspicious — typically missing entries or
    unreachable control flow). *)

val run_all : ?seed:int -> P4ir.Ast.program -> P4ir.Runtime.t -> finding list
(** The standard battery: assertions, rejected-are-dropped,
    forward-requires-ipv4 (when the program has an ipv4 header),
    ttl-decremented (idem), no-invalid-header-reads, action coverage. *)

val pp_finding : Format.formatter -> finding -> unit

val verdict_to_string : verdict -> string
