(** Symbolic bit-vector expressions over the fields of an unknown packet.

    The symbolic executor assigns every extracted header field a fresh
    variable; all computation in the program then builds expressions over
    those variables. Widths follow {!P4ir.Value} (1-64 bits); booleans are
    width-1 expressions. *)

type var = { v_id : int; v_name : string; v_width : int }

type t =
  | Const of P4ir.Value.t
  | Var of var
  | Bin of P4ir.Ast.binop * t * t
  | Un of P4ir.Ast.unop * t
  | Slice of t * int * int
  | Concat of t * t

val fresh_var : name:string -> width:int -> t
(** Globally unique id; names are for diagnostics only. *)

val const : P4ir.Value.t -> t

val of_int : width:int -> int -> t

val width : t -> int

val is_const : t -> P4ir.Value.t option

val bin : P4ir.Ast.binop -> t -> t -> t
(** Smart constructor: constant-folds and applies simple identities
    (x+0, x&0, x^x, masks, double negation, ...). *)

val un : P4ir.Ast.unop -> t -> t

val slice : t -> msb:int -> lsb:int -> t

val concat : t -> t -> t

val not_ : t -> t
(** Boolean negation of a width-1 expression. *)

val vars : t -> var list
(** Distinct variables, by id. *)

val eval : (int -> P4ir.Value.t) -> t -> P4ir.Value.t
(** Evaluate under an assignment from var id to value.
    @raise Not_found if the assignment misses a variable. *)

val equal : t -> t -> bool
(** Structural equality (after construction-time simplification). *)

val pp : Format.formatter -> t -> unit
