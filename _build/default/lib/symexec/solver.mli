(** A bounded satisfiability search for conjunctions of width-1 symbolic
    expressions.

    The solver is {e sound for SAT}: a returned model is always verified
    against every constraint before being reported. It is incomplete for
    UNSAT — when the search budget is exhausted it answers [Unknown] (except
    for trivially false constraint sets). This is the right trade-off for a
    verification tool whose job is to {e find counterexamples}: candidate
    values are mined from the constants that appear in the constraints
    (select cases, table entries, comparison bounds), so realistic
    data-plane path conditions are solved in a few thousand tries. *)

type model

type result = Sat of model | Unsat | Unknown

val solve : ?seed:int -> ?max_tries:int -> ?use_mining:bool -> Sym.t list -> result
(** Satisfiability of the conjunction. [max_tries] defaults to 20000.
    [use_mining] (default true) enables candidate mining from the
    constraints' constants; disabling it degrades the search to
    extremes-plus-random sampling (exposed for the ablation bench). *)

val model_value : model -> int -> P4ir.Value.t
(** Value of a variable id in the model; unconstrained variables read 0. *)

val holds : model -> Sym.t list -> bool
(** Re-check a conjunction under a model (unassigned variables read 0). *)

val model_bindings : model -> (int * P4ir.Value.t) list

val pp_model : (int -> string) -> Format.formatter -> model -> unit
(** [pp_model name_of ppf m] renders using the caller's variable names. *)
