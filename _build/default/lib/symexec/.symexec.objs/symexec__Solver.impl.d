lib/symexec/solver.ml: Array Bitutil Format Hashtbl Int64 List P4ir Sym
