lib/symexec/sym.mli: Format P4ir
