lib/symexec/sexec.mli: Bitutil Format P4ir Solver Sym
