lib/symexec/check.ml: Bitutil Format Hashtbl List Option P4ir Printf Sexec Solver String Sym
