lib/symexec/sexec.ml: Bitutil Format Hashtbl Int64 List Option P4ir Printf Solver String Sym
