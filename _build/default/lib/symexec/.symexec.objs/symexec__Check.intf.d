lib/symexec/check.mli: Bitutil Format P4ir
