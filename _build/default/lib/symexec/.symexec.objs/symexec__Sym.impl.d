lib/symexec/sym.ml: Format Hashtbl List P4ir
