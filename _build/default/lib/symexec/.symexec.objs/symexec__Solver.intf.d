lib/symexec/solver.mli: Format P4ir Sym
