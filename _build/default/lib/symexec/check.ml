module Ast = P4ir.Ast
module Value = P4ir.Value
module Stdmeta = P4ir.Stdmeta
module Bitstring = Bitutil.Bitstring

type verdict = Holds | Violated | Unknown

type finding = {
  f_property : string;
  f_verdict : verdict;
  f_detail : string;
  f_witness : (int * Bitstring.t) option;
}

let verdict_to_string = function
  | Holds -> "HOLDS"
  | Violated -> "VIOLATED"
  | Unknown -> "UNKNOWN"

let pp_finding ppf f =
  Format.fprintf ppf "%-9s %s — %s" (verdict_to_string f.f_verdict) f.f_property f.f_detail

let witness_of path model =
  let port = Value.to_int (Solver.model_value model path.Sexec.p_ingress_port.Sym.v_id) in
  (* clamp to a plausible physical port *)
  let port = port land 0x3 in
  (port, Sexec.witness_bits path model)

let assertions ?seed program runtime =
  let run = Sexec.explore program runtime in
  let by_msg = Hashtbl.create 8 in
  List.iter
    (fun (conds, cond, msg) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_msg msg) in
      Hashtbl.replace by_msg msg ((conds, cond) :: prev))
    run.Sexec.obligations;
  Hashtbl.fold
    (fun msg obs acc ->
      let verdict = ref Holds in
      let detail = ref "no counterexample in bounded search" in
      let witness = ref None in
      List.iter
        (fun (conds, cond) ->
          if !verdict <> Violated then
            match Solver.solve ?seed (Sym.not_ cond :: conds) with
            | Solver.Sat model ->
                verdict := Violated;
                detail := "assertion can fail on a reachable path";
                (* build a pseudo-path for witness rendering: reuse the first
                   explored path with the same condition prefix if any *)
                let path =
                  List.find_opt
                    (fun p ->
                      List.for_all (fun c -> List.mem c p.Sexec.p_conds) conds)
                    run.Sexec.paths
                in
                witness :=
                  Option.map (fun p -> witness_of p model) path
            | Solver.Unsat -> ()
            | Solver.Unknown -> ())
        obs;
      {
        f_property = Printf.sprintf "assert \"%s\"" msg;
        f_verdict = !verdict;
        f_detail = !detail;
        f_witness = !witness;
      }
      :: acc)
    by_msg []

let rejected_are_dropped program runtime =
  let run = Sexec.explore program runtime in
  let reject_paths =
    List.filter (fun p -> match p.Sexec.p_ending with Sexec.Rejected _ -> true | _ -> false)
      run.Sexec.paths
  in
  (* In the specification semantics, a rejected path terminates without
     reaching the deparser: this is exact over the explored model. *)
  {
    f_property = "rejected packets are dropped";
    f_verdict = Holds;
    f_detail =
      Printf.sprintf
        "all %d reject path(s) of the specification terminate without forwarding \
         (verified on the program specification only — hardware behaviour is out of \
         scope for this tool)"
        (List.length reject_paths);
    f_witness = None;
  }

let reject_reachable ?seed program runtime =
  let run = Sexec.explore program runtime in
  let i = ref 0 in
  List.filter_map
    (fun p ->
      match p.Sexec.p_ending with
      | Sexec.Rejected err -> (
          incr i;
          match Solver.solve ?seed p.Sexec.p_conds with
          | Solver.Sat model ->
              Some
                {
                  f_property = Printf.sprintf "reject path #%d (%s) reachable" !i
                      (Stdmeta.error_name err);
                  f_verdict = Holds;
                  f_detail = "witness packet generated";
                  f_witness = Some (witness_of p model);
                }
          | Solver.Unsat -> None
          | Solver.Unknown ->
              Some
                {
                  f_property = Printf.sprintf "reject path #%d (%s) reachable" !i
                      (Stdmeta.error_name err);
                  f_verdict = Unknown;
                  f_detail = "no witness found within the search budget";
                  f_witness = None;
                })
      | Sexec.Dropped _ | Sexec.Forwarded -> None)
    run.Sexec.paths

let forward_requires_header ?seed ~header program runtime =
  let run = Sexec.explore program runtime in
  let offending =
    List.filter
      (fun p ->
        p.Sexec.p_ending = Sexec.Forwarded
        && not (List.exists (fun (h, _) -> String.equal h header) p.Sexec.p_extracts)
        && not
             (List.exists
                (fun (h, _, _) -> String.equal h header)
                p.Sexec.p_fields))
      run.Sexec.paths
  in
  let rec first_sat = function
    | [] -> None
    | p :: rest -> (
        match Solver.solve ?seed p.Sexec.p_conds with
        | Solver.Sat model -> Some (p, model)
        | Solver.Unsat | Solver.Unknown -> first_sat rest)
  in
  match first_sat offending with
  | Some (p, model) ->
      {
        f_property = Printf.sprintf "no forward without valid %s" header;
        f_verdict = Violated;
        f_detail = "a packet can be forwarded with the header invalid";
        f_witness = Some (witness_of p model);
      }
  | None ->
      {
        f_property = Printf.sprintf "no forward without valid %s" header;
        f_verdict = (if offending = [] then Holds else Unknown);
        f_detail =
          (if offending = [] then "every forwarded path carries the header"
           else "offending paths exist but none proved reachable in budget");
        f_witness = None;
      }

let ttl_decremented ?seed program runtime =
  let run = Sexec.explore program runtime in
  let result = ref None in
  List.iter
    (fun p ->
      if !result = None && p.Sexec.p_ending = Sexec.Forwarded then
        match
          ( List.find_opt (fun (h, _) -> String.equal h "ipv4") p.Sexec.p_extracts,
            List.find_opt
              (fun (h, f, _) -> String.equal h "ipv4" && String.equal f "ttl")
              p.Sexec.p_fields )
        with
        | Some (_, fieldvars), Some (_, _, final_ttl) -> (
            match List.assoc_opt "ttl" fieldvars with
            | Some ttl_var ->
                let expected =
                  Sym.bin Ast.Sub (Sym.Var ttl_var) (Sym.of_int ~width:8 1)
                in
                if not (Sym.equal final_ttl expected) then begin
                  (* structural mismatch: confirm reachability of the path
                     where they differ *)
                  let differs = Sym.bin Ast.Neq final_ttl expected in
                  match Solver.solve ?seed (differs :: p.Sexec.p_conds) with
                  | Solver.Sat model -> result := Some (Violated, Some (witness_of p model))
                  | Solver.Unsat -> ()
                  | Solver.Unknown -> result := Some (Unknown, None)
                end
            | None -> ())
        | _, _ -> ())
    run.Sexec.paths;
  match !result with
  | Some (Violated, witness) ->
      {
        f_property = "forwarded IPv4 packets have ttl_out = ttl_in - 1";
        f_verdict = Violated;
        f_detail = "a forwarded path leaves the TTL untouched or wrong";
        f_witness = witness;
      }
  | Some (v, _) ->
      {
        f_property = "forwarded IPv4 packets have ttl_out = ttl_in - 1";
        f_verdict = v;
        f_detail = "structural mismatch found but reachability is unresolved";
        f_witness = None;
      }
  | None ->
      {
        f_property = "forwarded IPv4 packets have ttl_out = ttl_in - 1";
        f_verdict = Holds;
        f_detail = "all forwarded IPv4 paths decrement the TTL";
        f_witness = None;
      }

let action_coverage program runtime =
  let run = Sexec.explore program runtime in
  List.concat_map
    (fun (tbl : Ast.table) ->
      let exercised =
        List.sort_uniq String.compare
          (List.concat_map
             (fun p ->
               List.filter_map
                 (fun (t, a) -> if String.equal t tbl.Ast.t_name then Some a else None)
                 p.Sexec.p_tables)
             run.Sexec.paths)
      in
      List.map
        (fun action ->
          let hit = List.mem action exercised in
          {
            f_property =
              Printf.sprintf "table %s: action %s reachable" tbl.Ast.t_name action;
            f_verdict = (if hit then Holds else Violated);
            f_detail =
              (if hit then "exercised on some explored path"
               else "dead action: never selected with the installed entries");
            f_witness = None;
          })
        tbl.Ast.t_actions)
    program.Ast.p_tables

let egress_port_bounded ?seed ~ports ?(allowed = []) program runtime =
  let run = Sexec.explore program runtime in
  let offending = ref None in
  List.iter
    (fun p ->
      if !offending = None && p.Sexec.p_ending = Sexec.Forwarded then
        match Sym.is_const p.Sexec.p_egress with
        | Some v ->
            let port = Value.to_int v in
            if port >= ports && not (List.mem port allowed) then
              (match Solver.solve ?seed p.Sexec.p_conds with
              | Solver.Sat model -> offending := Some (port, p, Some model)
              | Solver.Unsat -> ()
              | Solver.Unknown -> offending := Some (port, p, None))
        | None ->
            (* symbolic egress (e.g. reflected ingress port): cannot bound
               it statically *)
            ())
    run.Sexec.paths;
  match !offending with
  | Some (port, p, model) ->
      {
        f_property = Printf.sprintf "egress ports stay below %d" ports;
        f_verdict = (if model = None then Unknown else Violated);
        f_detail = Printf.sprintf "a path forwards to non-physical port %d" port;
        f_witness = Option.map (fun m -> witness_of p m) model;
      }
  | None ->
      {
        f_property = Printf.sprintf "egress ports stay below %d" ports;
        f_verdict = Holds;
        f_detail = "every constant egress port is physical (or allow-listed)";
        f_witness = None;
      }

let no_invalid_header_reads ?seed program runtime =
  let run = Sexec.explore program runtime in
  let offending = ref None in
  List.iter
    (fun p ->
      if !offending = None && p.Sexec.p_invalid_reads <> [] then
        match Solver.solve ?seed p.Sexec.p_conds with
        | Solver.Sat model -> offending := Some (p, model)
        | Solver.Unsat | Solver.Unknown -> ())
    run.Sexec.paths;
  match !offending with
  | Some (p, model) ->
      let h, f = List.hd p.Sexec.p_invalid_reads in
      {
        f_property = "no reads of invalid header fields";
        f_verdict = Violated;
        f_detail =
          Printf.sprintf "%s.%s is read on a path where %s was never parsed (reads 0)" h f h;
        f_witness = Some (witness_of p model);
      }
  | None ->
      {
        f_property = "no reads of invalid header fields";
        f_verdict = Holds;
        f_detail = "every field read happens under the header's validity";
        f_witness = None;
      }

let run_all ?seed program runtime =
  let has_ipv4 = Ast.find_header program "ipv4" <> None in
  assertions ?seed program runtime
  @ [ rejected_are_dropped program runtime ]
  @ (if has_ipv4 then
       [
         forward_requires_header ?seed ~header:"ipv4" program runtime;
         ttl_decremented ?seed program runtime;
       ]
     else [])
  @ [ no_invalid_header_reads ?seed program runtime ]
  @ action_coverage program runtime
