(** Symbolic execution of an IR program under the language-spec semantics.

    Explores every control path of parse -> ingress -> egress against the
    installed control-plane entries, building a path condition over the
    unknown packet's fields. This is what "software formal verification"
    means in the paper's Figure 2: reasoning about the {e specification} of
    the program — deliberately blind to anything a compiler or the hardware
    does to it.

    Model notes (documented simplifications, all spec-faithful for the
    program library): packets are assumed long enough for every extract
    (no PacketTooShort paths); the architecture's IPv4 checksum
    verification is modelled as a free boolean choice, and witness packets
    are rendered with a correct checksum when the path assumes it. *)

type ending = Rejected of int | Dropped of string | Forwarded

type path = {
  p_conds : Sym.t list;  (** path condition, a conjunction *)
  p_ending : ending;
  p_ingress_port : Sym.var;
  p_extracts : (string * (string * Sym.var) list) list;
      (** extraction order: header -> (field, its variable) *)
  p_fields : (string * string * Sym.t) list;
      (** final symbolic values of all valid headers' fields *)
  p_egress : Sym.t;  (** final egress_spec *)
  p_tables : (string * string) list;  (** (table, action) applied, in order *)
  p_checksum_assumed_ok : bool;
  p_invalid_reads : (string * string) list;
      (** fields read while their header was invalid (such reads yield
          zero — usually a program bug) *)
}

type run = {
  paths : path list;
  obligations : (Sym.t list * Sym.t * string) list;
      (** assert obligations: (path condition, asserted condition, message) *)
  truncated : bool;  (** true if [max_paths] stopped exploration early *)
}

val explore : ?max_paths:int -> P4ir.Ast.program -> P4ir.Runtime.t -> run
(** [max_paths] defaults to 4096. *)

val witness_bits : path -> Solver.model -> Bitutil.Bitstring.t
(** Render a concrete packet that drives execution down [path] under
    [model]: extracted headers in order with model values (checksum
    repaired when the path assumes it verifies), followed by a small
    padding payload. *)

val pp_path : Format.formatter -> path -> unit
