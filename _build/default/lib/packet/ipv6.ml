type t = {
  version : int64;
  traffic_class : int64;
  flow_label : int64;
  payload_len : int64;
  next_header : int64;
  hop_limit : int64;
  src_hi : int64;
  src_lo : int64;
  dst_hi : int64;
  dst_lo : int64;
}

let size_bits = 320

let make ?(next_header = Proto.ipproto_udp) ?(hop_limit = 64L) ?(src = (0L, 0L))
    ?(dst = (0L, 0L)) ~payload_len () =
  let src_hi, src_lo = src in
  let dst_hi, dst_lo = dst in
  {
    version = 6L;
    traffic_class = 0L;
    flow_label = 0L;
    payload_len = Int64.of_int payload_len;
    next_header;
    hop_limit;
    src_hi;
    src_lo;
    dst_hi;
    dst_lo;
  }

let encode w t =
  Bitstring.Writer.push_int64 w ~width:4 t.version;
  Bitstring.Writer.push_int64 w ~width:8 t.traffic_class;
  Bitstring.Writer.push_int64 w ~width:20 t.flow_label;
  Bitstring.Writer.push_int64 w ~width:16 t.payload_len;
  Bitstring.Writer.push_int64 w ~width:8 t.next_header;
  Bitstring.Writer.push_int64 w ~width:8 t.hop_limit;
  Bitstring.Writer.push_int64 w ~width:64 t.src_hi;
  Bitstring.Writer.push_int64 w ~width:64 t.src_lo;
  Bitstring.Writer.push_int64 w ~width:64 t.dst_hi;
  Bitstring.Writer.push_int64 w ~width:64 t.dst_lo

let decode r =
  let version = Bitstring.Reader.read r 4 in
  let traffic_class = Bitstring.Reader.read r 8 in
  let flow_label = Bitstring.Reader.read r 20 in
  let payload_len = Bitstring.Reader.read r 16 in
  let next_header = Bitstring.Reader.read r 8 in
  let hop_limit = Bitstring.Reader.read r 8 in
  let src_hi = Bitstring.Reader.read r 64 in
  let src_lo = Bitstring.Reader.read r 64 in
  let dst_hi = Bitstring.Reader.read r 64 in
  let dst_lo = Bitstring.Reader.read r 64 in
  { version; traffic_class; flow_label; payload_len; next_header; hop_limit;
    src_hi; src_lo; dst_hi; dst_lo }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "ipv6 %s -> %s next=%s hop=%Ld"
    (Addr.ipv6_to_string (t.src_hi, t.src_lo))
    (Addr.ipv6_to_string (t.dst_hi, t.dst_lo))
    (Proto.ipproto_name t.next_header)
    t.hop_limit
