type t = {
  src_port : int64;
  dst_port : int64;
  seq : int64;
  ack : int64;
  data_offset : int64;
  reserved : int64;
  flags : int64;
  window : int64;
  checksum : int64;
  urgent : int64;
}

let size_bits = 160

let flag_fin = 0x01L
let flag_syn = 0x02L
let flag_rst = 0x04L
let flag_ack = 0x10L

let make ?(src_port = 1234L) ?(dst_port = 80L) ?(seq = 0L) ?(flags = flag_syn) () =
  {
    src_port;
    dst_port;
    seq;
    ack = 0L;
    data_offset = 5L;
    reserved = 0L;
    flags;
    window = 65535L;
    checksum = 0L;
    urgent = 0L;
  }

let encode w t =
  Bitstring.Writer.push_int64 w ~width:16 t.src_port;
  Bitstring.Writer.push_int64 w ~width:16 t.dst_port;
  Bitstring.Writer.push_int64 w ~width:32 t.seq;
  Bitstring.Writer.push_int64 w ~width:32 t.ack;
  Bitstring.Writer.push_int64 w ~width:4 t.data_offset;
  Bitstring.Writer.push_int64 w ~width:4 t.reserved;
  Bitstring.Writer.push_int64 w ~width:8 t.flags;
  Bitstring.Writer.push_int64 w ~width:16 t.window;
  Bitstring.Writer.push_int64 w ~width:16 t.checksum;
  Bitstring.Writer.push_int64 w ~width:16 t.urgent

let decode r =
  let src_port = Bitstring.Reader.read r 16 in
  let dst_port = Bitstring.Reader.read r 16 in
  let seq = Bitstring.Reader.read r 32 in
  let ack = Bitstring.Reader.read r 32 in
  let data_offset = Bitstring.Reader.read r 4 in
  let reserved = Bitstring.Reader.read r 4 in
  let flags = Bitstring.Reader.read r 8 in
  let window = Bitstring.Reader.read r 16 in
  let checksum = Bitstring.Reader.read r 16 in
  let urgent = Bitstring.Reader.read r 16 in
  { src_port; dst_port; seq; ack; data_offset; reserved; flags; window; checksum; urgent }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a = b

let pp ppf t =
  let flag_names =
    [ (0x02L, "SYN"); (0x10L, "ACK"); (0x01L, "FIN"); (0x04L, "RST"); (0x08L, "PSH") ]
  in
  let fl =
    List.filter_map
      (fun (bit, n) -> if Int64.logand t.flags bit <> 0L then Some n else None)
      flag_names
  in
  Format.fprintf ppf "tcp %Ld -> %Ld [%s] seq=%Ld" t.src_port t.dst_port
    (String.concat "," fl) t.seq
