type t = { src_port : int64; dst_port : int64; length : int64; checksum : int64 }

let size_bits = 64

let make ?(src_port = 1234L) ?(dst_port = 4321L) ~payload_len () =
  { src_port; dst_port; length = Int64.of_int (8 + payload_len); checksum = 0L }

let encode w t =
  Bitstring.Writer.push_int64 w ~width:16 t.src_port;
  Bitstring.Writer.push_int64 w ~width:16 t.dst_port;
  Bitstring.Writer.push_int64 w ~width:16 t.length;
  Bitstring.Writer.push_int64 w ~width:16 t.checksum

let decode r =
  let src_port = Bitstring.Reader.read r 16 in
  let dst_port = Bitstring.Reader.read r 16 in
  let length = Bitstring.Reader.read r 16 in
  let checksum = Bitstring.Reader.read r 16 in
  { src_port; dst_port; length; checksum }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a = b

let pp ppf t = Format.fprintf ppf "udp %Ld -> %Ld len=%Ld" t.src_port t.dst_port t.length
