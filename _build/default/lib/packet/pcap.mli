(** Classic libpcap capture files (little-endian, LINKTYPE_ETHERNET).

    NetDebug's checker captures failing packets with virtual timestamps;
    exporting them as pcap lets standard tooling dissect them. A reader is
    included so round trips are testable without external tools. *)

type record = { ts_ns : float; data : string }

val encode : record list -> string
(** A complete capture file: global header + one record per packet.
    Packets longer than the 65535-byte snap length are truncated. *)

val decode : string -> (record list, string) result
(** Accepts the little-endian microsecond format {!encode} produces. *)

val write_file : string -> record list -> unit

val read_file : string -> (record list, string) result
