(** IPv4 header (options unsupported; [ihl] is fixed at 5 by {!make} but
    arbitrary values survive a decode/encode round-trip). *)

type t = {
  version : int64;
  ihl : int64;
  dscp : int64;
  ecn : int64;
  total_len : int64;
  ident : int64;
  flags : int64;
  frag_offset : int64;
  ttl : int64;
  protocol : int64;
  checksum : int64;
  src : int64;
  dst : int64;
}

val size_bits : int

val make :
  ?dscp:int64 ->
  ?ttl:int64 ->
  ?protocol:int64 ->
  ?src:int64 ->
  ?dst:int64 ->
  payload_len:int ->
  unit ->
  t
(** Builds a well-formed header: version 4, ihl 5, correct [total_len] for a
    payload of [payload_len] bytes, and a correct checksum. *)

val with_checksum : t -> t
(** Recompute the header checksum field. *)

val checksum_ok : t -> bool

val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
