(** Ethernet II header (no FCS; the device model accounts FCS separately). *)

type t = { dst : int64; src : int64; ethertype : int64 }

val size_bits : int

val make : ?dst:int64 -> ?src:int64 -> ?ethertype:int64 -> unit -> t
(** Defaults: broadcast dst, zero src, IPv4 ethertype. *)

val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
