(** IPv6 header. The two 128-bit addresses are stored as (hi, lo) pairs of
    64-bit values, matching the IR's 64-bit field limit. *)

type t = {
  version : int64;
  traffic_class : int64;
  flow_label : int64;
  payload_len : int64;
  next_header : int64;
  hop_limit : int64;
  src_hi : int64;
  src_lo : int64;
  dst_hi : int64;
  dst_lo : int64;
}

val size_bits : int

val make :
  ?next_header:int64 ->
  ?hop_limit:int64 ->
  ?src:int64 * int64 ->
  ?dst:int64 * int64 ->
  payload_len:int ->
  unit ->
  t

val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
