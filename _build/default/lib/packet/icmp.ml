type t = { icmp_type : int64; code : int64; checksum : int64; rest : int64 }

let size_bits = 64

let echo ~ty ?(ident = 1L) ?(seq = 0L) () =
  { icmp_type = ty; code = 0L; checksum = 0L;
    rest = Int64.logor (Int64.shift_left ident 16) (Int64.logand seq 0xffffL) }

let echo_request ?ident ?seq () = echo ~ty:8L ?ident ?seq ()

let echo_reply ?ident ?seq () = echo ~ty:0L ?ident ?seq ()

let encode w t =
  Bitstring.Writer.push_int64 w ~width:8 t.icmp_type;
  Bitstring.Writer.push_int64 w ~width:8 t.code;
  Bitstring.Writer.push_int64 w ~width:16 t.checksum;
  Bitstring.Writer.push_int64 w ~width:32 t.rest

let decode r =
  let icmp_type = Bitstring.Reader.read r 8 in
  let code = Bitstring.Reader.read r 8 in
  let checksum = Bitstring.Reader.read r 16 in
  let rest = Bitstring.Reader.read r 32 in
  { icmp_type; code; checksum; rest }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a = b

let pp ppf t = Format.fprintf ppf "icmp type=%Ld code=%Ld" t.icmp_type t.code
