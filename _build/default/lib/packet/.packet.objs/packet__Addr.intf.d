lib/packet/addr.mli:
