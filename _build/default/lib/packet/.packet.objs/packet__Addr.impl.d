lib/packet/addr.ml: Int64 List Printf String
