lib/packet/packet.ml: Addr Arp Bitutil Char Eth Format Icmp Int64 Ipv4 Ipv6 List Mpls Pcap Proto String Tcp Udp Vlan
