lib/packet/pcap.ml: Buffer Char Float In_channel List Out_channel String
