lib/packet/tcp.ml: Bitstring Format Int64 List String
