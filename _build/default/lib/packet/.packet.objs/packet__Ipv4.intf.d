lib/packet/ipv4.mli: Bitstring Format
