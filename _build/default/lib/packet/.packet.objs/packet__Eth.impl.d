lib/packet/eth.ml: Addr Bitstring Format Proto
