lib/packet/pcap.mli:
