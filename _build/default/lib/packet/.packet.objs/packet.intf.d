lib/packet/packet.mli: Addr Arp Bitutil Eth Format Icmp Ipv4 Ipv6 Mpls Pcap Proto Tcp Udp Vlan
