lib/packet/arp.mli: Bitstring Format
