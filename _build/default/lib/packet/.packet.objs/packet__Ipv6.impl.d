lib/packet/ipv6.ml: Addr Bitstring Format Int64 Proto
