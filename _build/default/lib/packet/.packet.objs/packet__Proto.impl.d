lib/packet/proto.ml: Printf
