lib/packet/eth.mli: Bitstring Format
