lib/packet/icmp.mli: Bitstring Format
