lib/packet/mpls.ml: Bitstring Format
