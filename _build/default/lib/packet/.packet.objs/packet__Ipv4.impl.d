lib/packet/ipv4.ml: Addr Bitstring Bitutil Format Int64 Proto
