lib/packet/vlan.ml: Bitstring Format Proto
