lib/packet/ipv6.mli: Bitstring Format
