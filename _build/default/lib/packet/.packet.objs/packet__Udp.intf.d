lib/packet/udp.mli: Bitstring Format
