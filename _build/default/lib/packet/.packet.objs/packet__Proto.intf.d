lib/packet/proto.mli:
