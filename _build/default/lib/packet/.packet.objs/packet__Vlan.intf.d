lib/packet/vlan.mli: Bitstring Format
