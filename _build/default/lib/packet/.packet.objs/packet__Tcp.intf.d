lib/packet/tcp.mli: Bitstring Format
