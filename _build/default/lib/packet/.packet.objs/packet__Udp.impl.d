lib/packet/udp.ml: Bitstring Format Int64
