lib/packet/icmp.ml: Bitstring Format Int64
