lib/packet/arp.ml: Addr Bitstring Format Proto
