lib/packet/mpls.mli: Bitstring Format
