(** Protocol number constants shared by the codecs and the P4 programs. *)

(* EtherTypes *)
val ethertype_ipv4 : int64
val ethertype_arp : int64
val ethertype_ipv6 : int64
val ethertype_vlan : int64
val ethertype_mpls : int64

(* IP protocol numbers *)
val ipproto_icmp : int64
val ipproto_tcp : int64
val ipproto_udp : int64

val ethertype_name : int64 -> string
val ipproto_name : int64 -> string
