type t = {
  version : int64;
  ihl : int64;
  dscp : int64;
  ecn : int64;
  total_len : int64;
  ident : int64;
  flags : int64;
  frag_offset : int64;
  ttl : int64;
  protocol : int64;
  checksum : int64;
  src : int64;
  dst : int64;
}

let size_bits = 160

let encode w t =
  Bitstring.Writer.push_int64 w ~width:4 t.version;
  Bitstring.Writer.push_int64 w ~width:4 t.ihl;
  Bitstring.Writer.push_int64 w ~width:6 t.dscp;
  Bitstring.Writer.push_int64 w ~width:2 t.ecn;
  Bitstring.Writer.push_int64 w ~width:16 t.total_len;
  Bitstring.Writer.push_int64 w ~width:16 t.ident;
  Bitstring.Writer.push_int64 w ~width:3 t.flags;
  Bitstring.Writer.push_int64 w ~width:13 t.frag_offset;
  Bitstring.Writer.push_int64 w ~width:8 t.ttl;
  Bitstring.Writer.push_int64 w ~width:8 t.protocol;
  Bitstring.Writer.push_int64 w ~width:16 t.checksum;
  Bitstring.Writer.push_int64 w ~width:32 t.src;
  Bitstring.Writer.push_int64 w ~width:32 t.dst

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let with_checksum t =
  let zeroed = { t with checksum = 0L } in
  let sum = Bitutil.Checksum.checksum_bits (to_bits zeroed) in
  { t with checksum = Int64.of_int sum }

let checksum_ok t = Bitutil.Checksum.valid (Bitstring.to_string (to_bits t))

let make ?(dscp = 0L) ?(ttl = 64L) ?(protocol = Proto.ipproto_udp) ?(src = 0L) ?(dst = 0L)
    ~payload_len () =
  with_checksum
    {
      version = 4L;
      ihl = 5L;
      dscp;
      ecn = 0L;
      total_len = Int64.of_int (20 + payload_len);
      ident = 0L;
      flags = 2L (* don't fragment *);
      frag_offset = 0L;
      ttl;
      protocol;
      checksum = 0L;
      src;
      dst;
    }

let decode r =
  let version = Bitstring.Reader.read r 4 in
  let ihl = Bitstring.Reader.read r 4 in
  let dscp = Bitstring.Reader.read r 6 in
  let ecn = Bitstring.Reader.read r 2 in
  let total_len = Bitstring.Reader.read r 16 in
  let ident = Bitstring.Reader.read r 16 in
  let flags = Bitstring.Reader.read r 3 in
  let frag_offset = Bitstring.Reader.read r 13 in
  let ttl = Bitstring.Reader.read r 8 in
  let protocol = Bitstring.Reader.read r 8 in
  let checksum = Bitstring.Reader.read r 16 in
  let src = Bitstring.Reader.read r 32 in
  let dst = Bitstring.Reader.read r 32 in
  { version; ihl; dscp; ecn; total_len; ident; flags; frag_offset; ttl; protocol;
    checksum; src; dst }

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "ipv4 %s -> %s proto=%s ttl=%Ld len=%Ld" (Addr.ipv4_to_string t.src)
    (Addr.ipv4_to_string t.dst)
    (Proto.ipproto_name t.protocol)
    t.ttl t.total_len
