(** MPLS label stack entry. *)

type t = { label : int64; tc : int64; bos : int64; ttl : int64 }

val size_bits : int
val make : ?label:int64 -> ?tc:int64 -> ?bos:int64 -> ?ttl:int64 -> unit -> t
val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
