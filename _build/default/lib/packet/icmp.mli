(** ICMP (echo-oriented subset: type, code, checksum, rest-of-header). *)

type t = { icmp_type : int64; code : int64; checksum : int64; rest : int64 }

val size_bits : int
val echo_request : ?ident:int64 -> ?seq:int64 -> unit -> t
val echo_reply : ?ident:int64 -> ?seq:int64 -> unit -> t
val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
