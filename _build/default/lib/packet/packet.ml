module Bitstring = Bitutil.Bitstring

type header =
  | Eth of Eth.t
  | Vlan of Vlan.t
  | Arp of Arp.t
  | Ipv4 of Ipv4.t
  | Ipv6 of Ipv6.t
  | Icmp of Icmp.t
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Mpls of Mpls.t

type t = { headers : header list; payload : Bitstring.t }

let make headers ?(payload = Bitstring.empty) () = { headers; payload }

let payload_of_string s = Bitstring.of_string s

let encode_header w = function
  | Eth h -> Eth.encode w h
  | Vlan h -> Vlan.encode w h
  | Arp h -> Arp.encode w h
  | Ipv4 h -> Ipv4.encode w h
  | Ipv6 h -> Ipv6.encode w h
  | Icmp h -> Icmp.encode w h
  | Tcp h -> Tcp.encode w h
  | Udp h -> Udp.encode w h
  | Mpls h -> Mpls.encode w h

let serialize t =
  let w = Bitstring.Writer.create () in
  List.iter (encode_header w) t.headers;
  Bitstring.Writer.push_bits w t.payload;
  Bitstring.Writer.contents w

let byte_length t = Bitstring.byte_length (serialize t)

let header_name = function
  | Eth _ -> "eth"
  | Vlan _ -> "vlan"
  | Arp _ -> "arp"
  | Ipv4 _ -> "ipv4"
  | Ipv6 _ -> "ipv6"
  | Icmp _ -> "icmp"
  | Tcp _ -> "tcp"
  | Udp _ -> "udp"
  | Mpls _ -> "mpls"

(* Best-effort decode: each step consumes one header and decides the next
   step from the protocol field; any failure terminates decoding with the
   remaining bits as payload. *)
let parse bits =
  let r = Bitstring.Reader.create bits in
  let acc = ref [] in
  let push h = acc := h :: !acc in
  (* on a failed decode, roll the cursor back so the undecodable bytes stay
     in the payload *)
  let guard f =
    let saved = Bitstring.Reader.pos r in
    try f ()
    with Invalid_argument _ ->
      Bitstring.Reader.seek r saved;
      None
  in
  let after_l4 () = None in
  let rec after_ip proto =
    ignore after_ip;
    if proto = Proto.ipproto_udp then
      guard (fun () ->
          push (Udp (Udp.decode r));
          after_l4 ())
    else if proto = Proto.ipproto_tcp then
      guard (fun () ->
          push (Tcp (Tcp.decode r));
          after_l4 ())
    else if proto = Proto.ipproto_icmp then
      guard (fun () ->
          push (Icmp (Icmp.decode r));
          after_l4 ())
    else None
  in
  let rec after_eth ethertype =
    if ethertype = Proto.ethertype_ipv4 then
      guard (fun () ->
          let h = Ipv4.decode r in
          push (Ipv4 h);
          after_ip h.Ipv4.protocol)
    else if ethertype = Proto.ethertype_ipv6 then
      guard (fun () ->
          let h = Ipv6.decode r in
          push (Ipv6 h);
          after_ip h.Ipv6.next_header)
    else if ethertype = Proto.ethertype_arp then
      guard (fun () ->
          push (Arp (Arp.decode r));
          None)
    else if ethertype = Proto.ethertype_vlan then
      guard (fun () ->
          let h = Vlan.decode r in
          push (Vlan h);
          after_eth h.Vlan.ethertype)
    else if ethertype = Proto.ethertype_mpls then
      let rec labels () =
        match guard (fun () -> Some (Mpls.decode r)) with
        | Some h ->
            push (Mpls h);
            if h.Mpls.bos = 1L then
              (* assume IPv4 under the bottom of stack, as routers do *)
              guard (fun () ->
                  let ip = Ipv4.decode r in
                  push (Ipv4 ip);
                  after_ip ip.Ipv4.protocol)
            else labels ()
        | None -> None
      in
      labels ()
    else None
  in
  (try
     match guard (fun () -> Some (Eth.decode r)) with
     | Some h ->
         push (Eth h);
         ignore (after_eth h.Eth.ethertype)
     | None -> ()
   with Invalid_argument _ -> ());
  { headers = List.rev !acc; payload = Bitstring.Reader.rest r }

let rec find_map_header f = function
  | [] -> None
  | h :: rest -> ( match f h with Some x -> Some x | None -> find_map_header f rest)

let find_eth t = find_map_header (function Eth h -> Some h | _ -> None) t.headers
let find_ipv4 t = find_map_header (function Ipv4 h -> Some h | _ -> None) t.headers
let find_udp t = find_map_header (function Udp h -> Some h | _ -> None) t.headers
let find_tcp t = find_map_header (function Tcp h -> Some h | _ -> None) t.headers
let find_vlan t = find_map_header (function Vlan h -> Some h | _ -> None) t.headers

let map_first f headers =
  let applied = ref false in
  List.map
    (fun h ->
      match f h with
      | Some h' when not !applied ->
          applied := true;
          h'
      | _ -> h)
    headers

let map_ipv4 f t =
  { t with headers = map_first (function Ipv4 h -> Some (Ipv4 (f h)) | _ -> None) t.headers }

let map_eth f t =
  { t with headers = map_first (function Eth h -> Some (Eth (f h)) | _ -> None) t.headers }

let header_bits = function
  | Eth _ -> Eth.size_bits
  | Vlan _ -> Vlan.size_bits
  | Arp _ -> Arp.size_bits
  | Ipv4 _ -> Ipv4.size_bits
  | Ipv6 _ -> Ipv6.size_bits
  | Icmp _ -> Icmp.size_bits
  | Tcp _ -> Tcp.size_bits
  | Udp _ -> Udp.size_bits
  | Mpls _ -> Mpls.size_bits

(* Recompute length and checksum fields bottom-up, then chain protocol
   discriminators top-down. *)
let fixup t =
  let bits_after = ref (Bitstring.length t.payload) in
  let headers_rev = List.rev t.headers in
  let fixed_rev =
    List.map
      (fun h ->
        let payload_len = !bits_after / 8 in
        let h' =
          match h with
          | Ipv4 ip ->
              Ipv4
                (Ipv4.with_checksum
                   { ip with Ipv4.total_len = Int64.of_int (20 + payload_len) })
          | Udp u -> Udp { u with Udp.length = Int64.of_int (8 + payload_len) }
          | Ipv6 ip -> Ipv6 { ip with Ipv6.payload_len = Int64.of_int payload_len }
          | Eth _ | Vlan _ | Arp _ | Icmp _ | Tcp _ | Mpls _ -> h
        in
        bits_after := !bits_after + header_bits h;
        h')
      headers_rev
  in
  let headers = List.rev fixed_rev in
  (* chain discriminators: eth.ethertype and ipv4.protocol must match the
     following header *)
  let ethertype_for = function
    | Ipv4 _ -> Some Proto.ethertype_ipv4
    | Ipv6 _ -> Some Proto.ethertype_ipv6
    | Arp _ -> Some Proto.ethertype_arp
    | Vlan _ -> Some Proto.ethertype_vlan
    | Mpls _ -> Some Proto.ethertype_mpls
    | Eth _ | Icmp _ | Tcp _ | Udp _ -> None
  in
  let proto_for = function
    | Udp _ -> Some Proto.ipproto_udp
    | Tcp _ -> Some Proto.ipproto_tcp
    | Icmp _ -> Some Proto.ipproto_icmp
    | Eth _ | Vlan _ | Arp _ | Ipv4 _ | Ipv6 _ | Mpls _ -> None
  in
  let rec chain = function
    | [] -> []
    | [ h ] -> [ h ]
    | h :: next :: rest ->
        let h' =
          match h with
          | Eth e -> (
              match ethertype_for next with
              | Some et -> Eth { e with Eth.ethertype = et }
              | None -> h)
          | Vlan v -> (
              match ethertype_for next with
              | Some et -> Vlan { v with Vlan.ethertype = et }
              | None -> h)
          | Ipv4 ip -> (
              match proto_for next with
              | Some p -> Ipv4 (Ipv4.with_checksum { ip with Ipv4.protocol = p })
              | None -> h)
          | Ipv6 ip -> (
              match proto_for next with
              | Some p -> Ipv6 { ip with Ipv6.next_header = p }
              | None -> h)
          | Arp _ | Icmp _ | Tcp _ | Udp _ | Mpls _ -> h
        in
        h' :: chain (next :: rest)
  in
  { headers = chain headers; payload = t.payload }

let equal a b = Bitstring.equal (serialize a) (serialize b)

let pp_header ppf = function
  | Eth h -> Eth.pp ppf h
  | Vlan h -> Vlan.pp ppf h
  | Arp h -> Arp.pp ppf h
  | Ipv4 h -> Ipv4.pp ppf h
  | Ipv6 h -> Ipv6.pp ppf h
  | Icmp h -> Icmp.pp ppf h
  | Tcp h -> Tcp.pp ppf h
  | Udp h -> Udp.pp ppf h
  | Mpls h -> Mpls.pp ppf h

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun h -> Format.fprintf ppf "%a@," pp_header h) t.headers;
  Format.fprintf ppf "payload %d bytes@]" (Bitstring.length t.payload / 8)

let default_payload n = Bitstring.of_string (String.init n (fun i -> Char.chr (i land 0xff)))

let udp_ipv4 ?(eth_src = 0x020000000001L) ?(eth_dst = 0x020000000002L)
    ?(src = 0x0A000001L) ?(dst = 0x0A000002L) ?(src_port = 1234L) ?(dst_port = 4321L)
    ?(ttl = 64L) ?(payload_bytes = 32) () =
  fixup
    {
      headers =
        [
          Eth (Eth.make ~dst:eth_dst ~src:eth_src ~ethertype:Proto.ethertype_ipv4 ());
          Ipv4 (Ipv4.make ~ttl ~protocol:Proto.ipproto_udp ~src ~dst ~payload_len:0 ());
          Udp (Udp.make ~src_port ~dst_port ~payload_len:0 ());
        ];
      payload = default_payload payload_bytes;
    }

let tcp_ipv4 ?(src = 0x0A000001L) ?(dst = 0x0A000002L) ?(src_port = 1234L)
    ?(dst_port = 80L) ?(flags = Tcp.flag_syn) () =
  fixup
    {
      headers =
        [
          Eth (Eth.make ());
          Ipv4 (Ipv4.make ~protocol:Proto.ipproto_tcp ~src ~dst ~payload_len:0 ());
          Tcp (Tcp.make ~src_port ~dst_port ~flags ());
        ];
      payload = Bitstring.empty;
    }

let icmp_echo ?(src = 0x0A000001L) ?(dst = 0x0A000002L) ?(seq = 0L) () =
  fixup
    {
      headers =
        [
          Eth (Eth.make ());
          Ipv4 (Ipv4.make ~protocol:Proto.ipproto_icmp ~src ~dst ~payload_len:0 ());
          Icmp (Icmp.echo_request ~seq ());
        ];
      payload = default_payload 16;
    }

let arp_request ?(spa = 0x0A000001L) ?(tpa = 0x0A000002L) () =
  {
    headers =
      [
        Eth (Eth.make ~ethertype:Proto.ethertype_arp ());
        Arp (Arp.request ~sha:0x020000000001L ~spa ~tpa);
      ];
    payload = Bitstring.empty;
  }

(* Re-exports: [packet.ml] doubles as the library interface module, so the
   protocol codecs stay reachable as [Packet.Eth], [Packet.Ipv4], ... *)
module Addr = Addr
module Proto = Proto
module Eth = Eth
module Vlan = Vlan
module Arp = Arp
module Ipv4 = Ipv4
module Ipv6 = Ipv6
module Icmp = Icmp
module Tcp = Tcp
module Udp = Udp
module Mpls = Mpls
module Pcap = Pcap
