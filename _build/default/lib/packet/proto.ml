let ethertype_ipv4 = 0x0800L
let ethertype_arp = 0x0806L
let ethertype_ipv6 = 0x86DDL
let ethertype_vlan = 0x8100L
let ethertype_mpls = 0x8847L

let ipproto_icmp = 1L
let ipproto_tcp = 6L
let ipproto_udp = 17L

let ethertype_name = function
  | 0x0800L -> "IPv4"
  | 0x0806L -> "ARP"
  | 0x86DDL -> "IPv6"
  | 0x8100L -> "VLAN"
  | 0x8847L -> "MPLS"
  | v -> Printf.sprintf "0x%04Lx" v

let ipproto_name = function
  | 1L -> "ICMP"
  | 6L -> "TCP"
  | 17L -> "UDP"
  | v -> Printf.sprintf "proto-%Ld" v
