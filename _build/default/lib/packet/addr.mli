(** Address formatting and parsing helpers.

    MAC addresses are 48-bit values, IPv4 addresses 32-bit values, IPv6
    addresses (hi, lo) 64-bit pairs; all stored in [int64]s. *)

val mac_to_string : int64 -> string
(** "aa:bb:cc:dd:ee:ff" *)

val mac_of_string : string -> int64
(** @raise Invalid_argument on malformed input. *)

val ipv4_to_string : int64 -> string
(** "192.168.0.1" *)

val ipv4_of_string : string -> int64
(** @raise Invalid_argument on malformed input. *)

val ipv6_to_string : int64 * int64 -> string
(** Full uncompressed form, "2001:0db8:...". *)

val ipv4_prefix : string -> int64 * int
(** ["10.0.0.0/8"] -> (address, prefix length). A bare address means /32. *)
