(** A packet as a stack of decoded headers plus an opaque payload.

    This is the concrete-packet representation used at the edges of the
    system: the traffic generators build packets, the device model carries
    their serialized bits, and the checkers re-parse device output for
    inspection. The P4 data plane itself never sees this type — it parses
    raw bits according to its own parser program. *)

type header =
  | Eth of Eth.t
  | Vlan of Vlan.t
  | Arp of Arp.t
  | Ipv4 of Ipv4.t
  | Ipv6 of Ipv6.t
  | Icmp of Icmp.t
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Mpls of Mpls.t

type t = { headers : header list; payload : Bitutil.Bitstring.t }

val make : header list -> ?payload:Bitutil.Bitstring.t -> unit -> t

val payload_of_string : string -> Bitutil.Bitstring.t

val serialize : t -> Bitutil.Bitstring.t
(** Concatenation of encoded headers then the payload. *)

val byte_length : t -> int

val parse : Bitutil.Bitstring.t -> t
(** Best-effort decode starting at Ethernet. Decoding stops at the first
    unknown or truncated header; remaining bits become the payload. Never
    raises. *)

val header_name : header -> string

val find_eth : t -> Eth.t option
val find_ipv4 : t -> Ipv4.t option
val find_udp : t -> Udp.t option
val find_tcp : t -> Tcp.t option
val find_vlan : t -> Vlan.t option

val map_ipv4 : (Ipv4.t -> Ipv4.t) -> t -> t
(** Rewrite the first IPv4 header, if present. *)

val map_eth : (Eth.t -> Eth.t) -> t -> t

val fixup : t -> t
(** Recompute dependent fields: IPv4 [total_len] and header checksum, UDP
    [length], and chain EtherType / protocol fields so the header stack is
    self-consistent. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** One line per header plus payload size. *)

(* Convenience constructors used all over tests and experiments. *)

val udp_ipv4 :
  ?eth_src:int64 ->
  ?eth_dst:int64 ->
  ?src:int64 ->
  ?dst:int64 ->
  ?src_port:int64 ->
  ?dst_port:int64 ->
  ?ttl:int64 ->
  ?payload_bytes:int ->
  unit ->
  t
(** A well-formed Ethernet/IPv4/UDP packet with a deterministic payload. *)

val tcp_ipv4 :
  ?src:int64 -> ?dst:int64 -> ?src_port:int64 -> ?dst_port:int64 -> ?flags:int64 ->
  unit -> t

val icmp_echo : ?src:int64 -> ?dst:int64 -> ?seq:int64 -> unit -> t

val arp_request : ?spa:int64 -> ?tpa:int64 -> unit -> t

(* Protocol codec re-exports (this module is the library interface). *)
module Addr = Addr
module Proto = Proto
module Eth = Eth
module Vlan = Vlan
module Arp = Arp
module Ipv4 = Ipv4
module Ipv6 = Ipv6
module Icmp = Icmp
module Tcp = Tcp
module Udp = Udp
module Mpls = Mpls
module Pcap = Pcap
