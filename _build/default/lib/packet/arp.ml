type t = {
  htype : int64;
  ptype : int64;
  hlen : int64;
  plen : int64;
  oper : int64;
  sha : int64;
  spa : int64;
  tha : int64;
  tpa : int64;
}

let size_bits = 224

let base ~oper ~sha ~spa ~tha ~tpa =
  { htype = 1L; ptype = Proto.ethertype_ipv4; hlen = 6L; plen = 4L; oper; sha; spa; tha; tpa }

let request ~sha ~spa ~tpa = base ~oper:1L ~sha ~spa ~tha:0L ~tpa

let reply ~sha ~spa ~tha ~tpa = base ~oper:2L ~sha ~spa ~tha ~tpa

let encode w t =
  Bitstring.Writer.push_int64 w ~width:16 t.htype;
  Bitstring.Writer.push_int64 w ~width:16 t.ptype;
  Bitstring.Writer.push_int64 w ~width:8 t.hlen;
  Bitstring.Writer.push_int64 w ~width:8 t.plen;
  Bitstring.Writer.push_int64 w ~width:16 t.oper;
  Bitstring.Writer.push_int64 w ~width:48 t.sha;
  Bitstring.Writer.push_int64 w ~width:32 t.spa;
  Bitstring.Writer.push_int64 w ~width:48 t.tha;
  Bitstring.Writer.push_int64 w ~width:32 t.tpa

let decode r =
  let htype = Bitstring.Reader.read r 16 in
  let ptype = Bitstring.Reader.read r 16 in
  let hlen = Bitstring.Reader.read r 8 in
  let plen = Bitstring.Reader.read r 8 in
  let oper = Bitstring.Reader.read r 16 in
  let sha = Bitstring.Reader.read r 48 in
  let spa = Bitstring.Reader.read r 32 in
  let tha = Bitstring.Reader.read r 48 in
  let tpa = Bitstring.Reader.read r 32 in
  { htype; ptype; hlen; plen; oper; sha; spa; tha; tpa }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "arp %s %s(%s) -> %s"
    (if t.oper = 1L then "who-has" else "is-at")
    (Addr.ipv4_to_string t.spa) (Addr.mac_to_string t.sha) (Addr.ipv4_to_string t.tpa)
