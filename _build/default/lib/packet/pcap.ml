type record = { ts_ns : float; data : string }

let snaplen = 65535

let put_u16le b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let put_u32le b v =
  put_u16le b (v land 0xffff);
  put_u16le b ((v lsr 16) land 0xffff)

let encode records =
  let b = Buffer.create 1024 in
  put_u32le b 0xa1b2c3d4;
  put_u16le b 2 (* version major *);
  put_u16le b 4 (* version minor *);
  put_u32le b 0 (* thiszone *);
  put_u32le b 0 (* sigfigs *);
  put_u32le b snaplen;
  put_u32le b 1 (* LINKTYPE_ETHERNET *);
  List.iter
    (fun r ->
      let total_us = r.ts_ns /. 1000.0 in
      let sec = int_of_float (total_us /. 1e6) in
      let usec = int_of_float (Float.rem total_us 1e6) in
      let incl = min (String.length r.data) snaplen in
      put_u32le b sec;
      put_u32le b usec;
      put_u32le b incl;
      put_u32le b (String.length r.data);
      Buffer.add_substring b r.data 0 incl)
    records;
  Buffer.contents b

exception Bad of string

let get_u32le s pos =
  if !pos + 4 > String.length s then raise (Bad "truncated");
  let v =
    Char.code s.[!pos]
    lor (Char.code s.[!pos + 1] lsl 8)
    lor (Char.code s.[!pos + 2] lsl 16)
    lor (Char.code s.[!pos + 3] lsl 24)
  in
  pos := !pos + 4;
  v

let decode s =
  try
    let pos = ref 0 in
    let magic = get_u32le s pos in
    if magic <> 0xa1b2c3d4 then raise (Bad "bad magic (expect LE usec pcap)");
    let _version = get_u32le s pos in
    let _thiszone = get_u32le s pos in
    let _sigfigs = get_u32le s pos in
    let _snaplen = get_u32le s pos in
    let network = get_u32le s pos in
    if network <> 1 then raise (Bad "not an Ethernet capture");
    let records = ref [] in
    while !pos < String.length s do
      let sec = get_u32le s pos in
      let usec = get_u32le s pos in
      let incl = get_u32le s pos in
      let _orig = get_u32le s pos in
      if !pos + incl > String.length s then raise (Bad "truncated record");
      let data = String.sub s !pos incl in
      pos := !pos + incl;
      records :=
        { ts_ns = ((float_of_int sec *. 1e6) +. float_of_int usec) *. 1000.0; data }
        :: !records
    done;
    Ok (List.rev !records)
  with Bad e -> Error e

let write_file path records =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (encode records))

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> decode s
  | exception Sys_error e -> Error e
