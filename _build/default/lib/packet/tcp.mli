(** TCP header (no options; [data_offset] fixed at 5 by {!make}). *)

type t = {
  src_port : int64;
  dst_port : int64;
  seq : int64;
  ack : int64;
  data_offset : int64;
  reserved : int64;
  flags : int64;  (** CWR ECE URG ACK PSH RST SYN FIN, MSB first *)
  window : int64;
  checksum : int64;
  urgent : int64;
}

val size_bits : int

val make :
  ?src_port:int64 -> ?dst_port:int64 -> ?seq:int64 -> ?flags:int64 -> unit -> t

val flag_syn : int64
val flag_ack : int64
val flag_fin : int64
val flag_rst : int64

val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
