type t = { dst : int64; src : int64; ethertype : int64 }

let size_bits = 112

let make ?(dst = 0xFFFFFFFFFFFFL) ?(src = 0L) ?(ethertype = Proto.ethertype_ipv4) () =
  { dst; src; ethertype }

let encode w t =
  Bitstring.Writer.push_int64 w ~width:48 t.dst;
  Bitstring.Writer.push_int64 w ~width:48 t.src;
  Bitstring.Writer.push_int64 w ~width:16 t.ethertype

let decode r =
  let dst = Bitstring.Reader.read r 48 in
  let src = Bitstring.Reader.read r 48 in
  let ethertype = Bitstring.Reader.read r 16 in
  { dst; src; ethertype }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a.dst = b.dst && a.src = b.src && a.ethertype = b.ethertype

let pp ppf t =
  Format.fprintf ppf "eth %s -> %s type=%s" (Addr.mac_to_string t.src)
    (Addr.mac_to_string t.dst)
    (Proto.ethertype_name t.ethertype)
