type t = { pcp : int64; dei : int64; vid : int64; ethertype : int64 }

let size_bits = 32

let make ?(pcp = 0L) ?(dei = 0L) ?(vid = 1L) ?(ethertype = Proto.ethertype_ipv4) () =
  { pcp; dei; vid; ethertype }

let encode w t =
  Bitstring.Writer.push_int64 w ~width:3 t.pcp;
  Bitstring.Writer.push_int64 w ~width:1 t.dei;
  Bitstring.Writer.push_int64 w ~width:12 t.vid;
  Bitstring.Writer.push_int64 w ~width:16 t.ethertype

let decode r =
  let pcp = Bitstring.Reader.read r 3 in
  let dei = Bitstring.Reader.read r 1 in
  let vid = Bitstring.Reader.read r 12 in
  let ethertype = Bitstring.Reader.read r 16 in
  { pcp; dei; vid; ethertype }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a.pcp = b.pcp && a.dei = b.dei && a.vid = b.vid && a.ethertype = b.ethertype

let pp ppf t =
  Format.fprintf ppf "vlan vid=%Ld pcp=%Ld next=%s" t.vid t.pcp
    (Proto.ethertype_name t.ethertype)
