let byte v shift = Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xffL)

let mac_to_string v =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (byte v 40) (byte v 32) (byte v 24)
    (byte v 16) (byte v 8) (byte v 0)

let mac_of_string s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then invalid_arg "Addr.mac_of_string";
  List.fold_left
    (fun acc p ->
      let b =
        try int_of_string ("0x" ^ p) with Failure _ -> invalid_arg "Addr.mac_of_string"
      in
      if b < 0 || b > 255 then invalid_arg "Addr.mac_of_string";
      Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
    0L parts

let ipv4_to_string v =
  Printf.sprintf "%d.%d.%d.%d" (byte v 24) (byte v 16) (byte v 8) (byte v 0)

let ipv4_of_string s =
  let parts = String.split_on_char '.' s in
  if List.length parts <> 4 then invalid_arg "Addr.ipv4_of_string";
  List.fold_left
    (fun acc p ->
      let b = try int_of_string p with Failure _ -> invalid_arg "Addr.ipv4_of_string" in
      if b < 0 || b > 255 then invalid_arg "Addr.ipv4_of_string";
      Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
    0L parts

let ipv6_to_string (hi, lo) =
  let seg v shift = Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xffffL) in
  Printf.sprintf "%04x:%04x:%04x:%04x:%04x:%04x:%04x:%04x" (seg hi 48) (seg hi 32)
    (seg hi 16) (seg hi 0) (seg lo 48) (seg lo 32) (seg lo 16) (seg lo 0)

let ipv4_prefix s =
  match String.index_opt s '/' with
  | None -> (ipv4_of_string s, 32)
  | Some i ->
      let addr = ipv4_of_string (String.sub s 0 i) in
      let plen =
        try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        with Failure _ -> invalid_arg "Addr.ipv4_prefix"
      in
      if plen < 0 || plen > 32 then invalid_arg "Addr.ipv4_prefix";
      (addr, plen)
