(** ARP for IPv4 over Ethernet. *)

type t = {
  htype : int64;
  ptype : int64;
  hlen : int64;
  plen : int64;
  oper : int64;  (** 1 = request, 2 = reply *)
  sha : int64;
  spa : int64;
  tha : int64;
  tpa : int64;
}

val size_bits : int
val request : sha:int64 -> spa:int64 -> tpa:int64 -> t
val reply : sha:int64 -> spa:int64 -> tha:int64 -> tpa:int64 -> t
val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
