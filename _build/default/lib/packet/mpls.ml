type t = { label : int64; tc : int64; bos : int64; ttl : int64 }

let size_bits = 32

let make ?(label = 16L) ?(tc = 0L) ?(bos = 1L) ?(ttl = 64L) () = { label; tc; bos; ttl }

let encode w t =
  Bitstring.Writer.push_int64 w ~width:20 t.label;
  Bitstring.Writer.push_int64 w ~width:3 t.tc;
  Bitstring.Writer.push_int64 w ~width:1 t.bos;
  Bitstring.Writer.push_int64 w ~width:8 t.ttl

let decode r =
  let label = Bitstring.Reader.read r 20 in
  let tc = Bitstring.Reader.read r 3 in
  let bos = Bitstring.Reader.read r 1 in
  let ttl = Bitstring.Reader.read r 8 in
  { label; tc; bos; ttl }

let to_bits t =
  let w = Bitstring.Writer.create () in
  encode w t;
  Bitstring.Writer.contents w

let equal a b = a = b

let pp ppf t = Format.fprintf ppf "mpls label=%Ld bos=%Ld ttl=%Ld" t.label t.bos t.ttl
