(** UDP header. The checksum field is carried verbatim; {!make} sets it to
    zero (legal for IPv4) — full pseudo-header checksums live in
    {!Packet.fixup}. *)

type t = { src_port : int64; dst_port : int64; length : int64; checksum : int64 }

val size_bits : int
val make : ?src_port:int64 -> ?dst_port:int64 -> payload_len:int -> unit -> t
val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
