(** IEEE 802.1Q VLAN tag (the four bytes after the outer MAC addresses). *)

type t = { pcp : int64; dei : int64; vid : int64; ethertype : int64 }

val size_bits : int
val make : ?pcp:int64 -> ?dei:int64 -> ?vid:int64 -> ?ethertype:int64 -> unit -> t
val encode : Bitstring.Writer.t -> t -> unit
val decode : Bitstring.Reader.t -> t
val to_bits : t -> Bitstring.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
