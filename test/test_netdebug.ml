(* Integration tests for the NetDebug framework: wire protocol, channel,
   generator, checker, controller, harness, localization and use-cases. *)

module Ast = P4ir.Ast
module Value = P4ir.Value
module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Dsl = P4ir.Dsl
module Device = Target.Device
module Fault = Target.Fault
module Quirks = Sdnet.Quirks
module Bitstring = Bitutil.Bitstring
module Wire = Netdebug.Wire
module Channel = Netdebug.Channel
module Controller = Netdebug.Controller
module Harness = Netdebug.Harness
module Localize = Netdebug.Localize
module Usecases = Netdebug.Usecases
module Vectors = Netdebug.Vectors
module P = Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* ---------------- wire protocol ---------------- *)

let sample_expr =
  Dsl.(
    (fld "ipv4" "ttl" ==: const ~width:8 63)
    &&: (Ast.Std Ast.Egress_spec ==: const ~width:9 1)
    ||: lnot (valid "vlan"))

let test_wire_expr_roundtrip () =
  let b = Buffer.create 64 in
  Wire.encode_expr b sample_expr;
  let decoded = Wire.decode_expr (Buffer.contents b) (ref 0) in
  check_bool "expr roundtrip" true (decoded = sample_expr)

let test_wire_host_roundtrip () =
  let msgs =
    [
      Wire.Configure_generator
        [
          {
            Wire.s_template = Bitstring.of_hex "deadbeef";
            s_count = 100;
            s_interval_ns = 12.5;
            s_mutations =
              [
                Wire.Set_field ("ipv4", "ttl", 3L);
                Wire.Sweep_field ("ipv4", "dst", 0x0A000000L, 7L);
                Wire.Random_field ("udp", "src_port", 99);
              ];
          };
        ];
      Wire.Configure_checker
        [
          { Wire.r_name = "r1"; r_filter = Some sample_expr; r_expect = sample_expr };
          { Wire.r_name = "r2"; r_filter = None; r_expect = Ast.Valid "eth" };
        ];
      Wire.Start_generator;
      Wire.Read_register ("kv_store");
      Wire.Read_checker;
      Wire.Read_status;
      Wire.Read_stage_counters;
      Wire.Clear_test_state;
    ]
  in
  List.iter
    (fun m ->
      match Wire.decode_host (Wire.encode_host m) with
      | Ok m' -> check_bool "host roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    msgs

let test_wire_dev_roundtrip () =
  let msgs =
    [
      Wire.Ack;
      Wire.Error_msg "boom";
      Wire.Checker_report
        {
          Wire.cs_total_seen = 42;
          cs_rules = [ { Wire.rs_name = "r"; rs_matched = 10; rs_passed = 9; rs_failed = 1 } ];
          cs_captures =
            [
              {
                Wire.cap_rule = "r";
                cap_port = 3;
                cap_time_ns = 123.0;
                cap_bits = Bitstring.of_hex "aa55";
              };
            ];
          cs_pps = 1e6;
          cs_gbps = 9.5;
          cs_lat_mean_ns = 140.0;
          cs_lat_p50_ns = 130.0;
          cs_lat_p99_ns = 200.0;
        };
      Wire.Status_report
        {
          Wire.ss_time_ns = 5.0;
          ss_packets_in = 10L;
          ss_packets_out = 9L;
          ss_queue_drops = 1L;
          ss_pipeline_drops = 0L;
          ss_queue_depth = 2;
        };
      Wire.Stage_counters [ ("stage/parser/seen", 7L) ];
      Wire.Register_dump [ (3, 0xAAL); (200, 0xBBL) ];
    ]
  in
  List.iter
    (fun m ->
      match Wire.decode_dev (Wire.encode_dev m) with
      | Ok m' -> check_bool "dev roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    msgs

let test_wire_rejects_garbage () =
  (match Wire.decode_host "\xFF" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad tag");
  match Wire.decode_host ((Wire.encode_host Wire.Start_generator) ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing bytes"

let prop_wire_stream_roundtrip =
  QCheck.Test.make ~count:200 ~name:"generator config wire roundtrip"
    QCheck.(triple (int_bound 1000) (int_bound 500) (list_of_size (QCheck.Gen.int_range 0 5) (pair small_string (int_bound 1000))))
    (fun (count, nbits, muts) ->
      let prng = Bitutil.Prng.create (count + nbits) in
      let stream =
        {
          Wire.s_template = Bitstring.random prng (max 1 nbits);
          s_count = count;
          s_interval_ns = float_of_int nbits *. 0.5;
          s_mutations = List.map (fun (h, v) -> Wire.Set_field (h, "f", Int64.of_int v)) muts;
        }
      in
      match Wire.decode_host (Wire.encode_host (Wire.Configure_generator [ stream ])) with
      | Ok (Wire.Configure_generator [ s' ]) ->
          Bitstring.equal s'.Wire.s_template stream.Wire.s_template
          && s'.Wire.s_count = stream.Wire.s_count
          && s'.Wire.s_mutations = stream.Wire.s_mutations
      | _ -> false)

(* ---------------- channel ---------------- *)

let test_channel_fifo () =
  let a, b = Channel.create () in
  Channel.send a "one";
  Channel.send a "two";
  Alcotest.(check (option string)) "fifo 1" (Some "one") (Channel.recv b);
  Alcotest.(check (option string)) "fifo 2" (Some "two") (Channel.recv b);
  Alcotest.(check (option string)) "empty" None (Channel.recv b);
  Channel.send b "reply";
  Alcotest.(check (option string)) "reverse" (Some "reply") (Channel.recv a);
  check_int "bytes counted" 6 (Channel.bytes_sent a)

(* ---------------- harness / generator / checker ---------------- *)

let test_harness_self_check () =
  let h = Harness.deploy Programs.basic_router in
  match Harness.self_check h with
  | Ok facts -> check_bool "several facts" true (List.length facts >= 3)
  | Error e -> Alcotest.fail e

let test_generator_injects_through_pipeline () =
  let h = Harness.deploy Programs.basic_router in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ()) in
  ok (Controller.configure_checker h.Harness.controller []);
  ok (Controller.configure_generator h.Harness.controller
        [ Controller.stream ~count:10 probe ]);
  ok (Controller.start_generator h.Harness.controller);
  let summary = ok (Controller.read_checker h.Harness.controller) in
  check_int "all 10 reached the check point" 10 summary.Wire.cs_total_seen

let test_generator_sweep_mutation () =
  (* sweep the destination across both routes: 10.0/8 -> port 1 and
     10.1/16 -> port 2 *)
  let h = Harness.deploy Programs.basic_router in
  let ctl = h.Harness.controller in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000000L ()) in
  ok (Controller.configure_checker ctl [ Controller.expect_port 1 ]);
  ok
    (Controller.configure_generator ctl
       [
         Controller.stream ~count:8
           ~mutations:[ Wire.Sweep_field ("ipv4", "dst", 0x0A000001L, 0x00010000L) ]
           probe;
       ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  (* dsts 10.0.0.1, 10.1.0.1, 10.2.0.1 ... : exactly one lands in 10.1/16 *)
  match summary.Wire.cs_rules with
  | [ rs ] ->
      check_int "all emitted" 8 rs.Wire.rs_matched;
      check_int "one escapes to port 2" 1 rs.Wire.rs_failed
  | _ -> Alcotest.fail "one rule expected"

let test_generator_checksum_refresh () =
  (* sweeping ipv4.dst invalidates the checksum; the generator must repair
     it or the DUT parser would drop every swept packet *)
  let h = Harness.deploy Programs.basic_router in
  let ctl = h.Harness.controller in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000001L ()) in
  ok (Controller.configure_checker ctl []);
  ok
    (Controller.configure_generator ctl
       [
         Controller.stream ~count:5
           ~mutations:[ Wire.Sweep_field ("ipv4", "dst", 0x0A000001L, 1L) ]
           probe;
       ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  check_int "none dropped at the verify step" 5 summary.Wire.cs_total_seen

let test_generator_deliberate_bad_checksum () =
  (* mutating the checksum field itself must NOT be repaired *)
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let ctl = h.Harness.controller in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000001L ()) in
  ok (Controller.configure_checker ctl []);
  ok
    (Controller.configure_generator ctl
       [
         Controller.stream ~count:3
           ~mutations:[ Wire.Set_field ("ipv4", "checksum", 0xDEADL) ]
           probe;
       ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  check_int "all dropped by checksum verify" 0 summary.Wire.cs_total_seen

let test_checker_filter_and_captures () =
  let h = Harness.deploy Programs.basic_router in
  let ctl = h.Harness.controller in
  (* rule applies only to packets leaving on port 2; expect ttl == 63 *)
  let filter = Dsl.(Ast.Std Ast.Egress_spec ==: const ~width:9 2) in
  let rule =
    Controller.expect ~filter ~name:"ttl-on-port2"
      Dsl.(fld "ipv4" "ttl" ==: const ~width:8 63)
  in
  ok (Controller.configure_checker ctl [ rule ]);
  let send dst ttl =
    ok
      (Controller.configure_generator ctl
         [ Controller.stream (P.serialize (P.udp_ipv4 ~dst ~ttl ())) ]);
    ok (Controller.start_generator ctl)
  in
  send 0x0A000005L 64L (* port 1: filtered out *);
  send 0x0A010005L 64L (* port 2: ttl 63 after decrement -> pass *);
  send 0x0A010005L 10L (* port 2: ttl 9 -> fail + capture *);
  let summary = ok (Controller.read_checker ctl) in
  (match summary.Wire.cs_rules with
  | [ rs ] ->
      check_int "matched only port-2 packets" 2 rs.Wire.rs_matched;
      check_int "one pass" 1 rs.Wire.rs_passed;
      check_int "one fail" 1 rs.Wire.rs_failed
  | _ -> Alcotest.fail "one rule expected");
  match summary.Wire.cs_captures with
  | [ cap ] ->
      check_int "captured on port 2" 2 cap.Wire.cap_port;
      (* captured packet carries the wrong ttl 9 *)
      let p = P.parse cap.Wire.cap_bits in
      (match P.find_ipv4 p with
      | Some ip -> Alcotest.(check int64) "captured ttl" 9L ip.P.Ipv4.ttl
      | None -> Alcotest.fail "no ipv4 in capture")
  | _ -> Alcotest.fail "one capture expected"

let test_checker_sees_parser_error_of_output () =
  (* under the reject quirk, garbage reaches the output; a checker rule on
     standard_metadata.parser_error flags malformed emissions *)
  let h = Harness.deploy ~quirks:Quirks.default Programs.parser_guard in
  let ctl = h.Harness.controller in
  let rule =
    Controller.expect ~name:"well-formed-output"
      Dsl.(Ast.Std Ast.Parser_error ==: const ~width:4 0)
  in
  ok (Controller.configure_checker ctl [ rule ]);
  let garbage =
    P.serialize
      (P.make [ P.Eth (P.Eth.make ~ethertype:0xBEEFL ()) ]
         ~payload:(P.payload_of_string "junk") ())
  in
  ok (Controller.configure_generator ctl [ Controller.stream garbage ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  match summary.Wire.cs_rules with
  | [ rs ] -> check_int "malformed output flagged" 1 rs.Wire.rs_failed
  | _ -> Alcotest.fail "one rule expected"

let test_register_read_over_channel () =
  let h = Harness.deploy ~quirks:Quirks.none P4ir.Programs.rate_limiter in
  (* consume some of port 0's budget to make the register non-zero *)
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ()) in
  ignore (Device.inject h.Harness.device ~source:(Device.External 0) probe);
  ignore (Device.inject h.Harness.device ~source:(Device.External 0) probe);
  (match Controller.read_register h.Harness.controller "port_counts" with
  | Ok [ (0, 2L) ] -> ()
  | Ok cells -> Alcotest.failf "unexpected cells (%d)" (List.length cells)
  | Error e -> Alcotest.fail e);
  match Controller.read_register h.Harness.controller "no_such_register" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown register accepted"

(* ---------------- the paper's case study, end to end ---------------- *)

let test_case_study_reject_bug_detected () =
  (* 1. formal verification of the spec: property holds *)
  let rt = Runtime.create () in
  ok
    (Runtime.install_all Programs.parser_guard.Programs.program rt
       Programs.parser_guard.Programs.entries
    |> Result.map_error (fun e -> e));
  let spec_finding =
    Symexec.Check.rejected_are_dropped Programs.parser_guard.Programs.program rt
  in
  Alcotest.(check string) "verification passes on the spec" "HOLDS"
    (Symexec.Check.verdict_to_string spec_finding.Symexec.Check.f_verdict);
  (* 2. NetDebug against the real (quirky) toolchain: bug caught *)
  let h = Harness.deploy ~quirks:Quirks.default Programs.parser_guard in
  let ctl = h.Harness.controller in
  ok (Controller.configure_checker ctl [ Controller.expect ~name:"no-output" (Ast.Const Value.fls) ]);
  let garbage =
    P.serialize
      (P.make [ P.Eth (P.Eth.make ~ethertype:0xBEEFL ()) ]
         ~payload:(P.payload_of_string "junk") ())
  in
  ok (Controller.configure_generator ctl [ Controller.stream ~count:4 garbage ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  check_int "rejected packets were sent to the next hop" 4 summary.Wire.cs_total_seen;
  (* 3. and with a fixed compiler the same test passes *)
  let h2 = Harness.deploy ~quirks:Quirks.none Programs.parser_guard in
  let ctl2 = h2.Harness.controller in
  ok (Controller.configure_checker ctl2 [ Controller.expect ~name:"no-output" (Ast.Const Value.fls) ]);
  ok (Controller.configure_generator ctl2 [ Controller.stream ~count:4 garbage ]);
  ok (Controller.start_generator ctl2);
  let summary2 = ok (Controller.read_checker ctl2) in
  check_int "fixed toolchain drops them" 0 summary2.Wire.cs_total_seen

(* ---------------- localization ---------------- *)

let localization_probe = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ())

let test_localize_healthy () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let verdict, _ = Localize.locate h ~probe:localization_probe in
  check_bool "healthy" true (verdict = Localize.Healthy)

let test_localize_stage_faults () =
  List.iter
    (fun stage ->
      let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
      Device.inject_fault h.Harness.device ~stage Fault.Drop_at_stage;
      let verdict, _ = Localize.locate h ~probe:localization_probe in
      match verdict with
      | Localize.Lost_in s -> Alcotest.(check string) ("fault at " ^ stage) stage s
      | v -> Alcotest.failf "fault at %s: got %s" stage (Localize.verdict_to_string v))
    [ "parser"; "ma:ipv4_lpm"; "egress"; "deparser" ]

let test_localize_broken_interface () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  Device.set_port_broken h.Harness.device 1 true;
  let verdict, evidence = Localize.locate h ~probe:localization_probe in
  (match verdict with
  | Localize.Lost_after_check_point 1 -> ()
  | v -> Alcotest.failf "got %s" (Localize.verdict_to_string v));
  check_bool "check point saw them" true (evidence.Localize.e_emitted >= 16);
  check_int "externally invisible" 0 evidence.Localize.e_external

let test_localize_program_drop () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x08080808L ()) in
  match fst (Localize.locate h ~probe) with
  | Localize.Dropped_by_program _ -> ()
  | v -> Alcotest.failf "got %s" (Localize.verdict_to_string v)

(* ---------------- use-cases ---------------- *)

let test_functional_clean_pass () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let r = Usecases.Functional.run ~fuzz:16 h in
  check_bool "no mismatches on a faithful device" true (Usecases.Functional.passed r);
  check_bool "covered several vectors" true (r.Usecases.Functional.fr_tested > 5)

let test_functional_detects_reject_quirk () =
  let h = Harness.deploy ~quirks:Quirks.default Programs.parser_guard in
  let r = Usecases.Functional.run ~fuzz:16 h in
  check_bool "mismatches found" true (not (Usecases.Functional.passed r))

let test_functional_detects_program_bug_with_oracle () =
  (* buggy_router deployed faithfully, but validated against the intended
     program (basic_router): functional testing finds the TTL bug *)
  let h = Harness.deploy ~quirks:Quirks.none Programs.buggy_router in
  let r = Usecases.Functional.run ~oracle:Programs.basic_router ~fuzz:8 h in
  check_bool "ttl bug found" true (not (Usecases.Functional.passed r));
  check_bool "mismatch mentions ttl" true
    (List.exists
       (fun m ->
         let got = m.Usecases.Functional.mm_got in
         let rec contains i =
           i + 3 <= String.length got && (String.sub got i 3 = "ttl" || contains (i + 1))
         in
         contains 0)
       r.Usecases.Functional.fr_mismatches)

let test_check_batch_matches_check_vector () =
  (* the batched validation path must reproduce check_vector's verdicts
     index-for-index, on a quirky deployment so both mismatch and clean
     verdicts appear in the batch *)
  let vecs =
    Array.of_list
      (List.map P.serialize
         [
           P.udp_ipv4 ~dst:0x0A000001L ();
           P.udp_ipv4 ~dst:0x08080808L ();
           P.arp_request ();
           P.udp_ipv4 ~dst:0x0A010203L ();
         ]
      @ Vectors.fuzz ~seed:11 ~count:12 ())
  in
  let oracle = Programs.parser_guard in
  let ha = Harness.deploy ~quirks:Quirks.default Programs.parser_guard in
  let rta = Usecases.Functional.oracle_runtime oracle in
  let sequential =
    Array.mapi (fun i v -> Usecases.Functional.check_vector oracle rta ha i v) vecs
  in
  let hb = Harness.deploy ~quirks:Quirks.default Programs.parser_guard in
  let rtb = Usecases.Functional.oracle_runtime oracle in
  let batched = Usecases.Functional.check_batch oracle rtb hb vecs in
  check_int "same number of verdicts" (Array.length sequential) (Array.length batched);
  check_bool "batch contains both verdict kinds" true
    (Array.exists Option.is_some batched && Array.exists Option.is_none batched);
  Array.iteri
    (fun i sq ->
      match (sq, batched.(i)) with
      | None, None -> ()
      | Some a, Some b ->
          check_int "same index" a.Usecases.Functional.mm_index
            b.Usecases.Functional.mm_index;
          Alcotest.(check string)
            "same expectation" a.Usecases.Functional.mm_expected
            b.Usecases.Functional.mm_expected;
          Alcotest.(check string)
            "same observation" a.Usecases.Functional.mm_got
            b.Usecases.Functional.mm_got
      | _ -> Alcotest.failf "vector %d: verdicts disagree" i)
    sequential

let test_performance_sweep_shape () =
  let h = Harness.deploy Programs.basic_router in
  let probe = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ~payload_bytes:1000 ()) in
  let points =
    Usecases.Performance.sweep ~loads:[ 0.2; 0.8; 1.2 ] ~packets_per_point:500 h ~probe
  in
  check_int "three points" 3 (List.length points);
  (match points with
  | [ low; mid; over ] ->
      check_bool "low load achieved" true
        (low.Usecases.Performance.pt_achieved_gbps
        >= 0.9 *. low.Usecases.Performance.pt_offered_gbps);
      check_bool "mid load achieved" true
        (mid.Usecases.Performance.pt_achieved_gbps
        >= 0.9 *. mid.Usecases.Performance.pt_offered_gbps);
      (* beyond line rate the device saturates: achieved < offered *)
      check_bool "overload saturates" true
        (over.Usecases.Performance.pt_achieved_gbps
        < 0.98 *. over.Usecases.Performance.pt_offered_gbps);
      check_bool "overload latency worse" true
        (over.Usecases.Performance.pt_lat_p99_ns > low.Usecases.Performance.pt_lat_p99_ns)
  | _ -> Alcotest.fail "expected 3 points");
  ()

let test_compiler_check_battery () =
  let detections = Usecases.Compiler_check.battery () in
  (* control (no quirk) must be clean; every seeded quirk must be caught *)
  List.iter
    (fun d ->
      match d.Usecases.Compiler_check.dq_quirk with
      | None ->
          check_bool "control not flagged" false d.Usecases.Compiler_check.dq_detected
      | Some q ->
          check_bool (Quirks.name q ^ " detected") true d.Usecases.Compiler_check.dq_detected)
    detections;
  check_int "six quirks + control" 7 (List.length detections)

let test_architecture_probe () =
  let results = Usecases.Architecture_check.probe () in
  check_int "four limits probed" 4 (List.length results);
  List.iter
    (fun r ->
      check_int
        ("discovered " ^ r.Usecases.Architecture_check.ar_limit)
        r.Usecases.Architecture_check.ar_documented
        r.Usecases.Architecture_check.ar_discovered)
    results

let test_resources_inventory () =
  let rows = Usecases.Resources.inventory () in
  check_int "all programs" (List.length Programs.all) (List.length rows);
  List.iter
    (fun r ->
      check_bool (r.Usecases.Resources.rr_program ^ " uses luts") true
        (r.Usecases.Resources.rr_luts > 0);
      check_bool (r.Usecases.Resources.rr_program ^ " fits") true
        (r.Usecases.Resources.rr_max_util_pct < 100.0))
    rows;
  (* the ACL program is the only TCAM consumer *)
  let acl = List.find (fun r -> r.Usecases.Resources.rr_program = "acl_firewall") rows in
  check_bool "acl uses tcam" true (acl.Usecases.Resources.rr_tcam_bits > 0)

let test_status_monitoring () =
  let h = Harness.deploy Programs.basic_router in
  let background = P.serialize (P.udp_ipv4 ~dst:0x0A000005L ()) in
  let samples = Usecases.Status.monitor ~period_packets:20 ~samples:5 h ~background in
  check_int "five samples" 5 (List.length samples);
  let ins = List.map (fun s -> s.Wire.ss_packets_in) samples in
  check_bool "monotone packet counts" true
    (List.for_all2
       (fun a b -> Int64.compare a b <= 0)
       (List.filteri (fun i _ -> i < 4) ins)
       (List.tl ins));
  Alcotest.(check int64) "100 packets seen" 100L (List.nth ins 4)

let test_comparison_equivalent_specs () =
  let r =
    Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
      Programs.basic_router Programs.router_split
  in
  check_bool "router == router_split" true (Usecases.Comparison.equivalent r);
  check_bool "nontrivial probe set" true (r.Usecases.Comparison.cr_compared > 5)

let test_comparison_detects_divergence () =
  let r =
    Usecases.Comparison.run ~quirks_a:Quirks.none ~quirks_b:Quirks.none
      Programs.basic_router Programs.buggy_router
  in
  check_bool "ttl bug shows up as divergence" true
    (not (Usecases.Comparison.equivalent r))

let test_vectors_cover_paths () =
  let rt = Runtime.create () in
  ok
    (Runtime.install_all Programs.basic_router.Programs.program rt
       Programs.basic_router.Programs.entries);
  let vectors = Vectors.from_paths Programs.basic_router.Programs.program rt in
  check_bool "several distinct vectors" true (List.length vectors >= 4);
  (* vectors must exercise forward, drop and reject outcomes *)
  let outcomes =
    List.map
      (fun bits ->
        match
          (P4ir.Interp.process Programs.basic_router.Programs.program rt
             ~ingress_port:Harness.generator_port bits)
            .P4ir.Interp.result
        with
        | P4ir.Interp.Forwarded _ -> "fwd"
        | P4ir.Interp.Dropped r -> r)
      vectors
  in
  check_bool "forward covered" true (List.mem "fwd" outcomes);
  check_bool "ingress drop covered" true (List.mem "ingress" outcomes);
  check_bool "reject covered" true
    (List.exists (fun o -> String.length o >= 6 && String.sub o 0 6 = "parser") outcomes)

(* check_paths: the per-path symexec-vs-device divergence check. The
   shipped toolchain (reject compiled as accept) must diverge on a
   parser-reject path — the hardened witnesses make the fallthrough
   observable — and the fixed toolchain must agree on every path. *)
let test_check_paths_flags_reject_quirk () =
  let h = Harness.deploy Programs.basic_router in
  let r = Usecases.Functional.check_paths h in
  check_bool "all paths checked" true
    (r.Usecases.Functional.pr_checked
    = List.length r.Usecases.Functional.pr_oracle.Symexec.Testgen.tg_vectors);
  check_bool "quirked toolchain diverges" false (Usecases.Functional.paths_agree r);
  (match Usecases.Functional.first_divergence r with
  | None -> Alcotest.fail "no first divergence reported"
  | Some d ->
      let descr = d.Usecases.Functional.dv_descr in
      let contains sub =
        let n = String.length sub and m = String.length descr in
        let rec go i = i + n <= m && (String.sub descr i n = sub || go (i + 1)) in
        go 0
      in
      check_bool "first diverging path is a parser reject" true (contains "rejected(");
      check_bool "device forwarded the rejected packet" true
        (String.length d.Usecases.Functional.dv_got >= 9
        && String.sub d.Usecases.Functional.dv_got 0 9 = "forwarded"));
  (* the report is jobs-invariant *)
  let render r = Format.asprintf "%a" Usecases.Functional.pp_paths r in
  let h4 = Harness.deploy Programs.basic_router in
  Alcotest.(check string) "jobs=4 report identical" (render r)
    (render (Usecases.Functional.check_paths ~jobs:4 h4));
  (* a faithful toolchain shows no divergence on any path *)
  let hc = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let rc = Usecases.Functional.check_paths hc in
  check_bool "clean toolchain agrees" true (Usecases.Functional.paths_agree rc);
  check_int "nothing skipped on the router" 0 rc.Usecases.Functional.pr_skipped

let () =
  Alcotest.run "netdebug"
    [
      ( "wire",
        [
          Alcotest.test_case "expr roundtrip" `Quick test_wire_expr_roundtrip;
          Alcotest.test_case "host roundtrip" `Quick test_wire_host_roundtrip;
          Alcotest.test_case "dev roundtrip" `Quick test_wire_dev_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_wire_stream_roundtrip;
        ] );
      ("channel", [ Alcotest.test_case "fifo" `Quick test_channel_fifo ]);
      ( "harness",
        [
          Alcotest.test_case "self check (Figure 1)" `Quick test_harness_self_check;
          Alcotest.test_case "generator through pipeline" `Quick
            test_generator_injects_through_pipeline;
          Alcotest.test_case "sweep mutation" `Quick test_generator_sweep_mutation;
          Alcotest.test_case "checksum refresh" `Quick test_generator_checksum_refresh;
          Alcotest.test_case "deliberate bad checksum" `Quick
            test_generator_deliberate_bad_checksum;
          Alcotest.test_case "checker filter and captures" `Quick
            test_checker_filter_and_captures;
          Alcotest.test_case "checker flags malformed output" `Quick
            test_checker_sees_parser_error_of_output;
          Alcotest.test_case "register read over channel" `Quick
            test_register_read_over_channel;
        ] );
      ( "case_study",
        [ Alcotest.test_case "reject bug (Section 4)" `Quick test_case_study_reject_bug_detected ] );
      ( "localize",
        [
          Alcotest.test_case "healthy" `Quick test_localize_healthy;
          Alcotest.test_case "stage faults" `Quick test_localize_stage_faults;
          Alcotest.test_case "broken interface" `Quick test_localize_broken_interface;
          Alcotest.test_case "program drop" `Quick test_localize_program_drop;
        ] );
      ( "usecases",
        [
          Alcotest.test_case "functional clean pass" `Quick test_functional_clean_pass;
          Alcotest.test_case "functional detects reject quirk" `Quick
            test_functional_detects_reject_quirk;
          Alcotest.test_case "functional detects program bug" `Quick
            test_functional_detects_program_bug_with_oracle;
          Alcotest.test_case "check_batch matches check_vector" `Quick
            test_check_batch_matches_check_vector;
          Alcotest.test_case "performance sweep shape" `Slow test_performance_sweep_shape;
          Alcotest.test_case "compiler check battery" `Slow test_compiler_check_battery;
          Alcotest.test_case "architecture probe" `Quick test_architecture_probe;
          Alcotest.test_case "resources inventory" `Quick test_resources_inventory;
          Alcotest.test_case "status monitoring" `Quick test_status_monitoring;
          Alcotest.test_case "comparison equivalent" `Slow test_comparison_equivalent_specs;
          Alcotest.test_case "comparison divergence" `Slow test_comparison_detects_divergence;
          Alcotest.test_case "vectors cover paths" `Quick test_vectors_cover_paths;
          Alcotest.test_case "check_paths flags reject quirk" `Quick
            test_check_paths_flags_reject_quirk;
        ] );
    ]
