(* Tests for the fixed-capacity timestamp ring buffer behind the device's
   interface queues, and the virtual-clock properties built on it. *)

module Ringq = Target.Ringq
module Device = Target.Device
module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))

(* ---------------- ring buffer unit tests ---------------- *)

let test_wraparound () =
  let q = Ringq.create 4 in
  (* march head and tail several times around the 4-slot array *)
  for round = 0 to 9 do
    let base = float_of_int (round * 10) in
    check_bool "push a" true (Ringq.push q (base +. 1.0));
    check_bool "push b" true (Ringq.push q (base +. 2.0));
    check_float "fifo a" (base +. 1.0) (Ringq.pop q);
    check_bool "push c" true (Ringq.push q (base +. 3.0));
    check_float "fifo b" (base +. 2.0) (Ringq.pop q);
    check_float "fifo c" (base +. 3.0) (Ringq.pop q)
  done;
  check_int "empty at the end" 0 (Ringq.length q)

let test_overflow_tail_drop () =
  let q = Ringq.create 2 in
  check_bool "first" true (Ringq.push q 1.0);
  check_bool "second" true (Ringq.push q 2.0);
  check_bool "full" true (Ringq.is_full q);
  check_bool "third refused" false (Ringq.push q 3.0);
  check_int "still two" 2 (Ringq.length q);
  check_float "head untouched" 1.0 (Ringq.peek q);
  check_float "order kept" 1.0 (Ringq.pop q);
  check_float "order kept" 2.0 (Ringq.pop q)

let test_drain_to_empty () =
  let q = Ringq.create 8 in
  List.iter (fun v -> ignore (Ringq.push q v)) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "partial drain" 3 (Ringq.drop_leq q 3.0);
  check_int "two left" 2 (Ringq.length q);
  check_float "head is 4" 4.0 (Ringq.peek q);
  check_int "full drain" 2 (Ringq.drop_leq q 1e18);
  check_bool "empty" true (Ringq.is_empty q);
  check_int "drain of empty is a no-op" 0 (Ringq.drop_leq q 1e18)

let test_empty_and_bounds () =
  (try
     ignore (Ringq.create 0);
     Alcotest.fail "capacity 0 accepted"
   with Invalid_argument _ -> ());
  let q = Ringq.create 3 in
  (try
     ignore (Ringq.pop q);
     Alcotest.fail "pop of empty succeeded"
   with Invalid_argument _ -> ());
  (try
     ignore (Ringq.peek q);
     Alcotest.fail "peek of empty succeeded"
   with Invalid_argument _ -> ());
  ignore (Ringq.push q 1.0);
  Ringq.clear q;
  check_int "cleared" 0 (Ringq.length q);
  check_int "capacity" 3 (Ringq.capacity q)

(* model-based property: the ring behaves like a bounded FIFO queue *)
let prop_model =
  QCheck.Test.make ~count:300 ~name:"ringbuf == bounded FIFO model"
    QCheck.(pair (int_range 1 8) (small_list (int_bound 299)))
    (fun (cap, ops) ->
      let q = Ringq.create cap in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          let v = float_of_int op in
          match op mod 3 with
          | 0 ->
              let accepted = Ringq.push q v in
              let model_accepted = Queue.length model < cap in
              if model_accepted then Queue.push v model;
              accepted = model_accepted && Ringq.length q = Queue.length model
          | 1 ->
              if Queue.is_empty model then Ringq.is_empty q
              else Ringq.pop q = Queue.pop model
          | _ ->
              let deadline = v /. 2.0 in
              let expect = ref 0 in
              while (not (Queue.is_empty model)) && Queue.peek model <= deadline do
                ignore (Queue.pop model);
                incr expect
              done;
              Ringq.drop_leq q deadline = !expect && Ringq.length q = Queue.length model)
        ops)

(* ---------------- device virtual-clock properties ---------------- *)

let build (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks:Quirks.none b.Programs.program in
  let d = Device.create report.Compile.pipeline in
  (match Runtime.install_all b.Programs.program (Device.runtime d) b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  d

let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000001L ())

(* advance_to_ns never moves time backward, and re-advancing to the same
   timestamp changes nothing observable *)
let prop_advance_monotone_idempotent =
  QCheck.Test.make ~count:60 ~name:"advance_to_ns is monotone and idempotent"
    QCheck.(small_list (int_bound 1000))
    (fun steps ->
      let d = build Programs.basic_router in
      for _ = 1 to 50 do
        ignore (Device.inject d ~source:(Device.External 0) ~at_ns:0.0 probe)
      done;
      List.for_all
        (fun step ->
          let before = Device.now_ns d in
          let target = float_of_int step *. 11.0 in
          Device.advance_to_ns d target;
          let t1 = Device.now_ns d in
          let s1 = Device.status d in
          Device.advance_to_ns d target;
          let s2 = Device.status d in
          Device.advance_to_ns d 0.0;
          let s3 = Device.status d in
          t1 = Float.max before target && s1 = s2 && s2 = s3)
        steps)

(* the event-driven drain: a huge time jump costs O(queued), not O(cycles) *)
let test_advance_far_is_cheap () =
  let d = build Programs.basic_router in
  for _ = 1 to 10_000 do
    ignore (Device.inject d ~source:(Device.External 0) ~at_ns:0.0 probe)
  done;
  let t0 = Sys.time () in
  Device.advance_to_ns d 1e9;
  let elapsed = Sys.time () -. t0 in
  check_bool "advance over 10^9 ns finishes instantly" true (elapsed < 1.0);
  check_int "all queues drained" 0 (Device.status d).Device.st_queue_depth

let () =
  Alcotest.run "ringbuf"
    [
      ( "ring",
        [
          Alcotest.test_case "wrap-around" `Quick test_wraparound;
          Alcotest.test_case "overflow tail-drop" `Quick test_overflow_tail_drop;
          Alcotest.test_case "drain to empty" `Quick test_drain_to_empty;
          Alcotest.test_case "bounds" `Quick test_empty_and_bounds;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "clock",
        [
          QCheck_alcotest.to_alcotest prop_advance_monotone_idempotent;
          Alcotest.test_case "far advance is O(queued)" `Quick test_advance_far_is_cheap;
        ] );
    ]
