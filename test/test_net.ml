(* Tests for the network-scale validation fabric: topology generators and
   their JSON round-trip, link-delay arithmetic in the co-simulated event
   loop, end-to-end fleet reachability, jobs-count invariance of sharded
   verdicts, device-level fault localization, and the two satellites it
   leans on (prefixed registry merges, fault-carrying harness
   replication). *)

module Topology = Net.Topology
module Route = Net.Route
module Fabric = Net.Fabric
module Fleet = Net.Fleet
module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Harness = Netdebug.Harness
module Device = Target.Device
module Fault = Target.Fault
module Registry = Telemetry.Registry
module Counter = Stats.Counter

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let check_valid what topo =
  match Topology.validate topo with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: expected valid topology, got: %s" what e

(* ---------------- topology generators ---------------- *)

let test_fat_tree_invariants () =
  let t = Topology.fat_tree 4 in
  check_valid "fat-tree:4" t;
  check_int "nodes" 20 (Array.length t.Topology.nodes);
  check_int "hosts (k^3/4)" 16 (Array.length t.Topology.hosts);
  (* switch-to-switch only: 16 edge-agg + 16 agg-core *)
  check_int "links" 32 (Array.length t.Topology.links);
  let count role =
    Array.to_list t.Topology.nodes
    |> List.filter (fun (n : Topology.node) -> n.Topology.n_role = role)
    |> List.length
  in
  check_int "edge switches" 8 (count Topology.Edge);
  check_int "aggregation switches" 8 (count Topology.Aggregation);
  check_int "core switches" 4 (count Topology.Core);
  Array.iter
    (fun (n : Topology.node) -> check_int (n.Topology.n_name ^ " ports") 4 n.Topology.n_ports)
    t.Topology.nodes;
  check_int "max ports" 4 (Topology.max_ports t);
  check_int "subnet-owning edges" 8 (List.length (Topology.edges t));
  (* every port of every switch is used exactly once:
     20 switches x 4 ports = 2 x 32 link ends + 16 host ports *)
  check_int "every port claimed" (20 * 4)
    ((2 * Array.length t.Topology.links) + Array.length t.Topology.hosts)

let test_leaf_spine_invariants () =
  let t = Topology.leaf_spine ~spines:4 ~leaves:8 () in
  check_valid "leaf-spine:4x8" t;
  check_int "nodes" 12 (Array.length t.Topology.nodes);
  check_int "links (full bipartite)" 32 (Array.length t.Topology.links);
  check_int "hosts (2 per leaf)" 16 (Array.length t.Topology.hosts);
  check_string "name" "leaf-spine:4x8" t.Topology.t_name;
  (* every leaf uplinks once to every spine *)
  Array.iter
    (fun (l : Topology.link) ->
      let ra = t.Topology.nodes.(l.Topology.l_a).Topology.n_role
      and rb = t.Topology.nodes.(l.Topology.l_b).Topology.n_role in
      check_bool "leaf-spine links cross tiers" true
        ((ra = Topology.Leaf && rb = Topology.Spine)
        || (ra = Topology.Spine && rb = Topology.Leaf)))
    t.Topology.links

let test_validate_rejects_double_port () =
  let t = Topology.single ~hosts:2 () in
  let bad =
    {
      t with
      Topology.hosts =
        Array.map
          (fun (h : Topology.host) -> { h with Topology.h_port = 0 })
          t.Topology.hosts;
    }
  in
  match Topology.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "two hosts on one port must not validate"

let test_json_round_trip () =
  let t = Topology.fat_tree 4 in
  (match Topology.of_json (Topology.to_json t) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok t' ->
      check_bool "json round-trip is structurally identical" true
        (Topology.to_json t = Topology.to_json t');
      check_string "summary survives" (Topology.summary t) (Topology.summary t'));
  let file = Filename.temp_file "topo" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Topology.to_file t file;
      match Topology.of_file file with
      | Error e -> Alcotest.failf "of_file: %s" e
      | Ok t' ->
          check_bool "file round-trip" true (Topology.to_json t = Topology.to_json t'))

(* ---------------- fabric timing ---------------- *)

(* Two fabrics differing only in link propagation delay: a cross-fabric
   path with two switch-to-switch links must arrive later by exactly
   2 x the delay difference — the devices' own timing cancels out. *)
let test_link_delay_arithmetic () =
  let latency_with delay =
    let topo =
      Topology.leaf_spine ~link_delay_ns:delay ~hosts_per_leaf:1 ~spines:1 ~leaves:2 ()
    in
    let fab = Fabric.create topo in
    let src = topo.Topology.hosts.(0) and dst = topo.Topology.hosts.(1) in
    let id = Fabric.send fab ~src (Fleet.probe_bits ~payload_bytes:26 src dst) in
    Fabric.run fab;
    (match Fabric.trail fab id with
    | first :: _ ->
        Alcotest.(check (float 0.0))
          "first hop arrives after the host link delay" src.Topology.h_delay_ns
          first.Fabric.hop_at_ns
    | [] -> Alcotest.fail "empty trail");
    match Fabric.fate fab id with
    | Fabric.Delivered { d_at_ns; d_host; _ } ->
        check_int "delivered to the far host" dst.Topology.h_id d_host;
        d_at_ns
    | _ -> Alcotest.fail "probe not delivered"
  in
  let base = latency_with 500. and slow = latency_with 10_500. in
  Alcotest.(check (float 0.0))
    "2 links x 10 us extra propagation" 20_000. (slow -. base)

(* ---------------- fleet scenarios ---------------- *)

let test_fat_tree_reachability () =
  let fab = Fabric.create (Topology.fat_tree 4) in
  let r = Fleet.run Fleet.Reachability fab in
  check_int "pairs" (16 * 15) r.Fleet.r_pairs;
  check_int "all pairs reachable" r.Fleet.r_pairs r.Fleet.r_passed;
  let counters = Registry.counter_set r.Fleet.r_registry in
  Alcotest.(check int64)
    "one probe per pair" (Int64.of_int r.Fleet.r_pairs)
    (Counter.Set.get counters "net/probes_sent");
  Alcotest.(check int64)
    "every probe delivered" (Int64.of_int r.Fleet.r_pairs)
    (Counter.Set.get counters "net/delivered");
  (* per-device telemetry is namespaced: both core planes carried traffic *)
  check_bool "core-0-0 saw traffic" true
    (Counter.Set.get counters "core-0-0/stage/ma:ipv4_lpm/seen" > 0L);
  check_bool "core-1-0 saw traffic" true
    (Counter.Set.get counters "core-1-0/stage/ma:ipv4_lpm/seen" > 0L)

let test_waypoint_paths_match_routes () =
  let fab = Fabric.create (Topology.leaf_spine ~spines:2 ~leaves:2 ()) in
  let r = Fleet.run Fleet.Waypoint fab in
  check_int "all pairs follow their computed path" r.Fleet.r_pairs r.Fleet.r_passed;
  (* cross-leaf outcomes name a spine waypoint *)
  let crossed =
    Array.to_list r.Fleet.r_outcomes
    |> List.filter (fun (o : Fleet.outcome) ->
           String.length o.Fleet.o_detail > 0
           && o.Fleet.o_hops = 3
           &&
           match String.index_opt o.Fleet.o_detail 's' with
           | Some _ -> true
           | None -> false)
  in
  check_bool "some pairs cross a spine" true (List.length crossed > 0)

let test_jobs_invariance () =
  let topo () = Topology.leaf_spine ~spines:2 ~leaves:4 () in
  let r1 = Fleet.run ~jobs:1 Fleet.Reachability (Fabric.create (topo ())) in
  let r4 = Fleet.run ~jobs:4 Fleet.Reachability (Fabric.create (topo ())) in
  check_int "same pair count" r1.Fleet.r_pairs r4.Fleet.r_pairs;
  check_string "verdicts, hops and latencies identical under sharding"
    (Fleet.render_outcomes r1) (Fleet.render_outcomes r4);
  (* merged fleet counters are sharding-invariant too *)
  let get r name = Counter.Set.get (Registry.counter_set r.Fleet.r_registry) name in
  Alcotest.(check int64)
    "leaf-0 table hits identical" (get r1 "leaf-0/stage/ma:ipv4_lpm/hit")
    (get r4 "leaf-0/stage/ma:ipv4_lpm/hit")

(* ---------------- device-level localization ---------------- *)

let faulted_pair topo spine_name =
  (* a host pair whose computed path traverses the faulted spine *)
  let spine =
    match Topology.node_named topo spine_name with
    | Some n -> n.Topology.n_id
    | None -> Alcotest.failf "no node %s" spine_name
  in
  let hosts = topo.Topology.hosts in
  let found = ref None in
  Array.iter
    (fun (s : Topology.host) ->
      Array.iter
        (fun (d : Topology.host) ->
          if !found = None && s.Topology.h_id <> d.Topology.h_id then
            match
              Route.path topo ~src_edge:s.Topology.h_node ~dst_edge:d.Topology.h_node
            with
            | Some path when List.mem spine path -> found := Some (s, d)
            | _ -> ())
        hosts)
    hosts;
  match !found with
  | Some p -> p
  | None -> Alcotest.failf "no pair routed via %s" spine_name

let test_localize_names_faulted_spine () =
  let topo = Topology.leaf_spine ~spines:2 ~leaves:2 () in
  let fab = Fabric.create topo in
  Fabric.inject_fault fab ~device:"spine-1" ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
  let src, dst = faulted_pair topo "spine-1" in
  let verdict, ev = Net.Localize.locate fab ~src ~dst in
  (match verdict with
  | Net.Localize.Device_fault { f_device; f_verdict; _ } ->
      check_string "the faulted spine is named exactly" "spine-1" f_device;
      check_string "and the faulty stage inside it"
        "fault localized in stage 'ma:ipv4_lpm'"
        (Netdebug.Localize.verdict_to_string f_verdict)
  | v -> Alcotest.failf "expected Device_fault, got %s" (Net.Localize.verdict_to_string v));
  check_int "nothing delivered" 0 ev.Net.Localize.n_delivered;
  (* counter evidence: the spine saw the full burst, the far leaf none *)
  let delta name = List.assoc name ev.Net.Localize.n_rx_deltas in
  Alcotest.(check int64) "spine ingress saw the burst" 16L (delta "spine-1");
  let last = List.nth ev.Net.Localize.n_path (List.length ev.Net.Localize.n_path - 1) in
  Alcotest.(check int64) "destination leaf saw nothing" 0L (delta last);
  (* span-trail corroboration *)
  check_int "spine recorded a span per probe" 16
    (List.assoc "spine-1" ev.Net.Localize.n_span_counts)

let test_localize_healthy_fabric () =
  let topo = Topology.leaf_spine ~spines:2 ~leaves:2 () in
  let fab = Fabric.create topo in
  let src = topo.Topology.hosts.(0) and dst = topo.Topology.hosts.(3) in
  let verdict, ev = Net.Localize.locate fab ~src ~dst in
  (match verdict with
  | Net.Localize.Healthy -> ()
  | v -> Alcotest.failf "expected Healthy, got %s" (Net.Localize.verdict_to_string v));
  check_int "full burst delivered" ev.Net.Localize.n_count ev.Net.Localize.n_delivered

(* ---------------- satellite: prefixed registry merge ---------------- *)

let test_registry_merge_prefix_keeps_devices_distinct () =
  let hit h n =
    let bits = Packet.serialize (Packet.udp_ipv4 ()) in
    for _ = 1 to n do
      ignore
        (Device.inject h.Harness.device ~source:(Device.External 0) bits)
    done
  in
  let h1 = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  let h2 = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  Device.inject_fault h1.Harness.device ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
  Device.inject_fault h2.Harness.device ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
  hit h1 3;
  hit h2 5;
  let fleet = Registry.create () in
  Registry.merge ~prefix:"edge-0-0/" ~into:fleet (Device.metrics h1.Harness.device);
  Registry.merge ~prefix:"edge-1-0/" ~into:fleet (Device.metrics h2.Harness.device);
  let get name = Counter.Set.get (Registry.counter_set fleet) name in
  Alcotest.(check int64)
    "device 1 fault hits stay its own" 3L
    (get "edge-0-0/stage/ma:ipv4_lpm/fault_hits");
  Alcotest.(check int64)
    "device 2 fault hits stay its own" 5L
    (get "edge-1-0/stage/ma:ipv4_lpm/fault_hits");
  Alcotest.(check int64) "nothing lands unprefixed" 0L (get "stage/ma:ipv4_lpm/fault_hits");
  (* and the un-prefixed merge still accumulates as before *)
  let flat = Registry.create () in
  Registry.merge ~into:flat (Device.metrics h1.Harness.device);
  Registry.merge ~into:flat (Device.metrics h2.Harness.device);
  Alcotest.(check int64)
    "unprefixed merge sums" 8L
    (Counter.Set.get (Registry.counter_set flat) "stage/ma:ipv4_lpm/fault_hits")

(* ---------------- satellite: fault-carrying replication ---------------- *)

let test_replicate_faults_opt_in () =
  let h = Harness.deploy ~quirks:Quirks.none Programs.basic_router in
  Device.inject_fault h.Harness.device ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
  (* default stays off: a replica reproduces the deployment, not the
     perturbation experiment *)
  let plain = Harness.replicate h in
  check_int "default replica carries no faults" 0
    (List.length (Device.faults plain.Harness.device));
  let seeded = Harness.replicate ~faults:true h in
  (match Device.faults seeded.Harness.device with
  | [ ("ma:ipv4_lpm", Fault.Drop_at_stage) ] -> ()
  | fs -> Alcotest.failf "expected the seeded fault, got %d faults" (List.length fs));
  let bits = Packet.serialize (Packet.udp_ipv4 ()) in
  (match Device.inject seeded.Harness.device ~source:(Device.External 0) bits with
  | _, Device.Lost_in_stage "ma:ipv4_lpm" -> ()
  | _ -> Alcotest.fail "seeded replica must drop in the faulted stage");
  match Device.inject plain.Harness.device ~source:(Device.External 0) bits with
  | _, Device.Lost_in_stage _ -> Alcotest.fail "plain replica must not inherit the fault"
  | _ -> ()

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "fat-tree invariants" `Quick test_fat_tree_invariants;
          Alcotest.test_case "leaf-spine invariants" `Quick test_leaf_spine_invariants;
          Alcotest.test_case "validate rejects double port" `Quick
            test_validate_rejects_double_port;
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
        ] );
      ( "fabric",
        [ Alcotest.test_case "link delay arithmetic" `Quick test_link_delay_arithmetic ] );
      ( "fleet",
        [
          Alcotest.test_case "fat-tree:4 full reachability" `Slow
            test_fat_tree_reachability;
          Alcotest.test_case "waypoint paths match routes" `Quick
            test_waypoint_paths_match_routes;
          Alcotest.test_case "jobs=1 and jobs=4 verdicts identical" `Quick
            test_jobs_invariance;
        ] );
      ( "localize",
        [
          Alcotest.test_case "names the faulted spine" `Quick
            test_localize_names_faulted_spine;
          Alcotest.test_case "healthy fabric" `Quick test_localize_healthy_fabric;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "registry merge prefixes" `Quick
            test_registry_merge_prefix_keeps_devices_distinct;
          Alcotest.test_case "replicate ?faults opt-in" `Quick
            test_replicate_faults_opt_in;
        ] );
    ]
