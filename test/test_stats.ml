(* Tests for counters, histograms, rate meters and the table renderer. *)

module Counter = Stats.Counter
module Histogram = Stats.Histogram
module Rate = Stats.Rate
module Texttable = Stats.Texttable

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let close ?(eps = 1e-6) msg expected got =
  if abs_float (expected -. got) > eps then
    Alcotest.failf "%s: expected %f, got %f" msg expected got

(* ---------------- Counter ---------------- *)

let test_counter_basic () =
  let c = Counter.create "rx" in
  Counter.incr c;
  Counter.incr c;
  Counter.add c 5L;
  check_i64 "value" 7L (Counter.get c);
  Counter.reset c;
  check_i64 "reset" 0L (Counter.get c)

let test_counter_set () =
  let s = Counter.Set.create () in
  Counter.Set.incr s "a";
  Counter.Set.incr s "a";
  Counter.Set.add s "b" 10L;
  check_i64 "a" 2L (Counter.Set.get s "a");
  check_i64 "b" 10L (Counter.Set.get s "b");
  check_i64 "unknown reads zero" 0L (Counter.Set.get s "nope");
  Alcotest.(check (list (pair string int64)))
    "alist sorted"
    [ ("a", 2L); ("b", 10L) ]
    (Counter.Set.to_alist s)

let test_counter_set_reset () =
  let s = Counter.Set.create () in
  Counter.Set.add s "x" 3L;
  Counter.Set.reset_all s;
  check_i64 "cleared" 0L (Counter.Set.get s "x")

(* ---------------- Histogram ---------------- *)

let test_histogram_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  close "mean" 0.0 (Histogram.mean h);
  close "p99" 0.0 (Histogram.percentile h 99.0)

(* empty histograms must never leak internal fold identities: minv starts
   at +inf and maxv at 0., neither is a measurement *)
let test_histogram_empty_extrema () =
  let h = Histogram.create () in
  close "min is 0, not +inf" 0.0 (Histogram.min_value h);
  check_bool "min is finite" true (Float.is_finite (Histogram.min_value h));
  close "max" 0.0 (Histogram.max_value h);
  List.iter
    (fun p -> close (Printf.sprintf "p%.0f" p) 0.0 (Histogram.percentile h p))
    [ 0.0; 50.0; 100.0 ];
  (* same after data comes and goes *)
  Histogram.add h 42.0;
  Histogram.clear h;
  close "min after clear" 0.0 (Histogram.min_value h);
  close "p50 after clear" 0.0 (Histogram.percentile h 50.0)

let test_histogram_single () =
  let h = Histogram.create () in
  Histogram.add h 100.0;
  check_int "count" 1 (Histogram.count h);
  close "mean" 100.0 (Histogram.mean h);
  close "min" 100.0 (Histogram.min_value h);
  close "max" 100.0 (Histogram.max_value h)

let test_histogram_percentile_bounds () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p99 = Histogram.percentile h 99.0 in
  (* log-binned: answers are upper bin bounds, within ~5% above truth *)
  check_bool "p50 in band" true (p50 >= 500.0 && p50 <= 530.0);
  check_bool "p99 in band" true (p99 >= 990.0 && p99 <= 1000.0);
  check_bool "monotone" true (p99 >= p50)

let test_histogram_percentile_never_exceeds_max () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 3.0; 900.0; 90000.0 ];
  check_bool "p100 <= max" true (Histogram.percentile h 100.0 <= Histogram.max_value h)

let test_histogram_stddev () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 10.0; 10.0; 10.0 ];
  close "zero spread" 0.0 (Histogram.stddev h);
  let h2 = Histogram.create () in
  List.iter (Histogram.add h2) [ 0.0; 20.0 ];
  close "spread 10" 10.0 (Histogram.stddev h2)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 5.0;
  Histogram.add b 15.0;
  let m = Histogram.merge a b in
  check_int "merged count" 2 (Histogram.count m);
  close "merged mean" 10.0 (Histogram.mean m)

let prop_percentile_bracket =
  QCheck.Test.make ~count:200 ~name:"percentile brackets true quantile"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (float_range 0.0 1e6))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let true_p90 = List.nth sorted (min (n - 1) (int_of_float (ceil (0.9 *. float_of_int n)) - 1 |> max 0)) in
      let est = Histogram.percentile h 90.0 in
      (* upper bound within one bin (5%) plus the sub-1.0 bin *)
      est >= true_p90 -. 1e-9 && est <= (true_p90 *. 1.06) +. 1.0)

(* ---------------- Rate ---------------- *)

let test_rate_basic () =
  let r = Rate.create () in
  (* 1000-byte packets every 1000 ns: 1 Mpps x 8 Gb/s *)
  for i = 0 to 10 do
    Rate.record r ~now_ns:(float_of_int (i * 1000)) ~bytes:1000
  done;
  close ~eps:1e3 "pps" 1e6 (Rate.packets_per_sec r);
  check_int "packets" 11 (Rate.packets r)

let test_rate_single_observation () =
  let r = Rate.create () in
  Rate.record r ~now_ns:5.0 ~bytes:100;
  close "no rate from one sample" 0.0 (Rate.packets_per_sec r)

let test_rate_gbps () =
  let r = Rate.create () in
  (* 125 bytes per 100ns = 10 Gb/s *)
  for i = 0 to 100 do
    Rate.record r ~now_ns:(float_of_int (i * 100)) ~bytes:125
  done;
  close ~eps:0.01 "10G" 10.0 (Rate.gbps r)

(* ---------------- Texttable ---------------- *)

let test_texttable_render () =
  let t = Texttable.create [ "name"; "value" ] in
  Texttable.add_row t [ "alpha"; "1" ];
  Texttable.add_row t [ "b"; "22" ];
  let s = Texttable.render t in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "header present" true (contains s "name");
  check_bool "cell present" true (contains s "alpha");
  (* every line has the same length *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let lens = List.map String.length lines in
  check_bool "aligned" true (List.for_all (fun l -> l = List.hd lens) lens)

let test_texttable_ragged_rows () =
  let t = Texttable.create [ "a"; "b"; "c" ] in
  Texttable.add_row t [ "1" ];
  Texttable.add_row t [ "1"; "2"; "3"; "4" ];
  let s = Texttable.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let lens = List.map String.length lines in
  check_bool "still aligned" true (List.for_all (fun l -> l = List.hd lens) lens)

let () =
  Alcotest.run "stats"
    [
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "set" `Quick test_counter_set;
          Alcotest.test_case "set reset" `Quick test_counter_set_reset;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "empty extrema" `Quick test_histogram_empty_extrema;
          Alcotest.test_case "single" `Quick test_histogram_single;
          Alcotest.test_case "percentile bounds" `Quick test_histogram_percentile_bounds;
          Alcotest.test_case "p100 <= max" `Quick test_histogram_percentile_never_exceeds_max;
          Alcotest.test_case "stddev" `Quick test_histogram_stddev;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          QCheck_alcotest.to_alcotest prop_percentile_bracket;
        ] );
      ( "rate",
        [
          Alcotest.test_case "basic" `Quick test_rate_basic;
          Alcotest.test_case "single observation" `Quick test_rate_single_observation;
          Alcotest.test_case "gbps" `Quick test_rate_gbps;
        ] );
      ( "texttable",
        [
          Alcotest.test_case "render" `Quick test_texttable_render;
          Alcotest.test_case "ragged rows" `Quick test_texttable_ragged_rows;
        ] );
    ]
