(* Tests for the formal-verification baseline: symbolic expressions, the
   bounded solver, the path explorer, and the property checks — including
   replaying generated witness packets on the reference interpreter. *)

module Ast = P4ir.Ast
module Value = P4ir.Value
module Runtime = P4ir.Runtime
module Interp = P4ir.Interp
module Programs = P4ir.Programs
module Dsl = P4ir.Dsl
module Sym = Symexec.Sym
module Solver = Symexec.Solver
module Sexec = Symexec.Sexec
module Check = Symexec.Check
module Testgen = Symexec.Testgen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let v w x = Value.of_int ~width:w x

(* ---------------- Sym ---------------- *)

let test_sym_constant_folding () =
  let e = Sym.bin Ast.Add (Sym.of_int ~width:8 3) (Sym.of_int ~width:8 4) in
  (match Sym.is_const e with
  | Some c -> Alcotest.(check int64) "folded" 7L (Value.to_int64 c)
  | None -> Alcotest.fail "not folded");
  let x = Sym.fresh_var ~name:"x" ~width:8 in
  (* x + 0 = x *)
  check_bool "identity add" true (Sym.equal (Sym.bin Ast.Add x (Sym.of_int ~width:8 0)) x);
  (* x & 0 = 0 *)
  (match Sym.is_const (Sym.bin Ast.BAnd x (Sym.of_int ~width:8 0)) with
  | Some c -> check_bool "annihilator" true (Value.is_zero c)
  | None -> Alcotest.fail "x & 0 not folded");
  (* x == x folds to true *)
  check_bool "reflexive eq" true (Sym.equal (Sym.bin Ast.Eq x x) (Sym.const Value.tru));
  (* !!b = b *)
  check_bool "double negation" true (Sym.equal (Sym.not_ (Sym.not_ (Sym.bin Ast.Eq x (Sym.of_int ~width:8 1))))
      (Sym.bin Ast.Eq x (Sym.of_int ~width:8 1)))

let test_sym_width () =
  let x = Sym.fresh_var ~name:"x" ~width:16 in
  check_int "bin keeps width" 16 (Sym.width (Sym.bin Ast.Add x x));
  check_int "comparison is bool" 1 (Sym.width (Sym.bin Ast.Lt x x));
  check_int "slice" 8 (Sym.width (Sym.slice x ~msb:15 ~lsb:8));
  check_int "concat" 32 (Sym.width (Sym.concat x x))

let test_sym_eval () =
  let x = Sym.fresh_var ~name:"x" ~width:8 in
  let id = match x with Sym.Var v -> v.Sym.v_id | _ -> assert false in
  let e = Sym.bin Ast.Mul (Sym.bin Ast.Add x (Sym.of_int ~width:8 1)) (Sym.of_int ~width:8 2) in
  let result = Sym.eval (fun i -> if i = id then v 8 10 else assert false) e in
  Alcotest.(check int64) "(10+1)*2" 22L (Value.to_int64 result)

let test_sym_vars_dedup () =
  let x = Sym.fresh_var ~name:"x" ~width:8 in
  let e = Sym.bin Ast.Add x x in
  check_int "x counted once" 1 (List.length (Sym.vars e))

let test_sym_interning () =
  let x = Sym.fresh_var ~name:"x" ~width:8 in
  (* structurally equal terms built through the smart constructors share
     one allocation *)
  let a = Sym.bin Ast.Add x (Sym.of_int ~width:8 3) in
  let b = Sym.bin Ast.Add x (Sym.of_int ~width:8 3) in
  check_bool "equal binops are physically shared" true (a == b);
  check_bool "equal consts are physically shared" true
    (Sym.of_int ~width:16 0x800 == Sym.of_int ~width:16 0x800);
  let s1 = Sym.slice a ~msb:7 ~lsb:4 and s2 = Sym.slice a ~msb:7 ~lsb:4 in
  check_bool "equal slices are physically shared" true (s1 == s2);
  check_bool "different terms stay distinct" false
    (Sym.bin Ast.Add x (Sym.of_int ~width:8 4) == a);
  (* resetting the session drops the sharing but never the semantics *)
  Sym.new_session ();
  let c = Sym.bin Ast.Add x (Sym.of_int ~width:8 3) in
  check_bool "post-reset terms still compare equal" true (Sym.equal a c)

(* ---------------- Solver ---------------- *)

let var w name = Sym.fresh_var ~name ~width:w

let test_solver_exact_constraint () =
  let x = var 16 "ethertype" in
  match Solver.solve [ Sym.bin Ast.Eq x (Sym.of_int ~width:16 0x800) ] with
  | Solver.Sat m ->
      let id = match x with Sym.Var v -> v.Sym.v_id | _ -> assert false in
      Alcotest.(check int64) "model value" 0x800L (Value.to_int64 (Solver.model_value m id))
  | _ -> Alcotest.fail "no model"

let test_solver_masked_constraint () =
  let x = var 32 "addr" in
  let masked =
    Sym.bin Ast.Eq
      (Sym.bin Ast.BAnd x (Sym.of_int ~width:32 0xFF000000))
      (Sym.of_int ~width:32 0x0A000000)
  in
  match Solver.solve [ masked ] with
  | Solver.Sat m -> check_bool "model satisfies" true (Solver.holds m [ masked ])
  | _ -> Alcotest.fail "no model for masked constraint"

let test_solver_lpm_shape () =
  let x = var 32 "dst" in
  (* (x >> 16) == 0x0A01: the shape entry_match_cond emits for /16 *)
  let c =
    Sym.bin Ast.Eq
      (Sym.bin Ast.Shr x (Sym.of_int ~width:8 16))
      (Sym.of_int ~width:32 0x0A01)
  in
  match Solver.solve [ c ] with
  | Solver.Sat m -> check_bool "model satisfies lpm" true (Solver.holds m [ c ])
  | _ -> Alcotest.fail "no model for lpm shape"

let test_solver_conjunction_and_negation () =
  let x = var 16 "port" in
  let cs =
    [
      Sym.bin Ast.Neq x (Sym.of_int ~width:16 80);
      Sym.bin Ast.Gt x (Sym.of_int ~width:16 1000);
      Sym.bin Ast.Lt x (Sym.of_int ~width:16 1003);
    ]
  in
  match Solver.solve cs with
  | Solver.Sat m -> check_bool "holds all" true (Solver.holds m cs)
  | _ -> Alcotest.fail "no model for small range"

let test_solver_trivial () =
  (match Solver.solve [ Sym.const Value.fls ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "constant false should be Unsat");
  (match Solver.solve [] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "empty conjunction is Sat");
  let x = var 8 "x" in
  match
    Solver.solve ~max_tries:500
      [
        Sym.bin Ast.Eq x (Sym.of_int ~width:8 1);
        Sym.bin Ast.Eq x (Sym.of_int ~width:8 2);
      ]
  with
  | Solver.Unknown -> ()
  | Solver.Sat _ -> Alcotest.fail "contradiction declared Sat"
  | Solver.Unsat -> () (* fine too, if it ever learns to prove it *)

let test_solver_unsat_detection () =
  (* the same information expressed via mask and via shift, contradicting *)
  let dst = var 32 "dst" in
  let masked =
    Sym.bin Ast.Eq
      (Sym.bin Ast.BAnd dst (Sym.of_int ~width:32 0xFFFF0000))
      (Sym.of_int ~width:32 0x0A010000)
  in
  let shifted =
    Sym.bin Ast.Eq
      (Sym.bin Ast.Shr dst (Sym.of_int ~width:8 16))
      (Sym.of_int ~width:32 0x0A01)
  in
  (match Solver.solve [ masked; Sym.not_ shifted ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "contradiction declared Sat"
  | Solver.Unknown -> Alcotest.fail "should be proved Unsat");
  (* conflicting full assignments *)
  let p = var 8 "proto" in
  (match
     Solver.solve
       [ Sym.bin Ast.Eq p (Sym.of_int ~width:8 6); Sym.bin Ast.Eq p (Sym.of_int ~width:8 17) ]
   with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "6 != 17");
  (* a self-contradictory masked fact: value has bits outside the mask *)
  let q = var 16 "q" in
  (match
     Solver.solve
       [
         Sym.bin Ast.Eq
           (Sym.bin Ast.BAnd q (Sym.of_int ~width:16 0xFF00))
           (Sym.of_int ~width:16 0x00FF);
       ]
   with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "(q & 0xFF00) == 0x00FF is unsatisfiable");
  (* and the consistent counterpart is satisfiable *)
  match Solver.solve [ masked; shifted ] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "consistent pair should be Sat"

let test_solver_classifies_all_acl_paths () =
  let b = Programs.acl_firewall in
  let rt = Runtime.create () in
  (match Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let run = Sexec.explore b.Programs.program rt in
  List.iter
    (fun p ->
      match Solver.solve p.Sexec.p_conds with
      | Solver.Sat _ | Solver.Unsat -> ()
      | Solver.Unknown -> Alcotest.fail "an acl path was left Unknown")
    run.Sexec.paths

let prop_solver_sound =
  (* any Sat answer must actually satisfy the constraints *)
  QCheck.Test.make ~count:100 ~name:"solver models verify"
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) bool)
    (fun (a, b, use_and) ->
      let x = var 16 "x" and y = var 16 "y" in
      let c1 = Sym.bin Ast.Eq x (Sym.of_int ~width:16 a) in
      let c2 =
        if use_and then
          Sym.bin Ast.Eq
            (Sym.bin Ast.BAnd y (Sym.of_int ~width:16 0xFF00))
            (Sym.of_int ~width:16 (b land 0xFF00))
        else Sym.bin Ast.Ge y (Sym.of_int ~width:16 b)
      in
      match Solver.solve [ c1; c2 ] with
      | Solver.Sat m -> Solver.holds m [ c1; c2 ]
      | Solver.Unsat -> false (* these are always satisfiable *)
      | Solver.Unknown -> true (* allowed, just incomplete *))

(* ---------------- Sexec ---------------- *)

let deploy (b : Programs.bundle) =
  let rt = Runtime.create () in
  (match Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (b.Programs.program, rt)

let test_explore_router_paths () =
  let program, rt = deploy Programs.basic_router in
  let run = Sexec.explore program rt in
  check_bool "not truncated" false run.Sexec.truncated;
  let endings = List.map (fun p -> p.Sexec.p_ending) run.Sexec.paths in
  check_bool "has reject paths" true
    (List.exists (function Sexec.Rejected _ -> true | _ -> false) endings);
  check_bool "has forwarded paths" true (List.mem Sexec.Forwarded endings);
  check_bool "has drop paths" true
    (List.exists (function Sexec.Dropped _ -> true | _ -> false) endings)

let test_explore_counts_table_branches () =
  let program, rt = deploy Programs.basic_router in
  let run = Sexec.explore program rt in
  (* three entries + default = 4 table outcomes on the routed paths *)
  let actions =
    List.sort_uniq compare
      (List.concat_map (fun p -> p.Sexec.p_tables) run.Sexec.paths)
  in
  check_bool "set_nexthop branch" true (List.mem ("ipv4_lpm", "set_nexthop") actions);
  check_bool "default branch" true (List.mem ("ipv4_lpm", "drop_packet") actions)

let test_witness_replays_on_interpreter () =
  (* every satisfiable reject path's witness must actually be rejected by
     the reference interpreter *)
  let program, rt = deploy Programs.basic_router in
  let findings = Check.reject_reachable program rt in
  check_bool "some reject witnesses" true
    (List.exists (fun f -> f.Check.f_witness <> None) findings);
  List.iter
    (fun f ->
      match f.Check.f_witness with
      | Some (port, bits) -> (
          match (Interp.process program rt ~ingress_port:port bits).Interp.result with
          | Interp.Dropped reason ->
              check_bool "dropped at parser" true
                (String.length reason >= 6 && String.sub reason 0 6 = "parser")
          | Interp.Forwarded _ -> Alcotest.fail "witness was forwarded")
      | None -> ())
    findings

(* ---------------- Check ---------------- *)

let test_rejected_are_dropped_holds_on_spec () =
  let program, rt = deploy Programs.parser_guard in
  let f = Check.rejected_are_dropped program rt in
  Alcotest.(check string) "verdict" "HOLDS" (Check.verdict_to_string f.Check.f_verdict)

let test_ttl_property_distinguishes_buggy_router () =
  let program, rt = deploy Programs.basic_router in
  let good = Check.ttl_decremented program rt in
  Alcotest.(check string) "good router" "HOLDS"
    (Check.verdict_to_string good.Check.f_verdict);
  let program, rt = deploy Programs.buggy_router in
  let bad = Check.ttl_decremented program rt in
  Alcotest.(check string) "buggy router" "VIOLATED"
    (Check.verdict_to_string bad.Check.f_verdict);
  (* replay the witness: TTL must come out unchanged *)
  match bad.Check.f_witness with
  | Some (port, bits) -> (
      let in_ttl = Bitutil.Bitstring.extract bits ~off:(112 + 64) ~width:8 in
      match (Interp.process program rt ~ingress_port:port bits).Interp.result with
      | Interp.Forwarded (_, out) ->
          let out_ttl = Bitutil.Bitstring.extract out ~off:(112 + 64) ~width:8 in
          Alcotest.(check int64) "ttl unchanged on wire" in_ttl out_ttl
      | Interp.Dropped r -> Alcotest.failf "witness dropped: %s" r)
  | None -> Alcotest.fail "no witness for the TTL bug"

let test_forward_requires_ipv4 () =
  let program, rt = deploy Programs.basic_router in
  let f = Check.forward_requires_header ~header:"ipv4" program rt in
  Alcotest.(check string) "router never forwards non-ipv4" "HOLDS"
    (Check.verdict_to_string f.Check.f_verdict);
  (* parser_guard punts ARP without ipv4: the property is (by design) violated *)
  let program, rt = deploy Programs.parser_guard in
  let f = Check.forward_requires_header ~header:"ipv4" program rt in
  Alcotest.(check string) "guard punts arp" "VIOLATED"
    (Check.verdict_to_string f.Check.f_verdict)

let test_assertion_violation_found () =
  let program =
    {
      Programs.reflector.Programs.program with
      Ast.p_name = "bad_assert";
      p_ingress =
        [
          Dsl.assert_
            Dsl.(fld "eth" "ethertype" <>: const ~width:16 0x1234)
            "no calc traffic expected";
          Dsl.set_std Ast.Egress_spec (Dsl.std Ast.Ingress_port);
        ];
    }
  in
  let rt = Runtime.create () in
  match Check.assertions program rt with
  | [ f ] ->
      Alcotest.(check string) "violated" "VIOLATED" (Check.verdict_to_string f.Check.f_verdict)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_assertion_holds_on_router () =
  let program, rt = deploy Programs.basic_router in
  List.iter
    (fun f ->
      Alcotest.(check string) "router asserts hold" "HOLDS"
        (Check.verdict_to_string f.Check.f_verdict))
    (Check.assertions program rt)

let test_action_coverage () =
  let program, rt = deploy Programs.basic_router in
  let findings = Check.action_coverage program rt in
  check_int "two actions" 2 (List.length findings);
  List.iter
    (fun f ->
      Alcotest.(check string) ("coverage: " ^ f.Check.f_property) "HOLDS"
        (Check.verdict_to_string f.Check.f_verdict))
    findings

let test_dead_action_detected () =
  (* an action listed on the table but never selected: no entry uses it and
     it is not the default *)
  let b = Programs.l2_switch in
  let rt = Runtime.create () in
  (* install only dmac entries, never smac: src_known becomes dead *)
  List.iter
    (fun (t, e) ->
      if String.equal t "dmac" then P4ir.Runtime.add_exn b.Programs.program rt ~table:t e)
    b.Programs.entries;
  let findings = Check.action_coverage b.Programs.program rt in
  let dead =
    List.filter
      (fun f ->
        f.Check.f_verdict = Check.Violated
        && f.Check.f_property = "table smac: action src_known reachable")
      findings
  in
  check_int "src_known is dead" 1 (List.length dead)

let test_egress_port_bounded () =
  let program, rt = deploy Programs.basic_router in
  let f = Check.egress_port_bounded ~ports:4 program rt in
  Alcotest.(check string) "router stays physical" "HOLDS"
    (Check.verdict_to_string f.Check.f_verdict);
  let program, rt = deploy Programs.parser_guard in
  let f = Check.egress_port_bounded ~ports:4 program rt in
  Alcotest.(check string) "cpu punt flagged" "VIOLATED"
    (Check.verdict_to_string f.Check.f_verdict);
  (* whitelisting the CPU port makes it pass *)
  let f = Check.egress_port_bounded ~ports:4 ~allowed:[ 63 ] program rt in
  Alcotest.(check string) "cpu punt allow-listed" "HOLDS"
    (Check.verdict_to_string f.Check.f_verdict);
  (* witness replay: the violating packet really goes to port 63 *)
  let program, rt = deploy Programs.parser_guard in
  match (Check.egress_port_bounded ~ports:4 program rt).Check.f_witness with
  | Some (port, bits) -> (
      match (Interp.process program rt ~ingress_port:port bits).Interp.result with
      | Interp.Forwarded (63, _) -> ()
      | Interp.Forwarded (p, _) -> Alcotest.failf "witness went to %d" p
      | Interp.Dropped r -> Alcotest.failf "witness dropped: %s" r)
  | None -> Alcotest.fail "no witness"

let test_invalid_header_read_detected () =
  (* a firewall that reads tcp.dst_port without checking tcp validity: on
     the UDP path the read silently yields 0 *)
  let program =
    {
      Programs.acl_firewall.Programs.program with
      Ast.p_name = "careless_acl";
      p_ingress =
        [
          (* BUG: no validity guard *)
          Dsl.set_meta "l4_dport" (Dsl.fld "tcp" "dst_port");
          Dsl.if_ (Dsl.valid "ipv4")
            [ Ast.Apply "acl";
              Dsl.if_ Dsl.(meta "allow" ==: const ~width:1 1)
                [ Ast.Apply "ipv4_lpm" ] [ Ast.MarkToDrop ] ]
            [ Ast.MarkToDrop ];
        ];
    }
  in
  let rt = Runtime.create () in
  (match
     Runtime.install_all program rt Programs.acl_firewall.Programs.entries
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let f = Check.no_invalid_header_reads program rt in
  Alcotest.(check string) "careless read flagged" "VIOLATED"
    (Check.verdict_to_string f.Check.f_verdict);
  (* the library programs are all clean *)
  List.iter
    (fun (b : Programs.bundle) ->
      let rt = Runtime.create () in
      (match Runtime.install_all b.Programs.program rt b.Programs.entries with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let f = Check.no_invalid_header_reads b.Programs.program rt in
      Alcotest.(check string)
        (b.Programs.program.Ast.p_name ^ " clean")
        "HOLDS"
        (Check.verdict_to_string f.Check.f_verdict))
    [ Programs.basic_router; Programs.acl_firewall; Programs.mpls_tunnel ]

(* ---------------- Testgen ---------------- *)

let test_testgen_covers_router_paths () =
  let program, rt = deploy Programs.basic_router in
  let r = Testgen.generate program rt in
  check_bool "coverage complete" true (Testgen.coverage_complete r);
  check_int "eight paths" 8 r.Testgen.tg_stats.Testgen.tg_paths;
  check_int "one vector per path" 8 (List.length r.Testgen.tg_vectors);
  (* the expectations span all three observable fates *)
  let expects = List.map (fun v -> v.Testgen.v_expected) r.Testgen.tg_vectors in
  check_bool "forward expected somewhere" true
    (List.exists (function Testgen.Forward _ -> true | _ -> false) expects);
  check_bool "ingress drop expected somewhere" true (List.mem (Testgen.Drop "ingress") expects);
  check_bool "parser reject expected somewhere" true
    (List.mem (Testgen.Drop "parser:Reject") expects)

let test_testgen_report_golden () =
  let program, rt = deploy Programs.basic_router in
  let ic = open_in "testgen_report.golden" in
  let n = in_channel_length ic in
  let golden = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "report matches golden" golden
    (Testgen.render (Testgen.generate program rt))

(* the heart of the oracle: every emitted vector's expected observation is
   derived from the symbolic path alone, so replaying the packet on the
   reference interpreter — both engines — must reproduce it exactly, for
   any solver seed, and the report must not depend on [jobs] *)
let prop_testgen_oracle_matches_interp =
  QCheck.Test.make ~count:10 ~name:"testgen expectations replay on both engines"
    QCheck.(int_bound 10_000)
    (fun seed ->
      List.for_all
        (fun bundle ->
          let program, rt = deploy bundle in
          let r = Testgen.generate ~seed ~jobs:1 program rt in
          let r4 = Testgen.generate ~seed ~jobs:4 program rt in
          if not (String.equal (Testgen.render r) (Testgen.render r4)) then
            QCheck.Test.fail_report "jobs=4 report differs from jobs=1";
          List.for_all
            (fun (v : Testgen.vector) ->
              v.Testgen.v_state_dependent
              || List.for_all
                   (fun engine ->
                     let got =
                       (Interp.process ~engine program rt
                          ~ingress_port:v.Testgen.v_ingress_port v.Testgen.v_packet)
                         .Interp.result
                     in
                     let got_str =
                       match got with
                       | Interp.Forwarded (p, _) -> Printf.sprintf "forward to port %d" p
                       | Interp.Dropped reason -> Printf.sprintf "drop (%s)" reason
                     in
                     String.equal (Testgen.expected_str v.Testgen.v_expected) got_str
                     || QCheck.Test.fail_reportf "path %d: expected %s, interp says %s"
                          v.Testgen.v_path
                          (Testgen.expected_str v.Testgen.v_expected)
                          got_str)
                   [ `Staged; `Tree ])
            r.Testgen.tg_vectors)
        [ Programs.basic_router; Programs.acl_firewall; Programs.parser_guard ])

let test_run_all_battery () =
  let program, rt = deploy Programs.basic_router in
  let findings = Check.run_all program rt in
  check_bool "battery is non-trivial" true (List.length findings >= 5);
  check_bool "no violations on the good router" true
    (List.for_all (fun f -> f.Check.f_verdict <> Check.Violated) findings)

let () =
  Alcotest.run "symexec"
    [
      ( "sym",
        [
          Alcotest.test_case "constant folding" `Quick test_sym_constant_folding;
          Alcotest.test_case "width" `Quick test_sym_width;
          Alcotest.test_case "eval" `Quick test_sym_eval;
          Alcotest.test_case "vars dedup" `Quick test_sym_vars_dedup;
          Alcotest.test_case "interning" `Quick test_sym_interning;
        ] );
      ( "solver",
        [
          Alcotest.test_case "exact constraint" `Quick test_solver_exact_constraint;
          Alcotest.test_case "masked constraint" `Quick test_solver_masked_constraint;
          Alcotest.test_case "lpm shape" `Quick test_solver_lpm_shape;
          Alcotest.test_case "conjunction" `Quick test_solver_conjunction_and_negation;
          Alcotest.test_case "trivial cases" `Quick test_solver_trivial;
          Alcotest.test_case "unsat detection" `Quick test_solver_unsat_detection;
          Alcotest.test_case "acl paths fully classified" `Quick
            test_solver_classifies_all_acl_paths;
          QCheck_alcotest.to_alcotest prop_solver_sound;
        ] );
      ( "sexec",
        [
          Alcotest.test_case "router paths" `Quick test_explore_router_paths;
          Alcotest.test_case "table branches" `Quick test_explore_counts_table_branches;
          Alcotest.test_case "witness replay" `Quick test_witness_replays_on_interpreter;
        ] );
      ( "check",
        [
          Alcotest.test_case "rejected-are-dropped holds on spec" `Quick
            test_rejected_are_dropped_holds_on_spec;
          Alcotest.test_case "ttl property vs buggy router" `Quick
            test_ttl_property_distinguishes_buggy_router;
          Alcotest.test_case "forward requires ipv4" `Quick test_forward_requires_ipv4;
          Alcotest.test_case "assertion violation found" `Quick test_assertion_violation_found;
          Alcotest.test_case "router assertions hold" `Quick test_assertion_holds_on_router;
          Alcotest.test_case "action coverage" `Quick test_action_coverage;
          Alcotest.test_case "dead action detected" `Quick test_dead_action_detected;
          Alcotest.test_case "egress port bounded" `Quick test_egress_port_bounded;
          Alcotest.test_case "invalid header read" `Quick test_invalid_header_read_detected;
          Alcotest.test_case "run_all battery" `Quick test_run_all_battery;
        ] );
      ( "testgen",
        [
          Alcotest.test_case "covers router paths" `Quick test_testgen_covers_router_paths;
          Alcotest.test_case "report golden" `Quick test_testgen_report_golden;
          QCheck_alcotest.to_alcotest prop_testgen_oracle_matches_interp;
        ] );
    ]
