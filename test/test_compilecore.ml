(* Differential tests for the staged closure engine (P4ir.Compilecore):
   staged vs tree observations over the whole program library, fuzz-driven
   equivalence at 1 and 4 domains, counter-ordering pins, matcher
   specialization corner cases, and device-level parity including quirks
   and injected faults. *)

module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng
module Ast = P4ir.Ast
module Value = P4ir.Value
module Entry = P4ir.Entry
module Runtime = P4ir.Runtime
module Regstate = P4ir.Regstate
module Parse = P4ir.Parse
module Interp = P4ir.Interp
module Programs = P4ir.Programs
module Dsl = P4ir.Dsl
module Mutate = Fuzz.Mutate
module Pool = Par.Pool
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile
module Device = Target.Device
module Fault = Target.Fault
module P = Packet
module Eth = Packet.Eth
module Ipv4 = Packet.Ipv4
module Mpls = Packet.Mpls

let check_int = Alcotest.(check int)

let deploy (b : Programs.bundle) =
  let rt = Runtime.create () in
  (match Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (b.Programs.program, rt)

(* ---------------- observation equality ---------------- *)

let result_equal a b =
  match (a, b) with
  | Interp.Forwarded (pa, ba), Interp.Forwarded (pb, bb) ->
      pa = pb && Bitstring.equal ba bb
  | Interp.Dropped ra, Interp.Dropped rb -> String.equal ra rb
  | _ -> false

let obs_equal (a : Interp.observation) (b : Interp.observation) =
  result_equal a.Interp.result b.Interp.result
  && a.Interp.parser.Parse.accepted = b.Interp.parser.Parse.accepted
  && a.Interp.parser.Parse.error = b.Interp.parser.Parse.error
  && a.Interp.parser.Parse.states_visited = b.Interp.parser.Parse.states_visited
  && a.Interp.tables = b.Interp.tables
  && a.Interp.counters = b.Interp.counters
  && a.Interp.failed_asserts = b.Interp.failed_asserts

let show_obs (o : Interp.observation) =
  let res =
    match o.Interp.result with
    | Interp.Forwarded (p, b) -> Printf.sprintf "Forwarded(%d,%s)" p (Bitstring.to_hex b)
    | Interp.Dropped r -> Printf.sprintf "Dropped(%s)" r
  in
  Printf.sprintf "%s parser={acc=%b err=%d visited=%s} tables=[%s] counters=[%s] asserts=[%s]"
    res o.Interp.parser.Parse.accepted o.Interp.parser.Parse.error
    (String.concat ">" o.Interp.parser.Parse.states_visited)
    (String.concat ";"
       (List.map (fun (t, h, a) -> Printf.sprintf "%s/%b/%s" t h a) o.Interp.tables))
    (String.concat ";"
       (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) o.Interp.counters))
    (String.concat ";" o.Interp.failed_asserts)

let regs_equal prog ra rb =
  List.for_all
    (fun (r : Ast.register_decl) ->
      let da = Regstate.dump ra r.Ast.r_name and db = Regstate.dump rb r.Ast.r_name in
      Array.length da = Array.length db
      && Array.for_all2 (fun x y -> Value.equal x y) da db)
    prog.Ast.p_registers

(* Run one packet under both engines (optionally threading register state)
   and fail loudly on any observable divergence. *)
let check_both ?rega ?regb ~what (prog, rt) ~port bits =
  let oa = Interp.process ~engine:`Tree ?regs:rega prog rt ~ingress_port:port bits in
  let ob = Interp.process ~engine:`Staged ?regs:regb prog rt ~ingress_port:port bits in
  if not (obs_equal oa ob) then
    Alcotest.failf "%s: engines diverge\n  tree:   %s\n  staged: %s" what (show_obs oa)
      (show_obs ob);
  (match (rega, regb) with
  | Some ra, Some rb ->
      if not (regs_equal prog ra rb) then
        Alcotest.failf "%s: register end-state diverges" what
  | _ -> ());
  oa

(* ---------------- engine matrix over the program library ---------------- *)

(* A probe set that exercises accepts, rejects, truncations and garbage in
   every bundle; each bundle's parser decides what it means. *)
let probes =
  let v6 dst_hi =
    P.serialize
      (P.fixup
         (P.make
            [
              P.Eth (Eth.make ~ethertype:0x86DDL ());
              P.Ipv6 (Packet.Ipv6.make ~dst:(dst_hi, 1L) ~payload_len:0 ());
            ]
            ()))
  in
  let vlan vid =
    P.serialize
      (P.fixup
         (P.make
            [
              P.Eth (Eth.make ());
              P.Vlan (Packet.Vlan.make ~vid ());
              P.Ipv4 (Ipv4.make ~dst:0x0A000099L ~payload_len:0 ());
            ]
            ()))
  in
  let mpls label =
    P.serialize
      (P.fixup
         (P.make
            [
              P.Eth (Eth.make ());
              P.Mpls (Mpls.make ~label ~bos:1L ());
              P.Ipv4 (Ipv4.make ~payload_len:0 ());
            ]
            ()))
  in
  let calc op =
    let w = Bitstring.Writer.create () in
    Bitstring.Writer.push_bits w
      (Eth.to_bits
         (Eth.make ~dst:0x020000000002L ~src:0x020000000001L ~ethertype:0x1234L ()));
    Bitstring.Writer.push_int64 w ~width:8 op;
    Bitstring.Writer.push_int64 w ~width:32 1234L;
    Bitstring.Writer.push_int64 w ~width:32 77L;
    Bitstring.Writer.push_int64 w ~width:32 0L;
    Bitstring.Writer.contents w
  in
  let prng = Prng.create 0x5EED in
  [
    P.serialize (P.udp_ipv4 ~dst:0x0A000005L ~ttl:64L ());
    P.serialize (P.udp_ipv4 ~dst:0x0A010203L ~ttl:2L ());
    P.serialize (P.udp_ipv4 ~dst:0xC0A80001L ~ttl:1L ());
    P.serialize (P.udp_ipv4 ~dst:0x08080808L ());
    P.serialize (P.udp_ipv4 ~eth_dst:0x020000000002L ~eth_src:0x02AAAAAAAAAAL ());
    P.serialize (P.tcp_ipv4 ~src:0x0A000001L ~dst:0x0A010001L ~dst_port:23L ());
    P.serialize (P.tcp_ipv4 ~src:0xC0A80001L ~dst:0x0A010005L ~dst_port:80L ());
    P.serialize (P.arp_request ());
    P.serialize
      (P.map_ipv4 (fun ip -> { ip with Ipv4.checksum = 0xBADL }) (P.udp_ipv4 ()));
    v6 0x20010DB8_0001_BBBBL;
    v6 0xFD00_0000_0000_0000L;
    vlan 10L;
    vlan 99L;
    mpls 100L;
    mpls 999L;
    calc 1L;
    calc 77L;
    Bitstring.empty;
    Bitstring.of_hex "45000014";
    Bitstring.random prng 64;
    Bitstring.random prng 112;
    Bitstring.random prng 272;
    Bitstring.random prng 513;
    Bitstring.random prng 1207;
  ]

let test_engine_matrix () =
  List.iter
    (fun (b : Programs.bundle) ->
      let dut = deploy b in
      let prog = fst dut in
      (* stateless pass: fresh registers per call in both engines *)
      List.iteri
        (fun i bits ->
          ignore
            (check_both
               ~what:(Printf.sprintf "%s probe %d" prog.Ast.p_name i)
               dut ~port:(i mod 4) bits))
        probes;
      (* stateful pass: one register store per engine, threaded *)
      if prog.Ast.p_registers <> [] then begin
        let rega = Regstate.create prog and regb = Regstate.create prog in
        List.iteri
          (fun i bits ->
            ignore
              (check_both ~rega ~regb
                 ~what:(Printf.sprintf "%s stateful probe %d" prog.Ast.p_name i)
                 dut ~port:(i mod 4) bits))
          probes
      end)
    Programs.all

(* ---------------- counter first-increment ordering ---------------- *)

let test_counter_order_pinned () =
  let program =
    {
      Programs.reflector.Programs.program with
      Ast.p_name = "ctr_order";
      p_counters = [ "alpha"; "zeta" ];
      p_ingress =
        [
          Dsl.count "zeta";
          Dsl.count "alpha";
          Dsl.count "zeta";
          Dsl.count "mid";
          Dsl.count "alpha";
          Dsl.egress_port 1;
        ];
    }
  in
  let rt = Runtime.create () in
  let bits = P.serialize (P.udp_ipv4 ()) in
  List.iter
    (fun engine ->
      let obs = Interp.process ~engine program rt ~ingress_port:0 bits in
      Alcotest.(check (list (pair string int)))
        "counters in first-increment order, not alphabetical"
        [ ("zeta", 2); ("alpha", 2); ("mid", 1) ]
        obs.Interp.counters)
    [ `Tree; `Staged ]

(* ---------------- matcher specialization ---------------- *)

(* Ternary table over eth.ethertype; priorities, specificity and install
   order all get a say. *)
let tern_bundle entries =
  let base = Programs.reflector.Programs.program in
  {
    Programs.program =
      {
        base with
        Ast.p_name = "tern_ties";
        p_actions =
          [
            Dsl.action "to1" [] [ Dsl.egress_port 1 ];
            Dsl.action "to2" [] [ Dsl.egress_port 2 ];
            Dsl.action "to3" [] [ Dsl.egress_port 3 ];
            Dsl.action "nop" [] [];
          ];
        p_tables =
          [
            Dsl.table "t" [ (Dsl.fld "eth" "ethertype", Ast.Ternary) ]
              [ "to1"; "to2"; "to3"; "nop" ] ~default:"nop" ();
          ];
        p_ingress = [ Dsl.apply "t" ];
      };
    entries;
    description = "ternary tie-break exerciser";
  }

let tern_entry ?priority v mask action =
  ("t", Entry.make ?priority ~keys:[ Entry.ternary (Value.of_int ~width:16 v) (Value.of_int ~width:16 mask) ] ~action ())

let expect_action what (obs : Interp.observation) action =
  match obs.Interp.tables with
  | [ ("t", _, a) ] -> Alcotest.(check string) what action a
  | other ->
      Alcotest.failf "%s: unexpected table trace (%d applies)" what (List.length other)

let test_ternary_tie_breaks () =
  let dut =
    deploy
      (tern_bundle
         [
           tern_entry ~priority:10 0x0800 0xFF00 "to1";
           (* same priority, more specific mask: wins on exact 0x0800 *)
           tern_entry ~priority:10 0x0800 0xFFFF "to2";
           (* identical to the previous row, installed later: loses *)
           tern_entry ~priority:10 0x0800 0xFFFF "to3";
         ])
  in
  let ipv4 = P.serialize (P.udp_ipv4 ()) in
  let obs = check_both ~what:"specificity tie" dut ~port:0 ipv4 in
  expect_action "specificity beats install order" obs "to2";
  (* runtime mutation mid-stream: the staged matcher must rebuild *)
  let prog, rt = dut in
  Runtime.add_exn prog rt ~table:"t"
    (snd (tern_entry ~priority:99 0 0 "to3"));
  let obs = check_both ~what:"priority after generation bump" dut ~port:0 ipv4 in
  expect_action "priority beats specificity" obs "to3"

let test_exact_hash_winner () =
  (* single exact key -> hash matcher; duplicate keys keep the first row *)
  let base = Programs.reflector.Programs.program in
  let b =
    {
      Programs.program =
        {
          base with
          Ast.p_name = "hash_dup";
          p_actions =
            [
              Dsl.action "to1" [] [ Dsl.egress_port 1 ];
              Dsl.action "to2" [] [ Dsl.egress_port 2 ];
              Dsl.action "nop" [] [];
            ];
          p_tables =
            [
              Dsl.table "t" [ (Dsl.fld "eth" "ethertype", Ast.Exact) ]
                [ "to1"; "to2"; "nop" ] ~default:"nop" ();
            ];
          p_ingress = [ Dsl.apply "t" ];
        };
      entries =
        [
          ("t", Entry.make ~keys:[ Entry.exact (Value.of_int ~width:16 0x0800) ] ~action:"to1" ());
          ("t", Entry.make ~keys:[ Entry.exact (Value.of_int ~width:16 0x0800) ] ~action:"to2" ());
        ];
      description = "exact duplicate exerciser";
    }
  in
  let dut = deploy b in
  let obs = check_both ~what:"exact dup" dut ~port:0 (P.serialize (P.udp_ipv4 ())) in
  expect_action "first install wins among exact duplicates" obs "to1";
  let obs = check_both ~what:"exact miss" dut ~port:0 (P.serialize (P.arp_request ())) in
  expect_action "miss falls to default" obs "nop"

let test_lpm_zero_and_long () =
  (* /0 must match everything; longer prefixes must still beat it *)
  let b = Programs.basic_router in
  let dut = deploy b in
  let prog, rt = dut in
  Runtime.add_exn prog rt ~table:"ipv4_lpm"
    (Entry.make
       ~keys:[ Entry.lpm (Value.of_int ~width:32 0) 0 ]
       ~action:"set_nexthop"
       ~args:[ Value.of_int ~width:9 7; Value.of_int ~width:48 0xFE ]
       ());
  let port_of dst =
    let obs =
      check_both ~what:(Printf.sprintf "lpm %Lx" dst) dut ~port:0
        (P.serialize (P.udp_ipv4 ~dst ()))
    in
    match obs.Interp.result with
    | Interp.Forwarded (p, _) -> p
    | Interp.Dropped r -> Alcotest.failf "lpm %Lx dropped: %s" dst r
  in
  check_int "/0 catches previously-missing dst" 7 (port_of 0x08080808L);
  check_int "/16 still beats /0" 2 (port_of 0x0A010203L);
  check_int "/8 still beats /0" 1 (port_of 0x0A020304L)

(* ---------------- fuzz-driven differential (jobs 1 and 4) ---------------- *)

let file_bundles =
  lazy
    (List.map
       (fun f ->
         (* dune runtest copies the .p4 files next to the binary; fall back
            to the source tree when run by hand via dune exec *)
         let f =
           if Sys.file_exists f then f else Filename.concat "examples/programs" f
         in
         match P4front.Front.parse_file f with
         | Ok b -> b
         | Error e ->
             Alcotest.failf "parse %s: %d:%d %s" f e.P4front.Front.line
               e.P4front.Front.col e.P4front.Front.message)
       [ "router.p4"; "kv_cache.p4"; "heavy_hitter.p4" ])

let mutated_cases ~per_bundle seed =
  let prng = Prng.create seed in
  List.concat_map
    (fun (b : Programs.bundle) ->
      let lay = Mutate.layout_of b in
      let base =
        [|
          P.serialize (P.udp_ipv4 ~dst:0x0A000005L ());
          Bitstring.random prng lay.Mutate.total_bits;
        |]
      in
      List.init per_bundle (fun i ->
          let bits = Mutate.mutate lay prng (Prng.choose prng base) in
          (b, i, bits)))
    (Lazy.force file_bundles)

let prop_fuzz_differential_seq =
  QCheck.Test.make ~count:60 ~name:"staged == tree on mutated packets (jobs=1)"
    QCheck.(int_bound 0xFFFFFF)
    (fun seed ->
      List.for_all
        (fun ((b : Programs.bundle), i, bits) ->
          let prog, rt = deploy b in
          let rega = Regstate.create prog and regb = Regstate.create prog in
          let oa =
            Interp.process ~engine:`Tree ~regs:rega prog rt ~ingress_port:(i mod 4) bits
          in
          let ob =
            Interp.process ~engine:`Staged ~regs:regb prog rt ~ingress_port:(i mod 4)
              bits
          in
          obs_equal oa ob && regs_equal prog rega regb)
        (mutated_cases ~per_bundle:6 seed))

let test_fuzz_differential_par () =
  (* same differential, fanned over 4 domains: exercises the per-domain
     compile and instantiation caches *)
  let duts =
    List.map (fun b -> (b, deploy b)) (Lazy.force file_bundles)
  in
  let cases =
    Array.of_list
      (List.concat_map
         (fun seed ->
           List.map
             (fun ((b : Programs.bundle), _, bits) ->
               let _, dut = List.find (fun (b', _) -> b' == b) duts in
               (dut, bits))
             (mutated_cases ~per_bundle:8 seed))
         [ 11; 222; 3333 ])
  in
  let results =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map_chunks pool ~chunk:4
          (fun ~worker:_ i ((prog, rt), bits) ->
            let rega = Regstate.create prog and regb = Regstate.create prog in
            let oa =
              Interp.process ~engine:`Tree ~regs:rega prog rt ~ingress_port:(i mod 4)
                bits
            in
            let ob =
              Interp.process ~engine:`Staged ~regs:regb prog rt ~ingress_port:(i mod 4)
                bits
            in
            obs_equal oa ob && regs_equal prog rega regb)
          cases)
  in
  Array.iteri
    (fun i ok -> if not ok then Alcotest.failf "jobs=4 case %d diverged" i)
    results

(* ---------------- device parity: tree vs staged pipelines ---------------- *)

let build_pair ?(quirks = Quirks.default) (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks b.Programs.program in
  let mk engine =
    let d = Device.create ~engine report.Compile.pipeline in
    (match
       Runtime.install_all b.Programs.program (Device.runtime d) b.Programs.entries
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    d
  in
  (mk `Tree, mk `Staged)

let show_disp = function
  | Device.Emitted o ->
      Printf.sprintf "Emitted(port=%d in=%.1f out=%.1f wire=%.1f %s)" o.Device.o_port
        o.Device.o_in_time_ns o.Device.o_out_time_ns o.Device.o_wire_time_ns
        (Bitstring.to_hex o.Device.o_bits)
  | Device.Dropped_pipeline r -> Printf.sprintf "Dropped_pipeline(%s)" r
  | Device.Dropped_queue -> "Dropped_queue"
  | Device.Lost_in_stage s -> Printf.sprintf "Lost_in_stage(%s)" s

let disp_equal a b =
  match (a, b) with
  | Device.Emitted oa, Device.Emitted ob ->
      oa.Device.o_port = ob.Device.o_port
      && Bitstring.equal oa.Device.o_bits ob.Device.o_bits
      && oa.Device.o_source = ob.Device.o_source
      && oa.Device.o_in_time_ns = ob.Device.o_in_time_ns
      && oa.Device.o_out_time_ns = ob.Device.o_out_time_ns
      && oa.Device.o_wire_time_ns = ob.Device.o_wire_time_ns
  | Device.Dropped_pipeline ra, Device.Dropped_pipeline rb -> String.equal ra rb
  | Device.Dropped_queue, Device.Dropped_queue -> true
  | Device.Lost_in_stage sa, Device.Lost_in_stage sb -> String.equal sa sb
  | _ -> false

let device_probe_set =
  [
    P.serialize (P.udp_ipv4 ~dst:0x0A000005L ());
    P.serialize (P.udp_ipv4 ~dst:0x0A010203L ());
    P.serialize (P.udp_ipv4 ~dst:0xC0A80001L ());
    P.serialize (P.udp_ipv4 ~dst:0x08080808L ());
    P.serialize (P.arp_request ());
    P.serialize
      (P.map_ipv4 (fun ip -> { ip with Ipv4.checksum = 0xBADL }) (P.udp_ipv4 ()));
    Bitstring.of_hex "45000014";
  ]

let run_pair_and_compare ~what (dt, ds) bits_list =
  List.iteri
    (fun i bits ->
      let _, da = Device.inject dt ~source:(Device.External (i mod 4)) bits in
      let _, db = Device.inject ds ~source:(Device.External (i mod 4)) bits in
      if not (disp_equal da db) then
        Alcotest.failf "%s pkt %d: devices diverge\n  tree:   %s\n  staged: %s" what i
          (show_disp da) (show_disp db))
    bits_list

let test_device_parity_quirked () =
  (* default quirks include the reject-continue bug: the arp probe takes the
     quirk path through the whole pipeline in both engines *)
  run_pair_and_compare ~what:"basic_router/default-quirks"
    (build_pair Programs.basic_router)
    device_probe_set;
  run_pair_and_compare ~what:"basic_router/no-quirks"
    (build_pair ~quirks:Quirks.none Programs.basic_router)
    device_probe_set;
  run_pair_and_compare ~what:"acl/all-quirks"
    (build_pair ~quirks:Quirks.all Programs.acl_firewall)
    (List.map P.serialize
       [
         P.tcp_ipv4 ~src:0x0A000001L ~dst:0x0A010001L ~dst_port:23L ();
         P.tcp_ipv4 ~src:0xC0A80001L ~dst:0x0A010005L ~dst_port:80L ();
         P.udp_ipv4 ~src:0x0A000001L ~dst:0x0A000002L ~dst_port:4321L ();
       ])

let test_device_parity_registers () =
  let ((dt, ds) as pair) = build_pair ~quirks:Quirks.none Programs.rate_limiter in
  let bursts =
    List.concat (List.init 6 (fun _ -> [ P.serialize (P.udp_ipv4 ~dst:0x0A000005L ()) ]))
  in
  run_pair_and_compare ~what:"rate_limiter" pair bursts;
  let prog = Programs.rate_limiter.Programs.program in
  if not (regs_equal prog (Device.registers dt) (Device.registers ds)) then
    Alcotest.fail "rate_limiter: device register state diverges"

let test_device_parity_faults () =
  let faults =
    [
      ("ma:ipv4_lpm", Fault.Stuck_miss);
      ("ma:ipv4_lpm", Fault.Corrupt_field ("ipv4", "dst", 0x00FF0000L));
      ("egress", Fault.Drop_at_stage);
      ("deparser", Fault.Intermittent_drop 3);
      ("parser", Fault.Intermittent_drop 2);
    ]
  in
  List.iter
    (fun (stage, fault) ->
      let ((dt, ds) as pair) = build_pair Programs.basic_router in
      Device.inject_fault dt ~stage fault;
      Device.inject_fault ds ~stage fault;
      run_pair_and_compare
        ~what:(Printf.sprintf "fault %s@%s" (Format.asprintf "%a" Fault.pp fault) stage)
        pair
        (device_probe_set @ device_probe_set);
      (* clearing restores parity too *)
      Device.clear_faults dt;
      Device.clear_faults ds;
      run_pair_and_compare ~what:(Printf.sprintf "cleared fault @%s" stage) pair
        device_probe_set)
    faults

let () =
  Alcotest.run "compilecore"
    [
      ( "engine matrix",
        [ Alcotest.test_case "all bundles, all probes" `Quick test_engine_matrix ] );
      ( "counters",
        [ Alcotest.test_case "first-increment order pinned" `Quick test_counter_order_pinned ] );
      ( "matchers",
        [
          Alcotest.test_case "ternary tie-breaks + rebuild" `Quick test_ternary_tie_breaks;
          Alcotest.test_case "exact hash winner" `Quick test_exact_hash_winner;
          Alcotest.test_case "lpm /0 and overlap" `Quick test_lpm_zero_and_long;
        ] );
      ( "fuzz differential",
        [
          QCheck_alcotest.to_alcotest prop_fuzz_differential_seq;
          Alcotest.test_case "mutated packets, jobs=4" `Quick test_fuzz_differential_par;
        ] );
      ( "device parity",
        [
          Alcotest.test_case "quirked pipelines" `Quick test_device_parity_quirked;
          Alcotest.test_case "register state" `Quick test_device_parity_registers;
          Alcotest.test_case "injected faults" `Quick test_device_parity_faults;
        ] );
    ]
