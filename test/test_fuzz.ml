(* Tests for the coverage-guided differential fuzzing engine: coverage
   map, mutators, corpus scheduling, oracle, minimizer and campaigns. *)

module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng
module Coverage = Fuzz.Coverage
module Mutate = Fuzz.Mutate
module Corpus = Fuzz.Corpus
module Oracle = Fuzz.Oracle
module Campaign = Fuzz.Campaign

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------------- coverage map ---------------- *)

let test_coverage_interning () =
  let c = Coverage.create () in
  check_bool "first sighting is new" true (Coverage.note c "a");
  check_bool "second sighting is old" false (Coverage.note c "a");
  check_bool "distinct label is new" true (Coverage.note c "b");
  check_int "two edges" 2 (Coverage.edges c);
  check_bool "labels retained" true (List.mem "a" (Coverage.labels c))

let test_coverage_growth () =
  (* the bitmap grows transparently past its initial capacity *)
  let c = Coverage.create () in
  for i = 0 to 4999 do
    ignore (Coverage.note c (string_of_int i))
  done;
  check_int "5000 edges" 5000 (Coverage.edges c);
  check_bool "re-noting stays old" false (Coverage.note c "4999")

(* ---------------- mutators ---------------- *)

let test_layout_fields () =
  let layout = Mutate.layout_of Programs.basic_router in
  check_bool "ethernet+ipv4 fields present" true (Array.length layout.Mutate.fields >= 10);
  check_bool "dictionary harvested" true (Array.length layout.Mutate.dict > 0);
  (* offsets are within the packet prefix they describe *)
  Array.iter
    (fun f ->
      check_bool "field fits" true
        (f.Mutate.fl_off + f.Mutate.fl_width <= layout.Mutate.total_bits))
    layout.Mutate.fields

let test_mutate_deterministic () =
  let layout = Mutate.layout_of Programs.basic_router in
  let seed = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000001L ()) in
  let a = List.init 50 (fun _ -> Mutate.mutate layout (Prng.create 9) seed) in
  (* same PRNG seed, same children *)
  let b = List.init 50 (fun _ -> Mutate.mutate layout (Prng.create 9) seed) in
  ignore a;
  ignore b;
  let p1 = Prng.create 9 and p2 = Prng.create 9 in
  for _ = 1 to 50 do
    check_bool "replayed mutation identical" true
      (Bitstring.equal (Mutate.mutate layout p1 seed) (Mutate.mutate layout p2 seed))
  done

(* ---------------- corpus ---------------- *)

let test_corpus_energy () =
  let c = Corpus.create () in
  Corpus.add c (Bitstring.of_hex "aa");
  Corpus.add c (Bitstring.of_hex "bb");
  check_int "two inputs" 2 (Corpus.size c);
  let item = Corpus.pick c (Prng.create 3) in
  (* rewards double energy up to the cap, so picks stay total-preserving *)
  for _ = 1 to 10 do
    Corpus.reward c item
  done;
  let prng = Prng.create 4 in
  for _ = 1 to 100 do
    ignore (Corpus.pick c prng)
  done;
  check_int "corpus unchanged by picks" 2 (Corpus.size c)

(* ---------------- campaigns ---------------- *)

let guided = lazy (Campaign.run ~budget:2000 ~seed:1 Programs.basic_router)

let test_campaign_deterministic () =
  let a = Lazy.force guided in
  let b = Campaign.run ~budget:2000 ~seed:1 Programs.basic_router in
  check_string "equal seeds render bit-identically" (Campaign.render a)
    (Campaign.render b)

let test_campaign_finds_reject_unimplemented () =
  (* the acceptance regression: on basic_router under the shipped quirks,
     a small guided campaign must rediscover the reject-unimplemented
     divergence and attribute it by knock-out *)
  let r = Lazy.force guided in
  check_bool "at least one divergence" true (List.length r.Campaign.rp_divergences >= 1);
  check_bool "attributed to reject-unimplemented" true
    (List.exists
       (fun d -> List.mem Quirks.Reject_unimplemented d.Campaign.dv_quirks)
       r.Campaign.rp_divergences)

let test_campaign_faithful_is_clean () =
  let r = Campaign.run ~quirks:Quirks.none ~budget:2000 ~seed:1 Programs.basic_router in
  check_int "no divergences against a faithful device" 0
    (List.length r.Campaign.rp_divergences)

let test_seed_corpus_reaches_guided_coverage () =
  (* the oracle loop: a corpus of symbolic-execution covering vectors
     must reach the guided campaign's edge count with zero random
     discovery. Every shard holds the full corpus as pending seeds, so
     budget = shards * |corpus| replays seeds only — no mutation ever
     runs *)
  let b = Programs.basic_router in
  let rt = P4ir.Runtime.create () in
  (match P4ir.Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let corpus =
    Symexec.Testgen.packets
      (Symexec.Testgen.generate
         ~ingress_port:Netdebug.Harness.generator_port b.Programs.program rt)
  in
  check_bool "corpus is path-covering" true (List.length corpus >= 8);
  let budget = 8 * List.length corpus in
  let seeded = Campaign.run ~seed_corpus:corpus ~budget ~seed:1 b in
  let guided = Lazy.force guided in
  check_bool
    (Printf.sprintf "seeded (%d edges, %d execs) >= guided (%d edges, %d execs)"
       seeded.Campaign.rp_edges seeded.Campaign.rp_executions guided.Campaign.rp_edges
       guided.Campaign.rp_executions)
    true
    (seeded.Campaign.rp_edges >= guided.Campaign.rp_edges);
  (* the hardened drop-path witnesses expose the reject quirk directly *)
  check_bool "seed corpus alone finds a divergence" true
    (List.length seeded.Campaign.rp_divergences >= 1)

let test_guided_beats_blind () =
  let budget = 600 in
  let g = Campaign.run ~budget ~seed:1 Programs.basic_router in
  let b = Campaign.run_blind ~budget ~seed:1 Programs.basic_router in
  check_bool
    (Printf.sprintf "guided (%d edges) > blind (%d edges) at equal budget"
       g.Campaign.rp_edges b.Campaign.rp_edges)
    true
    (g.Campaign.rp_edges > b.Campaign.rp_edges)

let test_campaign_jobs_invariant () =
  (* the tentpole guarantee: jobs only schedules the fixed logical shards
     onto domains, so any jobs value renders byte-identically *)
  let seq = Lazy.force guided in
  let par = Campaign.run ~jobs:4 ~budget:2000 ~seed:1 Programs.basic_router in
  check_string "guided: jobs=4 renders identically to jobs=1" (Campaign.render seq)
    (Campaign.render par);
  let bseq = Campaign.run_blind ~budget:500 ~seed:7 Programs.basic_router in
  let bpar = Campaign.run_blind ~jobs:3 ~budget:500 ~seed:7 Programs.basic_router in
  check_string "blind: jobs=3 renders identically to jobs=1" (Campaign.render bseq)
    (Campaign.render bpar)

let test_campaign_odd_budgets () =
  (* budgets below / not divisible by the shard count still run exactly
     [budget] executions with in-range discovery indices *)
  List.iter
    (fun budget ->
      let r = Campaign.run ~jobs:2 ~budget ~seed:3 Programs.basic_router in
      check_int
        (Printf.sprintf "budget %d spent exactly" budget)
        budget r.Campaign.rp_executions;
      List.iter
        (fun d ->
          check_bool "found_at within budget" true
            (d.Campaign.dv_found_at >= 1 && d.Campaign.dv_found_at <= budget))
        r.Campaign.rp_divergences)
    [ 1; 5; 8; 13; 100 ]

let test_campaign_rejects_zero_budget () =
  Alcotest.check_raises "budget must be positive"
    (Invalid_argument "Fuzz.Campaign.run: budget must be positive") (fun () ->
      ignore (Campaign.run ~budget:0 ~seed:1 Programs.basic_router))

let test_report_golden () =
  let r = Lazy.force guided in
  let ic = open_in "fuzz_report.golden" in
  let n = in_channel_length ic in
  let golden = really_input_string ic n in
  close_in ic;
  check_string "report matches golden" golden (Campaign.render r)

(* ---------------- batched oracle ---------------- *)

let test_exec_batch_singleton_identity () =
  (* exec_batch [| x |] is observably identical to execute x: same
     verdicts, same execution counters, same coverage map *)
  let inputs = Array.of_list (Netdebug.Vectors.fuzz ~seed:5 ~count:40 ()) in
  let one = Oracle.create Programs.basic_router in
  let batched = Oracle.create Programs.basic_router in
  let dev = function
    | Oracle.Dev_forwarded (p, bits) -> Printf.sprintf "fwd:%d:%s" p (Bitstring.to_hex bits)
    | Oracle.Dev_dropped -> "drop"
  in
  let fp = function None -> "-" | Some d -> d.Oracle.d_fingerprint in
  Array.iter
    (fun x ->
      let a = Oracle.execute one x in
      let b = (Oracle.exec_batch batched [| x |]).(0) in
      check_string "same device result" (dev a.Oracle.x_dev) (dev b.Oracle.x_dev);
      check_string "same fingerprint" (fp a.Oracle.x_divergence) (fp b.Oracle.x_divergence))
    inputs;
  check_int "same executions" (Oracle.executions one) (Oracle.executions batched);
  check_int "same coverage edges"
    (Coverage.edges (Oracle.coverage one))
    (Coverage.edges (Oracle.coverage batched));
  Alcotest.(check (list string))
    "same coverage labels"
    (List.sort compare (Coverage.labels (Oracle.coverage one)))
    (List.sort compare (Coverage.labels (Oracle.coverage batched)))

(* ---------------- async engine ---------------- *)

let fingerprints r =
  List.sort compare (List.map (fun d -> d.Campaign.dv_fingerprint) r.Campaign.rp_divergences)

let test_async_pure_replay_identical () =
  (* with a path-covering seed corpus and budget = shards * |corpus|,
     every execution is a seed replay — no mutation, so nothing
     schedule-dependent remains and the async engine must match the
     barrier engine byte-for-byte at any jobs value *)
  let b = Programs.basic_router in
  let rt = P4ir.Runtime.create () in
  (match P4ir.Runtime.install_all b.Programs.program rt b.Programs.entries with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let corpus =
    Symexec.Testgen.packets
      (Symexec.Testgen.generate ~ingress_port:Netdebug.Harness.generator_port
         b.Programs.program rt)
  in
  let budget = 8 * List.length corpus in
  let det = Campaign.run ~seed_corpus:corpus ~budget ~seed:1 b in
  List.iter
    (fun jobs ->
      let a =
        Campaign.run ~jobs ~deterministic:false ~seed_corpus:corpus ~budget ~seed:1 b
      in
      check_string
        (Printf.sprintf "async jobs=%d replays byte-identically" jobs)
        (Campaign.render det) (Campaign.render a);
      check_int "same edges" det.Campaign.rp_edges a.Campaign.rp_edges;
      check_int "same corpus" det.Campaign.rp_corpus a.Campaign.rp_corpus)
    [ 1; 4 ]

(* ---------------- qcheck properties ---------------- *)

(* Minimized reproducers are standalone: replayed on a fresh oracle they
   still diverge, with the same fingerprint the campaign deduped on. *)
let prop_minimized_repros_still_diverge =
  QCheck.Test.make ~count:4 ~name:"minimized repros still diverge"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let r = Campaign.run ~budget:300 ~seed Programs.basic_router in
      List.for_all
        (fun d ->
          let oracle = Oracle.create ~quirks:r.Campaign.rp_quirks Programs.basic_router in
          match (Oracle.execute oracle d.Campaign.dv_repro).Oracle.x_divergence with
          | Some dd -> String.equal dd.Oracle.d_fingerprint d.Campaign.dv_fingerprint
          | None -> false)
        r.Campaign.rp_divergences)

(* The async engine's contract: on a fixed (seed, budget) the minimized
   divergence fingerprint set matches the deterministic engine at every
   jobs value and the budget is spent exactly. Coverage saturates to the
   same core edge set, but its stochastic tail (rare mutation-dependent
   labels) moves by a couple of edges with the merge schedule — both
   engines show the same spread across seeds — so the edge count is
   banded, not exact; the pure-replay test above checks the
   mutation-free configuration bit-exactly. *)
let prop_async_preserves_verdicts =
  QCheck.Test.make ~count:4 ~name:"async preserves verdict set and edge count"
    QCheck.(oneofl [ 1; 2; 5; 7 ])
    (fun seed ->
      let det = Campaign.run ~budget:2000 ~seed Programs.basic_router in
      List.for_all
        (fun jobs ->
          let a =
            Campaign.run ~jobs ~deterministic:false ~budget:2000 ~seed
              Programs.basic_router
          in
          fingerprints a = fingerprints det
          && abs (a.Campaign.rp_edges - det.Campaign.rp_edges) <= 3
          && a.Campaign.rp_executions = 2000)
        [ 1; 4 ])

(* Minimization never grows the input. *)
let prop_repro_no_larger =
  QCheck.Test.make ~count:4 ~name:"minimized repro never larger than the input"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let r = Campaign.run ~budget:300 ~seed Programs.basic_router in
      List.for_all
        (fun d ->
          Bitstring.length d.Campaign.dv_repro <= Bitstring.length d.Campaign.dv_input)
        r.Campaign.rp_divergences)

let () =
  Alcotest.run "fuzz"
    [
      ( "coverage",
        [
          Alcotest.test_case "label interning" `Quick test_coverage_interning;
          Alcotest.test_case "bitmap growth" `Quick test_coverage_growth;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "layout of basic_router" `Quick test_layout_fields;
          Alcotest.test_case "deterministic replay" `Quick test_mutate_deterministic;
        ] );
      ("corpus", [ Alcotest.test_case "energy scheduling" `Quick test_corpus_energy ]);
      ( "campaign",
        [
          Alcotest.test_case "determinism" `Quick test_campaign_deterministic;
          Alcotest.test_case "rediscovers reject-unimplemented" `Quick
            test_campaign_finds_reject_unimplemented;
          Alcotest.test_case "faithful device is clean" `Quick
            test_campaign_faithful_is_clean;
          Alcotest.test_case "guided beats blind" `Quick test_guided_beats_blind;
          Alcotest.test_case "seed corpus reaches guided coverage" `Quick
            test_seed_corpus_reaches_guided_coverage;
          Alcotest.test_case "jobs invariance" `Quick test_campaign_jobs_invariant;
          Alcotest.test_case "odd budgets" `Quick test_campaign_odd_budgets;
          Alcotest.test_case "zero budget rejected" `Quick
            test_campaign_rejects_zero_budget;
          Alcotest.test_case "golden report" `Quick test_report_golden;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exec_batch singleton identity" `Quick
            test_exec_batch_singleton_identity;
        ] );
      ( "async",
        [
          Alcotest.test_case "pure replay identical" `Quick
            test_async_pure_replay_identical;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_async_preserves_verdicts;
          QCheck_alcotest.to_alcotest prop_minimized_repros_still_diverge;
          QCheck_alcotest.to_alcotest prop_repro_no_larger;
        ] );
    ]
