(* Tests for the device model: execution fidelity, timing, queues, taps,
   fault injection, and interpreter/device equivalence without quirks. *)

module Bitstring = Bitutil.Bitstring
module Interp = P4ir.Interp
module Runtime = P4ir.Runtime
module Programs = P4ir.Programs
module P = Packet
module Ipv4 = Packet.Ipv4
module Config = Target.Config
module Device = Target.Device
module Fault = Target.Fault
module Pipeline = Target.Pipeline
module Resource = Target.Resource
module Quirks = Sdnet.Quirks
module Compile = Sdnet.Compile
module Counter = Stats.Counter

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let build ?(quirks = Quirks.none) ?config (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks ?config b.Programs.program in
  let device = Device.create report.Compile.pipeline in
  (match
     Runtime.install_all b.Programs.program (Device.runtime device) b.Programs.entries
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  device

let udp dst = P.serialize (P.udp_ipv4 ~dst ())

(* basic_router with tables shrunk to fit [Config.small_target] *)
let small_router =
  let b = Programs.basic_router in
  {
    b with
    Programs.program =
      {
        b.Programs.program with
        P4ir.Ast.p_tables =
          List.map
            (fun (t : P4ir.Ast.table) -> { t with P4ir.Ast.t_size = 16 })
            b.Programs.program.P4ir.Ast.p_tables;
      };
  }

(* ---------------- functional fidelity ---------------- *)

let test_device_forwards_like_spec () =
  let d = build Programs.basic_router in
  match snd (Device.inject d ~source:(Device.External 0) (udp 0x0A010203L)) with
  | Device.Emitted out ->
      check_int "port" 2 out.Device.o_port;
      let p = P.parse out.Device.o_bits in
      (match P.find_ipv4 p with
      | Some ip -> check_i64 "ttl decremented" 63L ip.Ipv4.ttl
      | None -> Alcotest.fail "no ipv4")
  | _ -> Alcotest.fail "not emitted"

let test_device_drop_dispositions () =
  let d = build Programs.basic_router in
  (match snd (Device.inject d ~source:(Device.External 0) (udp 0x08080808L)) with
  | Device.Dropped_pipeline "ingress" -> ()
  | _ -> Alcotest.fail "miss should drop in ingress");
  match
    snd (Device.inject d ~source:(Device.External 0) (P.serialize (P.arp_request ())))
  with
  | Device.Dropped_pipeline reason ->
      Alcotest.(check string) "parser reject" "parser:Reject" reason
  | _ -> Alcotest.fail "arp should die in parser (no quirks)"

let test_device_external_outputs () =
  let d = build Programs.basic_router in
  ignore (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L));
  ignore (Device.inject d ~source:(Device.External 1) (udp 0x0A010001L));
  let outs = Device.outputs d in
  check_int "two packets out" 2 (List.length outs);
  check_int "drained" 0 (List.length (Device.outputs d))

let test_inject_batch_matches_inject () =
  (* the batched hot path is packet-at-a-time injection minus the
     per-packet quiesce: dispositions must agree index-for-index *)
  let a = build Programs.basic_router in
  let b = build Programs.basic_router in
  let pkts =
    Array.of_list (List.map udp [ 0x0A010203L; 0x0A000001L; 0x08080808L; 0xC0A80001L ])
  in
  let batched = Device.inject_batch a ~source:(Device.External 0) pkts in
  let sequential =
    Array.map (fun p -> snd (Device.inject b ~source:(Device.External 0) p)) pkts
  in
  Device.quiesce b;
  Array.iteri
    (fun i got ->
      let same =
        match (got, sequential.(i)) with
        | Device.Emitted x, Device.Emitted y ->
            x.Device.o_port = y.Device.o_port
            && Bitstring.equal x.Device.o_bits y.Device.o_bits
        | Device.Dropped_pipeline x, Device.Dropped_pipeline y -> x = y
        | Device.Dropped_queue, Device.Dropped_queue -> true
        | _ -> false
      in
      check_bool (Printf.sprintf "packet %d disposition matches" i) true same)
    batched

let test_inject_batch_register_reset () =
  (* rate_limiter: port 0's budget is 3 packets. A plain batch shares the
     register file across the batch; reset_registers isolates every
     vector as if each ran on a fresh device *)
  let routed = udp 0x0A000005L in
  let fate = function
    | Device.Emitted _ -> `Fwd
    | Device.Dropped_pipeline _ -> `Drop
    | _ -> `Other
  in
  let plain =
    Device.inject_batch (build Programs.rate_limiter) ~source:(Device.External 0)
      (Array.make 6 routed)
  in
  Alcotest.(check (list (of_pp Fmt.nop)))
    "budget persists across the batch"
    [ `Fwd; `Fwd; `Fwd; `Drop; `Drop; `Drop ]
    (Array.to_list (Array.map fate plain));
  let isolated =
    Device.inject_batch (build Programs.rate_limiter) ~source:(Device.External 0)
      ~reset_registers:true (Array.make 6 routed)
  in
  Alcotest.(check (list (of_pp Fmt.nop)))
    "reset_registers isolates every vector"
    [ `Fwd; `Fwd; `Fwd; `Fwd; `Fwd; `Fwd ]
    (Array.to_list (Array.map fate isolated))

(* interpreter/device equivalence with a faithful compiler *)
let equivalence_property bundle =
  QCheck.Test.make ~count:150
    ~name:("device == interpreter without quirks: " ^ bundle.Programs.program.P4ir.Ast.p_name)
    QCheck.(triple (int_bound 0xFFFFFFF) (int_range 0 255) bool)
    (fun (dst_low, ttl, flip_version) ->
      let pkt =
        P.udp_ipv4
          ~dst:(Int64.of_int dst_low)
          ~ttl:(Int64.of_int ttl) ()
      in
      let pkt =
        if flip_version then
          P.map_ipv4 (fun ip -> Ipv4.with_checksum { ip with Ipv4.version = 5L }) pkt
        else pkt
      in
      let bits = P.serialize pkt in
      let rt = Runtime.create () in
      (match Runtime.install_all bundle.Programs.program rt bundle.Programs.entries with
      | Ok () -> ()
      | Error e -> failwith e);
      let spec = Interp.process bundle.Programs.program rt ~ingress_port:0 bits in
      let d = build bundle in
      match
        (spec.Interp.result, snd (Device.inject d ~source:(Device.External 0) bits))
      with
      | Interp.Forwarded (sp, sb), Device.Emitted out ->
          sp = out.Device.o_port && Bitstring.equal sb out.Device.o_bits
      | Interp.Dropped _, (Device.Dropped_pipeline _ | Device.Dropped_queue) -> true
      | Interp.Forwarded _, _ | Interp.Dropped _, _ -> false)

let prop_equiv_router = equivalence_property Programs.basic_router
let prop_equiv_split = equivalence_property Programs.router_split
let prop_equiv_guard = equivalence_property Programs.parser_guard
let prop_equiv_acl = equivalence_property Programs.acl_firewall

(* ipv6 traffic needs its own generator *)
let prop_equiv_ipv6 =
  QCheck.Test.make ~count:100 ~name:"device == interpreter without quirks: ipv6_router"
    QCheck.(triple int64 (int_range 0 255) bool)
    (fun (dst_hi, hop, flip_version) ->
      let ip =
        Packet.Ipv6.make ~hop_limit:(Int64.of_int hop) ~dst:(dst_hi, 99L) ~payload_len:4 ()
      in
      let ip = if flip_version then { ip with Packet.Ipv6.version = 7L } else ip in
      let bits =
        P.serialize
          (P.make [ P.Eth (Packet.Eth.make ~ethertype:0x86DDL ()); P.Ipv6 ip ]
             ~payload:(P.payload_of_string "abcd") ())
      in
      let b = Programs.ipv6_router in
      let rt = Runtime.create () in
      (match Runtime.install_all b.Programs.program rt b.Programs.entries with
      | Ok () -> ()
      | Error e -> failwith e);
      let spec = Interp.process b.Programs.program rt ~ingress_port:0 bits in
      let d = build b in
      match (spec.Interp.result, snd (Device.inject d ~source:(Device.External 0) bits)) with
      | Interp.Forwarded (sp, sb), Device.Emitted out ->
          sp = out.Device.o_port && Bitstring.equal sb out.Device.o_bits
      | Interp.Dropped _, (Device.Dropped_pipeline _ | Device.Dropped_queue) -> true
      | Interp.Forwarded _, _ | Interp.Dropped _, _ -> false)

(* ---------------- timing and queueing ---------------- *)

let test_latency_matches_cost_model () =
  let d = build Programs.basic_router in
  let bits = udp 0x0A000001L in
  match snd (Device.inject d ~source:(Device.External 0) ~at_ns:1000.0 bits) with
  | Device.Emitted out ->
      let cfg = Device.config d in
      let cycles = Pipeline.total_latency_cycles (Device.pipeline d) in
      let ser =
        let bytes = (Bitstring.length bits + 7) / 8 in
        (bytes + cfg.Config.bus_bytes_per_cycle - 1) / cfg.Config.bus_bytes_per_cycle
      in
      let expected = 1000.0 +. (float_of_int (cycles + ser) *. Config.cycle_ns cfg) in
      Alcotest.(check (float 0.001)) "zero-load latency" expected out.Device.o_out_time_ns
  | _ -> Alcotest.fail "not emitted"

let test_backpressure_latency_growth () =
  let d = build Programs.basic_router in
  let bits = udp 0x0A000001L in
  (* all packets arrive at t=0: each waits behind its predecessors *)
  let latencies =
    List.init 20 (fun _ ->
        match snd (Device.inject d ~source:(Device.External 0) ~at_ns:0.0 bits) with
        | Device.Emitted out -> out.Device.o_out_time_ns -. out.Device.o_in_time_ns
        | _ -> Alcotest.fail "not emitted")
  in
  let increasing =
    List.for_all2 (fun a b -> b > a)
      (List.filteri (fun i _ -> i < 19) latencies)
      (List.tl latencies)
  in
  check_bool "queueing delay grows" true increasing

let test_queue_overflow_drops () =
  let d = build ~config:Config.small_target small_router in
  let bits = udp 0x0A000001L in
  let drops = ref 0 in
  for _ = 1 to 200 do
    match snd (Device.inject d ~source:(Device.External 0) ~at_ns:0.0 bits) with
    | Device.Dropped_queue -> incr drops
    | _ -> ()
  done;
  check_bool "tail drops under flood" true (!drops > 0);
  check_bool "queue drop counter" true
    (Counter.Set.get (Device.counters d) "drop/queue" > 0L)

let test_queue_drains_over_time () =
  let d = build ~config:Config.small_target small_router in
  let bits = udp 0x0A000001L in
  for _ = 1 to 100 do
    ignore (Device.inject d ~source:(Device.External 0) ~at_ns:0.0 bits)
  done;
  let dropped_before = Counter.Set.get (Device.counters d) "drop/queue" in
  (* far in the future the queue is empty again *)
  Device.advance_to_ns d 1e9;
  (match snd (Device.inject d ~source:(Device.External 0) bits) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "should be admitted after drain");
  check_i64 "no new queue drops" dropped_before
    (Counter.Set.get (Device.counters d) "drop/queue")

(* ---------------- visibility: check tap vs external view ---------------- *)

let test_check_tap_sees_nonphysical_port () =
  (* parser_guard punts ARP to port 63, which does not exist on a 4-port
     device: externally invisible, internally visible *)
  let d = build Programs.parser_guard in
  let tapped = ref [] in
  Device.set_check_tap d (fun out -> tapped := out :: !tapped);
  ignore (Device.inject d ~source:(Device.External 0) (P.serialize (P.arp_request ())));
  check_int "tap saw it" 1 (List.length !tapped);
  check_int "tap port is 63" 63 (List.hd !tapped).Device.o_port;
  check_int "externally invisible" 0 (List.length (Device.outputs d))

let test_broken_port_visibility () =
  let d = build Programs.basic_router in
  let tapped = ref 0 in
  Device.set_check_tap d (fun _ -> incr tapped);
  Device.set_port_broken d 1 true;
  ignore (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L));
  check_int "check point still sees it" 1 !tapped;
  check_int "external view empty" 0 (List.length (Device.outputs d));
  Device.set_port_broken d 1 false;
  ignore (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L));
  check_int "healthy again" 1 (List.length (Device.outputs d))

let test_tx_queue_overflow_after_check_point () =
  (* blast the full datapath rate at a single 12.8G output port: every
     packet passes the check point, but the TX buffer overflows and only a
     fraction reaches the wire *)
  let d = build Programs.basic_router in
  let tapped = ref 0 in
  Device.set_check_tap d (fun _ -> incr tapped);
  let bits = P.serialize (P.udp_ipv4 ~dst:0x0A000001L ~payload_bytes:1400 ()) in
  (* all at t=0: pipeline rate is 4x the port rate *)
  let n = 400 in
  for _ = 1 to n do
    ignore (Device.inject d ~source:(Device.External 0) ~at_ns:0.0 bits)
  done;
  let external_outs = Device.outputs d in
  check_int "check point saw everything" n !tapped;
  check_bool "wire saw fewer" true (List.length external_outs < n);
  check_bool "txq drops counted" true
    (Counter.Set.get (Device.counters d) "drop/txq1" > 0L);
  (* wire timestamps are spaced at the port serialization time *)
  let times = List.map (fun o -> o.Device.o_wire_time_ns) external_outs in
  let sorted = List.sort compare times in
  let min_gap =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (min acc (b -. a)) rest
      | _ -> acc
    in
    go infinity sorted
  in
  let bytes = (Bitstring.length bits + 7) / 8 in
  let expected_gap = float_of_int bytes /. (Config.port_rate_gbps (Device.config d) /. 8.0) in
  Alcotest.(check (float 1.0)) "port-rate spacing" expected_gap min_gap

let test_wire_time_includes_tx_serialization () =
  let d = build Programs.basic_router in
  let bits = udp 0x0A000001L in
  match snd (Device.inject d ~source:(Device.External 0) bits) with
  | Device.Emitted _ -> (
      match Device.outputs d with
      | [ out ] ->
          let bytes = (Bitstring.length bits + 7) / 8 in
          let ser = float_of_int bytes /. (Config.port_rate_gbps (Device.config d) /. 8.0) in
          Alcotest.(check (float 0.001))
            "wire = pipeline exit + tx serialization"
            (out.Device.o_out_time_ns +. ser)
            out.Device.o_wire_time_ns
      | _ -> Alcotest.fail "one output expected")
  | _ -> Alcotest.fail "not emitted"

let test_generator_source_bypasses_interfaces () =
  let d = build Programs.basic_router in
  (match snd (Device.inject d ~source:Device.Generator (udp 0x0A000001L)) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "generator packet should flow");
  check_i64 "generator rx counted" 1L
    (Counter.Set.get (Device.counters d) "rx/generator");
  check_i64 "no external rx" 0L (Counter.Set.get (Device.counters d) "rx/external")

(* ---------------- stage counters and trace ---------------- *)

let test_stage_counters () =
  let d = build Programs.basic_router in
  ignore (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L));
  ignore (Device.inject d ~source:(Device.External 0) (udp 0x08080808L));
  let c = Device.counters d in
  check_i64 "parser saw both" 2L (Counter.Set.get c "stage/parser/seen");
  check_i64 "lpm applied twice" 2L (Counter.Set.get c "stage/ma:ipv4_lpm/seen");
  check_i64 "one hit" 1L (Counter.Set.get c "stage/ma:ipv4_lpm/hit");
  check_i64 "one miss" 1L (Counter.Set.get c "stage/ma:ipv4_lpm/miss");
  check_i64 "only hit reached deparser" 1L (Counter.Set.get c "stage/deparser/seen")

let test_per_packet_trace () =
  let d = build Programs.basic_router in
  let id, _ = Device.inject d ~source:(Device.External 0) (udp 0x0A000001L) in
  let events = Trace.events_for_packet (Device.trace d) id in
  let components = List.map (fun e -> e.Trace.component) events in
  check_bool "rx traced" true (List.mem "rx" components);
  check_bool "parser traced" true (List.mem "parser" components);
  check_bool "lpm traced" true (List.mem "ma:ipv4_lpm" components)

(* ---------------- fault injection ---------------- *)

let test_fault_drop_at_stage () =
  let d = build Programs.basic_router in
  Device.inject_fault d ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
  (match snd (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L)) with
  | Device.Lost_in_stage s -> Alcotest.(check string) "stage" "ma:ipv4_lpm" s
  | _ -> Alcotest.fail "fault should swallow packet");
  Device.clear_faults d;
  match snd (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L)) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "healthy after clear"

let test_fault_corrupt_field () =
  let d = build Programs.basic_router in
  Device.inject_fault d ~stage:"deparser" (Fault.Corrupt_field ("ipv4", "ttl", 0xFFL));
  match snd (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L)) with
  | Device.Emitted out -> (
      match P.find_ipv4 (P.parse out.Device.o_bits) with
      | Some ip -> check_i64 "ttl corrupted (63 xor 0xff)" 0xC0L ip.Ipv4.ttl
      | None -> Alcotest.fail "no ipv4")
  | _ -> Alcotest.fail "not emitted"

let test_fault_stuck_miss () =
  let d = build Programs.basic_router in
  Device.inject_fault d ~stage:"ma:ipv4_lpm" Fault.Stuck_miss;
  match snd (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L)) with
  | Device.Dropped_pipeline "ingress" -> ()
  | _ -> Alcotest.fail "stuck-miss table should fall to default drop"

let test_fault_intermittent_drop () =
  let d = build Programs.basic_router in
  Device.inject_fault d ~stage:"ma:ipv4_lpm" (Fault.Intermittent_drop 3);
  let outcomes =
    List.init 9 (fun _ ->
        match snd (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L)) with
        | Device.Emitted _ -> `Fwd
        | Device.Lost_in_stage _ -> `Lost
        | _ -> `Other)
  in
  Alcotest.(check (list (of_pp Fmt.nop)))
    "every 3rd packet lost"
    [ `Fwd; `Fwd; `Lost; `Fwd; `Fwd; `Lost; `Fwd; `Fwd; `Lost ]
    outcomes;
  Device.clear_faults d;
  match snd (Device.inject d ~source:(Device.External 0) (udp 0x0A000001L)) with
  | Device.Emitted _ -> ()
  | _ -> Alcotest.fail "healthy after clearing the fault"

let test_fault_unknown_stage_rejected () =
  let d = build Programs.basic_router in
  try
    Device.inject_fault d ~stage:"ma:nope" Fault.Drop_at_stage;
    Alcotest.fail "accepted unknown stage"
  with Invalid_argument _ -> ()

(* ---------------- status ---------------- *)

let test_status_snapshot () =
  let d = build Programs.basic_router in
  for i = 0 to 9 do
    ignore
      (Device.inject d ~source:(Device.External (i mod 4))
         (udp (if i mod 2 = 0 then 0x0A000001L else 0x08080808L)))
  done;
  let st = Device.status d in
  check_i64 "in" 10L st.Device.st_packets_in;
  check_i64 "out" 5L st.Device.st_packets_out;
  check_i64 "pipeline drops" 5L st.Device.st_pipeline_drops;
  check_bool "stage counters exposed" true (st.Device.st_stage_seen <> [])

(* ---------------- resources ---------------- *)

let test_resource_accounting () =
  let r1 = Resource.make ~luts:10 ~brams:2 () in
  let r2 = Resource.make ~luts:5 ~tcam_bits:100 () in
  let s = Resource.add r1 r2 in
  check_int "luts" 15 s.Resource.luts;
  check_int "brams" 2 s.Resource.brams;
  check_int "tcam" 100 s.Resource.tcam_bits;
  check_bool "fits sume" true (Resource.fits s Config.netfpga_sume)

let test_line_rate_model () =
  let c = Config.netfpga_sume in
  Alcotest.(check (float 0.01)) "51.2 Gb/s aggregate" 51.2 (Config.line_rate_gbps c);
  Alcotest.(check (float 0.01)) "5 ns cycle" 5.0 (Config.cycle_ns c)

let () =
  Alcotest.run "target"
    [
      ( "fidelity",
        [
          Alcotest.test_case "forwards like spec" `Quick test_device_forwards_like_spec;
          Alcotest.test_case "drop dispositions" `Quick test_device_drop_dispositions;
          Alcotest.test_case "external outputs" `Quick test_device_external_outputs;
          Alcotest.test_case "inject_batch matches inject" `Quick
            test_inject_batch_matches_inject;
          Alcotest.test_case "inject_batch register reset" `Quick
            test_inject_batch_register_reset;
          QCheck_alcotest.to_alcotest prop_equiv_router;
          QCheck_alcotest.to_alcotest prop_equiv_split;
          QCheck_alcotest.to_alcotest prop_equiv_guard;
          QCheck_alcotest.to_alcotest prop_equiv_acl;
          QCheck_alcotest.to_alcotest prop_equiv_ipv6;
        ] );
      ( "timing",
        [
          Alcotest.test_case "latency cost model" `Quick test_latency_matches_cost_model;
          Alcotest.test_case "backpressure growth" `Quick test_backpressure_latency_growth;
          Alcotest.test_case "queue overflow" `Quick test_queue_overflow_drops;
          Alcotest.test_case "queue drains" `Quick test_queue_drains_over_time;
        ] );
      ( "visibility",
        [
          Alcotest.test_case "tap sees non-physical port" `Quick
            test_check_tap_sees_nonphysical_port;
          Alcotest.test_case "broken port" `Quick test_broken_port_visibility;
          Alcotest.test_case "generator bypasses interfaces" `Quick
            test_generator_source_bypasses_interfaces;
          Alcotest.test_case "tx overflow after check point" `Quick
            test_tx_queue_overflow_after_check_point;
          Alcotest.test_case "wire time includes tx" `Quick
            test_wire_time_includes_tx_serialization;
        ] );
      ( "taps",
        [
          Alcotest.test_case "stage counters" `Quick test_stage_counters;
          Alcotest.test_case "per-packet trace" `Quick test_per_packet_trace;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop at stage" `Quick test_fault_drop_at_stage;
          Alcotest.test_case "corrupt field" `Quick test_fault_corrupt_field;
          Alcotest.test_case "stuck miss" `Quick test_fault_stuck_miss;
          Alcotest.test_case "intermittent drop" `Quick test_fault_intermittent_drop;
          Alcotest.test_case "unknown stage rejected" `Quick test_fault_unknown_stage_rejected;
        ] );
      ("status", [ Alcotest.test_case "snapshot" `Quick test_status_snapshot ]);
      ( "resources",
        [
          Alcotest.test_case "accounting" `Quick test_resource_accounting;
          Alcotest.test_case "line rate model" `Quick test_line_rate_model;
        ] );
    ]
