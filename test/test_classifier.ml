(* Differential property tests for the classifier: it must be
   observationally identical to the legacy [Entry.select] scan — same
   winner, same misses, same raise behaviour on pathological LPM entries —
   over arbitrary entry sets and keys, under both settings of the
   degrade-ternary quirk; and incremental insert/remove must agree with a
   classifier rebuilt from scratch over the surviving entries. *)

module Value = P4ir.Value
module Entry = P4ir.Entry
module Classifier = P4ir.Classifier
module Runtime = P4ir.Runtime

(* ---------------- scenario generator ---------------- *)

type scenario = {
  kws : int array;
  entries : Entry.t array;  (* initial install, ids = indices *)
  extra : Entry.t array;  (* fed in by incremental-op inserts *)
  probes : Value.t list list;
  ops : int list;  (* even = insert next extra, odd = remove a live entry *)
  degrade : bool;
}

let gen_scenario =
  let open QCheck.Gen in
  let* nk = int_range 1 3 in
  let* kws =
    (* Mostly native-int widths; the occasional 64 exercises the permanent
       wide-key fallback. *)
    array_repeat nk
      (frequency [ (10, int_range 1 32); (3, int_range 33 62); (1, return 64) ])
  in
  let gen_value w = map (fun v -> Value.make ~width:w v) ui64 in
  (* Value width usually matches the declared key width; mismatches create
     entries the declared keys can never match (dead-tracked) and probes
     that flip the structure to its legacy replica. *)
  let gen_width kw = frequency [ (8, return kw); (1, int_range 1 64) ] in
  let gen_mkey kw =
    let* vw = gen_width kw in
    let* v = gen_value vw in
    frequency
      [
        (3, return (Entry.exact v));
        ( 3,
          (* len can exceed the key width: a poison entry whose evaluation
             raises in [Value.matches_prefix], which the classifier must
             replicate. *)
          let* len = frequency [ (6, int_range 0 vw); (1, int_range 0 70) ] in
          return (Entry.lpm v len) );
        ( 3,
          let* m = gen_value vw in
          return (Entry.ternary v m) );
      ]
  in
  let gen_entry =
    let* arity =
      frequency [ (12, return nk); (1, int_range 0 (nk + 1)) ]
    in
    let* keys =
      flatten_l
        (List.init arity (fun i -> gen_mkey (if i < nk then kws.(i) else 8)))
    in
    let* prio = int_bound 3 in
    return (Entry.make ~priority:prio ~keys ~action:"a" ())
  in
  let gen_probe =
    let* arity = frequency [ (20, return nk); (1, int_range 0 (nk + 1)) ] in
    flatten_l
      (List.init arity (fun i ->
           let kw = if i < nk then kws.(i) else 8 in
           let* vw = frequency [ (12, return kw); (1, int_range 1 64) ] in
           gen_value vw))
  in
  let* n_entries = int_bound 30 in
  let* entries = array_repeat n_entries gen_entry in
  let* n_extra = int_bound 15 in
  let* extra = array_repeat n_extra gen_entry in
  let* probes = list_size (int_range 1 25) gen_probe in
  let* ops = list_size (int_bound 40) (int_bound 10_000) in
  let* degrade = bool in
  return { kws; entries; extra; probes; ops; degrade }

let print_scenario sc =
  let b = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer b in
  Format.fprintf fmt "kws=[%s] degrade=%b@\n"
    (String.concat ";" (Array.to_list (Array.map string_of_int sc.kws)))
    sc.degrade;
  Array.iteri (fun i e -> Format.fprintf fmt "  e%d: %a@\n" i Entry.pp e) sc.entries;
  Array.iteri
    (fun i e -> Format.fprintf fmt "  x%d: %a@\n" i Entry.pp e)
    sc.extra;
  List.iteri
    (fun i p ->
      Format.fprintf fmt "  probe%d: [%a]@\n" i
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
           Value.pp)
        p)
    sc.probes;
  Format.fprintf fmt "  ops=[%s]@."
    (String.concat ";" (List.map string_of_int sc.ops));
  Buffer.contents b

let arb_scenario = QCheck.make ~print:print_scenario gen_scenario

(* Capture normal results and the raise behaviour of pathological LPM
   entries uniformly, so equivalence includes "raises exactly when the
   scan raises". *)
type 'a outcome = V of 'a | Raised

let outcome f = match f () with v -> V v | exception Invalid_argument _ -> Raised

let select_outcome ~degrade entries probe =
  outcome (fun () -> Entry.select ~degrade_ternary_to_exact:degrade entries probe)

(* The winner must be the same physical entry: [Entry.select] returns the
   element of the list, the classifier an id indexing the same array. *)
let agree resolve want got =
  match (want, got) with
  | V None, V id -> id = -1
  | V (Some e), V id -> id >= 0 && resolve id == e
  | Raised, Raised -> true
  | V _, Raised | Raised, V _ -> false

let prop_differential =
  QCheck.Test.make ~count:400 ~name:"classifier = Entry.select (outcome parity)"
    arb_scenario (fun sc ->
      let c =
        Classifier.create ~kws:sc.kws ~degrade:sc.degrade ~resolve:(fun id ->
            sc.entries.(id))
      in
      Array.iteri (fun id e -> Classifier.insert c id e) sc.entries;
      let entries = Array.to_list sc.entries in
      List.for_all
        (fun probe ->
          agree
            (fun id -> sc.entries.(id))
            (select_outcome ~degrade:sc.degrade entries probe)
            (outcome (fun () -> Classifier.find_values c probe)))
        sc.probes)

(* Incremental maintenance: after an arbitrary interleaving of inserts and
   removes, the patched-in-place classifier must answer like (a) the scan
   over the surviving entries and (b) a classifier rebuilt from scratch
   over the same survivors with the same ids. *)
let prop_incremental =
  QCheck.Test.make ~count:300 ~name:"incremental insert/remove = rebuild"
    arb_scenario (fun sc ->
      let store = Hashtbl.create 64 in
      let resolve id = Hashtbl.find store id in
      let c = Classifier.create ~kws:sc.kws ~degrade:sc.degrade ~resolve in
      let live = ref [] in  (* (id, entry), descending id *)
      let next = ref 0 in
      let insert e =
        let id = !next in
        incr next;
        Hashtbl.replace store id e;
        Classifier.insert c id e;
        live := (id, e) :: !live
      in
      Array.iter insert sc.entries;
      let n_extra = ref 0 in
      List.iter
        (fun code ->
          if (code land 1 = 0 || !live = []) && !n_extra < Array.length sc.extra
          then begin
            insert sc.extra.(!n_extra);
            incr n_extra
          end
          else if !live <> [] then begin
            let id, e = List.nth !live (code lsr 1 mod List.length !live) in
            Classifier.remove c id e;
            Hashtbl.remove store id;
            live := List.filter (fun (i, _) -> i <> id) !live
          end)
        sc.ops;
      (* Survivors in install order = ascending id. *)
      let surv = List.rev !live in
      let c2 = Classifier.create ~kws:sc.kws ~degrade:sc.degrade ~resolve in
      List.iter (fun (id, e) -> Classifier.insert c2 id e) surv;
      let entries = List.map snd surv in
      Classifier.size c = Classifier.size c2
      && List.for_all
           (fun probe ->
             let want = select_outcome ~degrade:sc.degrade entries probe in
             let got = outcome (fun () -> Classifier.find_values c probe) in
             let got2 = outcome (fun () -> Classifier.find_values c2 probe) in
             agree resolve want got && got = got2)
           sc.probes)

(* ---------------- deterministic unit tests ---------------- *)

let v32 x = Value.make ~width:32 (Int64.of_int x)

let test_wide_keys () =
  (* Widths beyond native int: permanent legacy-replica fallback, still
     answer-correct. *)
  let entries =
    [|
      Entry.make
        ~keys:[ Entry.lpm (Value.make ~width:64 0xdead_0000_0000_0000L) 16 ]
        ~action:"a" ();
      Entry.make
        ~keys:[ Entry.exact (Value.make ~width:64 0xdead_beef_0000_0001L) ]
        ~action:"a" ();
    |]
  in
  let c =
    Classifier.create ~kws:[| 64 |] ~degrade:false ~resolve:(fun id ->
        entries.(id))
  in
  Array.iteri (fun id e -> Classifier.insert c id e) entries;
  Alcotest.(check bool) "wide keys fall back" true (Classifier.is_fallback c);
  let probe = [ Value.make ~width:64 0xdead_beef_0000_0001L ] in
  Alcotest.(check int) "exact beats shorter prefix" 1
    (Classifier.find_values c probe);
  Alcotest.(check int) "prefix-only hit" 0
    (Classifier.find_values c [ Value.make ~width:64 0xdead_0000_1234_5678L ])

let test_width_mismatch_flip () =
  (* A probe whose width differs from the declared kws flips the structure
     to the replica — a rebuild event, never a wrong answer. *)
  let entries = [| Entry.make ~keys:[ Entry.lpm (v32 0x0a000000) 8 ] ~action:"a" () |] in
  let c =
    Classifier.create ~kws:[| 32 |] ~degrade:false ~resolve:(fun id ->
        entries.(id))
  in
  Classifier.insert c 0 entries.(0);
  Alcotest.(check bool) "fast path initially" false (Classifier.is_fallback c);
  Alcotest.(check int) "fast-path hit" 0 (Classifier.find_values c [ v32 0x0a01_0203 ]);
  let narrow = [ Value.make ~width:16 10L ] in
  Alcotest.(check int) "mismatched probe misses like the scan"
    (match Entry.select (Array.to_list entries) narrow with
    | Some _ -> 0
    | None -> -1)
    (Classifier.find_values c narrow);
  Alcotest.(check bool) "flipped to fallback" true (Classifier.is_fallback c);
  Alcotest.(check bool) "flip counted as rebuild" true (Classifier.rebuilds c >= 1);
  Alcotest.(check int) "still answer-correct after flip" 0
    (Classifier.find_values c [ v32 0x0a01_0203 ])

let test_runtime_churn () =
  (* Runtime-level integration over the synthetic route table: lookups
     against the live classifier must track a plain mirror list under
     interleaved adds and removes, with zero structural rebuilds. *)
  let rt = Runtime.create () in
  let n0 = 2_000 and extra = 500 in
  let pool = Routes.prefixes ~seed:21 ~n:(n0 + extra) in
  let mirror = ref [] in  (* (pool index, entry), descending install *)
  let install i =
    let addr, len = pool.(i) in
    let e = Routes.entry ~addr ~len in
    Runtime.add_exn Routes.program rt ~table:Routes.table_name e;
    mirror := (i, e) :: !mirror
  in
  for i = 0 to n0 - 1 do
    install i
  done;
  let g = Bitutil.Prng.create 77 in
  let check_addr addr =
    let key = Routes.key_of_addr addr in
    let got =
      Runtime.lookup rt ~table:Routes.table_name ~degrade_ternary_to_exact:false
        key
    in
    let want = Entry.select (List.rev_map snd !mirror) key in
    (* rev_map reverses: mirror is descending install, select wants
       ascending. *)
    Alcotest.(check bool) "lookup matches mirror scan" true (got = want)
  in
  let probe_round () =
    for _ = 1 to 20 do
      let addr =
        if Bitutil.Prng.int g 10 < 8 && !mirror <> [] then
          let i, _ = List.nth !mirror (Bitutil.Prng.int g (List.length !mirror)) in
          let addr, len = pool.(i) in
          addr lor (Int64.to_int (Bitutil.Prng.bits g ~width:32)
                    land lnot (Routes.mask_int len) land 0xffffffff)
        else Int64.to_int (Bitutil.Prng.bits g ~width:32)
      in
      check_addr addr
    done
  in
  probe_round ();
  (* Churn: remove a random live route, install a fresh one. *)
  for t = 0 to extra - 1 do
    let victim = Bitutil.Prng.int g (List.length !mirror) in
    let vi, ve = List.nth !mirror victim in
    (match Runtime.remove Routes.program rt ~table:Routes.table_name ve with
    | Ok () -> ()
    | Error m -> Alcotest.failf "remove: %s" m);
    mirror := List.filter (fun (i, _) -> i <> vi) !mirror;
    install (n0 + t);
    if t mod 100 = 0 then probe_round ()
  done;
  probe_round ();
  Alcotest.(check int) "entry count tracks mirror" (List.length !mirror)
    (Runtime.entry_count rt Routes.table_name);
  Alcotest.(check int) "no structural rebuilds under churn" 0
    (Runtime.classifier_rebuilds rt);
  (* Removing an uninstalled entry reports an error, not a crash. *)
  (match
     Runtime.remove Routes.program rt ~table:Routes.table_name
       (Routes.entry ~addr:0x7f000000 ~len:32)
   with
  | Ok () -> Alcotest.fail "remove of absent entry succeeded"
  | Error _ -> ())

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_differential; prop_incremental ]

let () =
  Alcotest.run "classifier"
    [
      ("properties", qsuite);
      ( "units",
        [
          Alcotest.test_case "wide keys" `Quick test_wide_keys;
          Alcotest.test_case "width-mismatch flip" `Quick test_width_mismatch_flip;
          Alcotest.test_case "runtime churn" `Quick test_runtime_churn;
        ] );
    ]
