(* Unit and property tests for the bit-level substrate. *)

module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng
module Checksum = Bitutil.Checksum
module Crc32 = Bitutil.Crc32

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_i64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different streams" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_int_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_prng_bits_width () =
  let p = Prng.create 3 in
  for w = 1 to 64 do
    let v = Prng.bits p ~width:w in
    if w < 64 then
      check_bool "within width" true
        (Int64.unsigned_compare v (Int64.shift_left 1L w) < 0)
  done

let test_prng_split_independent () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  check_bool "split differs" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_float_range () =
  let p = Prng.create 11 in
  for _ = 1 to 1000 do
    let f = Prng.float p 3.5 in
    if f < 0.0 || f >= 3.5 then Alcotest.failf "float out of range: %f" f
  done

(* ---------------- Bitstring ---------------- *)

let test_of_int64_roundtrip () =
  let b = Bitstring.of_int64 ~width:16 0x0800L in
  check_i64 "extract back" 0x0800L (Bitstring.extract b ~off:0 ~width:16);
  check_int "length" 16 (Bitstring.length b)

let test_of_hex () =
  let b = Bitstring.of_hex "dead beef" in
  check_int "32 bits" 32 (Bitstring.length b);
  check_str "hex out" "deadbeef" (Bitstring.to_hex b)

let test_of_hex_rejects () =
  Alcotest.check_raises "odd digits" (Invalid_argument "Bitstring.of_hex: odd digit count")
    (fun () -> ignore (Bitstring.of_hex "abc"));
  (try
     ignore (Bitstring.of_hex "zz");
     Alcotest.fail "accepted non-hex"
   with Invalid_argument _ -> ())

let test_append_extract () =
  let a = Bitstring.of_int64 ~width:4 0xAL in
  let b = Bitstring.of_int64 ~width:12 0xBCDL in
  let c = Bitstring.append a b in
  check_int "length" 16 (Bitstring.length c);
  check_i64 "combined" 0xABCDL (Bitstring.extract c ~off:0 ~width:16);
  check_i64 "tail" 0xBCDL (Bitstring.extract c ~off:4 ~width:12)

let test_sub () =
  let b = Bitstring.of_hex "0123456789" in
  let s = Bitstring.sub b ~off:8 ~len:16 in
  check_i64 "middle bytes" 0x2345L (Bitstring.extract s ~off:0 ~width:16)

let test_sub_unaligned () =
  let b = Bitstring.of_int64 ~width:16 0b1010_1100_1111_0001L in
  let s = Bitstring.sub b ~off:3 ~len:5 in
  check_i64 "unaligned slice" 0b01100L (Bitstring.extract s ~off:0 ~width:5)

let test_set_int64 () =
  let b = Bitstring.of_int64 ~width:24 0L in
  let b = Bitstring.set_int64 b ~off:8 ~width:8 0xFFL in
  check_i64 "patched" 0x00FF00L (Bitstring.extract b ~off:0 ~width:24)

let test_get_bit () =
  let b = Bitstring.of_int64 ~width:8 0b1000_0001L in
  check_bool "bit 0" true (Bitstring.get_bit b 0);
  check_bool "bit 1" false (Bitstring.get_bit b 1);
  check_bool "bit 7" true (Bitstring.get_bit b 7)

let test_bounds_checking () =
  let b = Bitstring.of_int64 ~width:8 0xFFL in
  (try
     ignore (Bitstring.extract b ~off:4 ~width:8);
     Alcotest.fail "no range error"
   with Invalid_argument _ -> ());
  try
    ignore (Bitstring.sub b ~off:0 ~len:9);
    Alcotest.fail "no range error"
  with Invalid_argument _ -> ()

let test_writer_reader_roundtrip () =
  let w = Bitstring.Writer.create () in
  Bitstring.Writer.push_int64 w ~width:4 0x5L;
  Bitstring.Writer.push_int64 w ~width:12 0x678L;
  Bitstring.Writer.push_int64 w ~width:48 0x112233445566L;
  let bits = Bitstring.Writer.contents w in
  check_int "total width" 64 (Bitstring.length bits);
  let r = Bitstring.Reader.create bits in
  check_i64 "f1" 0x5L (Bitstring.Reader.read r 4);
  check_i64 "f2" 0x678L (Bitstring.Reader.read r 12);
  check_i64 "f3" 0x112233445566L (Bitstring.Reader.read r 48);
  check_int "exhausted" 0 (Bitstring.Reader.remaining r)

let test_reader_underrun () =
  let r = Bitstring.Reader.create (Bitstring.of_int64 ~width:8 1L) in
  try
    ignore (Bitstring.Reader.read r 16);
    Alcotest.fail "no underrun error"
  with Invalid_argument _ -> ()

let test_writer_growth () =
  let w = Bitstring.Writer.create () in
  for i = 1 to 1000 do
    Bitstring.Writer.push_int64 w ~width:16 (Int64.of_int i)
  done;
  let bits = Bitstring.Writer.contents w in
  check_int "16000 bits" 16000 (Bitstring.length bits);
  check_i64 "last element" 1000L (Bitstring.extract bits ~off:(999 * 16) ~width:16)

let test_concat_list () =
  let parts = List.init 8 (fun i -> Bitstring.of_int64 ~width:8 (Int64.of_int i)) in
  let all = Bitstring.concat parts in
  check_int "64 bits" 64 (Bitstring.length all);
  check_i64 "byte 3" 3L (Bitstring.extract all ~off:24 ~width:8)

(* property tests *)

let gen_width = QCheck.Gen.int_range 1 64

let prop_of_int64_extract =
  QCheck.Test.make ~count:500 ~name:"of_int64/extract roundtrip"
    QCheck.(pair (make gen_width) int64)
    (fun (w, v) ->
      let masked =
        if w = 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)
      in
      let b = Bitstring.of_int64 ~width:w v in
      Bitstring.extract b ~off:0 ~width:w = masked)

let prop_append_length =
  QCheck.Test.make ~count:300 ~name:"append preserves content"
    QCheck.(pair (pair (make gen_width) int64) (pair (make gen_width) int64))
    (fun ((w1, v1), (w2, v2)) ->
      let a = Bitstring.of_int64 ~width:w1 v1 and b = Bitstring.of_int64 ~width:w2 v2 in
      let c = Bitstring.append a b in
      Bitstring.length c = w1 + w2
      && Bitstring.equal (Bitstring.sub c ~off:0 ~len:w1) a
      && Bitstring.equal (Bitstring.sub c ~off:w1 ~len:w2) b)

let prop_sub_concat_identity =
  QCheck.Test.make ~count:300 ~name:"split/concat identity"
    QCheck.(pair small_nat (int_bound 2000))
    (fun (seed, n) ->
      let n = max 1 n in
      let prng = Prng.create seed in
      let b = Bitstring.random prng n in
      let cut = n / 2 in
      let recombined =
        Bitstring.append (Bitstring.sub b ~off:0 ~len:cut)
          (Bitstring.sub b ~off:cut ~len:(n - cut))
      in
      Bitstring.equal b recombined)

let prop_set_get =
  QCheck.Test.make ~count:300 ~name:"set_int64/extract agree"
    QCheck.(triple small_nat (make gen_width) int64)
    (fun (seed, w, v) ->
      let prng = Prng.create seed in
      let b = Bitstring.random prng 128 in
      let off = Prng.int prng (128 - w + 1) in
      let b' = Bitstring.set_int64 b ~off ~width:w v in
      let masked =
        if w = 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)
      in
      Bitstring.extract b' ~off ~width:w = masked && Bitstring.length b' = 128)

(* ---------------- Checksum ---------------- *)

(* RFC 1071 worked example *)
let test_checksum_rfc_example () =
  let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check_int "rfc1071 sum" 0xddf2 (Checksum.ones_complement_sum data)

let test_checksum_verifies_itself () =
  let data = "\x45\x00\x00\x1c\x00\x00\x40\x00\x40\x11\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02" in
  let sum = Checksum.checksum data in
  let patched =
    String.mapi
      (fun i c ->
        if i = 10 then Char.chr (sum lsr 8) else if i = 11 then Char.chr (sum land 0xff) else c)
      data
  in
  check_bool "self-verifies" true (Checksum.valid patched)

let test_checksum_odd_length () =
  (* padding with a zero byte must match manual computation *)
  check_int "odd data" (Checksum.checksum "\x01\x02\x03") (Checksum.checksum "\x01\x02\x03\x00")

let prop_checksum_detects_single_flip =
  QCheck.Test.make ~count:200 ~name:"checksum catches any single-byte change"
    QCheck.(pair small_nat (int_bound 255))
    (fun (seed, delta) ->
      QCheck.assume (delta > 0);
      let prng = Prng.create seed in
      let n = 20 in
      let data =
        String.init n (fun _ -> Char.chr (Prng.int prng 256))
      in
      let sum = Checksum.checksum data in
      let with_sum = data ^ String.init 2 (fun i -> Char.chr (if i = 0 then sum lsr 8 else sum land 0xff)) in
      let pos = Prng.int prng n in
      let corrupted =
        String.mapi
          (fun i c -> if i = pos then Char.chr ((Char.code c + delta) land 0xff) else c)
          with_sum
      in
      (* one's-complement checksums catch all single-byte modifications
         except 0x00 <-> 0xff aliasing *)
      let before = with_sum.[pos] and after = corrupted.[pos] in
      let aliased =
        (before = '\x00' && after = '\xff') || (before = '\xff' && after = '\x00')
      in
      aliased || not (Checksum.valid corrupted))

(* ---------------- Crc32 ---------------- *)

let test_crc32_vector () =
  (* the canonical check value for "123456789" *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Crc32.digest "123456789")

let test_crc32_empty () = Alcotest.(check int32) "empty" 0l (Crc32.digest "")

let test_crc32_sensitivity () =
  check_bool "one bit matters" false (Crc32.digest "hello" = Crc32.digest "hellp")

(* ---------------- Hexdump ---------------- *)

let test_hexdump_shape () =
  let s = Bitutil.Hexdump.to_string "ABCDEFGHIJKLMNOPQR" in
  check_bool "has offset" true (String.length s > 0 && String.sub s 0 4 = "0000");
  check_bool "ascii gutter" true (String.contains s '|')

(* ---------------- Builder / blit_int64 ---------------- *)

let mask_to_width w v =
  if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

let test_blit_int64_basic () =
  let bytes = Bytes.make 4 '\x00' in
  Bitstring.blit_int64 bytes ~off:4 ~width:12 0xABCL;
  Alcotest.(check string) "unaligned blit" "\x0a\xbc\x00\x00" (Bytes.to_string bytes);
  Bitstring.blit_int64 bytes ~off:24 ~width:8 0xFFL;
  Alcotest.(check string) "aligned blit" "\x0a\xbc\x00\xff" (Bytes.to_string bytes)

let prop_blit_int64_matches_set_int64 =
  QCheck.Test.make ~count:300 ~name:"blit_int64 == set_int64 on byte buffers"
    QCheck.(triple small_nat (int_range 1 64) small_nat)
    (fun (seed, width, nextra) ->
      let prng = Prng.create seed in
      let nbytes = ((width + 7) / 8) + 1 + (nextra mod 8) in
      let s = String.init nbytes (fun _ -> Char.chr (Prng.int prng 256)) in
      let off = Prng.int prng ((nbytes * 8) - width + 1) in
      let v = Prng.next_int64 prng in
      let expect = Bitstring.set_int64 (Bitstring.of_string s) ~off ~width v in
      let bytes = Bytes.of_string s in
      Bitstring.blit_int64 bytes ~off ~width (mask_to_width width v);
      Bitstring.equal expect (Bitstring.of_string (Bytes.to_string bytes)))

(* A builder fed a random op sequence must agree with the immutable
   of_int64/sub/concat composition of the same pieces — including when the
   builder is reset and reused, which is how the staged deparser drives it. *)
let prop_builder_matches_reference =
  QCheck.Test.make ~count:200 ~name:"Builder == set_int64/concat composition"
    QCheck.(pair small_nat small_nat)
    (fun (seed, seed') ->
      let bld = Bitstring.Builder.create ~capacity_bits:8 () in
      let round seed =
        let prng = Prng.create seed in
        Bitstring.Builder.reset bld;
        let pieces = ref [] in
        let nops = 1 + Prng.int prng 12 in
        for _ = 1 to nops do
          match Prng.int prng 3 with
          | 0 ->
              let w = 1 + Prng.int prng 64 in
              let v = mask_to_width w (Prng.next_int64 prng) in
              Bitstring.Builder.add_int64 bld ~width:w v;
              pieces := Bitstring.of_int64 ~width:w v :: !pieces
          | 1 ->
              let bs = Bitstring.random prng (Prng.int prng 100) in
              Bitstring.Builder.add_bits bld bs;
              pieces := bs :: !pieces
          | _ ->
              let len = Prng.int prng 80 in
              let bs = Bitstring.random prng (len + Prng.int prng 40) in
              let off = Prng.int prng (Bitstring.length bs - len + 1) in
              Bitstring.Builder.add_sub bld bs ~off ~len;
              pieces := Bitstring.sub bs ~off ~len :: !pieces
        done;
        let expect = Bitstring.concat (List.rev !pieces) in
        Bitstring.Builder.length bld = Bitstring.length expect
        && Bitstring.equal (Bitstring.Builder.contents bld) expect
      in
      round seed && round (seed + seed' + 1))

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_of_int64_extract; prop_append_length; prop_sub_concat_identity; prop_set_get;
    prop_checksum_detects_single_flip; prop_blit_int64_matches_set_int64;
    prop_builder_matches_reference ]

let () =
  Alcotest.run "bitutil"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "bits width" `Quick test_prng_bits_width;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
        ] );
      ( "bitstring",
        [
          Alcotest.test_case "of_int64 roundtrip" `Quick test_of_int64_roundtrip;
          Alcotest.test_case "of_hex" `Quick test_of_hex;
          Alcotest.test_case "of_hex rejects" `Quick test_of_hex_rejects;
          Alcotest.test_case "append/extract" `Quick test_append_extract;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "sub unaligned" `Quick test_sub_unaligned;
          Alcotest.test_case "set_int64" `Quick test_set_int64;
          Alcotest.test_case "get_bit" `Quick test_get_bit;
          Alcotest.test_case "bounds checking" `Quick test_bounds_checking;
          Alcotest.test_case "writer/reader roundtrip" `Quick test_writer_reader_roundtrip;
          Alcotest.test_case "reader underrun" `Quick test_reader_underrun;
          Alcotest.test_case "writer growth" `Quick test_writer_growth;
          Alcotest.test_case "concat list" `Quick test_concat_list;
          Alcotest.test_case "blit_int64" `Quick test_blit_int64_basic;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 example" `Quick test_checksum_rfc_example;
          Alcotest.test_case "self-verifies" `Quick test_checksum_verifies_itself;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "check vector" `Quick test_crc32_vector;
          Alcotest.test_case "empty" `Quick test_crc32_empty;
          Alcotest.test_case "sensitivity" `Quick test_crc32_sensitivity;
        ] );
      ("hexdump", [ Alcotest.test_case "shape" `Quick test_hexdump_shape ]);
      ("properties", qsuite);
    ]
