(* Tests for the parallel execution engine: pool mechanics (chunked maps,
   exception propagation, close semantics), per-worker shards, merge
   helpers, and the end-to-end guarantee that matters — a parallel
   functional sweep reports exactly what the sequential one does. *)

module Pool = Par.Pool
module Shard = Par.Shard
module Merge = Par.Merge
module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Functional = Netdebug.Usecases.Functional
module Harness = Netdebug.Harness
module Device = Target.Device
module Counter = Stats.Counter

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- pool ---------------- *)

let test_map_chunks_matches_sequential () =
  let xs = Array.init 101 (fun i -> i * 3) in
  let expect = Array.map (fun x -> (x * x) + 1) xs in
  List.iter
    (fun jobs ->
      let got =
        Pool.with_pool ~jobs (fun pool ->
            Pool.map_chunks pool ~chunk:7 (fun ~worker:_ _ x -> (x * x) + 1) xs)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expect got)
    [ 1; 2; 4 ]

let test_map_chunks_empty () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let got = Pool.map_chunks pool (fun ~worker:_ _ x -> x) [||] in
      check_int "empty in, empty out" 0 (Array.length got))

let test_map_chunks_indices () =
  (* every index is visited exactly once, and f sees its own index *)
  let n = 64 in
  let xs = Array.init n (fun i -> i) in
  Pool.with_pool ~jobs:3 (fun pool ->
      let got = Pool.map_chunks pool ~chunk:5 (fun ~worker:_ i x -> (i, x)) xs in
      Array.iteri
        (fun i (j, x) ->
          check_int "index passed through" i j;
          check_int "item matches index" i x)
        got)

let test_run_covers_all_workers () =
  let jobs = 4 in
  let lock = Mutex.create () in
  let seen = ref [] in
  Pool.with_pool ~jobs (fun pool ->
      Pool.run pool (fun w ->
          Mutex.lock lock;
          seen := w :: !seen;
          Mutex.unlock lock));
  Alcotest.(check (list int))
    "each worker index ran once" [ 0; 1; 2; 3 ]
    (List.sort compare !seen)

let test_exceptions_propagate () =
  List.iter
    (fun jobs ->
      let raised =
        try
          Pool.with_pool ~jobs (fun pool ->
              ignore
                (Pool.map_chunks pool
                   (fun ~worker:_ i x ->
                     if i = 13 then failwith "boom13" else x)
                   (Array.init 40 (fun i -> i))));
          false
        with Failure m -> m = "boom13"
      in
      check_bool (Printf.sprintf "failure surfaces at jobs=%d" jobs) true raised)
    [ 1; 4 ];
  (* the pool survives a failed generation and still closes cleanly;
     after close, run refuses *)
  let pool = Pool.create ~jobs:2 in
  (try Pool.run pool (fun _ -> failwith "x") with Failure _ -> ());
  Pool.run pool ignore;
  Pool.close pool;
  Alcotest.check_raises "closed pool refuses work"
    (Invalid_argument "Par.Pool.run: pool is closed") (fun () ->
      Pool.run pool ignore)

(* ---------------- shard ---------------- *)

let test_shard_init_once_per_worker () =
  let inits = Atomic.make 0 in
  Pool.with_pool ~jobs:3 (fun pool ->
      let shard =
        Shard.create pool (fun w ->
            Atomic.incr inits;
            w * 10)
      in
      let xs = Array.init 200 (fun i -> i) in
      ignore
        (Pool.map_chunks pool ~chunk:4
           (fun ~worker i _ ->
             check_int "slot belongs to its worker" (worker * 10)
               (Shard.get shard ~worker);
             i)
           xs);
      check_int "one init per initialized slot" (Shard.initialized shard)
        (Atomic.get inits);
      check_bool "at least the caller's slot" true (Shard.initialized shard >= 1);
      (* iteration is ascending worker order *)
      let order = Shard.fold shard ~init:[] ~f:(fun acc w _ -> w :: acc) in
      Alcotest.(check (list int))
        "ascending worker order"
        (List.sort compare order)
        (List.rev order))

(* ---------------- merge ---------------- *)

let test_merge_helpers () =
  check_int "reduce" 10 (Merge.reduce ( + ) 0 [| 1; 2; 3; 4 |]);
  Alcotest.(check (list int))
    "concat in slot order" [ 1; 2; 3; 4; 5 ]
    (Merge.concat [| [ 1; 2 ]; []; [ 3 ]; [ 4; 5 ] |]);
  Alcotest.(check (list (pair string int)))
    "dedup keeps first occurrence"
    [ ("a", 1); ("b", 2); ("c", 5) ]
    (Merge.dedup_by ~key:fst [ ("a", 1); ("b", 2); ("a", 3); ("b", 4); ("c", 5) ])

(* ---------------- parallel functional sweep ---------------- *)

let mismatch_facts (r : Functional.report) =
  ( r.Functional.fr_tested,
    List.map
      (fun (m : Functional.mismatch) ->
        ( m.Functional.mm_index,
          Bitutil.Bitstring.to_hex m.Functional.mm_packet,
          m.Functional.mm_expected,
          m.Functional.mm_got ))
      r.Functional.fr_mismatches )

let test_functional_parallel_identity () =
  (* parser_guard under the default (buggy) toolchain has real mismatches:
     the identity must hold for reports with content, not just clean ones *)
  let sweep jobs =
    let h = Harness.deploy ~span_sampling:0 Programs.parser_guard in
    Functional.run ~fuzz:48 ~jobs h
  in
  let seq = sweep 1 and par = sweep 4 in
  let t_seq, m_seq = mismatch_facts seq and t_par, m_par = mismatch_facts par in
  check_int "same vector count" t_seq t_par;
  check_bool "the sweep finds real mismatches" true (m_seq <> []);
  Alcotest.(check (list (triple int string (pair string string))))
    "same mismatches in the same order"
    (List.map (fun (i, p, e, g) -> (i, p, (e, g))) m_seq)
    (List.map (fun (i, p, e, g) -> (i, p, (e, g))) m_par);
  (* jobs >= 2 is scheduling-invariant by construction *)
  let par2 = sweep 2 in
  Alcotest.(check bool)
    "jobs=2 and jobs=4 agree" true
    (mismatch_facts par2 = mismatch_facts par)

let test_functional_parallel_telemetry_merged () =
  let h = Harness.deploy ~span_sampling:0 Programs.basic_router in
  let r = Functional.run ~fuzz:16 ~jobs:4 h in
  (* after the join, the caller's device accounts for every worker's
     generator traffic: one generated packet per vector *)
  Alcotest.(check int64)
    "merged generator counter covers the whole sweep"
    (Int64.of_int r.Functional.fr_tested)
    (Counter.Set.get (Device.counters h.Harness.device) "rx/generator")

let test_replicate_is_equivalent_and_independent () =
  let h = Harness.deploy Programs.basic_router in
  let r = Harness.replicate h in
  check_bool "distinct devices" true (h.Harness.device != r.Harness.device);
  let probe = Packet.serialize (Packet.udp_ipv4 ~dst:0x0A010203L ()) in
  let disp d = snd (Device.inject d ~source:(Device.External 0) probe) in
  let same =
    match (disp h.Harness.device, disp r.Harness.device) with
    | Device.Emitted a, Device.Emitted b ->
        a.Device.o_port = b.Device.o_port
        && Bitutil.Bitstring.equal a.Device.o_bits b.Device.o_bits
    | Device.Dropped_pipeline a, Device.Dropped_pipeline b -> a = b
    | _ -> false
  in
  check_bool "replica forwards identically" true same;
  (* entry clone is deep: clearing the replica's tables leaves the
     original untouched *)
  P4ir.Runtime.clear (Device.runtime r.Harness.device);
  check_bool "original keeps its entries" true
    (List.exists
       (fun t -> P4ir.Runtime.entry_count (Device.runtime h.Harness.device) t > 0)
       (P4ir.Runtime.tables (Device.runtime h.Harness.device)))

(* ---------------- epoch channel ---------------- *)

module Epoch = Par.Epoch

let test_epoch_publish_drain () =
  let t = Epoch.create () in
  let c = Epoch.cursor () in
  Alcotest.(check (list int)) "fresh channel drains empty" [] (Epoch.drain t c);
  Epoch.publish t [ 1; 2; 3 ];
  Epoch.publish t [];
  Epoch.publish t [ 4 ];
  Alcotest.(check (list int)) "publication order, in-batch order kept" [ 1; 2; 3; 4 ]
    (Epoch.drain t c);
  Alcotest.(check (list int)) "drained cursor sees nothing new" [] (Epoch.drain t c);
  Epoch.publish t [ 5 ];
  Alcotest.(check (list int)) "only the batch since the last drain" [ 5 ]
    (Epoch.drain t c);
  check_int "count is the total ever published" 5 (Epoch.count t);
  Alcotest.(check (list int)) "all replays the whole log" [ 1; 2; 3; 4; 5 ] (Epoch.all t)

let test_epoch_cursor_isolation () =
  let t = Epoch.create () in
  let a = Epoch.cursor () and b = Epoch.cursor () in
  Epoch.publish t [ 10; 11 ];
  Alcotest.(check (list int)) "a sees the first batch" [ 10; 11 ] (Epoch.drain t a);
  Epoch.publish t [ 12 ];
  Alcotest.(check (list int)) "b independently sees everything" [ 10; 11; 12 ]
    (Epoch.drain t b);
  Alcotest.(check (list int)) "a sees only the tail" [ 12 ] (Epoch.drain t a)

let test_epoch_concurrent_publish () =
  (* the async campaign's contract: concurrent single-item publishes from
     several domains lose nothing, duplicate nothing, and keep each
     producer's own order inside the interleaving *)
  let t = Epoch.create () in
  let n_dom = 4 and per = 500 in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Epoch.publish t [ (d * per) + i ]
            done))
  in
  List.iter Domain.join doms;
  check_int "every publish landed" (n_dom * per) (Epoch.count t);
  let drained = Epoch.all t in
  check_int "no losses" (n_dom * per) (List.length drained);
  check_int "no duplicates" (n_dom * per) (List.length (List.sort_uniq compare drained));
  List.iter
    (fun d ->
      Alcotest.(check (list int))
        (Printf.sprintf "producer %d order preserved" d)
        (List.init per (fun i -> (d * per) + i))
        (List.filter (fun x -> x / per = d) drained))
    (List.init n_dom Fun.id)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map_chunks matches sequential" `Quick
            test_map_chunks_matches_sequential;
          Alcotest.test_case "empty input" `Quick test_map_chunks_empty;
          Alcotest.test_case "indices visited once" `Quick test_map_chunks_indices;
          Alcotest.test_case "run covers all workers" `Quick test_run_covers_all_workers;
          Alcotest.test_case "exceptions propagate" `Quick test_exceptions_propagate;
        ] );
      ("shard", [ Alcotest.test_case "init once per worker" `Quick test_shard_init_once_per_worker ]);
      ( "epoch",
        [
          Alcotest.test_case "publish/drain order" `Quick test_epoch_publish_drain;
          Alcotest.test_case "cursor isolation" `Quick test_epoch_cursor_isolation;
          Alcotest.test_case "concurrent publish" `Quick test_epoch_concurrent_publish;
        ] );
      ("merge", [ Alcotest.test_case "helpers" `Quick test_merge_helpers ]);
      ( "functional",
        [
          Alcotest.test_case "parallel identity" `Quick test_functional_parallel_identity;
          Alcotest.test_case "telemetry merged" `Quick
            test_functional_parallel_telemetry_merged;
          Alcotest.test_case "replicate equivalent+independent" `Quick
            test_replicate_is_equivalent_and_independent;
        ] );
    ]
