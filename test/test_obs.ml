(* Tests for the observability plane: JSON round-trips, snapshot
   streamer windows, golden health documents, the partition property
   (windowed deltas sum to whole-run totals), the soak loop's artifacts
   and fault gate, the jobs=4 merge regression, and the HTTP endpoint. *)

module Counter = Stats.Counter
module Histogram = Stats.Histogram
module Registry = Telemetry.Registry
module Json = Obs.Json
module Sampler = Obs.Sampler
module Health = Obs.Health
module Soak = Obs.Soak
module Monitor = Obs.Monitor
module Harness = Netdebug.Harness
module Usecases = Netdebug.Usecases
module Programs = P4ir.Programs
module Device = Target.Device
module Fault = Target.Fault
module P = Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---------------- JSON ---------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "line\nbreak \\ \"quote\"");
        ("n", Json.Num 3.5);
        ("big", Json.Num 1234567890123.);
        ("neg", Json.Num (-2.));
        ("a", Json.Arr [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("o", Json.Obj [ ("k", Json.Num 0.) ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check_bool "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  (match Json.of_string "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage should be rejected"
  | Error _ -> ());
  match Json.of_string "{\"a\":" with
  | Ok _ -> Alcotest.fail "truncated input should be rejected"
  | Error _ -> ()

(* ---------------- sampler ---------------- *)

let test_sampler_windows () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"packets" "pkts" in
  let depth = ref 3. in
  Registry.gauge r ~help:"depth" "depth" (fun () -> !depth);
  let h = Registry.histogram r ~help:"latency" "lat" in
  let s = Sampler.create ~interval_ns:1000. r ~start_ns:0. in
  check_bool "no sample before boundary" true (Sampler.tick s ~now_ns:500. = None);
  Counter.add c 7L;
  Histogram.add h 10.;
  Histogram.add h 20.;
  let w1 = Sampler.sample s ~now_ns:1000. in
  Counter.add c 5L;
  depth := 9.;
  Histogram.add h 1000.;
  let w2 = Sampler.sample s ~now_ns:2000. in
  check_int "w1 seq" 0 w1.Sampler.w_seq;
  check_int "w2 seq" 1 w2.Sampler.w_seq;
  Alcotest.(check int64) "w1 delta" 7L (Sampler.counter_delta w1 "pkts");
  Alcotest.(check int64) "w2 delta" 5L (Sampler.counter_delta w2 "pkts");
  Alcotest.(check int64) "absent counter is zero" 0L (Sampler.counter_delta w1 "nope");
  check_bool "w1 gauge" true (Sampler.gauge_value w1 "depth" = Some 3.);
  check_bool "w2 gauge" true (Sampler.gauge_value w2 "depth" = Some 9.);
  (match Sampler.hist_window w2 "lat" with
  | None -> Alcotest.fail "w2 should carry the lat window"
  | Some wh ->
      (* only the third sample lands in window 2 *)
      check_int "windowed dataset" 1 (Histogram.count wh);
      check_bool "windowed p99 sees only window samples" true
        (Histogram.percentile wh 99. > 100.));
  (* every emitted line is valid JSON *)
  String.split_on_char '\n' (String.trim (Sampler.jsonl s))
  |> List.iter (fun line ->
         match Json.of_string line with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "bad jsonl line %S: %s" line e)

(* ---------------- health: golden JSON ---------------- *)

let test_health_golden_json () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"verdict drift" "drift" in
  let s = Sampler.create ~interval_ns:100_000. r ~start_ns:0. in
  let hl = Health.create [ Health.still ~label:"no-drift" "drift" ] in
  ignore (Health.observe hl (Sampler.sample s ~now_ns:100_000.));
  check_bool "quiet window healthy" true (Health.healthy hl);
  Counter.add c 2L;
  ignore (Health.observe hl (Sampler.sample s ~now_ns:200_000.));
  let golden =
    "{\"verdict\":\"unhealthy\",\"windows\":2,"
    ^ "\"rules\":[{\"rule\":\"no-drift\",\"firings\":1,\"last_observed\":2}],"
    ^ "\"firings\":[{\"rule\":\"no-drift\",\"window\":1,\"t1_ns\":200000,"
    ^ "\"observed\":2,\"limit\":0,\"detail\":\"drift moved by 2 in window 1\"}],"
    ^ "\"firings_total\":1}"
  in
  check_string "health json golden" golden (Health.to_json hl);
  (* and the golden document re-reads through our own parser *)
  match Json.of_string golden with
  | Error e -> Alcotest.failf "golden should parse: %s" e
  | Ok j ->
      check_bool "verdict field" true
        (Json.member "verdict" j |> Option.map Json.to_str
        = Some (Some "unhealthy"))

let test_health_rules () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"drops" "drops" in
  let depth = ref 0. in
  Registry.gauge r ~help:"depth" "depth" (fun () -> !depth);
  let h = Registry.histogram r ~help:"lat" "lat" in
  let s = Sampler.create ~interval_ns:1000. r ~start_ns:0. in
  let hl =
    Health.create
      [
        Health.rate_below ~label:"drop-rate" "drops" 0.;
        Health.gauge_below ~label:"depth" "depth" 10.;
        Health.p99_below ~label:"lat-p99" "lat" 100.;
      ]
  in
  let now = ref 0. in
  let window () =
    now := !now +. 1000.;
    Health.observe hl (Sampler.sample s ~now_ns:!now)
  in
  check_int "quiet window" 0 (List.length (window ()));
  Counter.incr c;
  depth := 11.;
  Histogram.add h 5000.;
  let fired = window () in
  check_int "all three rules fire" 3 (List.length fired);
  depth := 0.;
  check_int "one more quiet window recovers nothing new" 0 (List.length (window ()));
  check_bool "verdict sticks" false (Health.healthy hl);
  check_int "windows counted" 3 (Health.windows_seen hl)

let test_health_ewma_band () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"tx" "tx" in
  let s = Sampler.create ~interval_ns:1000. r ~start_ns:0. in
  let hl = Health.create [ Health.ewma_band ~warmup:3 ~label:"tx-anomaly" "tx" 0.5 ] in
  let now = ref 0. in
  let window add =
    Counter.add c (Int64.of_int add);
    now := !now +. 1000.;
    Health.observe hl (Sampler.sample s ~now_ns:!now)
  in
  (* steady state through warmup and beyond: no firings *)
  for _ = 1 to 6 do
    check_int "steady windows quiet" 0 (List.length (window 100))
  done;
  (* a 10x burst deviates far beyond the 50% band *)
  check_int "burst fires" 1 (List.length (window 1000));
  (* the anomalous window did not poison the baseline: steady rate is fine *)
  check_int "baseline survives the burst" 0 (List.length (window 100))

(* ---------------- partition property ---------------- *)

(* When windows partition the run, summed per-window counter deltas and
   histogram window datasets must equal the whole-run totals — i.e. the
   time-weighted windowed rate is exactly the whole-run rate. *)
let prop_windows_partition =
  QCheck.Test.make ~name:"windowed deltas partition whole-run totals" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 10)
        (pair
           (list_of_size (Gen.int_range 0 12) (int_range 0 50))
           (list_of_size (Gen.int_range 0 8) (int_range 1 10_000))))
    (fun steps ->
      let r = Registry.create () in
      let c = Registry.counter r ~help:"c" "c" in
      let h = Registry.histogram r ~help:"h" "h" in
      let s = Sampler.create ~interval_ns:1000. r ~start_ns:0. in
      let now = ref 0. in
      let sum_deltas = ref 0L and sum_hist = ref 0 in
      List.iter
        (fun (incs, samples) ->
          List.iter (fun i -> Counter.add c (Int64.of_int i)) incs;
          List.iter (fun v -> Histogram.add h (float_of_int v)) samples;
          now := !now +. 1000.;
          let w = Sampler.sample s ~now_ns:!now in
          sum_deltas := Int64.add !sum_deltas (Sampler.counter_delta w "c");
          match Sampler.hist_window w "h" with
          | Some wh -> sum_hist := !sum_hist + Histogram.count wh
          | None -> ())
        steps;
      let elapsed_s = !now /. 1e9 in
      let whole_rate = Int64.to_float (Counter.get c) /. elapsed_s in
      let windowed_rate = Int64.to_float !sum_deltas /. elapsed_s in
      !sum_deltas = Counter.get c
      && !sum_hist = Histogram.count h
      && Float.abs (whole_rate -. windowed_rate) <= 1e-9 *. Float.max 1. whole_rate)

(* ---------------- soak ---------------- *)

let test_soak_artifacts_roundtrip () =
  let h = Harness.deploy Programs.basic_router in
  let cfg = { Soak.default_cfg with Soak.sk_budget = 2_000 } in
  let r = Soak.run ~cfg h in
  check_bool "healthy" true r.Soak.so_healthy;
  check_bool "exit gate passes" true (Soak.exit_ok r);
  check_int "all packets offered" 2_000 r.Soak.so_packets;
  check_int "zero drift" 0 r.Soak.so_drift;
  check_bool "sustains the configured floor" true (Soak.rate_ok r);
  (* the JSONL stream parses line by line, and its counter deltas
     partition the run: they must sum back to the whole-run totals *)
  let bg = ref 0L and validated = ref 0L in
  String.split_on_char '\n' (String.trim r.Soak.so_jsonl)
  |> List.iter (fun line ->
         match Json.of_string line with
         | Error e -> Alcotest.failf "bad jsonl: %s" e
         | Ok j -> (
             match Json.member "counters" j with
             | None -> Alcotest.fail "jsonl line without counters"
             | Some cs ->
                 let add acc name =
                   match Json.member name cs with
                   | Some v -> (
                       match Json.to_float v with
                       | Some f -> acc := Int64.add !acc (Int64.of_float f)
                       | None -> Alcotest.fail "counter delta not a number")
                   | None -> ()
                 in
                 add bg "soak/background";
                 add validated "soak/validated"));
  Alcotest.(check int64) "jsonl background deltas sum to budget" 2_000L !bg;
  Alcotest.(check int64)
    "jsonl validated deltas sum to the vector count"
    (Int64.of_int r.Soak.so_validated)
    !validated;
  (* the health document round-trips through our parser *)
  (match Json.of_string r.Soak.so_health_json with
  | Error e -> Alcotest.failf "health json should parse: %s" e
  | Ok j ->
      check_bool "verdict healthy" true
        (Json.member "verdict" j |> Option.map Json.to_str = Some (Some "healthy")));
  (* and the Prometheus exposition carries the soak counters *)
  check_bool "prometheus has the background counter" true
    (contains r.Soak.so_prometheus "netdebug_soak_background 2000\n");
  check_bool "prometheus has the drift counter" true
    (contains r.Soak.so_prometheus "netdebug_soak_verdict_drift 0\n")

(* Everything virtual-time-side is deterministic from the seed; only the
   gc/* gauges depend on real process state, so strip gauges before
   comparing the streams. *)
let strip_gauges jsonl =
  String.split_on_char '\n' (String.trim jsonl)
  |> List.map (fun line ->
         match Json.of_string line with
         | Error e -> Alcotest.failf "bad jsonl: %s" e
         | Ok (Json.Obj fields) ->
             Json.to_string (Json.Obj (List.remove_assoc "gauges" fields))
         | Ok _ -> Alcotest.fail "jsonl line is not an object")
  |> String.concat "\n"

let test_soak_deterministic () =
  let once () =
    let h = Harness.deploy Programs.basic_router in
    Soak.run ~cfg:{ Soak.default_cfg with Soak.sk_budget = 1_000 } h
  in
  let a = once () and b = once () in
  check_string "jsonl streams identical up to gc gauges"
    (strip_gauges a.Soak.so_jsonl) (strip_gauges b.Soak.so_jsonl);
  check_string "health documents identical" a.Soak.so_health_json b.Soak.so_health_json;
  check_bool "virtual time identical" true (a.Soak.so_virtual_s = b.Soak.so_virtual_s)

let test_soak_fault_gate () =
  let h = Harness.deploy Programs.basic_router in
  Device.inject_fault h.Harness.device ~stage:"ma:ipv4_lpm" Fault.Drop_at_stage;
  let r = Soak.run ~cfg:{ Soak.default_cfg with Soak.sk_budget = 1_000 } h in
  check_bool "unhealthy" false r.Soak.so_healthy;
  check_bool "exit gate fails" false (Soak.exit_ok r);
  check_bool "validation catches the drift" true (r.Soak.so_drift > 0);
  check_bool "fault-drops rule names the evidence" true
    (List.exists (fun f -> f.Health.fg_rule = "fault-drops") r.Soak.so_firings);
  check_bool "drift rule fires too" true
    (List.exists (fun f -> f.Health.fg_rule = "verdict-drift") r.Soak.so_firings)

(* ---------------- jobs=4 merge regression ---------------- *)

(* Health rules read the device registry; a parallel sweep folds worker
   registries back through [Registry.merge], which must leave every
   health-rule input exactly as a sequential run would. *)
let health_inputs h =
  let interesting =
    [ "tx/emitted"; "drop/queue"; "drop/pipeline"; "drop/fault"; "assert/failed" ]
  in
  Registry.snapshot (Device.metrics h.Harness.device)
  |> List.filter_map (fun (name, _help, value) ->
         match value with
         | Registry.Counter v when List.mem name interesting ->
             Some (name, Int64.to_float v)
         | Registry.Histogram hh when name = "pipeline/latency_ns" ->
             Some (name, float_of_int (Histogram.count hh))
         | _ -> None)

let test_merge_preserves_health_inputs () =
  let sweep jobs =
    let h = Harness.deploy ~quirks:Sdnet.Quirks.none Programs.basic_router in
    let r = Usecases.Functional.run ~fuzz:16 ~jobs h in
    check_bool "sweep passed" true (Usecases.Functional.passed r);
    health_inputs h
  in
  let seq = sweep 1 and par = sweep 4 in
  check_int "same metric set" (List.length seq) (List.length par);
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      check_string "metric name" n1 n2;
      Alcotest.(check (float 0.0)) ("jobs=4 preserves " ^ n1) v1 v2)
    seq par

(* ---------------- monitor ---------------- *)

let test_monitor_health () =
  let h = Harness.deploy Programs.basic_router in
  let background = P.serialize (P.udp_ipv4 ~dst:0x0A000001L ()) in
  let res = Monitor.run ~samples:3 ~period_packets:20 h ~background in
  check_int "snapshots" 3 (List.length res.Monitor.mo_snapshots);
  check_int "consecutive pairs become windows" 2
    (Health.windows_seen res.Monitor.mo_health);
  check_bool "healthy under light load" true (Monitor.healthy res);
  check_bool "render mentions the verdict" true (contains (Monitor.render res) "healthy")

(* ---------------- HTTP endpoint ---------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  fd

let read_reply fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  (try
     let rec loop () =
       let n = Unix.read fd chunk 0 1024 in
       if n > 0 then begin
         Buffer.add_subbytes b chunk 0 n;
         loop ()
       end
     in
     loop ()
   with Unix.Unix_error _ -> ());
  Unix.close fd;
  Buffer.contents b

let test_http_roundtrip () =
  let calls = ref 0 in
  let srv =
    Obs.Http.create
      [
        ( "/metrics",
          Obs.Http.route ~content_type:"text/plain" (fun () ->
              incr calls;
              Printf.sprintf "probe %d\n" !calls) );
      ]
  in
  let port = Obs.Http.port srv in
  check_bool "ephemeral port assigned" true (port > 0);
  (* query strings are stripped before route matching *)
  let fd = http_get port "/metrics?window=1" in
  ignore (Obs.Http.poll srv);
  let reply = read_reply fd in
  check_bool "200" true (contains reply "HTTP/1.0 200 OK");
  check_bool "live body" true (contains reply "probe 1");
  check_bool "content length set" true (contains reply "Content-Length:");
  let fd2 = http_get port "/nope" in
  ignore (Obs.Http.poll srv);
  let reply2 = read_reply fd2 in
  check_bool "404" true (contains reply2 "HTTP/1.0 404");
  check_int "both requests served" 2 (Obs.Http.served srv);
  Obs.Http.close srv;
  check_int "closed server serves nothing" 0 (Obs.Http.poll srv)

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "to_string/of_string roundtrip" `Quick test_json_roundtrip ]
      );
      ( "sampler",
        [ Alcotest.test_case "windows and deltas" `Quick test_sampler_windows ] );
      ( "health",
        [
          Alcotest.test_case "golden json" `Quick test_health_golden_json;
          Alcotest.test_case "rule kinds fire" `Quick test_health_rules;
          Alcotest.test_case "ewma band" `Quick test_health_ewma_band;
        ] );
      ( "soak",
        [
          Alcotest.test_case "artifacts roundtrip" `Quick test_soak_artifacts_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
          Alcotest.test_case "fault gates the exit" `Quick test_soak_fault_gate;
        ] );
      ( "merge",
        [
          Alcotest.test_case "jobs=4 preserves health inputs" `Quick
            test_merge_preserves_health_inputs;
        ] );
      ( "monitor",
        [ Alcotest.test_case "status windows judged" `Quick test_monitor_health ] );
      ( "http",
        [ Alcotest.test_case "loopback roundtrip" `Quick test_http_roundtrip ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_windows_partition ] );
    ]
