(* Tests for the telemetry subsystem: span store mechanics, exporter golden
   files, well-nesting/monotonicity properties of device-produced span
   trees, and the device metrics registry. *)

module Span = Telemetry.Span
module Registry = Telemetry.Registry
module Export = Telemetry.Export
module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Compile = Sdnet.Compile
module Quirks = Sdnet.Quirks
module Device = Target.Device
module Counter = Stats.Counter
module Histogram = Stats.Histogram
module P = Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let build ?(quirks = Quirks.none) (b : Programs.bundle) =
  let report = Compile.compile_exn ~quirks b.Programs.program in
  let device = Device.create report.Compile.pipeline in
  (match
     Runtime.install_all b.Programs.program (Device.runtime device) b.Programs.entries
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  device

let udp dst = P.serialize (P.udp_ipv4 ~dst ())

(* ---------------- span store mechanics ---------------- *)

let test_span_record_roundtrip () =
  let s = Span.create ~capacity:8 () in
  let n = Span.intern s "parse" in
  let note = Span.intern s "accept" in
  let id =
    Span.add s ~parent:Span.no_parent ~packet:7 ~kind:Span.Parse ~name:n ~t0:10.0 ~t1:40.0
      ~bytes:0 ~flags:Span.flag_fault ~note
  in
  match Span.spans s with
  | [ sp ] ->
      check_int "id" id sp.Span.sp_id;
      check_int "packet" 7 sp.Span.sp_packet;
      check_string "name" "parse" sp.Span.sp_name;
      check_bool "kind" true (sp.Span.sp_kind = Span.Parse);
      check_bool "fault flag" true sp.Span.sp_fault;
      check_bool "no drop flag" false sp.Span.sp_drop;
      Alcotest.(check (option string)) "note" (Some "accept") sp.Span.sp_note
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_span_intern_stable () =
  let s = Span.create () in
  let a = Span.intern s "x" in
  let b = Span.intern s "y" in
  check_int "same string, same id" a (Span.intern s "x");
  check_bool "distinct strings, distinct ids" true (a <> b);
  check_string "name_of" "y" (Span.name_of s b);
  (* intern table grows past its initial array *)
  let ids = List.init 100 (fun i -> Span.intern s (string_of_int i)) in
  check_string "growth keeps names" "42" (Span.name_of s (List.nth ids 42))

let test_span_ring_eviction () =
  let s = Span.create ~capacity:4 () in
  let n = Span.intern s "e" in
  for i = 0 to 9 do
    ignore
      (Span.add s ~parent:Span.no_parent ~packet:i ~kind:Span.Stage ~name:n
         ~t0:(float_of_int i) ~t1:(float_of_int i) ~bytes:0 ~flags:0 ~note:Span.no_note)
  done;
  check_int "retained" 4 (Span.count s);
  check_int "evicted" 6 (Span.dropped s);
  (* oldest first, and only the newest four survive *)
  Alcotest.(check (list int))
    "survivors" [ 6; 7; 8; 9 ]
    (List.map (fun sp -> sp.Span.sp_packet) (Span.spans s))

let test_span_sampling () =
  let s = Span.create ~sampling:4 () in
  let picks = List.init 8 (fun _ -> Span.sample s) in
  Alcotest.(check (list bool))
    "1-in-4, first always"
    [ true; false; false; false; true; false; false; false ]
    picks;
  Span.set_sampling s 1;
  check_bool "1/1 samples everything" true (Span.sample s && Span.sample s);
  Span.set_sampling s 0;
  check_bool "0 disables" false (Span.sample s);
  Span.set_sampling s 4;
  check_bool "set_sampling resets the phase" true (Span.sample s)

(* ---------------- exporter golden files ---------------- *)

(* A tiny store built by hand: a parse child recorded before its packet
   root, the root filled in last under a reserved id — exactly the order
   the device records in. *)
let golden_store () =
  let s = Span.create ~capacity:16 () in
  let n_pkt = Span.intern s "packet" in
  let n_parse = Span.intern s "parse" in
  let note = Span.intern s "accept" in
  let root = Span.next_id s in
  ignore
    (Span.add s ~parent:root ~packet:0 ~kind:Span.Parse ~name:n_parse ~t0:10.0 ~t1:40.0
       ~bytes:0 ~flags:0 ~note);
  Span.record s ~id:root ~parent:Span.no_parent ~packet:0 ~kind:Span.Packet ~name:n_pkt
    ~t0:0.0 ~t1:60.0 ~bytes:64 ~flags:0 ~note:Span.no_note;
  s

let chrome_golden =
  "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n\
  \ {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"netdebug device\"}},\n\
  \ {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"parse\"}},\n\
  \ {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"packet\"}},\n\
  \ {\"name\":\"parse\",\"cat\":\"parse\",\"ph\":\"X\",\"ts\":0.010000,\"dur\":0.030000,\"pid\":1,\"tid\":0,\"args\":{\"packet\":0,\"note\":\"accept\"}},\n\
  \ {\"name\":\"packet\",\"cat\":\"packet\",\"ph\":\"X\",\"ts\":0.000000,\"dur\":0.060000,\"pid\":1,\"tid\":1,\"args\":{\"packet\":0,\"bytes\":64}}\n\
   ]}\n"

let test_chrome_golden () =
  check_string "chrome trace" chrome_golden (Export.chrome_trace (golden_store ()))

let jsonl_golden =
  "{\"id\":1,\"parent\":0,\"packet\":0,\"kind\":\"parse\",\"name\":\"parse\",\"start_ns\":10.000,\"end_ns\":40.000,\"bytes\":0,\"drop\":false,\"fault\":false,\"note\":\"accept\"}\n\
   {\"id\":0,\"parent\":-1,\"packet\":0,\"kind\":\"packet\",\"name\":\"packet\",\"start_ns\":0.000,\"end_ns\":60.000,\"bytes\":64,\"drop\":false,\"fault\":false}\n"

let test_jsonl_golden () =
  check_string "jsonl" jsonl_golden (Export.jsonl (golden_store ()))

let text_golden =
  "[        10.0 ..         40.0] pkt=0     parse    parse                    accept\n\
   [         0.0 ..         60.0] pkt=0     packet   packet                     64B\n\
   2 spans retained, 0 evicted (capacity 16)\n"

let test_text_golden () =
  check_string "text" text_golden (Export.text (golden_store ()))

let prometheus_golden =
  "# HELP netdebug_lat_ns a histogram\n\
   # TYPE netdebug_lat_ns summary\n\
   netdebug_lat_ns{quantile=\"0.5\"} 0.5\n\
   netdebug_lat_ns{quantile=\"0.9\"} 0.5\n\
   netdebug_lat_ns{quantile=\"0.99\"} 0.5\n\
   netdebug_lat_ns{quantile=\"0.999\"} 0.5\n\
   netdebug_lat_ns_sum 0.75\n\
   netdebug_lat_ns_count 2\n\
   netdebug_lat_ns_min 0.25\n\
   netdebug_lat_ns_max 0.5\n\
   # HELP netdebug_queue_depth a gauge\n\
   # TYPE netdebug_queue_depth gauge\n\
   netdebug_queue_depth 2.5\n\
   # HELP netdebug_rx_total a counter\n\
   # TYPE netdebug_rx_total counter\n\
   netdebug_rx_total 3\n"

let test_prometheus_golden () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"a counter" "rx/total" in
  Counter.add c 3L;
  Registry.gauge r ~help:"a gauge" "queue/depth" (fun () -> 2.5);
  let h = Registry.histogram r ~help:"a histogram" "lat/ns" in
  (* sub-1.0 samples land in the exact first bin, so the summary
     quantiles are stable literals rather than log-bin approximations *)
  Histogram.add h 0.5;
  Histogram.add h 0.25;
  check_string "prometheus" prometheus_golden (Export.prometheus r)

let test_prometheus_help_escapes () =
  let r = Registry.create () in
  ignore (Registry.counter r ~help:"first line\nsecond \\ line" "x");
  check_string "escaped help"
    "# HELP netdebug_x first line\\nsecond \\\\ line\n# TYPE netdebug_x counter\nnetdebug_x 0\n"
    (Export.prometheus r)

let test_chrome_escapes () =
  let s = Span.create () in
  let n = Span.intern s "we\"ird\\name" in
  ignore
    (Span.add s ~parent:Span.no_parent ~packet:0 ~kind:Span.Stage ~name:n ~t0:0.0 ~t1:1.0
       ~bytes:0 ~flags:0 ~note:Span.no_note);
  let out = Export.chrome_trace s in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "quote escaped" true (contains out "we\\\"ird\\\\name");
  check_bool "raw quote gone" false (contains out "we\"ird")

(* ---------------- registry ---------------- *)

let test_registry_wraps_counter_set () =
  let set = Counter.Set.create () in
  let r = Registry.create ~counters:set () in
  let c = Registry.counter r ~help:"h" "a" in
  Counter.incr c;
  (* same underlying counter as the set's *)
  Alcotest.(check int64) "shared" 1L (Counter.Set.get set "a");
  Counter.Set.incr set "a";
  Alcotest.(check int64) "shared both ways" 2L (Counter.get c);
  (* counters created directly in the set still show up in the snapshot *)
  Counter.Set.add set "b" 5L;
  let names = List.map (fun (n, _, _) -> n) (Registry.snapshot r) in
  Alcotest.(check (list string)) "snapshot sorted, complete" [ "a"; "b" ] names

let test_registry_idempotent_registration () =
  let r = Registry.create () in
  let c1 = Registry.counter r "x" in
  let c2 = Registry.counter r ~help:"late help" "x" in
  Counter.incr c1;
  Alcotest.(check int64) "same counter" 1L (Counter.get c2);
  let h1 = Registry.histogram r "h" in
  let h2 = Registry.histogram r "h" in
  Histogram.add h1 1.0;
  check_int "same histogram" 1 (Histogram.count h2)

(* Two worker shards register the same metric names (exactly what
   per-domain registry replicas do); merging them into a target must sum
   counters and histogram datasets, keep live histogram handles valid,
   and bind the shared help text exactly once — not once per shard. *)
let test_registry_merge_shards () =
  let global = Registry.create () in
  let live = Registry.histogram global ~help:"pipeline latency" "lat/ns" in
  Histogram.add live 1.0;
  let c = Registry.counter global ~help:"rx packets" "rx/total" in
  Counter.incr c;
  let shard n =
    let r = Registry.create () in
    let h = Registry.histogram r ~help:"pipeline latency" "lat/ns" in
    for _ = 1 to n do
      Histogram.add h 2.0
    done;
    Counter.add (Registry.counter r ~help:"rx packets" "rx/total") (Int64.of_int n);
    ignore (Registry.counter r ~help:"shard only" "shard/extra");
    r
  in
  Registry.merge ~into:global (shard 2);
  Registry.merge ~into:global (shard 3);
  (* the pre-merge handle still observes merged data and future updates *)
  check_int "histogram datasets summed" 6 (Histogram.count live);
  Histogram.add live 1.0;
  (match List.assoc_opt "lat/ns" (List.map (fun (n, _, v) -> (n, v)) (Registry.snapshot global)) with
  | Some (Registry.Histogram h) -> check_int "live handle kept" 7 (Histogram.count h)
  | _ -> Alcotest.fail "lat/ns should stay a histogram");
  Alcotest.(check int64)
    "counters summed" 6L
    (Counter.Set.get (Registry.counter_set global) "rx/total");
  Alcotest.(check int64)
    "shard-only counter arrives" 0L
    (Counter.Set.get (Registry.counter_set global) "shard/extra");
  check_string "help bound once, target's kept" "pipeline latency" (Registry.help global "lat/ns");
  check_string "shard help adopted when target has none" "shard only"
    (Registry.help global "shard/extra");
  (* exporters must see exactly one binding: a stacked help would break
     the prometheus exposition with duplicate # HELP lines *)
  let exposition = Export.prometheus global in
  let occurrences needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_int "single HELP line" 1 (occurrences "# HELP netdebug_lat_ns" exposition)

let test_registry_merge_shared_counter_set () =
  (* shards wrapping the SAME counter set (the device's own) must not
     double-count on merge: the values are already in the set *)
  let set = Counter.Set.create () in
  let a = Registry.create ~counters:set () in
  let b = Registry.create ~counters:set () in
  Counter.incr (Registry.counter a "x");
  Counter.incr (Registry.counter b "x");
  Registry.merge ~into:a b;
  Alcotest.(check int64) "no double count" 2L (Counter.Set.get set "x");
  (* merging a registry into itself is likewise a no-op for counters *)
  Registry.merge ~into:a a;
  Alcotest.(check int64) "self merge is a no-op" 2L (Counter.Set.get set "x")

(* ---------------- device span trees ---------------- *)

let span_names_of_packet d id =
  List.map (fun sp -> sp.Span.sp_name) (Span.spans_for_packet (Device.spans d) id)

let test_device_span_tree_shape () =
  let d = build Programs.basic_router in
  Device.set_span_sampling d 1;
  let id, disp = Device.inject d ~source:(Device.External 0) (udp 0x0A010203L) in
  (match disp with Device.Emitted _ -> () | _ -> Alcotest.fail "expected emission");
  let spans = Span.spans_for_packet (Device.spans d) id in
  let root =
    match List.filter (fun sp -> sp.Span.sp_kind = Span.Packet) spans with
    | [ r ] -> r
    | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)
  in
  check_bool "root is parentless" true (root.Span.sp_parent = Span.no_parent);
  check_bool "root carries bytes" true (root.Span.sp_bytes > 0);
  List.iter
    (fun sp ->
      if sp.Span.sp_id <> root.Span.sp_id then begin
        check_int ("child of root: " ^ sp.Span.sp_name) root.Span.sp_id sp.Span.sp_parent;
        check_bool ("nested start: " ^ sp.Span.sp_name) true
          (sp.Span.sp_start_ns >= root.Span.sp_start_ns -. 1e-6);
        check_bool ("nested end: " ^ sp.Span.sp_name) true
          (sp.Span.sp_end_ns <= root.Span.sp_end_ns +. 1e-6)
      end)
    spans;
  let names = span_names_of_packet d id in
  List.iter
    (fun expected ->
      check_bool ("has " ^ expected) true (List.mem expected names))
    [ "rx_queue"; "parse"; "deparse" ];
  check_bool "has a tx span" true
    (List.exists (fun n -> String.length n > 3 && String.sub n 0 3 = "tx[") names);
  check_bool "has the lpm stage" true
    (List.exists
       (fun n ->
         String.length n > 6
         && String.sub n 0 6 = "stage["
         && String.length n >= 11
         && String.sub n (String.length n - 11) 11 = "ma:ipv4_lpm")
       names)

let test_device_span_sampling () =
  let d = build Programs.basic_router in
  Device.set_span_sampling d 4;
  for _ = 1 to 8 do
    ignore (Device.inject d ~source:(Device.External 0) (udp 0x0A010203L))
  done;
  let roots =
    List.filter (fun sp -> sp.Span.sp_kind = Span.Packet) (Span.spans (Device.spans d))
  in
  check_int "2 of 8 packets spanned" 2 (List.length roots)

let test_device_span_drop_annotation () =
  let d = build Programs.parser_guard in
  Device.set_span_sampling d 1;
  (* a non-IPv4 ethertype: the guard program's parser rejects it *)
  let raw = Bitutil.Bitstring.of_string (String.make 12 '\x01' ^ "\x08\x99" ^ String.make 40 '\x00') in
  let id, disp = Device.inject d ~source:(Device.External 0) raw in
  (match disp with
  | Device.Dropped_pipeline _ -> ()
  | _ -> Alcotest.fail "expected a pipeline drop");
  let root =
    List.find
      (fun sp -> sp.Span.sp_kind = Span.Packet)
      (Span.spans_for_packet (Device.spans d) id)
  in
  check_bool "root marked dropped" true root.Span.sp_drop;
  check_bool "drop reason noted" true (root.Span.sp_note <> None)

let test_device_metrics_registry () =
  let d = build Programs.basic_router in
  for _ = 1 to 3 do
    ignore (Device.inject d ~source:(Device.External 0) (udp 0x0A010203L))
  done;
  let snap = Registry.snapshot (Device.metrics d) in
  let find name =
    match List.find_opt (fun (n, _, _) -> n = name) snap with
    | Some (_, _, v) -> v
    | None -> Alcotest.failf "metric %s not in snapshot" name
  in
  (match find "rx/external" with
  | Registry.Counter v -> Alcotest.(check int64) "rx counted" 3L v
  | _ -> Alcotest.fail "rx/external should be a counter");
  (match find "pipeline/latency_ns" with
  | Registry.Histogram h -> check_int "latency samples" 3 (Histogram.count h)
  | _ -> Alcotest.fail "pipeline/latency_ns should be a histogram");
  (match find "rxq/depth" with
  | Registry.Gauge _ -> ()
  | _ -> Alcotest.fail "rxq/depth should be a gauge");
  (* every metric help string is present for the prometheus exposition *)
  check_bool "stage seen counter present" true
    (List.exists (fun (n, _, _) -> n = "stage/ma:ipv4_lpm/seen") snap)

(* ---------------- properties ---------------- *)

(* Arbitrary traffic mixes: routable/unroutable destinations, varying
   payloads and inter-arrival gaps. *)
let traffic_gen =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (triple (oneofl [ 0x0A010203L; 0x0A000005L; 0x01020304L ]) (int_range 0 200)
         (int_range 0 500)))

let prop_span_trees_well_nested =
  QCheck.Test.make ~count:50 ~name:"device span trees are well-nested"
    (QCheck.make traffic_gen) (fun traffic ->
      let d = build Programs.basic_router in
      Device.set_span_sampling d 1;
      let t = ref 0.0 in
      List.iter
        (fun (dst, payload_bytes, gap) ->
          t := !t +. float_of_int gap;
          ignore
            (Device.inject d ~source:(Device.External 0) ~at_ns:!t
               (P.serialize (P.udp_ipv4 ~dst ~payload_bytes ()))))
        traffic;
      let spans = Span.spans (Device.spans d) in
      let by_id = Hashtbl.create 64 in
      List.iter (fun sp -> Hashtbl.replace by_id sp.Span.sp_id sp) spans;
      List.for_all
        (fun sp ->
          sp.Span.sp_end_ns >= sp.Span.sp_start_ns -. 1e-9
          &&
          match Hashtbl.find_opt by_id sp.Span.sp_parent with
          | None -> true (* root, or parent evicted from the ring *)
          | Some parent ->
              sp.Span.sp_start_ns >= parent.Span.sp_start_ns -. 1e-6
              && sp.Span.sp_end_ns <= parent.Span.sp_end_ns +. 1e-6
              && sp.Span.sp_packet = parent.Span.sp_packet)
        spans)

let prop_span_roots_monotone =
  QCheck.Test.make ~count:50 ~name:"packet root spans start monotonically in virtual time"
    (QCheck.make traffic_gen) (fun traffic ->
      let d = build Programs.basic_router in
      Device.set_span_sampling d 1;
      let t = ref 0.0 in
      List.iter
        (fun (dst, payload_bytes, gap) ->
          t := !t +. float_of_int gap;
          ignore
            (Device.inject d ~source:(Device.External 0) ~at_ns:!t
               (P.serialize (P.udp_ipv4 ~dst ~payload_bytes ()))))
        traffic;
      let roots =
        List.filter (fun sp -> sp.Span.sp_kind = Span.Packet) (Span.spans (Device.spans d))
      in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            a.Span.sp_start_ns <= b.Span.sp_start_ns +. 1e-9 && monotone rest
        | _ -> true
      in
      (* ring order is record order; injection order is virtual-time order *)
      monotone roots)

let () =
  Alcotest.run "telemetry"
    [
      ( "span store",
        [
          Alcotest.test_case "record roundtrip" `Quick test_span_record_roundtrip;
          Alcotest.test_case "intern stable" `Quick test_span_intern_stable;
          Alcotest.test_case "ring eviction" `Quick test_span_ring_eviction;
          Alcotest.test_case "sampling" `Quick test_span_sampling;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "text golden" `Quick test_text_golden;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "prometheus help escapes" `Quick test_prometheus_help_escapes;
          Alcotest.test_case "chrome escapes" `Quick test_chrome_escapes;
        ] );
      ( "registry",
        [
          Alcotest.test_case "wraps counter set" `Quick test_registry_wraps_counter_set;
          Alcotest.test_case "idempotent registration" `Quick
            test_registry_idempotent_registration;
          Alcotest.test_case "merge shards" `Quick test_registry_merge_shards;
          Alcotest.test_case "merge with shared counter set" `Quick
            test_registry_merge_shared_counter_set;
        ] );
      ( "device spans",
        [
          Alcotest.test_case "tree shape" `Quick test_device_span_tree_shape;
          Alcotest.test_case "sampling" `Quick test_device_span_sampling;
          Alcotest.test_case "drop annotation" `Quick test_device_span_drop_annotation;
          Alcotest.test_case "metrics registry" `Quick test_device_metrics_registry;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_span_trees_well_nested;
          QCheck_alcotest.to_alcotest prop_span_roots_monotone;
        ] );
    ]
