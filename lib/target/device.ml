module Ast = P4ir.Ast
module Env = P4ir.Env
module Exec = P4ir.Exec
module Parse = P4ir.Parse
module Deparse = P4ir.Deparse
module Value = P4ir.Value
module Runtime = P4ir.Runtime
module Regstate = P4ir.Regstate
module Stdmeta = P4ir.Stdmeta
module Compilecore = P4ir.Compilecore
module Counter = Stats.Counter
module Histogram = Stats.Histogram
module Bitstring = Bitutil.Bitstring
module Span = Telemetry.Span
module Registry = Telemetry.Registry

type source = External of int | Generator

type output = {
  o_port : int;
  o_bits : Bitstring.t;
  o_source : source;
  o_in_time_ns : float;
  o_out_time_ns : float;
  o_wire_time_ns : float;
}

type disposition =
  | Emitted of output
  | Dropped_pipeline of string
  | Dropped_queue
  | Lost_in_stage of string

type status = {
  st_time_ns : float;
  st_packets_in : int64;
  st_packets_out : int64;
  st_queue_drops : int64;
  st_pipeline_drops : int64;
  st_queue_depth : int;
  st_stage_seen : (string * int64) list;
}

(* Coverage taps: external observers of the behavioural events a packet
   produces inside the pipeline (parser outcome, table apply, final
   disposition). Unset by default; the hot path pays one word-load and a
   branch per event when no taps are installed. *)
type taps = {
  tp_parse : P4ir.Parse.outcome -> unit;
  tp_table : table:string -> hit:bool -> action:string -> unit;
  tp_disposition : disposition -> unit;
}

(* The internal generator sits after the input interfaces; its packets carry
   a non-physical ingress port (one below the 511 drop port). *)
let generator_port = 510

(* Spans for 1-in-64 packets by default; metrics are always on. *)
let default_span_sampling = 64

exception Lost of string

(* Per-stage runtime state. Counters and span names are resolved/interned
   once at device creation so the hot path never formats or hashes a
   string. *)
type stage_state = {
  ss_name : string;
  ss_seen : Counter.t;
  ss_hit : Counter.t option;
  ss_miss : Counter.t option;
  ss_fault_applied : Counter.t;
  ss_enter_ns : float;  (* latency from pipeline entry to this stage, for trace stamps *)
  ss_latency_ns : float;
  ss_name_id : int;  (* interned span name, e.g. "stage[2]:ma:ipv4_lpm" *)
  ss_span_kind : Span.kind;
  mutable ss_fault : Fault.t option;
  mutable ss_fault_hits : int;
}

(* The staged execution state: the pipeline's program compiled to closures
   (shared across devices via the pipeline's lazy core) plus this device's
   instance of it. [sg_stage_of_table] maps the core's dense table ids to
   the match-action stages so the per-apply callback does no hashing. *)
type dstaged = {
  sg : Compilecore.inst;
  sg_core : Compilecore.t;
}

type t = {
  pipeline : Pipeline.t;
  config : Config.t;
  staged : dstaged option;
  runtime : Runtime.t;
  regs : Regstate.t;
  counters : Counter.Set.t;
  metrics : Registry.t;
  spanstore : Span.t;
  trace : Trace.t;
  env : Env.t;
  ctx : Exec.ctx;
  cycle_ns : float;
  latency_ns : float;
  stages : stage_state array;
  ss_parser : stage_state;
  ss_egress : stage_state;
  ss_deparser : stage_state;
  by_stage : (string, stage_state) Hashtbl.t;
  taps : taps option ref;
  faults_active : bool ref;
  cur_id : int ref;
  cur_entry : float ref;
  cur_sampled : bool ref;  (* is the in-flight packet fully spanned? *)
  cur_root : int ref;  (* reserved span id of the in-flight packet's root *)
  cur_end : float ref;  (* latest virtual time the in-flight packet reached *)
  mutable now : float;
  mutable pipe_free : float;  (* when the bus finishes streaming the last packet in *)
  rx_q : Ringq.t;
  tx_q : Ringq.t array;
  tx_free : float array;
  broken : bool array;
  mutable outs_rev : output list;
  mutable check_tap : output -> unit;
  mutable next_id : int;
  c_rx_external : Counter.t;
  c_rx_generator : Counter.t;
  c_drop_queue : Counter.t;
  c_drop_pipeline : Counter.t;
  c_drop_fault : Counter.t;
  c_emitted : Counter.t;
  c_assert_failed : Counter.t;
  c_txq_drop : Counter.t array;
  h_pipe_latency : Histogram.t;
  h_rxq_wait : Histogram.t;
  h_tx_ser : Histogram.t array;
  n_packet : int;
  n_rx_queue : int;
  n_tx : int array;
  note_accept : int;
  note_reject : int;
  note_enter : int;
  note_emit : int;
  note_tail_drop : int;
  prog_counters : (string, Counter.t) Hashtbl.t;
}

let corrupt env h f mask =
  let cur = Env.get_field env h f in
  Env.set_field env h f (Value.logxor cur (Value.make ~width:(Value.width cur) mask))

(* Drop-class faults at stage entry; raising [Lost] unwinds the traversal. *)
let fault_drop ss =
  match ss.ss_fault with
  | None | Some (Fault.Corrupt_field _) | Some Fault.Stuck_miss -> ()
  | Some Fault.Drop_at_stage ->
      Counter.incr ss.ss_fault_applied;
      raise (Lost ss.ss_name)
  | Some (Fault.Intermittent_drop n) ->
      ss.ss_fault_hits <- ss.ss_fault_hits + 1;
      if n > 0 && ss.ss_fault_hits mod n = 0 then begin
        Counter.incr ss.ss_fault_applied;
        raise (Lost ss.ss_name)
      end

let fault_corrupt env ss =
  match ss.ss_fault with
  | Some (Fault.Corrupt_field (h, f, mask)) ->
      Counter.incr ss.ss_fault_applied;
      corrupt env h f mask
  | _ -> ()

let fault_at env ss =
  fault_drop ss;
  fault_corrupt env ss

(* Staged counterparts: the corrupt fault mutates the slot array directly. *)
let fault_corrupt_staged si ss =
  match ss.ss_fault with
  | Some (Fault.Corrupt_field (h, f, mask)) ->
      Counter.incr ss.ss_fault_applied;
      Compilecore.corrupt_field si h f mask
  | _ -> ()

let fault_at_staged si ss =
  fault_drop ss;
  fault_corrupt_staged si ss

let create ?engine ?update_clock (pipeline : Pipeline.t) =
  let config = pipeline.Pipeline.config in
  let program = pipeline.Pipeline.program in
  let cycle_ns = Config.cycle_ns config in
  let counters = Counter.Set.create () in
  let metrics = Registry.create ~counters () in
  let spanstore = Span.create ~sampling:default_span_sampling () in
  let trace = Trace.create () in
  let runtime = Runtime.create () in
  let env = Env.create program in
  let regs = Regstate.create program in
  let offset = ref 0 in
  let stages =
    List.mapi
      (fun i (s : Pipeline.stage) ->
        let enter_ns = float_of_int !offset *. cycle_ns in
        offset := !offset + s.Pipeline.s_latency_cycles;
        let counter suffix help =
          Registry.counter metrics ~help ("stage/" ^ s.Pipeline.s_name ^ suffix)
        in
        let hit, miss =
          match s.Pipeline.s_kind with
          | Pipeline.Match_action _ ->
              ( Some (counter "/hit" "table lookups that matched an entry"),
                Some (counter "/miss" "table lookups that fell through") )
          | Pipeline.Parser_engine | Pipeline.Egress_engine | Pipeline.Deparser_engine ->
              (None, None)
        in
        let span_name, span_kind =
          match s.Pipeline.s_kind with
          | Pipeline.Parser_engine -> ("parse", Span.Parse)
          | Pipeline.Deparser_engine -> ("deparse", Span.Deparse)
          | Pipeline.Match_action _ | Pipeline.Egress_engine ->
              (Printf.sprintf "stage[%d]:%s" i s.Pipeline.s_name, Span.Stage)
        in
        {
          ss_name = s.Pipeline.s_name;
          ss_seen = counter "/seen" "packets that entered this stage";
          ss_hit = hit;
          ss_miss = miss;
          ss_fault_applied = counter "/fault_hits" "injected-fault applications at this stage";
          ss_enter_ns = enter_ns;
          ss_latency_ns = float_of_int s.Pipeline.s_latency_cycles *. cycle_ns;
          ss_name_id = Span.intern spanstore span_name;
          ss_span_kind = span_kind;
          ss_fault = None;
          ss_fault_hits = 0;
        })
      pipeline.Pipeline.stages
    |> Array.of_list
  in
  let by_stage = Hashtbl.create 8 in
  Array.iter (fun ss -> Hashtbl.replace by_stage ss.ss_name ss) stages;
  let by_table = Hashtbl.create 8 in
  List.iteri
    (fun i (s : Pipeline.stage) ->
      match s.Pipeline.s_kind with
      | Pipeline.Match_action tbl -> Hashtbl.replace by_table tbl stages.(i)
      | _ -> ())
    pipeline.Pipeline.stages;
  let find_stage name =
    match Hashtbl.find_opt by_stage name with
    | Some ss -> ss
    | None -> invalid_arg ("Device.create: pipeline has no " ^ name ^ " stage")
  in
  Array.iter
    (fun ss ->
      let lat = ss.ss_latency_ns in
      Registry.gauge metrics
        ~help:"fixed stage latency in the analytic timing model"
        ("stage/" ^ ss.ss_name ^ "/latency_ns")
        (fun () -> lat))
    stages;
  (* continuous-profiling attribution: each stage's share of the total
     pipeline cycles spent so far (seen x latency, normalized over all
     stages). Computed lazily at snapshot time so the hot path pays
     nothing; reads 0 before any traffic. *)
  let cycle_total () =
    Array.fold_left
      (fun acc ss ->
        acc +. (Int64.to_float (Counter.get ss.ss_seen) *. ss.ss_latency_ns))
      0. stages
  in
  Array.iter
    (fun ss ->
      Registry.gauge metrics
        ~help:"this stage's share of all pipeline cycles spent so far"
        ("stage/" ^ ss.ss_name ^ "/cycle_share")
        (fun () ->
          let total = cycle_total () in
          if total <= 0. then 0.
          else Int64.to_float (Counter.get ss.ss_seen) *. ss.ss_latency_ns /. total))
    stages;
  (* table-scale telemetry: live entry counts plus control-plane update
     latency per table. Update durations come from [update_clock]; without
     one they read 0, keeping deterministic runs deterministic while still
     counting every update. *)
  let table_update_h = Hashtbl.create 8 in
  List.iter
    (fun (tbl : Ast.table) ->
      let name = tbl.Ast.t_name in
      if not (Hashtbl.mem table_update_h name) then begin
        Registry.gauge metrics ~help:"entries currently installed in this table"
          ("table/" ^ name ^ "/entries")
          (fun () -> float_of_int (Runtime.entry_count runtime name));
        Hashtbl.replace table_update_h name
          (Registry.histogram metrics
             ~help:"control-plane update latency for this table (add/remove/clear)"
             ("table/" ^ name ^ "/update_ns"))
      end)
    program.Ast.p_tables;
  Runtime.set_update_hook runtime ?clock:update_clock (fun name ns ->
      match Hashtbl.find_opt table_update_h name with
      | Some h -> Histogram.add h (float_of_int ns)
      | None -> ());
  let taps = ref None in
  let faults_active = ref false in
  let cur_id = ref 0 in
  let cur_entry = ref 0.0 in
  let cur_sampled = ref false in
  let cur_root = ref 0 in
  let cur_end = ref 0.0 in
  let on_table ~table ~hit ~action =
    (match !taps with Some tp -> tp.tp_table ~table ~hit ~action | None -> ());
    match Hashtbl.find_opt by_table table with
    | None -> ()
    | Some ss ->
        Counter.incr ss.ss_seen;
        (match (if hit then ss.ss_hit else ss.ss_miss) with
        | Some c -> Counter.incr c
        | None -> ());
        Trace.record trace ~packet_id:!cur_id
          ~time_ns:(!cur_entry +. ss.ss_enter_ns)
          ~component:ss.ss_name
          (if hit then action else "miss");
        if !cur_sampled then begin
          let t0 = !cur_entry +. ss.ss_enter_ns in
          ignore
            (Span.add spanstore ~parent:!cur_root ~packet:!cur_id ~kind:ss.ss_span_kind
               ~name:ss.ss_name_id ~t0 ~t1:(t0 +. ss.ss_latency_ns) ~bytes:0 ~flags:0
               ~note:(Span.intern spanstore (if hit then action else "miss")))
        end;
        if !faults_active then fault_at env ss
  in
  let prog_counters = Hashtbl.create 8 in
  let on_count name =
    let c =
      match Hashtbl.find_opt prog_counters name with
      | Some c -> c
      | None ->
          let c = Counter.Set.find counters ("prog/" ^ name) in
          Hashtbl.add prog_counters name c;
          c
    in
    Counter.incr c
  in
  let c_assert_failed =
    Registry.counter metrics ~help:"program assertions that evaluated false" "assert/failed"
  in
  let on_assert ok _msg = if not ok then Counter.incr c_assert_failed in
  let base_hooks = pipeline.Pipeline.exec_hooks in
  let table_always_miss tbl =
    base_hooks.Exec.table_always_miss tbl
    || !faults_active
       &&
       match Hashtbl.find_opt by_table tbl with
       | Some { ss_fault = Some Fault.Stuck_miss; _ } -> true
       | _ -> false
  in
  let hooks = { base_hooks with Exec.table_always_miss } in
  let ctx = Exec.make_ctx ~hooks ~on_count ~on_assert ~on_table ~regs ~env ~runtime () in
  let engine = match engine with Some e -> e | None -> Compilecore.default_engine () in
  let staged =
    match engine with
    | `Tree -> None
    | `Staged ->
        let core = Lazy.force pipeline.Pipeline.staged in
        let nt = Compilecore.n_tables core in
        let stage_of_table =
          Array.init nt (fun i -> Hashtbl.find_opt by_table (Compilecore.table_name core i))
        in
        (* per-id counter cells, resolved on first increment like the
           string-keyed path above *)
        let id_counters = Array.make (max 1 (Compilecore.n_counters core)) None in
        let sg_count id =
          let c =
            match id_counters.(id) with
            | Some c -> c
            | None ->
                let name = Compilecore.counter_name core id in
                let c =
                  match Hashtbl.find_opt prog_counters name with
                  | Some c -> c
                  | None ->
                      let c = Counter.Set.find counters ("prog/" ^ name) in
                      Hashtbl.add prog_counters name c;
                      c
                in
                id_counters.(id) <- Some c;
                c
          in
          Counter.incr c
        in
        let sg_assert ok _id = if not ok then Counter.incr c_assert_failed in
        (* tied after [instantiate] so the fault path can reach the
           instance's own state *)
        let si_box = ref None in
        let sg_table id hit action =
          (match !taps with
          | Some tp -> tp.tp_table ~table:(Compilecore.table_name core id) ~hit ~action
          | None -> ());
          match stage_of_table.(id) with
          | None -> ()
          | Some ss ->
              Counter.incr ss.ss_seen;
              (match (if hit then ss.ss_hit else ss.ss_miss) with
              | Some c -> Counter.incr c
              | None -> ());
              Trace.record trace ~packet_id:!cur_id
                ~time_ns:(!cur_entry +. ss.ss_enter_ns)
                ~component:ss.ss_name
                (if hit then action else "miss");
              if !cur_sampled then begin
                let t0 = !cur_entry +. ss.ss_enter_ns in
                ignore
                  (Span.add spanstore ~parent:!cur_root ~packet:!cur_id ~kind:ss.ss_span_kind
                     ~name:ss.ss_name_id ~t0 ~t1:(t0 +. ss.ss_latency_ns) ~bytes:0 ~flags:0
                     ~note:(Span.intern spanstore (if hit then action else "miss")))
              end;
              if !faults_active then
                match !si_box with Some si -> fault_at_staged si ss | None -> ()
        in
        let si =
          Compilecore.instantiate ~on_count:sg_count ~on_assert:sg_assert ~on_table:sg_table
            ~table_always_miss ~regs core ~runtime
        in
        si_box := Some si;
        Some { sg = si; sg_core = core }
  in
  let rx_q = Ringq.create config.Config.rx_queue_packets in
  let tx_q = Array.init config.Config.ports (fun _ -> Ringq.create config.Config.tx_queue_packets) in
  Registry.gauge metrics ~help:"packets buffered in the input queue" "rxq/depth" (fun () ->
      float_of_int (Ringq.length rx_q));
  Array.iteri
    (fun p q ->
      Registry.gauge metrics
        ~help:"packets buffered in this port's TX queue"
        (Printf.sprintf "txq%d/depth" p)
        (fun () -> float_of_int (Ringq.length q)))
    tx_q;
  {
    pipeline;
    config;
    staged;
    runtime;
    regs;
    counters;
    metrics;
    spanstore;
    trace;
    env;
    ctx;
    cycle_ns;
    latency_ns = float_of_int (Pipeline.total_latency_cycles pipeline) *. cycle_ns;
    stages;
    ss_parser = find_stage "parser";
    ss_egress = find_stage "egress";
    ss_deparser = find_stage "deparser";
    by_stage;
    taps;
    faults_active;
    cur_id;
    cur_entry;
    cur_sampled;
    cur_root;
    cur_end;
    now = 0.0;
    pipe_free = 0.0;
    rx_q;
    tx_q;
    tx_free = Array.make config.Config.ports 0.0;
    broken = Array.make config.Config.ports false;
    outs_rev = [];
    check_tap = ignore;
    next_id = 0;
    c_rx_external =
      Registry.counter metrics ~help:"packets arrived on physical ports" "rx/external";
    c_rx_generator =
      Registry.counter metrics ~help:"packets injected by the internal generator" "rx/generator";
    c_drop_queue =
      Registry.counter metrics ~help:"tail drops at the full input queue" "drop/queue";
    c_drop_pipeline =
      Registry.counter metrics ~help:"packets dropped by program semantics" "drop/pipeline";
    c_drop_fault =
      Registry.counter metrics ~help:"packets swallowed by an injected fault" "drop/fault";
    c_emitted =
      Registry.counter metrics ~help:"emissions observed at the check point" "tx/emitted";
    c_assert_failed;
    c_txq_drop =
      Array.init config.Config.ports (fun p ->
          Registry.counter metrics ~help:"tail drops at this port's full TX queue"
            (Printf.sprintf "drop/txq%d" p));
    h_pipe_latency =
      Registry.histogram metrics
        ~help:"virtual ns from device arrival to pipeline exit (check point)"
        "pipeline/latency_ns";
    h_rxq_wait =
      Registry.histogram metrics
        ~help:"virtual ns a packet waited before the pipeline bus accepted it"
        "rxq/wait_ns";
    h_tx_ser =
      Array.init config.Config.ports (fun p ->
          Registry.histogram metrics
            ~help:"virtual ns spent serializing onto this port's wire"
            (Printf.sprintf "tx/port%d/serialization_ns" p));
    n_packet = Span.intern spanstore "packet";
    n_rx_queue = Span.intern spanstore "rx_queue";
    n_tx =
      Array.init config.Config.ports (fun p -> Span.intern spanstore (Printf.sprintf "tx[%d]" p));
    note_accept = Span.intern spanstore "accept";
    note_reject = Span.intern spanstore "reject";
    note_enter = Span.intern spanstore "enter";
    note_emit = Span.intern spanstore "emit";
    note_tail_drop = Span.intern spanstore "tail-drop";
    prog_counters;
  }

let pipeline t = t.pipeline
let config t = t.config
let runtime t = t.runtime
let registers t = t.regs
let counters t = t.counters
let metrics t = t.metrics
let spans t = t.spanstore
let trace t = t.trace
let now_ns t = t.now

let set_span_sampling t n = Span.set_sampling t.spanstore n

let set_check_tap t f = t.check_tap <- f

let set_taps t tp =
  t.taps := tp;
  (* the parse tap consumes [states_visited]; only track it when someone
     is listening *)
  match t.staged with
  | Some d -> Compilecore.set_track_states d.sg (Option.is_some tp)
  | None -> ()

let set_port_broken t port broken =
  if port < 0 || port >= t.config.Config.ports then
    invalid_arg (Printf.sprintf "Device.set_port_broken: no port %d" port);
  t.broken.(port) <- broken

let inject_fault t ~stage fault =
  match Hashtbl.find_opt t.by_stage stage with
  | None -> invalid_arg ("Device.inject_fault: unknown stage " ^ stage)
  | Some ss ->
      ss.ss_fault <- Some fault;
      ss.ss_fault_hits <- 0;
      t.faults_active := true

let clear_faults t =
  Array.iter
    (fun ss ->
      ss.ss_fault <- None;
      ss.ss_fault_hits <- 0)
    t.stages;
  t.faults_active := false

let faults t =
  Array.to_list t.stages
  |> List.filter_map (fun ss ->
         match ss.ss_fault with Some f -> Some (ss.ss_name, f) | None -> None)

(* A child span of the in-flight packet's root. *)
let span_child t ~kind ~name ~t0 ~t1 ~bytes ~flags ~note =
  ignore
    (Span.add t.spanstore ~parent:!(t.cur_root) ~packet:!(t.cur_id) ~kind ~name ~t0 ~t1
       ~bytes ~flags ~note)

(* Emission: the check tap observes everything that left the pipeline; only
   packets bound for a healthy physical port with TX buffer room go on to
   the wire (and into [outputs]). *)
let emit t ~source ~arrival ~out_time ~port bits =
  Counter.incr t.c_emitted;
  Histogram.add t.h_pipe_latency (out_time -. arrival);
  let out =
    {
      o_port = port;
      o_bits = bits;
      o_source = source;
      o_in_time_ns = arrival;
      o_out_time_ns = out_time;
      o_wire_time_ns = out_time;
    }
  in
  t.check_tap out;
  if port >= 0 && port < t.config.Config.ports && not t.broken.(port) then begin
    let q = t.tx_q.(port) in
    ignore (Ringq.drop_leq q out_time);
    if Ringq.is_full q then begin
      Counter.incr t.c_txq_drop.(port);
      if !(t.cur_sampled) then
        span_child t ~kind:Span.Tx ~name:t.n_tx.(port) ~t0:out_time ~t1:out_time ~bytes:0
          ~flags:Span.flag_drop ~note:t.note_tail_drop
    end
    else begin
      let bytes = (Bitstring.length bits + 7) / 8 in
      let ser = float_of_int bytes /. (Config.port_rate_gbps t.config /. 8.0) in
      let start = if t.tx_free.(port) > out_time then t.tx_free.(port) else out_time in
      let wire = start +. ser in
      t.tx_free.(port) <- wire;
      ignore (Ringq.push q wire);
      Histogram.add t.h_tx_ser.(port) ser;
      t.cur_end := wire;
      if !(t.cur_sampled) then
        span_child t ~kind:Span.Tx ~name:t.n_tx.(port) ~t0:out_time ~t1:wire ~bytes ~flags:0
          ~note:Span.no_note;
      t.outs_rev <- { out with o_wire_time_ns = wire } :: t.outs_rev
    end
  end;
  Emitted out

let run_pipeline_tree t ~source ~id ~arrival ~entry_done bits =
  let env = t.env and ctx = t.ctx in
  let program = t.pipeline.Pipeline.program in
  Env.reset env;
  Env.set_std env Ast.Ingress_port
    (Value.of_int ~width:9 (match source with External p -> p | Generator -> generator_port));
  t.cur_id := id;
  t.cur_entry := entry_done;
  try
    let ps = t.ss_parser in
    Counter.incr ps.ss_seen;
    if !(t.faults_active) then fault_drop ps;
    let outcome = Parse.run ~hooks:t.pipeline.Pipeline.parse_hooks ctx bits in
    (match !(t.taps) with Some tp -> tp.tp_parse outcome | None -> ());
    Trace.record t.trace ~packet_id:id
      ~time_ns:(entry_done +. ps.ss_enter_ns)
      ~component:ps.ss_name
      (if outcome.Parse.accepted then "accept" else "reject");
    if !(t.cur_sampled) then begin
      let t0 = entry_done +. ps.ss_enter_ns in
      span_child t ~kind:ps.ss_span_kind ~name:ps.ss_name_id ~t0
        ~t1:(t0 +. ps.ss_latency_ns) ~bytes:0
        ~flags:(if outcome.Parse.accepted then 0 else Span.flag_drop)
        ~note:(if outcome.Parse.accepted then t.note_accept else t.note_reject)
    end;
    if !(t.faults_active) then fault_corrupt env ps;
    if not outcome.Parse.accepted then begin
      Counter.incr t.c_drop_pipeline;
      Dropped_pipeline ("parser:" ^ Stdmeta.error_name outcome.Parse.error)
    end
    else begin
      Exec.set_phase ctx Exec.Ingress;
      Exec.run_stmts ctx program.Ast.p_ingress;
      if Env.dropped env then begin
        Counter.incr t.c_drop_pipeline;
        Dropped_pipeline "ingress"
      end
      else begin
        let es = t.ss_egress in
        Counter.incr es.ss_seen;
        Trace.record t.trace ~packet_id:id
          ~time_ns:(entry_done +. es.ss_enter_ns)
          ~component:es.ss_name "enter";
        if !(t.cur_sampled) then begin
          let t0 = entry_done +. es.ss_enter_ns in
          span_child t ~kind:es.ss_span_kind ~name:es.ss_name_id ~t0
            ~t1:(t0 +. es.ss_latency_ns) ~bytes:0 ~flags:0 ~note:t.note_enter
        end;
        if !(t.faults_active) then fault_at env es;
        Exec.set_phase ctx Exec.Egress;
        Exec.run_stmts ctx program.Ast.p_egress;
        if Env.dropped env then begin
          Counter.incr t.c_drop_pipeline;
          Dropped_pipeline "egress"
        end
        else begin
          let ds = t.ss_deparser in
          Counter.incr ds.ss_seen;
          Trace.record t.trace ~packet_id:id
            ~time_ns:(entry_done +. ds.ss_enter_ns)
            ~component:ds.ss_name "emit";
          if !(t.cur_sampled) then begin
            let t0 = entry_done +. ds.ss_enter_ns in
            span_child t ~kind:ds.ss_span_kind ~name:ds.ss_name_id ~t0
              ~t1:(t0 +. ds.ss_latency_ns) ~bytes:0 ~flags:0 ~note:t.note_emit
          end;
          if !(t.faults_active) then fault_at env ds;
          let out_bits =
            Deparse.run ~update_ipv4_checksum:t.pipeline.Pipeline.update_ipv4_checksum env
          in
          let port = Value.to_int (Env.get_std env Ast.Egress_spec) in
          emit t ~source ~arrival ~out_time:(entry_done +. t.latency_ns) ~port out_bits
        end
      end
    end
  with Lost stage ->
    Counter.incr t.c_drop_fault;
    Trace.record t.trace ~packet_id:id ~severity:Trace.Warn ~time_ns:entry_done
      ~component:stage "fault-drop";
    Lost_in_stage stage

(* Same traversal, metrics, trace records and fault points as the tree
   path, but executing the pipeline's staged core. *)
let run_pipeline_staged t d ~source ~id ~arrival ~entry_done bits =
  let si = d.sg in
  Compilecore.reset si;
  Compilecore.set_ingress_port si
    (match source with External p -> p | Generator -> generator_port);
  t.cur_id := id;
  t.cur_entry := entry_done;
  try
    let ps = t.ss_parser in
    Counter.incr ps.ss_seen;
    if !(t.faults_active) then fault_drop ps;
    Compilecore.run_parser si bits;
    let accepted = Compilecore.parse_accepted si in
    (match !(t.taps) with
    | Some tp -> tp.tp_parse (Compilecore.parse_outcome si)
    | None -> ());
    Trace.record t.trace ~packet_id:id
      ~time_ns:(entry_done +. ps.ss_enter_ns)
      ~component:ps.ss_name
      (if accepted then "accept" else "reject");
    if !(t.cur_sampled) then begin
      let t0 = entry_done +. ps.ss_enter_ns in
      span_child t ~kind:ps.ss_span_kind ~name:ps.ss_name_id ~t0
        ~t1:(t0 +. ps.ss_latency_ns) ~bytes:0
        ~flags:(if accepted then 0 else Span.flag_drop)
        ~note:(if accepted then t.note_accept else t.note_reject)
    end;
    if !(t.faults_active) then fault_corrupt_staged si ps;
    if not accepted then begin
      Counter.incr t.c_drop_pipeline;
      Dropped_pipeline ("parser:" ^ Stdmeta.error_name (Compilecore.parse_error si))
    end
    else begin
      Compilecore.run_ingress si;
      if Compilecore.dropped si then begin
        Counter.incr t.c_drop_pipeline;
        Dropped_pipeline "ingress"
      end
      else begin
        let es = t.ss_egress in
        Counter.incr es.ss_seen;
        Trace.record t.trace ~packet_id:id
          ~time_ns:(entry_done +. es.ss_enter_ns)
          ~component:es.ss_name "enter";
        if !(t.cur_sampled) then begin
          let t0 = entry_done +. es.ss_enter_ns in
          span_child t ~kind:es.ss_span_kind ~name:es.ss_name_id ~t0
            ~t1:(t0 +. es.ss_latency_ns) ~bytes:0 ~flags:0 ~note:t.note_enter
        end;
        if !(t.faults_active) then fault_at_staged si es;
        Compilecore.run_egress si;
        if Compilecore.dropped si then begin
          Counter.incr t.c_drop_pipeline;
          Dropped_pipeline "egress"
        end
        else begin
          let ds = t.ss_deparser in
          Counter.incr ds.ss_seen;
          Trace.record t.trace ~packet_id:id
            ~time_ns:(entry_done +. ds.ss_enter_ns)
            ~component:ds.ss_name "emit";
          if !(t.cur_sampled) then begin
            let t0 = entry_done +. ds.ss_enter_ns in
            span_child t ~kind:ds.ss_span_kind ~name:ds.ss_name_id ~t0
              ~t1:(t0 +. ds.ss_latency_ns) ~bytes:0 ~flags:0 ~note:t.note_emit
          end;
          if !(t.faults_active) then fault_at_staged si ds;
          let out_bits = Compilecore.deparse si in
          let port = Compilecore.egress_port si in
          emit t ~source ~arrival ~out_time:(entry_done +. t.latency_ns) ~port out_bits
        end
      end
    end
  with Lost stage ->
    Counter.incr t.c_drop_fault;
    Trace.record t.trace ~packet_id:id ~severity:Trace.Warn ~time_ns:entry_done
      ~component:stage "fault-drop";
    Lost_in_stage stage

let run_pipeline t ~source ~id ~arrival ~entry_done bits =
  match t.staged with
  | Some d -> run_pipeline_staged t d ~source ~id ~arrival ~entry_done bits
  | None -> run_pipeline_tree t ~source ~id ~arrival ~entry_done bits

let inject t ~source ?at_ns bits =
  let arrival =
    match at_ns with
    | Some a -> if a > t.now then a else t.now
    (* no timestamp: arrive back-to-back, the moment the pipeline can take it *)
    | None -> if t.pipe_free > t.now then t.pipe_free else t.now
  in
  t.now <- arrival;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.cur_id := id;
  let sampled = Span.sample t.spanstore in
  t.cur_sampled := sampled;
  if sampled then t.cur_root := Span.next_id t.spanstore;
  let bytes = (Bitstring.length bits + 7) / 8 in
  (match source with
  | External _ -> Counter.incr t.c_rx_external
  | Generator -> Counter.incr t.c_rx_generator);
  Trace.record t.trace ~packet_id:id ~time_ns:arrival ~component:"rx"
    (match source with External _ -> "external" | Generator -> "generator");
  ignore (Ringq.drop_leq t.rx_q arrival);
  if Ringq.is_full t.rx_q then begin
    Counter.incr t.c_drop_queue;
    Trace.record t.trace ~packet_id:id ~severity:Trace.Warn ~time_ns:arrival ~component:"rxq"
      "tail-drop";
    if sampled then begin
      span_child t ~kind:Span.Rx_queue ~name:t.n_rx_queue ~t0:arrival ~t1:arrival ~bytes:0
        ~flags:Span.flag_drop ~note:t.note_tail_drop;
      Span.record t.spanstore ~id:!(t.cur_root) ~parent:Span.no_parent ~packet:id
        ~kind:Span.Packet ~name:t.n_packet ~t0:arrival ~t1:arrival ~bytes
        ~flags:Span.flag_drop ~note:t.note_tail_drop
    end;
    (match !(t.taps) with Some tp -> tp.tp_disposition Dropped_queue | None -> ());
    (id, Dropped_queue)
  end
  else begin
    let bus = t.config.Config.bus_bytes_per_cycle in
    let ser_cycles = (bytes + bus - 1) / bus in
    let start = if t.pipe_free > arrival then t.pipe_free else arrival in
    let entry_done = start +. (float_of_int ser_cycles *. t.cycle_ns) in
    t.pipe_free <- entry_done;
    ignore (Ringq.push t.rx_q entry_done);
    Histogram.add t.h_rxq_wait (start -. arrival);
    if sampled then
      span_child t ~kind:Span.Rx_queue ~name:t.n_rx_queue ~t0:arrival ~t1:entry_done ~bytes:0
        ~flags:0 ~note:Span.no_note;
    (* pipeline drops end the packet at pipeline exit; [emit] pushes this
       out to the wire timestamp when the packet reaches one *)
    t.cur_end := entry_done +. t.latency_ns;
    let disposition = run_pipeline t ~source ~id ~arrival ~entry_done bits in
    if sampled then begin
      let flags, note =
        match disposition with
        | Emitted _ -> (0, Span.no_note)
        | Dropped_pipeline reason -> (Span.flag_drop, Span.intern t.spanstore reason)
        | Lost_in_stage stage ->
            (Span.flag_drop lor Span.flag_fault, Span.intern t.spanstore stage)
        | Dropped_queue -> assert false
      in
      Span.record t.spanstore ~id:!(t.cur_root) ~parent:Span.no_parent ~packet:id
        ~kind:Span.Packet ~name:t.n_packet ~t0:arrival ~t1:!(t.cur_end) ~bytes ~flags ~note
    end;
    (match !(t.taps) with Some tp -> tp.tp_disposition disposition | None -> ());
    (id, disposition)
  end

let advance_to_ns t ns =
  if ns > t.now then t.now <- ns;
  ignore (Ringq.drop_leq t.rx_q t.now);
  Array.iter (fun q -> ignore (Ringq.drop_leq q t.now)) t.tx_q

let quiesce t =
  let horizon = Array.fold_left (fun acc f -> if f > acc then f else acc) t.pipe_free t.tx_free in
  advance_to_ns t horizon

let inject_batch t ~source ?(reset_registers = false) pkts =
  let n = Array.length pkts in
  let out = Array.make n Dropped_queue in
  for i = 0 to n - 1 do
    if reset_registers then Regstate.reset t.regs;
    let _, d = inject t ~source pkts.(i) in
    out.(i) <- d
  done;
  quiesce t;
  out

let outputs t =
  let outs = List.rev t.outs_rev in
  t.outs_rev <- [];
  outs

let status t =
  ignore (Ringq.drop_leq t.rx_q t.now);
  Array.iter (fun q -> ignore (Ringq.drop_leq q t.now)) t.tx_q;
  let depth = Array.fold_left (fun acc q -> acc + Ringq.length q) (Ringq.length t.rx_q) t.tx_q in
  let tx_drops =
    Array.fold_left (fun acc c -> Int64.add acc (Counter.get c)) 0L t.c_txq_drop
  in
  {
    st_time_ns = t.now;
    st_packets_in = Int64.add (Counter.get t.c_rx_external) (Counter.get t.c_rx_generator);
    st_packets_out = Counter.get t.c_emitted;
    st_queue_drops = Int64.add (Counter.get t.c_drop_queue) tx_drops;
    st_pipeline_drops = Counter.get t.c_drop_pipeline;
    st_queue_depth = depth;
    st_stage_seen =
      Array.to_list (Array.map (fun ss -> (ss.ss_name, Counter.get ss.ss_seen)) t.stages);
  }
