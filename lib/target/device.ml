module Ast = P4ir.Ast
module Env = P4ir.Env
module Exec = P4ir.Exec
module Parse = P4ir.Parse
module Deparse = P4ir.Deparse
module Value = P4ir.Value
module Runtime = P4ir.Runtime
module Regstate = P4ir.Regstate
module Stdmeta = P4ir.Stdmeta
module Counter = Stats.Counter
module Bitstring = Bitutil.Bitstring

type source = External of int | Generator

type output = {
  o_port : int;
  o_bits : Bitstring.t;
  o_source : source;
  o_in_time_ns : float;
  o_out_time_ns : float;
  o_wire_time_ns : float;
}

type disposition =
  | Emitted of output
  | Dropped_pipeline of string
  | Dropped_queue
  | Lost_in_stage of string

type status = {
  st_time_ns : float;
  st_packets_in : int64;
  st_packets_out : int64;
  st_queue_drops : int64;
  st_pipeline_drops : int64;
  st_queue_depth : int;
  st_stage_seen : (string * int64) list;
}

(* The internal generator sits after the input interfaces; its packets carry
   a non-physical ingress port (one below the 511 drop port). *)
let generator_port = 510

exception Lost of string

(* Per-stage runtime state. Counters are resolved once at device creation so
   the hot path never formats a counter name. *)
type stage_state = {
  ss_name : string;
  ss_seen : Counter.t;
  ss_hit : Counter.t option;
  ss_miss : Counter.t option;
  ss_enter_ns : float;  (* latency from pipeline entry to this stage, for trace stamps *)
  mutable ss_fault : Fault.t option;
  mutable ss_fault_hits : int;
}

type t = {
  pipeline : Pipeline.t;
  config : Config.t;
  runtime : Runtime.t;
  regs : Regstate.t;
  counters : Counter.Set.t;
  trace : Trace.t;
  env : Env.t;
  ctx : Exec.ctx;
  cycle_ns : float;
  latency_ns : float;
  stages : stage_state array;
  ss_parser : stage_state;
  ss_egress : stage_state;
  ss_deparser : stage_state;
  by_stage : (string, stage_state) Hashtbl.t;
  faults_active : bool ref;
  cur_id : int ref;
  cur_entry : float ref;
  mutable now : float;
  mutable pipe_free : float;  (* when the bus finishes streaming the last packet in *)
  rx_q : Ringq.t;
  tx_q : Ringq.t array;
  tx_free : float array;
  broken : bool array;
  mutable outs_rev : output list;
  mutable check_tap : output -> unit;
  mutable next_id : int;
  c_rx_external : Counter.t;
  c_rx_generator : Counter.t;
  c_drop_queue : Counter.t;
  c_drop_pipeline : Counter.t;
  c_drop_fault : Counter.t;
  c_emitted : Counter.t;
  c_assert_failed : Counter.t;
  c_txq_drop : Counter.t array;
  prog_counters : (string, Counter.t) Hashtbl.t;
}

let corrupt env h f mask =
  let cur = Env.get_field env h f in
  Env.set_field env h f (Value.logxor cur (Value.make ~width:(Value.width cur) mask))

(* Drop-class faults at stage entry; raising [Lost] unwinds the traversal. *)
let fault_drop ss =
  match ss.ss_fault with
  | None | Some (Fault.Corrupt_field _) | Some Fault.Stuck_miss -> ()
  | Some Fault.Drop_at_stage -> raise (Lost ss.ss_name)
  | Some (Fault.Intermittent_drop n) ->
      ss.ss_fault_hits <- ss.ss_fault_hits + 1;
      if n > 0 && ss.ss_fault_hits mod n = 0 then raise (Lost ss.ss_name)

let fault_corrupt env ss =
  match ss.ss_fault with
  | Some (Fault.Corrupt_field (h, f, mask)) -> corrupt env h f mask
  | _ -> ()

let fault_at env ss =
  fault_drop ss;
  fault_corrupt env ss

let create (pipeline : Pipeline.t) =
  let config = pipeline.Pipeline.config in
  let program = pipeline.Pipeline.program in
  let cycle_ns = Config.cycle_ns config in
  let counters = Counter.Set.create () in
  let trace = Trace.create () in
  let runtime = Runtime.create () in
  let env = Env.create program in
  let regs = Regstate.create program in
  let offset = ref 0 in
  let stages =
    List.map
      (fun (s : Pipeline.stage) ->
        let enter_ns = float_of_int !offset *. cycle_ns in
        offset := !offset + s.Pipeline.s_latency_cycles;
        let counter suffix = Counter.Set.find counters ("stage/" ^ s.Pipeline.s_name ^ suffix) in
        let hit, miss =
          match s.Pipeline.s_kind with
          | Pipeline.Match_action _ -> (Some (counter "/hit"), Some (counter "/miss"))
          | Pipeline.Parser_engine | Pipeline.Egress_engine | Pipeline.Deparser_engine ->
              (None, None)
        in
        {
          ss_name = s.Pipeline.s_name;
          ss_seen = counter "/seen";
          ss_hit = hit;
          ss_miss = miss;
          ss_enter_ns = enter_ns;
          ss_fault = None;
          ss_fault_hits = 0;
        })
      pipeline.Pipeline.stages
    |> Array.of_list
  in
  let by_stage = Hashtbl.create 8 in
  Array.iter (fun ss -> Hashtbl.replace by_stage ss.ss_name ss) stages;
  let by_table = Hashtbl.create 8 in
  List.iteri
    (fun i (s : Pipeline.stage) ->
      match s.Pipeline.s_kind with
      | Pipeline.Match_action tbl -> Hashtbl.replace by_table tbl stages.(i)
      | _ -> ())
    pipeline.Pipeline.stages;
  let find_stage name =
    match Hashtbl.find_opt by_stage name with
    | Some ss -> ss
    | None -> invalid_arg ("Device.create: pipeline has no " ^ name ^ " stage")
  in
  let faults_active = ref false in
  let cur_id = ref 0 in
  let cur_entry = ref 0.0 in
  let on_table ~table ~hit ~action =
    match Hashtbl.find_opt by_table table with
    | None -> ()
    | Some ss ->
        Counter.incr ss.ss_seen;
        (match (if hit then ss.ss_hit else ss.ss_miss) with
        | Some c -> Counter.incr c
        | None -> ());
        Trace.record trace ~packet_id:!cur_id
          ~time_ns:(!cur_entry +. ss.ss_enter_ns)
          ~component:ss.ss_name
          (if hit then action else "miss");
        if !faults_active then fault_at env ss
  in
  let prog_counters = Hashtbl.create 8 in
  let on_count name =
    let c =
      match Hashtbl.find_opt prog_counters name with
      | Some c -> c
      | None ->
          let c = Counter.Set.find counters ("prog/" ^ name) in
          Hashtbl.add prog_counters name c;
          c
    in
    Counter.incr c
  in
  let c_assert_failed = Counter.Set.find counters "assert/failed" in
  let on_assert ok _msg = if not ok then Counter.incr c_assert_failed in
  let base_hooks = pipeline.Pipeline.exec_hooks in
  let table_always_miss tbl =
    base_hooks.Exec.table_always_miss tbl
    || !faults_active
       &&
       match Hashtbl.find_opt by_table tbl with
       | Some { ss_fault = Some Fault.Stuck_miss; _ } -> true
       | _ -> false
  in
  let hooks = { base_hooks with Exec.table_always_miss } in
  let ctx = Exec.make_ctx ~hooks ~on_count ~on_assert ~on_table ~regs ~env ~runtime () in
  {
    pipeline;
    config;
    runtime;
    regs;
    counters;
    trace;
    env;
    ctx;
    cycle_ns;
    latency_ns = float_of_int (Pipeline.total_latency_cycles pipeline) *. cycle_ns;
    stages;
    ss_parser = find_stage "parser";
    ss_egress = find_stage "egress";
    ss_deparser = find_stage "deparser";
    by_stage;
    faults_active;
    cur_id;
    cur_entry;
    now = 0.0;
    pipe_free = 0.0;
    rx_q = Ringq.create config.Config.rx_queue_packets;
    tx_q = Array.init config.Config.ports (fun _ -> Ringq.create config.Config.tx_queue_packets);
    tx_free = Array.make config.Config.ports 0.0;
    broken = Array.make config.Config.ports false;
    outs_rev = [];
    check_tap = ignore;
    next_id = 0;
    c_rx_external = Counter.Set.find counters "rx/external";
    c_rx_generator = Counter.Set.find counters "rx/generator";
    c_drop_queue = Counter.Set.find counters "drop/queue";
    c_drop_pipeline = Counter.Set.find counters "drop/pipeline";
    c_drop_fault = Counter.Set.find counters "drop/fault";
    c_emitted = Counter.Set.find counters "tx/emitted";
    c_assert_failed;
    c_txq_drop =
      Array.init config.Config.ports (fun p ->
          Counter.Set.find counters (Printf.sprintf "drop/txq%d" p));
    prog_counters;
  }

let pipeline t = t.pipeline
let config t = t.config
let runtime t = t.runtime
let registers t = t.regs
let counters t = t.counters
let trace t = t.trace
let now_ns t = t.now

let set_check_tap t f = t.check_tap <- f

let set_port_broken t port broken =
  if port < 0 || port >= t.config.Config.ports then
    invalid_arg (Printf.sprintf "Device.set_port_broken: no port %d" port);
  t.broken.(port) <- broken

let inject_fault t ~stage fault =
  match Hashtbl.find_opt t.by_stage stage with
  | None -> invalid_arg ("Device.inject_fault: unknown stage " ^ stage)
  | Some ss ->
      ss.ss_fault <- Some fault;
      ss.ss_fault_hits <- 0;
      t.faults_active := true

let clear_faults t =
  Array.iter
    (fun ss ->
      ss.ss_fault <- None;
      ss.ss_fault_hits <- 0)
    t.stages;
  t.faults_active := false

(* Emission: the check tap observes everything that left the pipeline; only
   packets bound for a healthy physical port with TX buffer room go on to
   the wire (and into [outputs]). *)
let emit t ~source ~arrival ~out_time ~port bits =
  Counter.incr t.c_emitted;
  let out =
    {
      o_port = port;
      o_bits = bits;
      o_source = source;
      o_in_time_ns = arrival;
      o_out_time_ns = out_time;
      o_wire_time_ns = out_time;
    }
  in
  t.check_tap out;
  if port >= 0 && port < t.config.Config.ports && not t.broken.(port) then begin
    let q = t.tx_q.(port) in
    ignore (Ringq.drop_leq q out_time);
    if Ringq.is_full q then Counter.incr t.c_txq_drop.(port)
    else begin
      let bytes = (Bitstring.length bits + 7) / 8 in
      let ser = float_of_int bytes /. (Config.port_rate_gbps t.config /. 8.0) in
      let start = if t.tx_free.(port) > out_time then t.tx_free.(port) else out_time in
      let wire = start +. ser in
      t.tx_free.(port) <- wire;
      ignore (Ringq.push q wire);
      t.outs_rev <- { out with o_wire_time_ns = wire } :: t.outs_rev
    end
  end;
  Emitted out

let run_pipeline t ~source ~id ~arrival ~entry_done bits =
  let env = t.env and ctx = t.ctx in
  let program = t.pipeline.Pipeline.program in
  Env.reset env;
  Env.set_std env Ast.Ingress_port
    (Value.of_int ~width:9 (match source with External p -> p | Generator -> generator_port));
  t.cur_id := id;
  t.cur_entry := entry_done;
  try
    let ps = t.ss_parser in
    Counter.incr ps.ss_seen;
    if !(t.faults_active) then fault_drop ps;
    let outcome = Parse.run ~hooks:t.pipeline.Pipeline.parse_hooks ctx bits in
    Trace.record t.trace ~packet_id:id
      ~time_ns:(entry_done +. ps.ss_enter_ns)
      ~component:ps.ss_name
      (if outcome.Parse.accepted then "accept" else "reject");
    if !(t.faults_active) then fault_corrupt env ps;
    if not outcome.Parse.accepted then begin
      Counter.incr t.c_drop_pipeline;
      Dropped_pipeline ("parser:" ^ Stdmeta.error_name outcome.Parse.error)
    end
    else begin
      Exec.set_phase ctx Exec.Ingress;
      Exec.run_stmts ctx program.Ast.p_ingress;
      if Env.dropped env then begin
        Counter.incr t.c_drop_pipeline;
        Dropped_pipeline "ingress"
      end
      else begin
        let es = t.ss_egress in
        Counter.incr es.ss_seen;
        Trace.record t.trace ~packet_id:id
          ~time_ns:(entry_done +. es.ss_enter_ns)
          ~component:es.ss_name "enter";
        if !(t.faults_active) then fault_at env es;
        Exec.set_phase ctx Exec.Egress;
        Exec.run_stmts ctx program.Ast.p_egress;
        if Env.dropped env then begin
          Counter.incr t.c_drop_pipeline;
          Dropped_pipeline "egress"
        end
        else begin
          let ds = t.ss_deparser in
          Counter.incr ds.ss_seen;
          Trace.record t.trace ~packet_id:id
            ~time_ns:(entry_done +. ds.ss_enter_ns)
            ~component:ds.ss_name "emit";
          if !(t.faults_active) then fault_at env ds;
          let out_bits =
            Deparse.run ~update_ipv4_checksum:t.pipeline.Pipeline.update_ipv4_checksum env
          in
          let port = Value.to_int (Env.get_std env Ast.Egress_spec) in
          emit t ~source ~arrival ~out_time:(entry_done +. t.latency_ns) ~port out_bits
        end
      end
    end
  with Lost stage ->
    Counter.incr t.c_drop_fault;
    Trace.record t.trace ~packet_id:id ~severity:Trace.Warn ~time_ns:entry_done
      ~component:stage "fault-drop";
    Lost_in_stage stage

let inject t ~source ?at_ns bits =
  let arrival =
    match at_ns with
    | Some a -> if a > t.now then a else t.now
    (* no timestamp: arrive back-to-back, the moment the pipeline can take it *)
    | None -> if t.pipe_free > t.now then t.pipe_free else t.now
  in
  t.now <- arrival;
  let id = t.next_id in
  t.next_id <- id + 1;
  (match source with
  | External _ -> Counter.incr t.c_rx_external
  | Generator -> Counter.incr t.c_rx_generator);
  Trace.record t.trace ~packet_id:id ~time_ns:arrival ~component:"rx"
    (match source with External _ -> "external" | Generator -> "generator");
  ignore (Ringq.drop_leq t.rx_q arrival);
  if Ringq.is_full t.rx_q then begin
    Counter.incr t.c_drop_queue;
    Trace.record t.trace ~packet_id:id ~severity:Trace.Warn ~time_ns:arrival ~component:"rxq"
      "tail-drop";
    (id, Dropped_queue)
  end
  else begin
    let bytes = (Bitstring.length bits + 7) / 8 in
    let bus = t.config.Config.bus_bytes_per_cycle in
    let ser_cycles = (bytes + bus - 1) / bus in
    let start = if t.pipe_free > arrival then t.pipe_free else arrival in
    let entry_done = start +. (float_of_int ser_cycles *. t.cycle_ns) in
    t.pipe_free <- entry_done;
    ignore (Ringq.push t.rx_q entry_done);
    (id, run_pipeline t ~source ~id ~arrival ~entry_done bits)
  end

let advance_to_ns t ns =
  if ns > t.now then t.now <- ns;
  ignore (Ringq.drop_leq t.rx_q t.now);
  Array.iter (fun q -> ignore (Ringq.drop_leq q t.now)) t.tx_q

let outputs t =
  let outs = List.rev t.outs_rev in
  t.outs_rev <- [];
  outs

let status t =
  ignore (Ringq.drop_leq t.rx_q t.now);
  Array.iter (fun q -> ignore (Ringq.drop_leq q t.now)) t.tx_q;
  let depth = Array.fold_left (fun acc q -> acc + Ringq.length q) (Ringq.length t.rx_q) t.tx_q in
  let tx_drops =
    Array.fold_left (fun acc c -> Int64.add acc (Counter.get c)) 0L t.c_txq_drop
  in
  {
    st_time_ns = t.now;
    st_packets_in = Int64.add (Counter.get t.c_rx_external) (Counter.get t.c_rx_generator);
    st_packets_out = Counter.get t.c_emitted;
    st_queue_drops = Int64.add (Counter.get t.c_drop_queue) tx_drops;
    st_pipeline_drops = Counter.get t.c_drop_pipeline;
    st_queue_depth = depth;
    st_stage_seen =
      Array.to_list (Array.map (fun ss -> (ss.ss_name, Counter.get ss.ss_seen)) t.stages);
  }
