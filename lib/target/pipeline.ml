type stage_kind =
  | Parser_engine
  | Match_action of string
  | Egress_engine
  | Deparser_engine

type stage = {
  s_name : string;
  s_kind : stage_kind;
  s_latency_cycles : int;
  s_resources : Resource.t;
}

type t = {
  program : P4ir.Ast.program;
  config : Config.t;
  parse_hooks : P4ir.Parse.hooks;
  exec_hooks : P4ir.Exec.hooks;
  update_ipv4_checksum : bool;
  stages : stage list;
  resources : Resource.t;
  staged : P4ir.Compilecore.t Lazy.t;
}

let make ~program ~config ~parse_hooks ~exec_hooks ~update_ipv4_checksum ~stages ~resources =
  {
    program;
    config;
    parse_hooks;
    exec_hooks;
    update_ipv4_checksum;
    stages;
    resources;
    staged =
      lazy
        (P4ir.Compilecore.compile ~exec_hooks ~parse_hooks ~update_ipv4_checksum program);
  }

let stage_names t = List.map (fun s -> s.s_name) t.stages

let total_latency_cycles t =
  List.fold_left (fun acc s -> acc + s.s_latency_cycles) 0 t.stages

let pp ppf t =
  Format.fprintf ppf "@[<v>pipeline %s on %s (%d cycles, %.1f ns):@,"
    t.program.P4ir.Ast.p_name t.config.Config.name (total_latency_cycles t)
    (float_of_int (total_latency_cycles t) *. Config.cycle_ns t.config);
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-16s %2d cycles  %a@," s.s_name s.s_latency_cycles Resource.pp
        s.s_resources)
    t.stages;
  Format.fprintf ppf "total: %a@]" Resource.pp t.resources
