(** An instantiated {!Pipeline}: runtime table state, persistent registers,
    interface queues, counters, a bounded event trace, and a virtual clock.

    The clock is event-driven — there is no per-cycle ticking anywhere.
    Each packet's pipeline-exit time is computed analytically at injection:

      entry  = max(arrival, pipeline_free) + ceil(bytes / bus) * cycle_ns
      exit   = entry + total_latency_cycles * cycle_ns
      wire   = max(exit, port_free) + bytes * 8 / port_rate_gbps

    so {!advance_to_ns} merely drains queue entries whose deadline has
    passed, in O(queued packets) however far time jumps.

    Structural fidelity to the NetDebug architecture: injection happens
    after the input interfaces ({!source} records whether a packet came
    from a physical port or the internal generator), the check tap
    observes every emission before the output interfaces (including
    egress to non-physical or broken ports), and {!outputs} returns only
    what actually reached a wire. *)

type source = External of int | Generator

type output = {
  o_port : int;  (** egress_spec as the pipeline computed it *)
  o_bits : Bitutil.Bitstring.t;
  o_source : source;
  o_in_time_ns : float;  (** arrival at the device *)
  o_out_time_ns : float;  (** pipeline exit — when the check tap sees it *)
  o_wire_time_ns : float;  (** last bit on the wire, after TX serialization *)
}

type disposition =
  | Emitted of output  (** reached the check point (not necessarily a wire) *)
  | Dropped_pipeline of string  (** program semantics: "parser:<err>", "ingress", "egress" *)
  | Dropped_queue  (** tail-dropped at the full input buffer *)
  | Lost_in_stage of string  (** swallowed by an injected fault *)

type status = {
  st_time_ns : float;
  st_packets_in : int64;
  st_packets_out : int64;  (** emissions seen at the check point *)
  st_queue_drops : int64;  (** input-buffer and TX tail drops *)
  st_pipeline_drops : int64;
  st_queue_depth : int;  (** packets currently buffered, all queues *)
  st_stage_seen : (string * int64) list;
}

type t

val create : ?engine:P4ir.Compilecore.engine -> ?update_clock:(unit -> int64) -> Pipeline.t -> t
(** [engine] selects the executor for the pipeline traversal (default
    {!P4ir.Compilecore.default_engine}): [`Staged] runs the pipeline's
    compiled closure core (quirk hooks baked in, table matchers
    specialized), [`Tree] walks the AST as before. Timing, metrics,
    traces, spans, taps and fault injection behave identically in both.

    Every table exports a [table/<name>/entries] gauge and a
    [table/<name>/update_ns] histogram of control-plane update latency.
    [update_clock] supplies the nanosecond timestamps for the latter
    (e.g. a monotonic wall clock); without it updates are still counted
    but their durations read 0, so fully deterministic runs stay
    deterministic. *)

val pipeline : t -> Pipeline.t

val config : t -> Config.t

val runtime : t -> P4ir.Runtime.t
(** Table state; install entries here. *)

val registers : t -> P4ir.Regstate.t
(** Persistent register state (survives across packets). *)

val counters : t -> Stats.Counter.Set.t
(** "rx/external", "rx/generator", "drop/queue", "drop/txq<p>",
    "stage/<name>/seen" (+ "/hit", "/miss" on match-action stages), … *)

val metrics : t -> Telemetry.Registry.t
(** The registry wrapping {!counters}, plus gauges (queue depths, stage
    latencies) and histograms ("pipeline/latency_ns", "rxq/wait_ns",
    "tx/port<p>/serialization_ns"). Single registration point — render it
    with {!Telemetry.Export.prometheus}. *)

val spans : t -> Telemetry.Span.t
(** Per-packet span store. Each sampled traversal becomes a tree rooted
    at a ["packet"] span with ["rx_queue"], ["parse"],
    ["stage[i]:<name>"], ["deparse"] and ["tx[port]"] children, stamped
    in virtual time. *)

val set_span_sampling : t -> int -> unit
(** Record full span trees for 1-in-[n] injected packets (default
    1-in-64; the first packet after a change is always sampled). [n <= 0]
    disables spans entirely. Metrics are unaffected. *)

val trace : t -> Trace.t

val now_ns : t -> float

val inject : t -> source:source -> ?at_ns:float -> Bitutil.Bitstring.t -> int * disposition
(** Run one packet through the device; returns its trace id and fate.
    [at_ns] below the current clock is clamped to it; when omitted the
    packet arrives back-to-back, i.e. the moment the pipeline can accept
    it (the clock advances, nothing queues). *)

val advance_to_ns : t -> float -> unit
(** Move the clock forward (never backward) and drain departed queue
    entries. Idempotent at a fixed timestamp. *)

val inject_batch :
  t ->
  source:source ->
  ?reset_registers:bool ->
  Bitutil.Bitstring.t array ->
  disposition array
(** Drive a whole vector batch through the pipeline back-to-back with a
    single {!quiesce} at the end instead of one per packet: the batched
    hot path of the fuzz oracle and the soak loop. Each packet arrives
    the moment the pipeline can accept it (as {!inject} with [at_ns]
    omitted), so the clock self-advances and nothing queues.
    [reset_registers] (default false) zeroes the persistent register
    state before each packet, giving every vector the isolated-state
    semantics of a fresh device at batch speed. Results land at their
    input index. Check taps, coverage taps, counters and traces fire
    exactly as they do for packet-at-a-time injection. *)

val quiesce : t -> unit
(** Advance the clock past every in-flight packet (pipeline entry bus and
    all TX serializers), draining the interface queues. Without this, a
    caller that repeatedly injects at the current clock — e.g. thousands
    of single-shot generator runs — never moves time forward, so the RX
    ring retains every completed entry and eventually tail-drops. *)

val outputs : t -> output list
(** Packets that reached a wire since the last call, oldest first, with
    [o_wire_time_ns] stamped. Drains. *)

val set_check_tap : t -> (output -> unit) -> unit
(** Observer between pipeline exit and the output interfaces. *)

(** Coverage taps: behavioural-event observers for coverage-guided testing
    ({!Fuzz}). [tp_parse] fires once per packet with the parser outcome
    (visited states, accept/reject), [tp_table] on every table apply with
    the hit/miss and chosen action, [tp_disposition] with the packet's
    final fate (including queue drops). *)
type taps = {
  tp_parse : P4ir.Parse.outcome -> unit;
  tp_table : table:string -> hit:bool -> action:string -> unit;
  tp_disposition : disposition -> unit;
}

val set_taps : t -> taps option -> unit
(** Install (or with [None] remove) the coverage taps. Unset taps cost the
    hot path one load-and-branch per event. *)

val set_port_broken : t -> int -> bool -> unit
(** A broken port emits nothing externally; the check tap still sees the
    traffic — the asymmetry NetDebug's self-check exploits. *)

val inject_fault : t -> stage:string -> Fault.t -> unit
(** Install a fault at a named stage (replacing any previous one there).
    @raise Invalid_argument for a stage the pipeline does not have. *)

val clear_faults : t -> unit

val faults : t -> (string * Fault.t) list
(** Currently injected faults as (stage, fault), in pipeline stage order.
    What a caller needs to carry a device's seeded perturbations onto a
    replica (see [Harness.replicate ?faults]). *)

val status : t -> status
