(** The compiled artifact: the program as the hardware runs it, the quirk
    hooks describing where the compiler deviates from the P4 specification,
    and the synthesized stage structure with its latency and resource cost.

    A pipeline is immutable; {!Device.create} instantiates it with runtime
    state (tables, registers, queues, a virtual clock). *)

type stage_kind =
  | Parser_engine
  | Match_action of string  (** table name *)
  | Egress_engine
  | Deparser_engine

type stage = {
  s_name : string;  (** "parser", "ma:<table>", "egress", "deparser" *)
  s_kind : stage_kind;
  s_latency_cycles : int;
  s_resources : Resource.t;
}

type t = {
  program : P4ir.Ast.program;  (** post-transform: what the hardware runs *)
  config : Config.t;
  parse_hooks : P4ir.Parse.hooks;
  exec_hooks : P4ir.Exec.hooks;
  update_ipv4_checksum : bool;
  stages : stage list;  (** in traversal order *)
  resources : Resource.t;  (** whole-design total, including overheads *)
  staged : P4ir.Compilecore.t Lazy.t;
      (** the program staged to closures under this pipeline's quirk hooks
          — forced on first use by a staged-engine {!Device}, shared by
          every device instantiated from this pipeline *)
}

val make :
  program:P4ir.Ast.program ->
  config:Config.t ->
  parse_hooks:P4ir.Parse.hooks ->
  exec_hooks:P4ir.Exec.hooks ->
  update_ipv4_checksum:bool ->
  stages:stage list ->
  resources:Resource.t ->
  t

val stage_names : t -> string list

val total_latency_cycles : t -> int

val pp : Format.formatter -> t -> unit
