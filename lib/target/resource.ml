type t = { luts : int; ffs : int; brams : int; tcam_bits : int }

let make ?(luts = 0) ?(ffs = 0) ?(brams = 0) ?(tcam_bits = 0) () =
  { luts; ffs; brams; tcam_bits }

let zero = make ()

let add a b =
  {
    luts = a.luts + b.luts;
    ffs = a.ffs + b.ffs;
    brams = a.brams + b.brams;
    tcam_bits = a.tcam_bits + b.tcam_bits;
  }

let sum l = List.fold_left add zero l

let fits r (c : Config.t) =
  r.luts <= c.Config.luts && r.ffs <= c.Config.ffs && r.brams <= c.Config.brams
  && r.tcam_bits <= c.Config.tcam_bits

let pct used budget =
  if budget <= 0 then if used = 0 then 0.0 else infinity
  else 100.0 *. float_of_int used /. float_of_int budget

let utilization r (c : Config.t) =
  [
    ("LUT", pct r.luts c.Config.luts);
    ("FF", pct r.ffs c.Config.ffs);
    ("BRAM", pct r.brams c.Config.brams);
    ("TCAM", pct r.tcam_bits c.Config.tcam_bits);
  ]

let pp ppf r =
  Format.fprintf ppf "%d LUTs, %d FFs, %d BRAMs, %d TCAM bits" r.luts r.ffs r.brams
    r.tcam_bits
