(** Hardware fault models injectable into a running {!Device} at a named
    stage — the ground truth NetDebug's localization use-case recovers. *)

type t =
  | Stuck_miss
      (** lookup memory returns no match for any key: the table falls
          through to its default action on every packet *)
  | Drop_at_stage  (** the stage silently swallows every packet *)
  | Intermittent_drop of int
      (** every [n]-th packet traversing the stage is swallowed *)
  | Corrupt_field of string * string * int64
      (** [(header, field, mask)]: the field is XORed with [mask] as the
          packet enters the stage *)

val pp : Format.formatter -> t -> unit
