type t = {
  name : string;
  ports : int;
  clock_mhz : float;
  bus_bytes_per_cycle : int;
  max_parser_states : int;
  max_tables : int;
  max_table_entries : int;
  max_key_bits : int;
  luts : int;
  ffs : int;
  brams : int;
  tcam_bits : int;
  rx_queue_packets : int;
  tx_queue_packets : int;
}

let netfpga_sume =
  {
    name = "netfpga-sume";
    ports = 4;
    clock_mhz = 200.0;
    bus_bytes_per_cycle = 32;
    max_parser_states = 32;
    max_tables = 16;
    max_table_entries = 16384;
    max_key_bits = 256;
    luts = 433_200;
    ffs = 866_400;
    brams = 1_470;
    tcam_bits = 1_000_000;
    rx_queue_packets = 1024;
    tx_queue_packets = 128;
  }

let small_target =
  {
    name = "small-target";
    ports = 2;
    clock_mhz = 125.0;
    bus_bytes_per_cycle = 8;
    max_parser_states = 8;
    max_tables = 4;
    max_table_entries = 16;
    max_key_bits = 64;
    luts = 53_200;
    ffs = 106_400;
    brams = 140;
    tcam_bits = 50_000;
    rx_queue_packets = 32;
    tx_queue_packets = 64;
  }

let cycle_ns t = 1000.0 /. t.clock_mhz

let line_rate_gbps t = float_of_int (t.bus_bytes_per_cycle * 8) /. cycle_ns t

let port_rate_gbps t = line_rate_gbps t /. float_of_int t.ports

let pp ppf t =
  Format.fprintf ppf
    "@[<v>target %s: %d ports, %gB bus @@ %g MHz (%.1f Gb/s aggregate, %.1f Gb/s/port)@,\
     limits: %d parser states, %d tables, %d entries/table, %d key bits@,\
     budget: %d LUTs, %d FFs, %d BRAMs, %d TCAM bits@]"
    t.name t.ports (float_of_int t.bus_bytes_per_cycle) t.clock_mhz (line_rate_gbps t)
    (port_rate_gbps t) t.max_parser_states t.max_tables t.max_table_entries t.max_key_bits
    t.luts t.ffs t.brams t.tcam_bits
