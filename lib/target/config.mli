(** Static description of a hardware target: datapath geometry, clocking,
    architectural limits the compiler enforces, and the resource budget
    place-and-route checks against.

    The timing model is fully determined by three numbers: the datapath bus
    width in bytes per cycle, the clock (so aggregate line rate is
    [bus * 8 / cycle_ns] Gb/s), and the port count (each physical port
    serializes at [line_rate / ports] Gb/s). *)

type t = {
  name : string;
  ports : int;  (** physical ports; egress outside [0, ports) never reaches a wire *)
  clock_mhz : float;
  bus_bytes_per_cycle : int;  (** datapath bus width *)
  (* architectural limits enforced by the compiler *)
  max_parser_states : int;
  max_tables : int;
  max_table_entries : int;
  max_key_bits : int;
  (* resource budget *)
  luts : int;
  ffs : int;
  brams : int;  (** 36 kb block RAMs *)
  tcam_bits : int;
  (* interface buffering, in packets *)
  rx_queue_packets : int;  (** shared pipeline input buffer *)
  tx_queue_packets : int;  (** per-port output buffer *)
}

val netfpga_sume : t
(** 4x10G NetFPGA-SUME-like target: 32 B bus at 200 MHz (51.2 Gb/s
    aggregate, 12.8 Gb/s per port), Virtex-7-690T-like budget. *)

val small_target : t
(** A deliberately cramped target (Zynq-like) for exercising compile-time
    limit rejection and queue overflow with small packet counts. *)

val cycle_ns : t -> float

val line_rate_gbps : t -> float
(** Aggregate datapath rate: [bus_bytes_per_cycle * 8 / cycle_ns]. *)

val port_rate_gbps : t -> float
(** Per-port wire rate: [line_rate_gbps / ports]. *)

val pp : Format.formatter -> t -> unit
