type t =
  | Stuck_miss
  | Drop_at_stage
  | Intermittent_drop of int
  | Corrupt_field of string * string * int64

let pp ppf = function
  | Stuck_miss -> Format.pp_print_string ppf "stuck-miss"
  | Drop_at_stage -> Format.pp_print_string ppf "drop-at-stage"
  | Intermittent_drop n -> Format.fprintf ppf "intermittent-drop(%d)" n
  | Corrupt_field (h, f, mask) -> Format.fprintf ppf "corrupt(%s.%s^0x%Lx)" h f mask
