(** FPGA resource vectors: what a compiled design consumes, added up per
    stage and checked against a {!Config} budget by place-and-route. *)

type t = { luts : int; ffs : int; brams : int; tcam_bits : int }

val make : ?luts:int -> ?ffs:int -> ?brams:int -> ?tcam_bits:int -> unit -> t
(** Omitted components default to zero. *)

val zero : t

val add : t -> t -> t

val sum : t list -> t

val fits : t -> Config.t -> bool
(** Every component within the target's budget. *)

val utilization : t -> Config.t -> (string * float) list
(** Percent of budget used, per component name. *)

val pp : Format.formatter -> t -> unit
