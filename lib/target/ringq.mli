(** Fixed-capacity FIFO of timestamps, the building block of the device's
    interface queues.

    Backed by a flat float array (no boxing, no allocation after [create]),
    so occupancy checks and drains on the packet hot path cost a few loads.
    Callers push monotonically non-decreasing departure deadlines; a full
    queue refuses the push (tail drop). *)

type t

val create : int -> t
(** [create capacity]. @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val length : t -> int

val is_empty : t -> bool

val is_full : t -> bool

val push : t -> float -> bool
(** Enqueue at the tail; [false] (and no change) when full. *)

val peek : t -> float
(** Oldest element. @raise Invalid_argument when empty. *)

val pop : t -> float
(** Dequeue the oldest element. @raise Invalid_argument when empty. *)

val drop_leq : t -> float -> int
(** Pop every leading element [<= deadline]; returns how many were popped.
    With monotone contents this drains precisely the entries that have
    departed by [deadline], in O(popped). *)

val clear : t -> unit
