type t = { buf : float array; mutable head : int; mutable len : int }

let create capacity =
  if capacity < 1 then invalid_arg "Ringq.create: capacity must be positive";
  { buf = Array.make capacity 0.0; head = 0; len = 0 }

let capacity t = Array.length t.buf

let length t = t.len

let is_empty t = t.len = 0

let is_full t = t.len = Array.length t.buf

let push t v =
  let cap = Array.length t.buf in
  if t.len = cap then false
  else begin
    let tail = t.head + t.len in
    t.buf.(if tail >= cap then tail - cap else tail) <- v;
    t.len <- t.len + 1;
    true
  end

let peek t =
  if t.len = 0 then invalid_arg "Ringq.peek: empty";
  t.buf.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Ringq.pop: empty";
  let v = t.buf.(t.head) in
  let h = t.head + 1 in
  t.head <- (if h = Array.length t.buf then 0 else h);
  t.len <- t.len - 1;
  v

let drop_leq t deadline =
  let cap = Array.length t.buf in
  let n = ref 0 in
  while t.len > 0 && t.buf.(t.head) <= deadline do
    let h = t.head + 1 in
    t.head <- (if h = cap then 0 else h);
    t.len <- t.len - 1;
    incr n
  done;
  !n

let clear t =
  t.head <- 0;
  t.len <- 0
