(** Fault localization through the internal taps — the paper's claim that
    "if a bug prevents packets from being correctly forwarded to the
    output interfaces of the device, users can find where the fault
    occurred, even inside the data plane".

    The algorithm only uses the management protocol (stage counters,
    generator, checker): it sends a burst of identical probes, diffs the
    per-stage counters against the stage sequence the specification says
    the probe should traverse, and names the first stage where probes went
    missing. A probe that traverses every stage and reaches the check
    point but never appears externally indicts the output interface — a
    diagnosis no port-attached tester can make. *)

type verdict =
  | Healthy  (** probes forwarded and externally visible *)
  | Dropped_by_program of string  (** the spec itself drops this probe *)
  | Lost_in of string  (** first faulty stage *)
  | Lost_after_check_point of int  (** output interface of this port *)

type evidence = {
  e_expected_stages : string list;  (** spec traversal order *)
  e_deltas : (string * int64) list;  (** per-stage seen-counter deltas *)
  e_emitted : int;  (** packets the check point observed *)
  e_external : int;  (** packets visible on the wire *)
  e_span_trail : (string * int) list;
      (** spans recorded per expected stage during the burst (sampling is
          forced to every-packet for its duration) — per-stage-timed
          corroboration of the counter deltas *)
}

val locate :
  ?count:int -> Harness.t -> probe:Bitutil.Bitstring.t -> verdict * evidence
(** [count] probes (default 16). *)

val verdict_to_string : verdict -> string
(** Human-readable rendering, e.g. ["lost in stage ipv4_lpm"]. *)
