module Ast = P4ir.Ast
module Value = P4ir.Value
module Env = P4ir.Env
module Exec = P4ir.Exec
module Parse = P4ir.Parse
module Deparse = P4ir.Deparse
module Device = Target.Device
module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng

type t = {
  program : Ast.program;
  device : Device.t;
  mutable streams : Wire.stream list;
  mutable sent : int;
  mutable dispositions : Device.disposition list;  (* newest first *)
  c_sent : Stats.Counter.t;  (* cumulative, in the device registry *)
}

let create ~program device =
  {
    program;
    device;
    streams = [];
    sent = 0;
    dispositions = [];
    c_sent =
      Telemetry.Registry.counter (Device.metrics device)
        ~help:"test packets the internal generator injected" "generator/sent";
  }

let configure t streams = t.streams <- streams

let packets_sent t = t.sent

let last_dispositions t = List.rev t.dispositions

let clear t =
  t.streams <- [];
  t.sent <- 0;
  t.dispositions <- []

(* generator-side parsing never drops: it is test infrastructure *)
let gen_parse_hooks = { Parse.on_reject = `Continue; verify_checksum = false; max_steps = 64 }

let mutation_targets_checksum muts =
  List.exists
    (fun m ->
      match (m : Wire.mutation) with
      | Wire.Set_field (h, f, _) | Wire.Sweep_field (h, f, _, _) | Wire.Random_field (h, f, _)
        ->
          String.equal h "ipv4" && String.equal f "checksum")
    muts

let render_packet t (stream : Wire.stream) prng index =
  let env = Env.create t.program in
  let runtime = P4ir.Runtime.create () in
  let ctx = Exec.make_ctx ~env ~runtime () in
  ignore (Parse.run ~hooks:gen_parse_hooks ctx stream.Wire.s_template);
  List.iter
    (fun m ->
      match (m : Wire.mutation) with
      | Wire.Set_field (h, f, v) ->
          if Env.is_valid env h then
            Env.set_field env h f (Value.make ~width:(Value.width (Env.get_field env h f)) v)
      | Wire.Sweep_field (h, f, start, step) ->
          if Env.is_valid env h then
            let w = Value.width (Env.get_field env h f) in
            let v = Int64.add start (Int64.mul step (Int64.of_int index)) in
            Env.set_field env h f (Value.make ~width:w v)
      | Wire.Random_field (h, f, _) ->
          if Env.is_valid env h then
            let w = Value.width (Env.get_field env h f) in
            Env.set_field env h f (Value.make ~width:w (Prng.bits prng ~width:w)))
    stream.Wire.s_mutations;
  (* refresh the checksum only when mutations dirtied the header; an
     unmutated template must hit the wire byte-identical (deliberately
     corrupted test packets included) *)
  let update =
    t.program.Ast.p_update_ipv4_checksum
    && stream.Wire.s_mutations <> []
    && not (mutation_targets_checksum stream.Wire.s_mutations)
  in
  Deparse.run ~update_ipv4_checksum:update env

let start t =
  t.dispositions <- [];
  let base = Device.now_ns t.device in
  let scheduled =
    List.concat_map
      (fun (stream : Wire.stream) ->
        let prng =
          Prng.create
            (List.fold_left
               (fun acc m ->
                 match (m : Wire.mutation) with Wire.Random_field (_, _, s) -> acc + s | _ -> acc)
               0x9E37 stream.Wire.s_mutations)
        in
        List.init stream.Wire.s_count (fun i ->
            let at = base +. (float_of_int i *. stream.Wire.s_interval_ns) in
            (at, render_packet t stream prng i)))
      t.streams
  in
  let ordered = List.stable_sort (fun (a, _) (b, _) -> compare a b) scheduled in
  List.iter
    (fun (at, bits) ->
      let _, disposition = Device.inject t.device ~source:Device.Generator ~at_ns:at bits in
      t.sent <- t.sent + 1;
      Stats.Counter.incr t.c_sent;
      t.dispositions <- disposition :: t.dispositions)
    ordered
