module Ast = P4ir.Ast
module Value = P4ir.Value
module Env = P4ir.Env
module Exec = P4ir.Exec
module Parse = P4ir.Parse
module Deparse = P4ir.Deparse
module Device = Target.Device
module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng

(* persistent render scratch: one env/ctx/builder reused across packets,
   so a steady-state render allocates only the final wire copy *)
type render_state = {
  r_env : Env.t;
  r_ctx : Exec.ctx;
  r_builder : Bitstring.Builder.t;
}

type t = {
  program : Ast.program;
  device : Device.t;
  mutable streams : Wire.stream list;
  mutable sent : int;
  mutable dispositions : Device.disposition list;  (* newest first *)
  mutable render : render_state option;  (* lazily allocated scratch *)
  mutable raw : P4ir.Compilecore.inst option;  (* staged render, {!send_raw} *)
  c_sent : Stats.Counter.t;  (* cumulative, in the device registry *)
}

let create ~program device =
  {
    program;
    device;
    streams = [];
    sent = 0;
    dispositions = [];
    render = None;
    raw = None;
    c_sent =
      Telemetry.Registry.counter (Device.metrics device)
        ~help:"test packets the internal generator injected" "generator/sent";
  }

let configure t streams = t.streams <- streams

let packets_sent t = t.sent

let last_dispositions t = List.rev t.dispositions

let clear t =
  t.streams <- [];
  t.sent <- 0;
  t.dispositions <- []

(* generator-side parsing never drops: it is test infrastructure *)
let gen_parse_hooks = { Parse.on_reject = `Continue; verify_checksum = false; max_steps = 64 }

let mutation_targets_checksum muts =
  List.exists
    (fun m ->
      match (m : Wire.mutation) with
      | Wire.Set_field (h, f, _) | Wire.Sweep_field (h, f, _, _) | Wire.Random_field (h, f, _)
        ->
          String.equal h "ipv4" && String.equal f "checksum")
    muts

let render_state t =
  match t.render with
  | Some rs -> rs
  | None ->
      let r_env = Env.create t.program in
      let r_ctx = Exec.make_ctx ~env:r_env ~runtime:(P4ir.Runtime.create ()) () in
      let rs = { r_env; r_ctx; r_builder = Bitstring.Builder.create ~capacity_bits:4096 () } in
      t.render <- Some rs;
      rs

let render_packet t (stream : Wire.stream) prng index =
  let rs = render_state t in
  let env = rs.r_env in
  Env.reset env;
  ignore (Parse.run ~hooks:gen_parse_hooks rs.r_ctx stream.Wire.s_template);
  List.iter
    (fun m ->
      match (m : Wire.mutation) with
      | Wire.Set_field (h, f, v) ->
          if Env.is_valid env h then
            Env.set_field env h f (Value.make ~width:(Value.width (Env.get_field env h f)) v)
      | Wire.Sweep_field (h, f, start, step) ->
          if Env.is_valid env h then
            let w = Value.width (Env.get_field env h f) in
            let v = Int64.add start (Int64.mul step (Int64.of_int index)) in
            Env.set_field env h f (Value.make ~width:w v)
      | Wire.Random_field (h, f, _) ->
          if Env.is_valid env h then
            let w = Value.width (Env.get_field env h f) in
            Env.set_field env h f (Value.make ~width:w (Prng.bits prng ~width:w)))
    stream.Wire.s_mutations;
  (* refresh the checksum only when mutations dirtied the header; an
     unmutated template must hit the wire byte-identical (deliberately
     corrupted test packets included) *)
  let update =
    t.program.Ast.p_update_ipv4_checksum
    && stream.Wire.s_mutations <> []
    && not (mutation_targets_checksum stream.Wire.s_mutations)
  in
  Deparse.run_into ~update_ipv4_checksum:update rs.r_builder env

(* The raw path renders through the staged engine — parse + deparse
   compiled once per generator (lazily: only batched validation pays the
   compile), observationally identical to the tree render under the same
   lenient hooks but with no steady-state allocation beyond the final
   wire copy. The mutation path above keeps the tree engine: mutations
   need general field assignment, which the staged form doesn't expose. *)
let raw_inst t =
  match t.raw with
  | Some inst -> inst
  | None ->
      let cp =
        P4ir.Compilecore.compile ~parse_hooks:gen_parse_hooks
          ~update_ipv4_checksum:false t.program
      in
      let inst = P4ir.Compilecore.instantiate cp ~runtime:(P4ir.Runtime.create ()) in
      t.raw <- Some inst;
      inst

(* The batched oracle's device-side shot: render [bits] exactly as a
   mutation-free stream template hits the wire (parse, deparse, no
   checksum refresh) and inject it back-to-back, bypassing the
   management protocol. Increments the cumulative [generator/sent]
   counter like any generated packet; does not touch the per-run
   stream/disposition state, and leaves quiescing to the caller (one
   per batch — see [Target.Device.inject_batch] and [Fuzz.Oracle]). *)
let send_raw t bits =
  let inst = raw_inst t in
  P4ir.Compilecore.reset inst;
  P4ir.Compilecore.run_parser inst bits;
  let wire = P4ir.Compilecore.deparse inst in
  let _, disposition = Device.inject t.device ~source:Device.Generator wire in
  t.sent <- t.sent + 1;
  Stats.Counter.incr t.c_sent;
  disposition

let start t =
  t.dispositions <- [];
  let base = Device.now_ns t.device in
  let scheduled =
    List.concat_map
      (fun (stream : Wire.stream) ->
        let prng =
          Prng.create
            (List.fold_left
               (fun acc m ->
                 match (m : Wire.mutation) with Wire.Random_field (_, _, s) -> acc + s | _ -> acc)
               0x9E37 stream.Wire.s_mutations)
        in
        List.init stream.Wire.s_count (fun i ->
            let at = base +. (float_of_int i *. stream.Wire.s_interval_ns) in
            (at, render_packet t stream prng i)))
      t.streams
  in
  let ordered = List.stable_sort (fun (a, _) (b, _) -> compare a b) scheduled in
  List.iter
    (fun (at, bits) ->
      let _, disposition = Device.inject t.device ~source:Device.Generator ~at_ns:at bits in
      t.sent <- t.sent + 1;
      Stats.Counter.incr t.c_sent;
      t.dispositions <- disposition :: t.dispositions)
    ordered
