module Ast = P4ir.Ast
module Value = P4ir.Value
module Env = P4ir.Env
module Exec = P4ir.Exec
module Parse = P4ir.Parse
module Device = Target.Device
module Bitstring = Bitutil.Bitstring

type rule_state = {
  rule : Wire.rule;
  mutable matched : int;
  mutable passed : int;
  mutable failed : int;
}

type t = {
  program : Ast.program;
  capture_limit : int;
  mutable rules : rule_state list;
  mutable total_seen : int;
  mutable scratch : (Env.t * Exec.ctx) option;  (* reused rule-eval context *)
  mutable captures : Wire.capture list;  (* newest first, bounded *)
  lat : Stats.Histogram.t;
  rate : Stats.Rate.t;
  (* cumulative verdict counters in the device registry; unlike the
     per-test-run [rule_state] tallies, [clear] never resets these *)
  c_seen : Stats.Counter.t;
  c_pass : Stats.Counter.t;
  c_fail : Stats.Counter.t;
}

(* the checker observes; it never drops what it parses *)
let check_parse_hooks =
  { Parse.on_reject = `Continue; verify_checksum = false; max_steps = 64 }

let on_output t (out : Device.output) =
  t.total_seen <- t.total_seen + 1;
  Stats.Counter.incr t.c_seen;
  Stats.Histogram.add t.lat (out.Device.o_out_time_ns -. out.Device.o_in_time_ns);
  Stats.Rate.record t.rate ~now_ns:out.Device.o_out_time_ns
    ~bytes:(Bitstring.byte_length out.Device.o_bits);
  (* rule evaluation needs the emission re-parsed into header fields — a
     full interpreter context per packet. With no rules armed (the common
     case outside a validation run: soak background traffic, fabric
     forwarding hops) none of that is observable, so skip it and keep the
     tap at counter-and-histogram cost. *)
  if t.rules <> [] then begin
  (* the full interpreter context the re-parse needs is kept and reset
     between emissions rather than rebuilt — rule evaluation is pure
     over the freshly parsed fields *)
  let env, ctx =
    match t.scratch with
    | Some (env, ctx) ->
        Env.reset env;
        (env, ctx)
    | None ->
        let env = Env.create t.program in
        let ctx = Exec.make_ctx ~env ~runtime:(P4ir.Runtime.create ()) () in
        t.scratch <- Some (env, ctx);
        (env, ctx)
  in
  ignore (Parse.run ~hooks:check_parse_hooks ctx out.Device.o_bits);
  Env.set_std env Ast.Egress_spec (Value.of_int ~width:9 (out.Device.o_port land 0x1ff));
  let truthy e = Value.to_bool (Exec.eval ctx e) in
  List.iter
    (fun rs ->
      let applies = match rs.rule.Wire.r_filter with None -> true | Some f -> truthy f in
      if applies then begin
        rs.matched <- rs.matched + 1;
        if truthy rs.rule.Wire.r_expect then begin
          rs.passed <- rs.passed + 1;
          Stats.Counter.incr t.c_pass
        end
        else begin
          rs.failed <- rs.failed + 1;
          Stats.Counter.incr t.c_fail;
          if List.length t.captures < t.capture_limit then
            t.captures <-
              {
                Wire.cap_rule = rs.rule.Wire.r_name;
                cap_port = out.Device.o_port;
                cap_time_ns = out.Device.o_out_time_ns;
                cap_bits = out.Device.o_bits;
              }
              :: t.captures
        end
      end)
    t.rules
  end

let create ?(capture_limit = 64) ~program device =
  let metrics = Device.metrics device in
  let t =
    {
      program;
      capture_limit;
      rules = [];
      total_seen = 0;
      scratch = None;
      captures = [];
      lat = Stats.Histogram.create ();
      rate = Stats.Rate.create ();
      c_seen =
        Telemetry.Registry.counter metrics
          ~help:"emissions the checker observed at the check point" "checker/seen";
      c_pass =
        Telemetry.Registry.counter metrics
          ~help:"rule evaluations that held" "checker/pass";
      c_fail =
        Telemetry.Registry.counter metrics
          ~help:"rule evaluations that failed" "checker/fail";
    }
  in
  Device.set_check_tap device (fun out -> on_output t out);
  t

let configure t rules =
  t.rules <- List.map (fun rule -> { rule; matched = 0; passed = 0; failed = 0 }) rules

let summary t =
  {
    Wire.cs_total_seen = t.total_seen;
    cs_pps = Stats.Rate.packets_per_sec t.rate;
    cs_gbps = Stats.Rate.gbps t.rate;
    cs_lat_mean_ns = Stats.Histogram.mean t.lat;
    cs_lat_p50_ns = Stats.Histogram.percentile t.lat 50.0;
    cs_lat_p99_ns = Stats.Histogram.percentile t.lat 99.0;
    cs_rules =
      List.map
        (fun rs ->
          {
            Wire.rs_name = rs.rule.Wire.r_name;
            rs_matched = rs.matched;
            rs_passed = rs.passed;
            rs_failed = rs.failed;
          })
        t.rules;
    cs_captures = List.rev t.captures;
  }

let latency t = t.lat

let throughput t = t.rate

let clear t =
  t.total_seen <- 0;
  t.captures <- [];
  Stats.Histogram.clear t.lat;
  Stats.Rate.clear t.rate;
  List.iter
    (fun rs ->
      rs.matched <- 0;
      rs.passed <- 0;
      rs.failed <- 0)
    t.rules
