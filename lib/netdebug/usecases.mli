(** The seven validation use-cases of Section 3, implemented on top of the
    harness. Each returns structured data; the bench harness renders the
    paper's tables/figures from it. *)

module Functional : sig
  (** Functional testing: drive directed + fuzz vectors through the device
      and compare every observable against the expected behaviour — the
      reference interpreter run on the oracle program (by default the
      deployed program itself, so any mismatch indicts the toolchain or
      hardware; pass the intended program as [oracle] to hunt for bugs in
      the P4 source instead). *)

  type mismatch = {
    mm_index : int;
    mm_packet : Bitutil.Bitstring.t;
    mm_expected : string;
    mm_got : string;
  }

  type report = { fr_tested : int; fr_mismatches : mismatch list }

  val run :
    ?oracle:P4ir.Programs.bundle ->
    ?vectors:Bitutil.Bitstring.t list ->
    ?fuzz:int ->
    ?fuzz_seed:int ->
    ?stateful:bool ->
    ?jobs:int ->
    Harness.t ->
    report
  (** [vectors] defaults to symbolic-execution path witnesses of the
      oracle; [fuzz] random packets are appended (default 32), generated
      from [fuzz_seed] (default {!Vectors.fuzz}'s seed, 77).
      [stateful] (default false) resets the device's registers and threads
      one register store through the oracle so programs with persistent
      state (rate limiters, caches) can be validated packet-by-packet.
      [jobs] (default 1) shards the vectors across that many worker
      domains, each driving its own {!Harness.replicate} replica of the
      deployment; per-worker telemetry is folded back into [h]'s device
      registry on join. Parallel sweeps treat every vector as independent
      — device registers are reset before each one — so the report is the
      same for any [jobs >= 2]; it also matches [jobs = 1] for programs
      without persistent register state. When [stateful] is set, [jobs]
      is ignored (packet history is inherently sequential). *)

  val passed : report -> bool
  (** True iff no vector mismatched. *)

  val pp : Format.formatter -> report -> unit
  (** One summary line plus one line per mismatch. *)

  val oracle_runtime : P4ir.Programs.bundle -> P4ir.Runtime.t
  (** Fresh runtime with the bundle's entries installed — the spec side of
      the differential. Exposed so long-running drivers (the soak loop)
      can build one oracle and validate incrementally. *)

  val check_vector :
    ?regs:P4ir.Regstate.t ->
    P4ir.Programs.bundle ->
    P4ir.Runtime.t ->
    Harness.t ->
    int ->
    Bitutil.Bitstring.t ->
    mismatch option
  (** Run one vector through the full generator/checker loop: interpret
      the spec under the oracle runtime, program the checker from the
      predicted observation, fire the generator, read the verdict.
      Clears generator/checker state (and quiesces the device) first, so
      it can interleave with background traffic; device counters and
      histograms are preserved across calls. *)

  val check_batch :
    ?regs:P4ir.Regstate.t ->
    ?reset_registers:bool ->
    ?base:int ->
    P4ir.Programs.bundle ->
    P4ir.Runtime.t ->
    Harness.t ->
    Bitutil.Bitstring.t array ->
    mismatch option array
  (** Batched {!check_vector}: the same spec-programmed rules and verdict
      logic per vector, but driven through the direct in-device handles —
      the checker is configured in-process and the generator's raw path
      injects each vector back-to-back, so the whole batch pays zero
      management-protocol round trips and one device quiesce (at the
      end) instead of one per vector. Verdicts land at their vector
      index; [mm_index] is [base + index] (default [base = 0]).
      [reset_registers] (default false) zeroes the device's register
      file before each vector, as the sharded sweep requires. Used by
      {!run}'s non-stateful paths and the soak loop's concurrent
      validation (DESIGN.md §15). *)

  type divergence = {
    dv_path : int;  (** 1-based path index, in exploration order *)
    dv_descr : string;  (** the path's descriptor, from the oracle *)
    dv_expected : string;  (** what the symbolic oracle predicted *)
    dv_got : string;  (** what the device did *)
  }
  (** One path where the device disagreed with the symbolic oracle. *)

  type path_report = {
    pr_oracle : Symexec.Testgen.report;
        (** the generated vectors and coverage stats *)
    pr_checked : int;  (** vectors driven through the device *)
    pr_skipped : int;
        (** state-dependent vectors skipped (their expectations are not
            reliable oracles — see {!Symexec.Testgen.vector}) *)
    pr_divergences : divergence list;
        (** ascending path order: the head is always the {e first}
            diverging path *)
  }

  val check_paths :
    ?seed:int ->
    ?max_paths:int ->
    ?jobs:int ->
    ?oracle:P4ir.Programs.bundle ->
    Harness.t ->
    path_report
  (** Per-path symexec-vs-device divergence check: generate one covering
      vector per satisfiable path of the oracle program
      ({!Symexec.Testgen.generate}, pinned to the generator port), drive
      each through the deployment, and compare the device's observation
      against the path's {e symbolic} expectation. Unlike {!run}, the
      reference interpreter is never consulted, and every divergence
      names the control-flow path that exposed it. [jobs] parallelizes
      both vector generation and the device sweep (replicated harnesses,
      as in {!run}); the report is identical for every [jobs] value. *)

  val paths_agree : path_report -> bool
  (** True iff no checked path diverged. *)

  val first_divergence : path_report -> divergence option
  (** The lowest-numbered diverging path, if any. *)

  val pp_paths : Format.formatter -> path_report -> unit
  (** Coverage summary plus one block per divergence. *)
end

module Performance : sig
  (** Performance testing: offered-load sweep through the internal
      generator, measuring throughput, packet rate and latency at the
      check point. *)

  type point = {
    pt_offered_gbps : float;
    pt_achieved_gbps : float;
    pt_achieved_mpps : float;
    pt_lat_p50_ns : float;
    pt_lat_p99_ns : float;
    pt_sent : int;
    pt_received : int;
  }

  val sweep :
    ?loads:float list ->
    ?packets_per_point:int ->
    Harness.t ->
    probe:Bitutil.Bitstring.t ->
    point list
  (** [loads] are fractions of the device line rate
      (default 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25). *)
end

module Compiler_check : sig
  (** Compiler check: a battery of seeded toolchain quirks; each is
      detected iff functional testing of a quirk-sensitive program reports
      mismatches against its own specification. *)

  type detection = {
    dq_quirk : Sdnet.Quirks.quirk option;  (** [None] is the faithful control *)
    dq_program : string;
    dq_detected : bool;
    dq_evidence : string;
  }

  val sensitive_program : Sdnet.Quirks.quirk -> P4ir.Programs.bundle
  (** The probe program whose behaviour the quirk perturbs. *)

  val battery : unit -> detection list
  (** Run the faithful control plus one detection per shipped quirk. *)
end

module Architecture_check : sig
  (** Architecture check: probe the target's undocumented limits from the
      outside by compiling synthesized programs of growing size. *)

  type probe_result = {
    ar_limit : string;
    ar_discovered : int;
    ar_documented : int;
  }

  val probe : ?config:Target.Config.t -> unit -> probe_result list
  (** Binary-search each limit by compiling synthesized programs against
      [config] (default {!Target.Config.netfpga_sume}). *)
end

module Resources : sig
  (** Resources quantification: per-program hardware consumption. *)

  type row = {
    rr_program : string;
    rr_stages : int;
    rr_latency_cycles : int;
    rr_luts : int;
    rr_ffs : int;
    rr_brams : int;
    rr_tcam_bits : int;
    rr_max_util_pct : float;
  }

  val inventory :
    ?config:Target.Config.t -> ?bundles:P4ir.Programs.bundle list -> unit -> row list
  (** One row per bundle (default: the whole program library), from the
      compile reports — no deployment involved. *)
end

module Status : sig
  (** Status monitoring: periodic internal snapshots while live traffic
      flows. *)

  val monitor :
    ?period_packets:int ->
    ?samples:int ->
    ?load:float ->
    Harness.t ->
    background:Bitutil.Bitstring.t ->
    Wire.status_summary list
  (** [load] paces the live traffic as a fraction of line rate
      (default 0.5). *)
end

module Comparison : sig
  (** Comparison: run the same probes through two deployments (e.g. two
      alternative specifications of one program) and diff every emitted
      packet. *)

  type divergence = {
    dv_index : int;
    dv_probe : Bitutil.Bitstring.t;
    dv_a : string;
    dv_b : string;
  }

  type report = { cr_compared : int; cr_divergences : divergence list }

  val run :
    ?quirks_a:Sdnet.Quirks.t ->
    ?quirks_b:Sdnet.Quirks.t ->
    ?probes:Bitutil.Bitstring.t list ->
    P4ir.Programs.bundle ->
    P4ir.Programs.bundle ->
    report
  (** Deploy both bundles (under [quirks_a] / [quirks_b], both defaulting
      to the shipped toolchain) and diff every emission byte-for-byte.
      [probes] defaults to path witnesses of the first bundle plus fuzz. *)

  val equivalent : report -> bool
  (** True iff no probe diverged. *)
end
