module Programs = P4ir.Programs
module Runtime = P4ir.Runtime
module Interp = P4ir.Interp
module Device = Target.Device
module Bitstring = Bitutil.Bitstring

type t = {
  bundle : Programs.bundle;
  compile_report : Sdnet.Compile.report;
  device : Device.t;
  agent : Agent.t;
  controller : Controller.t;
}

let generator_port = 510

let deploy ?(quirks = Sdnet.Quirks.default) ?config ?(install_entries = true) ?span_sampling
    ?update_clock bundle =
  let compile_report = Sdnet.Compile.compile_exn ~quirks ?config bundle.Programs.program in
  let device = Device.create ?update_clock compile_report.Sdnet.Compile.pipeline in
  (match span_sampling with Some n -> Device.set_span_sampling device n | None -> ());
  if install_entries then begin
    match
      Runtime.install_all bundle.Programs.program (Device.runtime device)
        bundle.Programs.entries
    with
    | Ok () -> ()
    | Error e -> invalid_arg ("Harness.deploy: " ^ e)
  end;
  let host_ep, dev_ep = Channel.create () in
  let agent = Agent.create ~program:bundle.Programs.program ~device dev_ep in
  let controller = Controller.create ~pump:(fun () -> Agent.process agent) host_ep in
  { bundle; compile_report; device; agent; controller }

let replicate ?(faults = false) t =
  let r =
    deploy
      ~quirks:t.compile_report.Sdnet.Compile.quirks
      ~config:(Device.config t.device) ~install_entries:false
      ~span_sampling:(Telemetry.Span.sampling (Device.spans t.device))
      t.bundle
  in
  let src = Device.runtime t.device and dst = Device.runtime r.device in
  List.iter
    (fun table ->
      List.iter
        (fun e -> Runtime.add_exn t.bundle.Programs.program dst ~table e)
        (Runtime.entries src table))
    (Runtime.tables src);
  if faults then
    List.iter
      (fun (stage, f) -> Device.inject_fault r.device ~stage f)
      (Device.faults t.device);
  r

let trace_health t =
  let spans = Device.spans t.device in
  let trace = Device.trace t.device in
  Printf.sprintf
    "telemetry: %d spans retained, %d evicted (sampling 1/%d); %d trace events, %d dropped"
    (Telemetry.Span.count spans)
    (Telemetry.Span.dropped spans)
    (max 1 (Telemetry.Span.sampling spans))
    (Trace.count trace) (Trace.dropped trace)

let export_artifacts t ~dir =
  (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  let spans = Device.spans t.device in
  let metrics = Device.metrics t.device in
  [
    write "trace.json" (Telemetry.Export.chrome_trace spans);
    write "spans.jsonl" (Telemetry.Export.jsonl spans);
    write "metrics.prom" (Telemetry.Export.prometheus metrics);
  ]

let spec_oracle t bits =
  (Interp.process t.bundle.Programs.program (Device.runtime t.device)
     ~ingress_port:generator_port bits)
    .Interp.result

let self_check t =
  let ( let* ) = Result.bind in
  let facts = ref [] in
  let ok fmt = Printf.ksprintf (fun s -> facts := s :: !facts) fmt in
  (* 1. management channel round-trips *)
  let* status = Controller.read_status t.controller in
  ok "management channel round-trips (device virtual time %.0f ns)"
    status.Wire.ss_time_ns;
  (* 2. injection bypasses the input interfaces *)
  let rx_ext_before =
    Stats.Counter.Set.get (Device.counters t.device) "rx/external"
  in
  let probe = Packet.serialize (Packet.udp_ipv4 ()) in
  let* () = Controller.configure_checker t.controller [] in
  let* () =
    Controller.configure_generator t.controller [ Controller.stream probe ]
  in
  let* () = Controller.start_generator t.controller in
  let rx_ext_after = Stats.Counter.Set.get (Device.counters t.device) "rx/external" in
  let rx_gen = Stats.Counter.Set.get (Device.counters t.device) "rx/generator" in
  if rx_ext_after <> rx_ext_before then
    Error "generator traffic appeared on the external interfaces"
  else begin
    ok "injection point bypasses the input interfaces (%Ld generator packets, 0 external)"
      rx_gen;
    (* 3. check point sits before the output interfaces: break every port;
       the checker must still see emissions *)
    let cfg = Device.config t.device in
    ignore (Device.outputs t.device);
    for p = 0 to cfg.Target.Config.ports - 1 do
      Device.set_port_broken t.device p true
    done;
    let* () = Controller.clear_test_state t.controller in
    let* () = Controller.configure_generator t.controller [ Controller.stream probe ] in
    let* () = Controller.start_generator t.controller in
    let* summary = Controller.read_checker t.controller in
    for p = 0 to cfg.Target.Config.ports - 1 do
      Device.set_port_broken t.device p false
    done;
    let externally_visible = List.length (Device.outputs t.device) in
    (* the probe may legitimately be dropped by the program; only when it
       is emitted do we learn about the check point *)
    if summary.Wire.cs_total_seen > 0 && externally_visible > 0 then
      Error "packet escaped through a broken output interface"
    else begin
      if summary.Wire.cs_total_seen > 0 then
        ok "check point observes packets ahead of the output interfaces (%d seen with all ports dark)"
          summary.Wire.cs_total_seen
      else ok "probe dropped by the program; check point wiring verified vacuously";
      ok "pipeline: %d stages, %d cycles zero-load"
        (List.length t.compile_report.Sdnet.Compile.pipeline.Target.Pipeline.stages)
        (Target.Pipeline.total_latency_cycles t.compile_report.Sdnet.Compile.pipeline);
      Ok (List.rev !facts)
    end
  end
