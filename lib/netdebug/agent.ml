module Device = Target.Device
module Counter = Stats.Counter

type t = {
  device : Device.t;
  endpoint : Channel.endpoint;
  generator : Generator.t;
  checker : Checker.t;
}

let create ~program ~device endpoint =
  {
    device;
    endpoint;
    generator = Generator.create ~program device;
    checker = Checker.create ~program device;
  }

let generator t = t.generator

let checker t = t.checker

let status_summary device =
  let st = Device.status device in
  {
    Wire.ss_time_ns = st.Device.st_time_ns;
    ss_packets_in = st.Device.st_packets_in;
    ss_packets_out = st.Device.st_packets_out;
    ss_queue_drops = st.Device.st_queue_drops;
    ss_pipeline_drops = st.Device.st_pipeline_drops;
    ss_queue_depth = st.Device.st_queue_depth;
  }

let stage_counters device =
  List.filter
    (fun (name, _) -> String.length name > 6 && String.sub name 0 6 = "stage/")
    (Counter.Set.to_alist (Device.counters device))

let handle t (msg : Wire.host_msg) : Wire.dev_msg =
  match msg with
  | Wire.Configure_generator streams ->
      Generator.configure t.generator streams;
      Wire.Ack
  | Wire.Configure_checker rules ->
      Checker.configure t.checker rules;
      Wire.Ack
  | Wire.Start_generator ->
      Generator.start t.generator;
      Wire.Ack
  | Wire.Read_checker -> Wire.Checker_report (Checker.summary t.checker)
  | Wire.Read_status -> Wire.Status_report (status_summary t.device)
  | Wire.Read_stage_counters -> Wire.Stage_counters (stage_counters t.device)
  | Wire.Read_register name -> (
      match P4ir.Regstate.dump (Device.registers t.device) name with
      | cells ->
          let sparse = ref [] in
          Array.iteri
            (fun i v ->
              let raw = P4ir.Value.to_int64 v in
              if raw <> 0L then sparse := (i, raw) :: !sparse)
            cells;
          Wire.Register_dump (List.rev !sparse)
      | exception Invalid_argument e -> Wire.Error_msg e)
  | Wire.Clear_test_state ->
      Generator.clear t.generator;
      Checker.clear t.checker;
      (* a fresh test run starts with the previous one's in-flight work
         drained; otherwise back-to-back single-shot runs freeze the clock
         and the RX ring slowly fills with completed entries *)
      Device.quiesce t.device;
      Wire.Ack

let process t =
  let rec loop () =
    match Channel.recv t.endpoint with
    | None -> ()
    | Some raw ->
        let reply =
          match Wire.decode_host raw with
          | Ok msg -> handle t msg
          | Error e -> Wire.Error_msg ("decode: " ^ e)
        in
        Channel.send t.endpoint (Wire.encode_dev reply);
        loop ()
  in
  loop ()
