(** Directed test-vector generation.

    NetDebug's generator is only as good as the packets it is told to
    send. This module mines them from two sources: the symbolic executor
    (one witness per satisfiable control path of the specification — full
    path coverage of parser and tables) and a seeded fuzzer over
    well-formed templates. *)

val from_paths :
  ?seed:int -> ?limit:int -> P4ir.Ast.program -> P4ir.Runtime.t -> Bitutil.Bitstring.t list
(** One concrete packet per satisfiable execution path, in exploration
    order, capped at [limit] (default 64). A thin wrapper over
    {!Symexec.Testgen.generate} that keeps only the packets; use the
    oracle directly when the expected observations are wanted too. *)

val fuzz : ?seed:int -> count:int -> unit -> Bitutil.Bitstring.t list
(** Random-but-plausible Ethernet/IPv4 traffic: random addresses, ports,
    TTLs, occasional ARP and unknown EtherTypes. *)
