module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng
module Testgen = Symexec.Testgen

let from_paths ?seed ?(limit = 64) program runtime =
  let report = Testgen.generate ?seed program runtime in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | b :: rest -> b :: take (n - 1) rest
  in
  let bits = take limit (Testgen.packets report) in
  (* drop duplicates while keeping order *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun b ->
      let key = Bitstring.to_hex b in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    bits

let fuzz ?(seed = 77) ~count () =
  let prng = Prng.create seed in
  List.init count (fun _ ->
      let choice = Prng.int prng 10 in
      let pkt =
        if choice < 6 then
          Packet.udp_ipv4
            ~src:(Prng.bits prng ~width:32)
            ~dst:(Prng.bits prng ~width:32)
            ~src_port:(Prng.bits prng ~width:16)
            ~dst_port:(Prng.bits prng ~width:16)
            ~ttl:(Int64.of_int (1 + Prng.int prng 255))
            ~payload_bytes:(Prng.int prng 256) ()
        else if choice < 8 then
          Packet.tcp_ipv4
            ~src:(Prng.bits prng ~width:32)
            ~dst:(Prng.bits prng ~width:32)
            ~dst_port:(Prng.bits prng ~width:16)
            ()
        else if choice = 8 then
          Packet.arp_request ~spa:(Prng.bits prng ~width:32) ~tpa:(Prng.bits prng ~width:32) ()
        else
          Packet.make
            [ Packet.Eth (Packet.Eth.make ~ethertype:(Prng.bits prng ~width:16) ()) ]
            ~payload:(Bitstring.random prng (8 * Prng.int prng 64))
            ()
      in
      Packet.serialize pkt)
