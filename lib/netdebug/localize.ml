module Interp = P4ir.Interp
module Device = Target.Device

type verdict =
  | Healthy
  | Dropped_by_program of string
  | Lost_in of string
  | Lost_after_check_point of int

type evidence = {
  e_expected_stages : string list;
  e_deltas : (string * int64) list;
  e_emitted : int;
  e_external : int;
  e_span_trail : (string * int) list;
}

(* Map span names back to pipeline stage names: "parse" -> "parser",
   "deparse" -> "deparser", "stage[i]:<name>" -> "<name>". *)
let stage_of_span_name name =
  match name with
  | "parse" -> Some "parser"
  | "deparse" -> Some "deparser"
  | _ ->
      if String.length name > 6 && String.sub name 0 6 = "stage[" then
        match String.index_opt name ':' with
        | Some i -> Some (String.sub name (i + 1) (String.length name - i - 1))
        | None -> None
      else None

let verdict_to_string = function
  | Healthy -> "healthy"
  | Dropped_by_program r -> Printf.sprintf "dropped by the program (%s)" r
  | Lost_in s -> Printf.sprintf "fault localized in stage '%s'" s
  | Lost_after_check_point p ->
      Printf.sprintf "lost after the check point: output interface %d" p

let ( let* ) r f = match r with Ok v -> f v | Error e -> invalid_arg ("Localize: " ^ e)

let locate ?(count = 16) (h : Harness.t) ~probe =
  (* what should happen, per the specification *)
  let spec =
    Interp.process h.Harness.bundle.P4ir.Programs.program
      (Device.runtime h.Harness.device) ~ingress_port:Harness.generator_port probe
  in
  match spec.Interp.result with
  | Interp.Dropped reason ->
      ( Dropped_by_program reason,
        {
          e_expected_stages = [];
          e_deltas = [];
          e_emitted = 0;
          e_external = 0;
          e_span_trail = [];
        } )
  | Interp.Forwarded (spec_port, _) ->
      let expected_stages =
        ("parser" :: List.map (fun (t, _, _) -> "ma:" ^ t) spec.Interp.tables)
        @ [ "egress"; "deparser" ]
      in
      let ctl = h.Harness.controller in
      let read_counters () =
        let* cs = Controller.read_stage_counters ctl in
        cs
      in
      let seen_of counters stage =
        match List.assoc_opt (Printf.sprintf "stage/%s/seen" stage) counters with
        | Some v -> v
        | None -> 0L
      in
      (* drain stale external outputs so we only count our probes *)
      ignore (Device.outputs h.Harness.device);
      let before = read_counters () in
      (* span every probe in the burst: independent, per-stage-timed
         corroboration of the counter-delta evidence *)
      let spanstore = Device.spans h.Harness.device in
      let prev_sampling = Telemetry.Span.sampling spanstore in
      Device.set_span_sampling h.Harness.device 1;
      let watermark = Telemetry.Span.issued spanstore in
      let* () = Controller.clear_test_state ctl in
      let* () =
        Controller.configure_generator ctl [ Controller.stream ~count probe ]
      in
      let* () = Controller.start_generator ctl in
      let trail_tbl = Hashtbl.create 8 in
      Telemetry.Span.iter spanstore (fun sp ->
          if sp.Telemetry.Span.sp_id >= watermark then
            match stage_of_span_name sp.Telemetry.Span.sp_name with
            | Some stage ->
                Hashtbl.replace trail_tbl stage
                  (1 + Option.value ~default:0 (Hashtbl.find_opt trail_tbl stage))
            | None -> ());
      Device.set_span_sampling h.Harness.device prev_sampling;
      let after = read_counters () in
      let* summary = Controller.read_checker ctl in
      let emitted = summary.Wire.cs_total_seen in
      let external_outputs =
        List.filter
          (fun o -> o.Device.o_source = Device.Generator)
          (Device.outputs h.Harness.device)
      in
      let deltas =
        List.map
          (fun s -> (s, Int64.sub (seen_of after s) (seen_of before s)))
          expected_stages
      in
      let evidence =
        {
          e_expected_stages = expected_stages;
          e_deltas = deltas;
          e_emitted = emitted;
          e_external = List.length external_outputs;
          e_span_trail =
            List.map
              (fun s -> (s, Option.value ~default:0 (Hashtbl.find_opt trail_tbl s)))
              expected_stages;
        }
      in
      let countL = Int64.of_int count in
      (* last stage that saw the full burst *)
      let rec last_full prev = function
        | [] -> prev
        | (s, d) :: rest -> if d >= countL then last_full (Some s) rest else prev
      in
      let full_through = last_full None deltas in
      let all_full = List.for_all (fun (_, d) -> d >= countL) deltas in
      if all_full && emitted >= count then
        if List.length external_outputs >= count then (Healthy, evidence)
        else (Lost_after_check_point spec_port, evidence)
      else if all_full (* stages fine but check point starved: deparser ate them *)
      then (Lost_in "deparser", evidence)
      else
        let stage = match full_through with Some s -> s | None -> "parser" in
        (Lost_in stage, evidence)
