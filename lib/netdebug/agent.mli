(** The device-side endpoint of the management channel: owns the generator
    and checker inside the target and executes the host tool's commands. *)

type t

val create :
  program:P4ir.Ast.program -> device:Target.Device.t -> Channel.endpoint -> t
(** Instantiate generator and checker on [device] and bind them to the
    device side of the management channel. *)

val generator : t -> Generator.t
val checker : t -> Checker.t
(** Direct access to the two in-device blocks (tests and the harness
    self-check use these; the host tool goes through {!Controller}). *)

val process : t -> unit
(** Drain and execute every pending host message, sending replies. *)
