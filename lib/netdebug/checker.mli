(** The in-device output packet checker (right box of Figure 1).

    Attaches to the device's check point — before the output interfaces —
    and evaluates programmable rules on every packet the data plane emits,
    at line rate (in the model: synchronously on each emission, with no
    effect on the data path).

    Each rule is a filter/expect pair of P4 expressions over the test
    program's headers; the checker re-parses every output packet with the
    program's parser (never dropping — its parse errors are themselves
    observable through [standard_metadata.parser_error]) and exposes the
    observed output port as [standard_metadata.egress_spec]. Failing
    packets are captured in a bounded ring for the host tool. *)

type t

val create : ?capture_limit:int -> program:P4ir.Ast.program -> Target.Device.t -> t
(** Attaches the device's check tap. [capture_limit] defaults to 64. *)

val configure : t -> Wire.rule list -> unit
(** Replace the rule set and reset statistics and captures. *)

val summary : t -> Wire.checker_summary
(** Counters (seen/passed/failed per rule) plus the capture ring of
    failing packets — the payload of a [Read_checker] reply. *)

val latency : t -> Stats.Histogram.t
(** Per-packet data-plane latency (out - in virtual time) of every packet
    seen at the check point. *)

val throughput : t -> Stats.Rate.t
(** Bit/packet rate over the virtual-time window the check point has
    observed. *)

val clear : t -> unit
(** Reset statistics and captures, keep the rules. *)
