(** The in-device test packet generator (left box of Figure 1).

    Programmable: a configured stream carries a template packet plus field
    mutations expressed against the P4 program's header layout. For each
    packet the generator parses the template with the program's parser,
    applies the mutations, re-deparses, and injects the result directly
    into the data plane under test — after the input interfaces, which is
    what lets NetDebug test a device whose ports are dark.

    The generator's own little pipeline uses spec semantics (it is
    NetDebug's infrastructure, not the device under test) and it refreshes
    the IPv4 checksum after mutation unless a mutation explicitly targets
    the checksum field (so corrupted-checksum test streams are possible). *)

type t

val create : program:P4ir.Ast.program -> Target.Device.t -> t
(** A generator attached to [device]'s injection point, mutating fields
    against [program]'s header layout. *)

val configure : t -> Wire.stream list -> unit
(** Replace the configured streams (template + mutations + count +
    pacing each); nothing is injected until {!start}. *)

val start : t -> unit
(** Render and inject every configured packet, in virtual-time order
    across streams. *)

val send_raw : t -> Bitutil.Bitstring.t -> Target.Device.disposition
(** Single-shot raw injection for batched validation: render [bits] the
    way a mutation-free stream template hits the wire (parse with the
    generator's lenient hooks, deparse, no checksum refresh — all in
    reused scratch, so steady state allocates only the wire copy) and
    inject it back-to-back at the generator's injection point, skipping
    stream configuration and the management protocol. Counts toward
    {!packets_sent} and the cumulative [generator/sent] metric. The
    caller owns quiescing, one per batch (see
    {!Target.Device.inject_batch} and [Fuzz.Oracle]). *)

val packets_sent : t -> int
(** Total packets injected since creation (or the last {!clear}). *)

val last_dispositions : t -> Target.Device.disposition list
(** Dispositions of the packets injected by the most recent {!start}, in
    injection order (useful to tests; not part of the management
    protocol). *)

val clear : t -> unit
(** Drop the configured streams and reset the counters. *)
