(** End-to-end deployment of Figure 1: compile a program with the
    SDNet-style toolchain, instantiate the device, install the
    control-plane entries, attach the in-device agent (generator +
    checker) and hand back a host-side controller wired through the
    management channel. *)

type t = {
  bundle : P4ir.Programs.bundle;
  compile_report : Sdnet.Compile.report;
  device : Target.Device.t;
  agent : Agent.t;
  controller : Controller.t;
}

val deploy :
  ?quirks:Sdnet.Quirks.t ->
  ?config:Target.Config.t ->
  ?install_entries:bool ->
  ?span_sampling:int ->
  ?update_clock:(unit -> int64) ->
  P4ir.Programs.bundle ->
  t
(** [quirks] defaults to {!Sdnet.Quirks.default} — the shipped toolchain,
    reject bug included. [install_entries] defaults to true.
    [span_sampling] overrides the device's default 1-in-64 packet span
    sampling (1 = every packet, 0 = off; metrics stay on regardless).
    [update_clock] feeds the device's per-table [update_ns] telemetry
    (see {!Target.Device.create}).
    @raise Invalid_argument when compilation fails. *)

val replicate : ?faults:bool -> t -> t
(** A fresh, independent deployment equivalent to [t]: same bundle,
    compiled under the same quirks and device configuration, same span
    sampling rate, and the same control-plane entries (cloned from [t]'s
    runtime in install order, so priorities resolve identically). The
    replica shares no mutable state with [t] — its device, registers,
    telemetry and channel are its own — which is what lets worker
    domains drive replicas concurrently (see [Par]). Never replicated:
    broken ports ({!Target.Device.set_port_broken} is a test-local
    perturbation, not a deployment fact) and any traffic history.

    [faults] (default [false]) additionally carries [t]'s injected stage
    faults ({!Target.Device.faults}) onto the replica. Off by design for
    parallel validation sweeps — a replica exists to reproduce the
    {e deployment}, not a perturbation experiment — but a network-scale
    fleet replicating a fabric for sharded analysis must preserve a
    seeded device fault in every replica or localization tests would
    only ever see it on one shard (see [Net.Fabric.replicate]). *)

val trace_health : t -> string
(** One-line telemetry health summary: spans retained/evicted, sampling
    rate, trace events recorded/dropped. Surfaces ring-buffer eviction so
    truncated observability data is never read as complete. *)

val export_artifacts : t -> dir:string -> string list
(** Write [trace.json] (Chrome trace_event, Perfetto-loadable),
    [spans.jsonl] and [metrics.prom] (Prometheus text exposition) into
    [dir] (created if missing, one level deep). Returns the paths
    written. *)

val generator_port : int
(** The internal source port id test packets carry ([ingress_port] seen by
    the program when a packet comes from the generator). *)

val spec_oracle :
  t -> Bitutil.Bitstring.t -> P4ir.Interp.result
(** Run the reference interpreter on the same program, entries and ingress
    port the generator uses: the expected-behaviour oracle. *)

val self_check : t -> (string list, string) result
(** E1 (Figure 1) architecture self-check: the injection point bypasses
    the input interfaces, the check point observes packets ahead of the
    output interfaces, and the management channel round-trips. Returns the
    list of verified facts. *)
