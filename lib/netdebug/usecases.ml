module Ast = P4ir.Ast
module Value = P4ir.Value
module Env = P4ir.Env
module Exec = P4ir.Exec
module Parse = P4ir.Parse
module Interp = P4ir.Interp
module Runtime = P4ir.Runtime
module Programs = P4ir.Programs
module Dsl = P4ir.Dsl
module Quirks = Sdnet.Quirks
module Testgen = Symexec.Testgen
module Compile = Sdnet.Compile
module Config = Target.Config
module Device = Target.Device
module Pipeline = Target.Pipeline
module Resource = Target.Resource
module Bitstring = Bitutil.Bitstring

let ( let* ) r f =
  match r with Ok v -> f v | Error e -> invalid_arg ("Usecases: " ^ e)

(* parse arbitrary output bits with a program's parser, never dropping *)
let observe_fields program bits =
  let env = Env.create program in
  let ctx = Exec.make_ctx ~env ~runtime:(Runtime.create ()) () in
  let hooks = { Parse.on_reject = `Continue; verify_checksum = false; max_steps = 64 } in
  ignore (Parse.run ~hooks ctx bits);
  Env.snapshot_fields env

(* ------------------------------------------------------------------ *)
(* Functional testing                                                  *)
(* ------------------------------------------------------------------ *)

module Functional = struct
  type mismatch = {
    mm_index : int;
    mm_packet : Bitstring.t;
    mm_expected : string;
    mm_got : string;
  }

  type report = { fr_tested : int; fr_mismatches : mismatch list }

  let passed r = r.fr_mismatches = []

  (* expected-output rules: egress port plus one equality per header field
     of the specification's output packet *)
  let rules_for_expected program port out_bits =
    Controller.expect_port port
    :: List.map
         (fun (h, f, v) ->
           Controller.expect
             ~name:(Printf.sprintf "%s.%s" h f)
             (Ast.Bin (Ast.Eq, Ast.Field (h, f), Ast.Const v)))
         (observe_fields program out_bits)

  let never_forward_rule =
    Controller.expect ~name:"unexpected-output" (Ast.Const Value.fls)

  (* the spec's expected-output rules for one vector *)
  let rules_for oracle spec =
    match spec with
    | Interp.Forwarded (port, out_bits) ->
        rules_for_expected oracle.Programs.program port out_bits
    | Interp.Dropped _ -> [ never_forward_rule ]

  (* shared verdict: the spec expectation against the checker's summary,
     identical for the management-protocol path and the batched one *)
  let verdict_of spec i packet (summary : Wire.checker_summary) =
    let mismatch expected got =
      Some { mm_index = i; mm_packet = packet; mm_expected = expected; mm_got = got }
    in
    match spec with
    | Interp.Forwarded (port, _) ->
        if summary.Wire.cs_total_seen = 0 then
          mismatch (Printf.sprintf "forward to port %d" port) "packet never emitted"
        else begin
          let failing =
            List.filter (fun rs -> rs.Wire.rs_failed > 0) summary.Wire.cs_rules
          in
          if failing <> [] then
            mismatch
              (Printf.sprintf "forward to port %d with spec field values" port)
              (Printf.sprintf "rule(s) failed: %s"
                 (String.concat ", " (List.map (fun rs -> rs.Wire.rs_name) failing)))
          else None
        end
    | Interp.Dropped reason ->
        if summary.Wire.cs_total_seen > 0 then
          let port =
            match summary.Wire.cs_captures with
            | c :: _ -> c.Wire.cap_port
            | [] -> -1
          in
          mismatch
            (Printf.sprintf "drop (%s)" reason)
            (Printf.sprintf "forwarded to port %d" port)
        else None

  (* one vector through one deployment: interpret the spec, program the
     checker from it, fire the generator, read the verdict back *)
  let check_vector ?regs oracle oracle_rt (hw : Harness.t) i packet =
    let ctl = hw.Harness.controller in
    let spec =
      (Interp.process ?regs oracle.Programs.program oracle_rt
         ~ingress_port:Harness.generator_port packet)
        .Interp.result
    in
    let* () = Controller.clear_test_state ctl in
    let* () = Controller.configure_checker ctl (rules_for oracle spec) in
    let* () = Controller.configure_generator ctl [ Controller.stream packet ] in
    let* () = Controller.start_generator ctl in
    let* summary = Controller.read_checker ctl in
    verdict_of spec i packet summary

  (* the same verdicts over the direct in-device handles: the spec
     interpretation programs the checker in-process, the generator's raw
     path injects (check taps fire synchronously on emission), and the
     summary is read straight back — no management-protocol round trips
     and one quiesce per batch instead of one per vector (DESIGN.md §15).
     [base] offsets the reported indices; [reset_registers] zeroes the
     device's register file before each vector (the sharded sweep's
     independence contract). *)
  let check_batch ?regs ?(reset_registers = false) ?(base = 0) oracle oracle_rt
      (hw : Harness.t) packets =
    let gen = Agent.generator hw.Harness.agent in
    let chk = Agent.checker hw.Harness.agent in
    let dev = hw.Harness.device in
    let out =
      Array.mapi
        (fun k packet ->
          if reset_registers then P4ir.Regstate.reset (Device.registers dev);
          let spec =
            (Interp.process ?regs oracle.Programs.program oracle_rt
               ~ingress_port:Harness.generator_port packet)
              .Interp.result
          in
          Checker.configure chk (rules_for oracle spec);
          Checker.clear chk;
          ignore (Generator.send_raw gen packet);
          verdict_of spec (base + k) packet (Checker.summary chk))
        packets
    in
    Device.quiesce dev;
    out

  let oracle_runtime oracle =
    let rt = Runtime.create () in
    (match Runtime.install_all oracle.Programs.program rt oracle.Programs.entries with
    | Ok () -> ()
    | Error e -> invalid_arg ("Usecases.Functional: " ^ e));
    rt

  (* parallel sweep: shard the vector array over worker-owned harness
     replicas, each worker validating its chunks through {!check_batch}.
     Every vector is independent (registers reset before each one), so
     the per-vector verdict depends only on the vector — the report is
     identical for any jobs >= 2 regardless of scheduling. *)
  let run_sharded ~jobs oracle oracle_rt (h : Harness.t) vecs =
    Par.Pool.with_pool ~jobs (fun pool ->
        let shards =
          Par.Shard.create pool (fun w ->
              if w = 0 then (h, oracle_rt)
              else (Harness.replicate h, oracle_runtime oracle))
        in
        let n = Array.length vecs in
        let batch = 8 in
        let starts = Array.init ((n + batch - 1) / batch) (fun c -> c * batch) in
        let pieces =
          Par.Pool.map_chunks pool ~chunk:1
            (fun ~worker _ start ->
              let hw, rtw = Par.Shard.get shards ~worker in
              check_batch ~reset_registers:true ~base:start oracle rtw hw
                (Array.sub vecs start (min batch (n - start))))
            starts
        in
        let out = Array.make n None in
        Array.iteri
          (fun c piece -> Array.blit piece 0 out starts.(c) (Array.length piece))
          pieces;
        (* fold worker telemetry back into the caller's device, ascending
           worker order (associative merges: order only for determinism) *)
        Par.Shard.iter shards (fun w (hw, _) ->
            if w > 0 then
              Telemetry.Registry.merge
                ~into:(Device.metrics h.Harness.device)
                (Device.metrics hw.Harness.device));
        out)

  let run ?oracle ?vectors ?(fuzz = 32) ?fuzz_seed ?(stateful = false) ?(jobs = 1)
      (h : Harness.t) =
    let oracle = match oracle with Some b -> b | None -> h.Harness.bundle in
    let oracle_rt = oracle_runtime oracle in
    let vectors =
      match vectors with
      | Some v -> v
      | None -> Vectors.from_paths oracle.Programs.program oracle_rt
    in
    let vectors = vectors @ Vectors.fuzz ?seed:fuzz_seed ~count:fuzz () in
    let jobs = max 1 jobs in
    if stateful then begin
      (* stateful mode: thread one register store through the oracle and
         start the device's registers from a known (zero) state, so both
         sides see the same packet history — inherently sequential *)
      P4ir.Regstate.reset (Device.registers h.Harness.device);
      let oracle_regs = Some (P4ir.Regstate.create oracle.Programs.program) in
      let mismatches = ref [] in
      List.iteri
        (fun i packet ->
          match check_vector ?regs:oracle_regs oracle oracle_rt h i packet with
          | Some m -> mismatches := m :: !mismatches
          | None -> ())
        vectors;
      { fr_tested = List.length vectors; fr_mismatches = List.rev !mismatches }
    end
    else begin
      let vecs = Array.of_list vectors in
      let results =
        if jobs > 1 then run_sharded ~jobs oracle oracle_rt h vecs
        else check_batch oracle oracle_rt h vecs
      in
      {
        fr_tested = Array.length vecs;
        fr_mismatches = List.filter_map Fun.id (Array.to_list results);
      }
    end

  let pp ppf r =
    Format.fprintf ppf "functional: %d vectors, %d mismatch(es)" r.fr_tested
      (List.length r.fr_mismatches);
    List.iteri
      (fun i m ->
        if i < 5 then
          Format.fprintf ppf "@\n  #%d expected %s, got %s" m.mm_index m.mm_expected
            m.mm_got)
      r.fr_mismatches

  (* ---------------------------------------------------------------- *)
  (* Per-path divergence check (symexec oracle vs device)              *)
  (* ---------------------------------------------------------------- *)

  type divergence = {
    dv_path : int;
    dv_descr : string;
    dv_expected : string;
    dv_got : string;
  }

  type path_report = {
    pr_oracle : Testgen.report;
    pr_checked : int;
    pr_skipped : int;  (* state-dependent vectors not used as oracles *)
    pr_divergences : divergence list;
  }

  let paths_agree r = r.pr_divergences = []
  let first_divergence r = match r.pr_divergences with [] -> None | d :: _ -> Some d

  (* one oracle vector through the generator/checker loop: program the
     checker from the *symbolic* expectation (never the interpreter), fire
     the generator, read the verdict *)
  let check_path_vector (hw : Harness.t) (v : Testgen.vector) =
    let ctl = hw.Harness.controller in
    let* () = Controller.clear_test_state ctl in
    let rules =
      match v.Testgen.v_expected with
      | Testgen.Forward port -> [ Controller.expect_port port ]
      | Testgen.Drop _ -> [ never_forward_rule ]
    in
    let* () = Controller.configure_checker ctl rules in
    let* () = Controller.configure_generator ctl [ Controller.stream v.Testgen.v_packet ] in
    let* () = Controller.start_generator ctl in
    let* summary = Controller.read_checker ctl in
    let diverged got =
      Some
        {
          dv_path = v.Testgen.v_path;
          dv_descr = v.Testgen.v_descr;
          dv_expected = Testgen.expected_str v.Testgen.v_expected;
          dv_got = got;
        }
    in
    match v.Testgen.v_expected with
    | Testgen.Forward _ ->
        if summary.Wire.cs_total_seen = 0 then diverged "packet never emitted"
        else begin
          let failing =
            List.filter (fun rs -> rs.Wire.rs_failed > 0) summary.Wire.cs_rules
          in
          if failing = [] then None
          else
            let port =
              match summary.Wire.cs_captures with
              | c :: _ -> c.Wire.cap_port
              | [] -> -1
            in
            diverged (Printf.sprintf "forwarded to port %d" port)
        end
    | Testgen.Drop _ ->
        if summary.Wire.cs_total_seen = 0 then None
        else
          let port =
            match summary.Wire.cs_captures with
            | c :: _ -> c.Wire.cap_port
            | [] -> -1
          in
          diverged (Printf.sprintf "forwarded to port %d" port)

  let check_paths ?seed ?max_paths ?(jobs = 1) ?oracle (h : Harness.t) =
    let oracle = match oracle with Some b -> b | None -> h.Harness.bundle in
    let oracle_rt = oracle_runtime oracle in
    let jobs = max 1 jobs in
    let report =
      Testgen.generate ?seed ?max_paths ~jobs ~ingress_port:Harness.generator_port
        oracle.Programs.program oracle_rt
    in
    let usable, skipped =
      List.partition (fun v -> not v.Testgen.v_state_dependent) report.Testgen.tg_vectors
    in
    let vecs = Array.of_list usable in
    let results =
      if jobs <= 1 || Array.length vecs < 2 then
        Array.map
          (fun v ->
            P4ir.Regstate.reset (Device.registers h.Harness.device);
            check_path_vector h v)
          vecs
      else
        Par.Pool.with_pool ~jobs (fun pool ->
            let shards =
              Par.Shard.create pool (fun w -> if w = 0 then h else Harness.replicate h)
            in
            let out =
              Par.Pool.map_chunks pool ~chunk:2
                (fun ~worker _ v ->
                  let hw = Par.Shard.get shards ~worker in
                  P4ir.Regstate.reset (Device.registers hw.Harness.device);
                  check_path_vector hw v)
                vecs
            in
            Par.Shard.iter shards (fun w hw ->
                if w > 0 then
                  Telemetry.Registry.merge
                    ~into:(Device.metrics h.Harness.device)
                    (Device.metrics hw.Harness.device));
            out)
    in
    (* results keep array order = ascending path id, so the head of the
       divergence list is always the first diverging path *)
    let divergences = List.filter_map Fun.id (Array.to_list results) in
    {
      pr_oracle = report;
      pr_checked = Array.length vecs;
      pr_skipped = List.length skipped;
      pr_divergences = divergences;
    }

  let pp_paths ppf r =
    let s = r.pr_oracle.Testgen.tg_stats in
    Format.fprintf ppf "path check: %s@\n" r.pr_oracle.Testgen.tg_program;
    Format.fprintf ppf "  paths: %d enumerated, %d solved, %d checked, %d skipped@\n"
      s.Testgen.tg_paths s.Testgen.tg_solved r.pr_checked r.pr_skipped;
    Format.fprintf ppf "  divergences: %d" (List.length r.pr_divergences);
    List.iter
      (fun d ->
        Format.fprintf ppf "@\n  path %d diverged: expected %s, got %s@\n    %s"
          d.dv_path d.dv_expected d.dv_got d.dv_descr)
      r.pr_divergences
end

(* ------------------------------------------------------------------ *)
(* Performance testing                                                 *)
(* ------------------------------------------------------------------ *)

module Performance = struct
  type point = {
    pt_offered_gbps : float;
    pt_achieved_gbps : float;
    pt_achieved_mpps : float;
    pt_lat_p50_ns : float;
    pt_lat_p99_ns : float;
    pt_sent : int;
    pt_received : int;
  }

  let default_loads = [ 0.1; 0.25; 0.5; 0.75; 0.9; 1.0; 1.1; 1.25 ]

  let sweep ?(loads = default_loads) ?(packets_per_point = 2000) (h : Harness.t) ~probe =
    let ctl = h.Harness.controller in
    let cfg = Device.config h.Harness.device in
    let line_gbps = Config.line_rate_gbps cfg in
    let bits_per_packet = float_of_int (Bitstring.byte_length probe * 8) in
    List.map
      (fun load ->
        let offered_gbps = load *. line_gbps in
        let interval_ns = bits_per_packet /. offered_gbps in
        let* () = Controller.clear_test_state ctl in
        let* () = Controller.configure_checker ctl [] in
        let* () =
          Controller.configure_generator ctl
            [ Controller.stream ~count:packets_per_point ~interval_ns probe ]
        in
        let* () = Controller.start_generator ctl in
        let* summary = Controller.read_checker ctl in
        {
          pt_offered_gbps = offered_gbps;
          pt_achieved_gbps = summary.Wire.cs_gbps;
          pt_achieved_mpps = summary.Wire.cs_pps /. 1e6;
          pt_lat_p50_ns = summary.Wire.cs_lat_p50_ns;
          pt_lat_p99_ns = summary.Wire.cs_lat_p99_ns;
          pt_sent = packets_per_point;
          pt_received = summary.Wire.cs_total_seen;
        })
      loads
end

(* ------------------------------------------------------------------ *)
(* Compiler check                                                      *)
(* ------------------------------------------------------------------ *)

module Compiler_check = struct
  type detection = {
    dq_quirk : Quirks.quirk option;
    dq_program : string;
    dq_detected : bool;
    dq_evidence : string;
  }

  (* a program whose output depends on a wide shift: a 5-bit shifter
     computes << (40 mod 32) = << 8 instead of << 40 *)
  let shifter =
    {
      Programs.reflector with
      Programs.program =
        {
          Programs.reflector.Programs.program with
          Ast.p_name = "shifter";
          p_ingress =
            [
              Dsl.set_field "eth" "dst"
                (Ast.Bin (Ast.Shl, Dsl.fld "eth" "dst", Dsl.const ~width:8 40));
              Dsl.set_std Ast.Egress_spec (Dsl.const ~width:9 0);
            ];
        };
    }

  (* each quirk is probed with a program whose behaviour it perturbs *)
  let sensitive_program (q : Quirks.quirk) =
    match q with
    | Quirks.Reject_unimplemented -> Programs.parser_guard
    | Quirks.Ternary_as_exact -> Programs.acl_firewall
    | Quirks.Shift_width_truncated _ -> shifter
    | Quirks.Egress_drop_ignored ->
        {
          Programs.reflector with
          Programs.program =
            {
              Programs.reflector.Programs.program with
              Ast.p_name = "egress_dropper";
              p_ingress = [ Dsl.set_std Ast.Egress_spec (Dsl.const ~width:9 0) ];
              p_egress =
                [
                  Dsl.when_
                    Dsl.(fld "eth" "ethertype" ==: const ~width:16 0x0800)
                    [ Ast.MarkToDrop ];
                ];
            };
        }
    | Quirks.Select_cases_truncated _ -> Programs.mpls_tunnel
    | Quirks.Checksum_not_handled -> Programs.basic_router

  let detect quirks bundle =
    let h = Harness.deploy ~quirks bundle in
    let base = Functional.run ~fuzz:24 h in
    (* checksum handling needs a deliberately corrupted probe *)
    let extra =
      if List.mem Quirks.Checksum_not_handled quirks || quirks = [] then
        let corrupted =
          Packet.serialize
            (Packet.map_ipv4
               (fun ip -> { ip with Packet.Ipv4.checksum = 0xBADL })
               (Packet.udp_ipv4 ~dst:0x0A000001L ()))
        in
        Functional.run ~vectors:[ corrupted ] ~fuzz:0 h
      else { Functional.fr_tested = 0; fr_mismatches = [] }
    in
    let mismatches = base.Functional.fr_mismatches @ extra.Functional.fr_mismatches in
    ( mismatches <> [],
      match mismatches with
      | [] -> Printf.sprintf "%d vectors, all match the specification"
                (base.Functional.fr_tested + extra.Functional.fr_tested)
      | m :: _ ->
          Printf.sprintf "%d/%d vectors diverge (first: expected %s, got %s)"
            (List.length mismatches)
            (base.Functional.fr_tested + extra.Functional.fr_tested)
            m.Functional.mm_expected m.Functional.mm_got )

  let battery () =
    let control =
      let bundle = Programs.basic_router in
      let detected, evidence = detect Quirks.none bundle in
      {
        dq_quirk = None;
        dq_program = bundle.Programs.program.Ast.p_name;
        dq_detected = detected;
        dq_evidence = evidence;
      }
    in
    control
    :: List.map
         (fun q ->
           let bundle = sensitive_program q in
           let detected, evidence = detect [ q ] bundle in
           {
             dq_quirk = Some q;
             dq_program = bundle.Programs.program.Ast.p_name;
             dq_detected = detected;
             dq_evidence = evidence;
           })
         Quirks.all
end

(* ------------------------------------------------------------------ *)
(* Architecture check                                                  *)
(* ------------------------------------------------------------------ *)

module Architecture_check = struct
  type probe_result = { ar_limit : string; ar_discovered : int; ar_documented : int }

  let base = Programs.reflector.Programs.program

  let chain_parser n =
    List.init n (fun i ->
        let name = if i = 0 then "start" else Printf.sprintf "s%d" i in
        let extracts = if i = 0 then [ "eth" ] else [] in
        if i = n - 1 then Dsl.state name ~extracts Dsl.accept
        else Dsl.state name ~extracts (Dsl.goto (Printf.sprintf "s%d" (i + 1))))

  let with_parser n = { base with Ast.p_name = "probe_parser"; p_parser = chain_parser n }

  let with_tables n =
    {
      base with
      Ast.p_name = "probe_tables";
      p_actions = [ Dsl.action "noop" [] [] ];
      p_tables =
        List.init n (fun i ->
            Dsl.table ~size:4
              (Printf.sprintf "t%d" i)
              [ (Dsl.fld "eth" "dst", Ast.Exact) ]
              [ "noop" ] ~default:"noop" ());
      p_ingress = List.init n (fun i -> Ast.Apply (Printf.sprintf "t%d" i));
    }

  let with_entries n =
    {
      base with
      Ast.p_name = "probe_entries";
      p_actions = [ Dsl.action "noop" [] [] ];
      p_tables =
        [
          Dsl.table ~size:n "big"
            [ (Dsl.fld "eth" "dst", Ast.Exact) ]
            [ "noop" ] ~default:"noop" ();
        ];
      p_ingress = [ Ast.Apply "big" ];
    }

  let with_key_bits n =
    (* n must be assembled from 48-bit MAC fields plus a remainder slice *)
    let full = n / 48 in
    let rem = n mod 48 in
    let keys =
      List.init full (fun i ->
          ((if i mod 2 = 0 then Dsl.fld "eth" "dst" else Dsl.fld "eth" "src"), Ast.Exact))
      @ (if rem > 0 then [ (Ast.Slice (Dsl.fld "eth" "dst", rem - 1, 0), Ast.Exact) ] else [])
    in
    {
      base with
      Ast.p_name = "probe_keys";
      p_actions = [ Dsl.action "noop" [] [] ];
      p_tables = [ Dsl.table ~size:4 "wide" keys [ "noop" ] ~default:"noop" () ];
      p_ingress = [ Ast.Apply "wide" ];
    }

  (* largest n in [1, hi] for which [accepts n]; assumes monotonicity *)
  let search accepts hi =
    let lo = ref 0 and hi = ref hi in
    if accepts 1 then begin
      let l = ref 1 in
      while !l * 2 <= !hi && accepts (!l * 2) do
        l := !l * 2
      done;
      lo := !l;
      hi := min !hi (!l * 2);
      while !lo + 1 < !hi do
        let mid = (!lo + !hi) / 2 in
        if accepts mid then lo := mid else hi := mid
      done;
      !lo
    end
    else 0

  let probe ?(config = Config.netfpga_sume) () =
    let compiles program =
      match Compile.compile ~quirks:Quirks.none ~config program with
      | Ok _ -> true
      | Error _ -> false
    in
    [
      {
        ar_limit = "parser states";
        ar_discovered = search (fun n -> compiles (with_parser n)) (4 * config.Config.max_parser_states);
        ar_documented = config.Config.max_parser_states;
      };
      {
        ar_limit = "tables";
        ar_discovered = search (fun n -> compiles (with_tables n)) (4 * config.Config.max_tables);
        ar_documented = config.Config.max_tables;
      };
      {
        ar_limit = "entries per table";
        ar_discovered =
          search (fun n -> compiles (with_entries n)) (4 * config.Config.max_table_entries);
        ar_documented = config.Config.max_table_entries;
      };
      {
        ar_limit = "match key bits";
        ar_discovered = search (fun n -> compiles (with_key_bits n)) (4 * config.Config.max_key_bits);
        ar_documented = config.Config.max_key_bits;
      };
    ]
end

(* ------------------------------------------------------------------ *)
(* Resources quantification                                            *)
(* ------------------------------------------------------------------ *)

module Resources = struct
  type row = {
    rr_program : string;
    rr_stages : int;
    rr_latency_cycles : int;
    rr_luts : int;
    rr_ffs : int;
    rr_brams : int;
    rr_tcam_bits : int;
    rr_max_util_pct : float;
  }

  let inventory ?(config = Config.netfpga_sume) ?(bundles = Programs.all) () =
    List.filter_map
      (fun (b : Programs.bundle) ->
        match Compile.compile ~config b.Programs.program with
        | Error _ -> None
        | Ok report ->
            let p = report.Compile.pipeline in
            let r = p.Pipeline.resources in
            let util = Resource.utilization r config in
            Some
              {
                rr_program = b.Programs.program.Ast.p_name;
                rr_stages = List.length p.Pipeline.stages;
                rr_latency_cycles = Pipeline.total_latency_cycles p;
                rr_luts = r.Resource.luts;
                rr_ffs = r.Resource.ffs;
                rr_brams = r.Resource.brams;
                rr_tcam_bits = r.Resource.tcam_bits;
                rr_max_util_pct = List.fold_left (fun acc (_, p) -> max acc p) 0.0 util;
              })
      bundles
end

(* ------------------------------------------------------------------ *)
(* Status monitoring                                                   *)
(* ------------------------------------------------------------------ *)

module Status = struct
  let monitor ?(period_packets = 50) ?(samples = 10) ?(load = 0.5) (h : Harness.t)
      ~background =
    let cfg = Device.config h.Harness.device in
    (* live traffic paced at [load] x line rate, relative to the device's
       current clock — on a reused harness an absolute-zero schedule
       would land every packet in the past and tail-drop the RX ring *)
    let wire_bits = float_of_int (Bitstring.byte_length background * 8) in
    let interval_ns = wire_bits /. (load *. Config.line_rate_gbps cfg) in
    (* drain any backlog a previous use-case left queued: the paced
       schedule models an otherwise-idle device, and a pre-existing
       burst would tail-drop against the monitoring traffic *)
    Device.quiesce h.Harness.device;
    let t0 = Device.now_ns h.Harness.device in
    let out = ref [] in
    let n = ref 0 in
    for s = 0 to samples - 1 do
      for i = 0 to period_packets - 1 do
        let port = ((s * period_packets) + i) mod cfg.Config.ports in
        let at_ns = t0 +. (float_of_int !n *. interval_ns) in
        incr n;
        ignore
          (Device.inject h.Harness.device ~source:(Device.External port) ~at_ns background)
      done;
      let* snapshot = Controller.read_status h.Harness.controller in
      out := snapshot :: !out
    done;
    List.rev !out
end

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

module Comparison = struct
  type divergence = {
    dv_index : int;
    dv_probe : Bitstring.t;
    dv_a : string;
    dv_b : string;
  }

  type report = { cr_compared : int; cr_divergences : divergence list }

  let equivalent r = r.cr_divergences = []

  (* a rule that fails on every packet turns the capture ring into a
     port+bits mirror of everything the data plane emits *)
  let mirror_rule = Controller.expect ~name:"mirror" (Ast.Const Value.fls)

  let outcome_of (h : Harness.t) probe =
    let ctl = h.Harness.controller in
    let* () = Controller.clear_test_state ctl in
    let* () = Controller.configure_checker ctl [ mirror_rule ] in
    let* () = Controller.configure_generator ctl [ Controller.stream probe ] in
    let* () = Controller.start_generator ctl in
    let* summary = Controller.read_checker ctl in
    match summary.Wire.cs_captures with
    | [] -> "drop"
    | c :: _ ->
        Printf.sprintf "port %d, %s" c.Wire.cap_port (Bitstring.to_hex c.Wire.cap_bits)

  let run ?(quirks_a = Quirks.default) ?(quirks_b = Quirks.default) ?probes bundle_a
      bundle_b =
    let ha = Harness.deploy ~quirks:quirks_a bundle_a in
    let hb = Harness.deploy ~quirks:quirks_b bundle_b in
    let probes =
      match probes with
      | Some p -> p
      | None ->
          let rt = Runtime.create () in
          (match
             Runtime.install_all bundle_a.Programs.program rt bundle_a.Programs.entries
           with
          | Ok () -> ()
          | Error e -> invalid_arg ("Usecases.Comparison: " ^ e));
          Vectors.from_paths bundle_a.Programs.program rt @ Vectors.fuzz ~count:16 ()
    in
    let divergences = ref [] in
    List.iteri
      (fun i probe ->
        let a = outcome_of ha probe and b = outcome_of hb probe in
        if not (String.equal a b) then
          divergences := { dv_index = i; dv_probe = probe; dv_a = a; dv_b = b } :: !divergences)
      probes;
    { cr_compared = List.length probes; cr_divergences = List.rev !divergences }
end
