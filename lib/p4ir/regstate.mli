(** Stateful register storage.

    One instance per executor (a device owns one for its lifetime; the
    reference interpreter gets a fresh one per call unless the caller
    threads its own) — that ownership difference is exactly the difference
    between simulating hardware state and evaluating a single-packet
    specification. *)

type t

val create : Ast.program -> t
(** Arrays for every declared register, zero-initialized. *)

val read : t -> string -> int -> Value.t
(** Out-of-range indices read zero (of the register's width).
    @raise Invalid_argument for an undeclared register. *)

val write : t -> string -> int -> Value.t -> unit
(** Out-of-range indices are ignored; values are truncated to the
    register width. *)

val reset : t -> unit

val dump : t -> string -> Value.t array
(** Snapshot of one register array (copy). *)

val cells : t -> string -> int * Value.t array
(** [(width, live cell array)] — the store itself, not a copy; mutations
    are shared with {!read}/{!write}. Used by the staged engine to resolve
    register accesses to array slots once at instantiation time.
    @raise Invalid_argument for an undeclared register. *)
