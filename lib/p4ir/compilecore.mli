(** Staged execution engine: compile the P4 IR to closures at deploy time.

    [compile] runs once per (program, hooks) configuration and lowers the
    whole IR — slot-interned headers/metadata with precomputed bit offsets
    and masks, the parser FSM as a dispatch table over state indices,
    match-action tables onto the runtime's incremental {!Classifier}
    structures (patched in place by control-plane updates, so a churn
    storm never re-lowers a table) with a per-entry-id cache of compiled
    action closures, actions as closure chains over a positional argument
    vector, and the deparser as an emit loop into a reused
    {!Bitutil.Bitstring.Builder}.

    [instantiate] then binds the compiled form to a control plane
    ({!Runtime.t}), register storage and observation callbacks, yielding a
    mutable per-executor instance that processes packets with no
    steady-state allocation. Under [NETDEBUG_CLASSIFIER=scan] tables fall
    back to the legacy specialized matchers (single exact key -> hash
    table; the general case -> a presorted first-match scan equivalent to
    {!Entry.select}; pathological entries -> a byte-for-byte
    [Entry.select] replica), rebuilt lazily when the table's own
    {!Runtime.tslot_gen} moves — never on churn to other tables.

    The staged engine is observationally equivalent to the tree-walking
    interpreter ({!Parse}/{!Exec}/{!Deparse}) under the same hooks:
    identical results, callbacks in the same order, identical exception
    messages at the same program points. Sole documented deviation: action
    parameters resolve with static per-action scoping, where the tree
    engine's environment stack would also expose a dynamically enclosing
    action's parameters — programs relying on that are rejected by
    {!Typecheck}, so the engines agree on every well-typed program. *)

type engine = [ `Tree | `Staged ]

val default_engine : unit -> engine
(** [`Staged] unless the [NETDEBUG_ENGINE] environment variable is set to
    ["tree"] (case-insensitive). Read once per process. *)

type t
(** A compiled program: immutable, shareable across instances (and across
    domains — compilation closes over no mutable state). *)

type inst
(** A mutable execution context bound to one runtime, one register store
    and one set of observation callbacks. Not thread-safe; one per
    executor (the parallel engine instantiates per-domain). *)

val compile :
  ?exec_hooks:Exec.hooks ->
  ?parse_hooks:Parse.hooks ->
  ?update_ipv4_checksum:bool ->
  Ast.program ->
  t
(** Hooks default to the spec hooks; [update_ipv4_checksum] defaults to
    the program's own flag. All hooks except [table_always_miss] are baked
    into the compiled code; [table_always_miss] stays dynamic (it can be
    overridden per instance, which the device simulator uses for
    stuck-at-miss fault injection). *)

val spec_compiled : Ast.program -> t
(** [compile] under pure spec hooks, memoized per domain on the program's
    physical identity (bounded LRU). This is what {!Interp} uses. *)

(** {1 Compiled-form accessors}

    Counters, asserts, tables and parser states are interned to dense
    integer ids; callbacks receive ids and these map them back. *)

val program : t -> Ast.program
val n_counters : t -> int
val counter_name : t -> int -> string
val n_tables : t -> int
val table_name : t -> int -> string
val assert_msg : t -> int -> string
val has_registers : t -> bool

(** {1 Instances} *)

val instantiate :
  ?on_count:(int -> unit) ->
  ?on_assert:(bool -> int -> unit) ->
  ?on_table:(int -> bool -> string -> unit) ->
  ?table_always_miss:(string -> bool) ->
  ?regs:Regstate.t ->
  ?track_states:bool ->
  t ->
  runtime:Runtime.t ->
  inst
(** [on_table id hit action] fires before the action body runs, hit or
    miss, exactly like [Exec.apply_table]. [on_assert ok id] fires on
    every assert. [table_always_miss] overrides the compiled hooks' (the
    device wraps it with live fault state); [regs] defaults to a fresh
    zeroed store; [track_states] (default false) records parser states
    for {!parse_outcome}. *)

val set_regs : inst -> Regstate.t -> unit
(** Rebind register storage (slot resolution happens here, once). *)

val set_track_states : inst -> bool -> unit

val reset : inst -> unit
(** Clear all per-packet state: fields, validity, metadata, standard
    metadata, parse results. Registers and table matchers persist. *)

val set_ingress_port : inst -> int -> unit

val run_parser : inst -> Bitutil.Bitstring.t -> unit
(** Parse a packet (also sets [packet_length]). Results via
    {!parse_accepted}/{!parse_error}/{!parse_outcome}. *)

val parse_accepted : inst -> bool
val parse_error : inst -> int

val parse_outcome : inst -> Parse.outcome
(** [states_visited] is empty unless the instance tracks states. *)

val run_ingress : inst -> unit
val run_egress : inst -> unit

val dropped : inst -> bool
(** [egress_spec] holds {!Stdmeta.drop_port}. *)

val egress_port : inst -> int

val deparse : inst -> Bitutil.Bitstring.t
(** Emit valid headers in deparser order plus the payload, updating the
    IPv4 checksum first when configured — into a reused buffer, so the
    only allocation is the final immutable snapshot. *)

val corrupt_field : inst -> string -> string -> int64 -> unit
(** [corrupt_field i h f mask] XORs [mask] into a field of a valid header
    (no-op when invalid), mirroring the device simulator's corrupt fault.
    @raise Invalid_argument for undeclared names, like {!Env.get_field}. *)
