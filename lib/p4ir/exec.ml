type phase = Ingress | Egress

type hooks = {
  shift_amount : int -> int;
  drop_effective : phase -> bool;
  degrade_ternary_to_exact : bool;
  table_always_miss : string -> bool;
}

let spec_hooks =
  {
    shift_amount = Fun.id;
    drop_effective = (fun _ -> true);
    degrade_ternary_to_exact = false;
    table_always_miss = (fun _ -> false);
  }

type ctx = {
  env : Env.t;
  runtime : Runtime.t;
  regs : Regstate.t;
  hooks : hooks;
  mutable phase : phase;
  on_count : string -> unit;
  on_assert : bool -> string -> unit;
  on_table : table:string -> hit:bool -> action:string -> unit;
}

let make_ctx ?(hooks = spec_hooks) ?(on_count = fun _ -> ()) ?(on_assert = fun _ _ -> ())
    ?(on_table = fun ~table:_ ~hit:_ ~action:_ -> ()) ?regs ~env ~runtime () =
  let regs = match regs with Some r -> r | None -> Regstate.create (Env.program env) in
  { env; runtime; regs; hooks; phase = Ingress; on_count; on_assert; on_table }

let env ctx = ctx.env

let set_phase ctx phase = ctx.phase <- phase

let rec eval ctx (e : Ast.expr) : Value.t =
  match e with
  | Const v -> v
  | Field (h, f) -> Env.get_field ctx.env h f
  | Meta m -> Env.get_meta ctx.env m
  | Std sf -> Env.get_std ctx.env sf
  | Param p -> Env.get_param ctx.env p
  | Valid h -> Value.of_bool (Env.is_valid ctx.env h)
  | Un (BNot, e1) -> Value.lognot (eval ctx e1)
  | Un (LNot, e1) -> Value.of_bool (not (Value.to_bool (eval ctx e1)))
  | Slice (e1, msb, lsb) -> Value.slice (eval ctx e1) ~msb ~lsb
  | Concat (e1, e2) -> Value.concat (eval ctx e1) (eval ctx e2)
  | Bin (LAnd, e1, e2) ->
      if Value.to_bool (eval ctx e1) then Value.of_bool (Value.to_bool (eval ctx e2))
      else Value.fls
  | Bin (LOr, e1, e2) ->
      if Value.to_bool (eval ctx e1) then Value.tru
      else Value.of_bool (Value.to_bool (eval ctx e2))
  | Bin (Shl, e1, e2) ->
      let amount = ctx.hooks.shift_amount (Value.to_int (eval ctx e2)) in
      Value.shift_left (eval ctx e1) amount
  | Bin (Shr, e1, e2) ->
      let amount = ctx.hooks.shift_amount (Value.to_int (eval ctx e2)) in
      Value.shift_right (eval ctx e1) amount
  | Bin (op, e1, e2) -> (
      let a = eval ctx e1 and b = eval ctx e2 in
      match op with
      | Add -> Value.add a b
      | Sub -> Value.sub a b
      | Mul -> Value.mul a b
      | BAnd -> Value.logand a b
      | BOr -> Value.logor a b
      | BXor -> Value.logxor a b
      | Eq -> Value.eq a b
      | Neq -> Value.neq a b
      | Lt -> Value.lt a b
      | Le -> Value.le a b
      | Gt -> Value.gt a b
      | Ge -> Value.ge a b
      | Shl | Shr | LAnd | LOr -> assert false)

let assign ctx (lv : Ast.lvalue) v =
  match lv with
  | LField (h, f) -> Env.set_field ctx.env h f v
  | LMeta m -> Env.set_meta ctx.env m v
  | LStd sf -> Env.set_std ctx.env sf v

let rec run_stmts ctx stmts = List.iter (run_stmt ctx) stmts

and run_stmt ctx (s : Ast.stmt) =
  match s with
  | Nop -> ()
  | Assign (lv, e) -> assign ctx lv (eval ctx e)
  | If (cond, then_, else_) ->
      if Value.to_bool (eval ctx cond) then run_stmts ctx then_ else run_stmts ctx else_
  | SetValid h -> Env.set_valid ctx.env h
  | SetInvalid h -> Env.set_invalid ctx.env h
  | MarkToDrop ->
      if ctx.hooks.drop_effective ctx.phase then
        Env.set_std ctx.env Ast.Egress_spec (Value.of_int ~width:9 Stdmeta.drop_port)
  | Count c -> ctx.on_count c
  | Assert (cond, msg) -> ctx.on_assert (Value.to_bool (eval ctx cond)) msg
  | RegRead (lv, reg, idx) ->
      let i = Value.to_int (eval ctx idx) in
      assign ctx lv (Regstate.read ctx.regs reg i)
  | RegWrite (reg, idx, value) ->
      let i = Value.to_int (eval ctx idx) in
      Regstate.write ctx.regs reg i (eval ctx value)
  | Apply table -> apply_table ctx table

and run_action ctx name args =
  match Ast.find_action (Env.program ctx.env) name with
  | None -> invalid_arg (Printf.sprintf "Exec: undeclared action %s" name)
  | Some action ->
      if List.length args <> List.length action.a_params then
        invalid_arg (Printf.sprintf "Exec: action %s arity mismatch" name);
      let bindings =
        List.map2
          (fun (p : Ast.field_decl) arg ->
            (p.f_name, Value.make ~width:p.f_width (Value.to_int64 arg)))
          action.a_params args
      in
      Env.with_params ctx.env bindings (fun () -> run_stmts ctx action.a_body)

and apply_table ctx name =
  match Ast.find_table (Env.program ctx.env) name with
  | None -> invalid_arg (Printf.sprintf "Exec: undeclared table %s" name)
  | Some tbl ->
      let keys = List.map (fun (e, _) -> eval ctx e) tbl.t_keys in
      let degrade_ternary_to_exact = ctx.hooks.degrade_ternary_to_exact in
      let hit =
        if ctx.hooks.table_always_miss name then None
        else Runtime.lookup ctx.runtime ~table:name ~degrade_ternary_to_exact keys
      in
      (match hit with
      | Some e ->
          ctx.on_table ~table:name ~hit:true ~action:e.Entry.action;
          run_action ctx e.Entry.action e.Entry.args
      | None ->
          ctx.on_table ~table:name ~hit:false ~action:tbl.t_default_action;
          run_action ctx tbl.t_default_action tbl.t_default_args)
