type mkey =
  | Exact_v of Value.t
  | Lpm_v of Value.t * int
  | Ternary_v of Value.t * Value.t

type t = { priority : int; keys : mkey list; action : string; args : Value.t list }

let make ?(priority = 0) ~keys ~action ?(args = []) () = { priority; keys; action; args }

let exact v = Exact_v v

let lpm v len = Lpm_v (v, len)

let ternary v m = Ternary_v (v, m)

(* The lookup path ([keys_match]/[select]) runs once per entry per table
   apply, so it must not allocate: the quirk flag travels as a plain bool
   (never an option) and the scan below is closure-free recursion. *)
let key_matches_b dte mk v =
  match mk with
  | Exact_v e -> Value.to_int64 e = Value.to_int64 v
  | Lpm_v (e, len) -> Value.matches_prefix v ~value:(Value.to_int64 e) ~prefix_len:len
  | Ternary_v (e, m) ->
      if dte then Value.to_int64 e = Value.to_int64 v
      else Value.matches_mask v ~value:(Value.to_int64 e) ~mask:(Value.to_int64 m)

let key_matches ?(degrade_ternary_to_exact = false) mk v =
  key_matches_b degrade_ternary_to_exact mk v

let rec keys_match dte mks vs =
  match (mks, vs) with
  | [], [] -> true
  | mk :: mks, v :: vs -> key_matches_b dte mk v && keys_match dte mks vs
  | _, _ -> false

let matches ?(degrade_ternary_to_exact = false) t vs =
  keys_match degrade_ternary_to_exact t.keys vs

let popcount v =
  let rec go acc v = if v = 0L then acc else go (acc + 1) Int64.(logand v (sub v 1L)) in
  go 0 v

let specificity t =
  List.fold_left
    (fun acc mk ->
      acc
      +
      match mk with
      | Exact_v v -> Value.width v
      | Lpm_v (_, len) -> len
      | Ternary_v (_, m) -> popcount (Value.to_int64 m))
    0 t.keys

(* [select_first] finds the first matching entry, then [select_improve]
   carries the best-so-far as plain arguments; the only allocation on the
   whole scan is the final [Some]. Earlier install order wins remaining
   ties because replacement requires a strict improvement. Top-level (not
   nested in [select]) so no closure is built per lookup. *)
let rec select_improve dte vs best bp bs = function
  | [] -> Some best
  | e :: rest ->
      if
        keys_match dte e.keys vs
        && (e.priority > bp || (e.priority = bp && specificity e > bs))
      then select_improve dte vs e e.priority (specificity e) rest
      else select_improve dte vs best bp bs rest

let rec select_first dte vs = function
  | [] -> None
  | e :: rest ->
      if keys_match dte e.keys vs then
        select_improve dte vs e e.priority (specificity e) rest
      else select_first dte vs rest

let select ?(degrade_ternary_to_exact = false) entries vs =
  select_first degrade_ternary_to_exact vs entries

let pp_mkey ppf = function
  | Exact_v v -> Format.fprintf ppf "=%a" Value.pp v
  | Lpm_v (v, len) -> Format.fprintf ppf "%a/%d" Value.pp v len
  | Ternary_v (v, m) -> Format.fprintf ppf "%a&&&%a" Value.pp v Value.pp m

let pp ppf t =
  Format.fprintf ppf "@[prio=%d [%a] -> %s(%a)@]" t.priority
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_mkey)
    t.keys t.action
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    t.args
