(** Control-plane table state: the set of entries installed in each table.

    Installation is validated against the program (table exists, action
    permitted, key arity and widths, argument arity and widths, capacity),
    mirroring what a runtime API such as P4Runtime enforces. The same
    runtime state drives both the reference interpreter and the compiled
    device, modelling the shared control plane of Figure 1. *)

type t

val create : unit -> t

val copy : t -> t

val add : Ast.program -> t -> table:string -> Entry.t -> (unit, string) result

val add_exn : Ast.program -> t -> table:string -> Entry.t -> unit
(** @raise Invalid_argument when {!add} would return [Error]. *)

val install_all : Ast.program -> t -> (string * Entry.t) list -> (unit, string) result
(** Install a batch of (table, entry) pairs, stopping at the first error. *)

val entries : t -> string -> Entry.t list
(** In install order; empty for unknown tables. *)

val entry_count : t -> string -> int

val clear_table : t -> string -> unit

val clear : t -> unit

val tables : t -> string list

val generation : t -> int
(** Monotone mutation counter: bumped by every successful {!add},
    {!clear_table} and {!clear}. The staged engine ({!Compilecore})
    compares it against the generation its per-table matchers were built
    from, making matcher invalidation O(1) per packet. *)
