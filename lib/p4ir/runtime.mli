(** Control-plane table state: the set of entries installed in each table.

    Installation is validated against the program (table exists, action
    permitted, key arity and widths, argument arity and widths, capacity),
    mirroring what a runtime API such as P4Runtime enforces. The same
    runtime state drives both the reference interpreter and the compiled
    device, modelling the shared control plane of Figure 1.

    Entries get monotone per-table ids in install order (never reused, not
    even across {!clear}), which is what lets the per-table {!Classifier}
    structures and the staged engine's caches update incrementally instead
    of rebuilding on every mutation. *)

type t

val create : unit -> t

val copy : t -> t

val add : Ast.program -> t -> table:string -> Entry.t -> (unit, string) result

val add_exn : Ast.program -> t -> table:string -> Entry.t -> unit
(** @raise Invalid_argument when {!add} would return [Error]. *)

val remove : Ast.program -> t -> table:string -> Entry.t -> (unit, string) result
(** Remove the earliest-installed live entry whose (priority, keys) equal
    [e]'s — the P4Runtime deletion key; action and arguments are ignored.
    O(1) expected: the structural index and the classifier are patched in
    place, no table rebuild. [Error] when the table is undeclared or no
    entry matches. *)

val remove_exn : Ast.program -> t -> table:string -> Entry.t -> unit
(** @raise Invalid_argument when {!remove} would return [Error]. *)

val install_all : Ast.program -> t -> (string * Entry.t) list -> (unit, string) result
(** Install a batch of (table, entry) pairs, stopping at the first error. *)

val entries : t -> string -> Entry.t list
(** In install order; empty for unknown tables. *)

val entry_count : t -> string -> int
(** O(1). *)

val lookup :
  t -> table:string -> degrade_ternary_to_exact:bool -> Value.t list -> Entry.t option
(** The winning entry for this key list under the
    (priority, specificity, install-order) tie-break — {!Entry.select}
    semantics, answered by the per-table {!Classifier} (built lazily from
    the first lookup's key widths and patched incrementally ever after).
    With [NETDEBUG_CLASSIFIER=scan] it runs the legacy linear scan
    instead; both engines route their table applies through here. *)

val clear_table : t -> string -> unit

val clear : t -> unit

val tables : t -> string list

val generation : t -> int
(** Monotone global mutation counter: bumped by every successful {!add},
    {!remove}, {!clear_table} and {!clear}. Kept for observers that need
    "did anything change"; the staged engine now invalidates on the
    per-table {!tslot_gen} instead, so churn on one table no longer
    touches another table's compiled matcher. *)

val set_update_hook :
  t -> ?clock:(unit -> int64) -> (string -> int -> unit) -> unit
(** [set_update_hook t ~clock f] arranges [f table ns] after every
    successful mutation of [table], where [ns] is the mutation's duration
    measured with [clock] (a nanosecond timestamp source; defaults to a
    constant clock, so durations read 0 and stay deterministic). Feeds the
    [table/<name>/update_ns] telemetry histogram. *)

(** {2 Engine-facing slot handles}

    A [tslot] pins one table's state so per-packet paths can poll its
    generation and fetch entries by id without re-hashing the table name.
    Handles stay valid forever: {!clear} empties slots in place rather
    than dropping them, and ids are never reallocated. *)

type tslot

val tslot : t -> string -> tslot
(** Find-or-create the slot for [name]. *)

val tslot_gen : tslot -> int
(** Per-table mutation counter (O(1) per-packet poll). *)

val tslot_entries : tslot -> Entry.t list
(** Live entries in install order. *)

val tslot_entry : tslot -> int -> Entry.t
(** The live entry with this local id.
    @raise Invalid_argument when the id is dead or out of range. *)

val tslot_classifier : tslot -> kws:int array -> degrade:bool -> Classifier.t
(** The slot's classifier for this quirk setting, built from [kws] on
    first use and patched incrementally by every later mutation. *)

val classifier_rebuilds : t -> int
(** Total structural re-derivations across all per-table classifiers (see
    {!Classifier.rebuilds}); flat under pure insert/remove churn. *)
