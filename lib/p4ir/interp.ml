type result = Forwarded of int * Bitutil.Bitstring.t | Dropped of string

type observation = {
  result : result;
  parser : Parse.outcome;
  tables : (string * bool * string) list;
  counters : (string * int) list;
  failed_asserts : string list;
}

(* ------------------------------------------------------------------ *)
(* Tree engine: the direct AST walk                                    *)
(* ------------------------------------------------------------------ *)

let process_tree ?regs program runtime ~ingress_port bits =
  let env = Env.create program in
  let counters = Hashtbl.create 4 in
  let counter_order = ref [] in
  let tables = ref [] in
  let failed_asserts = ref [] in
  let on_count c =
    match Hashtbl.find_opt counters c with
    | None ->
        counter_order := c :: !counter_order;
        Hashtbl.replace counters c 1
    | Some n -> Hashtbl.replace counters c (n + 1)
  in
  let on_assert ok msg = if not ok then failed_asserts := msg :: !failed_asserts in
  let on_table ~table ~hit ~action = tables := (table, hit, action) :: !tables in
  let ctx = Exec.make_ctx ~on_count ~on_assert ~on_table ?regs ~env ~runtime () in
  Env.set_std env Ast.Ingress_port (Value.of_int ~width:9 ingress_port);
  let finish result parser =
    {
      result;
      parser;
      tables = List.rev !tables;
      (* first-increment order: [counter_order] accumulates newest-first,
         so the reversing map restores it *)
      counters = List.rev_map (fun c -> (c, Hashtbl.find counters c)) !counter_order;
      failed_asserts = List.rev !failed_asserts;
    }
  in
  let parser_outcome = Parse.run ctx bits in
  if not parser_outcome.Parse.accepted then
    finish (Dropped ("parser:" ^ Stdmeta.error_name parser_outcome.Parse.error)) parser_outcome
  else begin
    Exec.set_phase ctx Exec.Ingress;
    Exec.run_stmts ctx program.Ast.p_ingress;
    if Env.dropped env then finish (Dropped "ingress") parser_outcome
    else begin
      Exec.set_phase ctx Exec.Egress;
      Exec.run_stmts ctx program.Ast.p_egress;
      if Env.dropped env then finish (Dropped "egress") parser_outcome
      else begin
        let port = Value.to_int (Env.get_std env Ast.Egress_spec) in
        let out = Deparse.run env in
        finish (Forwarded (port, out)) parser_outcome
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Staged engine: compiled closures, cached per (program, runtime)     *)
(* ------------------------------------------------------------------ *)

type sacc = {
  counts : int array;  (* per counter id *)
  corder : int array;  (* counter ids in first-increment order *)
  mutable ncnt : int;
  mutable s_tables : (string * bool * string) list;  (* newest first *)
  mutable s_asserts : string list;  (* newest first *)
}

type scell = { si : Compilecore.inst; acc : sacc }

let make_scell cp runtime =
  let nc = Compilecore.n_counters cp in
  let acc =
    {
      counts = Array.make (max 1 nc) 0;
      corder = Array.make (max 1 nc) 0;
      ncnt = 0;
      s_tables = [];
      s_asserts = [];
    }
  in
  let on_count id =
    if acc.counts.(id) = 0 then begin
      acc.corder.(acc.ncnt) <- id;
      acc.ncnt <- acc.ncnt + 1
    end;
    acc.counts.(id) <- acc.counts.(id) + 1
  in
  let on_assert ok id = if not ok then acc.s_asserts <- Compilecore.assert_msg cp id :: acc.s_asserts in
  let on_table id hit action =
    acc.s_tables <- (Compilecore.table_name cp id, hit, action) :: acc.s_tables
  in
  let si = Compilecore.instantiate ~on_count ~on_assert ~on_table ~track_states:true cp ~runtime in
  { si; acc }

(* Instances are cached per domain keyed on (program, runtime) physical
   identity — the common shapes (a harness hammering one deployment, a
   fuzzer alternating a handful) hit the head of the list. *)
let max_cells = 32

let cell_cache : (Ast.program * Runtime.t * scell) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let get_cell program runtime =
  let cache = Domain.DLS.get cell_cache in
  match !cache with
  | (p, r, cell) :: _ when p == program && r == runtime -> cell
  | entries -> (
      match List.find_opt (fun (p, r, _) -> p == program && r == runtime) entries with
      | Some ((_, _, cell) as hit) ->
          cache := hit :: List.filter (fun (p, r, _) -> not (p == program && r == runtime)) entries;
          cell
      | None ->
          let cell = make_scell (Compilecore.spec_compiled program) runtime in
          cache := take max_cells ((program, runtime, cell) :: entries);
          cell)

let process_staged ?regs program runtime ~ingress_port bits =
  let cp = Compilecore.spec_compiled program in
  let { si = st; acc } = get_cell program runtime in
  (* self-healing: clear accumulators up front so a previous call that
     raised cannot leak observations into this one *)
  acc.ncnt <- 0;
  Array.fill acc.counts 0 (Array.length acc.counts) 0;
  acc.s_tables <- [];
  acc.s_asserts <- [];
  Compilecore.reset st;
  (match regs with
  | Some r -> Compilecore.set_regs st r
  | None ->
      (* match the tree default: a fresh zeroed store per call *)
      if Compilecore.has_registers cp then Compilecore.set_regs st (Regstate.create program));
  Compilecore.set_ingress_port st ingress_port;
  let finish result parser =
    let counters = ref [] in
    for i = acc.ncnt - 1 downto 0 do
      let id = acc.corder.(i) in
      counters := (Compilecore.counter_name cp id, acc.counts.(id)) :: !counters
    done;
    {
      result;
      parser;
      tables = List.rev acc.s_tables;
      counters = !counters;
      failed_asserts = List.rev acc.s_asserts;
    }
  in
  Compilecore.run_parser st bits;
  let parser_outcome = Compilecore.parse_outcome st in
  if not parser_outcome.Parse.accepted then
    finish (Dropped ("parser:" ^ Stdmeta.error_name parser_outcome.Parse.error)) parser_outcome
  else begin
    Compilecore.run_ingress st;
    if Compilecore.dropped st then finish (Dropped "ingress") parser_outcome
    else begin
      Compilecore.run_egress st;
      if Compilecore.dropped st then finish (Dropped "egress") parser_outcome
      else begin
        let port = Compilecore.egress_port st in
        let out = Compilecore.deparse st in
        finish (Forwarded (port, out)) parser_outcome
      end
    end
  end

let process ?engine ?regs program runtime ~ingress_port bits =
  let engine = match engine with Some e -> e | None -> Compilecore.default_engine () in
  match engine with
  | `Tree -> process_tree ?regs program runtime ~ingress_port bits
  | `Staged -> process_staged ?regs program runtime ~ingress_port bits

let forward ?engine ?regs program runtime ~ingress_port bits =
  match (process ?engine ?regs program runtime ~ingress_port bits).result with
  | Forwarded (port, out) -> Some (port, out)
  | Dropped _ -> None
