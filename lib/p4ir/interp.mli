(** Reference interpreter: the P4 language-specification semantics.

    This is the "software specification of the program" in the paper's
    terminology — what formal-verification tools reason about, and the
    ground truth NetDebug compares hardware behaviour against. It has no
    notion of timing, resources or compiler quirks. *)

type result = Forwarded of int * Bitutil.Bitstring.t | Dropped of string
(** [Dropped reason] where reason is "parser:<error>", "ingress" or
    "egress". *)

type observation = {
  result : result;
  parser : Parse.outcome;
  tables : (string * bool * string) list;
      (** (table, hit, action) in application order *)
  counters : (string * int) list;
      (** counter increments, by name, in first-increment order *)
  failed_asserts : string list;
}

val process :
  ?engine:Compilecore.engine ->
  ?regs:Regstate.t ->
  Ast.program -> Runtime.t -> ingress_port:int -> Bitutil.Bitstring.t -> observation
(** Run one packet through parse -> ingress -> egress -> deparse. A packet
    whose egress_spec was never assigned leaves on port 0. Pass [regs] to
    thread persistent register state across calls; the default is a fresh
    zeroed store per packet (pure single-packet specification semantics).

    [engine] selects the executor (default {!Compilecore.default_engine},
    i.e. [`Staged] unless [NETDEBUG_ENGINE=tree]): [`Tree] walks the AST
    directly; [`Staged] runs the program compiled to closures, cached per
    domain on the (program, runtime) pair. The two are observationally
    equivalent; staged is several times faster per packet. *)

val forward :
  ?engine:Compilecore.engine ->
  ?regs:Regstate.t ->
  Ast.program -> Runtime.t -> ingress_port:int -> Bitutil.Bitstring.t ->
  (int * Bitutil.Bitstring.t) option
(** Convenience: just the forwarding decision. *)
