(* entry lists are kept reversed (newest first) and re-reversed on read.
   [gen] counts mutations; the staged engine uses it to invalidate its
   per-table compiled matchers without hashing table contents. *)
type t = { tbl : (string, Entry.t list ref) Hashtbl.t; mutable gen : int }

let create () = { tbl = Hashtbl.create 8; gen = 0 }

let generation t = t.gen

let bump t = t.gen <- t.gen + 1

let copy t =
  let t' = Hashtbl.create 8 in
  Hashtbl.iter (fun k v -> Hashtbl.add t' k (ref !v)) t.tbl;
  { tbl = t'; gen = 0 }

let slot t name =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.tbl name r;
      r

let validate program ~table (e : Entry.t) existing_count =
  match Ast.find_table program table with
  | None -> Error (Printf.sprintf "table %s: not declared" table)
  | Some tbl ->
      let open Ast in
      if existing_count >= tbl.t_size then
        Error (Printf.sprintf "table %s: capacity %d exceeded" table tbl.t_size)
      else if List.length e.Entry.keys <> List.length tbl.t_keys then
        Error (Printf.sprintf "table %s: expected %d keys, got %d" table
                 (List.length tbl.t_keys) (List.length e.Entry.keys))
      else if not (List.mem e.Entry.action tbl.t_actions) then
        Error (Printf.sprintf "table %s: action %s not permitted" table e.Entry.action)
      else begin
        let kind_ok (k : Entry.mkey) (kind : match_kind) =
          match (k, kind) with
          | Entry.Exact_v _, Exact | Entry.Lpm_v _, Lpm | Entry.Ternary_v _, Ternary -> true
          | Entry.Exact_v _, (Lpm | Ternary)
          | Entry.Lpm_v _, (Exact | Ternary)
          | Entry.Ternary_v _, (Exact | Lpm) ->
              false
        in
        let kinds_ok = List.for_all2 (fun k (_, kind) -> kind_ok k kind) e.Entry.keys tbl.t_keys in
        if not kinds_ok then Error (Printf.sprintf "table %s: match-kind mismatch" table)
        else
          match Ast.find_action program e.Entry.action with
          | None -> Error (Printf.sprintf "action %s: not declared" e.Entry.action)
          | Some act ->
              if List.length e.Entry.args <> List.length act.a_params then
                Error
                  (Printf.sprintf "action %s: expected %d args, got %d" e.Entry.action
                     (List.length act.a_params) (List.length e.Entry.args))
              else begin
                let args_ok =
                  List.for_all2
                    (fun arg (p : field_decl) -> Value.width arg = p.f_width)
                    e.Entry.args act.a_params
                in
                let lpm_ok =
                  List.for_all
                    (fun k ->
                      match k with
                      | Entry.Lpm_v (v, len) -> len >= 0 && len <= Value.width v
                      | Entry.Exact_v _ | Entry.Ternary_v _ -> true)
                    e.Entry.keys
                in
                if not args_ok then
                  Error (Printf.sprintf "action %s: argument width mismatch" e.Entry.action)
                else if not lpm_ok then Error "lpm prefix length out of range"
                else Ok ()
              end
      end

let add program t ~table e =
  let r = slot t table in
  match validate program ~table e (List.length !r) with
  | Error _ as err -> err
  | Ok () ->
      r := e :: !r;
      bump t;
      Ok ()

let add_exn program t ~table e =
  match add program t ~table e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.add_exn: " ^ msg)

let install_all program t pairs =
  let rec go = function
    | [] -> Ok ()
    | (table, e) :: rest -> (
        match add program t ~table e with Ok () -> go rest | Error _ as err -> err)
  in
  go pairs

let entries t name =
  match Hashtbl.find_opt t.tbl name with Some r -> List.rev !r | None -> []

let entry_count t name =
  match Hashtbl.find_opt t.tbl name with Some r -> List.length !r | None -> 0

let clear_table t name =
  match Hashtbl.find_opt t.tbl name with
  | Some r ->
      r := [];
      bump t
  | None -> ()

let clear t =
  Hashtbl.reset t.tbl;
  bump t

let tables t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort String.compare
