(* Per-table slots hold entries in a growable array indexed by local entry
   id. Ids are allocated monotonically in install order and never reused —
   not even across [clear] — so install-order tie-breaks reduce to id
   order and engine-side caches keyed on id (the staged engine's bound
   cache) can never alias a stale entry. A structural (priority, keys)
   index gives O(1) removal of the earliest-installed matching entry, and
   each slot lazily hosts the two {!Classifier} variants (per
   degrade_ternary_to_exact setting) that both engines share. *)

type slot = {
  mutable s_arr : Entry.t option array;  (* by local id; None = removed *)
  mutable s_next : int;  (* next id to allocate; never reset *)
  mutable s_count : int;  (* live entries *)
  mutable s_gen : int;  (* per-table mutation counter *)
  s_index : (int * Entry.mkey list, int list) Hashtbl.t;  (* live ids, ascending *)
  mutable s_cls : Classifier.t option;
  mutable s_cls_degrade : Classifier.t option;
}

type t = {
  tbl : (string, slot) Hashtbl.t;
  mutable gen : int;
  mutable hook : (string -> int -> unit) option;  (* table, update ns *)
  mutable hook_clock : unit -> int64;
}

type tslot = slot

let create () =
  { tbl = Hashtbl.create 8; gen = 0; hook = None; hook_clock = (fun () -> 0L) }

let generation t = t.gen

let bump t = t.gen <- t.gen + 1

let new_slot () =
  {
    s_arr = [||];
    s_next = 0;
    s_count = 0;
    s_gen = 0;
    s_index = Hashtbl.create 16;
    s_cls = None;
    s_cls_degrade = None;
  }

let slot t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None ->
      let s = new_slot () in
      Hashtbl.add t.tbl name s;
      s

let set_update_hook t ?clock f =
  t.hook <- Some f;
  t.hook_clock <- (match clock with Some c -> c | None -> fun () -> 0L)

(* Wrap one successful control-plane mutation with the update-latency
   hook. Mutations are rare next to lookups; when no hook is installed
   this is a single branch. *)
let timed t name f =
  match t.hook with
  | None -> f ()
  | Some hook ->
      let t0 = t.hook_clock () in
      let r = f () in
      hook name (Int64.to_int (Int64.sub (t.hook_clock ()) t0));
      r

let validate program ~table (e : Entry.t) existing_count =
  match Ast.find_table program table with
  | None -> Error (Printf.sprintf "table %s: not declared" table)
  | Some tbl ->
      let open Ast in
      if existing_count >= tbl.t_size then
        Error (Printf.sprintf "table %s: capacity %d exceeded" table tbl.t_size)
      else if List.length e.Entry.keys <> List.length tbl.t_keys then
        Error (Printf.sprintf "table %s: expected %d keys, got %d" table
                 (List.length tbl.t_keys) (List.length e.Entry.keys))
      else if not (List.mem e.Entry.action tbl.t_actions) then
        Error (Printf.sprintf "table %s: action %s not permitted" table e.Entry.action)
      else begin
        let kind_ok (k : Entry.mkey) (kind : match_kind) =
          match (k, kind) with
          | Entry.Exact_v _, Exact | Entry.Lpm_v _, Lpm | Entry.Ternary_v _, Ternary -> true
          | Entry.Exact_v _, (Lpm | Ternary)
          | Entry.Lpm_v _, (Exact | Ternary)
          | Entry.Ternary_v _, (Exact | Lpm) ->
              false
        in
        let kinds_ok = List.for_all2 (fun k (_, kind) -> kind_ok k kind) e.Entry.keys tbl.t_keys in
        if not kinds_ok then Error (Printf.sprintf "table %s: match-kind mismatch" table)
        else
          match Ast.find_action program e.Entry.action with
          | None -> Error (Printf.sprintf "action %s: not declared" e.Entry.action)
          | Some act ->
              if List.length e.Entry.args <> List.length act.a_params then
                Error
                  (Printf.sprintf "action %s: expected %d args, got %d" e.Entry.action
                     (List.length act.a_params) (List.length e.Entry.args))
              else begin
                let args_ok =
                  List.for_all2
                    (fun arg (p : field_decl) -> Value.width arg = p.f_width)
                    e.Entry.args act.a_params
                in
                let lpm_ok =
                  List.for_all
                    (fun k ->
                      match k with
                      | Entry.Lpm_v (v, len) -> len >= 0 && len <= Value.width v
                      | Entry.Exact_v _ | Entry.Ternary_v _ -> true)
                    e.Entry.keys
                in
                if not args_ok then
                  Error (Printf.sprintf "action %s: argument width mismatch" e.Entry.action)
                else if not lpm_ok then Error "lpm prefix length out of range"
                else Ok ()
              end
      end

let key_sig (e : Entry.t) = (e.Entry.priority, e.Entry.keys)

let cls_iter s f =
  (match s.s_cls with Some c -> f c | None -> ());
  match s.s_cls_degrade with Some c -> f c | None -> ()

let add program t ~table e =
  let s = slot t table in
  match validate program ~table e s.s_count with
  | Error _ as err -> err
  | Ok () ->
      timed t table (fun () ->
          let id = s.s_next in
          if id >= Array.length s.s_arr then begin
            let narr = Array.make (max 16 (2 * (id + 1))) None in
            Array.blit s.s_arr 0 narr 0 (Array.length s.s_arr);
            s.s_arr <- narr
          end;
          s.s_arr.(id) <- Some e;
          s.s_next <- id + 1;
          s.s_count <- s.s_count + 1;
          let ks = key_sig e in
          let ids = match Hashtbl.find_opt s.s_index ks with Some l -> l | None -> [] in
          Hashtbl.replace s.s_index ks (ids @ [ id ]);
          cls_iter s (fun c -> Classifier.insert c id e);
          s.s_gen <- s.s_gen + 1;
          bump t;
          Ok ())

let add_exn program t ~table e =
  match add program t ~table e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.add_exn: " ^ msg)

let remove program t ~table (e : Entry.t) =
  match Ast.find_table program table with
  | None -> Error (Printf.sprintf "table %s: not declared" table)
  | Some _ -> (
      match Hashtbl.find_opt t.tbl table with
      | None -> Error (Printf.sprintf "table %s: no matching entry" table)
      | Some s -> (
          match Hashtbl.find_opt s.s_index (key_sig e) with
          | None | Some [] -> Error (Printf.sprintf "table %s: no matching entry" table)
          | Some (id :: rest) ->
              timed t table (fun () ->
                  let stored =
                    match s.s_arr.(id) with Some x -> x | None -> assert false
                  in
                  s.s_arr.(id) <- None;
                  s.s_count <- s.s_count - 1;
                  if rest = [] then Hashtbl.remove s.s_index (key_sig e)
                  else Hashtbl.replace s.s_index (key_sig e) rest;
                  cls_iter s (fun c -> Classifier.remove c id stored);
                  s.s_gen <- s.s_gen + 1;
                  bump t;
                  Ok ())))

let remove_exn program t ~table e =
  match remove program t ~table e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.remove_exn: " ^ msg)

let install_all program t pairs =
  let rec go = function
    | [] -> Ok ()
    | (table, e) :: rest -> (
        match add program t ~table e with Ok () -> go rest | Error _ as err -> err)
  in
  go pairs

let slot_entries s =
  let acc = ref [] in
  for i = s.s_next - 1 downto 0 do
    match s.s_arr.(i) with Some e -> acc := e :: !acc | None -> ()
  done;
  !acc

let entries t name =
  match Hashtbl.find_opt t.tbl name with Some s -> slot_entries s | None -> []

let entry_count t name =
  match Hashtbl.find_opt t.tbl name with Some s -> s.s_count | None -> 0

let clear_slot s =
  for i = 0 to s.s_next - 1 do
    s.s_arr.(i) <- None
  done;
  s.s_count <- 0;
  Hashtbl.reset s.s_index;
  cls_iter s Classifier.clear;
  s.s_gen <- s.s_gen + 1

let clear_table t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s ->
      timed t name (fun () ->
          clear_slot s;
          bump t)
  | None -> ()

(* Slots stay in place (ids keep growing) so engine handles cached against
   them survive a wipe. *)
let clear t =
  Hashtbl.iter (fun _ s -> clear_slot s) t.tbl;
  bump t

let copy t =
  let t' = create () in
  Hashtbl.iter
    (fun name s ->
      let s' = new_slot () in
      List.iter
        (fun e ->
          let id = s'.s_next in
          if id >= Array.length s'.s_arr then begin
            let narr = Array.make (max 16 (2 * (id + 1))) None in
            Array.blit s'.s_arr 0 narr 0 (Array.length s'.s_arr);
            s'.s_arr <- narr
          end;
          s'.s_arr.(id) <- Some e;
          s'.s_next <- id + 1;
          s'.s_count <- s'.s_count + 1;
          let ks = key_sig e in
          let ids = match Hashtbl.find_opt s'.s_index ks with Some l -> l | None -> [] in
          Hashtbl.replace s'.s_index ks (ids @ [ id ]))
        (slot_entries s);
      Hashtbl.add t'.tbl name s')
    t.tbl;
  t'

let tables t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort String.compare

(* ---------------- classifier hosting ---------------- *)

let build_classifier s ~kws ~degrade =
  let c =
    Classifier.create ~kws ~degrade ~resolve:(fun id ->
        match s.s_arr.(id) with Some e -> e | None -> invalid_arg "Runtime: stale entry id")
  in
  for id = 0 to s.s_next - 1 do
    match s.s_arr.(id) with Some e -> Classifier.insert c id e | None -> ()
  done;
  (if degrade then s.s_cls_degrade <- Some c else s.s_cls <- Some c);
  c

let slot_classifier s ~kws ~degrade =
  match if degrade then s.s_cls_degrade else s.s_cls with
  | Some c -> c
  | None -> build_classifier s ~kws ~degrade

let classifier_rebuilds t =
  Hashtbl.fold
    (fun _ s acc ->
      let r = match s.s_cls with Some c -> Classifier.rebuilds c | None -> 0 in
      let rd = match s.s_cls_degrade with Some c -> Classifier.rebuilds c | None -> 0 in
      acc + r + rd)
    t.tbl 0

let rec key_widths acc = function
  | [] -> List.rev acc
  | v :: rest -> key_widths (Value.width v :: acc) rest

(* Hot path (both engines route table applies through here): [Hashtbl.find]
   rather than [find_opt] — the latter allocates an option per call, and
   this function must allocate nothing on a hit. *)
let lookup t ~table ~degrade_ternary_to_exact:degrade keys =
  match Hashtbl.find t.tbl table with
  | exception Not_found -> None
  | s ->
      if s.s_count = 0 then None
      else if not (Classifier.enabled ()) then
        (* NETDEBUG_CLASSIFIER=scan: the legacy linear scan, kept as the
           differential baseline *)
        Entry.select ~degrade_ternary_to_exact:degrade (slot_entries s) keys
      else begin
        let c =
          match if degrade then s.s_cls_degrade else s.s_cls with
          | Some c -> c
          | None ->
              build_classifier s ~kws:(Array.of_list (key_widths [] keys)) ~degrade
        in
        let id = Classifier.find_values c keys in
        if id < 0 then None else s.s_arr.(id)
      end

(* ---------------- engine-facing slot handles ---------------- *)

let tslot = slot

let tslot_gen (s : tslot) = s.s_gen

let tslot_entries (s : tslot) = slot_entries s

let tslot_entry (s : tslot) id =
  match if id >= 0 && id < s.s_next then s.s_arr.(id) else None with
  | Some e -> e
  | None -> invalid_arg "Runtime.tslot_entry: stale entry id"

let tslot_classifier (s : tslot) ~kws ~degrade = slot_classifier s ~kws ~degrade
